package tiptop

import (
	"sort"

	"tiptop/internal/hpm"
	"tiptop/internal/perfevent"
)

// EventInfo describes one event of a registry for listings: the
// canonical name, its kind and perf encoding, and which backends can
// count it. tiptop -list-events and tiptopd's /api/v1/events serve it.
type EventInfo struct {
	Name     string `json:"name"`
	Kind     string `json:"kind"`     // generic, hw-cache, raw
	Encoding string `json:"encoding"` // "type=4 config=0x1ef7"
	Unit     string `json:"unit,omitempty"`
	Desc     string `json:"desc,omitempty"`
	// Supported maps a backend name ("perf_event", "sim") to whether
	// that backend can count the event.
	Supported map[string]bool `json:"supported"`
	// SlotCost maps a backend name to the number of PMU counting
	// registers the event occupies there: 0 marks events counted for
	// free — kernel software events, or counts a machine's fixed
	// counters provide (the RISC-V cycle/instret CSRs) — which never
	// force multiplexing.
	SlotCost map[string]int `json:"slot_cost"`
	// Attached is set by Monitor.EventList when the active session
	// attaches the event to every monitored task.
	Attached bool `json:"attached,omitempty"`
}

// ListEvents returns every event of cfg's registry — the built-in
// defaults plus cfg.Events — sorted by name, with the support status of
// the default perf_event backend and of the named simulated machine.
func ListEvents(cfg Config, machine MachineName) ([]EventInfo, error) {
	registry, err := cfg.buildRegistry()
	if err != nil {
		return nil, err
	}
	sc, err := NewScenario(machine)
	if err != nil {
		return nil, err
	}
	perf := perfevent.New()
	sim := sc.backend()
	return eventInfos(registry, func(d hpm.EventDesc) map[string]bool {
		return map[string]bool{
			perf.Name(): perf.Supported(d),
			sim.Name():  sim.Supported(d),
		}
	}, func(d hpm.EventDesc) map[string]int {
		return map[string]int{
			perf.Name(): perf.SlotCost(d),
			sim.Name():  sim.SlotCost(d),
		}
	}, nil), nil
}

// Capacities reports how many events each backend can count at once on
// the named simulated machine: the machine model's PMU register count
// for "sim", and 0 for "perf_event" (unknown without configuration —
// see Config.Counters; the kernel multiplexes beyond the real limit).
func Capacities(machine MachineName) (map[string]int, error) {
	sc, err := NewScenario(machine)
	if err != nil {
		return nil, err
	}
	perf := perfevent.New()
	sim := sc.backend()
	return map[string]int{
		perf.Name(): perf.Capacity(),
		sim.Name():  sim.Capacity(),
	}, nil
}

// BackendCapacity returns the monitor backend's name and its
// simultaneous-event capacity (0 = unlimited or kernel-multiplexed).
func (m *Monitor) BackendCapacity() (string, int) {
	b := m.session.Backend()
	return b.Name(), b.Capacity()
}

// EventList returns the monitor's event registry sorted by name, with
// the support status of the monitor's own backend and the set of events
// the session actually attaches.
func (m *Monitor) EventList() []EventInfo {
	session := m.session
	backend := session.Backend()
	attached := make(map[string]bool)
	for _, d := range session.Events() {
		attached[d.Name] = true
	}
	return eventInfos(session.Registry(), func(d hpm.EventDesc) map[string]bool {
		return map[string]bool{backend.Name(): backend.Supported(d)}
	}, func(d hpm.EventDesc) map[string]int {
		return map[string]int{backend.Name(): backend.SlotCost(d)}
	}, attached)
}

func eventInfos(registry *hpm.Registry, support func(hpm.EventDesc) map[string]bool, cost func(hpm.EventDesc) map[string]int, attached map[string]bool) []EventInfo {
	out := make([]EventInfo, 0, registry.Len())
	for _, d := range registry.Events() {
		out = append(out, EventInfo{
			Name:      d.Name,
			Kind:      d.Kind.String(),
			Encoding:  d.Encoding(),
			Unit:      d.Unit,
			Desc:      d.Desc,
			Supported: support(d),
			SlotCost:  cost(d),
			Attached:  attached[d.Name],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
