// interference replays the paper's §3.4 controlled experiment: copies of
// the memory-hungry 429.mcf pinned to cores of a quad-core Nehalem slow
// each other down through the shared L3 — and two copies on the *same*
// physical core devastate each other's private L2 — all while CPU usage
// reads a reassuring 100 %.
//
//	go run ./examples/interference
package main

import (
	"fmt"
	"log"
	"time"

	"tiptop"
)

// measure runs mcf copies pinned to the given logical CPUs and returns
// the first copy's average IPC, L2 and L3 misses per 100 instructions.
func measure(pins [][]int) (ipc, l2m, l3m, cpu float64) {
	scenario, err := tiptop.NewScenario(tiptop.MachineXeonW3550)
	if err != nil {
		log.Fatal(err)
	}
	for _, pin := range pins {
		if _, err := scenario.StartWorkload("user", "mcf", 0.05, pin...); err != nil {
			log.Fatal(err)
		}
	}
	mon, err := tiptop.NewSimMonitor(scenario, tiptop.Config{
		Screen:   "mem",
		Interval: 2 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer mon.Close()
	mon.SampleNow()

	var n float64
	for {
		sample, err := mon.Sample()
		if err != nil {
			log.Fatal(err)
		}
		if len(sample.Rows) == 0 {
			break
		}
		found := false
		for _, row := range sample.Rows {
			if row.Command == "429.mcf" && row.Monitored && row.IPC > 0 {
				// mem screen columns: IPC, LPI, L2M, L3M.
				ipc += row.IPC
				l2m += row.Columns[2]
				l3m += row.Columns[3]
				cpu += row.CPUPct
				n++
				found = true
				break
			}
		}
		if !found {
			break
		}
	}
	if n > 0 {
		ipc, l2m, l3m, cpu = ipc/n, l2m/n, l3m/n, cpu/n
	}
	return
}

func main() {
	scenario, _ := tiptop.NewScenario(tiptop.MachineXeonW3550)
	fmt.Println("machine topology (paper Figure 11 c):")
	fmt.Println(scenario.Topology())

	fmt.Println("running mcf in four placements (this is simulated time, be patient)...")
	fmt.Printf("\n%-34s %6s %8s %8s %7s\n", "placement", "IPC", "L2M/100", "L3M/100", "%CPU")

	configs := []struct {
		name string
		pins [][]int
	}{
		{"1 copy, core 0", [][]int{{0}}},
		{"2 copies, cores 0 and 1", [][]int{{0}, {1}}},
		{"3 copies, cores 0, 1, 2", [][]int{{0}, {1}, {2}}},
		{"2 copies, SMT threads of core 0", [][]int{{0}, {4}}},
	}
	results := make([][4]float64, len(configs))
	for i, c := range configs {
		ipc, l2m, l3m, cpu := measure(c.pins)
		results[i] = [4]float64{ipc, l2m, l3m, cpu}
		fmt.Printf("%-34s %6.2f %8.2f %8.2f %7.1f\n", c.name, ipc, l2m, l3m, cpu)
	}

	solo, three, same := results[0], results[2], results[3]
	fmt.Printf("\nfindings (cf. paper Figure 11):\n")
	fmt.Printf("  - 3 copies on distinct cores: %.0f%% slowdown purely from shared-L3 contention\n",
		100*(1-three[0]/solo[0]))
	fmt.Printf("  - same-core copies: L2 misses jump %.1fx and throughput drops %.1fx\n",
		same[1]/solo[1], solo[0]/same[0])
	fmt.Printf("  - %%CPU stayed at ~100 in every configuration: top cannot see any of this\n")
}
