// memlatency demonstrates the extension the paper names as future work
// in §3.4: "recent processors have counters for the latency of memory
// accesses. We plan to use them in the future to detect similar
// situations" — i.e. contention that manifests as *slower* memory
// accesses rather than just more misses (Moscibroda & Mutlu's
// DRAM-level interference).
//
// The "lat" screen adds two derived columns to tiptop:
//
//	LAT   average exposed memory latency per LLC miss (cycles)
//	%STL  fraction of cycles stalled on memory
//
// The demo runs mcf alone and then alongside three memory-hungry
// neighbours: the stall share rises sharply even though %CPU never
// moves.
//
//	go run ./examples/memlatency
package main

import (
	"fmt"
	"log"
	"time"

	"tiptop"
)

// observe returns mcf's average IPC, LAT, %STL and %CPU in a scenario
// with the given number of memory-hungry neighbours.
func observe(neighbours int) (ipc, lat, stall, cpu float64) {
	sc, err := tiptop.NewScenario(tiptop.MachineXeonW3550)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sc.StartWorkload("user", "mcf", 0.05, 0); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < neighbours; i++ {
		_, err := sc.StartSyntheticJob("noise", tiptop.SyntheticJob{
			Name: fmt.Sprintf("stream%d", i+1), IPC: 0.8,
			MemRefsPKI: 350, HotMB: 2, WarmMB: 24,
		}, i+1) // pinned to its own core
		if err != nil {
			log.Fatal(err)
		}
	}
	mon, err := tiptop.NewSimMonitor(sc, tiptop.Config{Screen: "lat", Interval: 2 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	defer mon.Close()
	mon.SampleNow()

	var n float64
	for {
		sample, err := mon.Sample()
		if err != nil {
			log.Fatal(err)
		}
		found := false
		for _, row := range sample.Rows {
			if row.Command == "429.mcf" && row.Monitored && row.IPC > 0 {
				// lat screen columns: IPC, L3M, LAT, %STL.
				ipc += row.IPC
				lat += row.Columns[2]
				stall += row.Columns[3]
				cpu += row.CPUPct
				n++
				found = true
			}
		}
		if !found {
			break
		}
	}
	if n > 0 {
		ipc, lat, stall, cpu = ipc/n, lat/n, stall/n, cpu/n
	}
	return
}

func main() {
	fmt.Println("the 'lat' screen: memory-access latency counters (paper §3.4 future work)")
	fmt.Printf("\n%-28s %6s %8s %7s %7s\n", "configuration", "IPC", "LAT(cyc)", "%STL", "%CPU")
	for _, n := range []int{0, 1, 3} {
		name := "mcf alone"
		if n > 0 {
			name = fmt.Sprintf("mcf + %d streaming jobs", n)
		}
		ipc, lat, stall, cpu := observe(n)
		fmt.Printf("%-28s %6.2f %8.1f %7.1f %7.1f\n", name, ipc, lat, stall, cpu)
	}
	fmt.Println("\nreading: with neighbours, a larger share of mcf's cycles stalls on")
	fmt.Println("memory while %CPU stays at 100 — the latency columns localize the")
	fmt.Println("problem to the memory subsystem without any per-miss sampling.")
}
