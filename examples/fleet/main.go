// fleet shows remote monitoring and fleet aggregation end-to-end: three
// simulated "machines" each serve their refreshes over the wire
// protocol (what `tiptopd -sim ...` does), a fleet aggregator joins
// them (what `tiptopd -join host1,host2,host3` does), and the program
// then scrapes the merged, per-machine-labelled metrics, prints the
// cluster snapshot, and attaches a RemoteMonitor to one agent to render
// its rows exactly like `tiptop -connect host:port` would.
//
//	go run ./examples/fleet
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"tiptop"
	"tiptop/internal/history"
	"tiptop/internal/remote"
)

// agent is one simulated machine serving the wire protocol — the
// in-process equivalent of a tiptopd on a fleet node.
type agent struct {
	mon  *tiptop.Monitor
	srv  *remote.Server
	http *http.Server
	addr string
}

func startAgent(scenario string) (*agent, error) {
	sc, err := tiptop.NewNamedScenario(scenario, 0.01)
	if err != nil {
		return nil, err
	}
	mon, err := tiptop.NewSimMonitor(sc, tiptop.Config{Interval: 500 * time.Millisecond})
	if err != nil {
		return nil, err
	}
	srv := remote.NewServer(nil)
	mux := http.NewServeMux()
	srv.Register(mux)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		mon.Close()
		return nil, err
	}
	a := &agent{mon: mon, srv: srv, http: &http.Server{Handler: mux}, addr: ln.Addr().String()}
	go a.http.Serve(ln)
	return a, nil
}

// publish hands one refresh to the server in the wire format — the
// same Monitor.WireSample translation tiptopd's sampling loop performs.
func (a *agent) publish(s *tiptop.Sample) error {
	return a.srv.Publish(a.mon.WireSample(s))
}

func (a *agent) close() {
	a.srv.Close()
	a.http.Close()
	a.mon.Close()
}

func main() {
	// Three fleet nodes running different workloads.
	scenarios := []string{"datacenter", "spec", "conflict"}
	var agents []*agent
	for _, sc := range scenarios {
		a, err := startAgent(sc)
		if err != nil {
			log.Fatal(err)
		}
		defer a.close()
		agents = append(agents, a)
		fmt.Printf("agent %-11s %s  (%s)\n", sc, a.addr, a.mon.Machine())
	}

	// Each agent samples and publishes a few refreshes.
	for _, a := range agents {
		s, err := a.mon.SampleNow()
		if err != nil {
			log.Fatal(err)
		}
		if err := a.publish(s); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		for _, a := range agents {
			s, err := a.mon.Sample()
			if err != nil {
				log.Fatal(err)
			}
			if err := a.publish(s); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Join them into one cluster view — `tiptopd -join a,b,c`.
	addrs := make([]string, len(agents))
	for i, a := range agents {
		addrs[i] = a.addr
	}
	fleet, err := remote.NewFleet(addrs, remote.FleetOptions{
		History: history.Options{Capacity: 64, Window: 10 * time.Second},
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	fleet.Start(ctx)
	defer func() {
		fleet.Close()
		cancel()
		fleet.Wait()
	}()
	deadline := time.Now().Add(10 * time.Second)
	for fleet.Snapshot().Cluster.AgentsUp < len(agents) {
		if time.Now().After(deadline) {
			log.Fatal("agents did not connect")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The merged cluster snapshot.
	snap := fleet.Snapshot()
	fmt.Printf("\ncluster: %d/%d agents up, %d tasks, IPC %.2f, %d instructions total\n",
		snap.Cluster.AgentsUp, snap.Cluster.Agents, snap.Cluster.Tasks,
		snap.Cluster.IPC, snap.Cluster.Instructions)
	labels := make([]string, 0, len(snap.Machines))
	for l := range snap.Machines {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		m := snap.Machines[l]
		fmt.Printf("  %-21s %2d tasks  IPC %.2f\n", l, m.Machine.Tasks, m.Machine.IPC)
	}

	// The merged, machine-labelled exposition a Prometheus would scrape
	// from the aggregator's /metrics.
	var sb strings.Builder
	if err := fleet.WriteOpenMetrics(&sb); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nselected merged scrape lines:")
	for _, line := range strings.Split(sb.String(), "\n") {
		if strings.HasPrefix(line, "tiptop_fleet_agents") ||
			strings.HasPrefix(line, "tiptop_agent_up") ||
			strings.HasPrefix(line, "tiptop_machine_tasks") {
			fmt.Println(" ", line)
		}
	}

	// And the remote TUI path: attach to one agent like
	// `tiptop -connect host:port` and render its next refresh through
	// the ordinary batch renderer.
	rm, err := tiptop.NewRemoteMonitor(agents[0].addr)
	if err != nil {
		log.Fatal(err)
	}
	defer rm.Close()
	s, err := rm.SampleNow()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntiptop -connect %s (%s):\n", agents[0].addr, rm.Machine())
	if err := rm.Render(os.Stdout, s); err != nil {
		log.Fatal(err)
	}
}
