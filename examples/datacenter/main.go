// datacenter reproduces the paper's Figure 1 setting: a 16-logical-core
// bi-Xeon E5640 node of a compute grid, shared by three users' batch
// jobs, observed with tiptop. It then lets a second user's burst of jobs
// arrive and shows the Figure 10 effect: the incumbent jobs' IPC sags
// from shared-cache contention although every core still reads ~100 %
// CPU.
//
//	go run ./examples/datacenter
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"tiptop"
)

func main() {
	scenario, err := tiptop.NewScenario(tiptop.MachineE5640)
	if err != nil {
		log.Fatal(err)
	}

	// The incumbents: two of user1's long-running, cache-sensitive
	// jobs (calibrated as in the paper's Figure 10: their warm working
	// sets enjoy the socket's 12 MB L3 while it lasts).
	if _, err := scenario.StartSyntheticJob("user1", tiptop.SyntheticJob{
		Name: "simulate1", IPC: 1.30, MemRefsPKI: 300, HotMB: 1.5, WarmMB: 10, MidProb: 0.98,
	}); err != nil {
		log.Fatal(err)
	}
	if _, err := scenario.StartSyntheticJob("user1", tiptop.SyntheticJob{
		Name: "simulate2", IPC: 1.00, MemRefsPKI: 330, HotMB: 2, WarmMB: 12, MidProb: 0.98,
	}); err != nil {
		log.Fatal(err)
	}

	mon, err := tiptop.NewSimMonitor(scenario, tiptop.Config{Interval: 10 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	defer mon.Close()
	mon.SampleNow()

	sampleMean := func(n int, comm string) float64 {
		var sum float64
		var cnt int
		for i := 0; i < n; i++ {
			sample, err := mon.Sample()
			if err != nil {
				log.Fatal(err)
			}
			for _, row := range sample.Rows {
				if row.Command == comm && row.IPC > 0 {
					sum += row.IPC
					cnt++
				}
			}
		}
		if cnt == 0 {
			return 0
		}
		return sum / float64(cnt)
	}

	fmt.Println("phase 1: user1 alone on the node (10s refreshes)")
	before := sampleMean(6, "simulate1")
	fmt.Printf("  simulate1 steady IPC: %.2f\n\n", before)

	fmt.Println("phase 2: user2 submits five memory-hungry jobs")
	pids := make([]int, 5)
	for i := range pids {
		pid, err := scenario.StartSyntheticJob("user2", tiptop.SyntheticJob{
			Name: fmt.Sprintf("crunch%d", i+1), IPC: 0.68,
			MemRefsPKI: 340, HotMB: 2, WarmMB: 24,
		})
		if err != nil {
			log.Fatal(err)
		}
		pids[i] = pid
	}
	during := sampleMean(6, "simulate1")
	fmt.Printf("  simulate1 IPC during the burst: %.2f (%.0f%% drop)\n",
		during, 100*(1-during/before))

	sample, err := mon.Sample()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthe node as tiptop shows it right now:")
	if err := mon.Render(os.Stdout, sample); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nphase 3: user2's jobs finish")
	for _, pid := range pids {
		if err := scenario.Kill(pid); err != nil {
			log.Fatal(err)
		}
	}
	after := sampleMean(6, "simulate1")
	fmt.Printf("  simulate1 IPC recovered to: %.2f\n", after)
	fmt.Println("\nthroughout all three phases, %CPU read ~100 for every job:")
	fmt.Println("only the counters reveal who is paying for the shared cache.")
}
