// fpanomaly replays the paper's §3.1 detective story: a biologist's
// R-language evolutionary algorithm suddenly runs ~30x slower after 953
// time steps, with CPU usage still at 100 %. Plain top sees nothing;
// tiptop's IPC column exposes the moment it happens, and adding the
// FP_ASSIST column identifies the culprit — matrices filling with
// Inf/NaN send every x87 operation through the micro-code assist path.
//
//	go run ./examples/fpanomaly
package main

import (
	"fmt"
	"log"
	"time"

	"tiptop"
)

func main() {
	scenario, err := tiptop.NewScenario(tiptop.MachineXeonW3550)
	if err != nil {
		log.Fatal(err)
	}
	// Scale 0.003: a few hundred of the paper's 1447 time steps.
	if _, err := scenario.StartWorkload("biologist", "r-evolution", 0.03); err != nil {
		log.Fatal(err)
	}

	// The "fp" screen is the paper's §3.1 configuration: IPC next to
	// micro-coded FP assists per hundred instructions.
	mon, err := tiptop.NewSimMonitor(scenario, tiptop.Config{
		Screen:   "fp",
		Interval: 5 * time.Second, // the paper samples every 5 seconds
	})
	if err != nil {
		log.Fatal(err)
	}
	defer mon.Close()
	mon.SampleNow()

	fmt.Println("watching the R interpreter (5s samples)...")
	fmt.Printf("%8s %8s %10s %8s\n", "sample", "IPC", "assist/100", "%CPU")

	var healthy float64
	dropAt := -1
	for i := 0; ; i++ {
		sample, err := mon.Sample()
		if err != nil {
			log.Fatal(err)
		}
		if len(sample.Rows) == 0 {
			break
		}
		row := sample.Rows[0]
		assist := 0.0
		if instr := row.Events["INSTRUCTIONS"]; instr > 0 {
			assist = 100 * float64(row.Events["FP_ASSIST"]) / float64(instr)
		}
		marker := ""
		if i < 5 {
			healthy += row.IPC / 5
		} else if dropAt < 0 && row.IPC < healthy/2 {
			dropAt = i
			marker = "  <-- IPC collapses, FP assists appear"
		}
		if i%5 == 0 || marker != "" {
			fmt.Printf("%8d %8.3f %10.2f %8.1f%s\n", i, row.IPC, assist, row.CPUPct, marker)
		}
		if i > 500 {
			break
		}
	}

	if dropAt < 0 {
		fmt.Println("\nno phase change observed (try a larger scale)")
		return
	}
	fmt.Printf("\ndiagnosis: at sample %d the IPC fell below half its healthy level (%.2f)\n", dropAt, healthy)
	fmt.Println("while %CPU stayed at 100 — invisible to top. The FP_ASSIST column")
	fmt.Println("pinpoints the cause: the algorithm diverged to Inf/NaN values and every")
	fmt.Println("x87 operation now takes the micro-code assist path (Table 1: up to 87x).")
	fmt.Println("fix: clip the matrices each iteration (see the r-evolution-clipped workload).")
}
