// daemon shows the recording-and-export subsystem end-to-end: the
// Figure 1 data-center node is monitored continuously, a Recorder keeps
// per-task history and per-user aggregates, and a small HTTP server
// exposes them — then the program scrapes itself like Prometheus would
// and inspects one process's recorded IPC series, all through the
// public API (cmd/tiptopd is the production version of this server).
//
//	go run ./examples/daemon
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"tiptop"
)

func main() {
	scenario, err := tiptop.NewNamedScenario("datacenter", 0.01)
	if err != nil {
		log.Fatal(err)
	}
	mon, err := tiptop.NewSimMonitor(scenario, tiptop.Config{Interval: time.Second})
	if err != nil {
		log.Fatal(err)
	}
	defer mon.Close()

	// Attach the recorder: every sample lands in per-task rings and
	// the user/command/machine aggregates, without perturbing sampling.
	rec := tiptop.NewRecorder(tiptop.RecorderOptions{Capacity: 120, Window: 30 * time.Second})
	mon.Subscribe(rec)

	// Sample for a simulated minute.
	if _, err := mon.SampleNow(); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if _, err := mon.Sample(); err != nil {
			log.Fatal(err)
		}
	}

	// Serve the recorder the way tiptopd does.
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		rec.WriteOpenMetrics(w)
	})
	mux.HandleFunc("/api/v1/snapshot", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(rec.Snapshot())
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("monitoring %s, serving %s\n\n", mon.Machine(), base)

	// Scrape ourselves like Prometheus would.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Println("selected scrape lines:")
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "tiptop_tasks") ||
			strings.HasPrefix(line, "tiptop_machine_ipc") ||
			strings.HasPrefix(line, "tiptop_user_window_mips") {
			fmt.Println(" ", line)
		}
	}

	// The per-user roll-up reproduces the Figure 1 ownership split.
	snap := rec.Snapshot()
	fmt.Printf("\n%d tasks at t=%.0fs; per-user aggregates:\n", len(snap.Tasks), snap.TimeSeconds)
	for _, user := range []string{"user1", "user2", "user3"} {
		agg := snap.Users[user]
		fmt.Printf("  %-6s %2d tasks  IPC %.2f  %7.0f MIPS over the window\n",
			user, agg.Tasks, agg.IPC, agg.WindowMIPS)
	}

	// And one process's recorded history: the IPC series Prometheus
	// would graph, straight from the ring buffer.
	pid := rec.PIDs()[0]
	series := rec.History(pid)[0]
	points := series.Points
	if len(points) > 5 {
		points = points[len(points)-5:]
	}
	fmt.Printf("\nlast %d recorded points of pid %d (%s):\n", len(points), pid, series.Command)
	for _, p := range points {
		fmt.Printf("  t=%3.0fs  %%CPU %5.1f  IPC %.2f\n", p.TimeSeconds, p.CPUPct, p.IPC)
	}
}
