// Quickstart: monitor a simulated Nehalem workstation running a few
// SPEC-like workloads, exactly like launching the tiptop tool, but
// through the library API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"tiptop"
)

func main() {
	// A ready-made scenario: the paper's Xeon W3550 running mcf,
	// gromacs and hmmer. Swap in NewRealMonitor to watch your actual
	// machine when perf_event is available.
	scenario := tiptop.ScenarioSPEC()

	mon, err := tiptop.NewSimMonitor(scenario, tiptop.Config{
		Interval: 2 * time.Second, // the tool's default refresh
	})
	if err != nil {
		log.Fatal(err)
	}
	defer mon.Close()

	fmt.Printf("monitoring %s\n", mon.Machine())
	fmt.Printf("counters attached per task: %v\n\n", mon.Events())

	// The first refresh attaches counters to the already-running tasks
	// (no restart needed — the paper's key usability point).
	if _, err := mon.SampleNow(); err != nil {
		log.Fatal(err)
	}

	for i := 0; i < 5; i++ {
		sample, err := mon.Sample()
		if err != nil {
			log.Fatal(err)
		}
		if len(sample.Rows) == 0 {
			fmt.Println("all workloads finished")
			return
		}
		if err := mon.Render(os.Stdout, sample); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	// Beyond the rendered table, every row carries raw counter deltas
	// for custom analysis.
	sample, err := mon.Sample()
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range sample.Rows {
		fmt.Printf("%-14s IPC %.2f  (%d cycles, %d instructions, %d LLC misses)\n",
			row.Command, row.IPC,
			row.Events["CYCLES"], row.Events["INSTRUCTIONS"], row.Events["CACHE_MISSES"])
	}
}
