package tiptop

import (
	"fmt"
	"io"

	"tiptop/internal/core"
	"tiptop/internal/export"
	"tiptop/internal/history"
)

// RecorderOptions tune a Recorder; the zero value gives a 600-point
// ring per task, a one-minute rate window and an 8192-series retention
// bound.
type RecorderOptions = history.Options

// HistoryPoint is one recorded observation of a task.
type HistoryPoint = history.Point

// HistorySeries is the recorded time series of one task.
type HistorySeries = history.Series

// Aggregate is a roll-up over a set of tasks: live state of the last
// refresh, cumulative counter totals, and windowed rates.
type Aggregate = history.Aggregate

// Snapshot is a consistent copy of a Recorder's current state: the
// machine-wide, per-user and per-command aggregates plus the latest
// observation of every live task.
type Snapshot = history.Snapshot

// Recorder accumulates a Monitor's samples into fixed-capacity per-task
// ring buffers and incrementally maintained aggregates. Recording
// happens synchronously on the sampling goroutine and — once a task's
// ring and the aggregate entries exist — performs no allocations, so a
// subscribed Recorder does not perturb the engine's refresh cost.
// Queries are safe from any goroutine while sampling continues.
type Recorder struct {
	h *history.Recorder
}

// NewRecorder creates an unattached Recorder; attach it to a Monitor
// with Subscribe.
func NewRecorder(opt RecorderOptions) *Recorder {
	return &Recorder{h: history.New(opt)}
}

// Subscribe attaches the recorder: every subsequent Sample()/SampleNow()
// feeds it, including rows beyond Config.MaxRows. Not safe to call
// concurrently with Sample.
func (m *Monitor) Subscribe(r *Recorder) {
	if r == nil {
		return
	}
	cols := m.session.Screen().Columns
	names := make([]string, len(cols))
	for i, c := range cols {
		names[i] = c.Name
	}
	r.h.SetColumns(names)
	m.session.Subscribe(r.h)
}

// Unsubscribe detaches a previously subscribed recorder; its recorded
// history remains queryable. Not safe to call concurrently with Sample.
func (m *Monitor) Unsubscribe(r *Recorder) {
	if r == nil {
		return
	}
	m.session.Unsubscribe(r.h)
}

// Snapshot copies out the recorder's current state.
func (r *Recorder) Snapshot() *Snapshot { return r.h.Snapshot() }

// History returns the recorded series of every task with the given PID
// (several under per-thread monitoring), or nil if it was never seen.
func (r *Recorder) History(pid int) []HistorySeries { return r.h.History(pid) }

// PIDs lists every recorded process ID, sorted.
func (r *Recorder) PIDs() []int { return r.h.PIDs() }

// WriteOpenMetrics renders the recorder's aggregates and latest task
// values in the OpenMetrics / Prometheus text format.
func (r *Recorder) WriteOpenMetrics(w io.Writer) error {
	return export.WriteOpenMetrics(w, r.h.Snapshot())
}

// QueryExpr evaluates a screen-language expression over the recorder's
// live ring buffers — the same data the interactive screens render,
// served as series. Semantics match Store.QueryExpr on the same
// observations; counters (INSTRUCTIONS, CYCLES, CACHE_MISSES) sum per
// bucket while columns and CPU_PCT average.
//
// Deprecated: use Querier().QueryExpr, the variadic contract shared
// with Store and QueryClient. This delegate remains for compatibility.
func (r *Recorder) QueryExpr(expr string, opt QueryOptions) (*QueryResult, error) {
	return r.Querier().QueryExpr(expr, opt)
}

// Validate reports configuration errors a Monitor constructor would
// reject, with tiptop-level messages: an unknown screen or event
// definition, an unknown sort key, a negative interval or negative
// parallelism. Commands call it to fail fast on bad flags.
func (c Config) Validate() error {
	screen, _, err := c.resolve()
	if err != nil {
		return err
	}
	if c.Interval < 0 {
		return fmt.Errorf("tiptop: negative interval %v", c.Interval)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("tiptop: negative parallelism %d", c.Parallelism)
	}
	if err := core.ValidateSortKey(screen, c.SortBy); err != nil {
		return fmt.Errorf("tiptop: %w", err)
	}
	if c.StoreRetention < 0 {
		return fmt.Errorf("tiptop: negative store retention %v", c.StoreRetention)
	}
	if c.StoreBudget < 0 {
		return fmt.Errorf("tiptop: negative store budget %d", c.StoreBudget)
	}
	if c.StoreCompact < 0 {
		return fmt.Errorf("tiptop: negative store compaction period %v", c.StoreCompact)
	}
	return nil
}
