#!/bin/sh
# Docs gate: fail CI when README.md or ARCHITECTURE.md reference flags
# or endpoints that no longer exist in the source. Two checks run in the
# docs -> source direction (stale documentation is the failure mode):
#
#  1. every /api/v1/* endpoint and /metrics mentioned in the docs must
#     appear in cmd/ or internal/ Go sources;
#  2. every `<command> -flag` pair in the docs, plus the flag manifest
#     below (the flags the docs describe in prose or tables), must be
#     defined by that command's flag set.
#
# Run as `make docs` (part of `make verify`).
set -eu
cd "$(dirname "$0")/.."
fail=0

docs="README.md ARCHITECTURE.md"

# --- 1. endpoints -----------------------------------------------------
for ep in $(grep -ohE '/api/v1/[a-z]+|/metrics' $docs | sort -u); do
    if ! grep -rqF "\"GET $ep" cmd internal && ! grep -rqF "$ep" cmd/*/[a-z]*.go internal/remote internal/store; then
        echo "docs gate: endpoint $ep is documented but not served by any source file"
        fail=1
    fi
done

# --- 2. flags ---------------------------------------------------------
# flag_defined CMD FLAG -> 0 when cmd/CMD defines the flag.
flag_defined() {
    grep -qE "fs\.[A-Za-z0-9]+\(\"$2\"" "cmd/$1"/*.go
}

# 2a. `cmd -flag` adjacencies found in the docs. The leading character
# class keeps path suffixes like /var/lib/tiptop from matching the
# command name.
for cmd in tiptop tiptopd tipbench; do
    for flag in $(grep -ohE "(^|[^[:alnum:]/._-])$cmd +-[a-z][a-z-]*" $docs | grep -oE -- '-[a-z][a-z-]*$' | sed 's/^-//' | sort -u); do
        if ! flag_defined "$cmd" "$flag"; then
            echo "docs gate: docs show '$cmd -$flag' but cmd/$cmd defines no -$flag flag"
            fail=1
        fi
    done
done

# 2b. The manifest: every flag the docs describe, one cmd:flag per word.
manifest="
tiptop:b tiptop:d tiptop:n tiptop:screen tiptop:sort tiptop:rows
tiptop:u tiptop:j tiptop:o tiptop:record tiptop:connect tiptop:sim
tiptop:scale tiptop:list tiptop:list-events tiptop:dump-config
tiptop:config tiptop:system-wide tiptop:counters tiptop:wire
tiptop:fsync
tiptopd:addr tiptopd:d tiptopd:n tiptopd:history tiptopd:window
tiptopd:sim tiptopd:config tiptopd:join tiptopd:store
tiptopd:retention tiptopd:budget tiptopd:system-wide tiptopd:counters
tiptopd:fsync tiptopd:compact tiptopd:wire
tipbench:run tipbench:scale tipbench:out tipbench:list
tipbench:bench-refresh tipbench:bench-daemon tipbench:bench-store
tipbench:bench-query tipbench:query-records tipbench:query-workers
tipbench:bench-mux tipbench:validate
"

# 2c. Named scenarios the docs mention as `-sim NAME` must exist in
# ScenarioNames() (scenario.go) — a renamed scenario otherwise leaves
# the README's walkthroughs pointing at the unknown-scenario error.
for name in $(grep -ohE -- '-sim +[a-z][a-z-]*' $docs | awk '{print $2}' | sort -u); do
    if ! grep -qE "\"$name\"" scenario.go; then
        echo "docs gate: docs show '-sim $name' but scenario.go names no \"$name\" scenario"
        fail=1
    fi
done
for entry in $manifest; do
    cmd=${entry%%:*}
    flag=${entry#*:}
    if ! flag_defined "$cmd" "$flag"; then
        echo "docs gate: manifest names $cmd -$flag but cmd/$cmd defines no -$flag flag"
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "docs gate: FAILED (update README.md/ARCHITECTURE.md or the manifest in scripts/check-docs.sh)"
    exit 1
fi
echo "docs gate: OK"
