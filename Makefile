# Tier-1 verification for the tiptop reproduction. `make verify` is
# what CI runs; the go.mod at the repo root is load-bearing — without it
# every target here fails with "directory prefix . does not contain
# main module".

GO ?= go

.PHONY: verify fmt build vet test race bench fuzz docs validate

verify: fmt build vet race docs

# The tree must be gofmt-clean; print the offenders and fail otherwise.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# -shuffle=on randomizes test (and subtest) execution order each run,
# so order-dependent tests fail here instead of flaking later.
test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./...

# The docs gate: flags and endpoints named in README.md and
# ARCHITECTURE.md must exist in the source (stale docs fail the build).
# The Example functions run under `go test`, so the documented snippets
# are covered by race/test above.
docs:
	./scripts/check-docs.sh

# Short coverage-guided passes over the metric-expression parser, the
# query-layer compiler and the v2 columnar frame decoder; CI runs them
# so a grammar change that panics, breaks the canonical rendering
# fixpoint, lets a non-finite value through the totality rule, or makes
# the store's frame reader panic/over-read on corrupt bytes is caught
# before it lands.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzParseExpr$$' -fuzztime 15s ./internal/metrics/
	$(GO) test -run '^$$' -fuzz '^FuzzCompileQuery$$' -fuzztime 15s ./internal/query/
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeFrame$$' -fuzztime 15s ./internal/store/

# The counter-validation oracle (§2.4): every ukernel.ValidationSuite
# micro-kernel runs live on all four machine models and its measured
# counts are asserted layer by layer (session deltas, mux extrapolation,
# store round-trip, derived query expressions) against the analytic
# expectations. Writes results/VALIDATE.json; exits non-zero when any
# muxed layer is off by more than 5% or any unconstrained count is
# inexact.
validate:
	$(GO) run ./cmd/tipbench -validate -out results

# Serial vs sharded sampling on the many-task stress scenario, plus the
# machine-readable trajectory files:
#   results/BENCH_refresh.json  ns/op and allocs/op for the 1000/4000-task
#                               serial and sharded refreshes
#   results/BENCH_daemon.json   tiptopd serving costs — cached vs uncached
#                               /metrics encode, wire encode, SSE fan-out
#   results/BENCH_store.json    durable store: steady-state append ns/op +
#                               allocs/op, recovery of a 1M-record store,
#                               1m-tier range query
#   results/BENCH_query.json    expression query engine: IPC over a
#                               1M-record store from the 10s and 1m tiers,
#                               topk-by-user ranking, 3-agent fleet merge
bench:
	$(GO) test -run xxx -bench 'BenchmarkUpdate[0-9]+' -benchmem ./internal/core/
	$(GO) run ./cmd/tipbench -bench-refresh -out results
	$(GO) run ./cmd/tipbench -bench-daemon -out results
	$(GO) run ./cmd/tipbench -bench-store -out results
	$(GO) run ./cmd/tipbench -bench-query -out results
	$(GO) run ./cmd/tipbench -bench-mux -out results
