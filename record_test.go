package tiptop

import (
	"strings"
	"testing"
	"time"
)

func recordedMonitor(t *testing.T) (*Monitor, *Recorder) {
	t.Helper()
	sc, err := NewNamedScenario("datacenter", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := NewSimMonitor(sc, Config{Interval: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mon.Close() })
	rec := NewRecorder(RecorderOptions{Capacity: 16})
	mon.Subscribe(rec)
	return mon, rec
}

func TestRecorderThroughMonitor(t *testing.T) {
	mon, rec := recordedMonitor(t)
	if _, err := mon.SampleNow(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := mon.Sample(); err != nil {
			t.Fatal(err)
		}
	}

	snap := rec.Snapshot()
	if len(snap.Tasks) != 11 {
		t.Fatalf("snapshot tasks = %d, want the 11 Figure 1 processes", len(snap.Tasks))
	}
	if snap.Refreshes != 4 { // SampleNow + 3 Samples
		t.Fatalf("refreshes = %d", snap.Refreshes)
	}
	if snap.Machine.Tasks != 11 || snap.Machine.IPC <= 0 {
		t.Fatalf("machine aggregate = %+v", snap.Machine)
	}
	if len(snap.Users) != 3 {
		t.Fatalf("users = %v", snap.Users)
	}
	u1 := snap.Users["user1"]
	if u1.Tasks != 8 || u1.Instructions == 0 {
		t.Fatalf("user1 aggregate = %+v", u1)
	}
	if got := len(snap.Columns); got != len(mon.Headers()) {
		t.Fatalf("columns = %d, want %d", got, len(mon.Headers()))
	}

	pids := rec.PIDs()
	if len(pids) != 11 {
		t.Fatalf("pids = %v", pids)
	}
	series := rec.History(pids[0])
	if len(series) != 1 {
		t.Fatalf("series = %d", len(series))
	}
	s := series[0]
	// The first observation (the SampleNow attach pass) reads zero
	// deltas; the three refresh points follow.
	if len(s.Points) != 4 || !s.Alive {
		t.Fatalf("series = %+v", s)
	}
	last := s.Points[len(s.Points)-1]
	if last.IPC <= 0 || len(last.Values) != len(snap.Columns) {
		t.Fatalf("last point = %+v", last)
	}
	if rec.History(424242) != nil {
		t.Fatal("unknown pid must return nil")
	}
}

func TestRecorderOpenMetricsEndToEnd(t *testing.T) {
	mon, rec := recordedMonitor(t)
	mon.SampleNow()
	if _, err := mon.Sample(); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := rec.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"tiptop_tasks 11",
		`tiptop_user_tasks{user="user1"} 8`,
		`tiptop_task_ipc{pid=`,
		"# EOF",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestUnsubscribeStopsRecording(t *testing.T) {
	mon, rec := recordedMonitor(t)
	mon.SampleNow()
	mon.Unsubscribe(rec)
	if _, err := mon.Sample(); err != nil {
		t.Fatal(err)
	}
	if got := rec.Snapshot().Refreshes; got != 1 {
		t.Fatalf("refreshes after unsubscribe = %d, want 1", got)
	}
	// Nil recorders are ignored.
	mon.Subscribe(nil)
	mon.Unsubscribe(nil)
}

func TestRecorderSeesRowsBeyondMaxRows(t *testing.T) {
	sc, err := NewNamedScenario("datacenter", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := NewSimMonitor(sc, Config{Interval: time.Second, MaxRows: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	rec := NewRecorder(RecorderOptions{})
	mon.Subscribe(rec)
	mon.SampleNow()
	sample, err := mon.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if len(sample.Rows) != 3 {
		t.Fatalf("display rows = %d, want MaxRows 3", len(sample.Rows))
	}
	if got := len(rec.Snapshot().Tasks); got != 11 {
		t.Fatalf("recorded tasks = %d, want all 11 despite MaxRows", got)
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero value", Config{}, true},
		{"sort by column", Config{SortBy: "ipc"}, true},
		{"sort by pid", Config{SortBy: "pid"}, true},
		{"branch screen column", Config{Screen: "branch", SortBy: "misp"}, true},
		{"unknown screen", Config{Screen: "quantum"}, false},
		{"unknown sort key", Config{SortBy: "karma"}, false},
		{"column of another screen", Config{Screen: "branch", SortBy: "dmis"}, false},
		{"negative interval", Config{Interval: -time.Second}, false},
		{"negative parallelism", Config{Parallelism: -1}, false},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: error expected", tc.name)
		}
	}
}

func TestNewNamedScenarioNames(t *testing.T) {
	for _, name := range ScenarioNames() {
		if _, err := NewNamedScenario(name, 0.001); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := NewNamedScenario("wargames", 1); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}
