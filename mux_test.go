package tiptop

import (
	"strings"
	"testing"
	"time"
)

// TestMuxConvergenceSteadyA7 is the multiplexing subsystem's golden
// scenario: the 12-hardware-event "wide" screen on a Cortex-A7 sim
// (4 counters) forces the mux layer to rotate counter groups, and the
// Enabled/Running-extrapolated counts must converge to the simulator's
// true totals within 5% under the steady workloads.
func TestMuxConvergenceSteadyA7(t *testing.T) {
	sc, err := NewNamedScenario("steady", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := NewSimMonitor(sc, Config{Screen: "wide", Interval: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	// The scenario genuinely oversubscribes the PMU: 12 hardware events
	// on a 4-counter machine.
	if name, capacity := mon.BackendCapacity(); name != "sim" || capacity != 4 {
		t.Fatalf("backend = %s capacity %d, want sim with the A7's 4 counters", name, capacity)
	}
	headers := strings.Join(mon.Headers(), " ")
	if !strings.Contains(headers, "%SMPL") {
		t.Fatalf("wide screen headers = %q, want the %%SMPL coverage column", headers)
	}

	if _, err := mon.SampleNow(); err != nil { // attach pass
		t.Fatal(err)
	}
	// Ground-truth baseline right after the counters attached.
	base := map[int]map[string]uint64{}
	first, err := mon.SampleNow()
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Rows) != 4 {
		t.Fatalf("rows = %d, want the 4 pinned steady jobs", len(first.Rows))
	}
	for _, r := range first.Rows {
		base[r.PID] = map[string]uint64{}
		for _, ev := range []string{"INSTRUCTIONS", "CYCLES"} {
			v, err := sc.TaskTotal(r.PID, ev)
			if err != nil {
				t.Fatal(err)
			}
			base[r.PID][ev] = v
		}
	}

	// Accumulate extrapolated per-refresh deltas over many rotations.
	sums := map[int]map[string]uint64{}
	sawPartial := false
	var last *Sample
	for i := 0; i < 60; i++ {
		s, err := mon.Sample()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range s.Rows {
			if sums[r.PID] == nil {
				sums[r.PID] = map[string]uint64{}
			}
			sums[r.PID]["INSTRUCTIONS"] += r.Events["INSTRUCTIONS"]
			sums[r.PID]["CYCLES"] += r.Events["CYCLES"]
			if r.Coverage < 1 {
				sawPartial = true
			}
			if len(r.Columns) != len(mon.Headers()) {
				t.Fatalf("row has %d values for %d columns", len(r.Columns), len(mon.Headers()))
			}
		}
		last = s
	}
	if !sawPartial {
		t.Fatal("no row ever reported coverage < 1: the mux never rotated")
	}

	// Every one of the 12 metric columns must carry a finite value on
	// the final refresh — rotation fills them all in, just more slowly.
	for _, r := range last.Rows {
		for i, v := range r.Columns {
			if v < 0 {
				t.Fatalf("pid %d column %q = %v", r.PID, mon.Columns()[i], v)
			}
		}
	}

	for pid, got := range sums {
		for _, ev := range []string{"INSTRUCTIONS", "CYCLES"} {
			truth, err := sc.TaskTotal(pid, ev)
			if err != nil {
				t.Fatal(err)
			}
			want := truth - base[pid][ev]
			if want == 0 {
				t.Fatalf("pid %d %s: ground truth did not advance", pid, ev)
			}
			rel := float64(got[ev])/float64(want) - 1
			if rel < -0.05 || rel > 0.05 {
				t.Errorf("pid %d %s: extrapolated %d vs true %d (%.2f%% error), want within 5%%",
					pid, ev, got[ev], want, rel*100)
			}
		}
	}
}

// TestMuxFixedCountersU74 exercises the tightest preset: the RISC-V
// U74 has two programmable registers next to fixed cycle/instret CSRs.
// The wide screen's ten other hardware events must rotate five groups
// deep, while CYCLES and INSTRUCTIONS — costing no slot — stay
// attached continuously and read exactly (Enabled == Running, no
// extrapolation).
func TestMuxFixedCountersU74(t *testing.T) {
	sc, err := NewScenario(MachineSiFiveU74)
	if err != nil {
		t.Fatal(err)
	}
	pid, err := sc.StartSynthetic("bench", "steady", 1.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := NewSimMonitor(sc, Config{Screen: "wide", Interval: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	if name, capacity := mon.BackendCapacity(); name != "sim" || capacity != 2 {
		t.Fatalf("backend = %s capacity %d, want sim with the U74's 2 programmable registers", name, capacity)
	}

	if _, err := mon.SampleNow(); err != nil { // attach pass
		t.Fatal(err)
	}
	if _, err := mon.SampleNow(); err != nil {
		t.Fatal(err)
	}
	baseInstr, err := sc.TaskTotal(pid, "INSTRUCTIONS")
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	sawPartial := false
	for i := 0; i < 20; i++ {
		s, err := mon.Sample()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range s.Rows {
			sum += r.Events["INSTRUCTIONS"]
			if r.Coverage < 1 {
				sawPartial = true
			}
		}
	}
	if !sawPartial {
		t.Fatal("no rotation on a 2-register PMU running the 12-event wide screen")
	}
	truth, err := sc.TaskTotal(pid, "INSTRUCTIONS")
	if err != nil {
		t.Fatal(err)
	}
	// The fixed instret CSR never left the task: its deltas are exact,
	// not extrapolated, even while the programmable events rotated.
	if want := truth - baseInstr; sum != want {
		t.Fatalf("fixed-counter INSTRUCTIONS drifted: summed %d, true %d", sum, want)
	}
}

// TestSystemWideSimMonitor drives the facade in system-wide mode: rows
// are per-CPU (one per logical CPU of the machine), carry the cpu
// pseudo-identity, and count the software events of the "system"
// screen.
func TestSystemWideSimMonitor(t *testing.T) {
	sc, err := NewNamedScenario("steady", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := NewSimMonitor(sc, Config{SystemWide: true, Interval: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	// System-wide defaults to the "system" screen.
	headers := strings.Join(mon.Headers(), " ")
	for _, h := range []string{"PGFLT", "CSW", "MIGR"} {
		if !strings.Contains(headers, h) {
			t.Fatalf("system screen headers = %q, missing %q", headers, h)
		}
	}

	mon.SampleNow() // attach pass
	s, err := mon.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 4 {
		t.Fatalf("rows = %d, want one per A7 CPU", len(s.Rows))
	}
	seen := map[int]bool{}
	for _, r := range s.Rows {
		cpu, ok := r.CPU()
		if !ok {
			t.Fatalf("row %+v is not a per-CPU row", r)
		}
		seen[cpu] = true
		if want := "cpu" + string(rune('0'+cpu)); r.Command != want {
			t.Fatalf("command = %q, want %q", r.Command, want)
		}
		if !r.Monitored {
			t.Fatalf("cpu%d row unmonitored", cpu)
		}
		// Every core runs a pinned steady job, so cycles accumulate.
		if r.Events["CYCLES"] == 0 {
			t.Fatalf("cpu%d counted no cycles", cpu)
		}
	}
	for cpu := 0; cpu < 4; cpu++ {
		if !seen[cpu] {
			t.Fatalf("cpu%d missing from sample", cpu)
		}
	}
}
