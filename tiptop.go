// Package tiptop is a Go reproduction of "Tiptop: Hardware Performance
// Counters for the Masses" (Erven Rohou, INRIA RR-7789 / ICPP 2012): a
// library and tool that attach hardware performance counters to
// already-running processes — no root, no source code, no restart — and
// derive simple, meaningful metrics such as IPC and cache misses per
// hundred instructions.
//
// Two backends are provided:
//
//   - the real backend uses the Linux perf_event_open(2) system call and
//     the /proc filesystem, exactly like the original tool;
//   - the simulated backend runs workloads on a deterministic machine
//     simulator (Nehalem/Westmere/Core 2/PPC970 presets with caches,
//     SMT, an OS scheduler and a virtual PMU), which is how the paper's
//     evaluation is reproduced in environments without PMU access.
//
// Sampling scales with the task count: the engine shards the process
// table across a worker pool (Config.Parallelism, default one shard per
// CPU) and reads counters and evaluates metric columns concurrently,
// while producing exactly the row ordering of a serial scan.
//
// The quickest way in:
//
//	mon, err := tiptop.NewSimMonitor(tiptop.ScenarioSPEC(), tiptop.Config{})
//	...
//	sample, err := mon.Sample()
//	for _, row := range sample.Rows {
//	    fmt.Println(row.Command, row.IPC)
//	}
package tiptop

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"tiptop/internal/config"
	"tiptop/internal/core"
	"tiptop/internal/hpm"
	"tiptop/internal/metrics"
	"tiptop/internal/mux"
	"tiptop/internal/perfevent"
	"tiptop/internal/procfs"
	"tiptop/internal/ui"
)

// Config tunes a Monitor.
type Config struct {
	// Interval is the refresh period; default 2 s. The paper samples
	// every few seconds — sub-second intervals work but increase
	// perturbation.
	Interval time.Duration
	// Screen selects the metric columns by name: "default" (Figure 1:
	// Mcycle, Minst, IPC, DMIS), "branch", "fp", or "mem". Empty means
	// "default".
	Screen string
	// SortBy orders rows: "cpu" (default), "pid", or a column name.
	SortBy string
	// MaxRows truncates the display (0 = all).
	MaxRows int
	// User restricts monitoring to one user's processes.
	User string
	// PerThread monitors individual threads instead of whole processes
	// (paper §2.2: "Events can be counted per thread, or per process").
	PerThread bool
	// SystemWide monitors logical CPUs instead of tasks (perf's "-a"
	// mode): one row per CPU, counters opened with pid=-1/cpu=N on the
	// real backend and per-CPU scheduler aggregation on the simulator.
	// The default screen becomes "system" (cycles, instructions and the
	// kernel software events). Needs perf_event_paranoid <= 0 or
	// CAP_PERFMON on real machines. PerThread and User are ignored.
	SystemWide bool
	// Counters declares how many events the PMU can count at once,
	// enabling userland counter rotation (internal/mux) when a screen
	// wants more: events are cycled through the registers and counts
	// extrapolated by enabled/running time, with coverage visible as
	// SMPL_PCT. 0 (the default) leaves multiplexing to the kernel. The
	// simulated backend takes its capacity from the machine model and
	// ignores this.
	Counters int
	// Parallelism is the number of sampling shards the engine
	// partitions the process table across: counters are read and
	// metric columns evaluated concurrently, one goroutine per shard,
	// with row ordering identical to serial sampling. 0 selects one
	// shard per CPU; 1 samples serially.
	Parallelism int
	// Events defines extra counter events on top of the built-in
	// registry (typically from <event> elements of an XML configuration
	// file). Screen expressions reference them by Name.
	Events []EventDef
	// Screens defines custom screens selectable via Screen (typically
	// from <screen> elements of an XML configuration file). A custom
	// screen takes precedence over a built-in of the same name.
	Screens []ScreenDef
	// Exprs defines named stored expressions (typically from <expr>
	// elements of an XML configuration file): query-grammar sources a
	// daemon serves under their name at /api/v1/query?expr=<name>, and
	// screen columns may reference as their whole expression.
	Exprs []ExprDef
	// StoreDir, when set, names the directory of the durable on-disk
	// history store (OpenStore) samples are teed into: tiptopd -store
	// and tiptop -record with a store target plumb it here, as does the
	// XML <options store=> attribute.
	StoreDir string
	// StoreRetention is the store's age horizon: records older than
	// this (on the store's monotonic clock) are retired. 0 keeps
	// everything the byte budget allows.
	StoreRetention time.Duration
	// StoreBudget bounds the store's size on disk in bytes (0 = the
	// 64 MiB default). Oldest segments are retired first, raw tier
	// before the downsampled ones.
	StoreBudget int64
	// StoreFsync is the store's group-commit durability policy
	// (tiptopd -fsync, <options fsync=>): how far behind a kernel
	// crash may leave durable history. The zero policy never syncs.
	StoreFsync FsyncPolicy
	// StoreCompact, when positive, is the period at which a daemon
	// compacts its store into the columnar record format v2 (tiptopd
	// -compact, <options compact=>). 0 never compacts automatically.
	StoreCompact time.Duration
}

// StoreOptions translates the Config's store fields into options for
// OpenStore — the one place the commands build them.
func (cfg Config) StoreOptions() StoreOptions {
	return StoreOptions{Retention: cfg.StoreRetention, Budget: cfg.StoreBudget, Fsync: cfg.StoreFsync}
}

// EventDef defines one user event: Name is the identifier metric
// expressions use, Spec is any event specification the registry
// resolves — "RAW:0x<hex>" for a model-specific code from the vendor's
// manual, a hw-cache event such as "L1D_READ_MISS", or an existing
// event name (aliasing).
type EventDef struct {
	Name string
	Spec string
	Unit string
	Desc string
}

// ExprDef defines one named stored expression. Expr may use the full
// query grammar — topk(), `by user|command|agent` grouping,
// *_over_time() folds — which range queries serve and screen columns
// reject.
type ExprDef struct {
	Name string
	Expr string
	Desc string
}

// ColumnDef defines one column of a custom screen.
type ColumnDef struct {
	Name   string // machine-friendly identifier, unique in the screen
	Header string // display heading
	Format string // printf verb for the cell ("" = %8.2f)
	Width  int    // minimum cell width (0 = derived from the header)
	Expr   string // metric expression over event names
	Desc   string
}

// ScreenDef defines a custom screen.
type ScreenDef struct {
	Name    string
	Columns []ColumnDef
}

// Row is one monitored task in a sample.
type Row struct {
	PID int
	// TID is the thread id under Config.PerThread (equal to PID for
	// the main thread), 0 for process-scope rows.
	TID     int
	User    string
	Command string
	State   string
	CPUPct  float64
	// IPC is instructions per cycle over the refresh interval.
	IPC float64
	// Columns holds the screen's computed values, ordered as Headers().
	Columns []float64
	// Events holds raw counter deltas keyed by canonical event name
	// (CYCLES, INSTRUCTIONS, CACHE_MISSES, ...).
	Events map[string]uint64
	// Coverage is the fraction of the refresh interval the row's
	// counters were actually counting: 1 when exact, lower when the
	// values are enabled/running extrapolations because the PMU was
	// oversubscribed (kernel multiplexing or internal/mux rotation).
	Coverage float64
	// Monitored is false when counters could not be attached to the
	// task (e.g. another user's process without privileges).
	Monitored bool
	// Start is the task's start time on the monitor clock — the
	// PID-reuse discriminator recorders and the remote wire format
	// carry along.
	Start time.Duration
}

// CPU reports whether the row is a system-wide per-CPU pseudo-task
// (Config.SystemWide) and, if so, which logical CPU it covers. The
// negative-PID encoding is hpm.CPUTask's.
func (r *Row) CPU() (int, bool) {
	if r.PID >= 0 {
		return 0, false
	}
	return -r.PID - 1, true
}

// Sample is one refresh of the monitor.
type Sample struct {
	Time time.Duration
	Rows []Row
	// Dropped counts tasks that disappeared since the previous refresh
	// — the per-refresh churn signal.
	Dropped int
}

// Monitor is a running tiptop engine over some backend.
type Monitor struct {
	session *core.Session
	machine string
}

// ErrNoBackend is returned by NewRealMonitor when perf_event_open is not
// usable in this environment (common in containers); callers typically
// fall back to a simulated scenario.
var ErrNoBackend = errors.New("tiptop: no usable counter backend")

// buildRegistry resolves cfg.Events on top of the built-in defaults.
// Registration goes through config.RegisterUserEvent — the same
// builder behind XML <event> definitions — so the two paths validate
// identically.
func (cfg Config) buildRegistry() (*hpm.Registry, error) {
	registry := hpm.DefaultRegistry()
	for _, def := range cfg.Events {
		if err := config.RegisterUserEvent(registry, def.Name, def.Spec, def.Unit, def.Desc); err != nil {
			return nil, fmt.Errorf("tiptop: %w", err)
		}
	}
	return registry, nil
}

// ApplyDefinitions merges a parsed XML configuration document's
// <event>, <expr> and <screen> elements into the config — the one
// translation both commands (tiptop, tiptopd) use. Screen columns
// whose expression is exactly a stored expression's name are expanded
// here, so the facade's screen builder needs no expression registry.
func (cfg *Config) ApplyDefinitions(f *config.File) {
	for _, e := range f.Events {
		cfg.Events = append(cfg.Events, EventDef{
			Name: e.Name, Spec: e.EventSpec(), Unit: e.Unit, Desc: e.Desc,
		})
	}
	for _, e := range f.Exprs {
		cfg.Exprs = append(cfg.Exprs, ExprDef{Name: e.Name, Expr: e.Expr, Desc: e.Desc})
	}
	named := f.NamedExprs()
	for _, sx := range f.Screens {
		sd := ScreenDef{Name: sx.Name}
		for _, cx := range sx.Columns {
			expr := cx.Expr
			if src, ok := named[strings.TrimSpace(expr)]; ok {
				expr = src
			}
			sd.Columns = append(sd.Columns, ColumnDef{
				Name: cx.Name, Header: cx.Header, Format: cx.Format,
				Width: cx.Width, Expr: expr, Desc: cx.Desc,
			})
		}
		cfg.Screens = append(cfg.Screens, sd)
	}
}

// NamedExprs returns the config's stored expressions as a name →
// source map, nil when none are defined — the form QueryHandler
// consumers pass to NamedExprHandler.
func (cfg Config) NamedExprs() map[string]string {
	if len(cfg.Exprs) == 0 {
		return nil
	}
	m := make(map[string]string, len(cfg.Exprs))
	for _, e := range cfg.Exprs {
		m[e.Name] = e.Expr
	}
	return m
}

// resolveScreen selects cfg.Screen among the custom screens (which take
// precedence) and the built-ins.
func (cfg Config) resolveScreen() (*metrics.Screen, error) {
	name := cfg.Screen
	if name == "" {
		name = "default"
		if cfg.SystemWide {
			name = "system"
		}
	}
	for _, sd := range cfg.Screens {
		if sd.Name != name {
			continue
		}
		return buildScreen(sd)
	}
	s, ok := metrics.BuiltinScreens()[name]
	if !ok {
		return nil, fmt.Errorf("tiptop: unknown screen %q", name)
	}
	return s, nil
}

// buildScreen compiles a screen definition.
func buildScreen(sd ScreenDef) (*metrics.Screen, error) {
	if len(sd.Columns) == 0 {
		return nil, fmt.Errorf("tiptop: screen %q has no columns", sd.Name)
	}
	s := &metrics.Screen{Name: sd.Name}
	for _, cd := range sd.Columns {
		expr, err := metrics.Compile(cd.Expr)
		if err != nil {
			return nil, fmt.Errorf("tiptop: screen %q column %q: %w", sd.Name, cd.Name, err)
		}
		format := cd.Format
		if format == "" {
			format = "%8.2f"
		}
		width := cd.Width
		if width == 0 {
			width = len(cd.Header)
			if width < 6 {
				width = 6
			}
		}
		s.Columns = append(s.Columns, &metrics.Column{
			Name:   cd.Name,
			Header: cd.Header,
			Width:  width,
			Format: format,
			Expr:   expr,
			Desc:   cd.Desc,
		})
	}
	return s, nil
}

func coreOptions(cfg Config, screen *metrics.Screen, registry *hpm.Registry) core.Options {
	return core.Options{
		Screen:      screen,
		Interval:    cfg.Interval,
		SortBy:      cfg.SortBy,
		MaxRows:     cfg.MaxRows,
		FilterUser:  cfg.User,
		Parallelism: cfg.Parallelism,
		Registry:    registry,
	}
}

// NewRealMonitor monitors the real machine through perf_event and /proc.
// It returns ErrNoBackend (wrapped) when the kernel does not permit
// perf_event_open here.
func NewRealMonitor(cfg Config) (*Monitor, error) {
	screen, registry, err := cfg.resolve()
	if err != nil {
		return nil, err
	}
	backend := perfevent.New()
	backend.SetCapacity(cfg.Counters)
	if err := backend.Probe(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoBackend, err)
	}
	src := procfs.NewSource("")
	src.PerThread = cfg.PerThread
	src.SystemWide = cfg.SystemWide
	session, err := core.NewSession(mux.Wrap(backend), src, core.NewRealClock(), coreOptions(cfg, screen, registry))
	if err != nil {
		return nil, err
	}
	return &Monitor{session: session, machine: "live perf_event"}, nil
}

// NewSimMonitor monitors a simulated scenario. The scenario's clock is
// driven by the monitor: each Sample() advances simulated time by the
// configured interval.
func NewSimMonitor(sc *Scenario, cfg Config) (*Monitor, error) {
	if sc == nil {
		return nil, errors.New("tiptop: nil scenario")
	}
	screen, registry, err := cfg.resolve()
	if err != nil {
		return nil, err
	}
	src := sc.source()
	src.PerThread = cfg.PerThread
	src.SystemWide = cfg.SystemWide
	session, err := core.NewSession(mux.Wrap(sc.backend()), src, sc.clock(), coreOptions(cfg, screen, registry))
	if err != nil {
		return nil, err
	}
	return &Monitor{session: session, machine: sc.Machine().Name}, nil
}

// resolve builds the screen and event registry of a configuration,
// resolving every screen identifier so Config.Validate fails on
// exactly what a Monitor constructor would reject.
func (cfg Config) resolve() (*metrics.Screen, *hpm.Registry, error) {
	registry, err := cfg.buildRegistry()
	if err != nil {
		return nil, nil, err
	}
	screen, err := cfg.resolveScreen()
	if err != nil {
		return nil, nil, err
	}
	if _, err := core.ResolveScreenEvents(registry, screen); err != nil {
		return nil, nil, fmt.Errorf("tiptop: %w", err)
	}
	return screen, registry, nil
}

// Machine describes what the monitor observes.
func (m *Monitor) Machine() string { return m.machine }

// Interval returns the monitor's refresh period.
func (m *Monitor) Interval() time.Duration { return m.session.Interval() }

// Headers returns the metric column headings of the active screen.
func (m *Monitor) Headers() []string {
	cols := m.session.Screen().Columns
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = c.Header
	}
	return out
}

// Columns returns the metric column names of the active screen — the
// stable machine-friendly identifiers ("ipc", "dmis", ...), where
// Headers returns the display headings.
func (m *Monitor) Columns() []string {
	cols := m.session.Screen().Columns
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = c.Name
	}
	return out
}

// Sample advances one refresh interval and returns the new sample.
func (m *Monitor) Sample() (*Sample, error) {
	m.session.AdvanceClock()
	return m.sampleNow()
}

// SampleNow reads counters without advancing time (the first call of a
// session attaches counters and reads zeros).
func (m *Monitor) SampleNow() (*Sample, error) { return m.sampleNow() }

func (m *Monitor) sampleNow() (*Sample, error) {
	cs, err := m.session.Update()
	if err != nil {
		return nil, err
	}
	out := &Sample{Time: cs.Time, Rows: make([]Row, 0, len(cs.Rows)), Dropped: cs.Dropped}
	for i := range cs.Rows {
		r := &cs.Rows[i]
		row := Row{
			PID:       r.Info.ID.PID,
			TID:       r.Info.ID.TID,
			User:      r.Info.User,
			Command:   r.Info.Comm,
			State:     r.Info.State,
			CPUPct:    r.CPUPct,
			IPC:       r.IPC(),
			Columns:   append([]float64(nil), r.Values...),
			Coverage:  r.Coverage,
			Monitored: r.Valid,
			Start:     r.Info.StartTime,
			Events:    make(map[string]uint64, len(r.Events)),
		}
		for e, v := range r.Events {
			row.Events[e] = v
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render writes the sample as a batch-mode text block (the tiptop -b
// format) to w.
func (m *Monitor) Render(w io.Writer, s *Sample) error {
	return renderSample(m.session.Screen(), w, s)
}

// renderSample writes a public sample as a batch text block under the
// given screen — shared by the local and remote monitors so the same
// refresh renders byte-identically on both sides of the wire.
func renderSample(screen *metrics.Screen, w io.Writer, s *Sample) error {
	// Rebuild a core sample view for the renderer.
	cs := &core.Sample{Time: s.Time}
	for _, row := range s.Rows {
		cr := core.Row{
			Info: core.TaskInfo{
				ID:    hpm.TaskID{PID: row.PID, TID: row.TID},
				User:  row.User,
				Comm:  row.Command,
				State: row.State,
			},
			CPUPct: row.CPUPct,
			Values: row.Columns,
			Valid:  row.Monitored,
		}
		cs.Rows = append(cs.Rows, cr)
	}
	br := &ui.BatchRenderer{W: w, Timestamps: true}
	return br.Render(screen, cs)
}

// Close releases the monitor's counters.
func (m *Monitor) Close() error { return m.session.Close() }

// Events lists the canonical names of the counters the monitor attaches
// to every task.
func (m *Monitor) Events() []string {
	evs := m.session.Events()
	out := make([]string, len(evs))
	for i, e := range evs {
		out[i] = e.String()
	}
	return out
}
