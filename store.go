package tiptop

// The durable-history facade: OpenStore and the Recorder.Tee hook give
// library users the same persistent, queryable store tiptopd -store
// runs on, and NewQueryClient consumes a daemon's /api/v1/query
// endpoint remotely. See internal/store for the format and retention
// semantics.

import (
	"net/http"
	"time"

	"tiptop/internal/core"
	"tiptop/internal/history"
	"tiptop/internal/hpm"
	"tiptop/internal/query"
	"tiptop/internal/store"
)

// StoreOptions tune a Store: segment rotation, the retention age
// horizon and the on-disk byte budget. The zero value gives 1 MiB
// segments, a 64 MiB budget and no age horizon.
type StoreOptions = store.Options

// StoreQuery selects a time range (and optionally one PID and a step)
// of recorded history.
type StoreQuery = store.QueryOptions

// StoreResult is a range-query response: per-task series plus the
// machine-wide roll-up, at the resolution the step selected.
type StoreResult = store.Result

// StoreSeries is one task's points inside a queried range.
type StoreSeries = store.Series

// StorePoint is one observation of a queried series.
type StorePoint = store.Point

// Store is a durable, segmented on-disk history store: every sample
// teed into it is appended crash-safely, downsampled into 10-second
// and 1-minute tiers, and retired by age and byte budget. One
// goroutine may record while any number query.
type Store struct {
	s *store.Store
}

// OpenStore creates or recovers a store in dir. Recovery scans every
// segment, clips a torn tail record (the signature of a crash
// mid-append), and resumes the store's monotonic clock past the newest
// recovered record so history spans restarts without time going
// backwards.
func OpenStore(dir string, opt StoreOptions) (*Store, error) {
	s, err := store.Open(dir, opt)
	if err != nil {
		return nil, err
	}
	return &Store{s: s}, nil
}

// Tee attaches the store to the recorder: every sample the recorder
// observes (from a local Monitor or a remote stream) is also appended
// to the store, on the sampling goroutine but outside the recorder's
// lock. Append errors are latched — check Store.Err. Not safe to call
// concurrently with sampling.
func (r *Recorder) Tee(st *Store) {
	if st == nil {
		r.h.Tee(nil)
		return
	}
	r.h.Tee(st.s)
}

// Dir returns the store's directory.
func (st *Store) Dir() string { return st.s.Dir() }

// Err returns the first append error since opening, nil while healthy.
func (st *Store) Err() error { return st.s.Err() }

// Records counts the records on disk across all resolution tiers.
func (st *Store) Records() int64 { return st.s.Records() }

// DiskUsage returns the store's current size on disk, in bytes.
func (st *Store) DiskUsage() int64 { return st.s.DiskUsage() }

// LastTime returns the newest record's time on the store's monotonic
// clock.
func (st *Store) LastTime() time.Duration { return st.s.LastTime() }

// SetColumns labels subsequent records with the screen's column names.
// Recorder.Tee and RecordSample-based sinks call it for you.
func (st *Store) SetColumns(names []string) { st.s.SetColumns(names) }

// Query scans the store for a time range, serving from the downsample
// tier the query's step selects.
func (st *Store) Query(q StoreQuery) (*StoreResult, error) { return st.s.Query(q) }

// QueryExpr evaluates a screen-language expression over the store's
// recorded history: `delta(INSTRUCTIONS)/delta(CYCLES)`,
// `topk(3, rate(CYCLES)) by user`, `avg_over_time(ipc)` and friends,
// bucketed to opt.StepSeconds. The same engine answers live recorders
// (Recorder.QueryExpr) and fleet aggregators.
//
// Deprecated: use Querier().QueryExpr, the variadic contract shared
// with Recorder and QueryClient. This delegate remains for
// compatibility.
func (st *Store) QueryExpr(expr string, opt QueryOptions) (*QueryResult, error) {
	return st.Querier().QueryExpr(expr, opt)
}

// Handler serves the store's range queries over HTTP — the same
// /api/v1/query contract tiptopd mounts: raw per-task series without
// parameters, expression queries with ?expr= (JSON, or OpenMetrics
// text with ?format=openmetrics).
func (st *Store) Handler() http.Handler { return query.Handler(st.s, nil) }

// QueryHandler serves the full /api/v1/query contract for a daemon:
// raw range queries against the store, expression queries against the
// store (or the recorder's live rings when st is nil, or with
// ?source=live). Either argument may be nil.
func QueryHandler(st *Store, rec *Recorder) http.Handler {
	var s *store.Store
	if st != nil {
		s = st.s
	}
	var h *history.Recorder
	if rec != nil {
		h = rec.h
	}
	return query.Handler(s, h)
}

// NamedExprHandler wraps a query handler (QueryHandler, or a fleet
// aggregator's) so expr=<name> references to the configuration's
// stored expressions (Config.NamedExprs) expand to their sources.
func NamedExprHandler(named map[string]string, h http.Handler) http.Handler {
	return query.NamedExprs(named, h)
}

// RecordSample appends one public sample — the path `tiptop -record`
// uses when its target is a store directory rather than a CSV/JSONL
// file.
func (st *Store) RecordSample(s *Sample) error {
	cs := &core.Sample{Time: s.Time, Dropped: s.Dropped}
	cs.Rows = make([]core.Row, 0, len(s.Rows))
	for i := range s.Rows {
		r := &s.Rows[i]
		cs.Rows = append(cs.Rows, core.Row{
			Info: core.TaskInfo{
				ID:        hpm.TaskID{PID: r.PID, TID: r.TID},
				User:      r.User,
				Comm:      r.Command,
				State:     r.State,
				StartTime: r.Start,
			},
			CPUPct: r.CPUPct,
			Values: r.Columns,
			Events: r.Events,
			Valid:  r.Monitored,
		})
	}
	return st.s.AppendSample(cs)
}

// Close seals the store. Partial downsample buckets are discarded (the
// raw tier holds their data); reopening resumes where the log ends.
func (st *Store) Close() error { return st.s.Close() }

// FsyncPolicy is the store's group-commit durability policy: an
// interval and/or record-count bound after which dirty segments are
// flushed in one batch. The zero policy never syncs (the kernel
// flushes on its own schedule). Set it via StoreOptions.Fsync.
type FsyncPolicy = store.FsyncPolicy

// ParseFsync parses the -fsync flag / fsync= attribute syntax: "off",
// an interval ("2s"), a record count ("1000-records"), or both
// comma-combined.
func ParseFsync(s string) (FsyncPolicy, error) { return store.ParseFsync(s) }

// CompactOptions tune Store.Compact.
type CompactOptions = store.CompactOptions

// CompactionResult reports what a compaction pass rewrote, per tier.
type CompactionResult = store.CompactionResult

// Compact rewrites the store's sealed segments into the columnar
// record format v2: delta/varint columns, a per-segment string
// dictionary, restart-fragmented segments merged, and series of
// long-exited tasks tombstoned. Queries keep answering (and appends
// keep landing) during the pass, and read v1 and v2 segments
// transparently afterwards. tiptopd runs this periodically with
// -compact; archival users call it after bulk loads.
func (st *Store) Compact(opt CompactOptions) (*CompactionResult, error) { return st.s.Compact(opt) }

// QueryOptions select the time range and step of an expression query.
type QueryOptions = query.Options

// QueryResult is an expression query's response: one value series per
// task, group or agent, plus the recomputed total roll-up.
type QueryResult = query.Result

// QuerySeries is one series of an expression query result.
type QuerySeries = query.Series

// QueryPoint is one evaluated point of a query series.
type QueryPoint = query.Point

// QueryClient queries a remote tiptopd's /api/v1/query endpoint — the
// durable-history counterpart of NewRemoteMonitor's live stream. It
// serves both raw range queries (Query) and expression queries
// (QueryExpr) over one connection.
type QueryClient struct {
	c *store.Client
	q *query.Client
}

// NewQueryClient builds a query client for a daemon at addr
// ("host:port" or a full URL, as served by tiptopd -addr).
func NewQueryClient(addr string) (*QueryClient, error) {
	c, err := store.NewClient(addr)
	if err != nil {
		return nil, err
	}
	return &QueryClient{c: c, q: query.NewClientFrom(c)}, nil
}

// Query runs a raw range query: per-task series in a time window, at
// the resolution tier the step selects.
func (c *QueryClient) Query(q StoreQuery) (*StoreResult, error) { return c.c.Query(q) }

// QueryExpr runs an expression query on the daemon. Optional extra
// parameters come in name/value pairs — "agent", "*" merges a fleet
// aggregator's agents, "source", "live" forces a solo daemon's live
// rings.
func (c *QueryClient) QueryExpr(expr string, opt QueryOptions, extra ...string) (*QueryResult, error) {
	return c.q.QueryExpr(expr, opt, extra...)
}
