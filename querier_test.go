package tiptop_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tiptop"
)

// querierFixture builds a recorder and a store fed the same simulated
// samples, plus an HTTP server exposing them — the three Querier
// backends over one data set.
func querierFixture(t *testing.T) (*tiptop.Recorder, *tiptop.Store, *httptest.Server) {
	t.Helper()
	st, err := tiptop.OpenStore(t.TempDir(), tiptop.StoreOptions{})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	t.Cleanup(func() { st.Close() })

	sc, err := tiptop.NewScenario(tiptop.MachineXeonW3550)
	if err != nil {
		t.Fatalf("NewScenario: %v", err)
	}
	if _, err := sc.StartWorkload("alice", "gromacs", 0.05); err != nil {
		t.Fatalf("StartWorkload: %v", err)
	}
	if _, err := sc.StartWorkload("bob", "mcf", 0.03); err != nil {
		t.Fatalf("StartWorkload: %v", err)
	}
	mon, err := tiptop.NewSimMonitor(sc, tiptop.Config{Interval: 2 * time.Second})
	if err != nil {
		t.Fatalf("NewSimMonitor: %v", err)
	}
	defer mon.Close()

	rec := tiptop.NewRecorder(tiptop.RecorderOptions{})
	rec.Tee(st)
	mon.Subscribe(rec)
	for i := 0; i < 10; i++ {
		if _, err := mon.Sample(); err != nil {
			t.Fatalf("Sample %d: %v", i, err)
		}
	}

	mux := http.NewServeMux()
	mux.Handle("GET /api/v1/query", tiptop.QueryHandler(st, rec))
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return rec, st, ts
}

// TestQuerierUnification: the same expression through every Querier
// backend — Store, Recorder, QueryClient — and through the deprecated
// per-type methods, all answer identically over the same samples.
func TestQuerierUnification(t *testing.T) {
	rec, st, ts := querierFixture(t)
	qc, err := tiptop.NewQueryClient(ts.URL)
	if err != nil {
		t.Fatalf("NewQueryClient: %v", err)
	}

	backends := map[string]tiptop.Querier{
		"store":    st.Querier(),
		"recorder": rec.Querier(),
		"client":   qc,
	}
	exprs := []string{
		"delta(INSTRUCTIONS)/delta(CYCLES)",
		"topk(2, rate(CYCLES))",
		"rate(INSTRUCTIONS) by user",
	}
	opt := tiptop.QueryOptions{StepSeconds: 2}
	for _, expr := range exprs {
		want, err := st.Querier().QueryExpr(expr, opt)
		if err != nil {
			t.Fatalf("store %q: %v", expr, err)
		}
		wantJSON, _ := json.Marshal(want)
		if len(want.Series) == 0 {
			t.Fatalf("store %q: no series", expr)
		}
		for name, q := range backends {
			got, err := q.QueryExpr(expr, opt)
			if err != nil {
				t.Fatalf("%s %q: %v", name, expr, err)
			}
			gotJSON, _ := json.Marshal(got)
			if string(gotJSON) != string(wantJSON) {
				t.Errorf("%s %q diverges from store:\n%s\nvs\n%s", name, expr, gotJSON, wantJSON)
			}
		}
		// The deprecated delegates answer through the same path.
		old, err := st.QueryExpr(expr, opt)
		if err != nil {
			t.Fatalf("deprecated store QueryExpr %q: %v", expr, err)
		}
		oldJSON, _ := json.Marshal(old)
		if string(oldJSON) != string(wantJSON) {
			t.Errorf("deprecated Store.QueryExpr %q diverges", expr)
		}
		oldRec, err := rec.QueryExpr(expr, opt)
		if err != nil {
			t.Fatalf("deprecated recorder QueryExpr %q: %v", expr, err)
		}
		oldRecJSON, _ := json.Marshal(oldRec)
		if string(oldRecJSON) != string(wantJSON) {
			t.Errorf("deprecated Recorder.QueryExpr %q diverges", expr)
		}
	}
}

// TestQuerierLocalRejectsExtra: the local backends refuse remote-only
// parameters instead of silently ignoring them; the client forwards
// them.
func TestQuerierLocalRejectsExtra(t *testing.T) {
	rec, st, ts := querierFixture(t)
	qc, err := tiptop.NewQueryClient(ts.URL)
	if err != nil {
		t.Fatalf("NewQueryClient: %v", err)
	}
	opt := tiptop.QueryOptions{StepSeconds: 2}
	for name, q := range map[string]tiptop.Querier{"store": st.Querier(), "recorder": rec.Querier()} {
		_, err := q.QueryExpr("rate(CYCLES)", opt, "source", "live")
		if err == nil || !strings.Contains(err.Error(), "remote-only") {
			t.Fatalf("%s accepted extra params, err = %v", name, err)
		}
	}
	if _, err := qc.QueryExpr("rate(CYCLES)", opt, "source", "live"); err != nil {
		t.Fatalf("client with source=live: %v", err)
	}
}

// TestQuerierMixedVersionStore: QueryExpr over a store holding both
// v1 (JSON) and v2 (columnar) segments answers identically to an
// uncompacted all-v1 twin — the unified API is format-transparent.
func TestQuerierMixedVersionStore(t *testing.T) {
	build := func(dir string, compactAt int) *tiptop.Store {
		st, err := tiptop.OpenStore(dir, tiptop.StoreOptions{SegmentBytes: 8 << 10})
		if err != nil {
			t.Fatalf("OpenStore: %v", err)
		}
		sc, err := tiptop.NewScenario(tiptop.MachineXeonW3550)
		if err != nil {
			t.Fatalf("NewScenario: %v", err)
		}
		if _, err := sc.StartWorkload("alice", "gromacs", 0.05); err != nil {
			t.Fatalf("StartWorkload: %v", err)
		}
		mon, err := tiptop.NewSimMonitor(sc, tiptop.Config{Interval: 2 * time.Second})
		if err != nil {
			t.Fatalf("NewSimMonitor: %v", err)
		}
		defer mon.Close()
		rec := tiptop.NewRecorder(tiptop.RecorderOptions{})
		rec.Tee(st)
		mon.Subscribe(rec)
		for i := 0; i < 60; i++ {
			if _, err := mon.Sample(); err != nil {
				t.Fatalf("Sample: %v", err)
			}
			if compactAt > 0 && i == compactAt {
				if _, err := st.Compact(tiptop.CompactOptions{}); err != nil {
					t.Fatalf("Compact: %v", err)
				}
			}
		}
		return st
	}
	// The scenario engine is deterministic: same seed, same samples.
	mixed := build(t.TempDir(), 40)
	defer mixed.Close()
	plain := build(t.TempDir(), 0)
	defer plain.Close()

	opt := tiptop.QueryOptions{StepSeconds: 2}
	for _, expr := range []string{"delta(INSTRUCTIONS)/delta(CYCLES)", "rate(CYCLES)"} {
		a, err := mixed.Querier().QueryExpr(expr, opt)
		if err != nil {
			t.Fatalf("mixed %q: %v", expr, err)
		}
		b, err := plain.Querier().QueryExpr(expr, opt)
		if err != nil {
			t.Fatalf("plain %q: %v", expr, err)
		}
		aj, _ := json.Marshal(a)
		bj, _ := json.Marshal(b)
		if string(aj) != string(bj) {
			t.Errorf("%q: mixed-version store diverges from all-v1 twin:\n%s\nvs\n%s", expr, aj, bj)
		}
		if len(a.Series) == 0 {
			t.Errorf("%q: no series", expr)
		}
	}
}
