package tiptop

import (
	"fmt"
	"time"

	"tiptop/internal/core"
	"tiptop/internal/hpm"
	"tiptop/internal/sim/machine"
	"tiptop/internal/sim/pmu"
	"tiptop/internal/sim/proc"
	"tiptop/internal/sim/sched"
	"tiptop/internal/sim/workload"
	"tiptop/internal/ukernel"
)

// Scenario is a simulated machine with processes to monitor. It is the
// public handle over the machine simulator: pick a hardware preset,
// start workloads from the catalog (or custom phase models, or
// micro-kernel assembly programs), then watch them with a Monitor.
type Scenario struct {
	kernel *sched.Kernel
	seed   int64
}

// MachineName selects a hardware preset.
type MachineName string

// The paper's machines, plus two counter-constrained embedded models
// for exercising the multiplexing path (internal/mux).
const (
	MachineXeonW3550 MachineName = "w3550"  // quad-core Nehalem workstation, 3.07 GHz
	MachineE5640     MachineName = "e5640"  // bi-Xeon E5640 data-center node, 16 logical CPUs
	MachineCore2     MachineName = "core2"  // Intel Core 2
	MachinePPC970    MachineName = "ppc970" // PowerPC PPC970, 1.8 GHz
	MachineCortexA7  MachineName = "a7"     // quad-core ARM Cortex-A7, 4 PMU counters
	MachineSiFiveU74 MachineName = "u74"    // quad-core RISC-V U74, 2 programmable + fixed cycle/instret
)

// NewScenario creates an empty simulated machine.
func NewScenario(name MachineName) (*Scenario, error) {
	m, ok := machine.Presets()[string(name)]
	if !ok {
		return nil, fmt.Errorf("tiptop: unknown machine %q", name)
	}
	k, err := sched.New(m, sched.Options{})
	if err != nil {
		return nil, err
	}
	return &Scenario{kernel: k, seed: 1}, nil
}

// Machine returns the simulated hardware description.
func (sc *Scenario) Machine() *machine.Machine { return sc.kernel.Machine() }

// Topology renders the machine topology hwloc-style (Figure 11 c).
func (sc *Scenario) Topology() string { return sc.kernel.Machine().RenderTopology() }

// nextSeed hands out deterministic per-process seeds.
func (sc *Scenario) nextSeed() int64 {
	sc.seed++
	return sc.seed
}

// WorkloadNames lists the catalog entries available to StartWorkload.
func WorkloadNames() []string {
	return []string{
		"mcf", "astar", "bwaves", "gromacs",
		"hmmer-gcc", "hmmer-icc", "sphinx3-gcc", "sphinx3-icc",
		"h264ref-gcc", "h264ref-icc", "milc-gcc", "milc-icc",
		"r-evolution", "r-evolution-clipped",
	}
}

func catalogWorkload(name string, scale float64) (*workload.Workload, error) {
	if scale <= 0 {
		scale = 1
	}
	// The R evolutionary algorithm scales by *time-step count*: each
	// 5-second iteration keeps its full length so the sampled IPC
	// pattern of Figure 3 (the 0.03 floor with brief pulses) survives
	// at any scale.
	if name == "r-evolution" || name == "r-evolution-clipped" {
		opt := workload.DefaultREvolution()
		opt.Clipped = name == "r-evolution-clipped"
		opt.HealthyIters = scaledIters(opt.HealthyIters, scale, 30)
		opt.DivergedIters = scaledIters(opt.DivergedIters, scale, 15)
		return workload.REvolution(opt), nil
	}
	w, err := baseWorkload(name)
	if err != nil {
		return nil, err
	}
	if scale != 1 {
		w = workload.Scaled(w, scale)
	}
	return w, nil
}

func scaledIters(full int, scale float64, floor int) int {
	n := int(float64(full) * scale)
	if n < floor {
		n = floor
	}
	if n > full {
		n = full
	}
	return n
}

func baseWorkload(name string) (*workload.Workload, error) {
	switch name {
	case "mcf":
		return workload.MCF(), nil
	case "astar":
		return workload.Astar(), nil
	case "bwaves":
		return workload.Bwaves(), nil
	case "gromacs":
		return workload.Gromacs(), nil
	case "hmmer-gcc":
		return workload.HmmerGCC(), nil
	case "hmmer-icc":
		return workload.HmmerICC(), nil
	case "sphinx3-gcc":
		return workload.Sphinx3GCC(), nil
	case "sphinx3-icc":
		return workload.Sphinx3ICC(), nil
	case "h264ref-gcc":
		return workload.H264RefGCC(), nil
	case "h264ref-icc":
		return workload.H264RefICC(), nil
	case "milc-gcc":
		return workload.MilcGCC(), nil
	case "milc-icc":
		return workload.MilcICC(), nil
	}
	return nil, fmt.Errorf("tiptop: unknown workload %q", name)
}

// StartWorkload launches a catalog workload as a process owned by user.
// scale shrinks the run (1.0 = the paper's full length; 0.01 is a good
// interactive default). pinned optionally restricts it to logical CPUs
// (taskset semantics); empty means no affinity. It returns the PID.
func (sc *Scenario) StartWorkload(user, name string, scale float64, pinned ...int) (int, error) {
	w, err := catalogWorkload(name, scale)
	if err != nil {
		return 0, err
	}
	in, err := workload.NewInstance(w, sc.nextSeed())
	if err != nil {
		return 0, err
	}
	task := sc.kernel.Spawn(user, w.Name, in, maskOf(pinned))
	return task.ID().PID, nil
}

// SyntheticJob describes an endless synthetic process: a target solo IPC
// plus an optional memory appetite, which is what makes a job sensitive
// to (or an aggressor in) shared-cache contention, the mechanism behind
// the paper's §3.4 scenarios.
type SyntheticJob struct {
	Name string
	// IPC is the target solo instructions-per-cycle.
	IPC float64
	// MemRefsPKI is memory references per thousand instructions
	// (0 = a light default).
	MemRefsPKI float64
	// HotMB / WarmMB shape the working set: the hot region always
	// fits in cache; the warm region is where a shrinking shared-LLC
	// share starts to hurt.
	HotMB, WarmMB float64
	// MidProb (default 0.94) is the hit probability once HotMB fit;
	// raising it toward 1 shrinks the contention-sensitive band.
	MidProb float64
}

// StartSynthetic launches an endless CPU-bound job with the given target
// IPC (as in the Figure 1 data-center snapshot).
func (sc *Scenario) StartSynthetic(user, name string, ipc float64, pinned ...int) (int, error) {
	return sc.StartSyntheticJob(user, SyntheticJob{Name: name, IPC: ipc}, pinned...)
}

// StartSyntheticJob launches a fully specified synthetic job.
func (sc *Scenario) StartSyntheticJob(user string, job SyntheticJob, pinned ...int) (int, error) {
	if job.IPC <= 0 || job.IPC > 4 {
		return 0, fmt.Errorf("tiptop: synthetic IPC %v out of (0, 4]", job.IPC)
	}
	spec := workload.SyntheticSpec{
		Name:       job.Name,
		IPC:        job.IPC,
		MemRefsPKI: job.MemRefsPKI,
		HotBytes:   job.HotMB * (1 << 20),
		WarmBytes:  job.WarmMB * (1 << 20),
		MidProb:    job.MidProb,
	}
	spin, err := workload.NewSpin(workload.Synthetic(spec), sc.nextSeed())
	if err != nil {
		return 0, err
	}
	task := sc.kernel.Spawn(user, job.Name, spin, maskOf(pinned))
	return task.ID().PID, nil
}

// StartMicroKernel assembles src in the tiny assembly language of the
// micro-kernel VM (see internal/ukernel) and runs it as a process. The
// VM's exact event counts make such processes ideal for validating
// counter readings.
func (sc *Scenario) StartMicroKernel(user, name, src string, pinned ...int) (int, error) {
	prog, err := ukernel.Assemble(src)
	if err != nil {
		return 0, err
	}
	runner, err := ukernel.NewRunner(name, prog, nil, sc.kernel.Machine())
	if err != nil {
		return 0, err
	}
	task := sc.kernel.Spawn(user, name, runner, maskOf(pinned))
	return task.ID().PID, nil
}

// StartFPMicro runs the paper's Figure 4 micro-benchmark: mode is "x87"
// or "sse", values is "finite", "inf" or "nan".
func (sc *Scenario) StartFPMicro(user, mode, values string, iterations int64) (int, error) {
	var fpMode ukernel.FPMode
	switch mode {
	case "x87":
		fpMode = ukernel.FPModeX87
	case "sse":
		fpMode = ukernel.FPModeSSE
	default:
		return 0, fmt.Errorf("tiptop: fp mode %q (want x87 or sse)", mode)
	}
	var fpVals ukernel.FPValues
	switch values {
	case "finite":
		fpVals = ukernel.FPFinite
	case "inf":
		fpVals = ukernel.FPInfinite
	case "nan":
		fpVals = ukernel.FPNaN
	default:
		return 0, fmt.Errorf("tiptop: fp values %q (want finite, inf or nan)", values)
	}
	if iterations <= 0 {
		iterations = 1_000_000
	}
	prog, inputs := ukernel.FPMicroKernel(fpMode, fpVals, iterations)
	name := "fpmicro-" + mode + "-" + values
	runner, err := ukernel.NewRunner(name, prog, inputs, sc.kernel.Machine())
	if err != nil {
		return 0, err
	}
	task := sc.kernel.Spawn(user, name, runner, nil)
	return task.ID().PID, nil
}

// AddSyntheticThread adds a thread to an existing process. Together with
// Config.PerThread it exercises the paper's per-thread vs per-process
// counting distinction (§2.2) — including the footnote-3 caveat that a
// spin-waiting thread inflates a process-level IPC with useless work.
func (sc *Scenario) AddSyntheticThread(pid int, job SyntheticJob, pinned ...int) (int, error) {
	leader, ok := sc.kernel.Task(pid)
	if !ok {
		return 0, fmt.Errorf("tiptop: no process %d", pid)
	}
	if job.IPC <= 0 || job.IPC > 4 {
		return 0, fmt.Errorf("tiptop: synthetic IPC %v out of (0, 4]", job.IPC)
	}
	spec := workload.SyntheticSpec{
		Name:       job.Name,
		IPC:        job.IPC,
		MemRefsPKI: job.MemRefsPKI,
		HotBytes:   job.HotMB * (1 << 20),
		WarmBytes:  job.WarmMB * (1 << 20),
		MidProb:    job.MidProb,
	}
	spin, err := workload.NewSpin(workload.Synthetic(spec), sc.nextSeed())
	if err != nil {
		return 0, err
	}
	t, err := sc.kernel.SpawnThread(leader, spin, maskOf(pinned))
	if err != nil {
		return 0, err
	}
	return t.ID().TID, nil
}

// TaskTotal returns the simulator's exact cumulative count of a named
// event (CYCLES, INSTRUCTIONS, ...) for process pid since it started —
// the ground truth that extrapolated multiplexed counts are validated
// against in the mux convergence tests and tipbench -bench-mux.
func (sc *Scenario) TaskTotal(pid int, event string) (uint64, error) {
	t, ok := sc.kernel.Task(pid)
	if !ok {
		return 0, fmt.Errorf("tiptop: no process %d", pid)
	}
	return t.Totals().Count(event), nil
}

// Kill terminates a process.
func (sc *Scenario) Kill(pid int) error { return sc.kernel.Kill(pid) }

// Running reports whether the process is still alive.
func (sc *Scenario) Running(pid int) bool {
	t, ok := sc.kernel.Task(pid)
	return ok && t.State() != sched.TaskExited
}

// Now returns the simulated time.
func (sc *Scenario) Now() time.Duration { return sc.kernel.Now() }

// Advance runs the simulation forward without sampling (a Monitor's
// Sample() also advances time by its interval).
func (sc *Scenario) Advance(d time.Duration) { sc.kernel.Advance(d) }

func maskOf(cpus []int) machine.AffinityMask {
	if len(cpus) == 0 {
		return nil
	}
	ids := make([]machine.CPUID, len(cpus))
	for i, c := range cpus {
		ids[i] = machine.CPUID(c)
	}
	return machine.MaskOf(ids...)
}

// backend, source and clock wire the scenario into a Monitor.
func (sc *Scenario) backend() hpm.Backend { return pmu.New(sc.kernel) }

func (sc *Scenario) source() *proc.Source {
	return proc.NewSource(sc.kernel)
}

func (sc *Scenario) clock() core.Clock { return proc.NewClock(sc.kernel) }

// ScenarioManyTasks builds a production-scale stress scenario: the
// bi-Xeon data-center node running n endless synthetic jobs with varied
// IPC targets and memory appetites (workload.ManyTaskSpec), spread
// across a handful of users. It exercises the engine's sharded sampling
// path at task counts far beyond the paper's interactive screens
// (thousands of rows per refresh).
func ScenarioManyTasks(n int) (*Scenario, error) {
	if n <= 0 {
		return nil, fmt.Errorf("tiptop: many-task scenario needs n > 0, got %d", n)
	}
	sc, err := NewScenario(MachineE5640)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		spec := workload.ManyTaskSpec(i)
		spin, err := workload.NewSpin(workload.Synthetic(spec), sc.nextSeed())
		if err != nil {
			return nil, err
		}
		sc.kernel.Spawn(workload.ManyTaskUser(i), spec.Name, spin, nil)
	}
	return sc, nil
}

// ScenarioNames lists the ready-made scenarios NewNamedScenario builds.
func ScenarioNames() []string {
	return []string{"spec", "revolution", "conflict", "datacenter", "assist", "steady", "validate"}
}

// NewNamedScenario builds one of the ready-made scenarios by name — the
// ones behind the tiptop/tiptopd -sim flag:
//
//   - "spec": the Nehalem workstation running a mix of SPEC-like jobs;
//   - "revolution": the Figure 3 R evolutionary algorithm;
//   - "conflict": the Figure 11 three-mcf co-run, pinned like taskset;
//   - "datacenter": the Figure 1 bi-Xeon grid node with eleven
//     synthetic jobs at the paper's observed IPCs;
//   - "assist": the §3.1 FP-assist pathology — the Figure 4 x87
//     micro-kernel on infinite vs finite operands plus a synthetic
//     control job, for watching the architecture-specific FP_ASSIST
//     event (also reachable as raw code 0x1EF7);
//   - "steady": endless constant-rate synthetic jobs on the quad-core
//     Cortex-A7, whose four PMU counters force counter rotation for
//     any wide screen — the validation bed for internal/mux (steady
//     rates make Enabled/Running extrapolation converge to the true
//     counts, which TaskTotal exposes);
//   - "validate": the §2.4 counter-validation oracle in interactive
//     form — every ukernel.ValidationSuite micro-kernel running on the
//     4-counter Cortex-A7, so the screen shows analytically known
//     counts through the full mux path (the batch twin, asserted on
//     all four machine models, is tipbench -validate).
//
// scale shrinks workload lengths (1.0 = the paper's, 0.01 is a good
// interactive default; ignored by the endless datacenter jobs).
func NewNamedScenario(name string, scale float64) (*Scenario, error) {
	switch name {
	case "spec":
		sc, err := NewScenario(MachineXeonW3550)
		if err != nil {
			return nil, err
		}
		for _, w := range []string{"mcf", "astar", "gromacs", "hmmer-gcc"} {
			if _, err := sc.StartWorkload("user", w, scale); err != nil {
				return nil, err
			}
		}
		return sc, nil
	case "revolution":
		sc, err := NewScenario(MachineXeonW3550)
		if err != nil {
			return nil, err
		}
		if _, err := sc.StartWorkload("biologist", "r-evolution", scale); err != nil {
			return nil, err
		}
		return sc, nil
	case "conflict":
		sc, err := NewScenario(MachineXeonW3550)
		if err != nil {
			return nil, err
		}
		// Three mcf copies pinned to distinct physical cores, the
		// Figure 11 taskset setup.
		for i := 0; i < 3; i++ {
			if _, err := sc.StartWorkload("user", "mcf", scale, i); err != nil {
				return nil, err
			}
		}
		return sc, nil
	case "assist":
		// §3.1 in miniature: the Nehalem workstation running the
		// Figure 4 FP micro-kernel on non-finite operands (every x87
		// add takes the micro-code assist path) next to its finite
		// twin and a steady synthetic control job. The assists are an
		// architecture-specific event: watch them through the fp
		// screen, or through a custom screen referencing the raw code
		// (<event name="..." raw="0x1EF7"/>).
		sc, err := NewScenario(MachineXeonW3550)
		if err != nil {
			return nil, err
		}
		iters := int64(500_000_000 * scale)
		if iters < 100_000 {
			iters = 100_000
		}
		for _, values := range []string{"inf", "finite"} {
			if _, err := sc.StartFPMicro("fpdev", "x87", values, iters); err != nil {
				return nil, err
			}
		}
		if _, err := sc.StartSynthetic("ops", "control", 1.50); err != nil {
			return nil, err
		}
		return sc, nil
	case "steady":
		sc, err := NewScenario(MachineCortexA7)
		if err != nil {
			return nil, err
		}
		// One steady job per core, each pinned so rates stay constant
		// across the whole run: the ideal regime for validating
		// rotation-extrapolated counts against TaskTotal ground truth.
		jobs := []SyntheticJob{
			{Name: "steady-cpu", IPC: 1.60},
			{Name: "steady-mix", IPC: 1.10, MemRefsPKI: 120},
			{Name: "steady-mem", IPC: 0.70, MemRefsPKI: 300, HotMB: 0.5, WarmMB: 4},
			{Name: "steady-low", IPC: 0.40, MemRefsPKI: 200, HotMB: 0.25, WarmMB: 2},
		}
		for i, job := range jobs {
			if _, err := sc.StartSyntheticJob("bench", job, i); err != nil {
				return nil, err
			}
		}
		return sc, nil
	case "validate":
		// The validation suite's micro-kernels as live processes. At
		// their analytic lengths the kernels halt within a fraction of
		// a millisecond of simulated time, so the loop bound (in r1 by
		// suite convention) is stretched with scale to give refreshes
		// something to observe — the loop bodies, and therefore the
		// per-iteration event rates the oracle derives, are unchanged.
		// Use a small delay (-d 0.001) to catch them alive.
		sc, err := NewScenario(MachineCortexA7)
		if err != nil {
			return nil, err
		}
		factor := int64(2000 * scale)
		if factor < 1 {
			factor = 1
		}
		for _, vk := range ukernel.ValidationSuite() {
			if n, ok := vk.Inputs.IntRegs[1]; ok {
				vk.Inputs.IntRegs[1] = n * factor
			}
			runner, err := ukernel.NewRunner(vk.Name, vk.Program, vk.Inputs, sc.kernel.Machine())
			if err != nil {
				return nil, err
			}
			sc.kernel.Spawn("oracle", vk.Name, runner, nil)
		}
		return sc, nil
	case "datacenter":
		sc, err := NewScenario(MachineE5640)
		if err != nil {
			return nil, err
		}
		ipcs := []float64{1.97, 1.32, 2.27, 2.36, 1.17, 0.66, 1.73, 1.44, 1.39, 1.39, 1.62}
		users := []string{"user1", "user3", "user1", "user1", "user3", "user2",
			"user1", "user1", "user1", "user1", "user1"}
		for i, ipc := range ipcs {
			name := fmt.Sprintf("process%d", i+1)
			if _, err := sc.StartSynthetic(users[i], name, ipc); err != nil {
				return nil, err
			}
		}
		return sc, nil
	}
	return nil, fmt.Errorf("tiptop: unknown scenario %q (want spec, revolution, conflict, datacenter, assist, steady or validate)", name)
}

// ScenarioSPEC builds a ready-made scenario: the Nehalem workstation
// running a small mix of SPEC-like workloads — a convenient quickstart.
func ScenarioSPEC() *Scenario {
	sc, err := NewScenario(MachineXeonW3550)
	if err != nil {
		panic(err) // presets are known-valid
	}
	for _, name := range []string{"mcf", "gromacs", "hmmer-gcc"} {
		if _, err := sc.StartWorkload("user", name, 0.01); err != nil {
			panic(err)
		}
	}
	return sc
}
