package ui

import (
	"strings"
	"testing"
	"time"

	"tiptop/internal/core"
	"tiptop/internal/hpm"
	"tiptop/internal/metrics"
	"tiptop/internal/term"
)

func sampleFixture() (*metrics.Screen, *core.Sample) {
	screen := metrics.DefaultScreen()
	sample := &core.Sample{
		Time: 10 * time.Second,
		Rows: []core.Row{
			{
				Info: core.TaskInfo{
					ID: hpm.TaskID{PID: 2962, TID: 2962}, User: "user1",
					Comm: "process1", State: "R",
				},
				CPUPct: 100.0,
				Values: []float64{26456, 52125, 1.97, 0.0},
				Events: map[string]uint64{
					hpm.EventCycles:       26456e6,
					hpm.EventInstructions: 52125e6,
				},
				Valid: true,
			},
			{
				Info: core.TaskInfo{
					ID: hpm.TaskID{PID: 999, TID: 999}, User: "root",
					Comm: "hidden", State: "S",
				},
				CPUPct: 1.5,
				Values: make([]float64, 4),
				Valid:  false,
			},
		},
	}
	return screen, sample
}

func TestHeaderLayout(t *testing.T) {
	screen, _ := sampleFixture()
	h := Header(screen)
	for _, col := range []string{"PID", "USER", "%CPU", "Mcycle", "Minst", "IPC", "DMIS", "COMMAND"} {
		if !strings.Contains(h, col) {
			t.Errorf("header missing %q: %q", col, h)
		}
	}
	// Figure 1 order: %CPU before Mcycle before IPC.
	if strings.Index(h, "%CPU") > strings.Index(h, "Mcycle") ||
		strings.Index(h, "Mcycle") > strings.Index(h, "IPC") {
		t.Fatalf("column order wrong: %q", h)
	}
}

func TestFormatRowFigure1(t *testing.T) {
	screen, sample := sampleFixture()
	row := FormatRow(screen, &sample.Rows[0])
	for _, want := range []string{"2962", "user1", "100.0", "26456", "52125", "1.97", "process1"} {
		if !strings.Contains(row, want) {
			t.Errorf("row missing %q: %q", want, row)
		}
	}
}

func TestFormatRowInvalidShowsDashes(t *testing.T) {
	screen, sample := sampleFixture()
	row := FormatRow(screen, &sample.Rows[1])
	if !strings.Contains(row, "-") {
		t.Fatalf("unmonitored row must show dashes: %q", row)
	}
	if !strings.Contains(row, "hidden") {
		t.Fatal("command still shown")
	}
}

func TestBatchRenderer(t *testing.T) {
	screen, sample := sampleFixture()
	var sb strings.Builder
	br := &BatchRenderer{W: &sb, Timestamps: true}
	if err := br.Render(screen, sample); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "--- t=10s tasks=2") {
		t.Fatalf("timestamp line missing: %q", out)
	}
	if strings.Count(out, "\n") != 4 { // ts + header + 2 rows
		t.Fatalf("line count: %q", out)
	}
	// Without timestamps.
	sb.Reset()
	br.Timestamps = false
	br.Render(screen, sample)
	if strings.Contains(sb.String(), "---") {
		t.Fatal("timestamps must be optional")
	}
}

func TestLiveRenderer(t *testing.T) {
	screen, sample := sampleFixture()
	var sb strings.Builder
	ts, err := term.NewScreen(&sb, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	lr := &LiveRenderer{Screen: ts, Machine: "test-machine"}
	if err := lr.Render(screen, sample); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"tiptop", "test-machine", "process1"} {
		if !strings.Contains(out, want) {
			t.Errorf("live output missing %q", want)
		}
	}
}

func TestLiveRendererTruncatesRows(t *testing.T) {
	screen, sample := sampleFixture()
	// Screen with room for status+header only.
	var sb strings.Builder
	ts, _ := term.NewScreen(&sb, 2, 120)
	lr := &LiveRenderer{Screen: ts}
	if err := lr.Render(screen, sample); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "process1") {
		t.Fatal("rows beyond screen height must be dropped")
	}
}

func TestHelpText(t *testing.T) {
	help := HelpText(metrics.BuiltinScreens())
	for _, want := range []string{"q  quit", "default", "IPC", "fp"} {
		if !strings.Contains(help, want) {
			t.Errorf("help missing %q", want)
		}
	}
}
