// Package ui renders the tiptop engine's samples: a batch renderer that
// streams text (the `tiptop -b` mode, "convenient for further
// processing, in the spirit of UNIX filters"), and a live renderer that
// repaints an ANSI screen like the interactive mode of top.
package ui

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"tiptop/internal/core"
	"tiptop/internal/metrics"
	"tiptop/internal/term"
)

// Header produces the column header line for a screen, in the Figure 1
// layout: PID USER %CPU <metric columns...> COMMAND.
func Header(s *metrics.Screen) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%7s %-8s %5s", "PID", "USER", "%CPU")
	for _, col := range s.Columns {
		fmt.Fprintf(&b, " %*s", col.Width, col.Header)
	}
	b.WriteString(" COMMAND")
	return b.String()
}

// FormatRow renders one task row under the given screen. System-wide
// per-CPU rows (negative hpm.CPUTask PIDs) show the CPU name in the
// PID column instead of the internal encoding.
func FormatRow(s *metrics.Screen, r *core.Row) string {
	var b strings.Builder
	if r.Info.ID.IsCPU() {
		fmt.Fprintf(&b, "%7s %-8.8s %5.1f", fmt.Sprintf("cpu%d", r.Info.ID.CPU()), r.Info.User, r.CPUPct)
	} else {
		fmt.Fprintf(&b, "%7d %-8.8s %5.1f", r.Info.ID.PID, r.Info.User, r.CPUPct)
	}
	for i, col := range s.Columns {
		if !r.Valid {
			fmt.Fprintf(&b, " %*s", col.Width, "-")
			continue
		}
		b.WriteByte(' ')
		b.WriteString(col.Cell(r.Values[i]))
	}
	b.WriteByte(' ')
	b.WriteString(r.Info.Comm)
	return b.String()
}

// BatchRenderer streams samples as text blocks.
type BatchRenderer struct {
	W io.Writer
	// Timestamps prefixes each block with the sample time.
	Timestamps bool
}

// Render writes one sample.
func (br *BatchRenderer) Render(screen *metrics.Screen, sample *core.Sample) error {
	var b strings.Builder
	if br.Timestamps {
		fmt.Fprintf(&b, "--- t=%s tasks=%d\n", formatDur(sample.Time), len(sample.Rows))
	}
	b.WriteString(Header(screen))
	b.WriteByte('\n')
	for i := range sample.Rows {
		b.WriteString(FormatRow(screen, &sample.Rows[i]))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(br.W, b.String())
	return err
}

func formatDur(d time.Duration) string {
	return d.Truncate(time.Millisecond).String()
}

// LiveRenderer paints samples onto a term.Screen with a status bar, the
// interactive analogue of top.
type LiveRenderer struct {
	Screen  *term.Screen
	Machine string // status-bar machine description
}

// Render paints one sample.
func (lr *LiveRenderer) Render(screen *metrics.Screen, sample *core.Sample) error {
	rows, _ := lr.Screen.Size()
	lr.Screen.Clear()
	status := fmt.Sprintf("tiptop - %s - %d tasks - screen %q - t=%s (q quits)",
		lr.Machine, len(sample.Rows), screen.Name, formatDur(sample.Time))
	lr.Screen.SetLine(0, term.Reverse(status))
	lr.Screen.SetLine(1, term.Bold(Header(screen)))
	for i := range sample.Rows {
		line := 2 + i
		if line >= rows {
			break
		}
		lr.Screen.SetLine(line, FormatRow(screen, &sample.Rows[i]))
	}
	return lr.Screen.Flush()
}

// HelpText summarizes the interactive commands and screen columns.
func HelpText(screens map[string]*metrics.Screen) string {
	var b strings.Builder
	b.WriteString("interactive commands:\n")
	b.WriteString("  q  quit\n  s  cycle screens\n  p  toggle pid sort\n  h  this help\n\n")
	b.WriteString("screens:\n")
	names := make([]string, 0, len(screens))
	for name := range screens {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "  %-8s", name)
		for _, c := range screens[name].Columns {
			fmt.Fprintf(&b, " %s", c.Header)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
