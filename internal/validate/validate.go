// Package validate is the counter-validation oracle: a conformance
// harness that runs every micro-kernel of ukernel.ValidationSuite() as
// a live workload under a real core.Session — per machine model — and
// asserts the measured counts at every layer of the pipeline against
// the kernel's analytic expectations and the VM oracle.
//
// The paper's §2.4 methodology validates instruction counts with
// micro-kernels whose event counts are known by inspecting the
// assembly; internal/experiments exercises that VM-level. This package
// asserts that those counts survive the path users actually see:
//
//	attach → sharded refresh → mux rotation/extrapolation
//	       → store append → recovery → expression query
//
// Four layers are checked per kernel × model × event:
//
//	session   raw shard deltas summed over the run. On models whose
//	          PMU holds the whole screen (Xeon W3550, PPC970) — and
//	          for fixed counters that never rotate (the U74's
//	          cycle/instret CSRs) — the sum must be EXACT.
//	mux       the same sums where counter pressure forced rotation
//	          (Cortex-A7: 8 events on 4 counters; SiFive U74: 6 on 2).
//	          Extrapolated counts must converge within the tolerance.
//	store     append → close → recover → QueryExpr round-trip: the
//	          queried sums must equal the session sums exactly,
//	          mux or not (fidelity of the durable path, not of the
//	          extrapolation, is under test).
//	query     derived expressions (IPC, LLC misses per 100
//	          instructions) evaluated through internal/query over the
//	          recovered store, against oracle-derived values.
//
// Events a model legitimately lacks (PPC970 has no FP-assist raw
// code) are reported as unsupported — never as a zero count.
package validate

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"time"

	"tiptop/internal/core"
	"tiptop/internal/hpm"
	"tiptop/internal/metrics"
	"tiptop/internal/mux"
	"tiptop/internal/query"
	"tiptop/internal/sim/cpu"
	"tiptop/internal/sim/machine"
	"tiptop/internal/sim/pmu"
	"tiptop/internal/sim/proc"
	"tiptop/internal/sim/sched"
	"tiptop/internal/store"
	"tiptop/internal/ukernel"
)

// Layer names of Entry.Layer.
const (
	// LayerAnalytic compares the VM oracle against the kernel's
	// analytic instruction count (the §2.4 hand-derived expectation).
	LayerAnalytic = "analytic"
	// LayerSession is the unconstrained live path: raw shard deltas.
	LayerSession = "session"
	// LayerMux is the live path under counter pressure: rotation plus
	// Enabled/Running extrapolation.
	LayerMux = "mux"
	// LayerStore is the durable round-trip: append, recover, QueryExpr.
	LayerStore = "store"
	// LayerQuery is a derived expression through internal/query.
	LayerQuery = "query"
)

// baseEvents is the validation screen: eight slot-costing hardware
// events, sized so the PPC970's eight counters still hold all of them
// (the unconstrained reference) while the Cortex-A7 (4 counters) and
// SiFive U74 (2 programmable + fixed cycle/instret) are forced to
// rotate.
var baseEvents = []string{
	hpm.EventCycles,
	hpm.EventInstructions,
	hpm.EventBranches,
	hpm.EventBranchMisses,
	hpm.EventCacheMisses,
	hpm.EventLoads,
	hpm.EventStores,
	hpm.EventFPOps,
}

// optionalEvents are architecture-specific: validated where the model
// implements them, reported unsupported elsewhere.
var optionalEvents = []string{hpm.EventFPAssist}

// storeEvents are the counters the durable record format carries per
// row; the store and query layers validate through these.
var storeEvents = []string{hpm.EventInstructions, hpm.EventCycles, hpm.EventCacheMisses}

// Options configure a harness run.
type Options struct {
	// Models are machine preset keys (machine.Presets()); nil runs
	// DefaultModels().
	Models []string
	// RefreshTarget is roughly how many refresh intervals the live run
	// should span: the sampling interval is derived per kernel × model
	// from an oracle pre-run so every kernel sees enough rotations for
	// extrapolation to converge. Default 150.
	RefreshTarget int
	// MuxTolerance is the worst relative error allowed on
	// mux-extrapolated counts (default 0.05). Derived expressions that
	// mix extrapolated events get twice this band — a quotient
	// compounds the error of both operands.
	MuxTolerance float64
	// MuxAbsSlack is the absolute-count slack on mux-extrapolated
	// entries (default 64). Rotation sub-samples the run, so an event
	// that fires only a handful of times — the branch predictor's two
	// warm-up/exit misses, say — is either missed entirely or caught
	// once and multiplied by the rotation factor; no extrapolation can
	// place a two-count burst within 5%. A muxed entry therefore also
	// passes when |measured-expected| <= MuxAbsSlack: the relative band
	// governs every count large enough for extrapolation to be
	// statistically meaningful, the slack the ones that are not.
	MuxAbsSlack float64
	// ScratchDir holds the per-run store directories; empty uses a
	// fresh temporary directory, removed afterwards.
	ScratchDir string
}

// DefaultModels returns the four conformance models: the two
// unconstrained references and the two counter-starved embedded models
// that force multiplexing.
func DefaultModels() []string { return []string{"w3550", "ppc970", "a7", "u74"} }

// Entry is one assertion of the conformance matrix: kernel × model ×
// layer × event, with the expectation, the measurement and the error.
type Entry struct {
	Kernel string `json:"kernel"`
	Model  string `json:"model"`
	Layer  string `json:"layer"`
	Event  string `json:"event"`
	// Expected and Measured are counts for the counter layers and
	// dimensionless values for the derived-expression layer.
	Expected float64 `json:"expected"`
	Measured float64 `json:"measured"`
	// RelError is |measured-expected| / expected (0 when both are 0,
	// 1 when only the expectation is 0).
	RelError float64 `json:"rel_error"`
	// Exact marks entries that must match exactly: every layer not
	// diluted by rotation extrapolation.
	Exact bool `json:"exact"`
	// Muxed marks entries whose measurement passed through rotation
	// extrapolation; these get the tolerance band instead.
	Muxed bool `json:"muxed,omitempty"`
	// Supported is false when the model does not implement the event;
	// such entries carry no counts and always pass — the contract is
	// that missing hardware is reported, not silently zero.
	Supported bool   `json:"supported"`
	Pass      bool   `json:"pass"`
	Note      string `json:"note,omitempty"`
}

// Report is the machine-readable result of a harness run — what
// tipbench -validate writes to results/VALIDATE.json and CI gates on.
type Report struct {
	Models       []string `json:"models"`
	Kernels      []string `json:"kernels"`
	MuxTolerance float64  `json:"mux_tolerance"`
	MuxAbsSlack  float64  `json:"mux_abs_slack"`
	Entries      []Entry  `json:"entries"`
	// WorstMuxedRelError is the worst relative error over every muxed
	// entry whose absolute miss exceeds MuxAbsSlack — the entries the
	// relative band governs. (Counter and derived layers; the derived
	// band is reported against its doubled tolerance by Pass, but the
	// raw worst error is published here.)
	WorstMuxedRelError float64 `json:"worst_muxed_rel_error"`
	// ExactViolations counts exact-layer entries that did not match.
	ExactViolations int `json:"exact_violations"`
	// UnsupportedEvents counts event × model pairs reported as not
	// implemented (e.g. FP_ASSIST outside the Nehalem model).
	UnsupportedEvents int  `json:"unsupported_events"`
	Pass              bool `json:"pass"`
}

// Run executes the conformance matrix.
func Run(opt Options) (*Report, error) {
	if opt.RefreshTarget <= 0 {
		opt.RefreshTarget = 150
	}
	if opt.MuxTolerance <= 0 {
		opt.MuxTolerance = 0.05
	}
	if opt.MuxAbsSlack <= 0 {
		opt.MuxAbsSlack = 64
	}
	models := opt.Models
	if len(models) == 0 {
		models = DefaultModels()
	}
	scratch := opt.ScratchDir
	if scratch == "" {
		dir, err := os.MkdirTemp("", "tiptop-validate")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		scratch = dir
	}
	presets := machine.Presets()
	suite := ukernel.ValidationSuite()
	rep := &Report{Models: models, MuxTolerance: opt.MuxTolerance, MuxAbsSlack: opt.MuxAbsSlack, Pass: true}
	for _, k := range suite {
		rep.Kernels = append(rep.Kernels, k.Name)
	}
	for _, name := range models {
		m, ok := presets[name]
		if !ok {
			return nil, fmt.Errorf("validate: unknown machine model %q", name)
		}
		for _, k := range suite {
			entries, err := runOne(name, m, k, opt, scratch)
			if err != nil {
				return nil, fmt.Errorf("validate: %s on %s: %w", k.Name, name, err)
			}
			rep.Entries = append(rep.Entries, entries...)
		}
	}
	for i := range rep.Entries {
		e := &rep.Entries[i]
		switch {
		case !e.Supported:
			rep.UnsupportedEvents++
		case e.Muxed:
			if math.Abs(e.Measured-e.Expected) > opt.MuxAbsSlack && e.RelError > rep.WorstMuxedRelError {
				rep.WorstMuxedRelError = e.RelError
			}
		case e.Exact && !e.Pass:
			rep.ExactViolations++
		}
		if !e.Pass {
			rep.Pass = false
		}
	}
	return rep, nil
}

// validationScreen builds a screen whose columns reference exactly the
// given events, so the session resolves and attaches precisely the
// validation set and Row.Events carries each one's per-refresh delta.
func validationScreen(events []string) *metrics.Screen {
	s := &metrics.Screen{Name: "validate"}
	for _, ev := range events {
		s.Columns = append(s.Columns, &metrics.Column{
			Name: ev, Header: ev, Width: 12, Format: "%12.0f",
			Expr: metrics.MustCompile(ev),
			Desc: "per-refresh delta of " + ev,
		})
	}
	return s
}

// oracleCounts executes the kernel to completion on a private VM — the
// ground truth. The live run replays the identical deterministic
// instruction stream, so its VM totals equal this pre-run; the pre-run
// additionally prices the sampling interval off the exact cycle count.
func oracleCounts(k ukernel.ValidationKernel, m *machine.Machine) (cpu.Delta, error) {
	r, err := ukernel.NewRunner(k.Name, k.Program, k.Inputs, m)
	if err != nil {
		return cpu.Delta{}, err
	}
	if _, err := r.VM().Run(0); err != nil {
		return cpu.Delta{}, err
	}
	if !r.Done() {
		return cpu.Delta{}, fmt.Errorf("oracle run did not halt")
	}
	return r.VM().Counts(), nil
}

// relError computes |measured-expected|/expected with the zero
// conventions of Entry.RelError.
func relError(expected, measured float64) float64 {
	if expected == 0 {
		if measured == 0 {
			return 0
		}
		return 1
	}
	return math.Abs(measured-expected) / math.Abs(expected)
}

// exactEps tolerates float summation noise on exact layers. Counter
// sums are integers below 2^53 so they compare exactly; derived
// quotients may differ in the last ulp depending on evaluation order.
const exactEps = 1e-9

func checkEntry(e *Entry, tolerance, absSlack float64) {
	e.RelError = relError(e.Expected, e.Measured)
	switch {
	case e.Exact:
		e.Pass = e.RelError <= exactEps
	case e.RelError <= tolerance:
		e.Pass = true
	case absSlack > 0 && math.Abs(e.Measured-e.Expected) <= absSlack:
		// Too few occurrences for rotation sub-sampling to resolve:
		// judged by absolute miss, not relative.
		e.Pass = true
		e.Note = "within absolute slack: count too small to extrapolate"
	default:
		e.Pass = false
	}
}

// runOne drives one kernel on one model through the full pipeline and
// returns its slice of the conformance matrix.
func runOne(model string, m *machine.Machine, vk ukernel.ValidationKernel, opt Options, scratch string) ([]Entry, error) {
	oracle, err := oracleCounts(vk, m)
	if err != nil {
		return nil, err
	}
	// The analytic layer: the §2.4 hand-derived instruction count must
	// match the VM oracle on every model, exactly.
	entries := []Entry{{
		Kernel: vk.Name, Model: model, Layer: LayerAnalytic, Event: hpm.EventInstructions,
		Expected: float64(vk.ExpectedInstructions), Measured: float64(oracle.Instructions),
		Exact: true, Supported: true,
	}}
	checkEntry(&entries[0], opt.MuxTolerance, 0)

	// Price the sampling interval so the run spans ~RefreshTarget
	// refreshes: enough rotations for extrapolation to converge, and
	// the same sharded-refresh cadence regardless of kernel length.
	intervalNS := float64(oracle.Cycles) / m.FreqHz * 1e9 / float64(opt.RefreshTarget)
	interval := time.Duration(intervalNS)
	if interval < 100*time.Nanosecond {
		interval = 100 * time.Nanosecond
	}

	kern, err := sched.New(m, sched.Options{})
	if err != nil {
		return nil, err
	}
	runner, err := ukernel.NewRunner(vk.Name, vk.Program, vk.Inputs, m)
	if err != nil {
		return nil, err
	}
	task := kern.Spawn("validate", vk.Name, runner, nil)
	pid := task.ID().PID

	inner := pmu.New(kern)
	registry := hpm.DefaultRegistry()
	events := append([]string(nil), baseEvents...)
	for _, name := range optionalEvents {
		d, err := registry.ParseEvent(name)
		if err == nil && inner.Supported(d) {
			events = append(events, name)
			continue
		}
		entries = append(entries, Entry{
			Kernel: vk.Name, Model: model, Layer: LayerSession, Event: name,
			Supported: false, Pass: true,
			Note: "event not implemented by this machine model; reported unsupported, not zero",
		})
	}
	screen := validationScreen(events)
	descs, err := core.ResolveScreenEvents(registry, screen)
	if err != nil {
		return nil, err
	}
	// Rotation pressure: does the screen fit the PMU? Per event, a
	// measurement is extrapolated only when rotation is active AND the
	// event costs a slot — the U74's fixed cycle/instret CSRs stay
	// attached and exact even while its two programmable counters
	// rotate.
	capacity := inner.Capacity()
	slotCost := make(map[string]int, len(descs))
	total := 0
	for _, d := range descs {
		slotCost[d.Name] = inner.SlotCost(d)
		total += inner.SlotCost(d)
	}
	rotation := capacity > 0 && total > capacity
	muxedEvent := func(name string) bool { return rotation && slotCost[name] > 0 }

	src := proc.NewSource(kern)
	src.IncludeExited = true
	sess, err := core.NewSession(mux.Wrap(inner), src, proc.NewClock(kern), core.Options{
		Screen:      screen,
		Interval:    interval,
		FreqHz:      m.FreqHz,
		NumCPUs:     m.NumLogical(),
		SortBy:      "pid",
		Parallelism: 1,
	})
	if err != nil {
		return nil, err
	}
	defer sess.Close()

	dir := filepath.Join(scratch, model+"-"+vk.Name)
	st, err := store.Open(dir, store.Options{NoDownsample: true})
	if err != nil {
		return nil, err
	}
	cols := make([]string, len(screen.Columns))
	for i, c := range screen.Columns {
		cols[i] = c.Name
	}
	st.SetColumns(cols)

	// The live run: attach at t=0 (nothing has executed yet, so the
	// perf "only events after attach" semantics still observe the whole
	// program), then refresh until the kernel exits — the final sample
	// reads the partial last interval of the then-zombie task.
	sums := make(map[string]uint64, len(events))
	maxSamples := opt.RefreshTarget*3 + 32
	done := false
	for i := 0; i < maxSamples; i++ {
		sample, err := sess.Update()
		if err != nil {
			st.Close()
			return nil, err
		}
		for r := range sample.Rows {
			row := &sample.Rows[r]
			if row.Info.ID.PID != pid {
				continue
			}
			for _, ev := range events {
				sums[ev] += row.Events[ev]
			}
		}
		if err := st.AppendSample(sample); err != nil {
			st.Close()
			return nil, err
		}
		if task.State() == sched.TaskExited {
			done = true
			break
		}
		sess.AdvanceClock()
	}
	if !done {
		st.Close()
		return nil, fmt.Errorf("kernel did not finish within %d refreshes", maxSamples)
	}
	if got := runner.VM().Counts(); got != oracle {
		st.Close()
		return nil, fmt.Errorf("live VM diverged from oracle pre-run: %+v vs %+v", got, oracle)
	}

	// Layers a/b: raw shard deltas (exact) or mux extrapolation
	// (tolerance band), per event.
	for _, ev := range events {
		muxed := muxedEvent(ev)
		layer := LayerSession
		if muxed {
			layer = LayerMux
		}
		e := Entry{
			Kernel: vk.Name, Model: model, Layer: layer, Event: ev,
			Expected: float64(oracle.Count(ev)), Measured: float64(sums[ev]),
			Exact: !muxed, Muxed: muxed, Supported: true,
		}
		checkEntry(&e, opt.MuxTolerance, opt.MuxAbsSlack)
		entries = append(entries, e)
	}

	// Layer c: store round-trip. Close seals the buffered tail; the
	// reopen exercises recovery; the query must reproduce the session
	// sums exactly — extrapolated or not, what the engine measured is
	// what the store must persist.
	if err := st.Close(); err != nil {
		return nil, err
	}
	st2, err := store.Open(dir, store.Options{NoDownsample: true})
	if err != nil {
		return nil, err
	}
	defer st2.Close()
	step := st2.LastTime().Seconds()*2 + 1
	known := query.KnownNames(cols)
	queryOne := func(expr string) (float64, error) {
		c, err := query.Compile(expr, known)
		if err != nil {
			return 0, err
		}
		res, err := query.QueryStore(st2, c, query.Options{StepSeconds: step})
		if err != nil {
			return 0, err
		}
		for _, s := range res.Series {
			if s.PID != pid || s.Total {
				continue
			}
			var sum float64
			for _, p := range s.Points {
				sum += p.Value
			}
			return sum, nil
		}
		return 0, fmt.Errorf("query %q returned no series for pid %d", expr, pid)
	}
	for _, ev := range storeEvents {
		measured, err := queryOne("delta(" + ev + ")")
		if err != nil {
			return nil, err
		}
		e := Entry{
			Kernel: vk.Name, Model: model, Layer: LayerStore, Event: ev,
			Expected: float64(sums[ev]), Measured: measured,
			Exact: true, Supported: true,
		}
		checkEntry(&e, opt.MuxTolerance, 0)
		entries = append(entries, e)
	}

	// Layer d: derived expressions through internal/query, against
	// oracle-derived values. A quotient of two extrapolated counts can
	// compound both errors, so muxed derived entries get twice the
	// band; quotients of exact counts (and of the U74's fixed
	// counters) stay exact.
	derived := []struct {
		event, expr string
		expected    float64
		muxed       bool
	}{
		{
			event: "IPC", expr: "ratio(INSTRUCTIONS, CYCLES)",
			expected: float64(oracle.Instructions) / float64(oracle.Cycles),
			muxed:    muxedEvent(hpm.EventInstructions) || muxedEvent(hpm.EventCycles),
		},
		{
			event: "LLC_MISS_PER100", expr: "per100(CACHE_MISSES, INSTRUCTIONS)",
			expected: 100 * float64(oracle.LLCMisses) / float64(oracle.Instructions),
			muxed:    muxedEvent(hpm.EventCacheMisses) || muxedEvent(hpm.EventInstructions),
		},
	}
	for _, d := range derived {
		measured, err := queryOne(d.expr)
		if err != nil {
			return nil, err
		}
		e := Entry{
			Kernel: vk.Name, Model: model, Layer: LayerQuery, Event: d.event,
			Expected: d.expected, Measured: measured,
			Exact: !d.muxed, Muxed: d.muxed, Supported: true,
		}
		checkEntry(&e, 2*opt.MuxTolerance, 0)
		entries = append(entries, e)
	}
	return entries, nil
}
