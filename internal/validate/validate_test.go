package validate

import (
	"testing"

	"tiptop/internal/hpm"
)

// TestConformanceMatrix runs the full harness — every ValidationSuite
// kernel on all four machine models through session → mux → store →
// query — and asserts the gates tipbench -validate enforces in CI:
// exact counts on unconstrained layers, ≤5% on mux-extrapolated ones.
func TestConformanceMatrix(t *testing.T) {
	rep, err := Run(Options{ScratchDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Models) != 4 || len(rep.Kernels) != 5 {
		t.Fatalf("matrix shape: %d models, %d kernels", len(rep.Models), len(rep.Kernels))
	}
	for _, e := range rep.Entries {
		if !e.Pass {
			t.Errorf("%s on %s, layer %s, %s: expected %.6g measured %.6g (rel error %.4f, exact=%v)",
				e.Kernel, e.Model, e.Layer, e.Event, e.Expected, e.Measured, e.RelError, e.Exact)
		}
	}
	if rep.ExactViolations != 0 {
		t.Errorf("%d exact-layer violations", rep.ExactViolations)
	}
	if rep.WorstMuxedRelError > rep.MuxTolerance {
		t.Errorf("worst muxed relative error %.4f exceeds %.2f", rep.WorstMuxedRelError, rep.MuxTolerance)
	}
	if !rep.Pass {
		t.Error("report did not pass")
	}
}

// TestUnsupportedEventsReported asserts the satellite contract: a model
// without the FP-assist raw code must surface the event as unsupported
// — a distinguishable report, not a silent zero count.
func TestUnsupportedEventsReported(t *testing.T) {
	rep, err := Run(Options{Models: []string{"ppc970", "w3550"}, ScratchDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	var ppcUnsupported, xeonSupported int
	for _, e := range rep.Entries {
		if e.Event != hpm.EventFPAssist {
			continue
		}
		switch {
		case e.Model == "ppc970" && !e.Supported:
			ppcUnsupported++
		case e.Model == "w3550" && e.Supported:
			xeonSupported++
		case e.Model == "ppc970" && e.Supported:
			t.Errorf("ppc970 reported FP_ASSIST as a counted event (%s layer): missing hardware must be unsupported, not zero", e.Layer)
		}
	}
	if ppcUnsupported == 0 {
		t.Error("no unsupported FP_ASSIST entries for ppc970")
	}
	if xeonSupported == 0 {
		t.Error("no supported FP_ASSIST entries for w3550")
	}
	if rep.UnsupportedEvents == 0 {
		t.Error("report counted no unsupported events")
	}
}
