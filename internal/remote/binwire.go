package remote

// The binary wire frame: an opt-in, length-prefixed encoding of Sample
// negotiated per client (?wire=binary, or Accept with the binary media
// type — the parameter wins). The first payload byte is the wire
// version, with the same reject-newer rule as the JSON document's "v"
// field, so a stale client fails loudly on either encoding.
//
// The layout leans on the same primitives as the store's record format
// v2 (internal/binenc): varints, a per-frame string dictionary built
// streamingly (first occurrence inline, repeats by index), and the
// XOR-against-previous float codec — which round-trips every float64
// bit-exactly, so a binary round trip reproduces the JSON wire's
// decoded form field for field. Nil and empty slices are encoded
// distinctly (header 0 = nil, n+1 = n elements) to preserve that
// parity.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"

	"tiptop/internal/binenc"
)

// WireFormat selects a stream encoding for a hub subscriber.
type WireFormat int

const (
	// FormatJSON is the default SSE stream of JSON samples.
	FormatJSON WireFormat = iota
	// FormatBinary is the length-prefixed binary frame stream.
	FormatBinary
)

// ContentTypeBinary is the media type of the binary frame stream; a
// client offers it in Accept (or forces it with ?wire=binary) and
// recognizes the server's agreement by the response Content-Type.
const ContentTypeBinary = "application/vnd.tiptop.sample-binary"

// maxBinaryFrame bounds a stream frame's declared length, so a corrupt
// or hostile length prefix cannot make a client allocate without bound.
const maxBinaryFrame = 64 << 20

// WireFormatFor picks the sample encoding a request asks for: the
// ?wire= parameter wins, the Accept header decides otherwise, and the
// default is JSON (so existing clients see no change).
func WireFormatFor(r *http.Request) (WireFormat, error) {
	switch p := r.URL.Query().Get("wire"); p {
	case "":
	case "json", "sse":
		return FormatJSON, nil
	case "binary", "bin":
		return FormatBinary, nil
	default:
		return FormatJSON, fmt.Errorf("unknown wire format %q", p)
	}
	if strings.Contains(r.Header.Get("Accept"), ContentTypeBinary) {
		return FormatBinary, nil
	}
	return FormatJSON, nil
}

// WantsOpenMetrics reports whether a request negotiates the
// OpenMetrics text exposition via its Accept header. Query endpoints
// consult it only when no ?format= parameter is present — the
// parameter always wins.
func WantsOpenMetrics(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text")
}

// buildBinaryFrame wraps one encoded sample in the stream framing:
// uint32 little-endian payload length, then the payload.
func buildBinaryFrame(payload []byte) []byte {
	b := make([]byte, 4, 4+len(payload))
	binary.LittleEndian.PutUint32(b, uint32(len(payload)))
	return append(b, payload...)
}

// readBinaryFrame reads one length-prefixed frame from a stream.
func readBinaryFrame(br *bufio.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > maxBinaryFrame {
		return nil, fmt.Errorf("remote: bad binary frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// binEncoder appends binary-sample fields, interning strings into the
// frame's dictionary: a string's first occurrence travels inline after
// a 0 marker, repeats as 1-based dictionary indices.
type binEncoder struct {
	b    []byte
	dict map[string]uint64
}

func (e *binEncoder) str(s string) {
	if i, ok := e.dict[s]; ok {
		e.b = binenc.AppendUvarint(e.b, i+1)
		return
	}
	e.b = binenc.AppendUvarint(e.b, 0)
	e.b = binenc.AppendString(e.b, s)
	e.dict[s] = uint64(len(e.dict))
}

// slice writes a slice header distinguishing nil from empty: 0 for
// nil, n+1 for n elements (JSON marshals them differently — null vs []
// — and the binary decode must land on the same Go value).
func (e *binEncoder) slice(isNil bool, n int) {
	if isNil {
		e.b = binenc.AppendUvarint(e.b, 0)
		return
	}
	e.b = binenc.AppendUvarint(e.b, uint64(n)+1)
}

// EncodeBinary serializes the sample as one binary wire payload
// (version byte first; wrap with the stream framing to put it on a
// connection). DecodeBinary(EncodeBinary(s)) reproduces exactly what
// Decode(s.Encode()) would: same values bit for bit, same nil-ness.
func (s *Sample) EncodeBinary() []byte {
	e := &binEncoder{b: make([]byte, 0, 512), dict: make(map[string]uint64, 16)}
	e.b = append(e.b, byte(s.V))
	e.b = binenc.AppendUvarint(e.b, s.Refresh)
	e.str(s.Source)
	e.str(s.Machine)
	e.b = binenc.AppendFloat(e.b, 0, s.IntervalSeconds)
	e.b = binenc.AppendFloat(e.b, 0, s.TimeSeconds)
	e.b = binenc.AppendVarint(e.b, int64(s.Dropped))

	e.slice(s.Columns == nil, len(s.Columns))
	for i := range s.Columns {
		c := &s.Columns[i]
		e.str(c.Name)
		e.str(c.Header)
		e.b = binenc.AppendVarint(e.b, int64(c.Width))
		e.str(c.Format)
	}

	e.slice(s.Rows == nil, len(s.Rows))
	var prev Row
	prevPID := 0
	var names []string
	for i := range s.Rows {
		r := &s.Rows[i]
		// PIDs arrive sorted by the screen, TIDs cluster around their
		// PID, and adjacent rows' floats share most bits — deltas and
		// the XOR codec keep all of them short.
		e.b = binenc.AppendVarint(e.b, int64(r.PID-prevPID))
		e.b = binenc.AppendVarint(e.b, int64(r.TID-r.PID))
		e.str(r.User)
		e.str(r.Command)
		e.str(r.State)
		var flags byte
		if r.Monitored {
			flags |= 1
		}
		e.b = append(e.b, flags)
		e.b = binenc.AppendFloat(e.b, prev.CPUPct, r.CPUPct)
		e.b = binenc.AppendFloat(e.b, prev.IPC, r.IPC)
		e.b = binenc.AppendFloat(e.b, prev.StartSeconds, r.StartSeconds)
		e.b = binenc.AppendFloat(e.b, prev.Coverage, r.Coverage)
		e.slice(r.Values == nil, len(r.Values))
		for j, v := range r.Values {
			var p float64
			if j < len(prev.Values) {
				p = prev.Values[j]
			}
			e.b = binenc.AppendFloat(e.b, p, v)
		}
		// Events are a map; a deterministic frame needs a fixed order.
		e.b = binenc.AppendUvarint(e.b, uint64(len(r.Events)))
		names = names[:0]
		for n := range r.Events {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			e.str(n)
			e.b = binenc.AppendUvarint(e.b, r.Events[n])
		}
		prev = *r
		prevPID = r.PID
	}
	return e.b
}

// binDecoder mirrors binEncoder's string interning on the read side.
type binDecoder struct {
	r    *binenc.Reader
	dict []string
	err  error
}

func (d *binDecoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *binDecoder) str() string {
	i := d.r.Uvarint()
	if i == 0 {
		s := d.r.String()
		d.dict = append(d.dict, s)
		return s
	}
	if i-1 >= uint64(len(d.dict)) {
		d.fail("string index %d beyond dictionary of %d", i, len(d.dict))
		return ""
	}
	return d.dict[i-1]
}

// slice reads a slice header, returning (n, isNil). The count is
// sanity-checked against the remaining bytes so a corrupt header
// cannot trigger an unbounded allocation.
func (d *binDecoder) slice() (int, bool) {
	h := d.r.Uvarint()
	if h == 0 {
		return 0, true
	}
	n := h - 1
	if n > uint64(d.r.Len()) {
		d.fail("slice of %d elements in %d remaining bytes", n, d.r.Len())
		return 0, false
	}
	return int(n), false
}

// DecodeBinary parses and version-checks a binary wire payload.
func DecodeBinary(data []byte) (*Sample, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("remote: empty binary sample")
	}
	if v := int(data[0]); v < 1 || v > WireVersion {
		return nil, fmt.Errorf("remote: wire version %d not supported (this client speaks <= %d)", v, WireVersion)
	}
	r := binenc.NewReader(data[1:])
	d := &binDecoder{r: r}
	s := &Sample{V: int(data[0])}
	s.Refresh = r.Uvarint()
	s.Source = d.str()
	s.Machine = d.str()
	s.IntervalSeconds = r.Float(0)
	s.TimeSeconds = r.Float(0)
	s.Dropped = int(r.Varint())

	if n, isNil := d.slice(); !isNil {
		s.Columns = make([]Column, n)
		for i := range s.Columns {
			c := &s.Columns[i]
			c.Name = d.str()
			c.Header = d.str()
			c.Width = int(r.Varint())
			c.Format = d.str()
		}
	}

	if n, isNil := d.slice(); !isNil {
		s.Rows = make([]Row, n)
		var prev Row
		prevPID := 0
		for i := range s.Rows {
			if r.Err() != nil || d.err != nil {
				break
			}
			row := &s.Rows[i]
			row.PID = prevPID + int(r.Varint())
			row.TID = row.PID + int(r.Varint())
			row.User = d.str()
			row.Command = d.str()
			row.State = d.str()
			row.Monitored = r.Byte()&1 != 0
			row.CPUPct = r.Float(prev.CPUPct)
			row.IPC = r.Float(prev.IPC)
			row.StartSeconds = r.Float(prev.StartSeconds)
			row.Coverage = r.Float(prev.Coverage)
			if nv, isNil := d.slice(); !isNil {
				row.Values = make([]float64, nv)
				for j := range row.Values {
					var p float64
					if j < len(prev.Values) {
						p = prev.Values[j]
					}
					row.Values[j] = r.Float(p)
				}
			}
			if ne := r.Uvarint(); ne > 0 {
				if ne > uint64(r.Len()) {
					d.fail("event map of %d entries in %d remaining bytes", ne, r.Len())
					break
				}
				row.Events = make(map[string]uint64, ne)
				for j := uint64(0); j < ne && r.Err() == nil && d.err == nil; j++ {
					name := d.str()
					row.Events[name] = r.Uvarint()
				}
			}
			prev = *row
			prevPID = row.PID
		}
	}

	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("remote: bad binary sample: %w", err)
	}
	if d.err != nil {
		return nil, fmt.Errorf("remote: bad binary sample: %w", d.err)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("remote: %d trailing bytes after binary sample", r.Len())
	}
	return s, nil
}
