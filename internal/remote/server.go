package remote

import (
	"io"
	"net/http"
	"strconv"
	"sync"
)

// Server is the serving side of the wire protocol: the sampling loop
// publishes each refresh once, and the server fans it out over
//
//	/api/v1/stream   SSE push of every refresh (one encode, many subscribers)
//	/api/v1/sample   the latest refresh as JSON, ETag'd by refresh counter
//	/metrics         OpenMetrics text, cached per refresh and ETag'd
//
// The /metrics body is produced by the encode function handed to
// NewServer (typically a Recorder snapshot writer) and re-encoded at
// most once per published refresh regardless of scrape rate.
type Server struct {
	hub     *Hub
	metrics *EncodeCache

	mu         sync.RWMutex
	version    uint64
	latestJSON []byte
	latestBin  []byte
	latestETag string
}

// NewServer creates a server; metricsEncode renders the current
// OpenMetrics exposition (nil disables /metrics caching handlers).
func NewServer(metricsEncode func(io.Writer) error) *Server {
	s := &Server{hub: NewHub()}
	if metricsEncode != nil {
		s.metrics = NewEncodeCache(metricsEncode)
	}
	return s
}

// Publish stamps the sample with the next refresh version, encodes it
// once per wire format (JSON and binary), and hands the bytes to the
// stream hub and the /api/v1/sample cache. It is called from the
// sampling loop, once per refresh.
func (s *Server) Publish(ws *Sample) error {
	s.mu.Lock()
	s.version++
	v := s.version
	ws.V = WireVersion
	ws.Refresh = v
	data, err := ws.Encode()
	if err != nil {
		s.mu.Unlock()
		return err
	}
	bin := ws.EncodeBinary()
	s.latestJSON = data
	s.latestBin = bin
	s.latestETag = `"` + strconv.FormatUint(v, 10) + `"`
	s.mu.Unlock()
	s.hub.PublishWire(v, data, bin)
	return nil
}

// Version returns the number of refreshes published so far.
func (s *Server) Version() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

// Hub exposes the stream hub (for subscriber accounting in tests).
func (s *Server) Hub() *Hub { return s.hub }

// Close terminates every open stream so the HTTP server can shut down.
func (s *Server) Close() { s.hub.Close() }

// HandleStream serves the refresh stream: SSE JSON by default, binary
// frames when the request negotiates them (?wire=binary).
func (s *Server) HandleStream(w http.ResponseWriter, r *http.Request) {
	s.hub.ServeStream(w, r)
}

// HandleSample serves the latest wire sample with ETag revalidation,
// in the encoding the request negotiates. The binary representation
// gets its own ETag ("N-b") — a strong ETag must identify the exact
// bytes, not just the refresh.
func (s *Server) HandleSample(w http.ResponseWriter, r *http.Request) {
	format, err := WireFormatFor(r)
	if err != nil {
		WriteErrorHint(w, http.StatusBadRequest, err.Error(), "pass wire=json or wire=binary")
		return
	}
	s.mu.RLock()
	body, etag := s.latestJSON, s.latestETag
	if format == FormatBinary {
		body = s.latestBin
	}
	s.mu.RUnlock()
	if body == nil {
		WriteErrorHint(w, http.StatusServiceUnavailable, "no sample yet",
			"the daemon has not completed its first refresh; retry shortly")
		return
	}
	if format == FormatBinary {
		ServeCached(w, r, body, etag[:len(etag)-1]+`-b"`, ContentTypeBinary)
		return
	}
	ServeCached(w, r, body, etag, "application/json")
}

// HandleMetrics serves the per-refresh cached OpenMetrics exposition.
func (s *Server) HandleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.metrics == nil {
		http.NotFound(w, r)
		return
	}
	s.mu.RLock()
	v := s.version
	s.mu.RUnlock()
	body, etag, err := s.metrics.Get(v)
	if err != nil {
		WriteError(w, http.StatusInternalServerError, err.Error())
		return
	}
	ServeCached(w, r, body, etag, "text/plain; version=0.0.4; charset=utf-8")
}

// Register mounts the server's endpoints on a mux.
func (s *Server) Register(mux *http.ServeMux) {
	mux.HandleFunc("GET /api/v1/stream", s.HandleStream)
	mux.HandleFunc("GET /api/v1/sample", s.HandleSample)
	if s.metrics != nil {
		mux.HandleFunc("GET /metrics", s.HandleMetrics)
	}
}
