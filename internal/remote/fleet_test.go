package remote

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// fakeAgent is a minimal tiptopd: a wire Server behind httptest that
// the test publishes into directly.
type fakeAgent struct {
	srv *Server
	ts  *httptest.Server
}

func newFakeAgent(t *testing.T) *fakeAgent {
	t.Helper()
	srv := NewServer(nil)
	mux := http.NewServeMux()
	srv.Register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(func() {
		srv.Close()
		ts.Close()
	})
	return &fakeAgent{srv: srv, ts: ts}
}

func (a *fakeAgent) host() string { return strings.TrimPrefix(a.ts.URL, "http://") }

// agentSample builds a distinguishable sample per agent.
func agentSample(agent int, t float64) *Sample {
	s := testSample(0, t)
	s.Machine = fmt.Sprintf("agent-%d box", agent)
	s.Rows[0].PID = 100*agent + 1
	s.Rows[0].TID = s.Rows[0].PID
	s.Rows[1].PID = 100*agent + 2
	s.Rows[0].User = fmt.Sprintf("user%d", agent)
	return s
}

func TestNewFleetValidation(t *testing.T) {
	if _, err := NewFleet(nil, FleetOptions{}); err == nil {
		t.Fatal("empty fleet accepted")
	}
	if _, err := NewFleet([]string{""}, FleetOptions{}); err == nil {
		t.Fatal("blank agent accepted")
	}
	if _, err := NewFleet([]string{"host:1", "host:1"}, FleetOptions{}); err == nil {
		t.Fatal("duplicate agent accepted")
	}
	f, err := NewFleet([]string{"host1:9412", "http://host2:9412/"}, FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Labels(); got[0] != "host1:9412" || got[1] != "host2:9412" {
		t.Fatalf("labels = %v", got)
	}
}

// waitFor polls until cond returns true or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestFleetMergesAgents is the aggregator's core behavior: three agents
// streaming, one merged snapshot and exposition with per-machine
// labels, cluster sums recomputed from raw deltas.
func TestFleetMergesAgents(t *testing.T) {
	agents := []*fakeAgent{newFakeAgent(t), newFakeAgent(t), newFakeAgent(t)}
	addrs := make([]string, len(agents))
	for i, a := range agents {
		addrs[i] = a.ts.URL
		if err := a.srv.Publish(agentSample(i+1, 2)); err != nil {
			t.Fatal(err)
		}
	}
	fleet, err := NewFleet(addrs, FleetOptions{ReconnectDelay: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer func() {
		cancel()
		fleet.Wait()
		fleet.Close()
	}()
	fleet.Start(ctx)
	waitFor(t, "all agents observed", func() bool { return fleet.Version() >= 3 })

	// A second refresh from each agent.
	for i, a := range agents {
		if err := a.srv.Publish(agentSample(i+1, 4)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "second refreshes", func() bool { return fleet.Version() >= 6 })

	snap := fleet.Snapshot()
	if snap.Cluster.Agents != 3 || snap.Cluster.AgentsUp != 3 {
		t.Fatalf("cluster agents = %+v", snap.Cluster)
	}
	if snap.Cluster.Tasks != 6 {
		t.Fatalf("cluster tasks = %d, want 2 per agent", snap.Cluster.Tasks)
	}
	// Each agent's latest refresh contributes 700/1000: cluster IPC 0.7.
	if snap.Cluster.IPC < 0.69 || snap.Cluster.IPC > 0.71 {
		t.Fatalf("cluster IPC = %v", snap.Cluster.IPC)
	}
	// Two observed refreshes per agent fold 2×(1000 cycles, 700 instr).
	if snap.Cluster.Instructions != 3*2*700 || snap.Cluster.Cycles != 3*2*1000 {
		t.Fatalf("cluster totals = %+v", snap.Cluster)
	}
	if len(snap.Machines) != 3 {
		t.Fatalf("machines = %d", len(snap.Machines))
	}
	for i, a := range agents {
		m := snap.Machines[a.host()]
		if m == nil || m.Machine.Tasks != 2 {
			t.Fatalf("machine %d snapshot = %+v", i, m)
		}
		if m.Users[fmt.Sprintf("user%d", i+1)].Tasks != 1 {
			t.Fatalf("machine %d user aggregate missing", i)
		}
	}

	var sb strings.Builder
	if err := fleet.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	om := sb.String()
	for _, want := range []string{
		"tiptop_fleet_agents 3",
		fmt.Sprintf(`tiptop_agent_up{machine="%s"} 1`, agents[0].host()),
		fmt.Sprintf(`tiptop_machine_tasks{machine="%s"} 2`, agents[1].host()),
		fmt.Sprintf(`tiptop_user_tasks{machine="%s",user="user3"} 1`, agents[2].host()),
		fmt.Sprintf(`tiptop_task_ipc{machine="%s",pid="101",tid="101",user="user1",command="mcf"}`, agents[0].host()),
		"# EOF",
	} {
		if !strings.Contains(om, want) {
			t.Errorf("fleet exposition missing %q", want)
		}
	}
	// Exactly one declaration per family even with three machines.
	if n := strings.Count(om, "# TYPE tiptop_machine_tasks gauge"); n != 1 {
		t.Errorf("tiptop_machine_tasks declared %d times", n)
	}
}

// TestFleetReconnectsAndSkipsReplay: an agent that goes away is marked
// down, re-dialed when it returns, and its replayed last frame is not
// double-counted into cumulative totals.
func TestFleetReconnectsAndSkipsReplay(t *testing.T) {
	srv := NewServer(nil)
	mux := http.NewServeMux()
	srv.Register(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()
	if err := srv.Publish(agentSample(1, 2)); err != nil {
		t.Fatal(err)
	}

	fleet, err := NewFleet([]string{ts.URL}, FleetOptions{ReconnectDelay: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer func() {
		cancel()
		fleet.Wait()
		fleet.Close()
	}()
	fleet.Start(ctx)
	waitFor(t, "first observation", func() bool { return fleet.Version() >= 1 })

	// Kill the agent's streams: the fleet must mark it down.
	srv.Close()
	waitFor(t, "agent down", func() bool { return !fleet.Snapshot().Agents[0].Connected })

	// The replayed frame (same agent refresh counter) must not have
	// been folded twice while the fleet was reconnect-polling.
	snap := fleet.Snapshot()
	if snap.Cluster.Instructions != 700 {
		t.Fatalf("instructions = %d after replay, want 700 (no double count)", snap.Cluster.Instructions)
	}
	if snap.Cluster.Tasks != 0 {
		t.Fatalf("down agent still contributes %d live tasks", snap.Cluster.Tasks)
	}
}

// TestFleetRebroadcastTagsSource: the aggregator's own stream carries
// the originating agent in Sample.Source.
func TestFleetRebroadcastTagsSource(t *testing.T) {
	agent := newFakeAgent(t)
	if err := agent.srv.Publish(agentSample(1, 2)); err != nil {
		t.Fatal(err)
	}
	fleet, err := NewFleet([]string{agent.ts.URL}, FleetOptions{ReconnectDelay: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ch, cancelSub := fleet.Hub().Subscribe()
	defer cancelSub()
	ctx, cancel := context.WithCancel(context.Background())
	defer func() {
		cancel()
		fleet.Wait()
		fleet.Close()
	}()
	fleet.Start(ctx)

	select {
	case frame := <-ch:
		s := string(frame)
		i := strings.Index(s, "data: ")
		if i < 0 {
			t.Fatalf("frame = %q", s)
		}
		payload := strings.TrimSuffix(s[i+len("data: "):], "\n\n")
		ws, err := Decode([]byte(payload))
		if err != nil {
			t.Fatal(err)
		}
		if ws.Source != agent.host() {
			t.Fatalf("Source = %q, want %q", ws.Source, agent.host())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no re-broadcast frame")
	}
}
