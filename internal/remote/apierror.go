package remote

// The API error envelope: every /api/v1/* endpoint answers failures
// with one JSON shape instead of ad-hoc plain-text bodies, so clients
// parse a single contract —
//
//	{"error": "...", "hint": "...", "offset": N}
//
// error is the complete human-readable message (what http.Error used
// to carry), hint an optional actionable suggestion ("did you mean
// CYCLES?", "start tiptopd with -store DIR"), and offset the byte
// position in a query expression when the failure is a parse or
// validation error. Handlers across internal/store, internal/query and
// the daemons share these writers, which is what keeps the envelope
// consistent.

import (
	"encoding/json"
	"net/http"
)

// APIError is the JSON error envelope of the HTTP API.
type APIError struct {
	Message string `json:"error"`
	Hint    string `json:"hint,omitempty"`
	// Offset is a byte offset into the request's query expression; a
	// pointer so position 0 still serializes.
	Offset *int `json:"offset,omitempty"`
}

// Error makes the envelope usable as a client-side error value.
func (e *APIError) Error() string { return e.Message }

// WriteAPIError writes the envelope with the given status.
func WriteAPIError(w http.ResponseWriter, status int, e APIError) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(e)
}

// WriteError writes a bare-message envelope.
func WriteError(w http.ResponseWriter, status int, msg string) {
	WriteAPIError(w, status, APIError{Message: msg})
}

// WriteErrorHint writes an envelope with an actionable hint.
func WriteErrorHint(w http.ResponseWriter, status int, msg, hint string) {
	WriteAPIError(w, status, APIError{Message: msg, Hint: hint})
}
