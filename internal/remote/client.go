package remote

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"
)

// ErrClosed is returned by Client calls after Close.
var ErrClosed = errors.New("remote: client closed")

// Client attaches to a tiptopd over HTTP and exposes its refreshes.
// Poll fetches the latest sample (one request, ETag-friendly); Next
// consumes the SSE stream, blocking until the agent publishes a refresh
// the client has not seen — which is what paces a remote TUI to the
// agent's cadence.
//
// Poll and Next are safe to call from one consumer goroutine while
// Close is called from another (Close unblocks a pending Next).
type Client struct {
	base string
	host string
	// wire is the requested stream encoding ("" or "json" for SSE,
	// "binary" for length-prefixed binary frames).
	wire string
	// poll is the request client for one-shot fetches; stream requests
	// use their own context and must not carry a timeout.
	poll   *http.Client
	stream *http.Client

	mu          sync.Mutex
	latest      *Sample
	lastRefresh uint64
	closed      bool
	cancel      context.CancelFunc
	body        io.ReadCloser
	br          *bufio.Reader
	// binary records whether the current stream connection actually
	// negotiated binary frames (a server that does not speak them keeps
	// serving SSE JSON, and the client follows the Content-Type).
	binary bool
}

// DialTimeout bounds the one-shot requests (and the stream connect).
const DialTimeout = 10 * time.Second

// normalizeBase canonicalizes an agent address ("host:port" or a full
// URL): trimmed, no trailing slash, scheme defaulted to http, host
// non-empty. Dial and NewFleet share it so an address the fleet labels
// is always one the client can dial.
func normalizeBase(addr string) (base, host string, err error) {
	base = strings.TrimRight(strings.TrimSpace(addr), "/")
	if base == "" {
		return "", "", fmt.Errorf("remote: empty agent address")
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	u, err := url.Parse(base)
	if err != nil || u.Host == "" {
		return "", "", fmt.Errorf("remote: bad address %q", addr)
	}
	return base, u.Host, nil
}

// DialOptions tune a client connection.
type DialOptions struct {
	// Wire selects the stream encoding: "" or "json" for the SSE JSON
	// stream, "binary" for length-prefixed binary frames. Binary is a
	// request, not a demand — a server that does not speak it answers
	// with the SSE stream and the client falls back transparently.
	Wire string
}

// Dial connects to a tiptopd at base ("host:port" or a full URL) and
// fetches its current sample, so Machine/Interval/Columns are known
// before the first Next.
func Dial(base string) (*Client, error) {
	return DialWith(base, DialOptions{})
}

// DialWith is Dial with explicit options.
func DialWith(base string, opt DialOptions) (*Client, error) {
	switch opt.Wire {
	case "", "json", "binary":
	default:
		return nil, fmt.Errorf("remote: unknown wire format %q (want json or binary)", opt.Wire)
	}
	base, host, err := normalizeBase(base)
	if err != nil {
		return nil, err
	}
	c := &Client{
		base:   base,
		host:   host,
		wire:   opt.Wire,
		poll:   &http.Client{Timeout: DialTimeout},
		stream: &http.Client{},
	}
	if _, err := c.Poll(); err != nil {
		return nil, err
	}
	return c, nil
}

// Host returns the agent's host:port.
func (c *Client) Host() string { return c.host }

// URL returns the agent's base URL.
func (c *Client) URL() string { return c.base }

// Poll fetches the latest sample from /api/v1/sample.
func (c *Client) Poll() (*Sample, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.mu.Unlock()

	resp, err := c.poll.Get(c.base + "/api/v1/sample")
	if err != nil {
		return nil, fmt.Errorf("remote: %s: %w", c.base, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, fmt.Errorf("remote: %s: %w", c.base, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("remote: %s/api/v1/sample: %s", c.base, strings.TrimSpace(firstLine(data, resp.Status)))
	}
	ws, err := Decode(data)
	if err != nil {
		return nil, err
	}
	c.remember(ws)
	return ws, nil
}

func firstLine(body []byte, fallback string) string {
	if i := bytes.IndexByte(body, '\n'); i >= 0 {
		body = body[:i]
	}
	if len(body) == 0 {
		return fallback
	}
	return string(body)
}

func (c *Client) remember(ws *Sample) {
	c.mu.Lock()
	c.latest = ws
	if ws.Refresh > c.lastRefresh {
		c.lastRefresh = ws.Refresh
	}
	c.mu.Unlock()
}

// Next blocks until the agent publishes a refresh this client has not
// returned yet (the stream replays the latest frame on connect; frames
// at or below the last seen refresh counter are skipped).
func (c *Client) Next() (*Sample, error) {
	for {
		br, binary, err := c.ensureStream()
		if err != nil {
			return nil, err
		}
		var data []byte
		if binary {
			data, err = readBinaryFrame(br)
		} else {
			data, err = readSSEData(br)
		}
		if err != nil {
			c.dropStream()
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			if closed {
				return nil, ErrClosed
			}
			return nil, fmt.Errorf("remote: %s stream: %w", c.base, err)
		}
		var ws *Sample
		if binary {
			ws, err = DecodeBinary(data)
		} else {
			ws, err = Decode(data)
		}
		if err != nil {
			return nil, err
		}
		c.mu.Lock()
		stale := ws.Refresh <= c.lastRefresh
		c.mu.Unlock()
		if stale {
			continue
		}
		c.remember(ws)
		return ws, nil
	}
}

// ensureStream opens the stream connection on first use, asking for
// the configured wire encoding and following whatever the server
// actually granted (the response Content-Type is authoritative, which
// is how a binary-wanting client falls back against an older server).
func (c *Client) ensureStream() (*bufio.Reader, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, false, ErrClosed
	}
	if c.br != nil {
		return c.br, c.binary, nil
	}
	ctx, cancel := context.WithCancel(context.Background())
	url := c.base + "/api/v1/stream"
	if c.wire == "binary" {
		url += "?wire=binary"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		cancel()
		return nil, false, err
	}
	if c.wire == "binary" {
		req.Header.Set("Accept", ContentTypeBinary+", text/event-stream")
	} else {
		req.Header.Set("Accept", "text/event-stream")
	}
	resp, err := c.stream.Do(req)
	if err != nil {
		cancel()
		return nil, false, fmt.Errorf("remote: %s: %w", c.base, err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		cancel()
		return nil, false, fmt.Errorf("remote: %s/api/v1/stream: %s", c.base, resp.Status)
	}
	c.cancel = cancel
	c.body = resp.Body
	c.br = bufio.NewReader(resp.Body)
	c.binary = strings.HasPrefix(resp.Header.Get("Content-Type"), ContentTypeBinary)
	return c.br, c.binary, nil
}

func (c *Client) dropStream() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cancel != nil {
		c.cancel()
		c.cancel = nil
	}
	if c.body != nil {
		c.body.Close()
		c.body = nil
	}
	c.br = nil
}

// readSSEData reads until a complete "sample" event (or one with the
// default event type) arrives and returns its concatenated data
// payload. Comment lines are ignored; events of any other type are
// discarded whole, so a future keep-alive or status event cannot be
// misread as a sample.
func readSSEData(br *bufio.Reader) ([]byte, error) {
	var data []byte
	event := ""
	for {
		line, err := br.ReadBytes('\n')
		if err != nil {
			return nil, err
		}
		line = bytes.TrimRight(line, "\r\n")
		if len(line) == 0 {
			// Event boundary.
			if len(data) > 0 && (event == "" || event == "sample" || event == "message") {
				return data, nil
			}
			data, event = data[:0], ""
			continue
		}
		if line[0] == ':' {
			continue // comment / keep-alive
		}
		field, value, _ := bytes.Cut(line, []byte(":"))
		value = bytes.TrimPrefix(value, []byte(" "))
		switch string(field) {
		case "data":
			if len(data) > 0 {
				data = append(data, '\n')
			}
			data = append(data, value...)
		case "event":
			event = string(value)
		}
	}
}

// Latest returns the most recently fetched sample (nil before Dial
// completed, which never happens for a dialed client).
func (c *Client) Latest() *Sample {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.latest
}

// Machine returns the agent's machine description.
func (c *Client) Machine() string {
	if s := c.Latest(); s != nil {
		return s.Machine
	}
	return ""
}

// Interval returns the agent's refresh period.
func (c *Client) Interval() time.Duration {
	if s := c.Latest(); s != nil {
		return s.Interval()
	}
	return 0
}

// Columns returns the agent's screen columns.
func (c *Client) Columns() []Column {
	if s := c.Latest(); s != nil {
		return s.Columns
	}
	return nil
}

// Close tears down the stream connection; a blocked Next returns
// ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.dropStream()
	return nil
}
