package remote

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

// fullSample builds a sample exercising every wire field: multiple
// rows with shared strings, per-row events, awkward floats, a nil
// Values row and an empty-but-present one.
func fullSample() *Sample {
	return &Sample{
		V:               WireVersion,
		Refresh:         42,
		Source:          "node-7:8119",
		Machine:         "8 CPUs @ 2.5 GHz",
		IntervalSeconds: 2,
		TimeSeconds:     123.456,
		Dropped:         3,
		Columns: []Column{
			{Name: "INSN", Header: "Minstr", Width: 8, Format: "%8.2f"},
			{Name: "IPC", Header: "IPC"},
		},
		Rows: []Row{
			{
				PID: 101, TID: 101, User: "alice", Command: "payload",
				State: "R", CPUPct: 51.25, IPC: 1.3333333333333333,
				Monitored: true, StartSeconds: 17.5,
				Values: []float64{1234.5, 1.3333333333333333},
				Events: map[string]uint64{"INSTRUCTIONS": 9999999, "CYCLES": 7500000},
			},
			{
				PID: 101, TID: 104, User: "alice", Command: "payload",
				State: "S", CPUPct: 51.5, IPC: 1.3333433333333333,
				Monitored: true, StartSeconds: 17.75, Coverage: 0.25,
				Values: []float64{1234.625, math.SmallestNonzeroFloat64},
				Events: map[string]uint64{"INSTRUCTIONS": 1, "CYCLES": 0},
			},
			{
				PID: 2, User: "root", Command: "kthreadd",
				Values: nil, // never counted: JSON carries null
			},
			{
				PID: 99999, TID: 99999, User: "bob", Command: "idle",
				Monitored: true, Values: []float64{},
			},
		},
	}
}

// TestBinaryRoundTripMatchesJSON is the acceptance check: a binary
// round trip must reproduce exactly what the JSON wire's decode
// produces — same float bits, same nil vs empty slices, same maps.
func TestBinaryRoundTripMatchesJSON(t *testing.T) {
	ws := fullSample()

	jdata, err := ws.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	viaJSON, err := Decode(jdata)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}

	bdata := ws.EncodeBinary()
	viaBin, err := DecodeBinary(bdata)
	if err != nil {
		t.Fatalf("DecodeBinary: %v", err)
	}

	if !reflect.DeepEqual(viaBin, viaJSON) {
		t.Fatalf("binary round trip diverges from JSON decode:\nbinary: %+v\njson:   %+v", viaBin, viaJSON)
	}
	// The whole point of the format: it should also be smaller.
	if len(bdata) >= len(jdata) {
		t.Errorf("binary frame (%d bytes) not smaller than JSON (%d bytes)", len(bdata), len(jdata))
	}
}

func TestBinaryRoundTripEmpty(t *testing.T) {
	ws := &Sample{V: WireVersion, Refresh: 1, Machine: "m"}
	jdata, _ := ws.Encode()
	viaJSON, err := Decode(jdata)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	viaBin, err := DecodeBinary(ws.EncodeBinary())
	if err != nil {
		t.Fatalf("DecodeBinary: %v", err)
	}
	if !reflect.DeepEqual(viaBin, viaJSON) {
		t.Fatalf("empty sample diverges:\nbinary: %+v\njson:   %+v", viaBin, viaJSON)
	}
	if viaBin.Rows != nil || viaBin.Columns != nil {
		t.Fatalf("nil slices did not survive: %+v", viaBin)
	}
}

// TestBinaryRejectsNewerVersion mirrors the JSON wire's reject-newer
// rule on the leading version byte.
func TestBinaryRejectsNewerVersion(t *testing.T) {
	data := fullSample().EncodeBinary()
	data[0] = WireVersion + 1
	if _, err := DecodeBinary(data); err == nil || !strings.Contains(err.Error(), "not supported") {
		t.Fatalf("version %d accepted, err = %v", WireVersion+1, err)
	}
	if _, err := DecodeBinary([]byte{0}); err == nil {
		t.Fatal("version 0 accepted")
	}
	if _, err := DecodeBinary(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
}

// TestBinaryTruncation verifies every prefix of a valid frame fails
// loudly rather than yielding a quietly wrong sample.
func TestBinaryTruncation(t *testing.T) {
	data := fullSample().EncodeBinary()
	for n := 1; n < len(data); n++ {
		if _, err := DecodeBinary(data[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded without error", n, len(data))
		}
	}
}

// TestClientNegotiatesBinary is the end-to-end negotiation test: a
// binary-asking client against a binary-speaking server receives the
// binary stream, and every sample it sees is identical to the JSON
// wire's decoded form.
func TestClientNegotiatesBinary(t *testing.T) {
	srv := NewServer(nil)
	defer srv.Close()
	mux := http.NewServeMux()
	srv.Register(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	if err := srv.Publish(fullSample()); err != nil {
		t.Fatalf("Publish: %v", err)
	}

	c, err := DialWith(ts.URL, DialOptions{Wire: "binary"})
	if err != nil {
		t.Fatalf("DialWith: %v", err)
	}
	defer c.Close()

	// Next skips refreshes the Dial-time Poll already saw, so push a
	// fresh one for the stream to deliver.
	next := fullSample()
	next.TimeSeconds += 2
	if err := srv.Publish(next); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	got, err := c.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	c.mu.Lock()
	binary := c.binary
	c.mu.Unlock()
	if !binary {
		t.Fatal("client did not negotiate the binary stream")
	}

	srv.mu.RLock()
	jdata := srv.latestJSON
	srv.mu.RUnlock()
	want, err := Decode(jdata)
	if err != nil {
		t.Fatalf("Decode latest JSON: %v", err)
	}
	if got.Refresh != 2 {
		t.Fatalf("refresh = %d, want 2", got.Refresh)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("binary stream sample diverges from JSON wire decode:\ngot:  %+v\nwant: %+v", got, want)
	}
}

// TestClientFallsBackToSSE: a binary-asking client against a server
// that ignores ?wire= (an older daemon) keeps working over SSE JSON.
func TestClientFallsBackToSSE(t *testing.T) {
	srv := NewServer(nil)
	defer srv.Close()
	mux := http.NewServeMux()
	// An old server: SSE only, no negotiation, no binary sample body.
	mux.HandleFunc("GET /api/v1/stream", srv.hub.ServeSSE)
	mux.HandleFunc("GET /api/v1/sample", func(w http.ResponseWriter, r *http.Request) {
		srv.mu.RLock()
		body := srv.latestJSON
		srv.mu.RUnlock()
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(body)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	if err := srv.Publish(fullSample()); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	c, err := DialWith(ts.URL, DialOptions{Wire: "binary"})
	if err != nil {
		t.Fatalf("DialWith: %v", err)
	}
	defer c.Close()
	next := fullSample()
	if err := srv.Publish(next); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	got, err := c.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	c.mu.Lock()
	binary := c.binary
	c.mu.Unlock()
	if binary {
		t.Fatal("client claims binary against an SSE-only server")
	}
	if got.Machine != "8 CPUs @ 2.5 GHz" || got.Refresh != 2 {
		t.Fatalf("fallback sample wrong: %+v", got)
	}
}

// TestStreamRejectsUnknownWire: a bad ?wire= value is a 400 carrying
// the JSON error envelope with a hint.
func TestStreamRejectsUnknownWire(t *testing.T) {
	srv := NewServer(nil)
	defer srv.Close()
	mux := http.NewServeMux()
	srv.Register(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	for _, path := range []string{"/api/v1/stream?wire=carrier-pigeon", "/api/v1/sample?wire=carrier-pigeon"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		var e APIError
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("%s: bad envelope: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		if !strings.Contains(e.Message, "carrier-pigeon") || !strings.Contains(e.Hint, "wire=binary") {
			t.Fatalf("%s: envelope %+v", path, e)
		}
	}
}

// TestSampleEndpointBinary: ?wire=binary on /api/v1/sample serves the
// binary body with its own ETag.
func TestSampleEndpointBinary(t *testing.T) {
	srv := NewServer(nil)
	defer srv.Close()
	mux := http.NewServeMux()
	srv.Register(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	if err := srv.Publish(fullSample()); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	resp, err := http.Get(ts.URL + "/api/v1/sample?wire=binary")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != ContentTypeBinary {
		t.Fatalf("Content-Type = %q", ct)
	}
	if etag := resp.Header.Get("ETag"); etag != `"1-b"` {
		t.Fatalf("ETag = %q", etag)
	}
	buf := make([]byte, 1<<20)
	n, _ := resp.Body.Read(buf)
	ws, err := DecodeBinary(buf[:n])
	if err != nil {
		t.Fatalf("DecodeBinary: %v", err)
	}
	if ws.Refresh != 1 {
		t.Fatalf("refresh = %d", ws.Refresh)
	}
}
