package remote

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tiptop/internal/core"
	"tiptop/internal/export"
	"tiptop/internal/history"
	"tiptop/internal/hpm"
)

// FleetOptions tune an aggregator.
type FleetOptions struct {
	// History configures each agent's recorder (ring depth, rate
	// window, series retention).
	History history.Options
	// ReconnectDelay is the pause before re-dialing a lost agent
	// (default 1 s).
	ReconnectDelay time.Duration
	// Tee, when set, is called once per agent and its result attached
	// to that agent's recorder (history.Recorder.Tee) — how tiptopd
	// -join -store persists every agent's stream into a per-agent
	// durable store. Returning an error aborts NewFleet.
	Tee func(label string) (core.Observer, error)
	// Wire selects the per-agent stream encoding ("binary" asks each
	// agent for binary frames, falling back to SSE JSON per agent).
	Wire string
}

func (o FleetOptions) withDefaults() FleetOptions {
	if o.ReconnectDelay <= 0 {
		o.ReconnectDelay = time.Second
	}
	return o
}

// Fleet streams N remote agents and merges their refreshes into one
// cluster-wide view: a per-agent history.Recorder (so every query the
// single-machine daemon answers works per machine), a merged snapshot
// with cluster-level aggregates, a machine-labelled OpenMetrics
// exposition, and a re-broadcast SSE stream whose frames carry the
// originating agent in Sample.Source.
//
// Agents connect and churn independently: a lost agent keeps its
// recorded history, is re-dialed with backoff, and is marked down in
// the snapshot and the tiptop_agent_up metric meanwhile.
type Fleet struct {
	opt     FleetOptions
	peers   []*peer
	hub     *Hub
	version atomic.Uint64
	wg      sync.WaitGroup
}

type peer struct {
	label string
	url   string
	rec   *history.Recorder
	// colNames is the last column set pushed into the recorder; only
	// touched from the peer's streaming goroutine.
	colNames []string

	mu          sync.Mutex
	connected   bool
	lastErr     string
	samples     uint64
	lastRefresh uint64
	last        *Sample
}

// NewFleet creates an aggregator over the given agent addresses
// ("host:port" or full URLs). Each agent is labelled by its host:port;
// duplicate addresses are rejected.
func NewFleet(addrs []string, opt FleetOptions) (*Fleet, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("remote: fleet needs at least one agent")
	}
	f := &Fleet{opt: opt.withDefaults(), hub: NewHub()}
	seen := map[string]bool{}
	for _, a := range addrs {
		base, label, err := normalizeBase(a)
		if err != nil {
			return nil, err
		}
		if seen[label] {
			return nil, fmt.Errorf("remote: duplicate agent %q", label)
		}
		seen[label] = true
		p := &peer{
			label: label,
			url:   base,
			rec:   history.New(f.opt.History),
		}
		if f.opt.Tee != nil {
			o, err := f.opt.Tee(label)
			if err != nil {
				return nil, fmt.Errorf("remote: agent %s: %w", label, err)
			}
			p.rec.Tee(o)
		}
		f.peers = append(f.peers, p)
	}
	return f, nil
}

// Start launches one streaming goroutine per agent. The goroutines stop
// when ctx is cancelled; Wait blocks until they have.
func (f *Fleet) Start(ctx context.Context) {
	for _, p := range f.peers {
		f.wg.Add(1)
		go func(p *peer) {
			defer f.wg.Done()
			f.runPeer(ctx, p)
		}(p)
	}
}

// Wait blocks until every agent goroutine has exited.
func (f *Fleet) Wait() { f.wg.Wait() }

// Close terminates the re-broadcast stream subscribers.
func (f *Fleet) Close() { f.hub.Close() }

// Hub exposes the merged re-broadcast stream.
func (f *Fleet) Hub() *Hub { return f.hub }

// Version counts samples observed across all agents; it keys the
// aggregator's metrics cache.
func (f *Fleet) Version() uint64 { return f.version.Load() }

// Labels lists the agent labels in join order.
func (f *Fleet) Labels() []string {
	out := make([]string, len(f.peers))
	for i, p := range f.peers {
		out[i] = p.label
	}
	return out
}

// runPeer dials, streams and re-dials one agent until ctx ends.
func (f *Fleet) runPeer(ctx context.Context, p *peer) {
	for ctx.Err() == nil {
		client, err := DialWith(p.url, DialOptions{Wire: f.opt.Wire})
		if err != nil {
			p.setDown(err)
			if !sleepCtx(ctx, f.opt.ReconnectDelay) {
				return
			}
			continue
		}
		p.mu.Lock()
		p.connected = true
		p.lastErr = ""
		p.mu.Unlock()

		// Unblock the stream read when ctx is cancelled mid-connection.
		done := make(chan struct{})
		go func() {
			select {
			case <-ctx.Done():
				client.Close()
			case <-done:
			}
		}()

		f.observe(p, client.Latest())
		for {
			ws, err := client.Next()
			if err != nil {
				p.setDown(err)
				break
			}
			f.observe(p, ws)
		}
		close(done)
		client.Close()
		if !sleepCtx(ctx, f.opt.ReconnectDelay) {
			return
		}
	}
}

func (p *peer) setDown(err error) {
	p.mu.Lock()
	p.connected = false
	if err != nil && err != ErrClosed {
		p.lastErr = err.Error()
	}
	p.mu.Unlock()
}

// observe folds one agent refresh into the fleet: per-agent recorder,
// version bump, and a source-tagged re-broadcast. A frame with the same
// agent refresh counter as the last one (the stream's replay after a
// reconnect) is skipped so cumulative totals are not double-counted.
func (f *Fleet) observe(p *peer, ws *Sample) {
	if ws == nil {
		return
	}
	p.mu.Lock()
	if p.samples > 0 && ws.Refresh == p.lastRefresh {
		p.mu.Unlock()
		return
	}
	p.lastRefresh = ws.Refresh
	p.last = ws
	p.samples++
	p.mu.Unlock()

	// Push the column set into the recorder only when it changes, so
	// the steady-state observe path stays allocation-light.
	same := len(p.colNames) == len(ws.Columns)
	if same {
		for i := range ws.Columns {
			if p.colNames[i] != ws.Columns[i].Name {
				same = false
				break
			}
		}
	}
	if !same {
		p.colNames = ws.ColumnNames()
		p.rec.SetColumns(p.colNames)
	}
	p.rec.Observe(ws.CoreSample())

	// Re-broadcast with the fleet's own monotonic refresh counter (the
	// per-agent counters would interleave non-monotonically) and the
	// originating agent in Source.
	v := f.version.Add(1)
	tagged := *ws
	tagged.Source = p.label
	tagged.Refresh = v
	if data, err := tagged.Encode(); err == nil {
		f.hub.PublishWire(v, data, tagged.EncodeBinary())
	}
}

// sleepCtx pauses for d, returning false when ctx ended first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// AgentStatus is one agent's health in a fleet snapshot.
type AgentStatus struct {
	Label     string `json:"label"`
	URL       string `json:"url"`
	Connected bool   `json:"connected"`
	Samples   uint64 `json:"samples"`
	LastError string `json:"last_error,omitempty"`
}

// ClusterAggregate is the fleet-wide roll-up. Live fields (Tasks,
// CPUPct, IPC) sum only currently connected agents; cumulative counters
// include everything ever recorded.
type ClusterAggregate struct {
	Agents       int     `json:"agents"`
	AgentsUp     int     `json:"agents_up"`
	Tasks        int     `json:"tasks"`
	CPUPct       float64 `json:"cpu_pct"`
	IPC          float64 `json:"ipc"`
	Instructions uint64  `json:"instructions_total"`
	Cycles       uint64  `json:"cycles_total"`
	CacheMisses  uint64  `json:"cache_misses_total"`
}

// FleetSnapshot is the merged state of every agent, per-machine plus
// cluster-wide.
type FleetSnapshot struct {
	Agents   []AgentStatus                `json:"agents"`
	Cluster  ClusterAggregate             `json:"cluster"`
	Machines map[string]*history.Snapshot `json:"machines"`
}

// Snapshot merges the per-agent recorders into one cluster view. The
// cluster's live IPC is recomputed from the latest raw counter deltas
// of each connected agent (Σinstructions / Σcycles), not averaged from
// per-machine ratios.
func (f *Fleet) Snapshot() *FleetSnapshot {
	out := &FleetSnapshot{Machines: make(map[string]*history.Snapshot, len(f.peers))}
	var dInstr, dCycles uint64
	for _, p := range f.peers {
		p.mu.Lock()
		st := AgentStatus{
			Label:     p.label,
			URL:       p.url,
			Connected: p.connected,
			Samples:   p.samples,
			LastError: p.lastErr,
		}
		last := p.last
		p.mu.Unlock()
		out.Agents = append(out.Agents, st)
		snap := p.rec.Snapshot()
		out.Machines[p.label] = snap

		out.Cluster.Agents++
		out.Cluster.Instructions += snap.Machine.Instructions
		out.Cluster.Cycles += snap.Machine.Cycles
		out.Cluster.CacheMisses += snap.Machine.CacheMisses
		if st.Connected {
			out.Cluster.AgentsUp++
			out.Cluster.Tasks += snap.Machine.Tasks
			out.Cluster.CPUPct += snap.Machine.CPUPct
			if last != nil {
				for i := range last.Rows {
					dInstr += last.Rows[i].Events[hpm.EventInstructions]
					dCycles += last.Rows[i].Events[hpm.EventCycles]
				}
			}
		}
	}
	if dCycles > 0 {
		out.Cluster.IPC = float64(dInstr) / float64(dCycles)
	}
	sort.Slice(out.Agents, func(i, j int) bool { return out.Agents[i].Label < out.Agents[j].Label })
	return out
}

// WriteOpenMetrics renders the merged, machine-labelled exposition.
func (f *Fleet) WriteOpenMetrics(w io.Writer) error {
	machines := make([]export.FleetMachine, 0, len(f.peers))
	for _, p := range f.peers {
		p.mu.Lock()
		up := p.connected
		p.mu.Unlock()
		machines = append(machines, export.FleetMachine{
			Label:    p.label,
			Up:       up,
			Snapshot: p.rec.Snapshot(),
		})
	}
	return export.WriteFleetOpenMetrics(w, machines)
}
