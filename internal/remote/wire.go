// Package remote makes a tiptop monitor network-attachable: a versioned
// JSON wire format for samples, an SSE fan-out hub and per-refresh
// encode caches for the serving side, a Client that consumes a remote
// tiptopd's refreshes, and a Fleet aggregator that merges many agents
// into one cluster-wide view.
//
// The design goal is fleet-scale cost: a refresh is encoded once no
// matter how many stream subscribers are attached (the hub fans out the
// same byte slice), and a /metrics scrape costs one OpenMetrics encode
// per refresh no matter how many scrapers hit it (the EncodeCache is
// keyed by the refresh version and revalidates with ETags).
package remote

import (
	"encoding/json"
	"fmt"
	"time"

	"tiptop/internal/core"
	"tiptop/internal/hpm"
	"tiptop/internal/metrics"
)

// WireVersion is the protocol version stamped into every sample. A
// decoder accepts documents up to its own version and rejects newer
// ones, so a stale client fails loudly instead of misreading frames.
const WireVersion = 1

// Column describes one metric column of the serving monitor's screen,
// including the display attributes (width, printf format) a remote
// renderer needs to reproduce the local output byte-for-byte.
type Column struct {
	Name   string `json:"name"`
	Header string `json:"header"`
	Width  int    `json:"width,omitempty"`
	Format string `json:"format,omitempty"`
}

// Row is one monitored task on the wire.
type Row struct {
	PID          int     `json:"pid"`
	TID          int     `json:"tid,omitempty"`
	User         string  `json:"user"`
	Command      string  `json:"command"`
	State        string  `json:"state,omitempty"`
	CPUPct       float64 `json:"cpu_pct"`
	IPC          float64 `json:"ipc"`
	Monitored    bool    `json:"monitored"`
	StartSeconds float64 `json:"start_s,omitempty"`
	// Coverage is the counted fraction of the interval (1 = exact,
	// lower = multiplexed extrapolation). Omitted when exact, so
	// version-1 decoders keep working unchanged.
	Coverage float64           `json:"coverage,omitempty"`
	Values   []float64         `json:"values"`
	Events   map[string]uint64 `json:"events,omitempty"`
}

// Sample is one refresh of a monitor on the wire.
type Sample struct {
	// V is the wire version (WireVersion when produced by this code).
	V int `json:"v"`
	// Refresh is the serving daemon's monotonic refresh counter; stream
	// consumers use it to deduplicate the replayed latest frame.
	Refresh uint64 `json:"refresh"`
	// Source labels the originating agent in fleet streams ("" when the
	// sample comes straight from the agent itself).
	Source          string   `json:"source,omitempty"`
	Machine         string   `json:"machine"`
	IntervalSeconds float64  `json:"interval_s"`
	TimeSeconds     float64  `json:"time_s"`
	Dropped         int      `json:"dropped,omitempty"`
	Columns         []Column `json:"columns"`
	Rows            []Row    `json:"rows"`
}

// Encode serializes the sample (compact, newline-free — safe to embed
// in an SSE data field).
func (s *Sample) Encode() ([]byte, error) {
	return json.Marshal(s)
}

// Decode parses and version-checks a wire sample.
func Decode(data []byte) (*Sample, error) {
	var s Sample
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("remote: bad wire sample: %w", err)
	}
	if s.V < 1 || s.V > WireVersion {
		return nil, fmt.Errorf("remote: wire version %d not supported (this client speaks <= %d)", s.V, WireVersion)
	}
	return &s, nil
}

// Interval returns the serving monitor's refresh period.
func (s *Sample) Interval() time.Duration {
	return time.Duration(s.IntervalSeconds * float64(time.Second))
}

// Time returns the sample's monitor clock time.
func (s *Sample) Time() time.Duration {
	return time.Duration(s.TimeSeconds * float64(time.Second))
}

// Screen synthesizes a render-only screen from the wire columns: same
// headers, widths and formats as the serving side, no expressions (the
// values were computed remotely).
func (s *Sample) Screen() *metrics.Screen {
	sc := &metrics.Screen{Name: "remote"}
	for _, c := range s.Columns {
		width := c.Width
		if width == 0 {
			width = len(c.Header)
			if width < 6 {
				width = 6
			}
		}
		format := c.Format
		if format == "" {
			format = "%8.2f"
		}
		sc.Columns = append(sc.Columns, &metrics.Column{
			Name:   c.Name,
			Header: c.Header,
			Width:  width,
			Format: format,
		})
	}
	return sc
}

// CoreSample converts the wire sample into the engine's representation,
// which is what recorders (history.Recorder) consume. Events travel by
// canonical name end to end — rows carry the names verbatim, so an
// agent can stream counters (including user-defined raw events) that
// the aggregator's build has never heard of.
func (s *Sample) CoreSample() *core.Sample {
	cs := &core.Sample{Time: s.Time(), Dropped: s.Dropped}
	cs.Rows = make([]core.Row, 0, len(s.Rows))
	for i := range s.Rows {
		r := &s.Rows[i]
		row := core.Row{
			Info: core.TaskInfo{
				ID:        hpm.TaskID{PID: r.PID, TID: r.TID},
				User:      r.User,
				Comm:      r.Command,
				State:     r.State,
				StartTime: time.Duration(r.StartSeconds * float64(time.Second)),
			},
			CPUPct: r.CPUPct,
			Values: r.Values,
			// Absent on the wire means exact counting.
			Coverage: normCoverage(r.Coverage),
			Valid:    r.Monitored,
		}
		if len(r.Events) > 0 {
			row.Events = make(map[string]uint64, len(r.Events))
			for name, v := range r.Events {
				row.Events[name] = v
			}
		}
		cs.Rows = append(cs.Rows, row)
	}
	return cs
}

// normCoverage maps the wire encoding (0 or absent = exact) back to
// the engine's coverage fraction.
func normCoverage(c float64) float64 {
	if c <= 0 || c > 1 {
		return 1
	}
	return c
}

// ColumnNames returns the wire columns' machine-friendly names.
func (s *Sample) ColumnNames() []string {
	out := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		out[i] = c.Name
	}
	return out
}

// Headers returns the wire columns' display headings.
func (s *Sample) Headers() []string {
	out := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		out[i] = c.Header
	}
	return out
}
