package remote

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"tiptop/internal/hpm"
)

func testSample(refresh uint64, t float64) *Sample {
	return &Sample{
		V:               WireVersion,
		Refresh:         refresh,
		Machine:         "sim test box",
		IntervalSeconds: 2,
		TimeSeconds:     t,
		Columns: []Column{
			{Name: "ipc", Header: "IPC", Width: 6, Format: "%6.2f"},
			{Name: "dmis", Header: "DMIS", Width: 6, Format: "%6.2f"},
		},
		Rows: []Row{
			{
				PID: 101, TID: 101, User: "alice", Command: "mcf", State: "R",
				CPUPct: 99.5, IPC: 0.7, Monitored: true, StartSeconds: 1.5,
				Values: []float64{0.7, 2.25},
				Events: map[string]uint64{"CYCLES": 1000, "INSTRUCTIONS": 700},
			},
			{
				PID: 102, User: "bob", Command: "idle", CPUPct: 0,
				Monitored: false, Values: []float64{0, 0},
			},
		},
	}
}

func TestWireRoundTrip(t *testing.T) {
	in := testSample(7, 12.5)
	data, err := in.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.ContainsRune(data, '\n') {
		t.Fatal("encoded sample contains a newline; unsafe for SSE data fields")
	}
	out, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
	if out.Interval() != 2*time.Second {
		t.Fatalf("Interval = %v", out.Interval())
	}
	if got := out.Headers(); !reflect.DeepEqual(got, []string{"IPC", "DMIS"}) {
		t.Fatalf("Headers = %v", got)
	}
	if got := out.ColumnNames(); !reflect.DeepEqual(got, []string{"ipc", "dmis"}) {
		t.Fatalf("ColumnNames = %v", got)
	}
}

func TestDecodeRejectsNewerVersion(t *testing.T) {
	s := testSample(1, 0)
	s.V = WireVersion + 1
	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(data); err == nil {
		t.Fatal("decoded a sample from the future")
	}
	if _, err := Decode([]byte("{")); err == nil {
		t.Fatal("decoded malformed JSON")
	}
}

func TestCoreSampleConversion(t *testing.T) {
	cs := testSample(1, 10).CoreSample()
	if cs.Time != 10*time.Second {
		t.Fatalf("Time = %v", cs.Time)
	}
	if len(cs.Rows) != 2 {
		t.Fatalf("rows = %d", len(cs.Rows))
	}
	r := cs.Rows[0]
	if r.Info.ID.PID != 101 || r.Info.User != "alice" || r.Info.Comm != "mcf" {
		t.Fatalf("row info = %+v", r.Info)
	}
	if r.Info.StartTime != 1500*time.Millisecond {
		t.Fatalf("StartTime = %v", r.Info.StartTime)
	}
	if r.Events[hpm.EventCycles] != 1000 || r.Events[hpm.EventInstructions] != 700 {
		t.Fatalf("events = %v", r.Events)
	}
	if !r.Valid || cs.Rows[1].Valid {
		t.Fatal("Valid flags lost in conversion")
	}
}

// TestCoreSampleCarriesUnknownEvents: events travel by canonical name,
// so counters this build has never heard of (a newer agent's
// user-defined raw events) survive the wire → engine conversion intact
// instead of being dropped.
func TestCoreSampleCarriesUnknownEvents(t *testing.T) {
	s := testSample(1, 1)
	s.Rows[0].Events["FUTURE_EVENT"] = 42
	cs := s.CoreSample()
	if got := cs.Rows[0].Events["FUTURE_EVENT"]; got != 42 {
		t.Fatalf("events = %v, want FUTURE_EVENT carried through", cs.Rows[0].Events)
	}
}

func TestScreenSynthesis(t *testing.T) {
	sc := testSample(1, 0).Screen()
	if len(sc.Columns) != 2 || sc.Columns[0].Header != "IPC" || sc.Columns[0].Width != 6 {
		t.Fatalf("screen = %+v", sc.Columns[0])
	}
	// Defaults fill in when the wire omits display attributes.
	s := testSample(1, 0)
	s.Columns[0].Width = 0
	s.Columns[0].Format = ""
	sc = s.Screen()
	if sc.Columns[0].Width != 6 || sc.Columns[0].Format != "%8.2f" {
		t.Fatalf("defaults not applied: %+v", sc.Columns[0])
	}
}

func TestHubFanout(t *testing.T) {
	hub := NewHub()
	const subs = 8
	chans := make([]<-chan []byte, subs)
	cancels := make([]func(), subs)
	for i := range chans {
		chans[i], cancels[i] = hub.Subscribe()
	}
	payload := []byte(`{"v":1}`)
	hub.Publish(1, payload)
	want := "id: 1\nevent: sample\ndata: {\"v\":1}\n\n"
	for i, ch := range chans {
		got := <-ch
		if string(got) != want {
			t.Fatalf("subscriber %d frame = %q, want %q", i, got, want)
		}
	}
	// A late subscriber gets the latest frame replayed.
	late, cancelLate := hub.Subscribe()
	if got := <-late; string(got) != want {
		t.Fatalf("late subscriber frame = %q", got)
	}
	cancelLate()
	for _, c := range cancels {
		c()
	}
	if n := hub.Subscribers(); n != 0 {
		t.Fatalf("subscribers after cancel = %d", n)
	}
}

func TestHubSlowSubscriberDropsOldest(t *testing.T) {
	hub := NewHub()
	ch, cancel := hub.Subscribe()
	defer cancel()
	// Overfill the buffer without draining.
	for i := 1; i <= subscriberBuffer+5; i++ {
		hub.Publish(uint64(i), []byte(fmt.Sprintf(`{"n":%d}`, i)))
	}
	if hub.Dropped() == 0 {
		t.Fatal("no frames dropped despite overfull buffer")
	}
	// The newest frame must still be buffered (oldest were dropped).
	var last []byte
	for {
		select {
		case f := <-ch:
			last = f
			continue
		default:
		}
		break
	}
	if !bytes.Contains(last, []byte(fmt.Sprintf(`{"n":%d}`, subscriberBuffer+5))) {
		t.Fatalf("newest frame lost; last buffered = %q", last)
	}
}

func TestHubClose(t *testing.T) {
	hub := NewHub()
	ch, cancel := hub.Subscribe()
	defer cancel()
	hub.Close()
	if _, ok := <-ch; ok {
		t.Fatal("channel still open after hub close")
	}
	// Publishing and subscribing after close must not panic or block.
	hub.Publish(1, []byte("{}"))
	ch2, cancel2 := hub.Subscribe()
	defer cancel2()
	if _, ok := <-ch2; ok {
		t.Fatal("subscribe after close returned a live channel")
	}
}

func TestEncodeCache(t *testing.T) {
	encodes := 0
	c := NewEncodeCache(func(w io.Writer) error {
		encodes++
		fmt.Fprintf(w, "body-%d", encodes)
		return nil
	})
	for i := 0; i < 5; i++ {
		body, etag, err := c.Get(1)
		if err != nil {
			t.Fatal(err)
		}
		if string(body) != "body-1" || etag != `"1"` {
			t.Fatalf("Get(1) = %q %q", body, etag)
		}
	}
	if encodes != 1 {
		t.Fatalf("encodes = %d, want 1 (cache must memoize per version)", encodes)
	}
	body, etag, err := c.Get(2)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "body-2" || etag != `"2"` || encodes != 2 {
		t.Fatalf("Get(2) = %q %q after %d encodes", body, etag, encodes)
	}
}

// TestServerEndpoints exercises the full server+client pair over
// httptest: ETag revalidation on /api/v1/sample and /metrics, stream
// push, and the client's replay deduplication.
func TestServerEndpoints(t *testing.T) {
	srv := NewServer(func(w io.Writer) error {
		_, err := io.WriteString(w, "# metrics\n")
		return err
	})
	mux := http.NewServeMux()
	srv.Register(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()
	defer srv.Close()

	// No sample yet: 503.
	resp, err := http.Get(ts.URL + "/api/v1/sample")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pre-publish sample status = %d", resp.StatusCode)
	}

	if err := srv.Publish(testSample(0, 1)); err != nil {
		t.Fatal(err)
	}

	resp, err = http.Get(ts.URL + "/api/v1/sample")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if resp.StatusCode != http.StatusOK || etag != `"1"` {
		t.Fatalf("sample status=%d etag=%q", resp.StatusCode, etag)
	}
	ws, err := Decode(body)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Refresh != 1 || ws.Machine != "sim test box" {
		t.Fatalf("sample = %+v", ws)
	}

	// Revalidation: matching If-None-Match gets a bodyless 304.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/api/v1/sample", nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified || len(b) != 0 {
		t.Fatalf("revalidation = %d with %d body bytes", resp.StatusCode, len(b))
	}

	// /metrics is ETag'd by the same version counter.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(mb) != "# metrics\n" || resp.Header.Get("ETag") != `"1"` {
		t.Fatalf("/metrics = %q etag=%q", mb, resp.Header.Get("ETag"))
	}

	// Client: Dial picks up the published sample; Next dedupes the
	// stream replay and blocks until the next publish.
	client, err := Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if client.Machine() != "sim test box" || client.Interval() != 2*time.Second {
		t.Fatalf("client latest = %+v", client.Latest())
	}
	type next struct {
		ws  *Sample
		err error
	}
	got := make(chan next, 1)
	go func() {
		ws, err := client.Next()
		got <- next{ws, err}
	}()
	// Give Next time to connect and skip the replayed frame 1.
	time.Sleep(50 * time.Millisecond)
	if err := srv.Publish(testSample(0, 3)); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-got:
		if n.err != nil {
			t.Fatal(n.err)
		}
		if n.ws.Refresh != 2 || n.ws.TimeSeconds != 3 {
			t.Fatalf("Next = %+v, want the second publish", n.ws)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next did not deliver the published refresh")
	}
}

// TestClientCloseUnblocksNext: Close from another goroutine must
// unblock a pending Next with ErrClosed.
func TestClientCloseUnblocksNext(t *testing.T) {
	srv := NewServer(nil)
	mux := http.NewServeMux()
	srv.Register(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()
	defer srv.Close()
	if err := srv.Publish(testSample(0, 1)); err != nil {
		t.Fatal(err)
	}
	client, err := Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := client.Next()
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	client.Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Fatalf("Next after Close = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next still blocked after Close")
	}
}

func TestDialErrors(t *testing.T) {
	if _, err := Dial("http://"); err == nil {
		t.Fatal("dialed an empty host")
	}
	// A server without the API: Dial must fail with a useful error.
	ts := httptest.NewServer(http.NotFoundHandler())
	defer ts.Close()
	if _, err := Dial(ts.URL); err == nil || !strings.Contains(err.Error(), "api/v1/sample") {
		t.Fatalf("Dial against a non-tiptopd = %v", err)
	}
}

// TestHubConcurrentPublishSubscribe is the hub's -race exercise:
// publishers, subscribers and cancellations all racing.
func TestHubConcurrentPublishSubscribe(t *testing.T) {
	hub := NewHub()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			hub.Publish(i, []byte(`{}`))
		}
	}()
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 50; n++ {
				ch, cancel := hub.Subscribe()
				select {
				case <-ch:
				case <-time.After(time.Second):
				}
				cancel()
			}
		}()
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	hub.Close()
}
