package remote

import (
	"bytes"
	"io"
	"net/http"
	"strconv"
	"sync"
)

// Hub fans one stream of pre-encoded frames out to many subscribers,
// in up to two encodings: SSE frames carrying the JSON sample —
// "id: N\nevent: sample\ndata: <json>\n\n" — and, when the publisher
// supplies one, a length-prefixed binary frame. Each frame is built
// exactly once per Publish and every subscriber of that format
// receives the same byte slice, so the per-refresh serving cost grows
// with the subscriber count only by channel sends, never by
// re-encoding.
//
// Subscribers that fall behind lose the oldest buffered frames first:
// for a monitor stream the newest refresh is the valuable one, and a
// slow reader must not be able to stall the sampling loop or the other
// subscribers.
type Hub struct {
	mu     sync.Mutex
	subs   map[*subscriber]struct{}
	latest [2][]byte // indexed by WireFormat
	closed bool
	// dropped counts frames discarded because a subscriber's buffer was
	// full (visible to tests and debugging).
	dropped uint64
}

type subscriber struct {
	ch     chan []byte
	format WireFormat
}

// subscriberBuffer is each subscriber's frame backlog. One frame per
// refresh means even a 16-deep backlog spans many seconds of lag before
// anything is dropped.
const subscriberBuffer = 16

// NewHub creates an empty hub.
func NewHub() *Hub {
	return &Hub{subs: make(map[*subscriber]struct{})}
}

// buildFrame renders one SSE frame. payload must be newline-free
// (compact JSON is).
func buildFrame(id uint64, payload []byte) []byte {
	b := make([]byte, 0, len(payload)+48)
	b = append(b, "id: "...)
	b = strconv.AppendUint(b, id, 10)
	b = append(b, "\nevent: sample\ndata: "...)
	b = append(b, payload...)
	b = append(b, '\n', '\n')
	return b
}

// Publish encodes the JSON payload into an SSE frame once and offers
// it to every JSON subscriber. It never blocks: a subscriber whose
// buffer is full loses its oldest frame instead.
func (h *Hub) Publish(id uint64, payload []byte) {
	h.PublishWire(id, payload, nil)
}

// PublishWire publishes one refresh in both encodings: jsonPayload
// feeds the SSE subscribers, binPayload (may be nil when the publisher
// does not produce binary frames) the binary ones. Each frame is built
// once.
func (h *Hub) PublishWire(id uint64, jsonPayload, binPayload []byte) {
	var frames [2][]byte
	frames[FormatJSON] = buildFrame(id, jsonPayload)
	if binPayload != nil {
		frames[FormatBinary] = buildBinaryFrame(binPayload)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.latest[FormatJSON] = frames[FormatJSON]
	if frames[FormatBinary] != nil {
		h.latest[FormatBinary] = frames[FormatBinary]
	}
	for s := range h.subs {
		frame := frames[s.format]
		if frame == nil {
			continue
		}
		select {
		case s.ch <- frame:
		default:
			// Full: drop the oldest buffered frame to make room. Publish
			// holds the hub lock, so there is exactly one producer and
			// the two-step drain-then-send cannot race another Publish.
			select {
			case <-s.ch:
				h.dropped++
			default:
			}
			select {
			case s.ch <- frame:
			default:
			}
		}
	}
}

// Subscribe registers a JSON/SSE consumer. The latest published frame
// (if any) is replayed immediately so a new subscriber renders without
// waiting a full refresh. cancel unregisters and closes the channel;
// it is safe to call more than once.
func (h *Hub) Subscribe() (<-chan []byte, func()) {
	return h.SubscribeWire(FormatJSON)
}

// SubscribeWire registers a consumer for one of the hub's frame
// encodings.
func (h *Hub) SubscribeWire(format WireFormat) (<-chan []byte, func()) {
	s := &subscriber{ch: make(chan []byte, subscriberBuffer), format: format}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		closed := make(chan []byte)
		close(closed)
		return closed, func() {}
	}
	if h.latest[format] != nil {
		s.ch <- h.latest[format]
	}
	h.subs[s] = struct{}{}
	h.mu.Unlock()

	var once sync.Once
	cancel := func() {
		once.Do(func() {
			h.mu.Lock()
			if _, ok := h.subs[s]; ok {
				delete(h.subs, s)
				close(s.ch)
			}
			h.mu.Unlock()
		})
	}
	return s.ch, cancel
}

// Subscribers returns the current subscriber count.
func (h *Hub) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// Dropped returns the total count of frames discarded on full
// subscriber buffers.
func (h *Hub) Dropped() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dropped
}

// Close disconnects every subscriber and rejects future ones. In-flight
// ServeSSE handlers observe their channel closing and return, which is
// what lets an http.Server.Shutdown complete while streams are open.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for s := range h.subs {
		delete(h.subs, s)
		close(s.ch)
	}
}

// ServeStream streams the hub to one HTTP client in the encoding the
// request negotiates: SSE JSON by default, length-prefixed binary
// frames with ?wire=binary (or the binary media type in Accept; the
// parameter wins). An unknown ?wire= value is a 400 with the API error
// envelope.
func (h *Hub) ServeStream(w http.ResponseWriter, r *http.Request) {
	format, err := WireFormatFor(r)
	if err != nil {
		WriteErrorHint(w, http.StatusBadRequest, err.Error(), "pass wire=json or wire=binary")
		return
	}
	if format == FormatBinary {
		h.serveFrames(w, r, FormatBinary, ContentTypeBinary)
		return
	}
	h.ServeSSE(w, r)
}

// ServeSSE streams the hub to one HTTP client until the client goes
// away or the hub closes.
func (h *Hub) ServeSSE(w http.ResponseWriter, r *http.Request) {
	h.serveFrames(w, r, FormatJSON, "text/event-stream")
}

func (h *Hub) serveFrames(w http.ResponseWriter, r *http.Request, format WireFormat, contentType string) {
	fl, ok := w.(http.Flusher)
	if !ok {
		WriteError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	ch, cancel := h.SubscribeWire(format)
	defer cancel()
	for {
		select {
		case <-r.Context().Done():
			return
		case frame, ok := <-ch:
			if !ok {
				return
			}
			if _, err := w.Write(frame); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// EncodeCache memoizes one encoding per version: Get re-runs the encode
// only when the version moved since the cached body was built, so a
// thousand scrapers per refresh cost one encode plus cheap byte serves.
// The cached body is immutable once returned; callers must not modify
// it.
type EncodeCache struct {
	encode func(io.Writer) error

	mu      sync.Mutex
	valid   bool
	version uint64
	body    []byte
	etag    string
	buf     bytes.Buffer
}

// NewEncodeCache wraps an encoder (e.g. an OpenMetrics snapshot writer).
func NewEncodeCache(encode func(io.Writer) error) *EncodeCache {
	return &EncodeCache{encode: encode}
}

// Get returns the encoding for the given version, rebuilding it at most
// once per version change, plus a strong ETag derived from the version.
func (c *EncodeCache) Get(version uint64) (body []byte, etag string, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.valid || c.version != version {
		c.buf.Reset()
		if err := c.encode(&c.buf); err != nil {
			return nil, "", err
		}
		// Copy out of the reused buffer: earlier Get results may still
		// be in flight on other goroutines.
		c.body = append([]byte(nil), c.buf.Bytes()...)
		c.etag = `"` + strconv.FormatUint(version, 10) + `"`
		c.version = version
		c.valid = true
	}
	return c.body, c.etag, nil
}

// ServeCached writes a cached body with ETag revalidation: a scraper
// that presents the current ETag in If-None-Match gets a bodyless 304.
func ServeCached(w http.ResponseWriter, r *http.Request, body []byte, etag, contentType string) {
	w.Header().Set("ETag", etag)
	w.Header().Set("Cache-Control", "no-cache")
	if match := r.Header.Get("If-None-Match"); match != "" && match == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", contentType)
	_, _ = w.Write(body)
}
