// Package pmu implements the simulated machine's performance monitoring
// unit as an hpm.Backend. It mirrors the perf_event semantics the paper
// builds on:
//
//   - counters attach to already-running tasks and count only events that
//     occur afterwards (§2.2);
//   - counter state is private to the monitored task and survives context
//     switches (§2.5);
//   - the hardware supports a limited number of simultaneous events
//     (sixteen on the Xeon W3550, §2.6); requests beyond the limit are
//     time-multiplexed, and reads report TIME_ENABLED/TIME_RUNNING so the
//     client can scale the raw value, exactly like PERF_FORMAT_TOTAL_TIME_*.
package pmu

import (
	"fmt"

	"tiptop/internal/hpm"
	"tiptop/internal/sim/cpu"
	"tiptop/internal/sim/sched"
)

// Backend is the simulated-PMU implementation of hpm.Backend. It is
// bound to one kernel; monitoring any user's process is always permitted
// (the simulator has no notion of the caller's uid, matching tiptop run
// by the owner of all displayed processes).
type Backend struct {
	k *sched.Kernel
}

var _ hpm.Backend = (*Backend)(nil)

// New creates a backend for the kernel.
func New(k *sched.Kernel) *Backend { return &Backend{k: k} }

// Name implements hpm.Backend.
func (b *Backend) Name() string { return "sim" }

// Probe implements hpm.Backend; the simulated PMU is always available.
func (b *Backend) Probe() error { return nil }

// Supported implements hpm.Backend. The simulated machine counts every
// event the paper uses. The PPC970 has no FP-assist event — there is no
// such micro-architectural mechanism to count (§3.1: the pathology does
// not exist there).
func (b *Backend) Supported(e hpm.EventID) bool {
	if !e.Valid() {
		return false
	}
	if e == hpm.EventFPAssist && b.k.Machine().FPAssistPenalty == 0 {
		return false
	}
	return true
}

// Kernel returns the kernel the backend monitors.
func (b *Backend) Kernel() *sched.Kernel { return b.k }

// Attach implements hpm.Backend. A group-scope ID (TID zero) counts the
// whole process: the counter registers with every current thread of the
// group, the semantics of perf_event's inherit flag. A concrete TID
// counts that thread alone (paper §2.2: "Events can be counted per
// thread, or per process").
func (b *Backend) Attach(task hpm.TaskID, events []hpm.EventID) (hpm.TaskCounter, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("pmu: no events requested: %w", hpm.ErrUnsupportedEvent)
	}
	for _, e := range events {
		if !b.Supported(e) {
			return nil, fmt.Errorf("pmu: event %v: %w", e, hpm.ErrUnsupportedEvent)
		}
	}
	var targets []*sched.Task
	if task.IsGroup() {
		targets = b.k.ThreadGroup(task.PID)
	} else if t, ok := b.k.Task(task.TID); ok && t.ID().PID == task.PID {
		targets = []*sched.Task{t}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("pmu: %v: %w", task, hpm.ErrNoSuchTask)
	}
	c := &counter{
		backend: b,
		targets: targets,
		id:      task,
		events:  append([]hpm.EventID(nil), events...),
		counts:  make([]hpm.Count, len(events)),
		slots:   b.k.Machine().NumCounters,
	}
	for _, t := range targets {
		t.AttachSink(c)
	}
	return c, nil
}

// counter is a set of per-task event counters, possibly multiplexed.
// For process-level attachment it aggregates over every thread of the
// group (each thread's quantum feeds the same counters).
type counter struct {
	backend *Backend
	targets []*sched.Task
	id      hpm.TaskID
	events  []hpm.EventID
	counts  []hpm.Count
	slots   int // hardware counters available
	rot     int // multiplex rotation cursor
	closed  bool
}

var _ hpm.TaskCounter = (*counter)(nil)
var _ hpm.CountReader = (*counter)(nil)
var _ sched.EventSink = (*counter)(nil)

// Task implements hpm.TaskCounter.
func (c *counter) Task() hpm.TaskID { return c.id }

// OnQuantum implements sched.EventSink: it credits the quantum's events
// to the currently scheduled event group and rotates the group, the way
// the kernel rotates the active PMU set each timer tick when more events
// are requested than hardware counters exist.
func (c *counter) OnQuantum(d cpu.Delta, ranNS uint64) {
	n := len(c.events)
	active := c.slots
	if active > n {
		active = n
	}
	activeSet := make(map[int]bool, active)
	for i := 0; i < active; i++ {
		activeSet[(c.rot+i)%n] = true
	}
	for i := range c.events {
		c.counts[i].Enabled += ranNS
		if activeSet[i] {
			c.counts[i].Raw += d.EventCount(c.events[i])
			c.counts[i].Running += ranNS
		}
	}
	if n > c.slots {
		c.rot = (c.rot + 1) % n
	}
}

// Read implements hpm.TaskCounter.
func (c *counter) Read() ([]hpm.Count, error) {
	return c.ReadInto(nil)
}

// ReadInto implements hpm.CountReader.
func (c *counter) ReadInto(dst []hpm.Count) ([]hpm.Count, error) {
	if c.closed {
		return nil, fmt.Errorf("pmu: read of closed counter for %v", c.id)
	}
	return append(dst[:0], c.counts...), nil
}

// Close implements hpm.TaskCounter.
func (c *counter) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	for _, t := range c.targets {
		t.DetachSink(c)
	}
	return nil
}
