// Package pmu implements the simulated machine's performance monitoring
// unit as an hpm.Backend. It mirrors the perf_event semantics the paper
// builds on:
//
//   - counters attach to already-running tasks and count only events that
//     occur afterwards (§2.2);
//   - counter state is private to the monitored task and survives context
//     switches (§2.5);
//   - the hardware supports a limited number of simultaneous events
//     (sixteen on the Xeon W3550, §2.6); requests beyond the limit are
//     time-multiplexed, and reads report TIME_ENABLED/TIME_RUNNING so the
//     client can scale the raw value, exactly like PERF_FORMAT_TOTAL_TIME_*.
package pmu

import (
	"fmt"

	"tiptop/internal/hpm"
	"tiptop/internal/sim/cpu"
	"tiptop/internal/sim/machine"
	"tiptop/internal/sim/sched"
)

// Backend is the simulated-PMU implementation of hpm.Backend. It is
// bound to one kernel; monitoring any user's process is always permitted
// (the simulator has no notion of the caller's uid, matching tiptop run
// by the owner of all displayed processes).
type Backend struct {
	k *sched.Kernel
}

var _ hpm.Backend = (*Backend)(nil)

// New creates a backend for the kernel.
func New(k *sched.Kernel) *Backend { return &Backend{k: k} }

// Name implements hpm.Backend.
func (b *Backend) Name() string { return "sim" }

// Probe implements hpm.Backend; the simulated PMU is always available.
func (b *Backend) Probe() error { return nil }

// resolve maps an event descriptor to the architectural count source
// the simulated machine produces for it ("" when the machine cannot
// count the event). Resolution goes by the perf *encoding*, exactly
// what real hardware sees — so a user-defined alias of a built-in
// event (same attr.Type/attr.Config under a new name) counts
// identically:
//
//   - PERF_TYPE_HARDWARE configs resolve to the generic counts;
//   - PERF_TYPE_RAW codes go through the machine model's decode table
//     (machine.Machine.RawEvents), the way hardware decodes an
//     event-select/umask pair — a machine without an entry cannot
//     count the code (the PPC970 has no FP-assist mechanism at all,
//     §3.1);
//   - PERF_TYPE_HW_CACHE encodings resolve the L1D and LLC events the
//     cache model simulates.
func (b *Backend) resolve(e hpm.EventDesc) string {
	if !e.Valid() {
		return ""
	}
	switch e.Type {
	case hpm.PerfTypeHardware:
		return genericSource(e.Config)
	case hpm.PerfTypeSoftware:
		return softwareSource(e.Config)
	case hpm.PerfTypeRaw:
		if src, ok := b.k.Machine().RawEventSource(e.Config); ok && cpu.KnownSource(src) {
			return src
		}
	case hpm.PerfTypeHWCache:
		return hwCacheSource(e.Config)
	}
	return ""
}

// softwareSource decodes a PERF_TYPE_SOFTWARE config into the
// kernel-counted source it names. Software events exist on every
// machine model: they are produced by the simulated scheduler, not the
// PMU.
func softwareSource(config uint64) string {
	switch config {
	case hpm.SWPageFaults:
		return hpm.EventPageFaults
	case hpm.SWCtxSwitches:
		return hpm.EventCtxSwitches
	case hpm.SWCPUMigrations:
		return hpm.EventCPUMigrations
	}
	return ""
}

// genericSource decodes a PERF_TYPE_HARDWARE config into the generic
// count it names.
func genericSource(config uint64) string {
	switch config {
	case hpm.HWCPUCycles:
		return hpm.EventCycles
	case hpm.HWInstructions:
		return hpm.EventInstructions
	case hpm.HWCacheReferences:
		return hpm.EventCacheReferences
	case hpm.HWCacheMisses:
		return hpm.EventCacheMisses
	case hpm.HWBranchInstructions:
		return hpm.EventBranches
	case hpm.HWBranchMisses:
		return hpm.EventBranchMisses
	}
	return ""
}

// hwCacheSource decodes a PERF_TYPE_HW_CACHE config (cache-id | op<<8 |
// result<<16) into the count sources the cache model maintains.
func hwCacheSource(config uint64) string {
	id, op, res := config&0xff, (config>>8)&0xff, (config>>16)&0xff
	const (
		cacheL1D, cacheLL        = 0, 2
		opRead, opWrite          = 0, 1
		resultAccess, resultMiss = 0, 1
	)
	switch {
	case id == cacheL1D && op == opRead && res == resultAccess:
		return hpm.EventLoads
	case id == cacheL1D && op == opWrite && res == resultAccess:
		return hpm.EventStores
	case id == cacheL1D && (op == opRead || op == opWrite) && res == resultMiss:
		return cpu.SourceL1Misses
	case id == cacheLL && res == resultAccess:
		return hpm.EventCacheReferences
	case id == cacheLL && res == resultMiss:
		return hpm.EventCacheMisses
	}
	return ""
}

// Supported implements hpm.Backend by resolving the descriptor against
// the machine model.
func (b *Backend) Supported(e hpm.EventDesc) bool {
	return b.resolve(e) != ""
}

// Capacity implements hpm.Backend: the machine model's PMU register
// count bounds how many slot-costing events one attach can count at
// full coverage.
func (b *Backend) Capacity() int { return b.k.Machine().NumCounters }

// SlotCost implements hpm.Backend. Software events are counted by the
// simulated scheduler and fixed-counter events (the RISC-V
// cycle/instret CSRs) by dedicated hardware; neither occupies a
// programmable PMU register.
func (b *Backend) SlotCost(e hpm.EventDesc) int {
	if e.Type == hpm.PerfTypeSoftware {
		return 0
	}
	if src := b.resolve(e); src != "" && b.k.Machine().HasFixedCounter(src) {
		return 0
	}
	return 1
}

// Kernel returns the kernel the backend monitors.
func (b *Backend) Kernel() *sched.Kernel { return b.k }

// Attach implements hpm.Backend. A group-scope ID (TID zero) counts the
// whole process: the counter registers with every current thread of the
// group, the semantics of perf_event's inherit flag. A concrete TID
// counts that thread alone (paper §2.2: "Events can be counted per
// thread, or per process").
func (b *Backend) Attach(task hpm.TaskID, events []hpm.EventDesc) (hpm.TaskCounter, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("pmu: no events requested: %w", hpm.ErrUnsupportedEvent)
	}
	sources := make([]string, len(events))
	c := &counter{
		backend: b,
		id:      task,
		sources: sources,
		counts:  make([]hpm.Count, len(events)),
		slots:   b.k.Machine().NumCounters,
	}
	for i, e := range events {
		src := b.resolve(e)
		if src == "" {
			return nil, fmt.Errorf("pmu: event %v: %w", e, hpm.ErrUnsupportedEvent)
		}
		sources[i] = src
		// Zero-cost events (software, fixed counters) count
		// continuously; only slot-costing events rotate.
		if b.SlotCost(e) == 0 {
			c.free = append(c.free, i)
		} else {
			c.costed = append(c.costed, i)
		}
	}
	if task.IsCPU() {
		// System-wide scope: count everything executed on one logical
		// CPU (perf_event's pid=-1, cpu=N).
		cpuID := machine.CPUID(task.CPU())
		if err := b.k.AttachCPUSink(cpuID, c); err != nil {
			return nil, fmt.Errorf("pmu: %v: %w", task, hpm.ErrNoSuchTask)
		}
		c.cpu = cpuID
		c.cpuScope = true
		return c, nil
	}
	var targets []*sched.Task
	if task.IsGroup() {
		targets = b.k.ThreadGroup(task.PID)
	} else if t, ok := b.k.Task(task.TID); ok && t.ID().PID == task.PID {
		targets = []*sched.Task{t}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("pmu: %v: %w", task, hpm.ErrNoSuchTask)
	}
	c.targets = targets
	for _, t := range targets {
		t.AttachSink(c)
	}
	return c, nil
}

// counter is a set of per-task event counters, possibly multiplexed.
// For process-level attachment it aggregates over every thread of the
// group (each thread's quantum feeds the same counters).
type counter struct {
	backend *Backend
	targets []*sched.Task
	id      hpm.TaskID
	// sources holds the resolved architectural count source of each
	// attached event, in attach order (the descriptor → source decode
	// happens once, at attach time).
	sources []string
	counts  []hpm.Count
	free    []int // indices of zero-cost events (always counting)
	costed  []int // indices of slot-costing events (rotated when needed)
	slots   int   // hardware counters available
	rot     int   // multiplex rotation cursor over costed
	closed  bool

	// CPU scope (system-wide counting on one logical CPU).
	cpuScope bool
	cpu      machine.CPUID
}

var _ hpm.TaskCounter = (*counter)(nil)
var _ hpm.CountReader = (*counter)(nil)
var _ sched.EventSink = (*counter)(nil)

// Task implements hpm.TaskCounter.
func (c *counter) Task() hpm.TaskID { return c.id }

// OnQuantum implements sched.EventSink: it credits the quantum's events
// to the currently scheduled event group and rotates the group, the way
// the kernel rotates the active PMU set each timer tick when more events
// are requested than hardware counters exist.
func (c *counter) OnQuantum(d cpu.Delta, ranNS uint64) {
	for i := range c.sources {
		c.counts[i].Enabled += ranNS
	}
	// Zero-cost events (software, fixed counters) never contend for a
	// PMU register: they count every quantum.
	for _, i := range c.free {
		c.counts[i].Raw += d.Count(c.sources[i])
		c.counts[i].Running += ranNS
	}
	n := len(c.costed)
	active := c.slots
	if active > n {
		active = n
	}
	for j := 0; j < active; j++ {
		i := c.costed[(c.rot+j)%n]
		c.counts[i].Raw += d.Count(c.sources[i])
		c.counts[i].Running += ranNS
	}
	if n > c.slots {
		c.rot = (c.rot + 1) % n
	}
}

// Read implements hpm.TaskCounter.
func (c *counter) Read() ([]hpm.Count, error) {
	return c.ReadInto(nil)
}

// ReadInto implements hpm.CountReader.
func (c *counter) ReadInto(dst []hpm.Count) ([]hpm.Count, error) {
	if c.closed {
		return nil, fmt.Errorf("pmu: read of closed counter for %v", c.id)
	}
	return append(dst[:0], c.counts...), nil
}

// Close implements hpm.TaskCounter.
func (c *counter) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	if c.cpuScope {
		c.backend.k.DetachCPUSink(c.cpu, c)
		return nil
	}
	for _, t := range c.targets {
		t.DetachSink(c)
	}
	return nil
}
