package pmu

import (
	"errors"
	"math"
	"testing"
	"time"

	"tiptop/internal/hpm"
	"tiptop/internal/sim/machine"
	"tiptop/internal/sim/sched"
	"tiptop/internal/sim/workload"
)

func setup(t *testing.T, m *machine.Machine) (*sched.Kernel, *Backend, *sched.Task) {
	t.Helper()
	k, err := sched.New(m, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := workload.Synthetic(workload.SyntheticSpec{Name: "job", IPC: 1.5})
	task := k.Spawn("u", "job", workload.MustInstance(w, 1), nil)
	return k, New(k), task
}

func TestProbeAndName(t *testing.T) {
	_, b, _ := setup(t, machine.XeonW3550())
	if err := b.Probe(); err != nil {
		t.Fatal(err)
	}
	if b.Name() != "sim" {
		t.Fatalf("Name = %q", b.Name())
	}
	if b.Kernel() == nil {
		t.Fatal("Kernel accessor")
	}
}

func TestSupportedEvents(t *testing.T) {
	reg := hpm.DefaultRegistry()
	_, nehalem, _ := setup(t, machine.XeonW3550())
	for _, d := range reg.Events() {
		if !nehalem.Supported(d) {
			t.Errorf("W3550 must support %v", d)
		}
	}
	if nehalem.Supported(hpm.EventDesc{}) {
		t.Fatal("invalid descriptor supported")
	}
	_, ppc, _ := setup(t, machine.PPC970())
	fpa, _ := reg.Lookup(hpm.EventFPAssist)
	if ppc.Supported(fpa) {
		t.Fatal("PPC970 has no FP-assist event")
	}
	cycles, _ := reg.Lookup(hpm.EventCycles)
	if !ppc.Supported(cycles) {
		t.Fatal("PPC970 supports generic events")
	}
}

// TestRawAndHWCacheResolution: raw codes resolve through the machine
// model's decode table, hw-cache encodings through the cache model —
// without any registry defaults in play.
func TestRawAndHWCacheResolution(t *testing.T) {
	k, b, task := setup(t, machine.XeonW3550())
	// 0x1EF7 is FP_ASSIST.ALL in the W3550 decode table; an unknown
	// code is rejected like unimplemented hardware would.
	if !b.Supported(evs(t, "RAW:0x1EF7")[0]) {
		t.Fatal("W3550 must decode RAW:0x1EF7")
	}
	if b.Supported(evs(t, "RAW:0xDEAD")[0]) {
		t.Fatal("undecodable raw code supported")
	}
	if b.Supported(evs(t, "ITLB_READ_MISS")[0]) {
		t.Fatal("unmodelled hw-cache event supported")
	}
	// A raw cycles-stall code and the hw-cache LLC miss count both
	// track their named counterparts exactly.
	ctr, err := b.Attach(task.ID(), evs(t,
		"RAW:0x1EF7", hpm.EventFPAssist, "LLC_READ_MISS", hpm.EventCacheMisses))
	if err != nil {
		t.Fatal(err)
	}
	defer ctr.Close()
	k.Advance(2 * time.Second)
	counts, err := ctr.Read()
	if err != nil {
		t.Fatal(err)
	}
	if counts[0].Raw != counts[1].Raw {
		t.Fatalf("RAW:0x1EF7 (%d) != FP_ASSIST (%d)", counts[0].Raw, counts[1].Raw)
	}
	if counts[2].Raw != counts[3].Raw {
		t.Fatalf("LLC_READ_MISS (%d) != CACHE_MISSES (%d)", counts[2].Raw, counts[3].Raw)
	}
}

// evs resolves canonical names (or RAW:/hw-cache specs) to descriptors
// through the default registry.
func evs(t *testing.T, specs ...string) []hpm.EventDesc {
	t.Helper()
	out := make([]hpm.EventDesc, len(specs))
	for i, spec := range specs {
		d, err := hpm.ParseEvent(spec)
		if err != nil {
			t.Fatalf("ParseEvent(%q): %v", spec, err)
		}
		out[i] = d
	}
	return out
}

func TestAttachErrors(t *testing.T) {
	_, b, _ := setup(t, machine.XeonW3550())
	if _, err := b.Attach(hpm.TaskID{PID: 9999, TID: 9999}, evs(t, hpm.EventCycles)); !errors.Is(err, hpm.ErrNoSuchTask) {
		t.Fatalf("missing task error = %v", err)
	}
	if _, err := b.Attach(hpm.TaskID{PID: 100, TID: 100}, nil); !errors.Is(err, hpm.ErrUnsupportedEvent) {
		t.Fatalf("empty events error = %v", err)
	}
	_, ppc, task := setup(t, machine.PPC970())
	if _, err := ppc.Attach(task.ID(), evs(t, hpm.EventFPAssist)); !errors.Is(err, hpm.ErrUnsupportedEvent) {
		t.Fatalf("unsupported event error = %v", err)
	}
}

func TestCountsStartAtAttach(t *testing.T) {
	k, b, task := setup(t, machine.XeonW3550())
	k.Advance(time.Second) // pre-attach activity is invisible
	ctr, err := b.Attach(task.ID(), evs(t, hpm.EventCycles, hpm.EventInstructions))
	if err != nil {
		t.Fatal(err)
	}
	defer ctr.Close()
	counts, err := ctr.Read()
	if err != nil {
		t.Fatal(err)
	}
	if counts[0].Raw != 0 || counts[1].Raw != 0 {
		t.Fatalf("counters must be zero at attach: %+v", counts)
	}
	preInstr := task.Totals().Instructions
	k.Advance(time.Second)
	counts, err = ctr.Read()
	if err != nil {
		t.Fatal(err)
	}
	wantInstr := task.Totals().Instructions - preInstr
	if counts[1].Scaled() != wantInstr {
		t.Fatalf("instructions = %d, want %d (only post-attach)", counts[1].Scaled(), wantInstr)
	}
	if counts[0].Raw == 0 {
		t.Fatal("cycles must accumulate")
	}
	if !counts[0].Exact() {
		t.Fatal("2 events on a 16-counter PMU must not multiplex")
	}
}

func TestReadIntoReusesDestination(t *testing.T) {
	k, b, task := setup(t, machine.XeonW3550())
	ctr, err := b.Attach(task.ID(), evs(t, hpm.EventCycles, hpm.EventInstructions))
	if err != nil {
		t.Fatal(err)
	}
	defer ctr.Close()
	reader, ok := ctr.(hpm.CountReader)
	if !ok {
		t.Fatal("pmu counter must implement hpm.CountReader")
	}
	k.Advance(time.Second)
	want, err := ctr.Read()
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]hpm.Count, 0, 8)
	got, err := reader.ReadInto(dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("ReadInto = %+v, want %+v", got, want)
	}
	if &got[0] != &dst[:1][0] {
		t.Fatal("destination with sufficient capacity must be reused")
	}
}

func TestIPCFromCounters(t *testing.T) {
	k, b, task := setup(t, machine.XeonW3550())
	ctr, err := b.Attach(task.ID(), evs(t, hpm.EventCycles, hpm.EventInstructions))
	if err != nil {
		t.Fatal(err)
	}
	defer ctr.Close()
	k.Advance(5 * time.Second)
	counts, _ := ctr.Read()
	ipc := float64(counts[1].Scaled()) / float64(counts[0].Scaled())
	if math.Abs(ipc-1.5) > 0.1 {
		t.Fatalf("measured IPC = %.3f, workload calibrated to 1.5", ipc)
	}
}

func TestMultiplexingScalesCounts(t *testing.T) {
	// Request more events than hardware counters: raw counts are
	// partial but the Enabled/Running scaling must recover the totals.
	m := machine.Core2() // only 4 counters
	k, err := sched.New(m, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := workload.Synthetic(workload.SyntheticSpec{Name: "job", IPC: 1.2})
	task := k.Spawn("u", "job", workload.MustInstance(w, 1), nil)
	b := New(k)
	events := evs(t,
		hpm.EventCycles, hpm.EventInstructions, hpm.EventCacheReferences,
		hpm.EventCacheMisses, hpm.EventBranches, hpm.EventBranchMisses,
		hpm.EventLoads, hpm.EventStores,
	)
	ctr, err := b.Attach(task.ID(), events)
	if err != nil {
		t.Fatal(err)
	}
	defer ctr.Close()
	k.Advance(10 * time.Second)
	counts, _ := ctr.Read()
	for i, c := range counts {
		if c.Exact() {
			t.Fatalf("event %v must be multiplexed (8 events, 4 counters)", events[i])
		}
		if c.Running == 0 {
			t.Fatalf("event %v never ran; rotation broken", events[i])
		}
		if c.Running >= c.Enabled {
			t.Fatalf("event %v running %d >= enabled %d", events[i], c.Running, c.Enabled)
		}
	}
	// Scaled instruction count should approximate the true total
	// executed after attach (within a few percent, it is an estimate).
	trueInstr := task.Totals().Instructions
	scaled := counts[1].Scaled()
	rel := math.Abs(float64(scaled)-float64(trueInstr)) / float64(trueInstr)
	if rel > 0.05 {
		t.Fatalf("multiplex-scaled instructions off by %.1f%% (scaled %d, true %d)",
			rel*100, scaled, trueInstr)
	}
	// Running time should be roughly slots/events of enabled time.
	ratio := float64(counts[0].Running) / float64(counts[0].Enabled)
	if math.Abs(ratio-0.5) > 0.05 {
		t.Fatalf("running/enabled = %.3f, want ~0.5 (4 of 8 events)", ratio)
	}
}

func TestSixteenEventsOnW3550NotMultiplexed(t *testing.T) {
	// Paper §2.6: the W3550 counts up to sixteen simultaneous events.
	k, b, task := setup(t, machine.XeonW3550())
	events := hpm.DefaultRegistry().Events()
	ctr, err := b.Attach(task.ID(), events)
	if err != nil {
		t.Fatal(err)
	}
	defer ctr.Close()
	k.Advance(2 * time.Second)
	counts, _ := ctr.Read()
	for i, c := range counts {
		if !c.Exact() {
			t.Fatalf("event %v multiplexed although %d <= 16 counters", events[i], len(events))
		}
	}
}

func TestCloseDetaches(t *testing.T) {
	k, b, task := setup(t, machine.XeonW3550())
	ctr, err := b.Attach(task.ID(), evs(t, hpm.EventCycles))
	if err != nil {
		t.Fatal(err)
	}
	k.Advance(100 * time.Millisecond)
	c1, _ := ctr.Read()
	if err := ctr.Close(); err != nil {
		t.Fatal(err)
	}
	if !task.Monitored() {
		// After close, the sink must be gone.
	} else {
		t.Fatal("Close must detach the sink")
	}
	if _, err := ctr.Read(); err == nil {
		t.Fatal("read after close must fail")
	}
	if err := ctr.Close(); err != nil {
		t.Fatal("double close is idempotent")
	}
	_ = c1
}

func TestTwoIndependentMonitors(t *testing.T) {
	// Two tools watching the same process see independent attach
	// baselines.
	k, b, task := setup(t, machine.XeonW3550())
	c1, err := b.Attach(task.ID(), evs(t, hpm.EventInstructions))
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	k.Advance(time.Second)
	c2, err := b.Attach(task.ID(), evs(t, hpm.EventInstructions))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	k.Advance(time.Second)
	r1, _ := c1.Read()
	r2, _ := c2.Read()
	if r1[0].Raw <= r2[0].Raw {
		t.Fatalf("earlier monitor must have counted more: %d vs %d", r1[0].Raw, r2[0].Raw)
	}
	if r2[0].Raw == 0 {
		t.Fatal("late monitor must still count")
	}
}

func TestCountersSurviveTaskExit(t *testing.T) {
	k, err := sched.New(machine.XeonW3550(), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := workload.Scaled(workload.Synthetic(workload.SyntheticSpec{Name: "brief", IPC: 1.5}), 0.0005)
	task := k.Spawn("u", "brief", workload.MustInstance(w, 1), nil)
	b := New(k)
	ctr, err := b.Attach(task.ID(), evs(t, hpm.EventInstructions))
	if err != nil {
		t.Fatal(err)
	}
	defer ctr.Close()
	k.Advance(5 * time.Second)
	if task.State() != sched.TaskExited {
		t.Fatal("task should have exited")
	}
	counts, err := ctr.Read()
	if err != nil {
		t.Fatal(err)
	}
	if counts[0].Raw == 0 {
		t.Fatal("final counts must remain readable after exit")
	}
}

// TestGenericAliasResolvesByEncoding: a user-defined alias of a
// built-in generic event (same attr.Type/attr.Config under a new name)
// must count identically — resolution goes by the perf encoding, not
// the name (regression: aliases of generic events were rejected).
func TestGenericAliasResolvesByEncoding(t *testing.T) {
	k, b, task := setup(t, machine.XeonW3550())
	reg := hpm.DefaultRegistry()
	instr, _ := reg.Lookup(hpm.EventInstructions)
	alias := hpm.EventDesc{
		Name: "INSTR_ALIAS", Kind: instr.Kind, Type: instr.Type, Config: instr.Config,
	}
	if !b.Supported(alias) {
		t.Fatal("generic alias must be supported")
	}
	ctr, err := b.Attach(task.ID(), []hpm.EventDesc{alias, instr})
	if err != nil {
		t.Fatal(err)
	}
	defer ctr.Close()
	k.Advance(time.Second)
	counts, err := ctr.Read()
	if err != nil {
		t.Fatal(err)
	}
	if counts[0].Raw == 0 || counts[0].Raw != counts[1].Raw {
		t.Fatalf("alias (%d) != INSTRUCTIONS (%d)", counts[0].Raw, counts[1].Raw)
	}
	// An unknown generic config is not countable.
	if b.Supported(hpm.EventDesc{Name: "X", Type: hpm.PerfTypeHardware, Config: 99}) {
		t.Fatal("unknown hardware config supported")
	}
}
