package pmu

import (
	"errors"
	"testing"
	"time"

	"tiptop/internal/hpm"
	"tiptop/internal/sim/machine"
	"tiptop/internal/sim/sched"
	"tiptop/internal/sim/workload"
)

// threadFixture builds a process with one leader thread and one extra
// thread, with different calibrated IPCs so their counts are
// distinguishable.
func threadFixture(t *testing.T) (*sched.Kernel, *Backend, *sched.Task, *sched.Task) {
	t.Helper()
	k, err := sched.New(machine.XeonW3550(), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string, ipc float64, seed int64) workload.Runner {
		spin, err := workload.NewSpin(workload.Synthetic(workload.SyntheticSpec{Name: name, IPC: ipc}), seed)
		if err != nil {
			t.Fatal(err)
		}
		return spin
	}
	leader := k.Spawn("u", "app", mk("worker", 1.0, 1), nil)
	thread, err := k.SpawnThread(leader, mk("helper", 2.0, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	return k, New(k), leader, thread
}

func TestSpawnThreadValidation(t *testing.T) {
	k, _, leader, thread := threadFixture(t)
	if thread.ID().PID != leader.ID().PID {
		t.Fatal("thread must share the leader's PID")
	}
	if thread.ID().IsProcess() {
		t.Fatal("thread must not be a leader")
	}
	if _, err := k.SpawnThread(thread, nil, nil); err == nil {
		t.Fatal("spawning a thread off a non-leader must fail")
	}
	if _, err := k.SpawnThread(nil, nil, nil); err == nil {
		t.Fatal("nil leader must fail")
	}
	group := k.ThreadGroup(leader.ID().PID)
	if len(group) != 2 {
		t.Fatalf("thread group = %d tasks", len(group))
	}
}

func TestPerProcessCountingAggregatesThreads(t *testing.T) {
	k, b, leader, thread := threadFixture(t)
	// Attach at process (group) scope: TID zero.
	procCtr, err := b.Attach(leader.ID().Group(), evs(t, hpm.EventCycles, hpm.EventInstructions))
	if err != nil {
		t.Fatal(err)
	}
	defer procCtr.Close()
	k.Advance(2 * time.Second)
	counts, err := procCtr.Read()
	if err != nil {
		t.Fatal(err)
	}
	wantInstr := leader.Totals().Instructions + thread.Totals().Instructions
	if got := counts[1].Scaled(); got != wantInstr {
		t.Fatalf("process-level instructions = %d, want sum of threads %d", got, wantInstr)
	}
	// Both threads ran concurrently on different CPUs: the aggregated
	// "enabled" time covers both threads' runtime (like perf inherit).
	if counts[0].Enabled < uint64(3*time.Second) {
		t.Fatalf("enabled time = %v, want ~2 threads x 2 s", counts[0].Enabled)
	}
}

func TestPerThreadCountingSeparates(t *testing.T) {
	k, b, leader, thread := threadFixture(t)
	events := evs(t, hpm.EventCycles, hpm.EventInstructions)
	tc, err := b.Attach(thread.ID(), events)
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()
	// The whole process for comparison (group scope, like perf's
	// inherit).
	pc, err := b.Attach(leader.ID().Group(), events)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	k.Advance(2 * time.Second)
	tCounts, _ := tc.Read()
	pCounts, _ := pc.Read()
	if tCounts[1].Scaled() != thread.Totals().Instructions {
		t.Fatalf("thread counter = %d, thread executed %d",
			tCounts[1].Scaled(), thread.Totals().Instructions)
	}
	// The helper thread is calibrated at IPC 2.0; the group mixes it
	// with the IPC-1.0 worker, landing strictly between the two.
	tIPC := float64(tCounts[1].Scaled()) / float64(tCounts[0].Scaled())
	pIPC := float64(pCounts[1].Scaled()) / float64(pCounts[0].Scaled())
	if tIPC < 1.85 || tIPC > 2.15 {
		t.Fatalf("helper thread IPC = %.2f, want ~2.0", tIPC)
	}
	if !(pIPC > 1.1 && pIPC < tIPC-0.2) {
		t.Fatalf("group IPC %.2f must sit between worker 1.0 and helper %.2f", pIPC, tIPC)
	}
	// Attaching to the leader's own TID counts just the worker thread.
	lc, err := b.Attach(leader.ID(), events)
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	k.Advance(time.Second)
	lCounts, _ := lc.Read()
	lIPC := float64(lCounts[1].Scaled()) / float64(lCounts[0].Scaled())
	if lIPC < 0.9 || lIPC > 1.1 {
		t.Fatalf("leader-thread IPC = %.2f, want ~1.0", lIPC)
	}
}

func TestAttachToWrongThreadGroup(t *testing.T) {
	_, b, leader, thread := threadFixture(t)
	// A TID that exists but under a different (wrong) PID claim.
	bad := hpm.TaskID{PID: leader.ID().PID + 999, TID: thread.ID().TID}
	if _, err := b.Attach(bad, evs(t, hpm.EventCycles)); !errors.Is(err, hpm.ErrNoSuchTask) {
		t.Fatalf("mismatched pid/tid error = %v", err)
	}
}

// TestSpinlockFootnote reproduces the paper's footnote 3: a thread
// spin-waiting on a lock retires instructions at a high rate without
// doing useful work, inflating the *process-level* IPC. Per-thread
// counting exposes the imbalance.
func TestSpinlockFootnote(t *testing.T) {
	k, err := sched.New(machine.XeonW3550(), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string, ipc float64, refs float64, seed int64) workload.Runner {
		spin, err := workload.NewSpin(workload.Synthetic(workload.SyntheticSpec{
			Name: name, IPC: ipc, MemRefsPKI: refs,
		}), seed)
		if err != nil {
			t.Fatal(err)
		}
		return spin
	}
	// The worker does real (memory-touching) work at IPC 0.8; the
	// spinner hammers a cached lock word at IPC 3.2.
	leader := k.Spawn("u", "locked-app", mk("worker", 0.8, 300, 1), nil)
	if _, err := k.SpawnThread(leader, mk("spinner", 3.2, 10, 2), nil); err != nil {
		t.Fatal(err)
	}
	b := New(k)
	ctr, err := b.Attach(leader.ID().Group(), evs(t, hpm.EventCycles, hpm.EventInstructions))
	if err != nil {
		t.Fatal(err)
	}
	defer ctr.Close()
	k.Advance(2 * time.Second)
	counts, _ := ctr.Read()
	procIPC := float64(counts[1].Scaled()) / float64(counts[0].Scaled())
	// The aggregate looks healthy (~2.0) although half the process's
	// instructions are busy-waiting — exactly why the paper says
	// spinlock-based applications "require special handling".
	if procIPC < 1.5 {
		t.Fatalf("process IPC = %.2f; the spinner should inflate it above 1.5", procIPC)
	}
}
