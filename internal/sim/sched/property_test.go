package sched

import (
	"testing"
	"testing/quick"
	"time"

	"tiptop/internal/sim/machine"
	"tiptop/internal/sim/workload"
)

// Property: pinned tasks never run outside their affinity mask, for
// arbitrary pinning choices and task counts.
func TestPropAffinityNeverViolated(t *testing.T) {
	m := machine.XeonW3550()
	f := func(pins []uint8) bool {
		if len(pins) == 0 || len(pins) > 6 {
			return true
		}
		k, err := New(m, Options{})
		if err != nil {
			return false
		}
		tasks := make([]*Task, len(pins))
		want := make([]machine.CPUID, len(pins))
		for i, p := range pins {
			cpu := machine.CPUID(int(p) % m.NumLogical())
			want[i] = cpu
			w := workload.Synthetic(workload.SyntheticSpec{Name: "x", IPC: 1})
			spin, err := workload.NewSpin(w, int64(i))
			if err != nil {
				return false
			}
			tasks[i] = k.Spawn("u", "x", spin, machine.MaskOf(cpu))
		}
		k.Advance(300 * time.Millisecond)
		for i, task := range tasks {
			if task.CPUTime() > 0 && task.LastCPU() != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: CPU time is conserved — the sum of task CPU times never
// exceeds wall time x logical CPUs.
func TestPropCPUTimeConservation(t *testing.T) {
	m := machine.PPC970() // 2 logical CPUs: easy to saturate
	f := func(nRaw uint8) bool {
		n := int(nRaw)%6 + 1
		k, err := New(m, Options{})
		if err != nil {
			return false
		}
		tasks := make([]*Task, n)
		for i := range tasks {
			w := workload.Synthetic(workload.SyntheticSpec{Name: "x", IPC: 1})
			spin, err := workload.NewSpin(w, int64(i))
			if err != nil {
				return false
			}
			tasks[i] = k.Spawn("u", "x", spin, nil)
		}
		const wall = 2 * time.Second
		k.Advance(wall)
		var sum time.Duration
		for _, task := range tasks {
			sum += task.CPUTime()
		}
		budget := wall * time.Duration(m.NumLogical())
		// Allow one quantum of slack for boundary rounding.
		return sum <= budget+20*time.Millisecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: with more runnable tasks than CPUs, every task eventually
// gets CPU time (no starvation under the vruntime policy).
func TestPropNoStarvation(t *testing.T) {
	m := machine.PPC970()
	f := func(nRaw uint8) bool {
		n := int(nRaw)%8 + 3
		k, err := New(m, Options{})
		if err != nil {
			return false
		}
		tasks := make([]*Task, n)
		for i := range tasks {
			w := workload.Synthetic(workload.SyntheticSpec{Name: "x", IPC: 1})
			spin, err := workload.NewSpin(w, int64(i))
			if err != nil {
				return false
			}
			tasks[i] = k.Spawn("u", "x", spin, nil)
		}
		k.Advance(3 * time.Second)
		for _, task := range tasks {
			if task.CPUTime() == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
