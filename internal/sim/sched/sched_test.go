package sched

import (
	"math"
	"testing"
	"time"

	"tiptop/internal/sim/cpu"
	"tiptop/internal/sim/machine"
	"tiptop/internal/sim/workload"
)

// burnWorkload returns a CPU-bound workload of roughly the given duration
// on the W3550 at the given solo IPC.
func burnWorkload(t *testing.T, name string, seconds float64) *workload.Workload {
	t.Helper()
	w := workload.Synthetic(workload.SyntheticSpec{Name: name, IPC: 1.5})
	// Synthetic builds a 600 s phase; scale it.
	return workload.Scaled(w, seconds/600)
}

func newKernel(t *testing.T, m *machine.Machine, opt Options) *Kernel {
	t.Helper()
	k, err := New(m, opt)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestKernelBasics(t *testing.T) {
	k := newKernel(t, machine.XeonW3550(), Options{})
	if k.Now() != 0 {
		t.Fatal("fresh kernel at time 0")
	}
	w := burnWorkload(t, "job", 1)
	task := k.Spawn("alice", "job", workload.MustInstance(w, 1), nil)
	if task.User() != "alice" || task.Comm() != "job" {
		t.Fatal("task identity")
	}
	if !task.ID().IsProcess() {
		t.Fatal("spawned task is a process leader")
	}
	if _, ok := k.Task(task.ID().PID); !ok {
		t.Fatal("task lookup by pid")
	}
	if _, ok := k.Task(99999); ok {
		t.Fatal("phantom task")
	}
	k.Advance(100 * time.Millisecond)
	if k.Now() != 100*time.Millisecond {
		t.Fatalf("Now = %v", k.Now())
	}
	if task.CPUTime() == 0 {
		t.Fatal("task should have accumulated CPU time")
	}
	if task.Totals().Instructions == 0 {
		t.Fatal("task should have retired instructions")
	}
}

func TestSoloTaskGetsFullCPU(t *testing.T) {
	k := newKernel(t, machine.XeonW3550(), Options{})
	w := burnWorkload(t, "solo", 10)
	task := k.Spawn("u", "solo", workload.MustInstance(w, 1), nil)
	k.Advance(2 * time.Second)
	// A single CPU-bound task on an idle machine gets ~100 % CPU.
	pct := float64(task.CPUTime()) / float64(2*time.Second) * 100
	if pct < 99 {
		t.Fatalf("%%CPU = %.1f, want ~100", pct)
	}
}

func TestTaskCompletionAndExit(t *testing.T) {
	k := newKernel(t, machine.XeonW3550(), Options{})
	w := burnWorkload(t, "short", 0.05)
	task := k.Spawn("u", "short", workload.MustInstance(w, 1), nil)
	k.Advance(2 * time.Second)
	if task.State() != TaskExited {
		t.Fatalf("state = %v, want exited", task.State())
	}
	if task.ExitTime() == 0 || task.ExitTime() > 2*time.Second {
		t.Fatalf("exit time = %v", task.ExitTime())
	}
	// Exited tasks stop accumulating.
	before := task.CPUTime()
	k.Advance(time.Second)
	if task.CPUTime() != before {
		t.Fatal("zombie must not accumulate CPU time")
	}
}

func TestTimesharingFairness(t *testing.T) {
	// 2 CPU-bound tasks on a 1-core machine share ~50/50.
	m := machine.PPC970() // 2 cores, no SMT
	k := newKernel(t, m, Options{})
	w := burnWorkload(t, "burn", 100)
	t1 := k.Spawn("u", "a", workload.MustInstance(w, 1), machine.MaskOf(0))
	t2 := k.Spawn("u", "b", workload.MustInstance(w, 2), machine.MaskOf(0))
	t3 := k.Spawn("u", "c", workload.MustInstance(w, 3), machine.MaskOf(0))
	k.Advance(3 * time.Second)
	total := 3.0
	for _, task := range []*Task{t1, t2, t3} {
		share := task.CPUTime().Seconds() / total
		if math.Abs(share-1.0/3) > 0.05 {
			t.Fatalf("task %s share = %.2f, want ~0.33", task.Comm(), share)
		}
	}
	if k.TotalContextSwitches() == 0 {
		t.Fatal("timesharing must context switch")
	}
}

func TestAffinityRespected(t *testing.T) {
	k := newKernel(t, machine.XeonW3550(), Options{})
	w := burnWorkload(t, "pin", 100)
	task := k.Spawn("u", "pin", workload.MustInstance(w, 1), machine.MaskOf(3))
	k.Advance(500 * time.Millisecond)
	if task.LastCPU() != 3 {
		t.Fatalf("pinned task ran on CPU %d, want 3", task.LastCPU())
	}
}

func TestPlacementPrefersIdleCores(t *testing.T) {
	// On the W3550 (4 cores x 2 threads), two unpinned tasks must land
	// on distinct physical cores, not on SMT siblings.
	k := newKernel(t, machine.XeonW3550(), Options{})
	w := burnWorkload(t, "j", 100)
	t1 := k.Spawn("u", "a", workload.MustInstance(w, 1), nil)
	t2 := k.Spawn("u", "b", workload.MustInstance(w, 2), nil)
	k.Advance(200 * time.Millisecond)
	m := k.Machine()
	if m.Core(t1.LastCPU()) == m.Core(t2.LastCPU()) {
		t.Fatalf("two tasks share core %d with idle cores available", m.Core(t1.LastCPU()))
	}
}

func TestStickyPlacement(t *testing.T) {
	k := newKernel(t, machine.XeonW3550(), Options{})
	w := burnWorkload(t, "j", 100)
	task := k.Spawn("u", "a", workload.MustInstance(w, 1), nil)
	k.Advance(100 * time.Millisecond)
	first := task.LastCPU()
	k.Advance(500 * time.Millisecond)
	if task.LastCPU() != first {
		t.Fatalf("solo task migrated from %d to %d", first, task.LastCPU())
	}
	// A lone sticky task also never context switches after the first.
	if task.ContextSwitches() != 1 {
		t.Fatalf("ctx switches = %d, want 1", task.ContextSwitches())
	}
}

func TestDutyCycleCPUPercent(t *testing.T) {
	k := newKernel(t, machine.XeonW3550(), Options{})
	w := burnWorkload(t, "interactive", 1000)
	task, err := k.SpawnDuty("u", "interactive", workload.MustInstance(w, 1), nil,
		440*time.Millisecond, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	k.Advance(10 * time.Second)
	pct := float64(task.CPUTime()) / float64(10*time.Second) * 100
	// The Figure 1 node has a 43.7 % process; duty cycling reproduces it.
	if math.Abs(pct-44) > 3 {
		t.Fatalf("duty-cycled %%CPU = %.1f, want ~44", pct)
	}
}

func TestSpawnDutyValidation(t *testing.T) {
	k := newKernel(t, machine.XeonW3550(), Options{})
	w := burnWorkload(t, "x", 1)
	if _, err := k.SpawnDuty("u", "x", workload.MustInstance(w, 1), nil, 0, time.Second); err == nil {
		t.Fatal("zero on-time must fail")
	}
	if _, err := k.SpawnDuty("u", "x", workload.MustInstance(w, 1), nil, 2*time.Second, time.Second); err == nil {
		t.Fatal("on > period must fail")
	}
}

func TestKill(t *testing.T) {
	k := newKernel(t, machine.XeonW3550(), Options{})
	w := burnWorkload(t, "victim", 100)
	task := k.Spawn("u", "victim", workload.MustInstance(w, 1), nil)
	k.Advance(50 * time.Millisecond)
	if err := k.Kill(task.ID().PID); err != nil {
		t.Fatal(err)
	}
	if task.State() != TaskExited {
		t.Fatal("killed task must be exited")
	}
	if err := k.Kill(12345); err == nil {
		t.Fatal("killing unknown pid must fail")
	}
}

// sinkRecorder records per-quantum deltas.
type sinkRecorder struct {
	total cpu.Delta
	ranNS uint64
	calls int
}

func (s *sinkRecorder) OnQuantum(d cpu.Delta, ranNS uint64) {
	s.total.Add(d)
	s.ranNS += ranNS
	s.calls++
}

func TestSinkReceivesOnlyPostAttachEvents(t *testing.T) {
	k := newKernel(t, machine.XeonW3550(), Options{})
	w := burnWorkload(t, "obs", 100)
	task := k.Spawn("u", "obs", workload.MustInstance(w, 1), nil)
	k.Advance(time.Second)
	preAttach := task.Totals().Instructions
	if preAttach == 0 {
		t.Fatal("task must have run before attach")
	}
	sink := &sinkRecorder{}
	task.AttachSink(sink)
	if !task.Monitored() {
		t.Fatal("Monitored after attach")
	}
	k.Advance(time.Second)
	post := task.Totals().Instructions - preAttach
	if sink.total.Instructions != post {
		t.Fatalf("sink saw %d instructions, task executed %d after attach",
			sink.total.Instructions, post)
	}
	task.DetachSink(sink)
	if task.Monitored() {
		t.Fatal("detach failed")
	}
	before := sink.calls
	k.Advance(100 * time.Millisecond)
	if sink.calls != before {
		t.Fatal("detached sink must not be called")
	}
}

func TestMonitorSwitchOverheadSlowsMonitoredTask(t *testing.T) {
	// Two tasks timeshare one CPU; monitoring one of them charges the
	// counter save/restore cost at every switch, measurably slowing it.
	run := func(monitor bool) uint64 {
		m := machine.PPC970()
		k := newKernel(t, m, Options{MonitorSwitchCycles: 500_000})
		w := burnWorkload(t, "x", 100)
		a := k.Spawn("u", "a", workload.MustInstance(w, 1), machine.MaskOf(0))
		b := k.Spawn("u", "b", workload.MustInstance(w, 2), machine.MaskOf(0))
		_ = b
		if monitor {
			a.AttachSink(&sinkRecorder{})
		}
		k.Advance(2 * time.Second)
		return a.Totals().Instructions
	}
	plain := run(false)
	monitored := run(true)
	if monitored >= plain {
		t.Fatalf("monitored task retired %d >= unmonitored %d", monitored, plain)
	}
	// The overhead must stay small (paper: 0.7 % on SPEC).
	drop := float64(plain-monitored) / float64(plain)
	if drop > 0.10 {
		t.Fatalf("monitoring overhead %.1f%% implausibly large", drop*100)
	}
}

func TestSMTCoResidencySlowdown(t *testing.T) {
	// Two tasks pinned to SMT siblings of core 0 (CPUs 0 and 4 on the
	// W3550) run slower than on separate cores — §3.4's same-core case.
	m := machine.XeonW3550()
	run := func(cpuB machine.CPUID) uint64 {
		k := newKernel(t, m, Options{})
		w := workload.MCF()
		a := k.Spawn("u", "mcf", workload.MustInstance(w, 1), machine.MaskOf(0))
		k.Spawn("u", "mcf2", workload.MustInstance(w, 2), machine.MaskOf(cpuB))
		// Run deep into the memory-bound simplex phases; the first
		// 25 s are a cache-friendly init phase that barely contends.
		k.Advance(150 * time.Second)
		return a.Totals().Instructions
	}
	separate := run(1) // different physical core
	sameCore := run(4) // SMT sibling
	if sameCore >= separate {
		t.Fatalf("same-core run retired %d >= separate-core %d", sameCore, separate)
	}
	slowdown := float64(separate) / float64(sameCore)
	if slowdown < 1.3 || slowdown > 3.0 {
		t.Fatalf("same-core slowdown = %.2fx, want roughly 2x (paper Fig 11d)", slowdown)
	}
}

func TestSharedLLCContention(t *testing.T) {
	// Three mcf copies on distinct cores slow each other via the shared
	// L3 even though every core is otherwise idle (paper Fig 11a).
	m := machine.XeonW3550()
	ipcOf := func(copies int) float64 {
		k := newKernel(t, m, Options{})
		var first *Task
		for i := 0; i < copies; i++ {
			task := k.Spawn("u", "mcf", workload.MustInstance(workload.MCF(), int64(i+1)),
				machine.MaskOf(machine.CPUID(i)))
			if i == 0 {
				first = task
			}
		}
		k.Advance(150 * time.Second)
		tot := first.Totals()
		return float64(tot.Instructions) / float64(tot.Cycles)
	}
	one := ipcOf(1)
	three := ipcOf(3)
	if three >= one {
		t.Fatalf("3-copy IPC %.3f must be below solo %.3f", three, one)
	}
	slowdown := 1 - three/one
	if slowdown < 0.05 || slowdown > 0.45 {
		t.Fatalf("3-copy slowdown = %.0f%%, paper reports up to 30%%", slowdown*100)
	}
	// CPU usage stays ~100 % in all cases: the whole point of §3.4.
	k := newKernel(t, m, Options{})
	tasks := make([]*Task, 3)
	for i := range tasks {
		tasks[i] = k.Spawn("u", "mcf", workload.MustInstance(workload.MCF(), int64(i+1)),
			machine.MaskOf(machine.CPUID(i)))
	}
	k.Advance(2 * time.Second)
	for _, task := range tasks {
		pct := float64(task.CPUTime()) / float64(2*time.Second) * 100
		if pct < 99 {
			t.Fatalf("contended task %%CPU = %.1f, must stay ~100", pct)
		}
	}
}

func TestQuantumClamp(t *testing.T) {
	// Advancing by a non-multiple of the quantum still lands exactly.
	k := newKernel(t, machine.XeonW3550(), Options{Quantum: 10 * time.Millisecond})
	k.Advance(25 * time.Millisecond)
	if k.Now() != 25*time.Millisecond {
		t.Fatalf("Now = %v", k.Now())
	}
}

func TestInvalidMachineRejected(t *testing.T) {
	bad := *machine.XeonW3550()
	bad.Sockets = 0
	if _, err := New(&bad, Options{}); err == nil {
		t.Fatal("invalid machine accepted")
	}
}

func TestDeterministicSimulation(t *testing.T) {
	run := func() (uint64, uint64) {
		k := newKernel(t, machine.XeonW3550(), Options{})
		a := k.Spawn("u", "a", workload.MustInstance(workload.MCF(), 1), nil)
		b := k.Spawn("u", "b", workload.MustInstance(workload.Astar(), 2), nil)
		k.Advance(3 * time.Second)
		return a.Totals().Cycles, b.Totals().Cycles
	}
	a1, b1 := run()
	a2, b2 := run()
	if a1 != a2 || b1 != b2 {
		t.Fatalf("simulation not deterministic: (%d,%d) vs (%d,%d)", a1, b1, a2, b2)
	}
}
