// Package sched simulates the operating-system kernel of the machine
// simulator: per-quantum scheduling of tasks onto logical CPUs with
// affinity and load balancing, CPU-time accounting (the %CPU column),
// context-switch counting, duty-cycled (interactive) tasks, and the
// per-quantum computation of shared-cache contention contexts that feed
// the core timing model. It also delivers per-quantum event deltas to
// attached sinks — the virtual PMU — including the cost of saving and
// restoring counters at context switches (paper §2.5).
package sched

import (
	"fmt"
	"sort"
	"time"

	"tiptop/internal/hpm"
	"tiptop/internal/sim/cache"
	"tiptop/internal/sim/cpu"
	"tiptop/internal/sim/machine"
	"tiptop/internal/sim/workload"
)

// TaskState is the lifecycle state of a simulated task.
type TaskState int

const (
	// TaskRunnable tasks compete for CPUs.
	TaskRunnable TaskState = iota
	// TaskSleeping tasks are in the off part of their duty cycle.
	TaskSleeping
	// TaskExited tasks have finished; they remain visible (like
	// zombies) so monitors can take a final reading.
	TaskExited
)

func (s TaskState) String() string {
	switch s {
	case TaskRunnable:
		return "R"
	case TaskSleeping:
		return "S"
	case TaskExited:
		return "Z"
	}
	return "?"
}

// EventSink receives the architectural events of one task, quantum by
// quantum. The virtual PMU implements it.
type EventSink interface {
	// OnQuantum is called after the task ran for ranNS of simulated
	// time and produced delta.
	OnQuantum(delta cpu.Delta, ranNS uint64)
}

// Task is one simulated process (single-threaded; the thread/process
// distinction is carried by TaskID for the monitoring layer).
type Task struct {
	id       hpm.TaskID
	user     string
	comm     string
	runner   workload.Runner
	affinity machine.AffinityMask

	state     TaskState
	startNS   uint64
	exitNS    uint64
	cpuTimeNS uint64
	vruntime  uint64
	lastCPU   machine.CPUID
	hasRun    bool

	// Duty cycle: the task is runnable only during the first dutyOnNS
	// of every dutyPeriodNS window. Zero period means always runnable.
	dutyOnNS, dutyPeriodNS uint64

	// Contention bookkeeping: observed insertion rates (refs/sec) into
	// the shared levels during the previous quantum the task ran.
	l2RefRate  float64
	llcRefRate float64

	totals cpu.Delta
	sinks  []EventSink

	ctxSwitches uint64
}

// ID returns the task identifier.
func (t *Task) ID() hpm.TaskID { return t.id }

// User returns the owning user name.
func (t *Task) User() string { return t.user }

// Comm returns the command name.
func (t *Task) Comm() string { return t.comm }

// State returns the current lifecycle state.
func (t *Task) State() TaskState { return t.state }

// CPUTime returns the accumulated on-CPU time.
func (t *Task) CPUTime() time.Duration { return time.Duration(t.cpuTimeNS) }

// StartTime returns the simulated time the task was spawned.
func (t *Task) StartTime() time.Duration { return time.Duration(t.startNS) }

// ExitTime returns when the task exited (zero if still alive).
func (t *Task) ExitTime() time.Duration { return time.Duration(t.exitNS) }

// LastCPU returns the logical CPU the task last ran on.
func (t *Task) LastCPU() machine.CPUID { return t.lastCPU }

// Totals returns the task's cumulative architectural events.
func (t *Task) Totals() cpu.Delta { return t.totals }

// ContextSwitches returns how many times the task was switched in on a
// CPU that previously ran a different task.
func (t *Task) ContextSwitches() uint64 { return t.ctxSwitches }

// AttachSink registers an event sink (a PMU monitor). Counting starts
// with the next quantum, which is the perf_event attach semantics the
// paper relies on: "only events that occur after the start of tiptop are
// observed".
func (t *Task) AttachSink(s EventSink) { t.sinks = append(t.sinks, s) }

// DetachSink removes a previously attached sink.
func (t *Task) DetachSink(s EventSink) {
	for i, cur := range t.sinks {
		if cur == s {
			t.sinks = append(t.sinks[:i], t.sinks[i+1:]...)
			return
		}
	}
}

// Monitored reports whether any sink is attached.
func (t *Task) Monitored() bool { return len(t.sinks) > 0 }

// Options configure a Kernel.
type Options struct {
	// Quantum is the scheduling timeslice. Default 10 ms.
	Quantum time.Duration
	// MonitorSwitchCycles is the cost, in cycles, of saving and
	// restoring the performance counters of a monitored task at each
	// context switch ("the impact is limited to the cost of saving a
	// few counters at context switches", §2.5). Charged only to
	// monitored tasks.
	MonitorSwitchCycles uint64
	// DisableCacheSharing turns off the shared-cache contention model:
	// every task sees full cache capacities regardless of co-runners.
	// Used by the ablation study — with it set, the paper's §3.4
	// effects vanish entirely.
	DisableCacheSharing bool
}

// Kernel is the simulated operating system plus hardware clock.
type Kernel struct {
	mach    *machine.Machine
	opt     Options
	nowNS   uint64
	nextPID int
	tasks   []*Task
	byTID   map[int]*Task
	// lastOnCPU tracks which task ran most recently on each logical
	// CPU, for context-switch detection and affinity.
	lastOnCPU []*Task

	// System-wide counting state: per-CPU event aggregation for the
	// pid=-1,cpu=N attach scope, indexed by logical CPU.
	cpuSinks  [][]EventSink
	cpuTotals []cpu.Delta
	cpuBusyNS []uint64

	totalSwitches uint64
}

// New creates a kernel for the given machine.
func New(m *machine.Machine, opt Options) (*Kernel, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if opt.Quantum <= 0 {
		opt.Quantum = 10 * time.Millisecond
	}
	return &Kernel{
		mach:      m,
		opt:       opt,
		nextPID:   100,
		byTID:     make(map[int]*Task),
		lastOnCPU: make([]*Task, m.NumLogical()),
		cpuSinks:  make([][]EventSink, m.NumLogical()),
		cpuTotals: make([]cpu.Delta, m.NumLogical()),
		cpuBusyNS: make([]uint64, m.NumLogical()),
	}, nil
}

// Machine returns the hardware description.
func (k *Kernel) Machine() *machine.Machine { return k.mach }

// Now returns the simulated wall-clock time.
func (k *Kernel) Now() time.Duration { return time.Duration(k.nowNS) }

// TotalContextSwitches returns the machine-wide context switch count.
func (k *Kernel) TotalContextSwitches() uint64 { return k.totalSwitches }

// AttachCPUSink registers a sink receiving every quantum executed on one
// logical CPU regardless of task — the system-wide (pid=-1, cpu=N)
// counting scope. Counting starts with the next quantum.
func (k *Kernel) AttachCPUSink(cpu machine.CPUID, s EventSink) error {
	if int(cpu) < 0 || int(cpu) >= len(k.cpuSinks) {
		return fmt.Errorf("sched: no such cpu %d", cpu)
	}
	k.cpuSinks[cpu] = append(k.cpuSinks[cpu], s)
	return nil
}

// DetachCPUSink removes a previously attached per-CPU sink.
func (k *Kernel) DetachCPUSink(cpu machine.CPUID, s EventSink) {
	if int(cpu) < 0 || int(cpu) >= len(k.cpuSinks) {
		return
	}
	sinks := k.cpuSinks[cpu]
	for i, cur := range sinks {
		if cur == s {
			k.cpuSinks[cpu] = append(sinks[:i], sinks[i+1:]...)
			return
		}
	}
}

// CPUBusy returns the accumulated busy (non-idle) time of a logical CPU.
func (k *Kernel) CPUBusy(cpu machine.CPUID) time.Duration {
	if int(cpu) < 0 || int(cpu) >= len(k.cpuBusyNS) {
		return 0
	}
	return time.Duration(k.cpuBusyNS[cpu])
}

// CPUTotals returns the cumulative architectural events executed on a
// logical CPU, summed over every task that ran there.
func (k *Kernel) CPUTotals(c machine.CPUID) cpu.Delta {
	if int(c) < 0 || int(c) >= len(k.cpuTotals) {
		return cpu.Delta{}
	}
	return k.cpuTotals[c]
}

// Spawn creates a runnable task executing r.
func (k *Kernel) Spawn(user, comm string, r workload.Runner, aff machine.AffinityMask) *Task {
	pid := k.nextPID
	k.nextPID++
	t := &Task{
		id:       hpm.TaskID{PID: pid, TID: pid},
		user:     user,
		comm:     comm,
		runner:   r,
		affinity: aff,
		startNS:  k.nowNS,
		lastCPU:  -1,
	}
	k.tasks = append(k.tasks, t)
	k.byTID[pid] = t
	return t
}

// SpawnThread adds a thread to an existing process: a schedulable task
// sharing the leader's PID, user and command but with its own TID,
// runner and affinity. The paper's §2.2 per-thread/per-process counting
// distinction only matters for such thread groups.
func (k *Kernel) SpawnThread(leader *Task, r workload.Runner, aff machine.AffinityMask) (*Task, error) {
	if leader == nil || !leader.id.IsProcess() {
		return nil, fmt.Errorf("sched: SpawnThread needs a thread-group leader")
	}
	if leader.state == TaskExited {
		return nil, fmt.Errorf("sched: leader %d has exited", leader.id.PID)
	}
	tid := k.nextPID
	k.nextPID++
	t := &Task{
		id:       hpm.TaskID{PID: leader.id.PID, TID: tid},
		user:     leader.user,
		comm:     leader.comm,
		runner:   r,
		affinity: aff,
		startNS:  k.nowNS,
		lastCPU:  -1,
	}
	k.tasks = append(k.tasks, t)
	k.byTID[tid] = t
	return t, nil
}

// ThreadGroup returns all tasks of a process (the leader and its
// threads), in spawn order.
func (k *Kernel) ThreadGroup(pid int) []*Task {
	var out []*Task
	for _, t := range k.tasks {
		if t.id.PID == pid {
			out = append(out, t)
		}
	}
	return out
}

// SpawnDuty creates a task that is runnable only during the first `on`
// of every `period` (an interactive or I/O-bound job, such as the 43.7 %
// process in Figure 1).
func (k *Kernel) SpawnDuty(user, comm string, r workload.Runner, aff machine.AffinityMask, on, period time.Duration) (*Task, error) {
	if on <= 0 || period <= 0 || on > period {
		return nil, fmt.Errorf("sched: invalid duty cycle %v/%v", on, period)
	}
	t := k.Spawn(user, comm, r, aff)
	t.dutyOnNS = uint64(on)
	t.dutyPeriodNS = uint64(period)
	return t, nil
}

// Kill marks a task exited immediately.
func (k *Kernel) Kill(pid int) error {
	t, ok := k.byTID[pid]
	if !ok {
		return fmt.Errorf("sched: no task %d", pid)
	}
	if t.state != TaskExited {
		t.state = TaskExited
		t.exitNS = k.nowNS
	}
	return nil
}

// Task returns the task with the given PID.
func (k *Kernel) Task(pid int) (*Task, bool) {
	t, ok := k.byTID[pid]
	return t, ok
}

// Tasks returns all tasks (including exited ones), in spawn order. The
// returned slice must not be modified.
func (k *Kernel) Tasks() []*Task { return k.tasks }

// dutyRunnable reports whether a duty-cycled task is in its on-window.
func (t *Task) dutyRunnable(nowNS uint64) bool {
	if t.dutyPeriodNS == 0 {
		return true
	}
	return (nowNS-t.startNS)%t.dutyPeriodNS < t.dutyOnNS
}

// Advance runs the simulation forward by d, quantum by quantum.
func (k *Kernel) Advance(d time.Duration) {
	end := k.nowNS + uint64(d)
	q := uint64(k.opt.Quantum)
	for k.nowNS < end {
		step := q
		if rem := end - k.nowNS; rem < step {
			step = rem
		}
		k.quantum(step)
		k.nowNS += step
	}
}

// Page-fault model parameters: a task faults its working set in on
// first execution and then takes a demand-paging fault for a fixed
// fraction of its DRAM accesses (file-backed reads, copy-on-write).
const (
	initialPageFaults   = 64
	pageFaultPerLLCMiss = 64
)

// assignment maps logical CPUs to the task chosen for the quantum.
type assignment struct {
	cpu  machine.CPUID
	task *Task
}

// quantum executes one scheduling timeslice of length nsec.
func (k *Kernel) quantum(nsec uint64) {
	runnable := make([]*Task, 0, len(k.tasks))
	for _, t := range k.tasks {
		if t.state == TaskExited {
			continue
		}
		if t.dutyRunnable(k.nowNS) {
			t.state = TaskRunnable
			runnable = append(runnable, t)
		} else {
			t.state = TaskSleeping
		}
	}
	if len(runnable) == 0 {
		return
	}
	assignments := k.place(runnable)
	if len(assignments) == 0 {
		return
	}
	contexts := k.buildContexts(assignments)

	budget := uint64(float64(nsec) / 1e9 * k.mach.FreqHz)
	if budget == 0 {
		budget = 1
	}
	for i, a := range assignments {
		t := a.task
		// Context switch detection and counter save/restore cost.
		taskBudget := budget
		switched := k.lastOnCPU[a.cpu] != t
		if switched {
			k.totalSwitches++
			t.ctxSwitches++
			if t.Monitored() && k.opt.MonitorSwitchCycles > 0 {
				if k.opt.MonitorSwitchCycles < taskBudget {
					taskBudget -= k.opt.MonitorSwitchCycles
				} else {
					taskBudget = 1
				}
			}
		}
		migrated := t.hasRun && t.lastCPU != a.cpu
		firstRun := !t.hasRun
		k.lastOnCPU[a.cpu] = t

		delta := t.runner.Exec(contexts[i], taskBudget)
		// Software events are scheduling-level, not pipeline-level, so
		// the kernel injects them into the quantum's delta: one context
		// switch when a different task was switched in, one migration
		// when the task moved between CPUs, and page faults modelled as
		// the initial working-set fault-in plus a demand-paging trickle
		// proportional to DRAM traffic.
		if switched {
			delta.CtxSwitches++
		}
		if migrated {
			delta.CPUMigrations++
		}
		delta.PageFaults += delta.LLCMisses / pageFaultPerLLCMiss
		if firstRun {
			delta.PageFaults += initialPageFaults
		}
		usedNS := uint64(float64(delta.Cycles) / k.mach.FreqHz * 1e9)
		if usedNS > nsec {
			usedNS = nsec
		}
		t.cpuTimeNS += usedNS
		t.vruntime += usedNS
		t.lastCPU = a.cpu
		t.hasRun = true
		t.totals.Add(delta)
		k.cpuTotals[a.cpu].Add(delta)
		k.cpuBusyNS[a.cpu] += usedNS

		// Update observed insertion rates for next quantum's
		// contention partition.
		if usedNS > 0 {
			sec := float64(usedNS) / 1e9
			t.l2RefRate = float64(delta.L1Misses) / sec
			t.llcRefRate = float64(delta.LLCRefs) / sec
		}
		for _, s := range t.sinks {
			s.OnQuantum(delta, usedNS)
		}
		for _, s := range k.cpuSinks[a.cpu] {
			s.OnQuantum(delta, usedNS)
		}
		if t.runner.Done() {
			t.state = TaskExited
			t.exitNS = k.nowNS + usedNS
		}
	}
}

// place chooses which tasks run this quantum and on which CPUs. Policy:
// lowest-vruntime tasks first (CFS-like fairness); each task prefers its
// previous CPU, then an idle physical core, then an idle SMT thread —
// the "place on the least loaded core" behaviour the paper attributes to
// the Linux scheduler.
func (k *Kernel) place(runnable []*Task) []assignment {
	sort.SliceStable(runnable, func(i, j int) bool {
		if runnable[i].vruntime != runnable[j].vruntime {
			return runnable[i].vruntime < runnable[j].vruntime
		}
		return runnable[i].id.PID < runnable[j].id.PID
	})

	n := k.mach.NumLogical()
	taken := make([]bool, n)
	var out []assignment

	coreBusy := func(cpu machine.CPUID) bool {
		for _, sib := range k.mach.Siblings(cpu) {
			if taken[sib] {
				return true
			}
		}
		return false
	}
	socketLoad := func(cpu machine.CPUID) int {
		sock := k.mach.Socket(cpu)
		load := 0
		for c := 0; c < n; c++ {
			if taken[c] && k.mach.Socket(machine.CPUID(c)) == sock {
				load++
			}
		}
		return load
	}
	pick := func(t *Task) (machine.CPUID, bool) {
		// 1. Sticky: previous CPU if free and allowed.
		if t.lastCPU >= 0 && !taken[t.lastCPU] && t.affinity.Allows(t.lastCPU) {
			return t.lastCPU, true
		}
		// 2. A free CPU on an entirely idle physical core, preferring
		// the least-loaded socket (Linux spreads across packages to
		// maximize cache and memory bandwidth per task).
		best, bestLoad := machine.CPUID(-1), 1<<30
		for c := 0; c < n; c++ {
			cpu := machine.CPUID(c)
			if !taken[c] && t.affinity.Allows(cpu) && !coreBusy(cpu) {
				if load := socketLoad(cpu); load < bestLoad {
					best, bestLoad = cpu, load
				}
			}
		}
		if best >= 0 {
			return best, true
		}
		// 3. Any free CPU.
		for c := 0; c < n; c++ {
			cpu := machine.CPUID(c)
			if !taken[c] && t.affinity.Allows(cpu) {
				return cpu, true
			}
		}
		return 0, false
	}

	for _, t := range runnable {
		if len(out) == n {
			break
		}
		cpu, ok := pick(t)
		if !ok {
			continue
		}
		taken[cpu] = true
		out = append(out, assignment{cpu: cpu, task: t})
	}
	return out
}

// buildContexts computes the per-task execution context for the quantum:
// effective L2 and LLC capacities from the contention model, halved L1
// when the SMT sibling is busy.
func (k *Kernel) buildContexts(assignments []assignment) []cpu.Context {
	m := k.mach
	base := cpu.DefaultContext(m)
	out := make([]cpu.Context, len(assignments))

	// Group assignment indexes by cache-sharing domain.
	l2cache, hasL2 := m.CacheAt(2)
	llc := m.LLC()
	l2Groups := map[int][]int{}
	llcGroups := map[int][]int{}
	for i, a := range assignments {
		if hasL2 {
			l2Groups[m.DomainOf(a.cpu, l2cache.Shared)] = append(l2Groups[m.DomainOf(a.cpu, l2cache.Shared)], i)
		}
		llcGroups[m.DomainOf(a.cpu, llc.Shared)] = append(llcGroups[m.DomainOf(a.cpu, llc.Shared)], i)
	}

	l2Share := make([]float64, len(assignments))
	llcShare := make([]float64, len(assignments))
	for i := range assignments {
		l2Share[i] = base.L2Bytes
		llcShare[i] = base.LLCBytes
	}
	partition := func(groups map[int][]int, capacity float64, rate func(*Task) float64, profileOf func(*Task) cache.ReuseProfile, into []float64) {
		for _, idxs := range groups {
			if len(idxs) <= 1 {
				continue
			}
			sharers := make([]cache.Sharer, len(idxs))
			for j, idx := range idxs {
				t := assignments[idx].task
				r := rate(t)
				if r <= 0 {
					r = 1 // cold start: equal pressure
				}
				sharers[j] = cache.Sharer{RefRate: r, Profile: profileOf(t)}
			}
			shares := cache.ShareCapacity(capacity, sharers)
			for j, idx := range idxs {
				into[idx] = shares[j]
			}
		}
	}
	profile := func(t *Task) cache.ReuseProfile {
		if p, ok := t.runner.(interface{ Reuse() cache.ReuseProfile }); ok {
			return p.Reuse()
		}
		// Without a declared profile, assume a moderate footprint so
		// the partition still reacts to reference rates.
		return cache.UniformProfile(base.LLCBytes, 0.02)
	}
	if !k.opt.DisableCacheSharing {
		if hasL2 && l2cache.Shared != machine.SharedPerThread {
			partition(l2Groups, float64(l2cache.SizeBytes), func(t *Task) float64 { return t.l2RefRate }, profile, l2Share)
		}
		partition(llcGroups, float64(llc.SizeBytes), func(t *Task) float64 { return t.llcRefRate }, profile, llcShare)
	}

	// SMT sibling busy?
	busy := map[machine.CPUID]bool{}
	for _, a := range assignments {
		busy[a.cpu] = true
	}
	for i, a := range assignments {
		ctx := base
		ctx.L2Bytes = l2Share[i]
		ctx.LLCBytes = llcShare[i]
		for _, sib := range m.Siblings(a.cpu) {
			if sib != a.cpu && busy[sib] {
				ctx.SMTBusy = true
				ctx.L1Bytes = base.L1Bytes / 2
			}
		}
		out[i] = ctx
	}
	return out
}
