// Package machine models the hardware platforms of the paper: socket /
// core / SMT-thread topology, the cache hierarchy, clock frequency, and
// the micro-architectural parameters the timing model needs (issue width,
// miss penalties, the Intel micro-code FP-assist penalty). Presets are
// provided for the four machines the paper measures on: the Intel Xeon
// W3550 (Nehalem) workstation, the bi-Xeon E5640 (Westmere) data-center
// node, an Intel Core 2 machine, and the PowerPC PPC970.
package machine

import (
	"fmt"
	"strings"
)

// Sharing describes which set of logical CPUs share one cache instance.
type Sharing int

const (
	// SharedPerThread means one cache instance per logical CPU.
	SharedPerThread Sharing = iota
	// SharedPerCore means the SMT threads of one physical core share it.
	SharedPerCore
	// SharedPerSocket means all cores of one socket share it.
	SharedPerSocket
)

func (s Sharing) String() string {
	switch s {
	case SharedPerThread:
		return "thread"
	case SharedPerCore:
		return "core"
	case SharedPerSocket:
		return "socket"
	}
	return "unknown"
}

// CacheLevel describes one level of the hierarchy.
type CacheLevel struct {
	Level     int     // 1, 2, 3
	SizeBytes int64   // total capacity of one instance
	Assoc     int     // associativity (ways)
	LineBytes int     // cache line size
	Shared    Sharing // scope of one instance
	// LatencyCycles is the *exposed* stall cost, in cycles, of a hit
	// at this level as seen by the out-of-order pipeline: the fraction
	// of the architectural latency that dynamic scheduling cannot
	// hide. The timing model charges it per miss at the level above.
	LatencyCycles int
}

// CPUID is a logical CPU number, in Linux enumeration order: on a
// hyper-threaded Intel machine, CPU k and CPU k+NumCores() are the two
// hardware threads of physical core k (this is the numbering the paper
// uses in §3.4: "logical cores 0 and 4" share a physical core on the
// quad-core Nehalem).
type CPUID int

// Machine is an immutable hardware description.
type Machine struct {
	Name           string
	MicroArch      string // "Nehalem", "Core", "PPC970", ...
	Sockets        int
	CoresPerSocket int
	ThreadsPerCore int
	FreqHz         float64
	MemoryBytes    int64
	Caches         []CacheLevel // ordered L1 data, L2, [L3]

	// Timing-model parameters.
	IssueWidth        int     // maximum instructions retired per cycle
	MemLatencyCycles  int     // DRAM access latency
	BranchMissPenalty int     // pipeline refill cycles
	FPAssistPenalty   int     // extra cycles per micro-code assisted FP op (0: no assist pathology)
	SMTSlowdown       float64 // multiplicative base-CPI factor when the sibling thread is busy
	// CPIScale multiplies every workload's base CPI to model the
	// sustained-ILP difference between micro-architectures (workload
	// base CPIs are calibrated on Nehalem, scale 1.0; the older Core
	// and PPC970 retire the same code more slowly).
	CPIScale float64

	// NumCounters is how many events the PMU can count concurrently
	// (paper §2.6: "Our Intel Xeon W3550 supports up to sixteen
	// simultaneous events"). Requests beyond this are time-multiplexed.
	NumCounters int

	// FixedCounters names events counted by dedicated fixed-function
	// hardware outside the NumCounters programmable slots — the RISC-V
	// mcycle/minstret CSRs are the canonical example. Fixed events cost
	// no programmable counter and are never multiplexed.
	FixedCounters []string

	// RawEvents is the machine model's raw-event decode table: it maps
	// a model-specific raw event code (perf_event_attr.Config of a
	// PERF_TYPE_RAW descriptor) to the name of the architectural count
	// the simulator produces for it (see cpu.Delta.Count). This is the
	// hook the virtual PMU resolves arch-specific events through, the
	// way real hardware decodes event-select/umask pairs: a machine
	// without an entry for a code cannot count that event (the PPC970
	// has no FP-assist mechanism at all, §3.1).
	RawEvents map[uint64]string
}

// Validate checks internal consistency.
func (m *Machine) Validate() error {
	if m.Sockets <= 0 || m.CoresPerSocket <= 0 || m.ThreadsPerCore <= 0 {
		return fmt.Errorf("machine %q: non-positive topology", m.Name)
	}
	if m.FreqHz <= 0 {
		return fmt.Errorf("machine %q: non-positive frequency", m.Name)
	}
	if m.IssueWidth <= 0 {
		return fmt.Errorf("machine %q: non-positive issue width", m.Name)
	}
	if m.NumCounters <= 0 {
		return fmt.Errorf("machine %q: need at least one hardware counter", m.Name)
	}
	if len(m.Caches) == 0 {
		return fmt.Errorf("machine %q: no caches", m.Name)
	}
	for i, c := range m.Caches {
		if c.Level != i+1 {
			return fmt.Errorf("machine %q: cache %d has level %d", m.Name, i, c.Level)
		}
		if c.SizeBytes <= 0 || c.Assoc <= 0 || c.LineBytes <= 0 {
			return fmt.Errorf("machine %q: degenerate cache L%d", m.Name, c.Level)
		}
		if c.SizeBytes%int64(c.LineBytes*c.Assoc) != 0 {
			return fmt.Errorf("machine %q: L%d size not divisible by assoc*line", m.Name, c.Level)
		}
	}
	if m.SMTSlowdown < 1 {
		return fmt.Errorf("machine %q: SMT slowdown must be >= 1", m.Name)
	}
	if m.CPIScale <= 0 {
		return fmt.Errorf("machine %q: CPIScale must be positive", m.Name)
	}
	return nil
}

// RawEventSource resolves a raw event code through the machine model's
// decode table, returning the name of the architectural count backing
// it and whether the machine implements the code.
func (m *Machine) RawEventSource(config uint64) (string, bool) {
	src, ok := m.RawEvents[config]
	return src, ok
}

// HasFixedCounter reports whether the named event is counted by a
// dedicated fixed-function counter on this machine.
func (m *Machine) HasFixedCounter(name string) bool {
	for _, f := range m.FixedCounters {
		if f == name {
			return true
		}
	}
	return false
}

// referenceRawEvents returns the decode table for the reference raw
// codes of hpm.DefaultRegistry (Intel SDM, Nehalem/Westmere — the
// machines the paper used). Every preset accepts these codes for the
// counts it implements; fpAssist is false for machines without the
// micro-code assist mechanism.
func referenceRawEvents(fpAssist bool) map[uint64]string {
	t := map[uint64]string{
		0xAA24: "L2_MISSES",        // L2_RQSTS.MISS
		0x010B: "LOADS",            // MEM_INST_RETIRED.LOADS
		0x020B: "STORES",           // MEM_INST_RETIRED.STORES
		0xFF10: "FP_OPS",           // FP_COMP_OPS_EXE.ANY
		0x06A3: "MEM_STALL_CYCLES", // CYCLE_ACTIVITY.STALLS_LDM_PENDING
	}
	if fpAssist {
		t[0x1EF7] = "FP_ASSIST" // FP_ASSIST.ALL
	}
	return t
}

// NumCores returns the number of physical cores.
func (m *Machine) NumCores() int { return m.Sockets * m.CoresPerSocket }

// NumLogical returns the number of logical CPUs.
func (m *Machine) NumLogical() int { return m.NumCores() * m.ThreadsPerCore }

// LLC returns the last-level cache.
func (m *Machine) LLC() CacheLevel { return m.Caches[len(m.Caches)-1] }

// CacheAt returns the cache description for the given level, or false.
func (m *Machine) CacheAt(level int) (CacheLevel, bool) {
	for _, c := range m.Caches {
		if c.Level == level {
			return c, true
		}
	}
	return CacheLevel{}, false
}

// Core returns the physical core index of a logical CPU.
func (m *Machine) Core(cpu CPUID) int { return int(cpu) % m.NumCores() }

// Socket returns the socket index of a logical CPU.
func (m *Machine) Socket(cpu CPUID) int { return m.Core(cpu) / m.CoresPerSocket }

// Thread returns the SMT thread index (0-based) of a logical CPU within
// its physical core.
func (m *Machine) Thread(cpu CPUID) int { return int(cpu) / m.NumCores() }

// Siblings returns all logical CPUs sharing the physical core of cpu,
// including cpu itself, in ascending order.
func (m *Machine) Siblings(cpu CPUID) []CPUID {
	core := m.Core(cpu)
	out := make([]CPUID, 0, m.ThreadsPerCore)
	for t := 0; t < m.ThreadsPerCore; t++ {
		out = append(out, CPUID(core+t*m.NumCores()))
	}
	return out
}

// SameDomain reports whether two logical CPUs share a cache instance with
// the given sharing scope.
func (m *Machine) SameDomain(a, b CPUID, s Sharing) bool {
	switch s {
	case SharedPerThread:
		return a == b
	case SharedPerCore:
		return m.Core(a) == m.Core(b)
	case SharedPerSocket:
		return m.Socket(a) == m.Socket(b)
	}
	return false
}

// DomainOf returns a small integer identifying the cache-sharing domain a
// logical CPU belongs to for the given scope. CPUs with equal domain IDs
// share one cache instance.
func (m *Machine) DomainOf(cpu CPUID, s Sharing) int {
	switch s {
	case SharedPerThread:
		return int(cpu)
	case SharedPerCore:
		return m.Core(cpu)
	case SharedPerSocket:
		return m.Socket(cpu)
	}
	return -1
}

// AffinityMask is a set of logical CPUs a task may run on; the empty mask
// means "any CPU" (no affinity, the default). It models the Linux
// taskset(1) utility the paper uses to pin mcf copies to cores.
type AffinityMask map[CPUID]bool

// Allows reports whether cpu is permitted by the mask.
func (a AffinityMask) Allows(cpu CPUID) bool {
	return len(a) == 0 || a[cpu]
}

// MaskOf builds an affinity mask from an explicit CPU list.
func MaskOf(cpus ...CPUID) AffinityMask {
	m := make(AffinityMask, len(cpus))
	for _, c := range cpus {
		m[c] = true
	}
	return m
}

// RenderTopology produces an hwloc-like ASCII drawing of the machine, as
// in Figure 11 (c) of the paper.
func (m *Machine) RenderTopology() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Machine (%dMB)\n", m.MemoryBytes/(1<<20))
	for s := 0; s < m.Sockets; s++ {
		fmt.Fprintf(&b, "  Socket#%d\n", s)
		if llc := m.LLC(); llc.Shared == SharedPerSocket {
			fmt.Fprintf(&b, "    L%d (%dKB)\n", llc.Level, llc.SizeBytes/1024)
		}
		for c := 0; c < m.CoresPerSocket; c++ {
			core := s*m.CoresPerSocket + c
			for _, cl := range m.Caches {
				if cl.Shared == SharedPerCore {
					fmt.Fprintf(&b, "      L%d (%dKB)\n", cl.Level, cl.SizeBytes/1024)
				}
			}
			fmt.Fprintf(&b, "      Core#%d\n", core)
			for t := 0; t < m.ThreadsPerCore; t++ {
				fmt.Fprintf(&b, "        PU#%d\n", core+t*m.NumCores())
			}
		}
	}
	return b.String()
}

// --- Presets: the paper's machines ---

// XeonW3550 returns the Intel Xeon W3550 of §3.1–3.3: Nehalem, 4 cores,
// 2-way SMT, 3.07 GHz, 32 KB L1d + 256 KB L2 per core, 8 MB shared L3,
// sixteen simultaneous counters.
func XeonW3550() *Machine {
	m := &Machine{
		Name:           "Intel Xeon W3550",
		MicroArch:      "Nehalem",
		Sockets:        1,
		CoresPerSocket: 4,
		ThreadsPerCore: 2,
		FreqHz:         3.07e9,
		MemoryBytes:    5965 << 20, // as in Figure 11 (c)
		Caches: []CacheLevel{
			{Level: 1, SizeBytes: 32 << 10, Assoc: 8, LineBytes: 64, Shared: SharedPerCore, LatencyCycles: 1},
			{Level: 2, SizeBytes: 256 << 10, Assoc: 8, LineBytes: 64, Shared: SharedPerCore, LatencyCycles: 2},
			{Level: 3, SizeBytes: 8 << 20, Assoc: 16, LineBytes: 64, Shared: SharedPerSocket, LatencyCycles: 15},
		},
		IssueWidth:        4,
		MemLatencyCycles:  200,
		BranchMissPenalty: 17,
		FPAssistPenalty:   264, // "extremely slow compared to regular FP execution"
		SMTSlowdown:       1.25,
		CPIScale:          1.0,
		NumCounters:       16,
		RawEvents:         referenceRawEvents(true),
	}
	mustValid(m)
	return m
}

// XeonE5640x2 returns the bi-Xeon E5640 node of Figures 1 and 10:
// 2 sockets x 4 cores x 2 threads = 16 logical CPUs at 2.67 GHz
// (Westmere), 12 MB shared L3 per socket.
func XeonE5640x2() *Machine {
	m := &Machine{
		Name:           "2x Intel Xeon E5640",
		MicroArch:      "Westmere",
		Sockets:        2,
		CoresPerSocket: 4,
		ThreadsPerCore: 2,
		FreqHz:         2.67e9,
		MemoryBytes:    24 << 30,
		Caches: []CacheLevel{
			{Level: 1, SizeBytes: 32 << 10, Assoc: 8, LineBytes: 64, Shared: SharedPerCore, LatencyCycles: 1},
			{Level: 2, SizeBytes: 256 << 10, Assoc: 8, LineBytes: 64, Shared: SharedPerCore, LatencyCycles: 2},
			{Level: 3, SizeBytes: 12 << 20, Assoc: 16, LineBytes: 64, Shared: SharedPerSocket, LatencyCycles: 16},
		},
		IssueWidth:        4,
		MemLatencyCycles:  210,
		BranchMissPenalty: 17,
		FPAssistPenalty:   264,
		SMTSlowdown:       1.25,
		CPIScale:          1.05,
		NumCounters:       16,
		RawEvents:         referenceRawEvents(true),
	}
	mustValid(m)
	return m
}

// Core2 returns an Intel Core-microarchitecture machine (the "Core"
// series of Figures 6–8): 2 cores, no SMT, 2.4 GHz, 4 MB shared L2 as the
// last-level cache.
func Core2() *Machine {
	m := &Machine{
		Name:           "Intel Core 2 Duo",
		MicroArch:      "Core",
		Sockets:        1,
		CoresPerSocket: 2,
		ThreadsPerCore: 1,
		FreqHz:         2.4e9,
		MemoryBytes:    4 << 30,
		Caches: []CacheLevel{
			{Level: 1, SizeBytes: 32 << 10, Assoc: 8, LineBytes: 64, Shared: SharedPerCore, LatencyCycles: 1},
			{Level: 2, SizeBytes: 4 << 20, Assoc: 16, LineBytes: 64, Shared: SharedPerSocket, LatencyCycles: 4},
		},
		IssueWidth:        4,
		MemLatencyCycles:  240,
		BranchMissPenalty: 15,
		FPAssistPenalty:   240,
		SMTSlowdown:       1,
		CPIScale:          1.18,
		NumCounters:       4,
		RawEvents:         referenceRawEvents(true),
	}
	mustValid(m)
	return m
}

// PPC970 returns the PowerPC PPC970 of Figure 3 (d): 1.8 GHz, no SMT,
// 512 KB L2 last-level cache, and crucially no micro-code FP-assist
// pathology ("it does not exhibit the Nehalem behavior related to
// floating point values").
func PPC970() *Machine {
	m := &Machine{
		Name:           "PowerPC PPC970",
		MicroArch:      "PPC970",
		Sockets:        1,
		CoresPerSocket: 2,
		ThreadsPerCore: 1,
		FreqHz:         1.8e9,
		MemoryBytes:    2 << 30,
		Caches: []CacheLevel{
			{Level: 1, SizeBytes: 32 << 10, Assoc: 2, LineBytes: 128, Shared: SharedPerCore, LatencyCycles: 2},
			{Level: 2, SizeBytes: 512 << 10, Assoc: 8, LineBytes: 128, Shared: SharedPerCore, LatencyCycles: 6},
		},
		IssueWidth:        4, // wide dispatch but poor sustained ILP: modelled via workload base CPI scaling
		MemLatencyCycles:  300,
		BranchMissPenalty: 12,
		FPAssistPenalty:   0, // no assist pathology
		SMTSlowdown:       1,
		CPIScale:          2.0,
		NumCounters:       8,
		RawEvents:         referenceRawEvents(false),
	}
	mustValid(m)
	return m
}

// CortexA7 returns a quad-core ARM Cortex-A7 (the Raspberry Pi 2 class
// of machine): in-order partial-dual-issue cores at 900 MHz with a small
// shared L2 — and, crucially for the multiplexing subsystem, only four
// PMU counting registers (SNIPPETS exemplar: "the Cortex A7 has four
// counting registers"). Any screen beyond four hardware events must be
// rotated.
func CortexA7() *Machine {
	m := &Machine{
		Name:           "ARM Cortex-A7",
		MicroArch:      "Cortex-A7",
		Sockets:        1,
		CoresPerSocket: 4,
		ThreadsPerCore: 1,
		FreqHz:         900e6,
		MemoryBytes:    1 << 30,
		Caches: []CacheLevel{
			{Level: 1, SizeBytes: 32 << 10, Assoc: 4, LineBytes: 64, Shared: SharedPerCore, LatencyCycles: 2},
			{Level: 2, SizeBytes: 512 << 10, Assoc: 8, LineBytes: 64, Shared: SharedPerSocket, LatencyCycles: 10},
		},
		IssueWidth:        2,
		MemLatencyCycles:  180,
		BranchMissPenalty: 8,
		FPAssistPenalty:   0, // no micro-code assist mechanism
		SMTSlowdown:       1,
		CPIScale:          1.6,
		NumCounters:       4,
		RawEvents:         referenceRawEvents(false),
	}
	mustValid(m)
	return m
}

// SiFiveU74 returns a RISC-V SiFive U74 quad-core (the HiFive
// Unmatched class), the platform shape of the PAPERS.md Perf/RISC-V
// study: the cycle and instret CSRs are fixed-function counters that
// cost no programmable slot, while only two mhpmcounter registers are
// available for everything else — the tightest multiplexing budget of
// any preset.
func SiFiveU74() *Machine {
	m := &Machine{
		Name:           "SiFive U74 (RISC-V)",
		MicroArch:      "U74",
		Sockets:        1,
		CoresPerSocket: 4,
		ThreadsPerCore: 1,
		FreqHz:         1.2e9,
		MemoryBytes:    16 << 30,
		Caches: []CacheLevel{
			{Level: 1, SizeBytes: 32 << 10, Assoc: 4, LineBytes: 64, Shared: SharedPerCore, LatencyCycles: 2},
			{Level: 2, SizeBytes: 2 << 20, Assoc: 16, LineBytes: 64, Shared: SharedPerSocket, LatencyCycles: 12},
		},
		IssueWidth:        2,
		MemLatencyCycles:  160,
		BranchMissPenalty: 6,
		FPAssistPenalty:   0,
		SMTSlowdown:       1,
		CPIScale:          1.4,
		NumCounters:       2,
		FixedCounters:     []string{"CYCLES", "INSTRUCTIONS"},
		RawEvents:         referenceRawEvents(false),
	}
	mustValid(m)
	return m
}

// Presets returns all machine presets keyed by a short name.
func Presets() map[string]*Machine {
	return map[string]*Machine{
		"w3550":  XeonW3550(),
		"e5640":  XeonE5640x2(),
		"core2":  Core2(),
		"ppc970": PPC970(),
		"a7":     CortexA7(),
		"u74":    SiFiveU74(),
	}
}

func mustValid(m *Machine) {
	if err := m.Validate(); err != nil {
		panic(err)
	}
}
