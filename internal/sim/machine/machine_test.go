package machine

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPresetsValidate(t *testing.T) {
	for name, m := range Presets() {
		if err := m.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", name, err)
		}
	}
}

func TestW3550Topology(t *testing.T) {
	m := XeonW3550()
	if m.NumCores() != 4 || m.NumLogical() != 8 {
		t.Fatalf("cores/logical = %d/%d", m.NumCores(), m.NumLogical())
	}
	// Paper §3.4: "logical cores 0 and 4" are the two threads of one
	// physical core on the quad-core Nehalem.
	if m.Core(0) != m.Core(4) {
		t.Fatal("CPU 0 and CPU 4 must share a physical core")
	}
	if m.Core(0) == m.Core(1) {
		t.Fatal("CPU 0 and CPU 1 must be distinct cores")
	}
	sib := m.Siblings(0)
	if len(sib) != 2 || sib[0] != 0 || sib[1] != 4 {
		t.Fatalf("Siblings(0) = %v", sib)
	}
	if m.Thread(0) != 0 || m.Thread(4) != 1 {
		t.Fatalf("Thread indices = %d,%d", m.Thread(0), m.Thread(4))
	}
	if m.Socket(3) != 0 {
		t.Fatal("single socket machine")
	}
}

func TestE5640Topology(t *testing.T) {
	m := XeonE5640x2()
	if m.NumLogical() != 16 {
		t.Fatalf("E5640 x2 must have 16 logical CPUs (Figure 1), got %d", m.NumLogical())
	}
	if m.Sockets != 2 {
		t.Fatal("two sockets")
	}
	// Cores 0-3 on socket 0, 4-7 on socket 1.
	if m.Socket(0) != 0 || m.Socket(4) != 1 {
		t.Fatalf("sockets of CPU 0/4 = %d/%d", m.Socket(0), m.Socket(4))
	}
	if !m.SameDomain(0, 8, SharedPerCore) {
		t.Fatal("CPU 0 and 8 share core 0")
	}
	if m.SameDomain(0, 4, SharedPerSocket) {
		t.Fatal("CPU 0 (socket 0) and CPU 4 (socket 1) must not share L3")
	}
}

func TestLLC(t *testing.T) {
	if XeonW3550().LLC().Level != 3 {
		t.Fatal("W3550 LLC is L3")
	}
	if Core2().LLC().Level != 2 {
		t.Fatal("Core2 LLC is L2")
	}
	if PPC970().FPAssistPenalty != 0 {
		t.Fatal("PPC970 must have no FP assist pathology (Figure 3 d)")
	}
	if XeonW3550().FPAssistPenalty == 0 {
		t.Fatal("Nehalem must model FP assists")
	}
	if _, ok := XeonW3550().CacheAt(2); !ok {
		t.Fatal("CacheAt(2) missing")
	}
	if _, ok := XeonW3550().CacheAt(9); ok {
		t.Fatal("CacheAt(9) should not exist")
	}
}

func TestW3550SixteenCounters(t *testing.T) {
	// Paper §2.6: "Our Intel Xeon W3550, for example, supports up to
	// sixteen simultaneous events."
	if got := XeonW3550().NumCounters; got != 16 {
		t.Fatalf("W3550 counters = %d, want 16", got)
	}
}

func TestDomains(t *testing.T) {
	m := XeonW3550()
	if m.DomainOf(0, SharedPerThread) == m.DomainOf(4, SharedPerThread) {
		t.Fatal("distinct logical CPUs have distinct thread domains")
	}
	if m.DomainOf(0, SharedPerCore) != m.DomainOf(4, SharedPerCore) {
		t.Fatal("SMT siblings share the core domain")
	}
	if m.DomainOf(0, SharedPerSocket) != m.DomainOf(3, SharedPerSocket) {
		t.Fatal("all cores of one socket share the socket domain")
	}
}

func TestAffinityMask(t *testing.T) {
	var any AffinityMask
	if !any.Allows(5) {
		t.Fatal("empty mask allows everything")
	}
	m := MaskOf(0, 4)
	if !m.Allows(0) || !m.Allows(4) || m.Allows(1) {
		t.Fatal("MaskOf(0,4) semantics")
	}
}

func TestRenderTopology(t *testing.T) {
	s := XeonW3550().RenderTopology()
	for _, want := range []string{"Machine (5965MB)", "Socket#0", "L3 (8192KB)",
		"L2 (256KB)", "L1 (32KB)", "Core#0", "Core#3", "PU#0", "PU#7"} {
		if !strings.Contains(s, want) {
			t.Errorf("topology rendering missing %q:\n%s", want, s)
		}
	}
	// All 8 PUs present.
	if got := strings.Count(s, "PU#"); got != 8 {
		t.Fatalf("PU count = %d, want 8", got)
	}
}

func TestValidateRejectsBadMachines(t *testing.T) {
	base := XeonW3550()
	mutations := []func(m *Machine){
		func(m *Machine) { m.Sockets = 0 },
		func(m *Machine) { m.FreqHz = 0 },
		func(m *Machine) { m.IssueWidth = 0 },
		func(m *Machine) { m.NumCounters = 0 },
		func(m *Machine) { m.Caches = nil },
		func(m *Machine) { m.Caches[0].Level = 7 },
		func(m *Machine) { m.Caches[0].SizeBytes = 0 },
		func(m *Machine) { m.Caches[0].SizeBytes = 1000 },
		func(m *Machine) { m.SMTSlowdown = 0.5 },
	}
	for i, mutate := range mutations {
		m := *base
		m.Caches = append([]CacheLevel(nil), base.Caches...)
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

// Property: every logical CPU's siblings all map to the same physical
// core and include the CPU itself.
func TestPropSiblingsConsistent(t *testing.T) {
	machines := []*Machine{XeonW3550(), XeonE5640x2(), Core2(), PPC970()}
	f := func(pick uint8, cpuRaw uint8) bool {
		m := machines[int(pick)%len(machines)]
		cpu := CPUID(int(cpuRaw) % m.NumLogical())
		sib := m.Siblings(cpu)
		if len(sib) != m.ThreadsPerCore {
			return false
		}
		self := false
		for _, s := range sib {
			if m.Core(s) != m.Core(cpu) {
				return false
			}
			if s == cpu {
				self = true
			}
		}
		return self
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
