package cache

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReuseProfileValidate(t *testing.T) {
	good := TwoLevelProfile(64<<10, 8<<20, 0.7, 0.02)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	bad := []ReuseProfile{
		{ColdFraction: -0.1},
		{ColdFraction: 1.1},
		{Points: []ReusePoint{{DistBytes: -1, CumProb: 0.5}}},
		{Points: []ReusePoint{{DistBytes: 10, CumProb: 1.5}}},
		{Points: []ReusePoint{{DistBytes: 10, CumProb: 0.5}, {DistBytes: 5, CumProb: 0.6}}},
		{Points: []ReusePoint{{DistBytes: 10, CumProb: 0.5}, {DistBytes: 20, CumProb: 0.4}}},
		{Points: []ReusePoint{{DistBytes: 10, CumProb: 0.9}}, ColdFraction: 0.2},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad profile %d accepted", i)
		}
	}
}

func TestMissRatioMonotone(t *testing.T) {
	p := TwoLevelProfile(64<<10, 8<<20, 0.7, 0.02)
	prev := 1.0
	for c := 1.0; c <= 16<<20; c *= 2 {
		m := p.MissRatio(c)
		if m > prev+1e-12 {
			t.Fatalf("miss ratio increased with capacity at %v: %v > %v", c, m, prev)
		}
		if m < 0 || m > 1 {
			t.Fatalf("miss ratio out of range: %v", m)
		}
		prev = m
	}
	// Infinite capacity bottoms out at the cold fraction.
	if got := p.MissRatio(1e18); math.Abs(got-0.02) > 1e-12 {
		t.Fatalf("asymptotic miss ratio = %v, want 0.02", got)
	}
	// Zero capacity misses everything.
	if got := p.MissRatio(0); got != 1 {
		t.Fatalf("zero-capacity miss ratio = %v, want 1", got)
	}
}

func TestUniformProfile(t *testing.T) {
	p := UniformProfile(1<<20, 0.05)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Half the footprint: half the capturable hits.
	got := p.MissRatio(512 << 10)
	want := 1 - 0.95/2
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("MissRatio(half) = %v, want %v", got, want)
	}
	if p.Footprint() != 1<<20 {
		t.Fatalf("Footprint = %v", p.Footprint())
	}
}

func TestEmptyProfile(t *testing.T) {
	var p ReuseProfile
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.MissRatio(1 << 20); got != 1 {
		t.Fatalf("empty profile must always miss, got %v", got)
	}
	if p.Footprint() != 0 {
		t.Fatal("empty footprint")
	}
}

func TestStackDistanceSimpleTrace(t *testing.T) {
	// Trace: A B A -> A's reuse needs 2 lines (B was touched between).
	const line = 64
	trace := []uint64{0, 64, 0}
	p := StackDistance(trace, line)
	if math.Abs(p.ColdFraction-2.0/3) > 1e-12 {
		t.Fatalf("cold fraction = %v, want 2/3", p.ColdFraction)
	}
	if len(p.Points) != 1 {
		t.Fatalf("points = %v", p.Points)
	}
	if p.Points[0].DistBytes != 2*line {
		t.Fatalf("distance = %v, want %d", p.Points[0].DistBytes, 2*line)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStackDistanceEmpty(t *testing.T) {
	p := StackDistance(nil, 64)
	if len(p.Points) != 0 || p.ColdFraction != 0 {
		t.Fatalf("empty trace profile = %+v", p)
	}
}

// Cross-validation: the analytic model fed with the exact stack-distance
// profile of a trace must predict the same miss count as a
// fully-associative LRU simulator of the same capacity run over that
// trace. This is the theorem the phase-model simulation rests on.
func TestAnalyticMatchesExactFullyAssociative(t *testing.T) {
	const line = 64
	rng := rand.New(rand.NewSource(7))
	// A trace with a hot set (16 lines) and a cold tail (256 lines).
	var trace []uint64
	for i := 0; i < 4000; i++ {
		if rng.Intn(100) < 75 {
			trace = append(trace, uint64(rng.Intn(16))*line)
		} else {
			trace = append(trace, uint64(16+rng.Intn(256))*line)
		}
	}
	profile := StackDistance(trace, line)
	if err := profile.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, ways := range []int{4, 16, 64} {
		sim, err := NewSetAssoc(int64(ways*line), ways, line) // 1 set => fully associative
		if err != nil {
			t.Fatal(err)
		}
		var misses int
		for _, a := range trace {
			if !sim.Access(a) {
				misses++
			}
		}
		gotRatio := float64(misses) / float64(len(trace))
		wantRatio := profile.MissRatio(float64(ways * line))
		// The analytic CDF uses <= capacity; the simulator hits when
		// distance <= ways. They agree exactly at line-multiple
		// capacities.
		if math.Abs(gotRatio-wantRatio) > 1e-9 {
			t.Fatalf("ways=%d: exact %v vs analytic %v", ways, gotRatio, wantRatio)
		}
	}
}

// Property: StackDistance always yields a valid profile, and its
// predicted miss ratio at infinite capacity equals the cold-miss
// fraction.
func TestPropStackDistanceValid(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		trace := make([]uint64, int(n)+1)
		for i := range trace {
			trace[i] = uint64(rng.Intn(64)) * 64
		}
		p := StackDistance(trace, 64)
		if p.Validate() != nil {
			return false
		}
		inf := p.MissRatio(1e18)
		return math.Abs(inf-p.ColdFraction) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
