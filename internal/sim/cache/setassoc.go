// Package cache implements the memory-hierarchy substrate of the machine
// simulator. It provides two complementary models:
//
//   - an exact set-associative LRU cache simulator (SetAssoc), driven
//     address by address by the micro-kernel VM;
//   - an analytic model based on reuse-distance profiles and miss-rate
//     curves (ReuseProfile), used by the coarse-grain phase workloads,
//     together with a fixed-point capacity-sharing model that predicts how
//     co-running processes divide a shared last-level cache — the
//     mechanism behind the paper's §3.4 interference study.
package cache

import (
	"fmt"
)

// SetAssoc is an exact set-associative cache with true-LRU replacement.
// It models a single cache instance; the ukernel VM stacks several to
// form a hierarchy.
type SetAssoc struct {
	sizeBytes int64
	lineBytes int
	assoc     int
	numSets   int

	// sets[s] holds the tags resident in set s in LRU order:
	// sets[s][0] is the most recently used way.
	sets [][]uint64

	accesses uint64
	misses   uint64
}

// NewSetAssoc builds a cache of the given geometry. sizeBytes must be a
// multiple of assoc*lineBytes and the resulting set count must be a power
// of two (as in real hardware).
func NewSetAssoc(sizeBytes int64, assoc, lineBytes int) (*SetAssoc, error) {
	if sizeBytes <= 0 || assoc <= 0 || lineBytes <= 0 {
		return nil, fmt.Errorf("cache: non-positive geometry (%d,%d,%d)", sizeBytes, assoc, lineBytes)
	}
	if sizeBytes%int64(assoc*lineBytes) != 0 {
		return nil, fmt.Errorf("cache: size %d not divisible by assoc*line %d", sizeBytes, assoc*lineBytes)
	}
	numSets := int(sizeBytes / int64(assoc*lineBytes))
	if numSets&(numSets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d is not a power of two", numSets)
	}
	c := &SetAssoc{
		sizeBytes: sizeBytes,
		lineBytes: lineBytes,
		assoc:     assoc,
		numSets:   numSets,
		sets:      make([][]uint64, numSets),
	}
	return c, nil
}

// SizeBytes returns the cache capacity.
func (c *SetAssoc) SizeBytes() int64 { return c.sizeBytes }

// LineBytes returns the line size.
func (c *SetAssoc) LineBytes() int { return c.lineBytes }

// Assoc returns the associativity.
func (c *SetAssoc) Assoc() int { return c.assoc }

// NumSets returns the number of sets.
func (c *SetAssoc) NumSets() int { return c.numSets }

// Access touches the byte address and returns true on a hit. On a miss
// the line is installed, evicting the LRU way if the set is full.
func (c *SetAssoc) Access(addr uint64) bool {
	c.accesses++
	line := addr / uint64(c.lineBytes)
	set := int(line % uint64(c.numSets))
	ways := c.sets[set]
	for i, tag := range ways {
		if tag == line {
			// Hit: move to MRU position.
			copy(ways[1:i+1], ways[:i])
			ways[0] = line
			return true
		}
	}
	c.misses++
	if len(ways) < c.assoc {
		ways = append(ways, 0)
	}
	copy(ways[1:], ways)
	ways[0] = line
	c.sets[set] = ways
	return false
}

// Contains reports whether the line holding addr is resident, without
// touching LRU state.
func (c *SetAssoc) Contains(addr uint64) bool {
	line := addr / uint64(c.lineBytes)
	set := int(line % uint64(c.numSets))
	for _, tag := range c.sets[set] {
		if tag == line {
			return true
		}
	}
	return false
}

// Stats returns cumulative accesses and misses.
func (c *SetAssoc) Stats() (accesses, misses uint64) {
	return c.accesses, c.misses
}

// MissRatio returns misses/accesses, or 0 before any access.
func (c *SetAssoc) MissRatio() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// Reset empties the cache and clears statistics.
func (c *SetAssoc) Reset() {
	for i := range c.sets {
		c.sets[i] = nil
	}
	c.accesses, c.misses = 0, 0
}

// ResetStats clears counters but keeps cache contents (used to measure
// steady-state miss ratios after warm-up).
func (c *SetAssoc) ResetStats() { c.accesses, c.misses = 0, 0 }

// Hierarchy chains private cache levels: an access that misses level i is
// forwarded to level i+1. It returns per-level miss indications so the VM
// can charge latencies.
type Hierarchy struct {
	Levels []*SetAssoc
}

// NewHierarchy builds a hierarchy from inner (L1) to outer (LLC).
func NewHierarchy(levels ...*SetAssoc) *Hierarchy {
	return &Hierarchy{Levels: levels}
}

// Access walks the hierarchy. It returns the deepest level that hit:
// 0 means L1 hit, len(Levels) means a miss in every level (memory
// access). Lines are installed in every level that missed (inclusive
// hierarchy).
func (h *Hierarchy) Access(addr uint64) int {
	for i, c := range h.Levels {
		if c.Access(addr) {
			return i
		}
	}
	return len(h.Levels)
}

// MissesAt returns the cumulative miss count of level i (0-based).
func (h *Hierarchy) MissesAt(i int) uint64 {
	_, m := h.Levels[i].Stats()
	return m
}

// Reset clears all levels.
func (h *Hierarchy) Reset() {
	for _, c := range h.Levels {
		c.Reset()
	}
}
