package cache

import (
	"fmt"
	"math"
	"sort"
)

// ReuseProfile is a compact description of a workload's temporal
// locality: the cumulative distribution of LRU stack distances of its
// memory references, measured in bytes. By the classic stack-distance
// property, a reference hits in a fully-associative LRU cache of capacity
// C exactly when its stack distance is below C, so the miss-rate curve of
// the workload is
//
//	miss(C) = 1 - CDF(C).
//
// Points must be sorted by ascending distance with non-decreasing
// cumulative probability. A final ColdFraction accounts for compulsory
// (infinite-distance) misses that no cache capacity can remove.
type ReuseProfile struct {
	Points       []ReusePoint
	ColdFraction float64 // fraction of references that always miss
	// Step selects exact step-function CDF semantics (a reference with
	// stack distance d hits iff d <= capacity, no interpolation).
	// Profiles measured by StackDistance use it; hand-written catalog
	// profiles keep the default smooth interpolation between points.
	Step bool
}

// ReusePoint is one point of the reuse CDF: CumProb of all references
// have stack distance <= DistBytes.
type ReusePoint struct {
	DistBytes float64
	CumProb   float64
}

// Validate checks monotonicity and range invariants.
func (p *ReuseProfile) Validate() error {
	if p.ColdFraction < 0 || p.ColdFraction > 1 {
		return fmt.Errorf("cache: cold fraction %v out of [0,1]", p.ColdFraction)
	}
	prevD, prevP := -1.0, 0.0
	for i, pt := range p.Points {
		if pt.DistBytes < 0 || math.IsNaN(pt.DistBytes) {
			return fmt.Errorf("cache: point %d has negative distance", i)
		}
		if pt.CumProb < 0 || pt.CumProb > 1 || math.IsNaN(pt.CumProb) {
			return fmt.Errorf("cache: point %d has probability %v out of [0,1]", i, pt.CumProb)
		}
		if pt.DistBytes <= prevD {
			return fmt.Errorf("cache: point %d distance not increasing", i)
		}
		if pt.CumProb < prevP {
			return fmt.Errorf("cache: point %d probability decreasing", i)
		}
		prevD, prevP = pt.DistBytes, pt.CumProb
	}
	if len(p.Points) > 0 {
		last := p.Points[len(p.Points)-1].CumProb
		if last+p.ColdFraction > 1+1e-9 {
			return fmt.Errorf("cache: CDF max %v plus cold %v exceeds 1", last, p.ColdFraction)
		}
	}
	return nil
}

// cdf returns the fraction of references with stack distance <= c bytes,
// with linear interpolation between points (or exact steps when Step is
// set).
func (p *ReuseProfile) cdf(c float64) float64 {
	if len(p.Points) == 0 {
		return 0
	}
	if c <= 0 {
		return 0
	}
	pts := p.Points
	if c >= pts[len(pts)-1].DistBytes {
		return pts[len(pts)-1].CumProb
	}
	i := sort.Search(len(pts), func(i int) bool { return pts[i].DistBytes >= c })
	if p.Step {
		// Exact semantics: count every point with distance <= c.
		if i < len(pts) && pts[i].DistBytes == c {
			return pts[i].CumProb
		}
		if i == 0 {
			return 0
		}
		return pts[i-1].CumProb
	}
	if i == 0 {
		// Interpolate from the origin (distance 0, probability 0).
		return pts[0].CumProb * c / pts[0].DistBytes
	}
	a, b := pts[i-1], pts[i]
	frac := (c - a.DistBytes) / (b.DistBytes - a.DistBytes)
	return a.CumProb + frac*(b.CumProb-a.CumProb)
}

// MissRatio returns the predicted miss ratio of the workload in an LRU
// cache of capacityBytes. It is monotonically non-increasing in capacity
// and never drops below ColdFraction.
func (p *ReuseProfile) MissRatio(capacityBytes float64) float64 {
	hit := p.cdf(capacityBytes)
	miss := 1 - hit
	if miss < p.ColdFraction {
		miss = p.ColdFraction
	}
	if miss < 0 {
		miss = 0
	}
	if miss > 1 {
		miss = 1
	}
	return miss
}

// Footprint returns the total data footprint: the distance beyond which
// extra capacity no longer helps (the largest profile point).
func (p *ReuseProfile) Footprint() float64 {
	if len(p.Points) == 0 {
		return 0
	}
	return p.Points[len(p.Points)-1].DistBytes
}

// UniformProfile builds a simple working-set profile: hits grow linearly
// with capacity until the footprint is covered, at which point the miss
// ratio bottoms out at cold. Handy for synthetic workloads and tests.
func UniformProfile(footprintBytes float64, cold float64) ReuseProfile {
	return ReuseProfile{
		Points: []ReusePoint{
			{DistBytes: footprintBytes, CumProb: 1 - cold},
		},
		ColdFraction: cold,
	}
}

// TwoLevelProfile models the common "hot working set + large cold
// footprint" shape: hotProb of references hit once hotBytes fit, and the
// remainder require fullBytes. 429.mcf's pointer-chasing behaviour is
// approximated this way.
func TwoLevelProfile(hotBytes, fullBytes, hotProb, cold float64) ReuseProfile {
	return ReuseProfile{
		Points: []ReusePoint{
			{DistBytes: hotBytes, CumProb: hotProb},
			{DistBytes: fullBytes, CumProb: 1 - cold},
		},
		ColdFraction: cold,
	}
}

// StackDistance computes the exact LRU stack-distance histogram of an
// address trace at line granularity. It returns a ReuseProfile (distances
// converted to bytes) suitable for the analytic model, enabling
// cross-validation between the exact and analytic cache models. The
// implementation maintains the LRU stack as a slice; complexity is
// O(n * distinct lines), fine for the trace sizes used in tests.
func StackDistance(addrs []uint64, lineBytes int) ReuseProfile {
	type stackEntry = uint64
	var stack []stackEntry // stack[0] is MRU
	distCount := make(map[int]int)
	cold := 0
	for _, a := range addrs {
		line := a / uint64(lineBytes)
		found := -1
		for i, l := range stack {
			if l == line {
				found = i
				break
			}
		}
		if found < 0 {
			cold++
			stack = append(stack, 0)
			copy(stack[1:], stack)
			stack[0] = line
			continue
		}
		distCount[found+1]++ // lines needed to hold this reuse
		copy(stack[1:found+1], stack[:found])
		stack[0] = line
	}
	total := len(addrs)
	if total == 0 {
		return ReuseProfile{}
	}
	dists := make([]int, 0, len(distCount))
	for d := range distCount {
		dists = append(dists, d)
	}
	sort.Ints(dists)
	var pts []ReusePoint
	cum := 0.0
	for _, d := range dists {
		cum += float64(distCount[d]) / float64(total)
		pts = append(pts, ReusePoint{
			DistBytes: float64(d * lineBytes),
			CumProb:   cum,
		})
	}
	return ReuseProfile{
		Points:       pts,
		ColdFraction: float64(cold) / float64(total),
		Step:         true,
	}
}
