package cache

import (
	"math"
	"testing"
	"testing/quick"
)

func TestShareCapacitySingle(t *testing.T) {
	shares := ShareCapacity(8<<20, []Sharer{
		{RefRate: 1e9, Profile: TwoLevelProfile(1<<20, 16<<20, 0.6, 0.01)},
	})
	if len(shares) != 1 || shares[0] != 8<<20 {
		t.Fatalf("single sharer gets whole cache, got %v", shares)
	}
}

func TestShareCapacityEmpty(t *testing.T) {
	if got := ShareCapacity(8<<20, nil); len(got) != 0 {
		t.Fatalf("empty sharers = %v", got)
	}
	got := ShareCapacity(0, []Sharer{{RefRate: 1, Profile: UniformProfile(1, 0)}})
	if got[0] != 0 {
		t.Fatal("zero capacity yields zero shares")
	}
}

func TestShareCapacitySymmetric(t *testing.T) {
	// Two identical sharers split the cache evenly.
	p := TwoLevelProfile(1<<20, 16<<20, 0.6, 0.01)
	shares := ShareCapacity(8<<20, []Sharer{
		{RefRate: 1e9, Profile: p},
		{RefRate: 1e9, Profile: p},
	})
	if math.Abs(shares[0]-shares[1]) > 1 {
		t.Fatalf("symmetric sharers should split evenly: %v", shares)
	}
	if math.Abs(shares[0]+shares[1]-8<<20) > 1 {
		t.Fatalf("shares must sum to capacity: %v", shares)
	}
}

func TestShareCapacityAggressorWins(t *testing.T) {
	// A high-rate, cache-hungry process takes more than a quiet one.
	hungry := Sharer{RefRate: 5e9, Profile: TwoLevelProfile(6<<20, 64<<20, 0.5, 0.05)}
	quiet := Sharer{RefRate: 1e8, Profile: TwoLevelProfile(256<<10, 1<<20, 0.95, 0.01)}
	shares := ShareCapacity(8<<20, []Sharer{hungry, quiet})
	if shares[0] <= shares[1] {
		t.Fatalf("aggressor should hold more capacity: %v", shares)
	}
}

func TestSharedMissRatiosDegradeWithCompany(t *testing.T) {
	// The §3.4 experiment in miniature: each extra copy of a
	// memory-hungry workload raises everyone's miss ratio.
	mcf := Sharer{RefRate: 2e9, Profile: TwoLevelProfile(2<<20, 100<<20, 0.55, 0.08)}
	var prev float64
	for copies := 1; copies <= 3; copies++ {
		sharers := make([]Sharer, copies)
		for i := range sharers {
			sharers[i] = mcf
		}
		ratios := SharedMissRatios(8<<20, sharers)
		if copies > 1 && ratios[0] <= prev {
			t.Fatalf("%d copies: miss ratio %v did not increase over %v",
				copies, ratios[0], prev)
		}
		prev = ratios[0]
	}
}

// Property: shares are non-negative and sum to the capacity for arbitrary
// sharer populations.
func TestPropSharesSumToCapacity(t *testing.T) {
	f := func(rates []uint32, hotKB []uint16) bool {
		n := len(rates)
		if len(hotKB) < n {
			n = len(hotKB)
		}
		if n == 0 {
			return true
		}
		if n > 6 {
			n = 6
		}
		const capacity = 8 << 20
		sharers := make([]Sharer, n)
		for i := 0; i < n; i++ {
			rate := float64(rates[i]%1000+1) * 1e6
			hot := float64(hotKB[i]%8192+64) * 1024
			sharers[i] = Sharer{
				RefRate: rate,
				Profile: TwoLevelProfile(hot, hot*16, 0.7, 0.02),
			}
		}
		shares := ShareCapacity(capacity, sharers)
		var sum float64
		for _, s := range shares {
			if s < 0 {
				return false
			}
			sum += s
		}
		return math.Abs(sum-capacity) < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding an identical competitor never increases my equilibrium
// share.
func TestPropMoreSharersLessCapacity(t *testing.T) {
	f := func(rate uint32, hotKB uint16, extra uint8) bool {
		base := Sharer{
			RefRate: float64(rate%1000+1) * 1e6,
			Profile: TwoLevelProfile(float64(hotKB%4096+64)*1024, 64<<20, 0.7, 0.02),
		}
		const capacity = 8 << 20
		prev := math.Inf(1)
		for n := 1; n <= int(extra%4)+2; n++ {
			sharers := make([]Sharer, n)
			for i := range sharers {
				sharers[i] = base
			}
			share := ShareCapacity(capacity, sharers)[0]
			if share > prev+1 {
				return false
			}
			prev = share
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
