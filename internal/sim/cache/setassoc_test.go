package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustCache(t *testing.T, size int64, assoc, line int) *SetAssoc {
	t.Helper()
	c, err := NewSetAssoc(size, assoc, line)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewSetAssocGeometry(t *testing.T) {
	c := mustCache(t, 32<<10, 8, 64)
	if c.NumSets() != 64 {
		t.Fatalf("NumSets = %d, want 64", c.NumSets())
	}
	if c.SizeBytes() != 32<<10 || c.Assoc() != 8 || c.LineBytes() != 64 {
		t.Fatal("geometry accessors wrong")
	}
}

func TestNewSetAssocErrors(t *testing.T) {
	cases := []struct {
		size        int64
		assoc, line int
	}{
		{0, 8, 64},
		{-64, 8, 64},
		{1024, 0, 64},
		{1024, 8, 0},
		{1000, 8, 64},       // not divisible
		{3 * 8 * 64, 8, 64}, // 3 sets: not a power of two
	}
	for _, c := range cases {
		if _, err := NewSetAssoc(c.size, c.assoc, c.line); err == nil {
			t.Errorf("NewSetAssoc(%d,%d,%d) should fail", c.size, c.assoc, c.line)
		}
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := mustCache(t, 1024, 2, 64)
	if c.Access(0) {
		t.Fatal("first access must miss")
	}
	if !c.Access(0) {
		t.Fatal("second access must hit")
	}
	if !c.Access(63) {
		t.Fatal("same line must hit")
	}
	if c.Access(64) {
		t.Fatal("next line must miss")
	}
	acc, miss := c.Stats()
	if acc != 4 || miss != 2 {
		t.Fatalf("stats = %d/%d, want 4/2", acc, miss)
	}
	if got := c.MissRatio(); got != 0.5 {
		t.Fatalf("MissRatio = %v", got)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way, line 64, 2 sets -> size 256. Lines 0,2,4 map to set 0.
	c := mustCache(t, 256, 2, 64)
	addr := func(line int) uint64 { return uint64(line * 64) }
	c.Access(addr(0)) // set0: [0]
	c.Access(addr(2)) // set0: [2,0]
	c.Access(addr(0)) // hit, set0: [0,2]
	c.Access(addr(4)) // evicts LRU=2, set0: [4,0]
	if c.Contains(addr(2)) {
		t.Fatal("line 2 should have been evicted (LRU)")
	}
	if !c.Contains(addr(0)) || !c.Contains(addr(4)) {
		t.Fatal("lines 0 and 4 should be resident")
	}
	if !c.Access(addr(0)) {
		t.Fatal("line 0 must still hit")
	}
}

func TestContainsDoesNotTouchLRU(t *testing.T) {
	c := mustCache(t, 256, 2, 64)
	addr := func(line int) uint64 { return uint64(line * 64) }
	c.Access(addr(0))
	c.Access(addr(2)) // LRU order: [2,0]
	// Peek at 0 (would make it MRU if Contains touched LRU state).
	if !c.Contains(addr(0)) {
		t.Fatal("0 resident")
	}
	c.Access(addr(4)) // must evict 0 (true LRU), not 2
	if c.Contains(addr(0)) {
		t.Fatal("Contains must not refresh LRU position")
	}
	if !c.Contains(addr(2)) {
		t.Fatal("2 should survive")
	}
}

func TestWorkingSetFitsHasOnlyColdMisses(t *testing.T) {
	c := mustCache(t, 32<<10, 8, 64)
	// 16 KB working set, swept 10 times.
	lines := 16 * 1024 / 64
	for pass := 0; pass < 10; pass++ {
		for l := 0; l < lines; l++ {
			c.Access(uint64(l * 64))
		}
	}
	acc, miss := c.Stats()
	if acc != uint64(10*lines) {
		t.Fatalf("accesses = %d", acc)
	}
	if miss != uint64(lines) {
		t.Fatalf("misses = %d, want %d cold misses only", miss, lines)
	}
}

func TestThrashingSweepMissesEverywhere(t *testing.T) {
	// A cyclic sweep of 2x the cache size under LRU misses on every
	// access after warm-up (the classic LRU pathological case).
	c := mustCache(t, 1<<10, 2, 64) // 1 KB, 8 sets
	lines := 2 * (1 << 10) / 64     // 32 lines
	for pass := 0; pass < 3; pass++ {
		for l := 0; l < lines; l++ {
			c.Access(uint64(l * 64))
		}
	}
	c.ResetStats()
	for pass := 0; pass < 3; pass++ {
		for l := 0; l < lines; l++ {
			c.Access(uint64(l * 64))
		}
	}
	if got := c.MissRatio(); got != 1 {
		t.Fatalf("steady-state cyclic sweep miss ratio = %v, want 1", got)
	}
}

func TestResetAndResetStats(t *testing.T) {
	c := mustCache(t, 1024, 2, 64)
	c.Access(0)
	c.Access(0)
	c.ResetStats()
	acc, miss := c.Stats()
	if acc != 0 || miss != 0 {
		t.Fatal("ResetStats must clear counters")
	}
	if !c.Access(0) {
		t.Fatal("contents must survive ResetStats")
	}
	c.Reset()
	if c.Contains(0) {
		t.Fatal("Reset must clear contents")
	}
}

func TestHierarchyInclusive(t *testing.T) {
	l1 := mustCache(t, 256, 2, 64)  // 2 sets
	l2 := mustCache(t, 2048, 2, 64) // 16 sets: lines 0..16 conflict-free except 0 vs 16
	h := NewHierarchy(l1, l2)
	// First access: misses everywhere.
	if lvl := h.Access(0); lvl != 2 {
		t.Fatalf("cold access level = %d, want 2 (memory)", lvl)
	}
	// Immediately again: L1 hit.
	if lvl := h.Access(0); lvl != 0 {
		t.Fatalf("hot access level = %d, want 0", lvl)
	}
	// Evict from tiny L1 by touching conflicting lines, then access
	// again: should hit in L2.
	h.Access(256)  // set 0 of L1 (4 sets? 256B/2way/64B = 2 sets); line 4 -> set 0
	h.Access(512)  // line 8 -> set 0, evicts line 0 from L1
	h.Access(1024) // line 16 -> set 0
	if lvl := h.Access(0); lvl != 1 {
		t.Fatalf("L2 hit level = %d, want 1", lvl)
	}
	if h.MissesAt(0) == 0 || h.MissesAt(1) == 0 {
		t.Fatal("miss counters must be populated")
	}
	h.Reset()
	if lvl := h.Access(0); lvl != 2 {
		t.Fatal("Reset must clear hierarchy")
	}
}

// Property: miss count never exceeds access count and hit+miss accounting
// is exact under random access streams.
func TestPropStatsAccounting(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c, err := NewSetAssoc(4<<10, 4, 64)
		if err != nil {
			return false
		}
		hits := 0
		total := int(n) + 1
		for i := 0; i < total; i++ {
			if c.Access(uint64(rng.Intn(1 << 14))) {
				hits++
			}
		}
		acc, miss := c.Stats()
		return acc == uint64(total) && miss == uint64(total-hits)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a fully-associative SetAssoc (one set) agrees exactly with
// the reference stack-distance computation: an access hits iff its stack
// distance (in lines) is <= associativity.
func TestPropFullyAssocMatchesStackDistance(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		const assoc, line = 8, 64
		rng := rand.New(rand.NewSource(seed))
		c, err := NewSetAssoc(assoc*line, assoc, line)
		if err != nil || c.NumSets() != 1 {
			return false
		}
		// Reference LRU stack.
		var stack []uint64
		for i := 0; i <= int(n); i++ {
			a := uint64(rng.Intn(32)) * line
			ln := a / line
			// Compute reference expectation.
			pos := -1
			for j, l := range stack {
				if l == ln {
					pos = j
					break
				}
			}
			wantHit := pos >= 0 && pos < assoc
			// Update reference stack.
			if pos >= 0 {
				stack = append(stack[:pos], stack[pos+1:]...)
			}
			stack = append([]uint64{ln}, stack...)
			if got := c.Access(a); got != wantHit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
