package cache

import "math"

// Sharer describes one process competing for a shared cache: its memory
// reference rate (references per second into this cache level) and its
// reuse profile. The contention model predicts how much effective
// capacity each sharer obtains.
type Sharer struct {
	RefRate float64 // references/second arriving at the shared cache
	Profile ReuseProfile
}

// ShareCapacity computes the steady-state partition of a shared LRU cache
// of capacityBytes among competing processes. It implements the classic
// insertion-pressure fixed point (Suh/Rudolph-style): in steady state a
// process's occupancy is proportional to the rate at which it inserts new
// lines, which is its reference rate times its miss ratio at its current
// occupancy:
//
//	c_i = C * (r_i * m_i(c_i)) / sum_j (r_j * m_j(c_j))
//
// The fixed point is found by damped iteration. The function returns the
// per-sharer effective capacities, which always sum to capacityBytes
// (up to floating-point error). A single sharer receives the whole cache.
//
// This model is what produces the paper's §3.4 behaviour: co-running
// copies of a memory-hungry process squeeze each other's share of the
// 8 MB L3, raising every copy's miss ratio and lowering its IPC, while
// CPU usage stays at 100 %.
func ShareCapacity(capacityBytes float64, sharers []Sharer) []float64 {
	n := len(sharers)
	out := make([]float64, n)
	if n == 0 || capacityBytes <= 0 {
		return out
	}
	if n == 1 {
		out[0] = capacityBytes
		return out
	}
	// Start from an even split.
	for i := range out {
		out[i] = capacityBytes / float64(n)
	}
	const (
		iterations = 200
		damping    = 0.5
	)
	pressure := make([]float64, n)
	for it := 0; it < iterations; it++ {
		var total float64
		for i, s := range sharers {
			p := s.RefRate * s.Profile.MissRatio(out[i])
			// A process that never misses exerts minimal but
			// non-zero pressure: it still occupies its resident
			// working set. The epsilon keeps the fixed point from
			// starving fully cache-resident processes.
			if p < 1e-9 {
				p = 1e-9
			}
			pressure[i] = p
			total += p
		}
		maxDelta := 0.0
		for i := range out {
			target := capacityBytes * pressure[i] / total
			next := out[i] + damping*(target-out[i])
			if d := math.Abs(next - out[i]); d > maxDelta {
				maxDelta = d
			}
			out[i] = next
		}
		if maxDelta < capacityBytes*1e-9 {
			break
		}
	}
	// Normalize exactly.
	var sum float64
	for _, c := range out {
		sum += c
	}
	if sum > 0 {
		for i := range out {
			out[i] *= capacityBytes / sum
		}
	}
	return out
}

// SharedMissRatios is a convenience wrapper: it returns each sharer's
// miss ratio at its equilibrium share of the cache.
func SharedMissRatios(capacityBytes float64, sharers []Sharer) []float64 {
	shares := ShareCapacity(capacityBytes, sharers)
	out := make([]float64, len(sharers))
	for i, s := range sharers {
		out[i] = s.Profile.MissRatio(shares[i])
	}
	return out
}
