// Package workload defines the workload model of the machine simulator: a
// program is a sequence of phases, each with an instruction budget and the
// execution characteristics the cpu timing model consumes. Instances of a
// workload are executed by the scheduler in cycle-budgeted quanta and
// produce architectural event deltas for the virtual PMU.
//
// The catalog in catalog.go provides calibrated models of every program
// in the paper's evaluation: the SPEC CPU2006 subset of Figures 6–9, the
// R evolutionary algorithm of Figure 3, and the synthetic data-center
// jobs of Figures 1 and 10.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"tiptop/internal/sim/cache"
	"tiptop/internal/sim/cpu"
)

// Phase is one execution phase of a workload.
type Phase struct {
	Name string
	// Instructions is the phase length in retired instructions.
	Instructions uint64
	// Params drive the timing model for the phase.
	Params cpu.PhaseParams
	// NoiseAmp is the relative amplitude of the per-quantum CPI noise
	// (0.03 means +-3 % uniform noise), modelling the run-to-run and
	// sample-to-sample variability visible in all the paper's plots.
	NoiseAmp float64
}

// Workload is an immutable program description.
type Workload struct {
	Name   string
	Phases []Phase
}

// Validate checks every phase.
func (w *Workload) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("workload: empty name")
	}
	if len(w.Phases) == 0 {
		return fmt.Errorf("workload %q: no phases", w.Name)
	}
	for i := range w.Phases {
		p := &w.Phases[i]
		if p.Instructions == 0 {
			return fmt.Errorf("workload %q phase %d: zero instructions", w.Name, i)
		}
		if p.NoiseAmp < 0 || p.NoiseAmp >= 1 {
			return fmt.Errorf("workload %q phase %d: noise %v out of [0,1)", w.Name, i, p.NoiseAmp)
		}
		if err := p.Params.Validate(); err != nil {
			return fmt.Errorf("workload %q phase %d: %w", w.Name, i, err)
		}
	}
	return nil
}

// TotalInstructions returns the workload length.
func (w *Workload) TotalInstructions() uint64 {
	var sum uint64
	for _, p := range w.Phases {
		sum += p.Instructions
	}
	return sum
}

// Runner is the scheduler's view of an executable entity: given an
// execution context and a cycle budget for the quantum, it advances and
// reports the architectural events produced. Both phase-model instances
// (this package) and micro-kernel VM adapters (internal/ukernel)
// implement it.
type Runner interface {
	// Name identifies the program (the COMMAND column).
	Name() string
	// Done reports whether the program has exited.
	Done() bool
	// Exec consumes up to budgetCycles cycles in ctx and returns the
	// events produced. Implementations must make progress whenever
	// budgetCycles > 0 and Done() is false, and must not exceed the
	// budget by more than one instruction's worth of cycles.
	Exec(ctx cpu.Context, budgetCycles uint64) cpu.Delta
}

// Instance is a running execution of a Workload. It is not safe for
// concurrent use; the simulated scheduler runs tasks sequentially.
type Instance struct {
	w        *Workload
	phaseIdx int
	phasePos uint64 // instructions completed inside current phase
	rng      *rand.Rand
	// runBias is a per-execution CPI factor modelling run-to-run
	// variability from layout and environment effects (Mytkowicz et
	// al.; the paper measures 1.4 % across SPEC runs). It is drawn
	// once per instance and only for noisy workloads.
	runBias float64
	acc     cpu.Accumulator
	total   cpu.Delta
}

// NewInstance creates a deterministic instance; equal seeds replay
// identical executions.
func NewInstance(w *Workload, seed int64) (*Instance, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	in := &Instance{w: w, rng: rand.New(rand.NewSource(seed)), runBias: 1}
	var maxNoise float64
	for _, p := range w.Phases {
		if p.NoiseAmp > maxNoise {
			maxNoise = p.NoiseAmp
		}
	}
	if maxNoise > 0 {
		amp := maxNoise / 6
		if amp > 0.015 {
			amp = 0.015
		}
		in.runBias = 1 + amp*(2*in.rng.Float64()-1)
	}
	return in, nil
}

// MustInstance is NewInstance panicking on invalid workloads, for the
// static catalog.
func MustInstance(w *Workload, seed int64) *Instance {
	in, err := NewInstance(w, seed)
	if err != nil {
		panic(err)
	}
	return in
}

// Name implements Runner.
func (in *Instance) Name() string { return in.w.Name }

// Workload returns the underlying program description.
func (in *Instance) Workload() *Workload { return in.w }

// Done implements Runner.
func (in *Instance) Done() bool { return in.phaseIdx >= len(in.w.Phases) }

// Progress returns completed and total instruction counts.
func (in *Instance) Progress() (done, total uint64) {
	total = in.w.TotalInstructions()
	for i := 0; i < in.phaseIdx && i < len(in.w.Phases); i++ {
		done += in.w.Phases[i].Instructions
	}
	done += in.phasePos
	return done, total
}

// Totals returns the cumulative architectural events of the instance.
func (in *Instance) Totals() cpu.Delta { return in.total }

// CurrentPhase returns the name of the phase in progress, or "" when the
// instance has finished.
func (in *Instance) CurrentPhase() string {
	if in.Done() {
		return ""
	}
	return in.w.Phases[in.phaseIdx].Name
}

// Exec implements Runner. It walks phases, splitting the cycle budget at
// phase boundaries, and applies per-quantum CPI noise.
func (in *Instance) Exec(ctx cpu.Context, budgetCycles uint64) cpu.Delta {
	var out cpu.Delta
	remaining := float64(budgetCycles)
	for remaining > 0 && !in.Done() {
		ph := &in.w.Phases[in.phaseIdx]
		res := cpu.Evaluate(ph.Params, ctx)
		cpi := res.CPI * in.runBias
		if ph.NoiseAmp > 0 {
			cpi *= 1 + ph.NoiseAmp*(2*in.rng.Float64()-1)
		}
		phaseLeft := ph.Instructions - in.phasePos
		// How many instructions fit in the remaining budget?
		fit := uint64(remaining / cpi)
		if fit == 0 {
			// Budget smaller than one instruction: consume it as
			// stall cycles so the quantum still advances time.
			out.Cycles += uint64(math.Ceil(remaining))
			remaining = 0
			break
		}
		instr := fit
		if instr > phaseLeft {
			instr = phaseLeft
		}
		cycles := uint64(float64(instr) * cpi)
		if cycles == 0 {
			cycles = 1
		}
		d := cpu.Emit(res, instr, cycles, &in.acc)
		out.Add(d)
		remaining -= float64(cycles)
		in.phasePos += instr
		if in.phasePos >= ph.Instructions {
			in.phaseIdx++
			in.phasePos = 0
		}
	}
	in.total.Add(out)
	return out
}

// Spin is a Runner that never finishes: it repeats a single phase
// forever. It models long-running daemon-style jobs in the data-center
// scenarios.
type Spin struct {
	inner *Instance
	proto *Workload
	seed  int64
}

// NewSpin builds an endless runner from a single-phase prototype.
func NewSpin(w *Workload, seed int64) (*Spin, error) {
	inner, err := NewInstance(w, seed)
	if err != nil {
		return nil, err
	}
	return &Spin{inner: inner, proto: w, seed: seed}, nil
}

// Name implements Runner.
func (s *Spin) Name() string { return s.proto.Name }

// Done implements Runner; a Spin never completes.
func (s *Spin) Done() bool { return false }

// Exec implements Runner, restarting the underlying instance whenever it
// drains.
func (s *Spin) Exec(ctx cpu.Context, budgetCycles uint64) cpu.Delta {
	var out cpu.Delta
	budget := budgetCycles
	for budget > 0 {
		d := s.inner.Exec(ctx, budget)
		out.Add(d)
		if d.Cycles >= budget {
			break
		}
		budget -= d.Cycles
		if s.inner.Done() {
			s.seed++
			s.inner = MustInstance(s.proto, s.seed)
		}
	}
	return out
}

// Reuse returns the locality profile of the phase currently executing.
// The scheduler's shared-cache contention model calls it each quantum.
// A finished instance reports an empty profile (it exerts no pressure).
func (in *Instance) Reuse() cache.ReuseProfile {
	if in.Done() {
		return cache.ReuseProfile{}
	}
	return in.w.Phases[in.phaseIdx].Params.Reuse
}

// Reuse returns the current locality profile of the looping workload.
func (s *Spin) Reuse() cache.ReuseProfile {
	return s.inner.Reuse()
}

// Instrumented wraps a runner with a constant dynamic-instrumentation
// slowdown, modelling binary-instrumentation tools such as Pin's
// inscount2 ("The suite run with inscount2 ... is 1.7x slower", §2.5).
// The wrapped program performs the same architectural work but burns
// `factor` times the cycles.
type Instrumented struct {
	R      Runner
	Factor float64
}

// Name implements Runner.
func (iw *Instrumented) Name() string { return iw.R.Name() }

// Done implements Runner.
func (iw *Instrumented) Done() bool { return iw.R.Done() }

// Reuse forwards the locality profile when the inner runner has one.
func (iw *Instrumented) Reuse() cache.ReuseProfile {
	if p, ok := iw.R.(interface{ Reuse() cache.ReuseProfile }); ok {
		return p.Reuse()
	}
	return cache.ReuseProfile{}
}

// Exec implements Runner: the inner program receives a budget shrunk by
// the instrumentation factor, and the reported cycles are inflated back,
// so wall-clock progress slows by exactly Factor.
func (iw *Instrumented) Exec(ctx cpu.Context, budgetCycles uint64) cpu.Delta {
	f := iw.Factor
	if f < 1 {
		f = 1
	}
	inner := uint64(float64(budgetCycles) / f)
	if inner == 0 {
		inner = 1
	}
	d := iw.R.Exec(ctx, inner)
	d.Cycles = uint64(float64(d.Cycles) * f)
	if d.Cycles > budgetCycles && d.Instructions > 0 {
		d.Cycles = budgetCycles
	}
	return d
}
