package workload

import (
	"fmt"
	"math"

	"tiptop/internal/sim/cache"
	"tiptop/internal/sim/cpu"
	"tiptop/internal/sim/machine"
)

// The catalog calibrates every workload against the paper's reference
// machine, the Intel Xeon W3550 (Nehalem) at 3.07 GHz: a phase is
// specified by its wall-clock duration and target IPC *on that machine
// when running alone*, and the base CPI is solved so that the timing
// model reproduces the target in the uncontended default context. On
// other machines (Core 2, PPC970) and under contention, the same phase
// naturally lands elsewhere, which is exactly what Figures 6–11 measure.

// refMachine is the calibration reference.
func refMachine() *machine.Machine { return machine.XeonW3550() }

// spec is the catalog's phase description.
type spec struct {
	name    string
	seconds float64 // duration on the reference machine, solo
	ipc     float64 // target IPC on the reference machine, solo

	loadsPKI, storesPKI, branchesPKI, fpPKI float64
	brMiss                                  float64
	assistFrac                              float64
	mlp                                     float64
	prefetch                                float64
	reuse                                   cache.ReuseProfile
	noise                                   float64
}

// localReuse builds the common three-tier locality shape: l1Prob of
// references reuse within 16 KB (they live in L1), the rest of the
// capturable hits spread between there and the footprint, and cold
// compulsory misses beyond. It keeps L1 behaviour realistic so base-CPI
// calibration is not swamped by fictitious L1 misses.
func localReuse(l1Prob, midBytes, midProb, footBytes, cold float64) cache.ReuseProfile {
	return cache.ReuseProfile{
		Points: []cache.ReusePoint{
			{DistBytes: 16 << 10, CumProb: l1Prob},
			{DistBytes: midBytes, CumProb: midProb},
			{DistBytes: footBytes, CumProb: 1 - cold},
		},
		ColdFraction: cold,
	}
}

// phase materializes a spec into a Phase, solving for the base CPI.
func (s spec) phase() Phase {
	if s.mlp == 0 {
		s.mlp = 4
	}
	if s.reuse.Points == nil && s.reuse.ColdFraction == 0 {
		s.reuse = cache.UniformProfile(16<<10, 0)
	}
	params := cpu.PhaseParams{
		BaseCPI:          1, // replaced below
		LoadsPKI:         s.loadsPKI,
		StoresPKI:        s.storesPKI,
		BranchesPKI:      s.branchesPKI,
		FPPKI:            s.fpPKI,
		BranchMissRatio:  s.brMiss,
		FPAssistFraction: s.assistFrac,
		MLP:              s.mlp,
		Prefetch:         s.prefetch,
		Reuse:            s.reuse,
	}
	params.BaseCPI = solveBaseCPI(params, 1/s.ipc)
	ref := refMachine()
	instr := uint64(s.ipc * ref.FreqHz * s.seconds)
	if instr == 0 {
		instr = 1
	}
	return Phase{
		Name:         s.name,
		Instructions: instr,
		Params:       params,
		NoiseAmp:     s.noise,
	}
}

// solveBaseCPI finds the BaseCPI that makes the model hit targetCPI on
// the uncontended reference machine. Because the model is additive in
// BaseCPI, the solution is a subtraction of the fixed penalty terms; the
// result is floored to keep parameters valid when the requested IPC is
// unreachable given the penalties (the floor shows up as a slightly lower
// measured IPC, which calibration tests accept).
func solveBaseCPI(p cpu.PhaseParams, targetCPI float64) float64 {
	ref := refMachine()
	probe := p
	probe.BaseCPI = 1
	r := cpu.Evaluate(probe, cpu.DefaultContext(ref))
	penalties := r.CPI - 1*ref.CPIScale
	base := (targetCPI - penalties) / ref.CPIScale
	const minBase = 0.05
	if base < minBase || math.IsNaN(base) {
		base = minBase
	}
	return base
}

// build assembles a validated workload from specs.
func build(name string, specs ...spec) *Workload {
	w := &Workload{Name: name}
	for _, s := range specs {
		w.Phases = append(w.Phases, s.phase())
	}
	if err := w.Validate(); err != nil {
		panic(fmt.Sprintf("catalog bug: %v", err))
	}
	return w
}

// Scaled returns a copy of w with every phase's instruction count
// multiplied by factor (minimum 1 instruction per phase). Experiments use
// it to shrink hours-long runs to test-sized ones while preserving the
// phase structure exactly.
func Scaled(w *Workload, factor float64) *Workload {
	out := &Workload{Name: w.Name, Phases: append([]Phase(nil), w.Phases...)}
	for i := range out.Phases {
		n := float64(out.Phases[i].Instructions) * factor
		if n < 1 {
			n = 1
		}
		out.Phases[i].Instructions = uint64(n)
	}
	return out
}

// mcfReuse is the 429.mcf locality profile: a pointer-chasing benchmark
// with a ~200 KB hot set (so sharing the 256 KB L2 between SMT siblings
// is catastrophic, Figure 11 d) and a multi-megabyte warm region that
// reacts strongly to the shared-L3 partition (Figure 11 a/b).
func mcfReuse() cache.ReuseProfile {
	return cache.ReuseProfile{
		Points: []cache.ReusePoint{
			{DistBytes: 32 << 10, CumProb: 0.35},
			{DistBytes: 64 << 10, CumProb: 0.44},
			{DistBytes: 128 << 10, CumProb: 0.52},
			{DistBytes: 256 << 10, CumProb: 0.895},
			{DistBytes: 2 << 20, CumProb: 0.90},
			{DistBytes: 4 << 20, CumProb: 0.935},
			{DistBytes: 8 << 20, CumProb: 0.972},
			{DistBytes: 48 << 20, CumProb: 0.985},
		},
		ColdFraction: 0.015,
	}
}

// MCF models 429.mcf (SPEC CPU2006): strongly memory-bound with visible
// program phases (Figure 6 a) and the co-run victim of Figure 11.
func MCF() *Workload {
	mem := func(name string, secs, ipc float64) spec {
		return spec{
			name: name, seconds: secs, ipc: ipc,
			loadsPKI: 250, storesPKI: 70, branchesPKI: 200, brMiss: 0.08,
			mlp: 8, reuse: mcfReuse(), noise: 0.09,
		}
	}
	// Setup and teardown touch a compact arena and are not
	// memory-bound.
	light := func(name string, secs, ipc float64) spec {
		return spec{
			name: name, seconds: secs, ipc: ipc,
			loadsPKI: 250, storesPKI: 70, branchesPKI: 200, brMiss: 0.04,
			mlp: 10, reuse: localReuse(0.94, 400<<10, 0.98, 4<<20, 0.005), noise: 0.07,
		}
	}
	return build("429.mcf",
		light("init", 25, 1.05),
		mem("simplex-1", 70, 0.62),
		mem("pricing-1", 55, 0.78),
		mem("simplex-2", 75, 0.55),
		mem("pricing-2", 50, 0.74),
		mem("simplex-3", 70, 0.60),
		light("final", 35, 0.88),
	)
}

// Astar models 473.astar: path-finding with distinct final phases whose
// relative IPC differs across architectures (Figures 6 b and 8).
func Astar() *Workload {
	way := func(name string, secs, ipc, hotMB float64) spec {
		return spec{
			name: name, seconds: secs, ipc: ipc,
			loadsPKI: 280, storesPKI: 90, branchesPKI: 180, brMiss: 0.06,
			mlp:   5,
			reuse: localReuse(0.90, 220<<10, 0.96, hotMB*float64(1<<20), 0.01),
			noise: 0.05,
		}
	}
	return build("473.astar",
		way("rivers-1", 80, 1.18, 6),
		way("biglakes-1", 90, 0.82, 14),
		way("rivers-2", 85, 1.05, 6),
		way("biglakes-2", 95, 0.72, 16),
		way("rivers-3", 75, 1.12, 7),
		way("final-a", 45, 0.92, 10),
		way("final-b", 40, 0.66, 18),
	)
}

// Bwaves models 410.bwaves: streaming FP with periodic solver phases
// (Figure 7 a). High MLP keeps the IPC healthy despite streaming misses.
func Bwaves() *Workload {
	solve := spec{
		name: "solve", seconds: 48, ipc: 1.22,
		loadsPKI: 320, storesPKI: 110, branchesPKI: 60, fpPKI: 420, brMiss: 0.01,
		mlp: 12, prefetch: 0.92,
		reuse: localReuse(0.78, 1<<20, 0.80, 64<<20, 0.18),
		noise: 0.03,
	}
	bc := spec{
		name: "boundary", seconds: 14, ipc: 0.92,
		loadsPKI: 350, storesPKI: 140, branchesPKI: 80, fpPKI: 360, brMiss: 0.015,
		mlp: 8, prefetch: 0.88,
		reuse: localReuse(0.70, 1<<20, 0.74, 64<<20, 0.24),
		noise: 0.03,
	}
	var specs []spec
	for i := 0; i < 8; i++ {
		s, b := solve, bc
		s.name = fmt.Sprintf("solve-%d", i+1)
		b.name = fmt.Sprintf("boundary-%d", i+1)
		specs = append(specs, s, b)
	}
	return build("410.bwaves", specs...)
}

// Gromacs models 435.gromacs: compute-bound molecular dynamics with small
// but noticeable variations on Nehalem (Figure 7 b).
func Gromacs() *Workload {
	step := func(name string, secs, ipc float64) spec {
		return spec{
			name: name, seconds: secs, ipc: ipc,
			loadsPKI: 260, storesPKI: 80, branchesPKI: 90, fpPKI: 480, brMiss: 0.015,
			mlp:   6,
			reuse: localReuse(0.95, 128<<10, 0.98, 480<<10, 0.002),
			noise: 0.025,
		}
	}
	var specs []spec
	ipcs := []float64{1.78, 1.70, 1.80, 1.66, 1.76, 1.69, 1.79, 1.72}
	for i, ipc := range ipcs {
		specs = append(specs, step(fmt.Sprintf("md-%d", i+1), 55, ipc))
	}
	return build("435.gromacs", specs...)
}

// compilerVariant builds the gcc/icc pairs of Figure 9. Each benchmark
// has per-compiler phase IPCs and durations; total instruction counts
// follow from ipc*time, which is how the paper's four qualitative cases
// (higher IPC wins / lower IPC wins / phase inversion / same time) are
// encoded.
func compilerVariant(bench, comp string, phases []spec) *Workload {
	return build(bench+"-"+comp, phases...)
}

func hmmerMix(name string, secs, ipc float64) spec {
	return spec{
		name: name, seconds: secs, ipc: ipc,
		loadsPKI: 300, storesPKI: 130, branchesPKI: 140, brMiss: 0.015,
		mlp: 6, reuse: localReuse(0.96, 32<<10, 0.985, 48<<10, 0.001), noise: 0.02,
	}
}

// HmmerGCC / HmmerICC: Figure 9 (a) — gcc's higher IPC directly yields
// the shorter run (both executables retire ~the same instruction count).
func HmmerGCC() *Workload {
	return compilerVariant("456.hmmer", "gcc", []spec{hmmerMix("search", 460, 2.35)})
}

// HmmerICC is the icc build of 456.hmmer.
func HmmerICC() *Workload {
	return compilerVariant("456.hmmer", "icc", []spec{hmmerMix("search", 569, 1.90)})
}

func sphinxMix(name string, secs, ipc float64) spec {
	return spec{
		name: name, seconds: secs, ipc: ipc,
		loadsPKI: 310, storesPKI: 90, branchesPKI: 150, fpPKI: 200, brMiss: 0.03,
		mlp: 6, reuse: localReuse(0.93, 180<<10, 0.97, 3<<20, 0.005), noise: 0.04,
	}
}

// Sphinx3GCC / Sphinx3ICC: Figure 9 (b) — icc produces a *lower* IPC yet
// finishes *earlier* because it retires ~25 % fewer instructions
// ("performance is better despite a lower IPC").
func Sphinx3GCC() *Workload {
	return compilerVariant("482.sphinx3", "gcc", []spec{sphinxMix("decode", 640, 2.00)})
}

// Sphinx3ICC is the icc build of 482.sphinx3.
func Sphinx3ICC() *Workload {
	return compilerVariant("482.sphinx3", "icc", []spec{sphinxMix("decode", 560, 1.75)})
}

func h264Mix(name string, secs, ipc float64) spec {
	return spec{
		name: name, seconds: secs, ipc: ipc,
		loadsPKI: 290, storesPKI: 120, branchesPKI: 120, brMiss: 0.025,
		mlp: 6, reuse: localReuse(0.95, 64<<10, 0.97, 120<<10, 0.002), noise: 0.03,
	}
}

// H264RefGCC / H264RefICC: Figure 9 (c) — two clearly visible phases with
// an *inversion*: gcc leads in the short first phase and trails in the
// long second one, while total running times stay close. Aggregate
// counters (as in the Jayaseelan et al. methodology) cannot see this.
func H264RefGCC() *Workload {
	return compilerVariant("464.h264ref", "gcc", []spec{
		h264Mix("foreman-encode", 115, 2.20),
		h264Mix("sss-encode", 505, 1.55),
	})
}

// H264RefICC is the icc build of 464.h264ref.
func H264RefICC() *Workload {
	return compilerVariant("464.h264ref", "icc", []spec{
		h264Mix("foreman-encode", 115, 1.90),
		h264Mix("sss-encode", 505, 1.76),
	})
}

func milcMix(name string, secs, ipc float64) spec {
	return spec{
		name: name, seconds: secs, ipc: ipc,
		loadsPKI: 300, storesPKI: 100, branchesPKI: 70, fpPKI: 380, brMiss: 0.01,
		mlp: 9, prefetch: 0.75,
		reuse: localReuse(0.86, 200<<10, 0.91, 2<<20, 0.06),
		noise: 0.035,
	}
}

// MilcGCC / MilcICC: Figure 9 (d) — both binaries take the same wall
// time although gcc's IPC is constantly higher (gcc simply executes
// proportionally more instructions).
func MilcGCC() *Workload {
	return compilerVariant("433.milc", "gcc", []spec{milcMix("lattice", 440, 0.95)})
}

// MilcICC is the icc build of 433.milc.
func MilcICC() *Workload {
	return compilerVariant("433.milc", "icc", []spec{milcMix("lattice", 440, 0.82)})
}

// REvolutionOptions configure the Figure 3 workload.
type REvolutionOptions struct {
	// Clipped applies the paper's fix: matrix values are clipped to a
	// finite interval each iteration, so no iteration ever diverges.
	// The clipping costs ~3 % extra instructions per iteration.
	Clipped bool
	// HealthyIters is the number of numerically stable time steps
	// before divergence (953 in the paper).
	HealthyIters int
	// DivergedIters is the number of time steps executed after the
	// matrices fill with Inf/NaN.
	DivergedIters int
}

// DefaultREvolution returns the paper's configuration: divergence at
// iteration 953, and enough diverged iterations that the run totals 3327
// five-second samples on the Nehalem machine (Figure 3 a).
func DefaultREvolution() REvolutionOptions {
	return REvolutionOptions{HealthyIters: 953, DivergedIters: 494}
}

// REvolution models the biologists' R-language evolutionary algorithm of
// §3.1. Each time step multiplies population matrices and applies scalar
// updates; after iteration HealthyIters the values diverge to Inf/NaN and
// every x87 FP operation takes the micro-code assist path: on Nehalem the
// IPC collapses to ~0.03 (with brief pulses from the non-FP bookkeeping
// part of each step), while on PPC970 nothing happens. The clipped
// variant stays healthy throughout.
func REvolution(opt REvolutionOptions) *Workload {
	if opt.HealthyIters <= 0 {
		opt.HealthyIters = 1
	}
	if opt.DivergedIters < 0 {
		opt.DivergedIters = 0
	}
	healthy := func(i int, clip bool) spec {
		secs := 5.0
		if clip {
			secs = 5.15 // clipping overhead, ~3 %
		}
		return spec{
			name: fmt.Sprintf("step-%d", i), seconds: secs, ipc: 1.0,
			loadsPKI: 280, storesPKI: 120, branchesPKI: 100, fpPKI: 300, brMiss: 0.02,
			mlp: 6, reuse: localReuse(0.93, 256<<10, 0.97, 900<<10, 0.004), noise: 0.12,
		}
	}
	// A diverged step has two sub-phases: the matrix kernel, where every
	// x87 FP op needs micro-code assistance and the observed IPC is
	// ~0.03, and the interpreter bookkeeping tail, which is unaffected
	// and produces the "brief pulses" visible in Figure 3 (a).
	// The diverged kernel spends most of each FP op in the micro-code
	// assist path; 115 assisted FP ops per 1000 instructions at the
	// Nehalem assist penalty pin the IPC near the 0.03 floor of
	// Figure 3 (a) while the solved base CPI stays at ordinary
	// interpreter levels — so on the PPC970, where the assist penalty
	// does not exist, the same phase runs at essentially healthy speed
	// (Figure 3 d).
	divergedKernel := func(i int) spec {
		return spec{
			name: fmt.Sprintf("step-%d-kernel", i), seconds: 21, ipc: 0.031,
			loadsPKI: 280, storesPKI: 120, branchesPKI: 100, fpPKI: 115, brMiss: 0.02,
			assistFrac: 1.0,
			mlp:        6, reuse: localReuse(0.93, 256<<10, 0.97, 900<<10, 0.004), noise: 0.10,
		}
	}
	divergedTail := func(i int) spec {
		return spec{
			name: fmt.Sprintf("step-%d-tail", i), seconds: 3, ipc: 1.0,
			loadsPKI: 300, storesPKI: 110, branchesPKI: 160, brMiss: 0.03,
			mlp: 6, reuse: localReuse(0.94, 200<<10, 0.97, 600<<10, 0.004), noise: 0.12,
		}
	}
	var specs []spec
	for i := 1; i <= opt.HealthyIters; i++ {
		specs = append(specs, healthy(i, opt.Clipped))
	}
	for i := opt.HealthyIters + 1; i <= opt.HealthyIters+opt.DivergedIters; i++ {
		if opt.Clipped {
			specs = append(specs, healthy(i, true))
			continue
		}
		specs = append(specs, divergedKernel(i), divergedTail(i))
	}
	name := "R-evolution"
	if opt.Clipped {
		name = "R-evolution-clipped"
	}
	return build(name, specs...)
}

// SyntheticSpec describes a data-center job for the Figure 1 / Figure 10
// scenarios: a long-running process with a target solo IPC and a
// configurable appetite for the shared last-level cache.
type SyntheticSpec struct {
	Name string
	// IPC is the target solo IPC on the E5640 node.
	IPC float64
	// MemRefsPKI sets how hard the job drives the memory hierarchy.
	MemRefsPKI float64
	// HotBytes / WarmBytes shape the reuse profile: the hot set always
	// fits; the warm region is where shared-LLC contention bites.
	HotBytes, WarmBytes float64
	// MidProb is the cumulative hit probability once HotBytes fit
	// (default 0.94). 1-MidProb-cold is the fraction of references in
	// the contention-sensitive warm band: raise MidProb for jobs that
	// should only mildly react to losing LLC share.
	MidProb float64
	// Noise is the per-sample IPC variability.
	Noise float64
}

// ManyTaskSpec returns the i-th job of the many-task stress fleet: IPC
// targets ramp over 0.25..3.2 and memory appetites cycle, so a large
// fleet exercises the whole metric range. The public ScenarioManyTasks
// and the engine's sharded-sampling stress tests build their load from
// this single definition.
func ManyTaskSpec(i int) SyntheticSpec {
	return SyntheticSpec{
		Name:       fmt.Sprintf("job%04d", i),
		IPC:        0.25 + 0.05*float64(i%60),
		MemRefsPKI: float64(i % 7 * 40),
	}
}

// ManyTaskUser returns the owning user of the i-th many-task job,
// spreading the fleet across a handful of accounts.
func ManyTaskUser(i int) string {
	users := [...]string{"alice", "bob", "carol", "dave"}
	return users[i%len(users)]
}

// Synthetic builds a single-phase workload (to be wrapped in a Spin for
// endless execution) from a SyntheticSpec. Calibration targets the E5640
// data-center node rather than the W3550 workstation.
func Synthetic(s SyntheticSpec) *Workload {
	if s.MemRefsPKI == 0 {
		s.MemRefsPKI = 150
	}
	if s.HotBytes == 0 {
		s.HotBytes = 256 << 10
	}
	if s.WarmBytes < s.HotBytes {
		// Default jobs stay cache-resident even under heavy sharing:
		// their whole footprint fits a fraction of the LLC, so they
		// show the near-zero DMIS of the Figure 1 snapshot.
		s.WarmBytes = s.HotBytes * 3
	}
	if s.Noise == 0 {
		s.Noise = 0.03
	}
	if s.MidProb == 0 {
		s.MidProb = 0.94
	}
	node := machine.XeonE5640x2()
	sp := spec{
		name: "steady", seconds: 600, ipc: s.IPC,
		loadsPKI: s.MemRefsPKI * 0.75, storesPKI: s.MemRefsPKI * 0.25,
		branchesPKI: 120, brMiss: 0.02, mlp: 5,
		reuse: localReuse(0.90, s.HotBytes, s.MidProb, s.WarmBytes, 0.004),
		noise: s.Noise,
	}
	// Re-solve against the E5640 so the quoted IPC is what Figure 1
	// displays on that node.
	ph := sp.phase()
	probe := ph.Params
	probe.BaseCPI = 1
	r := cpu.Evaluate(probe, cpu.DefaultContext(node))
	penalties := r.CPI - node.CPIScale
	base := (1/s.IPC - penalties) / node.CPIScale
	if base < 0.05 {
		base = 0.05
	}
	ph.Params.BaseCPI = base
	ph.Instructions = uint64(s.IPC * node.FreqHz * 600)
	w := &Workload{Name: s.Name, Phases: []Phase{ph}}
	if err := w.Validate(); err != nil {
		panic(fmt.Sprintf("catalog bug: %v", err))
	}
	return w
}

// SPECSuite returns the SPEC CPU2006 subset used across Figures 6–9,
// gcc builds.
func SPECSuite() []*Workload {
	return []*Workload{
		MCF(), Astar(), Bwaves(), Gromacs(),
		HmmerGCC(), Sphinx3GCC(), H264RefGCC(), MilcGCC(),
	}
}
