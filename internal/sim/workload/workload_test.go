package workload

import (
	"math"
	"testing"
	"testing/quick"

	"tiptop/internal/sim/cpu"
	"tiptop/internal/sim/machine"
)

func testWorkload() *Workload {
	return build("test",
		spec{name: "a", seconds: 1, ipc: 2.0, loadsPKI: 100, branchesPKI: 100, noise: 0},
		spec{name: "b", seconds: 1, ipc: 0.5, loadsPKI: 100, branchesPKI: 100, noise: 0},
	)
}

func TestValidateWorkload(t *testing.T) {
	w := testWorkload()
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Workload{
		{Name: "", Phases: w.Phases},
		{Name: "x"},
		{Name: "x", Phases: []Phase{{Name: "p", Instructions: 0, Params: w.Phases[0].Params}}},
		{Name: "x", Phases: []Phase{{Name: "p", Instructions: 10, Params: w.Phases[0].Params, NoiseAmp: 1.5}}},
		{Name: "x", Phases: []Phase{{Name: "p", Instructions: 10}}}, // zero BaseCPI
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("bad workload %d accepted", i)
		}
	}
}

func TestInstanceRunsToCompletion(t *testing.T) {
	w := testWorkload()
	in := MustInstance(w, 1)
	m := machine.XeonW3550()
	ctx := cpu.DefaultContext(m)
	var total cpu.Delta
	for i := 0; !in.Done(); i++ {
		if i > 1e7 {
			t.Fatal("instance did not terminate")
		}
		total.Add(in.Exec(ctx, 30_700_000)) // 10 ms at 3.07 GHz
	}
	if total.Instructions != w.TotalInstructions() {
		t.Fatalf("executed %d instructions, want %d", total.Instructions, w.TotalInstructions())
	}
	if got := in.Totals().Instructions; got != total.Instructions {
		t.Fatalf("Totals() = %d, want %d", got, total.Instructions)
	}
	if in.CurrentPhase() != "" {
		t.Fatal("finished instance has no current phase")
	}
}

func TestInstanceTargetsCalibratedIPC(t *testing.T) {
	// Phase "a" targets IPC 2.0 solo on W3550; with zero noise the
	// executed cycles must match within rounding.
	w := build("solo", spec{name: "a", seconds: 2, ipc: 2.0, loadsPKI: 100, branchesPKI: 100})
	in := MustInstance(w, 7)
	ctx := cpu.DefaultContext(machine.XeonW3550())
	var total cpu.Delta
	for !in.Done() {
		total.Add(in.Exec(ctx, 30_700_000))
	}
	ipc := float64(total.Instructions) / float64(total.Cycles)
	if math.Abs(ipc-2.0) > 0.02 {
		t.Fatalf("calibrated IPC = %v, want 2.0", ipc)
	}
}

func TestInstancePhaseOrder(t *testing.T) {
	w := testWorkload()
	in := MustInstance(w, 3)
	ctx := cpu.DefaultContext(machine.XeonW3550())
	if in.CurrentPhase() != "a" {
		t.Fatalf("initial phase = %q", in.CurrentPhase())
	}
	sawB := false
	for !in.Done() {
		in.Exec(ctx, 307_000_000)
		if in.CurrentPhase() == "b" {
			sawB = true
		}
	}
	if !sawB {
		t.Fatal("phase b never became current")
	}
	done, totalI := in.Progress()
	if done != totalI {
		t.Fatalf("Progress = %d/%d", done, totalI)
	}
}

func TestExecRespectsBudget(t *testing.T) {
	w := testWorkload()
	in := MustInstance(w, 5)
	ctx := cpu.DefaultContext(machine.XeonW3550())
	const budget = 1_000_000
	for i := 0; i < 100 && !in.Done(); i++ {
		d := in.Exec(ctx, budget)
		// Never exceed budget by more than one instruction's cycles
		// (CPI here is ~0.5..2, so 4 cycles of slack is generous).
		if d.Cycles > budget+4 {
			t.Fatalf("quantum used %d cycles, budget %d", d.Cycles, budget)
		}
	}
}

func TestExecTinyBudgetStillAdvances(t *testing.T) {
	w := testWorkload()
	in := MustInstance(w, 5)
	ctx := cpu.DefaultContext(machine.XeonW3550())
	d := in.Exec(ctx, 1)
	if d.Cycles == 0 {
		t.Fatal("a nonzero budget must consume cycles")
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) cpu.Delta {
		w := MCF()
		in := MustInstance(Scaled(w, 0.001), seed)
		ctx := cpu.DefaultContext(machine.XeonW3550())
		var total cpu.Delta
		for !in.Done() {
			total.Add(in.Exec(ctx, 30_700_000))
		}
		return total
	}
	a, b := run(42), run(42)
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	c := run(43)
	if a == c {
		t.Fatal("different seeds should perturb noise (cycles expected to differ)")
	}
}

func TestSpinNeverFinishes(t *testing.T) {
	w := build("burn", spec{name: "x", seconds: 0.0001, ipc: 1.5, branchesPKI: 100})
	s, err := NewSpin(w, 9)
	if err != nil {
		t.Fatal(err)
	}
	ctx := cpu.DefaultContext(machine.XeonW3550())
	var total cpu.Delta
	for i := 0; i < 50; i++ {
		if s.Done() {
			t.Fatal("Spin must never be done")
		}
		d := s.Exec(ctx, 30_700_000)
		if d.Cycles == 0 {
			t.Fatal("Spin must keep producing cycles")
		}
		total.Add(d)
	}
	// The single phase is ~460k instructions; 50 quanta of 30.7M cycles
	// at IPC 1.5 demand far more, so the workload must have restarted.
	if total.Instructions <= w.TotalInstructions() {
		t.Fatalf("Spin did not loop: %d instructions", total.Instructions)
	}
	if s.Name() != "burn" {
		t.Fatalf("Name = %q", s.Name())
	}
}

func TestScaled(t *testing.T) {
	w := MCF()
	half := Scaled(w, 0.5)
	if half.TotalInstructions() >= w.TotalInstructions() {
		t.Fatal("Scaled(0.5) must shrink")
	}
	if len(half.Phases) != len(w.Phases) {
		t.Fatal("Scaled must preserve phase structure")
	}
	tiny := Scaled(w, 1e-18)
	for _, p := range tiny.Phases {
		if p.Instructions < 1 {
			t.Fatal("Scaled floors at 1 instruction")
		}
	}
	// Original untouched.
	if w.Phases[0].Instructions == half.Phases[0].Instructions {
		t.Fatal("Scaled must copy, not alias")
	}
}

func TestCatalogValidates(t *testing.T) {
	all := append(SPECSuite(),
		HmmerICC(), Sphinx3ICC(), H264RefICC(), MilcICC(),
		REvolution(DefaultREvolution()),
		REvolution(REvolutionOptions{Clipped: true, HealthyIters: 953, DivergedIters: 494}),
		Synthetic(SyntheticSpec{Name: "job", IPC: 1.5}),
	)
	seen := map[string]bool{}
	for _, w := range all {
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
		if seen[w.Name] {
			t.Errorf("duplicate workload name %q", w.Name)
		}
		seen[w.Name] = true
	}
}

func TestREvolutionStructure(t *testing.T) {
	opt := DefaultREvolution()
	w := REvolution(opt)
	// 953 healthy phases + 494 * (kernel + tail).
	want := opt.HealthyIters + 2*opt.DivergedIters
	if len(w.Phases) != want {
		t.Fatalf("phases = %d, want %d", len(w.Phases), want)
	}
	clipped := REvolution(REvolutionOptions{Clipped: true, HealthyIters: 953, DivergedIters: 494})
	if len(clipped.Phases) != 953+494 {
		t.Fatalf("clipped phases = %d", len(clipped.Phases))
	}
	// The diverged kernel must have full assist fraction; clipped none.
	kernel := w.Phases[953]
	if kernel.Params.FPAssistFraction != 1 {
		t.Fatalf("diverged kernel assist = %v", kernel.Params.FPAssistFraction)
	}
	for _, p := range clipped.Phases {
		if p.Params.FPAssistFraction != 0 {
			t.Fatal("clipped run must never assist")
		}
	}
	// Degenerate options are repaired.
	tiny := REvolution(REvolutionOptions{HealthyIters: -1, DivergedIters: -5})
	if len(tiny.Phases) != 1 {
		t.Fatalf("repaired options give %d phases", len(tiny.Phases))
	}
}

func TestCompilerPairsEncodeFigure9(t *testing.T) {
	ref := machine.XeonW3550()
	ctx := cpu.DefaultContext(ref)
	ipcOf := func(w *Workload) (ipc float64, seconds float64) {
		in := MustInstance(Scaled(w, 0.01), 1)
		var total cpu.Delta
		for !in.Done() {
			total.Add(in.Exec(ctx, 30_700_000))
		}
		return float64(total.Instructions) / float64(total.Cycles),
			float64(total.Cycles) / ref.FreqHz
	}
	// (a) hmmer: gcc has higher IPC and is faster.
	gIPC, gT := ipcOf(HmmerGCC())
	iIPC, iT := ipcOf(HmmerICC())
	if !(gIPC > iIPC && gT < iT) {
		t.Fatalf("hmmer: gcc (%.2f, %.0fs) must beat icc (%.2f, %.0fs) on both", gIPC, gT, iIPC, iT)
	}
	// (b) sphinx3: icc has lower IPC but is faster.
	gIPC, gT = ipcOf(Sphinx3GCC())
	iIPC, iT = ipcOf(Sphinx3ICC())
	if !(iIPC < gIPC && iT < gT) {
		t.Fatalf("sphinx3: icc (%.2f, %.0fs) must be slower-IPC yet faster than gcc (%.2f, %.0fs)", iIPC, iT, gIPC, gT)
	}
	// (d) milc: gcc has higher IPC but the same time (within 2 %).
	gIPC, gT = ipcOf(MilcGCC())
	iIPC, iT = ipcOf(MilcICC())
	if gIPC <= iIPC {
		t.Fatalf("milc: gcc IPC %.2f must exceed icc %.2f", gIPC, iIPC)
	}
	if math.Abs(gT-iT)/iT > 0.02 {
		t.Fatalf("milc: run times must match: %.1fs vs %.1fs", gT, iT)
	}
}

func TestH264InversionPhases(t *testing.T) {
	g, i := H264RefGCC(), H264RefICC()
	if len(g.Phases) != 2 || len(i.Phases) != 2 {
		t.Fatal("h264ref needs two phases")
	}
	ctx := cpu.DefaultContext(machine.XeonW3550())
	ipc := func(p Phase) float64 { return cpu.Evaluate(p.Params, ctx).IPC() }
	// Phase 1: gcc leads. Phase 2: inversion, icc leads.
	if !(ipc(g.Phases[0]) > ipc(i.Phases[0])) {
		t.Fatal("phase 1: gcc must lead")
	}
	if !(ipc(g.Phases[1]) < ipc(i.Phases[1])) {
		t.Fatal("phase 2: icc must lead (the inversion)")
	}
}

func TestInstrumentedSlowdown(t *testing.T) {
	ctx := cpu.DefaultContext(machine.XeonW3550())
	run := func(factor float64) (instr, cycles uint64) {
		w := testWorkload()
		var r Runner = MustInstance(w, 3)
		if factor > 0 {
			r = &Instrumented{R: MustInstance(w, 3), Factor: factor}
		}
		var total cpu.Delta
		for i := 0; i < 1e6 && !r.Done(); i++ {
			total.Add(r.Exec(ctx, 1_000_000))
		}
		return total.Instructions, total.Cycles
	}
	plainI, plainC := run(0)
	slowI, slowC := run(1.7)
	if slowI != plainI {
		t.Fatalf("instrumentation must preserve architectural work: %d vs %d", slowI, plainI)
	}
	ratio := float64(slowC) / float64(plainC)
	if ratio < 1.6 || ratio > 1.8 {
		t.Fatalf("cycle inflation = %.2fx, want ~1.7x", ratio)
	}
	// Degenerate factors are clamped to 1.
	clampI, clampC := run(0.5)
	if clampI != plainI || float64(clampC) > float64(plainC)*1.05 {
		t.Fatalf("factor < 1 must behave like 1: %d/%d vs %d/%d", clampI, clampC, plainI, plainC)
	}
}

func TestInstrumentedForwardsMetadata(t *testing.T) {
	in := MustInstance(MCF(), 1)
	iw := &Instrumented{R: in, Factor: 1.7}
	if iw.Name() != in.Name() {
		t.Fatal("name must forward")
	}
	if iw.Done() {
		t.Fatal("not done")
	}
	reuse := iw.Reuse()
	if reuse.Footprint() == 0 {
		t.Fatal("reuse profile must forward")
	}
}

// Property: Exec conserves instructions — the sum of per-quantum deltas
// equals the workload total, for any quantum size.
func TestPropInstructionConservation(t *testing.T) {
	f := func(seed int64, quantumKCycles uint16) bool {
		q := uint64(quantumKCycles%2000+1) * 10_000
		w := testWorkload()
		in := MustInstance(w, seed)
		ctx := cpu.DefaultContext(machine.XeonW3550())
		var total cpu.Delta
		for i := 0; !in.Done(); i++ {
			if i > 1e6 {
				return false
			}
			total.Add(in.Exec(ctx, q))
		}
		return total.Instructions == w.TotalInstructions()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
