// Package proc adapts the simulated kernel to the tiptop engine: it
// implements core.ProcSource (the simulated machine's /proc) and
// core.Clock (the simulated wall clock), so the very same engine that
// monitors real Linux processes can monitor the simulation.
package proc

import (
	"fmt"
	"time"

	"tiptop/internal/core"
	"tiptop/internal/hpm"
	"tiptop/internal/sim/machine"
	"tiptop/internal/sim/sched"
)

// Source is the simulated process table.
type Source struct {
	k *sched.Kernel
	// IncludeExited controls whether zombies remain visible. The real
	// top drops them once reaped; the default hides them.
	IncludeExited bool
	// PerThread lists one entry per thread instead of one per process
	// (paper §2.2). In process mode, a multi-threaded process shows
	// the summed CPU time of its group.
	PerThread bool
	// SystemWide replaces the task list with one row per logical CPU
	// (IDs hpm.CPUTask(n)): attaching counters to those rows counts
	// everything that runs on each CPU, the perf "-a" mode. PerThread
	// is ignored in this mode.
	SystemWide bool

	// Scratch reused across snapshots, so a refresh over thousands of
	// tasks costs O(1) allocations in steady state.
	buf      []core.TaskInfo
	cpuByPID map[int]time.Duration
}

var _ core.ProcSource = (*Source)(nil)

// NewSource creates a process source over the kernel.
func NewSource(k *sched.Kernel) *Source { return &Source{k: k} }

// Snapshot implements core.ProcSource. The returned slice is reused by
// the next Snapshot call; callers must not retain it across refreshes
// (the engine copies what it keeps).
func (s *Source) Snapshot() ([]core.TaskInfo, error) {
	if s.SystemWide {
		return s.cpuSnapshot()
	}
	tasks := s.k.Tasks()
	out := s.buf[:0]
	if s.cpuByPID == nil {
		s.cpuByPID = make(map[int]time.Duration, len(tasks))
	}
	cpuByPID := s.cpuByPID
	clear(cpuByPID)
	if !s.PerThread {
		for _, t := range tasks {
			cpuByPID[t.ID().PID] += t.CPUTime()
		}
	}
	for _, t := range tasks {
		if t.State() == sched.TaskExited && !s.IncludeExited {
			continue
		}
		if !s.PerThread && !t.ID().IsProcess() {
			continue // threads fold into their leader
		}
		info := core.TaskInfo{
			ID:        t.ID(),
			User:      t.User(),
			Comm:      t.Comm(),
			State:     t.State().String(),
			CPUTime:   t.CPUTime(),
			StartTime: t.StartTime(),
			LastCPU:   int(t.LastCPU()),
		}
		if !s.PerThread {
			// Process mode: group-scope counting (the whole thread
			// group's events and CPU time fold into one row).
			info.ID = info.ID.Group()
			info.CPUTime = cpuByPID[t.ID().PID]
		}
		out = append(out, info)
	}
	s.buf = out
	return out, nil
}

// cpuSnapshot lists one pseudo-task per logical CPU. CPUTime is the
// CPU's cumulative busy time, so the engine's %CPU column becomes
// per-CPU utilization; StartTime stays 0 (a CPU exists since boot).
func (s *Source) cpuSnapshot() ([]core.TaskInfo, error) {
	n := s.k.Machine().NumLogical()
	out := s.buf[:0]
	for i := 0; i < n; i++ {
		out = append(out, core.TaskInfo{
			ID:      hpm.CPUTask(i),
			User:    "system",
			Comm:    fmt.Sprintf("cpu%d", i),
			State:   "R",
			CPUTime: s.k.CPUBusy(machine.CPUID(i)),
			LastCPU: i,
		})
	}
	s.buf = out
	return out, nil
}

// Clock drives the simulation from the engine's refresh loop.
type Clock struct {
	k *sched.Kernel
}

var _ core.Clock = (*Clock)(nil)

// NewClock creates a simulated clock bound to the kernel.
func NewClock(k *sched.Kernel) *Clock { return &Clock{k: k} }

// Now implements core.Clock.
func (c *Clock) Now() time.Duration { return c.k.Now() }

// Advance implements core.Clock by running the simulation forward.
func (c *Clock) Advance(d time.Duration) { c.k.Advance(d) }
