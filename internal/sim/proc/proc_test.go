package proc

import (
	"testing"
	"time"

	"tiptop/internal/sim/machine"
	"tiptop/internal/sim/sched"
	"tiptop/internal/sim/workload"
)

func fixture(t *testing.T) (*sched.Kernel, *Source, *Clock) {
	t.Helper()
	k, err := sched.New(machine.XeonW3550(), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return k, NewSource(k), NewClock(k)
}

func spawnBurn(t *testing.T, k *sched.Kernel, user, name string, seconds float64) *sched.Task {
	t.Helper()
	w := workload.Scaled(workload.Synthetic(workload.SyntheticSpec{Name: name, IPC: 1.5}), seconds/600)
	return k.Spawn(user, name, workload.MustInstance(w, 1), nil)
}

func TestSnapshotFields(t *testing.T) {
	k, src, _ := fixture(t)
	task := spawnBurn(t, k, "alice", "burn", 100)
	k.Advance(time.Second)
	infos, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 {
		t.Fatalf("infos = %d", len(infos))
	}
	info := infos[0]
	if info.ID.PID != task.ID().PID || info.User != "alice" || info.Comm != "burn" {
		t.Fatalf("info = %+v", info)
	}
	if info.State != "R" {
		t.Fatalf("state = %q", info.State)
	}
	if info.CPUTime <= 0 {
		t.Fatal("cpu time must accumulate")
	}
	if info.LastCPU < 0 || info.LastCPU >= k.Machine().NumLogical() {
		t.Fatalf("last cpu = %d", info.LastCPU)
	}
}

func TestZombieVisibility(t *testing.T) {
	k, src, _ := fixture(t)
	spawnBurn(t, k, "u", "brief", 0.01)
	k.Advance(2 * time.Second) // finishes quickly
	infos, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 0 {
		t.Fatalf("exited tasks hidden by default, got %d", len(infos))
	}
	src.IncludeExited = true
	infos, err = src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].State != "Z" {
		t.Fatalf("zombie visibility: %+v", infos)
	}
}

func TestClockDrivesKernel(t *testing.T) {
	k, _, clock := fixture(t)
	task := spawnBurn(t, k, "u", "burn", 100)
	if clock.Now() != 0 {
		t.Fatal("clock starts at 0")
	}
	clock.Advance(500 * time.Millisecond)
	if clock.Now() != 500*time.Millisecond || k.Now() != 500*time.Millisecond {
		t.Fatalf("clock = %v, kernel = %v", clock.Now(), k.Now())
	}
	if task.Totals().Cycles == 0 {
		t.Fatal("advancing the clock must run the simulation")
	}
}

func TestPerThreadListing(t *testing.T) {
	k, src, _ := fixture(t)
	leader := spawnBurn(t, k, "u", "app", 100)
	w := workload.Synthetic(workload.SyntheticSpec{Name: "helper", IPC: 2})
	spin, err := workload.NewSpin(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	thread, err := k.SpawnThread(leader, spin, nil)
	if err != nil {
		t.Fatal(err)
	}
	k.Advance(time.Second)

	// Process mode: one row, CPU time summed over the group.
	infos, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 {
		t.Fatalf("process mode rows = %d", len(infos))
	}
	want := leader.CPUTime() + thread.CPUTime()
	if infos[0].CPUTime != want {
		t.Fatalf("aggregated cpu = %v, want %v", infos[0].CPUTime, want)
	}

	// Thread mode: two rows with distinct TIDs under one PID.
	src.PerThread = true
	infos, err = src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("thread mode rows = %d", len(infos))
	}
	if infos[0].ID.PID != infos[1].ID.PID || infos[0].ID.TID == infos[1].ID.TID {
		t.Fatalf("thread identities: %+v", infos)
	}
}

func TestSnapshotSleepingState(t *testing.T) {
	k, src, _ := fixture(t)
	w := workload.Synthetic(workload.SyntheticSpec{Name: "nap", IPC: 1})
	spin, err := workload.NewSpin(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.SpawnDuty("u", "nap", spin, nil, 100*time.Millisecond, time.Second); err != nil {
		t.Fatal(err)
	}
	// Advance into the off-window of the duty cycle.
	k.Advance(600 * time.Millisecond)
	infos, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].State != "S" {
		t.Fatalf("duty-cycled task should be sleeping: %+v", infos)
	}
}
