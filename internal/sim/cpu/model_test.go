package cpu

import (
	"math"
	"testing"
	"testing/quick"

	"tiptop/internal/hpm"
	"tiptop/internal/sim/cache"
	"tiptop/internal/sim/machine"
)

func simpleParams() PhaseParams {
	return PhaseParams{
		BaseCPI:         0.5,
		LoadsPKI:        250,
		StoresPKI:       100,
		BranchesPKI:     150,
		FPPKI:           50,
		BranchMissRatio: 0.02,
		MLP:             4,
		Reuse:           cache.TwoLevelProfile(24<<10, 4<<20, 0.9, 0.01),
	}
}

func TestValidate(t *testing.T) {
	p := simpleParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*PhaseParams){
		func(p *PhaseParams) { p.BaseCPI = 0 },
		func(p *PhaseParams) { p.LoadsPKI = -1 },
		func(p *PhaseParams) { p.LoadsPKI = 900; p.StoresPKI = 200 },
		func(p *PhaseParams) { p.BranchMissRatio = 1.5 },
		func(p *PhaseParams) { p.FPAssistFraction = -0.1 },
		func(p *PhaseParams) { p.MLP = 0 },
	}
	for i, mutate := range bad {
		q := simpleParams()
		mutate(&q)
		if err := q.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestDefaultContext(t *testing.T) {
	m := machine.XeonW3550()
	ctx := DefaultContext(m)
	if ctx.L1Bytes != 32<<10 || ctx.L2Bytes != 256<<10 || ctx.LLCBytes != 8<<20 {
		t.Fatalf("ctx = %+v", ctx)
	}
	c2 := DefaultContext(machine.Core2())
	if c2.LLCBytes != 4<<20 || c2.L2Bytes != 4<<20 {
		t.Fatalf("Core2 ctx = %+v", c2)
	}
}

func TestCPIFloorIsIssueWidth(t *testing.T) {
	m := machine.XeonW3550()
	p := PhaseParams{BaseCPI: 0.01, MLP: 1, Reuse: cache.UniformProfile(1024, 0)}
	r := Evaluate(p, DefaultContext(m))
	if got, want := r.CPI, 0.25; got != want {
		t.Fatalf("CPI floor = %v, want %v (issue width 4)", got, want)
	}
	if r.IPC() != 4 {
		t.Fatalf("IPC = %v", r.IPC())
	}
}

func TestSMTSlowdown(t *testing.T) {
	m := machine.XeonW3550()
	p := simpleParams()
	solo := Evaluate(p, DefaultContext(m))
	ctx := DefaultContext(m)
	ctx.SMTBusy = true
	shared := Evaluate(p, ctx)
	if shared.CPI <= solo.CPI {
		t.Fatalf("SMT-busy CPI %v must exceed solo %v", shared.CPI, solo.CPI)
	}
}

func TestCacheContentionRaisesCPI(t *testing.T) {
	m := machine.XeonW3550()
	p := PhaseParams{
		BaseCPI: 0.8, LoadsPKI: 300, MLP: 2,
		Reuse: cache.TwoLevelProfile(512<<10, 16<<20, 0.6, 0.02),
	}
	full := Evaluate(p, DefaultContext(m))
	squeezed := DefaultContext(m)
	squeezed.LLCBytes = 2 << 20
	r := Evaluate(p, squeezed)
	if r.CPI <= full.CPI {
		t.Fatalf("shrunken LLC must raise CPI: %v vs %v", r.CPI, full.CPI)
	}
	if r.LLCMissPerInstr <= full.LLCMissPerInstr {
		t.Fatal("shrunken LLC must raise LLC misses")
	}
}

func TestFPAssistPenaltyArchDependent(t *testing.T) {
	p := PhaseParams{
		BaseCPI: 0.75, FPPKI: 300, FPAssistFraction: 1, MLP: 4,
		Reuse: cache.UniformProfile(1024, 0),
	}
	nehalem := Evaluate(p, DefaultContext(machine.XeonW3550()))
	ppc := Evaluate(p, DefaultContext(machine.PPC970()))
	// On Nehalem the assists dominate: IPC collapses (paper Figure 3a).
	if nehalem.IPC() > 0.05 {
		t.Fatalf("Nehalem assisted IPC = %v, want < 0.05", nehalem.IPC())
	}
	if nehalem.AssistPerInstr != 0.3 {
		t.Fatalf("assist rate = %v", nehalem.AssistPerInstr)
	}
	// On PPC970 there is no assist path at all (Figure 3d).
	if ppc.AssistPerInstr != 0 {
		t.Fatalf("PPC970 assists = %v, want 0", ppc.AssistPerInstr)
	}
	if ppc.IPC() < 0.3 {
		t.Fatalf("PPC970 IPC = %v, should be unaffected by non-finite values", ppc.IPC())
	}
}

func TestTwoLevelLLCSemantics(t *testing.T) {
	m := machine.Core2() // L2 is the LLC
	p := PhaseParams{
		BaseCPI: 0.6, LoadsPKI: 300, MLP: 2,
		Reuse: cache.TwoLevelProfile(64<<10, 8<<20, 0.7, 0.02),
	}
	r := Evaluate(p, DefaultContext(m))
	// On a two-level machine, LLC references are L1 misses.
	if r.LLCRefPerInstr != r.L1MissPerInstr {
		t.Fatalf("two-level LLC refs %v != L1 misses %v", r.LLCRefPerInstr, r.L1MissPerInstr)
	}
	if r.L2MissPerInstr != r.LLCMissPerInstr {
		t.Fatal("two-level: L2 misses are LLC misses")
	}
}

func TestCapacityOrderingClamp(t *testing.T) {
	m := machine.XeonW3550()
	p := simpleParams()
	ctx := DefaultContext(m)
	// Pathological contention: shared L3 squeezed below the private L2.
	ctx.LLCBytes = 64 << 10
	r := Evaluate(p, ctx)
	// Miss rates must still nest: missL1 >= missL2 >= missLLC.
	if r.L1MissPerInstr < r.L2MissPerInstr || r.L2MissPerInstr < r.LLCMissPerInstr {
		t.Fatalf("miss rates must nest: %v %v %v",
			r.L1MissPerInstr, r.L2MissPerInstr, r.LLCMissPerInstr)
	}
}

func TestDeltaAddAndCount(t *testing.T) {
	a := Delta{Instructions: 10, Cycles: 20, Loads: 3, LLCMisses: 1, FPAssists: 2}
	b := Delta{Instructions: 5, Cycles: 10, Loads: 2, Branches: 7}
	a.Add(b)
	if a.Instructions != 15 || a.Cycles != 30 || a.Loads != 5 || a.Branches != 7 {
		t.Fatalf("Add result %+v", a)
	}
	cases := map[string]uint64{
		hpm.EventCycles:          30,
		hpm.EventInstructions:    15,
		hpm.EventLoads:           5,
		hpm.EventBranches:        7,
		hpm.EventCacheMisses:     1,
		hpm.EventFPAssist:        2,
		hpm.EventStores:          0,
		"NOT_A_SOURCE":           0,
		hpm.EventCacheReferences: 0,
		hpm.EventBranchMisses:    0,
		hpm.EventL2Misses:        0,
		hpm.EventFPOps:           0,
	}
	for name, want := range cases {
		if got := a.Count(name); got != want {
			t.Errorf("Count(%q) = %d, want %d", name, got, want)
		}
	}
	if KnownSource("NOT_A_SOURCE") {
		t.Error("unknown source reported as known")
	}
	if !KnownSource(SourceL1Misses) || !KnownSource(hpm.EventCycles) {
		t.Error("known sources not recognized")
	}
}

func TestEmitConservesRates(t *testing.T) {
	m := machine.XeonW3550()
	p := simpleParams()
	r := Evaluate(p, DefaultContext(m))
	var acc Accumulator
	var total Delta
	// Many small quanta: fractional carry must prevent undercounting.
	const per = 7
	const rounds = 10000
	for i := 0; i < rounds; i++ {
		d := Emit(r, per, uint64(float64(per)*r.CPI), &acc)
		total.Add(d)
	}
	n := float64(per * rounds)
	// Tolerance 2: one count of quantization plus accumulated FP drift.
	wantLoads := n * r.LoadsPerInstr
	if math.Abs(float64(total.Loads)-wantLoads) > 2 {
		t.Fatalf("loads = %d, want ~%v", total.Loads, wantLoads)
	}
	wantBrMiss := n * r.BranchMissPerInstr
	if math.Abs(float64(total.BranchMisses)-wantBrMiss) > 2 {
		t.Fatalf("branch misses = %d, want ~%v", total.BranchMisses, wantBrMiss)
	}
	wantLLC := n * r.LLCMissPerInstr
	if math.Abs(float64(total.LLCMisses)-wantLLC) > 2 {
		t.Fatalf("LLC misses = %d, want ~%v", total.LLCMisses, wantLLC)
	}
}

// Property: CPI is monotone non-increasing in LLC capacity.
func TestPropCPIMonotoneInCapacity(t *testing.T) {
	m := machine.XeonW3550()
	f := func(hotKB uint16, loads uint16) bool {
		p := PhaseParams{
			BaseCPI:  0.7,
			LoadsPKI: float64(loads%500) + 1,
			MLP:      2,
			Reuse:    cache.TwoLevelProfile(float64(hotKB%8192+64)*1024, 64<<20, 0.7, 0.02),
		}
		ctx := DefaultContext(m)
		prev := math.Inf(1)
		for _, c := range []float64{1 << 20, 2 << 20, 4 << 20, 8 << 20} {
			ctx.LLCBytes = c
			r := Evaluate(p, ctx)
			if r.CPI > prev+1e-12 {
				return false
			}
			prev = r.CPI
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Emit never produces more events than rate*instructions+1 and
// total counts are within 1 of the exact expectation after accumulation.
func TestPropEmitBounded(t *testing.T) {
	m := machine.XeonW3550()
	p := simpleParams()
	r := Evaluate(p, DefaultContext(m))
	f := func(quanta []uint16) bool {
		var acc Accumulator
		var total Delta
		var n float64
		for _, q := range quanta {
			instr := uint64(q % 1000)
			total.Add(Emit(r, instr, uint64(float64(instr)*r.CPI), &acc))
			n += float64(instr)
		}
		return math.Abs(float64(total.Loads)-n*r.LoadsPerInstr) <= 2 &&
			math.Abs(float64(total.FPOps)-n*r.FPPerInstr) <= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
