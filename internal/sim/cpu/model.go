// Package cpu implements the analytic core timing model of the machine
// simulator. Given a workload phase's instruction mix and reuse profile,
// plus the execution context for the current scheduler quantum (effective
// cache capacities after contention, SMT co-residency), it predicts the
// effective CPI and the per-instruction event rates that feed the virtual
// PMU.
//
// The model is a classic additive stall model:
//
//	CPI = BaseCPI * archScale * smtFactor
//	    + missL1/instr * exposed L2 hit latency
//	    + missL2/instr * exposed L3 hit latency  (3-level machines)
//	    + missLLC/instr * memLatency / MLP
//	    + branchMiss/instr * branchMissPenalty
//	    + assist/instr * fpAssistPenalty
//
// Cache-hit latencies are "exposed" values: the part of the architectural
// latency that out-of-order execution cannot hide. The DRAM term is
// divided by the phase's memory-level parallelism.
//
// Cache miss rates come from the phase's reuse-distance profile evaluated
// at the *effective* capacity of each level, which is where shared-cache
// contention (paper §3.4) enters: co-runners shrink the effective LLC and
// the CPI rises even though CPU usage stays at 100 %.
package cpu

import (
	"fmt"

	"tiptop/internal/hpm"
	"tiptop/internal/sim/cache"
	"tiptop/internal/sim/machine"
)

// PhaseParams describes the execution characteristics of one workload
// phase. Rates are expressed per thousand instructions (PKI) as is
// conventional in architecture papers.
type PhaseParams struct {
	// BaseCPI is the cycles per instruction with a perfect memory
	// hierarchy and perfect branch prediction; it captures the
	// workload's intrinsic ILP on the reference micro-architecture.
	BaseCPI float64

	LoadsPKI    float64 // loads per 1000 instructions
	StoresPKI   float64 // stores per 1000 instructions
	BranchesPKI float64 // branches per 1000 instructions
	FPPKI       float64 // floating-point ops per 1000 instructions

	BranchMissRatio  float64 // mispredicted fraction of branches
	FPAssistFraction float64 // fraction of FP ops hitting the micro-code assist path

	// MLP is the memory-level parallelism: the average number of
	// outstanding LLC misses that overlap. The effective memory
	// penalty per miss is memLatency/MLP. 1 means fully serialized
	// pointer chasing.
	MLP float64

	// Prefetch is the fraction of cache-miss latency hidden by the
	// hardware prefetchers (0..1). Streaming workloads such as
	// 410.bwaves run near full speed despite missing constantly; the
	// counters still report the misses, only the stall cost shrinks.
	Prefetch float64

	// Reuse is the temporal-locality profile driving cache miss rates.
	Reuse cache.ReuseProfile
}

// Validate checks parameter sanity.
func (p *PhaseParams) Validate() error {
	if p.BaseCPI <= 0 {
		return fmt.Errorf("cpu: BaseCPI %v must be positive", p.BaseCPI)
	}
	if p.LoadsPKI < 0 || p.StoresPKI < 0 || p.BranchesPKI < 0 || p.FPPKI < 0 {
		return fmt.Errorf("cpu: negative event rate")
	}
	if p.LoadsPKI+p.StoresPKI > 1000 {
		return fmt.Errorf("cpu: more than 1000 memory ops per 1000 instructions")
	}
	if p.BranchMissRatio < 0 || p.BranchMissRatio > 1 {
		return fmt.Errorf("cpu: branch miss ratio %v out of [0,1]", p.BranchMissRatio)
	}
	if p.FPAssistFraction < 0 || p.FPAssistFraction > 1 {
		return fmt.Errorf("cpu: assist fraction %v out of [0,1]", p.FPAssistFraction)
	}
	if p.MLP < 1 {
		return fmt.Errorf("cpu: MLP %v must be >= 1", p.MLP)
	}
	if p.Prefetch < 0 || p.Prefetch > 1 {
		return fmt.Errorf("cpu: prefetch factor %v out of [0,1]", p.Prefetch)
	}
	return p.Reuse.Validate()
}

// Context is the per-quantum execution environment, computed by the
// scheduler from the machine topology and the set of co-running tasks.
type Context struct {
	M *machine.Machine
	// Effective capacities of each private/shared level for this task
	// during the quantum, after contention partitioning.
	L1Bytes  float64
	L2Bytes  float64
	LLCBytes float64 // equals L2Bytes on two-level machines
	// SMTBusy reports whether the sibling hardware thread was running
	// another task during the quantum.
	SMTBusy bool
}

// DefaultContext returns the uncontended context for a machine: every
// cache at its full capacity, no SMT sibling activity.
func DefaultContext(m *machine.Machine) Context {
	ctx := Context{M: m}
	if l1, ok := m.CacheAt(1); ok {
		ctx.L1Bytes = float64(l1.SizeBytes)
	}
	if l2, ok := m.CacheAt(2); ok {
		ctx.L2Bytes = float64(l2.SizeBytes)
	}
	ctx.LLCBytes = float64(m.LLC().SizeBytes)
	return ctx
}

// Result is the model's prediction for a phase in a context.
type Result struct {
	CPI float64
	// Per-instruction event rates.
	LoadsPerInstr      float64
	StoresPerInstr     float64
	BranchesPerInstr   float64
	FPPerInstr         float64
	BranchMissPerInstr float64
	AssistPerInstr     float64
	L1MissPerInstr     float64
	L2MissPerInstr     float64
	LLCRefPerInstr     float64
	LLCMissPerInstr    float64
	// MemStallPerInstr is the exposed DRAM stall in cycles per
	// instruction — the model's source for the MEM_STALL_CYCLES event.
	MemStallPerInstr float64
}

// IPC returns 1/CPI.
func (r Result) IPC() float64 {
	if r.CPI == 0 {
		return 0
	}
	return 1 / r.CPI
}

// Evaluate runs the timing model.
func Evaluate(p PhaseParams, ctx Context) Result {
	m := ctx.M
	refsPerInstr := (p.LoadsPKI + p.StoresPKI) / 1000

	// Capacities must be hierarchy-ordered for the miss rates to nest;
	// contention can shrink an outer level below an inner one, in
	// which case the inner level's capacity dominates.
	l1 := ctx.L1Bytes
	l2 := ctx.L2Bytes
	if l2 < l1 {
		l2 = l1
	}
	llc := ctx.LLCBytes
	if llc < l2 {
		llc = l2
	}

	missL1 := refsPerInstr * p.Reuse.MissRatio(l1)
	threeLevel := false
	if _, ok := m.CacheAt(3); ok {
		threeLevel = true
	}

	var missL2, missLLC, llcRefs float64
	if threeLevel {
		missL2 = refsPerInstr * p.Reuse.MissRatio(l2)
		missLLC = refsPerInstr * p.Reuse.MissRatio(llc)
		llcRefs = missL2
	} else {
		// Two-level hierarchy: L2 is the LLC.
		missL2 = refsPerInstr * p.Reuse.MissRatio(llc)
		missLLC = missL2
		llcRefs = missL1
	}

	branchesPerInstr := p.BranchesPKI / 1000
	brMissPerInstr := branchesPerInstr * p.BranchMissRatio
	fpPerInstr := p.FPPKI / 1000
	assistPerInstr := 0.0
	if m.FPAssistPenalty > 0 {
		assistPerInstr = fpPerInstr * p.FPAssistFraction
	}

	cpi := p.BaseCPI * m.CPIScale
	if ctx.SMTBusy {
		cpi *= m.SMTSlowdown
	}
	exposed := 1 - p.Prefetch
	if l2cache, ok := m.CacheAt(2); ok {
		cpi += missL1 * float64(l2cache.LatencyCycles) * exposed
	}
	if threeLevel {
		cpi += missL2 * float64(m.LLC().LatencyCycles) * exposed
	}
	mlp := p.MLP
	if mlp < 1 {
		mlp = 1
	}
	memStall := missLLC * float64(m.MemLatencyCycles) / mlp * exposed
	cpi += memStall
	cpi += brMissPerInstr * float64(m.BranchMissPenalty)
	cpi += assistPerInstr * float64(m.FPAssistPenalty)

	// The pipeline cannot retire faster than the issue width allows.
	if minCPI := 1 / float64(m.IssueWidth); cpi < minCPI {
		cpi = minCPI
	}

	return Result{
		CPI:                cpi,
		LoadsPerInstr:      p.LoadsPKI / 1000,
		StoresPerInstr:     p.StoresPKI / 1000,
		BranchesPerInstr:   branchesPerInstr,
		FPPerInstr:         fpPerInstr,
		BranchMissPerInstr: brMissPerInstr,
		AssistPerInstr:     assistPerInstr,
		L1MissPerInstr:     missL1,
		L2MissPerInstr:     missL2,
		LLCRefPerInstr:     llcRefs,
		LLCMissPerInstr:    missLLC,
		MemStallPerInstr:   memStall,
	}
}

// Delta is the bundle of architectural event counts produced by executing
// some instructions. It is the currency between workload instances, the
// scheduler, and the virtual PMU.
type Delta struct {
	Instructions uint64
	Cycles       uint64
	Loads        uint64
	Stores       uint64
	Branches     uint64
	BranchMisses uint64
	FPOps        uint64
	FPAssists    uint64
	L1Misses     uint64
	L2Misses     uint64
	LLCRefs      uint64
	LLCMisses    uint64
	// MemStallCycles is the cycles spent waiting on DRAM (exposed
	// LLC-miss latency), the §3.4 future-work latency counter.
	MemStallCycles uint64
	// Software events: produced by the scheduler (not Emit) — context
	// switches and migrations are scheduling decisions, page faults are
	// modelled from the memory behaviour at quantum granularity.
	PageFaults    uint64
	CtxSwitches   uint64
	CPUMigrations uint64
}

// Add accumulates o into d.
func (d *Delta) Add(o Delta) {
	d.Instructions += o.Instructions
	d.Cycles += o.Cycles
	d.Loads += o.Loads
	d.Stores += o.Stores
	d.Branches += o.Branches
	d.BranchMisses += o.BranchMisses
	d.FPOps += o.FPOps
	d.FPAssists += o.FPAssists
	d.L1Misses += o.L1Misses
	d.L2Misses += o.L2Misses
	d.LLCRefs += o.LLCRefs
	d.LLCMisses += o.LLCMisses
	d.MemStallCycles += o.MemStallCycles
	d.PageFaults += o.PageFaults
	d.CtxSwitches += o.CtxSwitches
	d.CPUMigrations += o.CPUMigrations
}

// SourceL1Misses names the L1 data-cache miss count. It is not a
// default-registry event — hw-cache descriptors (L1D_*_MISS) resolve to
// it through the virtual PMU's decode tables.
const SourceL1Misses = "L1_MISSES"

// Count maps the name of an architectural count source — a canonical
// event name of hpm.DefaultRegistry, or SourceL1Misses — to the
// corresponding value in the delta. Unknown sources count zero; the
// virtual PMU rejects them at attach time.
func (d Delta) Count(source string) uint64 {
	switch source {
	case hpm.EventCycles:
		return d.Cycles
	case hpm.EventInstructions:
		return d.Instructions
	case hpm.EventCacheReferences:
		return d.LLCRefs
	case hpm.EventCacheMisses:
		return d.LLCMisses
	case hpm.EventBranches:
		return d.Branches
	case hpm.EventBranchMisses:
		return d.BranchMisses
	case hpm.EventFPAssist:
		return d.FPAssists
	case hpm.EventL2Misses:
		return d.L2Misses
	case hpm.EventLoads:
		return d.Loads
	case hpm.EventStores:
		return d.Stores
	case hpm.EventFPOps:
		return d.FPOps
	case hpm.EventMemStallCycles:
		return d.MemStallCycles
	case SourceL1Misses:
		return d.L1Misses
	case hpm.EventPageFaults:
		return d.PageFaults
	case hpm.EventCtxSwitches:
		return d.CtxSwitches
	case hpm.EventCPUMigrations:
		return d.CPUMigrations
	}
	return 0
}

// KnownSource reports whether name is a count source Delta implements.
func KnownSource(name string) bool {
	switch name {
	case hpm.EventCycles, hpm.EventInstructions, hpm.EventCacheReferences,
		hpm.EventCacheMisses, hpm.EventBranches, hpm.EventBranchMisses,
		hpm.EventFPAssist, hpm.EventL2Misses, hpm.EventLoads,
		hpm.EventStores, hpm.EventFPOps, hpm.EventMemStallCycles,
		SourceL1Misses,
		hpm.EventPageFaults, hpm.EventCtxSwitches, hpm.EventCPUMigrations:
		return true
	}
	return false
}

// Emit converts a Result plus an instruction count into integral event
// counts, carrying fractional remainders in acc so that long runs of
// small quanta do not systematically under-count (the remainders of each
// rate are accumulated across calls).
func Emit(r Result, instructions uint64, cycles uint64, acc *Accumulator) Delta {
	d := Delta{Instructions: instructions, Cycles: cycles}
	n := float64(instructions)
	d.Loads = acc.take(0, n*r.LoadsPerInstr)
	d.Stores = acc.take(1, n*r.StoresPerInstr)
	d.Branches = acc.take(2, n*r.BranchesPerInstr)
	d.BranchMisses = acc.take(3, n*r.BranchMissPerInstr)
	d.FPOps = acc.take(4, n*r.FPPerInstr)
	d.FPAssists = acc.take(5, n*r.AssistPerInstr)
	d.L1Misses = acc.take(6, n*r.L1MissPerInstr)
	d.L2Misses = acc.take(7, n*r.L2MissPerInstr)
	d.LLCRefs = acc.take(8, n*r.LLCRefPerInstr)
	d.LLCMisses = acc.take(9, n*r.LLCMissPerInstr)
	d.MemStallCycles = acc.take(10, n*r.MemStallPerInstr)
	return d
}

// Accumulator carries the fractional event remainders of one task across
// scheduler quanta.
type Accumulator struct {
	frac [11]float64
}

func (a *Accumulator) take(slot int, amount float64) uint64 {
	total := a.frac[slot] + amount
	whole := uint64(total)
	a.frac[slot] = total - float64(whole)
	return whole
}
