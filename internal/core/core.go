// Package core implements the tiptop engine: periodic sampling of
// hardware performance counters for every visible task, computation of
// the derived metric columns, and production of display-ready samples for
// the live and batch front ends.
//
// The engine is backend-agnostic: it monitors real processes through the
// perf_event backend and /proc, or simulated ones through the virtual PMU
// and the simulated process table. Its behaviour follows the paper's §2:
// counters are attached to already-running tasks the first time they are
// seen (no restart needed), the engine sleeps between refreshes, and each
// refresh displays the number of occurrences of each event since the
// previous refresh.
//
// Sampling is sharded: the process-table snapshot is partitioned by a
// stable hash of the TaskID across a pool of worker shards (see
// Options.Parallelism), each of which owns its tasks' state and samples
// them concurrently. The merged sample is deterministically ordered —
// byte-identical to what a serial engine produces — because rows are
// written back at their snapshot positions before the final sort.
package core

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tiptop/internal/hpm"
	"tiptop/internal/metrics"
)

// TaskInfo is one process-table entry delivered by a ProcSource.
type TaskInfo struct {
	ID        hpm.TaskID
	User      string
	Comm      string
	State     string // R, S, Z, ...
	CPUTime   time.Duration
	StartTime time.Duration
	LastCPU   int
}

// ProcSource enumerates monitorable tasks. Implementations exist for the
// real /proc filesystem and for the simulated kernel.
type ProcSource interface {
	// Snapshot returns the current task list. Implementations may reuse
	// the returned slice on the next Snapshot call; the engine copies
	// whatever it keeps across refreshes.
	Snapshot() ([]TaskInfo, error)
}

// Clock abstracts the passage of time so that the same engine drives
// both live monitoring (sleeping wall-clock seconds) and simulation
// (advancing the simulated kernel).
type Clock interface {
	// Now returns the time since the clock's origin.
	Now() time.Duration
	// Advance lets d elapse.
	Advance(d time.Duration)
}

// RealClock is the wall-clock implementation of Clock.
type RealClock struct{ origin time.Time }

// NewRealClock returns a Clock anchored at the current instant.
func NewRealClock() *RealClock { return &RealClock{origin: time.Now()} }

// Now implements Clock.
func (c *RealClock) Now() time.Duration { return time.Since(c.origin) }

// Advance implements Clock by sleeping.
func (c *RealClock) Advance(d time.Duration) { time.Sleep(d) }

// Options configure a Session.
type Options struct {
	// Screen selects the displayed columns; nil means the default
	// Figure 1 screen.
	Screen *metrics.Screen
	// Interval is the refresh period (paper: "we typically take
	// samples every few seconds"). Default 2 s.
	Interval time.Duration
	// FreqHz is the nominal clock frequency, exposed to expressions as
	// FREQ_HZ. Optional.
	FreqHz float64
	// NumCPUs is exposed to expressions as NUM_CPUS. Optional.
	NumCPUs int
	// FilterUser restricts monitoring to one user's tasks ("" = all).
	// Mirrors the non-privileged case: users may only watch their own
	// processes.
	FilterUser string
	// MaxRows truncates the sorted display (0 = unlimited).
	MaxRows int
	// SortBy names the sort key: "cpu" (default), "pid", or any column
	// name of the screen (sorted descending).
	SortBy string
	// Parallelism is the number of sampling shards the process table is
	// partitioned across. 0 selects runtime.GOMAXPROCS(0); 1 samples
	// serially on the calling goroutine. Row ordering is identical at
	// every setting.
	Parallelism int
	// Registry is the event universe screen expressions resolve
	// against; nil means hpm.DefaultRegistry(). Sessions with
	// user-defined events (XML <event> definitions) pass the extended
	// registry here.
	Registry *hpm.Registry
}

// Observer receives every sample a Session produces, synchronously on
// the sampling goroutine, immediately after the rows are sorted and
// before any MaxRows truncation — a recorder sees every monitored task
// even when the display is clipped. Observe must not retain the sample
// or its slices beyond the call: the engine reuses backing storage on
// the next refresh.
type Observer interface {
	Observe(*Sample)
}

// Row is one displayed task with its computed metrics.
type Row struct {
	Info   TaskInfo
	CPUPct float64
	// Values holds one entry per screen column.
	Values []float64
	// Events holds the raw per-event deltas for this refresh interval,
	// keyed by canonical event name — the stable identity events have
	// everywhere downstream of the backend (recorders, exports, the
	// remote wire format).
	Events map[string]uint64
	// Coverage is the fraction of the refresh interval the task's
	// events were actually counted, averaged over the events: 1 when
	// the PMU accommodated everything, lower when counts are
	// Enabled/Running extrapolations (kernel multiplexing or the
	// internal/mux rotation). Exposed to column expressions as
	// SMPL_PCT (coverage*100).
	Coverage float64
	// Valid is false when counters could not be attached or read; the
	// renderer shows dashes and the %CPU column only.
	Valid bool
}

// Sample is the result of one refresh.
type Sample struct {
	Time    time.Duration // clock time at the refresh
	Rows    []Row
	Dropped int // tasks that disappeared since the previous refresh
}

// IPC is a convenience accessor returning instructions/cycles for a row,
// 0 when unavailable.
func (r *Row) IPC() float64 {
	c := r.Events[hpm.EventCycles]
	if c == 0 {
		return 0
	}
	return float64(r.Events[hpm.EventInstructions]) / float64(c)
}

// taskState is the engine's book-keeping for one monitored task.
type taskState struct {
	info    TaskInfo
	counter hpm.TaskCounter
	// reader is non-nil when the counter supports allocation-free
	// reads; prevCounts and spare then ping-pong as its destination.
	reader      hpm.CountReader
	prevCounts  []hpm.Count
	spare       []hpm.Count
	prevCPUTime time.Duration
	prevSeenAt  time.Duration
	everSampled bool
}

// Session is a running tiptop engine.
type Session struct {
	backend  hpm.Backend
	proc     ProcSource
	clock    Clock
	opt      Options
	registry *hpm.Registry
	events   []hpm.EventDesc
	shards   []*shard
	// attachMu serializes backend.Attach and TaskCounter.Close across
	// shard workers: the hpm contract only requires backends to
	// tolerate concurrent Read on distinct counters.
	attachMu  sync.Mutex
	observers []Observer
	closed    bool
}

// NewSession validates the configuration and creates an engine. The
// backend is probed once; an unusable backend fails fast so callers can
// fall back (e.g. from perf_event to the simulator).
func NewSession(backend hpm.Backend, proc ProcSource, clock Clock, opt Options) (*Session, error) {
	if backend == nil || proc == nil || clock == nil {
		return nil, errors.New("core: backend, proc source and clock are required")
	}
	if err := backend.Probe(); err != nil {
		return nil, fmt.Errorf("core: backend %s unusable: %w", backend.Name(), err)
	}
	if opt.Screen == nil {
		opt.Screen = metrics.DefaultScreen()
	}
	if opt.Interval <= 0 {
		opt.Interval = 2 * time.Second
	}
	registry := opt.Registry
	if registry == nil {
		registry = hpm.DefaultRegistry()
	}
	events, err := ResolveScreenEvents(registry, opt.Screen)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if len(events) == 0 {
		return nil, errors.New("core: screen references no counter events")
	}
	for _, e := range events {
		if !backend.Supported(e) {
			return nil, fmt.Errorf("core: backend %s cannot count %v: %w",
				backend.Name(), e, hpm.ErrUnsupportedEvent)
		}
	}
	if opt.Parallelism < 0 {
		return nil, fmt.Errorf("core: negative parallelism %d", opt.Parallelism)
	}
	if err := ValidateSortKey(opt.Screen, opt.SortBy); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if opt.Parallelism == 0 {
		opt.Parallelism = runtime.GOMAXPROCS(0)
	}
	s := &Session{
		backend:  backend,
		proc:     proc,
		clock:    clock,
		opt:      opt,
		registry: registry,
		events:   events,
	}
	s.shards = make([]*shard, opt.Parallelism)
	for i := range s.shards {
		s.shards[i] = newShard(s)
	}
	return s, nil
}

// Screen returns the active screen.
func (s *Session) Screen() *metrics.Screen { return s.opt.Screen }

// Parallelism returns the number of sampling shards in use.
func (s *Session) Parallelism() int { return len(s.shards) }

// Events returns the counter events the session attaches to every task.
func (s *Session) Events() []hpm.EventDesc { return s.events }

// Registry returns the event registry the session resolved its screen
// against.
func (s *Session) Registry() *hpm.Registry { return s.registry }

// Backend returns the counter backend the session samples through.
func (s *Session) Backend() hpm.Backend { return s.backend }

// ResolveScreenEvents resolves every identifier the screen's column
// expressions reference against the registry, returning the union of
// event descriptors in first-use order. An identifier that is neither a
// context variable nor resolvable as an event is rejected with an error
// naming the screen, the column and the identifier — the single source
// of truth behind both config.Load validation and NewSession.
func ResolveScreenEvents(registry *hpm.Registry, screen *metrics.Screen) ([]hpm.EventDesc, error) {
	var events []hpm.EventDesc
	seen := make(map[string]bool)
	for _, col := range screen.Columns {
		if col.Expr == nil {
			continue
		}
		// Screen columns are instant, per-task expressions; constructs
		// that only make sense across a series of buckets (topk
		// ranking, `by` grouping) belong to range queries.
		if why := col.Expr.SeriesOnly(); why != "" {
			return nil, fmt.Errorf("screen %q column %q: %s needs a range query (/api/v1/query?expr=), not a screen column",
				screen.Name, col.Name, why)
		}
		for _, id := range col.Identifiers() {
			d, err := registry.ParseEvent(id)
			if err != nil {
				return nil, fmt.Errorf("screen %q column %q: unknown identifier %q (not a context variable, registered event, RAW:0x code or hw-cache event)",
					screen.Name, col.Name, id)
			}
			if !seen[d.Name] {
				seen[d.Name] = true
				events = append(events, d)
			}
		}
	}
	return events, nil
}

// Update performs one refresh: it rescans the process table, attaches
// counters to newly discovered tasks, reads deltas for known ones, and
// returns the computed sample.
func (s *Session) Update() (*Sample, error) {
	if s.closed {
		return nil, errors.New("core: session closed")
	}
	now := s.clock.Now()
	infos, err := s.proc.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("core: process snapshot: %w", err)
	}
	// Partition the filtered snapshot across the shards. Book-keeping
	// is keyed by the full TaskID, so per-thread rows, per-process
	// leader rows and group-scope rows never collide; the stable hash
	// keeps every task's state owned by one shard for its whole life.
	nshard := len(s.shards)
	for _, sh := range s.shards {
		sh.work = sh.work[:0]
	}
	n := 0
	for _, info := range infos {
		if s.opt.FilterUser != "" && info.User != s.opt.FilterUser {
			continue
		}
		sh := s.shards[shardIndex(info.ID, nshard)]
		sh.work = append(sh.work, workItem{info: info, idx: n})
		n++
	}

	rows := make([]Row, n)
	var dropped atomic.Int64
	if nshard == 1 {
		s.shards[0].refresh(now, rows, &dropped)
	} else {
		var wg sync.WaitGroup
		for _, sh := range s.shards {
			if len(sh.work) == 0 && len(sh.states) == 0 && len(sh.failed) == 0 {
				continue
			}
			wg.Add(1)
			go func(sh *shard) {
				defer wg.Done()
				sh.refresh(now, rows, &dropped)
			}(sh)
		}
		wg.Wait()
	}
	// Counters of reaped tasks are closed serially after the shards
	// join; Close, like Attach, is not required to be concurrency-safe.
	for _, sh := range s.shards {
		for i, c := range sh.reaped {
			_ = c.Close()
			sh.reaped[i] = nil
		}
		sh.reaped = sh.reaped[:0]
	}

	sample := &Sample{Time: now, Rows: rows, Dropped: int(dropped.Load())}
	s.sortRows(sample.Rows)
	// Observers run before MaxRows clips the display: recording and
	// aggregation must cover every monitored task.
	for _, o := range s.observers {
		o.Observe(sample)
	}
	if s.opt.MaxRows > 0 && len(sample.Rows) > s.opt.MaxRows {
		sample.Rows = sample.Rows[:s.opt.MaxRows]
	}
	return sample, nil
}

// Subscribe registers an observer for every subsequent sample. Not safe
// to call concurrently with Update.
func (s *Session) Subscribe(o Observer) {
	if o == nil {
		return
	}
	s.observers = append(s.observers, o)
}

// Unsubscribe removes a previously subscribed observer. Not safe to
// call concurrently with Update.
func (s *Session) Unsubscribe(o Observer) {
	for i, cur := range s.observers {
		if cur == o {
			s.observers = append(s.observers[:i], s.observers[i+1:]...)
			return
		}
	}
}

// ValidateSortKey reports whether key names a valid sort order for the
// screen: "" or "cpu" (CPU descending), "pid", or one of the screen's
// column names. It is the single source of truth for both engine-level
// validation and CLI fail-fast checks.
func ValidateSortKey(screen *metrics.Screen, key string) error {
	if key == "" || key == "cpu" || key == "pid" {
		return nil
	}
	names := make([]string, len(screen.Columns))
	for i, c := range screen.Columns {
		if c.Name == key {
			return nil
		}
		names[i] = c.Name
	}
	return fmt.Errorf("unknown sort key %q (want cpu, pid, or one of %s for screen %q)",
		key, strings.Join(names, ", "), screen.Name)
}

// cpuPct computes OS CPU usage over the refresh interval, or since task
// start on the first observation (as top does on its first screen).
func (s *Session) cpuPct(st *taskState, info TaskInfo, now time.Duration) float64 {
	var used, wall time.Duration
	if st != nil && st.everSampled {
		used = info.CPUTime - st.prevCPUTime
		wall = now - st.prevSeenAt
	} else {
		used = info.CPUTime
		wall = now - info.StartTime
	}
	if wall <= 0 {
		return 0
	}
	pct := float64(used) / float64(wall) * 100
	if pct < 0 {
		pct = 0
	}
	return pct
}

// sortRows orders the display.
func (s *Session) sortRows(rows []Row) {
	key := s.opt.SortBy
	if key == "" {
		key = "cpu"
	}
	colIdx := -1
	if key != "cpu" && key != "pid" {
		for i, c := range s.opt.Screen.Columns {
			if c.Name == key {
				colIdx = i
				break
			}
		}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		a, b := &rows[i], &rows[j]
		switch {
		case key == "pid":
			return a.Info.ID.PID < b.Info.ID.PID
		case colIdx >= 0:
			if a.Values[colIdx] != b.Values[colIdx] {
				return a.Values[colIdx] > b.Values[colIdx]
			}
		default:
			if a.CPUPct != b.CPUPct {
				return a.CPUPct > b.CPUPct
			}
		}
		return a.Info.ID.PID < b.Info.ID.PID
	})
}

// Run performs n refresh cycles (n <= 0 means run until the callback
// returns false), invoking each after every update. The callback may be
// nil. Between refreshes the clock advances by the configured interval.
func (s *Session) Run(n int, each func(*Sample) bool) error {
	for i := 0; n <= 0 || i < n; i++ {
		s.clock.Advance(s.opt.Interval)
		sample, err := s.Update()
		if err != nil {
			return err
		}
		if each != nil && !each(sample) {
			return nil
		}
	}
	return nil
}

// AdvanceClock advances the session's clock by one refresh interval
// without taking a sample. Experiment drivers use it to interleave their
// own bookkeeping between refreshes.
func (s *Session) AdvanceClock() { s.clock.Advance(s.opt.Interval) }

// Interval returns the configured refresh period.
func (s *Session) Interval() time.Duration { return s.opt.Interval }

// Close releases all attached counters.
func (s *Session) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for _, sh := range s.shards {
		for id, st := range sh.states {
			if st.counter != nil {
				if err := st.counter.Close(); err != nil && first == nil {
					first = err
				}
			}
			delete(sh.states, id)
		}
	}
	return first
}
