// Package core implements the tiptop engine: periodic sampling of
// hardware performance counters for every visible task, computation of
// the derived metric columns, and production of display-ready samples for
// the live and batch front ends.
//
// The engine is backend-agnostic: it monitors real processes through the
// perf_event backend and /proc, or simulated ones through the virtual PMU
// and the simulated process table. Its behaviour follows the paper's §2:
// counters are attached to already-running tasks the first time they are
// seen (no restart needed), the engine sleeps between refreshes, and each
// refresh displays the number of occurrences of each event since the
// previous refresh.
package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"tiptop/internal/hpm"
	"tiptop/internal/metrics"
)

// TaskInfo is one process-table entry delivered by a ProcSource.
type TaskInfo struct {
	ID        hpm.TaskID
	User      string
	Comm      string
	State     string // R, S, Z, ...
	CPUTime   time.Duration
	StartTime time.Duration
	LastCPU   int
}

// ProcSource enumerates monitorable tasks. Implementations exist for the
// real /proc filesystem and for the simulated kernel.
type ProcSource interface {
	// Snapshot returns the current task list.
	Snapshot() ([]TaskInfo, error)
}

// Clock abstracts the passage of time so that the same engine drives
// both live monitoring (sleeping wall-clock seconds) and simulation
// (advancing the simulated kernel).
type Clock interface {
	// Now returns the time since the clock's origin.
	Now() time.Duration
	// Advance lets d elapse.
	Advance(d time.Duration)
}

// RealClock is the wall-clock implementation of Clock.
type RealClock struct{ origin time.Time }

// NewRealClock returns a Clock anchored at the current instant.
func NewRealClock() *RealClock { return &RealClock{origin: time.Now()} }

// Now implements Clock.
func (c *RealClock) Now() time.Duration { return time.Since(c.origin) }

// Advance implements Clock by sleeping.
func (c *RealClock) Advance(d time.Duration) { time.Sleep(d) }

// Options configure a Session.
type Options struct {
	// Screen selects the displayed columns; nil means the default
	// Figure 1 screen.
	Screen *metrics.Screen
	// Interval is the refresh period (paper: "we typically take
	// samples every few seconds"). Default 2 s.
	Interval time.Duration
	// FreqHz is the nominal clock frequency, exposed to expressions as
	// FREQ_HZ. Optional.
	FreqHz float64
	// NumCPUs is exposed to expressions as NUM_CPUS. Optional.
	NumCPUs int
	// FilterUser restricts monitoring to one user's tasks ("" = all).
	// Mirrors the non-privileged case: users may only watch their own
	// processes.
	FilterUser string
	// MaxRows truncates the sorted display (0 = unlimited).
	MaxRows int
	// SortBy names the sort key: "cpu" (default), "pid", or any column
	// name of the screen (sorted descending).
	SortBy string
}

// Row is one displayed task with its computed metrics.
type Row struct {
	Info   TaskInfo
	CPUPct float64
	// Values holds one entry per screen column.
	Values []float64
	// Events holds the raw per-event deltas for this refresh interval.
	Events map[hpm.EventID]uint64
	// Valid is false when counters could not be attached or read; the
	// renderer shows dashes and the %CPU column only.
	Valid bool
}

// Sample is the result of one refresh.
type Sample struct {
	Time    time.Duration // clock time at the refresh
	Rows    []Row
	Dropped int // tasks that disappeared since the previous refresh
}

// IPC is a convenience accessor returning instructions/cycles for a row,
// 0 when unavailable.
func (r *Row) IPC() float64 {
	c := r.Events[hpm.EventCycles]
	if c == 0 {
		return 0
	}
	return float64(r.Events[hpm.EventInstructions]) / float64(c)
}

// taskState is the engine's book-keeping for one monitored task.
type taskState struct {
	info        TaskInfo
	counter     hpm.TaskCounter
	prevCounts  []hpm.Count
	prevCPUTime time.Duration
	prevSeenAt  time.Duration
	everSampled bool
}

// Session is a running tiptop engine.
type Session struct {
	backend hpm.Backend
	proc    ProcSource
	clock   Clock
	opt     Options
	events  []hpm.EventID
	states  map[hpm.TaskID]*taskState
	failed  map[hpm.TaskID]bool // attach permanently failed (permissions)
	closed  bool
}

// NewSession validates the configuration and creates an engine. The
// backend is probed once; an unusable backend fails fast so callers can
// fall back (e.g. from perf_event to the simulator).
func NewSession(backend hpm.Backend, proc ProcSource, clock Clock, opt Options) (*Session, error) {
	if backend == nil || proc == nil || clock == nil {
		return nil, errors.New("core: backend, proc source and clock are required")
	}
	if err := backend.Probe(); err != nil {
		return nil, fmt.Errorf("core: backend %s unusable: %w", backend.Name(), err)
	}
	if opt.Screen == nil {
		opt.Screen = metrics.DefaultScreen()
	}
	if opt.Interval <= 0 {
		opt.Interval = 2 * time.Second
	}
	events := opt.Screen.Events()
	if len(events) == 0 {
		return nil, errors.New("core: screen references no counter events")
	}
	for _, e := range events {
		if !backend.Supported(e) {
			return nil, fmt.Errorf("core: backend %s cannot count %v: %w",
				backend.Name(), e, hpm.ErrUnsupportedEvent)
		}
	}
	return &Session{
		backend: backend,
		proc:    proc,
		clock:   clock,
		opt:     opt,
		events:  events,
		states:  make(map[hpm.TaskID]*taskState),
		failed:  make(map[hpm.TaskID]bool),
	}, nil
}

// Screen returns the active screen.
func (s *Session) Screen() *metrics.Screen { return s.opt.Screen }

// Events returns the counter events the session attaches to every task.
func (s *Session) Events() []hpm.EventID { return s.events }

// Update performs one refresh: it rescans the process table, attaches
// counters to newly discovered tasks, reads deltas for known ones, and
// returns the computed sample.
func (s *Session) Update() (*Sample, error) {
	if s.closed {
		return nil, errors.New("core: session closed")
	}
	now := s.clock.Now()
	infos, err := s.proc.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("core: process snapshot: %w", err)
	}
	sample := &Sample{Time: now}
	// Book-keeping is keyed by the full TaskID, so per-thread rows,
	// per-process leader rows and group-scope rows never collide.
	seen := make(map[hpm.TaskID]bool, len(infos))

	for _, info := range infos {
		if s.opt.FilterUser != "" && info.User != s.opt.FilterUser {
			continue
		}
		seen[info.ID] = true
		st, ok := s.states[info.ID]
		if !ok {
			st = s.admit(info, now)
			if st == nil {
				// Attach failed; show an unmonitored row.
				sample.Rows = append(sample.Rows, s.cpuOnlyRow(info, now, nil))
				continue
			}
			s.states[info.ID] = st
		}
		row := s.sampleTask(st, info, now)
		sample.Rows = append(sample.Rows, row)
		st.info = info
		st.prevCPUTime = info.CPUTime
		st.prevSeenAt = now
		st.everSampled = true
	}

	// Reap tasks that disappeared.
	for id, st := range s.states {
		if !seen[id] {
			if st.counter != nil {
				_ = st.counter.Close()
			}
			delete(s.states, id)
			sample.Dropped++
		}
	}
	s.sortRows(sample.Rows)
	if s.opt.MaxRows > 0 && len(sample.Rows) > s.opt.MaxRows {
		sample.Rows = sample.Rows[:s.opt.MaxRows]
	}
	return sample, nil
}

// admit starts monitoring a newly seen task. Returns nil when counters
// cannot be attached (and remembers hard failures so they are not
// retried on every refresh).
func (s *Session) admit(info TaskInfo, now time.Duration) *taskState {
	if s.failed[info.ID] {
		return nil
	}
	ctr, err := s.backend.Attach(info.ID, s.events)
	if err != nil {
		if errors.Is(err, hpm.ErrPermission) || errors.Is(err, hpm.ErrUnsupportedEvent) {
			s.failed[info.ID] = true
		}
		return nil
	}
	counts, err := ctr.Read()
	if err != nil {
		_ = ctr.Close()
		return nil
	}
	return &taskState{
		info:        info,
		counter:     ctr,
		prevCounts:  counts,
		prevCPUTime: info.CPUTime,
		prevSeenAt:  now,
	}
}

// sampleTask reads counter deltas and evaluates the screen columns.
func (s *Session) sampleTask(st *taskState, info TaskInfo, now time.Duration) Row {
	counts, err := st.counter.Read()
	if err != nil {
		return s.cpuOnlyRow(info, now, st)
	}
	deltas := hpm.Deltas(st.prevCounts, counts)
	st.prevCounts = counts

	events := make(map[hpm.EventID]uint64, len(s.events))
	env := metrics.MapEnv{}
	for i, e := range s.events {
		events[e] = deltas[i]
		env[e.String()] = float64(deltas[i])
	}
	wall := now - st.prevSeenAt
	env[metrics.VarDeltaNS] = float64(wall)
	env[metrics.VarFreqHz] = s.opt.FreqHz
	env[metrics.VarCPUPct] = s.cpuPct(st, info, now)
	env[metrics.VarNumCPU] = float64(s.opt.NumCPUs)

	row := Row{
		Info:   info,
		CPUPct: s.cpuPct(st, info, now),
		Events: events,
		Valid:  true,
	}
	row.Values = make([]float64, len(s.opt.Screen.Columns))
	for i, col := range s.opt.Screen.Columns {
		v, err := col.Expr.Eval(env)
		if err != nil {
			v = 0
		}
		row.Values[i] = v
	}
	return row
}

// cpuPct computes OS CPU usage over the refresh interval, or since task
// start on the first observation (as top does on its first screen).
func (s *Session) cpuPct(st *taskState, info TaskInfo, now time.Duration) float64 {
	var used, wall time.Duration
	if st != nil && st.everSampled {
		used = info.CPUTime - st.prevCPUTime
		wall = now - st.prevSeenAt
	} else {
		used = info.CPUTime
		wall = now - info.StartTime
	}
	if wall <= 0 {
		return 0
	}
	pct := float64(used) / float64(wall) * 100
	if pct < 0 {
		pct = 0
	}
	return pct
}

// cpuOnlyRow builds an unmonitored row (no counters available).
func (s *Session) cpuOnlyRow(info TaskInfo, now time.Duration, st *taskState) Row {
	return Row{
		Info:   info,
		CPUPct: s.cpuPct(st, info, now),
		Values: make([]float64, len(s.opt.Screen.Columns)),
		Events: map[hpm.EventID]uint64{},
		Valid:  false,
	}
}

// sortRows orders the display.
func (s *Session) sortRows(rows []Row) {
	key := s.opt.SortBy
	if key == "" {
		key = "cpu"
	}
	colIdx := -1
	if key != "cpu" && key != "pid" {
		for i, c := range s.opt.Screen.Columns {
			if c.Name == key {
				colIdx = i
				break
			}
		}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		a, b := &rows[i], &rows[j]
		switch {
		case key == "pid":
			return a.Info.ID.PID < b.Info.ID.PID
		case colIdx >= 0:
			if a.Values[colIdx] != b.Values[colIdx] {
				return a.Values[colIdx] > b.Values[colIdx]
			}
		default:
			if a.CPUPct != b.CPUPct {
				return a.CPUPct > b.CPUPct
			}
		}
		return a.Info.ID.PID < b.Info.ID.PID
	})
}

// Run performs n refresh cycles (n <= 0 means run until the callback
// returns false), invoking each after every update. The callback may be
// nil. Between refreshes the clock advances by the configured interval.
func (s *Session) Run(n int, each func(*Sample) bool) error {
	for i := 0; n <= 0 || i < n; i++ {
		s.clock.Advance(s.opt.Interval)
		sample, err := s.Update()
		if err != nil {
			return err
		}
		if each != nil && !each(sample) {
			return nil
		}
	}
	return nil
}

// AdvanceClock advances the session's clock by one refresh interval
// without taking a sample. Experiment drivers use it to interleave their
// own bookkeeping between refreshes.
func (s *Session) AdvanceClock() { s.clock.Advance(s.opt.Interval) }

// Interval returns the configured refresh period.
func (s *Session) Interval() time.Duration { return s.opt.Interval }

// Close releases all attached counters.
func (s *Session) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for pid, st := range s.states {
		if st.counter != nil {
			if err := st.counter.Close(); err != nil && first == nil {
				first = err
			}
		}
		delete(s.states, pid)
	}
	return first
}
