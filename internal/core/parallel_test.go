package core_test

// Many-task stress coverage for the sharded sampling engine, driven
// through the real simulator stack (virtual PMU + simulated /proc), the
// same wiring the tool uses. Run with -race: the refresh fans sampling
// out across shard goroutines, so these tests double as the engine's
// data-race regression suite.

import (
	"reflect"
	"testing"
	"time"

	"tiptop/internal/core"
	"tiptop/internal/metrics"
	"tiptop/internal/sim/machine"
	"tiptop/internal/sim/pmu"
	"tiptop/internal/sim/proc"
	"tiptop/internal/sim/sched"
	"tiptop/internal/sim/workload"
)

// manyTaskKernel builds a data-center node running the n-job stress
// fleet of workload.ManyTaskSpec (the load behind ScenarioManyTasks).
// Everything is seeded, so two kernels built with the same arguments
// evolve identically.
func manyTaskKernel(tb testing.TB, n int) *sched.Kernel {
	tb.Helper()
	m, ok := machine.Presets()["e5640"]
	if !ok {
		tb.Fatal("e5640 preset missing")
	}
	k, err := sched.New(m, sched.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < n; i++ {
		spec := workload.ManyTaskSpec(i)
		spin, err := workload.NewSpin(workload.Synthetic(spec), int64(i+1))
		if err != nil {
			tb.Fatal(err)
		}
		k.Spawn(workload.ManyTaskUser(i), spec.Name, spin, nil)
	}
	return k
}

func simManySession(tb testing.TB, k *sched.Kernel, parallelism int) *core.Session {
	tb.Helper()
	s, err := core.NewSession(pmu.New(k), proc.NewSource(k), proc.NewClock(k), core.Options{
		Screen:      metrics.DefaultScreen(),
		Interval:    time.Second,
		FreqHz:      k.Machine().FreqHz,
		NumCPUs:     k.Machine().NumLogical(),
		Parallelism: parallelism,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

// TestShardedMatchesSerialOrdering runs the serial engine and a heavily
// sharded engine over two identically seeded simulations and requires
// byte-identical samples — same rows, same order, same values — at every
// refresh.
func TestShardedMatchesSerialOrdering(t *testing.T) {
	const tasks = 1200
	kSerial := manyTaskKernel(t, tasks)
	kSharded := manyTaskKernel(t, tasks)
	serial := simManySession(t, kSerial, 1)
	defer serial.Close()
	sharded := simManySession(t, kSharded, 8)
	defer sharded.Close()
	if sharded.Parallelism() != 8 || serial.Parallelism() != 1 {
		t.Fatalf("parallelism = %d/%d", serial.Parallelism(), sharded.Parallelism())
	}

	for refresh := 0; refresh < 3; refresh++ {
		a, err := serial.Update()
		if err != nil {
			t.Fatal(err)
		}
		b, err := sharded.Update()
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Rows) != tasks || len(b.Rows) != tasks {
			t.Fatalf("refresh %d: rows = %d/%d, want %d", refresh, len(a.Rows), len(b.Rows), tasks)
		}
		if !reflect.DeepEqual(a, b) {
			for i := range a.Rows {
				if !reflect.DeepEqual(a.Rows[i], b.Rows[i]) {
					t.Fatalf("refresh %d row %d differs:\nserial:  %+v\nsharded: %+v",
						refresh, i, a.Rows[i], b.Rows[i])
				}
			}
			t.Fatalf("refresh %d: samples differ outside rows", refresh)
		}
		serial.AdvanceClock()
		sharded.AdvanceClock()
	}
}

// TestShardedManyTaskChurn kills half the tasks mid-flight and checks
// the sharded engine reaps exactly the dead ones.
func TestShardedManyTaskChurn(t *testing.T) {
	const tasks = 600
	k := manyTaskKernel(t, tasks)
	s := simManySession(t, k, 0) // default: one shard per CPU
	defer s.Close()
	if _, err := s.Update(); err != nil {
		t.Fatal(err)
	}
	killed := 0
	for _, task := range k.Tasks() {
		if task.ID().PID%2 == 0 {
			if err := k.Kill(task.ID().PID); err == nil {
				killed++
			}
		}
	}
	s.AdvanceClock()
	sample, err := s.Update()
	if err != nil {
		t.Fatal(err)
	}
	if sample.Dropped != killed {
		t.Fatalf("Dropped = %d, want %d", sample.Dropped, killed)
	}
	if len(sample.Rows) != tasks-killed {
		t.Fatalf("rows = %d, want %d", len(sample.Rows), tasks-killed)
	}
}

// benchUpdate measures steady-state refreshes (after the attach warm-up)
// at the given shard count.
func benchUpdate(b *testing.B, tasks, parallelism int) {
	k := manyTaskKernel(b, tasks)
	s := simManySession(b, k, parallelism)
	defer s.Close()
	if _, err := s.Update(); err != nil { // attach all counters
		b.Fatal(err)
	}
	s.AdvanceClock()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Update(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUpdate1000Serial(b *testing.B)  { benchUpdate(b, 1000, 1) }
func BenchmarkUpdate1000Sharded(b *testing.B) { benchUpdate(b, 1000, 0) }
func BenchmarkUpdate4000Serial(b *testing.B)  { benchUpdate(b, 4000, 1) }
func BenchmarkUpdate4000Sharded(b *testing.B) { benchUpdate(b, 4000, 0) }
