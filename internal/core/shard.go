package core

import (
	"errors"
	"sync/atomic"
	"time"

	"tiptop/internal/hpm"
	"tiptop/internal/metrics"
)

// A shard owns a disjoint subset of the monitored tasks. Assignment is
// by a stable hash of the TaskID, so a task's book-keeping lives on one
// shard for its entire life and the per-refresh sampling loop runs
// without any locking: each shard touches only its own state and writes
// only its own row slots of the merged sample.
//
// The only cross-shard synchronisation is Session.attachMu, taken around
// backend.Attach and TaskCounter.Close — the two operations the hpm
// contract does not require to be concurrency-safe. Counter reads and
// metric evaluation, the per-tick hot path, are lock-free.
type shard struct {
	s      *Session
	states map[hpm.TaskID]*taskState
	failed map[hpm.TaskID]*attachFailure

	// Per-refresh scratch, reused across refreshes to keep the
	// steady-state garbage per tick low.
	work   []workItem
	seen   map[hpm.TaskID]bool
	deltas []uint64
	env    metrics.MapEnv
	reaped []hpm.TaskCounter
	// eventMaps holds one name→delta map per work slot, reused across
	// refreshes (events are keyed by canonical name; rebuilding
	// string-keyed maps every tick would dominate the refresh cost at
	// thousands of rows). Observers must not retain them — the engine
	// overwrites the backing storage on the next refresh, which the
	// Observer contract already states.
	eventMaps []map[string]uint64
}

// workItem is one snapshot entry routed to a shard. idx is the entry's
// position in the filtered snapshot: the shard writes its row there, so
// the merged sample comes out in snapshot order and the final sort
// produces output identical to the serial engine's.
type workItem struct {
	info TaskInfo
	idx  int
}

// attachFailure tracks why and when attaching to a task last failed.
type attachFailure struct {
	permanent bool
	attempts  int
	retryAt   time.Duration // next attach attempt not before this time
}

// Attach retry policy: the first failure is retried on the very next
// refresh (transient races with task startup are common), later ones
// back off exponentially until the rate settles at one attempt per
// attachBackoffMax. Retries never stop for transient errors — a task
// that becomes attachable after a long restriction (e.g. a lowered
// perf_event_paranoid) is picked up again — only permission and
// unsupported-event failures are permanent.
const (
	attachBackoffBase = time.Second
	attachBackoffMax  = time.Minute
)

func newShard(s *Session) *shard {
	return &shard{
		s:      s,
		states: make(map[hpm.TaskID]*taskState),
		failed: make(map[hpm.TaskID]*attachFailure),
		seen:   make(map[hpm.TaskID]bool),
		env:    metrics.MapEnv{},
	}
}

// shardIndex maps a task to its owning shard: FNV-1a over the id, so the
// assignment is stable across refreshes and engine instances.
func shardIndex(id hpm.TaskID, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint64(14695981039346656037)
	h = (h ^ uint64(uint32(id.PID))) * 1099511628211
	h = (h ^ uint64(uint32(id.TID))) * 1099511628211
	return int(h % uint64(n))
}

// refresh processes the shard's slice of the snapshot: attach newcomers,
// read deltas and evaluate columns for known tasks, and reap the shard's
// tasks that disappeared. Runs concurrently with other shards' refresh.
func (sh *shard) refresh(now time.Duration, rows []Row, dropped *atomic.Int64) {
	clear(sh.seen)
	// One backing array serves every row's column values this refresh.
	ncols := len(sh.s.opt.Screen.Columns)
	values := make([]float64, len(sh.work)*ncols)
	for wi, w := range sh.work {
		info := w.info
		sh.seen[info.ID] = true
		vals := values[:ncols:ncols]
		values = values[ncols:]
		events := sh.eventMap(wi)
		st, ok := sh.states[info.ID]
		if !ok {
			st = sh.admit(info, now)
			if st == nil {
				// Attach failed; show an unmonitored row.
				rows[w.idx] = sh.cpuOnlyRow(info, now, nil, vals, events)
				continue
			}
			sh.states[info.ID] = st
		}
		rows[w.idx] = sh.sampleTask(st, info, now, vals, events)
		st.info = info
		st.prevCPUTime = info.CPUTime
		st.prevSeenAt = now
		st.everSampled = true
	}

	// Reap tasks that disappeared. Their counters are handed back to
	// Update, which closes them serially after all shards join.
	for id, st := range sh.states {
		if !sh.seen[id] {
			if st.counter != nil {
				sh.reaped = append(sh.reaped, st.counter)
			}
			delete(sh.states, id)
			dropped.Add(1)
		}
	}
	// Attach-failure state goes with the task: the map cannot grow
	// without bound under churn, and a reused TaskID starts clean
	// instead of inheriting a previous owner's blacklisting.
	for id := range sh.failed {
		if !sh.seen[id] {
			delete(sh.failed, id)
		}
	}
}

// admit starts monitoring a newly seen task. Returns nil when counters
// cannot be attached; failures are remembered with bounded
// retry-with-backoff (permanent ones are never retried).
func (sh *shard) admit(info TaskInfo, now time.Duration) *taskState {
	if f, ok := sh.failed[info.ID]; ok && (f.permanent || now < f.retryAt) {
		return nil
	}
	s := sh.s
	s.attachMu.Lock()
	ctr, err := s.backend.Attach(info.ID, s.events)
	s.attachMu.Unlock()
	if err != nil {
		sh.noteFailure(info.ID, now, err)
		return nil
	}
	counts, err := ctr.Read()
	if err != nil {
		s.attachMu.Lock()
		_ = ctr.Close()
		s.attachMu.Unlock()
		sh.noteFailure(info.ID, now, err)
		return nil
	}
	delete(sh.failed, info.ID)
	reader, _ := ctr.(hpm.CountReader)
	return &taskState{
		info:        info,
		counter:     ctr,
		reader:      reader,
		prevCounts:  counts,
		prevCPUTime: info.CPUTime,
		prevSeenAt:  now,
	}
}

// noteFailure records an attach failure and schedules (or forbids) the
// next attempt.
func (sh *shard) noteFailure(id hpm.TaskID, now time.Duration, err error) {
	f := sh.failed[id]
	if f == nil {
		f = &attachFailure{}
		sh.failed[id] = f
	}
	f.attempts++
	if errors.Is(err, hpm.ErrPermission) || errors.Is(err, hpm.ErrUnsupportedEvent) {
		f.permanent = true
		return
	}
	if f.attempts > 1 {
		d := attachBackoffMax
		if shift := f.attempts - 2; shift < 10 {
			if b := attachBackoffBase << shift; b < d {
				d = b
			}
		}
		f.retryAt = now + d
	}
}

// eventMap returns the reusable name→delta map of work slot wi,
// cleared for this refresh.
func (sh *shard) eventMap(wi int) map[string]uint64 {
	if wi < len(sh.eventMaps) {
		m := sh.eventMaps[wi]
		clear(m)
		return m
	}
	m := make(map[string]uint64, len(sh.s.events))
	sh.eventMaps = append(sh.eventMaps, m)
	return m
}

// sampleTask reads counter deltas and evaluates the screen columns into
// vals, the row's pre-carved slot of the shard's value array; events is
// the row's reusable name→delta map.
func (sh *shard) sampleTask(st *taskState, info TaskInfo, now time.Duration, vals []float64, events map[string]uint64) Row {
	s := sh.s
	var counts []hpm.Count
	var err error
	if st.reader != nil {
		counts, err = st.reader.ReadInto(st.spare[:0])
	} else {
		counts, err = st.counter.Read()
	}
	if err != nil {
		return sh.cpuOnlyRow(info, now, st, vals, events)
	}
	sh.deltas = hpm.DeltasInto(sh.deltas, st.prevCounts, counts)
	coverage := coverageOf(st.prevCounts, counts)
	st.spare = st.prevCounts
	st.prevCounts = counts

	// The env keys are the same every refresh (the session's event set
	// plus the fixed variables), so the shard's map is overwritten in
	// place rather than rebuilt.
	for i := range s.events {
		name := s.events[i].Name
		events[name] = sh.deltas[i]
		sh.env[name] = float64(sh.deltas[i])
	}
	cpuPct := s.cpuPct(st, info, now)
	sh.env[metrics.VarDeltaNS] = float64(now - st.prevSeenAt)
	sh.env[metrics.VarFreqHz] = s.opt.FreqHz
	sh.env[metrics.VarCPUPct] = cpuPct
	sh.env[metrics.VarNumCPU] = float64(s.opt.NumCPUs)
	sh.env[metrics.VarSamplePct] = coverage * 100

	row := Row{
		Info:     info,
		CPUPct:   cpuPct,
		Events:   events,
		Values:   vals,
		Coverage: coverage,
		Valid:    true,
	}
	for i, col := range s.opt.Screen.Columns {
		v, err := col.Expr.Eval(sh.env)
		if err != nil {
			v = 0
		}
		vals[i] = v
	}
	return row
}

// coverageOf computes the refresh's counter coverage: the mean over
// events of the interval's Running/Enabled ratio. When no event's
// Enabled time advanced the task was off-CPU for the whole interval
// (or the backend tracks no scheduling time) and nothing was missed —
// that counts as fully covered. But when the task demonstrably ran
// (some event's Enabled advanced), an event whose own Enabled stood
// still is a rotated counter whose group sat detached: zero coverage
// this interval, not full. The mux credits a group's Enabled only at
// its harvest, so between harvests this is the honest reading.
func coverageOf(prev, cur []hpm.Count) float64 {
	if len(cur) == 0 {
		return 1
	}
	enabledDelta := func(i int) uint64 {
		d := cur[i].Enabled
		if i < len(prev) && prev[i].Enabled <= d {
			// A reset counter (cur below prev) restarts the baseline
			// at zero, mirroring hpm.DeltasInto's clamp.
			d -= prev[i].Enabled
		}
		return d
	}
	anyRan := false
	for i := range cur {
		if enabledDelta(i) > 0 {
			anyRan = true
			break
		}
	}
	sum := 0.0
	for i := range cur {
		dEn := enabledDelta(i)
		dRun := cur[i].Running
		if i < len(prev) && prev[i].Running <= dRun {
			dRun -= prev[i].Running
		}
		if dEn == 0 {
			if !anyRan {
				sum++
			}
			continue
		}
		if dRun >= dEn {
			sum++
			continue
		}
		sum += float64(dRun) / float64(dEn)
	}
	return sum / float64(len(cur))
}

// cpuOnlyRow builds an unmonitored row (no counters available).
func (sh *shard) cpuOnlyRow(info TaskInfo, now time.Duration, st *taskState, vals []float64, events map[string]uint64) Row {
	return Row{
		Info:   info,
		CPUPct: sh.s.cpuPct(st, info, now),
		Values: vals,
		Events: events,
		Valid:  false,
	}
}
