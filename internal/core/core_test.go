package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"tiptop/internal/hpm"
	"tiptop/internal/metrics"
)

// --- fakes ---

// fakeProc is a scriptable process source.
type fakeProc struct {
	infos []TaskInfo
	err   error
}

func (f *fakeProc) Snapshot() ([]TaskInfo, error) {
	if f.err != nil {
		return nil, f.err
	}
	return append([]TaskInfo(nil), f.infos...), nil
}

// fakeClock advances on demand.
type fakeClock struct{ now time.Duration }

func (c *fakeClock) Now() time.Duration      { return c.now }
func (c *fakeClock) Advance(d time.Duration) { c.now += d }

// fakeBackend produces counters that grow at fixed per-second rates.
type fakeBackend struct {
	clock *fakeClock
	// rates per event per task (counts per second)
	rates      map[int]map[string]float64
	probeErr   error
	attachErr  map[int]error
	attachLog  []int
	closeCount int
}

func (b *fakeBackend) Name() string               { return "fake" }
func (b *fakeBackend) Probe() error               { return b.probeErr }
func (b *fakeBackend) Capacity() int              { return 0 }
func (b *fakeBackend) SlotCost(hpm.EventDesc) int { return 1 }
func (b *fakeBackend) Supported(e hpm.EventDesc) bool {
	return e.Valid()
}
func (b *fakeBackend) Attach(task hpm.TaskID, events []hpm.EventDesc) (hpm.TaskCounter, error) {
	if err := b.attachErr[task.PID]; err != nil {
		return nil, err
	}
	b.attachLog = append(b.attachLog, task.PID)
	return &fakeCounter{b: b, task: task, events: events, attachedAt: b.clock.now}, nil
}

type fakeCounter struct {
	b          *fakeBackend
	task       hpm.TaskID
	events     []hpm.EventDesc
	attachedAt time.Duration
	closed     bool
}

func (c *fakeCounter) Task() hpm.TaskID { return c.task }
func (c *fakeCounter) Read() ([]hpm.Count, error) {
	if c.closed {
		return nil, errors.New("closed")
	}
	elapsed := (c.b.clock.now - c.attachedAt).Seconds()
	out := make([]hpm.Count, len(c.events))
	for i, e := range c.events {
		rate := c.b.rates[c.task.PID][e.Name]
		ns := uint64(c.b.clock.now - c.attachedAt)
		out[i] = hpm.Count{Raw: uint64(rate * elapsed), Enabled: ns, Running: ns}
	}
	return out, nil
}
func (c *fakeCounter) Close() error {
	c.closed = true
	c.b.closeCount++
	return nil
}

func fixture() (*fakeBackend, *fakeProc, *fakeClock) {
	clock := &fakeClock{}
	b := &fakeBackend{
		clock:     clock,
		rates:     map[int]map[string]float64{},
		attachErr: map[int]error{},
	}
	p := &fakeProc{}
	return b, p, clock
}

func addTask(b *fakeBackend, p *fakeProc, pid int, user string, ipc float64, freq float64) {
	p.infos = append(p.infos, TaskInfo{
		ID: hpm.TaskID{PID: pid, TID: pid}, User: user,
		Comm: fmt.Sprintf("proc%d", pid), State: "R",
	})
	b.rates[pid] = map[string]float64{
		hpm.EventCycles:       freq,
		hpm.EventInstructions: freq * ipc,
		hpm.EventCacheMisses:  1000,
	}
}

func newTestSession(t *testing.T, b hpm.Backend, p *fakeProc, c *fakeClock, opt Options) *Session {
	t.Helper()
	s, err := NewSession(b, p, c, opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// --- tests ---

func TestNewSessionValidation(t *testing.T) {
	b, p, c := fixture()
	if _, err := NewSession(nil, p, c, Options{}); err == nil {
		t.Fatal("nil backend accepted")
	}
	if _, err := NewSession(b, nil, c, Options{}); err == nil {
		t.Fatal("nil proc accepted")
	}
	if _, err := NewSession(b, p, nil, Options{}); err == nil {
		t.Fatal("nil clock accepted")
	}
	b.probeErr = hpm.ErrUnavailable
	if _, err := NewSession(b, p, c, Options{}); !errors.Is(err, hpm.ErrUnavailable) {
		t.Fatalf("probe error not propagated: %v", err)
	}
}

func TestDefaultsApplied(t *testing.T) {
	b, p, c := fixture()
	s := newTestSession(t, b, p, c, Options{})
	if s.Screen().Name != "default" {
		t.Fatalf("screen = %q", s.Screen().Name)
	}
	if len(s.Events()) == 0 {
		t.Fatal("no events derived from screen")
	}
}

func TestUpdateComputesIPCAndDeltas(t *testing.T) {
	b, p, c := fixture()
	const freq = 3.07e9
	addTask(b, p, 1, "alice", 1.97, freq)
	s := newTestSession(t, b, p, c, Options{Interval: 5 * time.Second})

	// First update attaches; counters read zero.
	sam, err := s.Update()
	if err != nil {
		t.Fatal(err)
	}
	if len(sam.Rows) != 1 || !sam.Rows[0].Valid {
		t.Fatalf("rows = %+v", sam.Rows)
	}
	c.Advance(5 * time.Second)
	sam, err = s.Update()
	if err != nil {
		t.Fatal(err)
	}
	row := sam.Rows[0]
	if got := row.IPC(); got < 1.96 || got > 1.98 {
		t.Fatalf("IPC = %v, want ~1.97", got)
	}
	// The Mcycle column (values[0]) shows cycles since last refresh in
	// millions: 5 s * 3.07 GHz = 15350 Mcycles.
	if got := row.Values[0]; got < 15349 || got > 15351 {
		t.Fatalf("Mcycle = %v, want 15350", got)
	}
	if row.Events[hpm.EventCycles] == 0 {
		t.Fatal("raw event deltas must be exposed")
	}
}

func TestRowsSortedByCPUThenPID(t *testing.T) {
	b, p, c := fixture()
	addTask(b, p, 2, "u", 1.0, 1e9)
	addTask(b, p, 1, "u", 1.5, 1e9)
	// Give pid 1 more CPU time so it sorts first.
	p.infos[1].CPUTime = 10 * time.Second
	p.infos[1].StartTime = 0
	p.infos[0].CPUTime = time.Second
	s := newTestSession(t, b, p, c, Options{})
	c.Advance(20 * time.Second)
	sam, err := s.Update()
	if err != nil {
		t.Fatal(err)
	}
	if sam.Rows[0].Info.ID.PID != 1 {
		t.Fatalf("expected pid 1 first (more CPU), got %d", sam.Rows[0].Info.ID.PID)
	}
}

func TestSortByColumnAndPID(t *testing.T) {
	b, p, c := fixture()
	addTask(b, p, 1, "u", 0.5, 1e9)
	addTask(b, p, 2, "u", 2.5, 1e9)
	s := newTestSession(t, b, p, c, Options{SortBy: "ipc"})
	s.Update()
	c.Advance(time.Second)
	sam, _ := s.Update()
	if sam.Rows[0].Info.ID.PID != 2 {
		t.Fatal("sort by ipc column must put pid 2 first")
	}
	s2 := newTestSession(t, b, p, c, Options{SortBy: "pid"})
	s2.Update()
	c.Advance(time.Second)
	sam2, _ := s2.Update()
	if sam2.Rows[0].Info.ID.PID != 1 {
		t.Fatal("sort by pid")
	}
}

func TestFilterUser(t *testing.T) {
	b, p, c := fixture()
	addTask(b, p, 1, "alice", 1, 1e9)
	addTask(b, p, 2, "bob", 1, 1e9)
	s := newTestSession(t, b, p, c, Options{FilterUser: "alice"})
	sam, err := s.Update()
	if err != nil {
		t.Fatal(err)
	}
	if len(sam.Rows) != 1 || sam.Rows[0].Info.User != "alice" {
		t.Fatalf("rows = %+v", sam.Rows)
	}
	// bob was never attached.
	for _, pid := range b.attachLog {
		if pid == 2 {
			t.Fatal("filtered task must not be attached")
		}
	}
}

func TestMaxRows(t *testing.T) {
	b, p, c := fixture()
	for pid := 1; pid <= 5; pid++ {
		addTask(b, p, pid, "u", 1, 1e9)
	}
	s := newTestSession(t, b, p, c, Options{MaxRows: 3})
	sam, err := s.Update()
	if err != nil {
		t.Fatal(err)
	}
	if len(sam.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(sam.Rows))
	}
}

func TestTaskDisappearanceClosesCounter(t *testing.T) {
	b, p, c := fixture()
	addTask(b, p, 1, "u", 1, 1e9)
	addTask(b, p, 2, "u", 1, 1e9)
	s := newTestSession(t, b, p, c, Options{})
	s.Update()
	p.infos = p.infos[:1] // pid 2 exits
	c.Advance(time.Second)
	sam, err := s.Update()
	if err != nil {
		t.Fatal(err)
	}
	if sam.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", sam.Dropped)
	}
	if b.closeCount != 1 {
		t.Fatalf("closeCount = %d, want 1", b.closeCount)
	}
}

func TestAttachPermissionNotRetried(t *testing.T) {
	b, p, c := fixture()
	addTask(b, p, 1, "root", 1, 1e9)
	b.attachErr[1] = hpm.ErrPermission
	s := newTestSession(t, b, p, c, Options{})
	for i := 0; i < 3; i++ {
		sam, err := s.Update()
		if err != nil {
			t.Fatal(err)
		}
		if len(sam.Rows) != 1 || sam.Rows[0].Valid {
			t.Fatalf("iteration %d: row should be visible but invalid", i)
		}
		c.Advance(time.Second)
	}
	if len(b.attachLog) != 0 {
		t.Fatal("attach must not be retried after permission denial")
	}
}

func TestTransientAttachFailureIsRetried(t *testing.T) {
	b, p, c := fixture()
	addTask(b, p, 1, "u", 1, 1e9)
	b.attachErr[1] = errors.New("transient")
	s := newTestSession(t, b, p, c, Options{})
	s.Update()
	delete(b.attachErr, 1)
	c.Advance(time.Second)
	sam, _ := s.Update()
	if !sam.Rows[0].Valid {
		t.Fatal("attach should succeed after transient failure clears")
	}
}

func TestCPUPercent(t *testing.T) {
	b, p, c := fixture()
	addTask(b, p, 1, "u", 1, 1e9)
	s := newTestSession(t, b, p, c, Options{})
	s.Update()
	// Task consumes 0.5 s CPU over a 1 s interval: 50 %.
	p.infos[0].CPUTime = 500 * time.Millisecond
	c.Advance(time.Second)
	sam, _ := s.Update()
	if got := sam.Rows[0].CPUPct; got < 49 || got > 51 {
		t.Fatalf("%%CPU = %v, want 50", got)
	}
}

func TestRunLoopAndCallbackStop(t *testing.T) {
	b, p, c := fixture()
	addTask(b, p, 1, "u", 1, 1e9)
	s := newTestSession(t, b, p, c, Options{Interval: time.Second})
	calls := 0
	err := s.Run(5, func(sam *Sample) bool {
		calls++
		return calls < 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("callback calls = %d, want 2 (stopped early)", calls)
	}
	if c.Now() != 2*time.Second {
		t.Fatalf("clock = %v", c.Now())
	}
}

func TestUnsupportedScreenEventRejected(t *testing.T) {
	b, p, c := fixture()
	// A backend that rejects FP assists.
	restricted := &restrictedBackend{fakeBackend: b}
	_, err := NewSession(restricted, p, c, Options{Screen: metrics.FPScreen()})
	if !errors.Is(err, hpm.ErrUnsupportedEvent) {
		t.Fatalf("err = %v, want unsupported event", err)
	}
}

type restrictedBackend struct{ *fakeBackend }

func (r *restrictedBackend) Supported(e hpm.EventDesc) bool {
	return e.Valid() && e.Name != hpm.EventFPAssist
}

func TestProcSnapshotError(t *testing.T) {
	b, p, c := fixture()
	p.err = errors.New("proc unavailable")
	s := newTestSession(t, b, p, c, Options{})
	if _, err := s.Update(); err == nil {
		t.Fatal("snapshot error must propagate")
	}
}

func TestCloseIdempotentAndBlocksUpdate(t *testing.T) {
	b, p, c := fixture()
	addTask(b, p, 1, "u", 1, 1e9)
	s := newTestSession(t, b, p, c, Options{})
	s.Update()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if b.closeCount != 1 {
		t.Fatalf("counters closed = %d", b.closeCount)
	}
	if err := s.Close(); err != nil {
		t.Fatal("double close")
	}
	if _, err := s.Update(); err == nil {
		t.Fatal("update after close must fail")
	}
}

// TestNewSessionRejectsUnknownIdentifier: an identifier that resolves
// to no event must fail session construction with an error naming the
// screen, the column and the identifier — not evaluate to zero per row.
func TestNewSessionRejectsUnknownIdentifier(t *testing.T) {
	b, p, c := fixture()
	screen := &metrics.Screen{
		Name: "custom",
		Columns: []*metrics.Column{
			{Name: "ok", Header: "OK", Width: 6, Format: "%6.2f",
				Expr: metrics.MustCompile("mega(CYCLES)")},
			{Name: "broken", Header: "BRK", Width: 6, Format: "%6.2f",
				Expr: metrics.MustCompile("ratio(CYCELS, INSTRUCTIONS)")},
		},
	}
	_, err := NewSession(b, p, c, Options{Screen: screen})
	if err == nil {
		t.Fatal("unknown identifier accepted")
	}
	for _, want := range []string{`"custom"`, `"broken"`, `"CYCELS"`} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not name %s", err, want)
		}
	}
}

// TestNewSessionResolvesThroughRegistry: user-registered events and
// spec-style identifiers (hw-cache names) resolve without touching the
// built-in defaults, and the session attaches them by descriptor.
func TestNewSessionResolvesThroughRegistry(t *testing.T) {
	b, p, c := fixture()
	addTask(b, p, 1, "alice", 1.5, 1e9)
	b.rates[1]["MY_RAW"] = 5e8
	reg := hpm.DefaultRegistry()
	if err := reg.Register(hpm.EventDesc{
		Name: "MY_RAW", Kind: hpm.KindRaw, Type: hpm.PerfTypeRaw, Config: 0xABCD,
	}); err != nil {
		t.Fatal(err)
	}
	screen := &metrics.Screen{
		Name: "custom",
		Columns: []*metrics.Column{
			{Name: "myr", Header: "MYR", Width: 6, Format: "%6.2f",
				Expr: metrics.MustCompile("ratio(MY_RAW, CYCLES)")},
		},
	}
	s := newTestSession(t, b, p, c, Options{Screen: screen, Registry: reg, Interval: time.Second})
	events := s.Events()
	if len(events) != 2 || events[0].Name != "MY_RAW" || events[0].Config != 0xABCD {
		t.Fatalf("session events = %v", events)
	}
	s.Update()
	c.Advance(time.Second)
	sam, err := s.Update()
	if err != nil {
		t.Fatal(err)
	}
	row := sam.Rows[0]
	if got := row.Values[0]; got < 0.49 || got > 0.51 {
		t.Fatalf("MY_RAW/CYCLES = %v, want ~0.5", got)
	}
	if row.Events["MY_RAW"] == 0 {
		t.Fatal("raw deltas must be keyed by event name")
	}
}
