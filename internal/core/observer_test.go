package core

import (
	"strings"
	"testing"
	"time"
)

// collector records what an Observer sees.
type collector struct {
	samples int
	rows    []int // row count per observed sample
}

func (c *collector) Observe(s *Sample) {
	c.samples++
	c.rows = append(c.rows, len(s.Rows))
}

func TestObserverSeesEverySample(t *testing.T) {
	b, p, clock := fixture()
	for pid := 1; pid <= 3; pid++ {
		addTask(b, p, pid, "u", 1.5, 1e9)
	}
	s := newTestSession(t, b, p, clock, Options{Interval: time.Second})
	var c collector
	s.Subscribe(&c)
	for i := 0; i < 3; i++ {
		clock.Advance(time.Second)
		if _, err := s.Update(); err != nil {
			t.Fatal(err)
		}
	}
	if c.samples != 3 {
		t.Fatalf("observer saw %d samples, want 3", c.samples)
	}
	for i, n := range c.rows {
		if n != 3 {
			t.Fatalf("sample %d: observer saw %d rows, want 3", i, n)
		}
	}
}

func TestObserverSeesRowsBeyondMaxRows(t *testing.T) {
	b, p, clock := fixture()
	for pid := 1; pid <= 5; pid++ {
		addTask(b, p, pid, "u", 1.0, 1e9)
	}
	s := newTestSession(t, b, p, clock, Options{Interval: time.Second, MaxRows: 2})
	var c collector
	s.Subscribe(&c)
	sample, err := s.Update()
	if err != nil {
		t.Fatal(err)
	}
	if len(sample.Rows) != 2 {
		t.Fatalf("display rows = %d, want MaxRows truncation to 2", len(sample.Rows))
	}
	if c.rows[0] != 5 {
		t.Fatalf("observer saw %d rows, want all 5 before truncation", c.rows[0])
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	b, p, clock := fixture()
	addTask(b, p, 1, "u", 1.0, 1e9)
	s := newTestSession(t, b, p, clock, Options{Interval: time.Second})
	var a, c collector
	s.Subscribe(&a)
	s.Subscribe(&c)
	s.Subscribe(nil) // ignored
	if _, err := s.Update(); err != nil {
		t.Fatal(err)
	}
	s.Unsubscribe(&a)
	s.Unsubscribe(&a) // double removal is a no-op
	if _, err := s.Update(); err != nil {
		t.Fatal(err)
	}
	if a.samples != 1 || c.samples != 2 {
		t.Fatalf("samples = %d/%d, want 1/2 after unsubscribe", a.samples, c.samples)
	}
}

func TestUnknownSortKeyRejected(t *testing.T) {
	b, p, c := fixture()
	if _, err := NewSession(b, p, c, Options{SortBy: "warp-factor"}); err == nil {
		t.Fatal("unknown sort key accepted")
	} else if !strings.Contains(err.Error(), "warp-factor") {
		t.Fatalf("error does not name the bad key: %v", err)
	}
	// The documented keys and real columns keep working.
	for _, key := range []string{"", "cpu", "pid", "ipc"} {
		if _, err := NewSession(b, p, c, Options{SortBy: key}); err != nil {
			t.Fatalf("sort key %q rejected: %v", key, err)
		}
	}
}
