package core

import (
	"errors"
	"testing"
	"time"

	"tiptop/internal/hpm"
)

// readFailCounter fails reads after a configurable number of successes.
type readFailCounter struct {
	fakeCounter
	failAfter int
	reads     int
}

func (c *readFailCounter) Read() ([]hpm.Count, error) {
	c.reads++
	if c.reads > c.failAfter {
		return nil, errors.New("transient read failure")
	}
	return c.fakeCounter.Read()
}

// readFailBackend hands out counters that fail mid-flight.
type readFailBackend struct {
	*fakeBackend
	failAfter int
}

func (b *readFailBackend) Attach(task hpm.TaskID, events []hpm.EventID) (hpm.TaskCounter, error) {
	inner, err := b.fakeBackend.Attach(task, events)
	if err != nil {
		return nil, err
	}
	fc := inner.(*fakeCounter)
	return &readFailCounter{fakeCounter: *fc, failAfter: b.failAfter}, nil
}

func TestCounterReadFailureDegradesToCPUOnly(t *testing.T) {
	b, p, c := fixture()
	addTask(b, p, 1, "u", 1.5, 1e9)
	// The first Update performs two reads (attach baseline + first
	// sample); allow one more refresh before injecting failures.
	rb := &readFailBackend{fakeBackend: b, failAfter: 3}
	s, err := NewSession(rb, p, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// First two reads succeed (attach + first sample)...
	if _, err := s.Update(); err != nil {
		t.Fatal(err)
	}
	c.Advance(time.Second)
	sam, err := s.Update()
	if err != nil {
		t.Fatal(err)
	}
	if !sam.Rows[0].Valid {
		t.Fatal("row should be valid while reads work")
	}
	// ...then the counter starts failing: the engine must keep the row
	// visible with %CPU only, never error the whole refresh.
	c.Advance(time.Second)
	sam, err = s.Update()
	if err != nil {
		t.Fatal(err)
	}
	if len(sam.Rows) != 1 {
		t.Fatalf("rows = %d", len(sam.Rows))
	}
	if sam.Rows[0].Valid {
		t.Fatal("row must degrade to cpu-only on read failure")
	}
	if sam.Rows[0].CPUPct < 0 {
		t.Fatal("cpu percentage still computed")
	}
}

func TestManyTasksChurn(t *testing.T) {
	// Tasks appearing and disappearing across refreshes must never leak
	// counters: every attach is balanced by a close when the task goes.
	b, p, c := fixture()
	s, err := NewSession(b, p, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 10; round++ {
		p.infos = nil
		for i := 0; i < 5; i++ {
			pid := round*10 + i + 1
			addTask(b, p, pid, "u", 1, 1e9)
		}
		if _, err := s.Update(); err != nil {
			t.Fatal(err)
		}
		c.Advance(time.Second)
	}
	p.infos = nil
	if _, err := s.Update(); err != nil {
		t.Fatal(err)
	}
	if b.closeCount != len(b.attachLog) {
		t.Fatalf("leaked counters: %d attached, %d closed", len(b.attachLog), b.closeCount)
	}
}
