package core

import (
	"errors"
	"testing"
	"time"

	"tiptop/internal/hpm"
)

// readFailCounter fails reads after a configurable number of successes.
type readFailCounter struct {
	fakeCounter
	failAfter int
	reads     int
}

func (c *readFailCounter) Read() ([]hpm.Count, error) {
	c.reads++
	if c.reads > c.failAfter {
		return nil, errors.New("transient read failure")
	}
	return c.fakeCounter.Read()
}

// readFailBackend hands out counters that fail mid-flight.
type readFailBackend struct {
	*fakeBackend
	failAfter int
}

func (b *readFailBackend) Attach(task hpm.TaskID, events []hpm.EventDesc) (hpm.TaskCounter, error) {
	inner, err := b.fakeBackend.Attach(task, events)
	if err != nil {
		return nil, err
	}
	fc := inner.(*fakeCounter)
	return &readFailCounter{fakeCounter: *fc, failAfter: b.failAfter}, nil
}

func TestCounterReadFailureDegradesToCPUOnly(t *testing.T) {
	b, p, c := fixture()
	addTask(b, p, 1, "u", 1.5, 1e9)
	// The first Update performs two reads (attach baseline + first
	// sample); allow one more refresh before injecting failures.
	rb := &readFailBackend{fakeBackend: b, failAfter: 3}
	s, err := NewSession(rb, p, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// First two reads succeed (attach + first sample)...
	if _, err := s.Update(); err != nil {
		t.Fatal(err)
	}
	c.Advance(time.Second)
	sam, err := s.Update()
	if err != nil {
		t.Fatal(err)
	}
	if !sam.Rows[0].Valid {
		t.Fatal("row should be valid while reads work")
	}
	// ...then the counter starts failing: the engine must keep the row
	// visible with %CPU only, never error the whole refresh.
	c.Advance(time.Second)
	sam, err = s.Update()
	if err != nil {
		t.Fatal(err)
	}
	if len(sam.Rows) != 1 {
		t.Fatalf("rows = %d", len(sam.Rows))
	}
	if sam.Rows[0].Valid {
		t.Fatal("row must degrade to cpu-only on read failure")
	}
	if sam.Rows[0].CPUPct < 0 {
		t.Fatal("cpu percentage still computed")
	}
}

// countingBackend counts every Attach call, including failed ones.
type countingBackend struct {
	*fakeBackend
	attachCalls int
}

func (b *countingBackend) Attach(task hpm.TaskID, events []hpm.EventDesc) (hpm.TaskCounter, error) {
	b.attachCalls++
	return b.fakeBackend.Attach(task, events)
}

// failedEntries sums the attach-failure book-keeping across shards.
func failedEntries(s *Session) int {
	n := 0
	for _, sh := range s.shards {
		n += len(sh.failed)
	}
	return n
}

func TestFailedMapReapedWithTask(t *testing.T) {
	// A task whose attach failed permanently must not leave an entry in
	// the failure map after it disappears — under churn the map would
	// grow without bound, and a reused TaskID would inherit the old
	// owner's blacklisting.
	b, p, c := fixture()
	addTask(b, p, 1, "root", 1, 1e9)
	b.attachErr[1] = hpm.ErrPermission
	s := newTestSession(t, b, p, c, Options{})
	if _, err := s.Update(); err != nil {
		t.Fatal(err)
	}
	if failedEntries(s) != 1 {
		t.Fatalf("failed entries = %d, want 1", failedEntries(s))
	}
	p.infos = nil // the task exits
	c.Advance(time.Second)
	if _, err := s.Update(); err != nil {
		t.Fatal(err)
	}
	if failedEntries(s) != 0 {
		t.Fatalf("failed entries after reap = %d, want 0", failedEntries(s))
	}
	// The pid is reused by a task we may monitor: it must attach.
	delete(b.attachErr, 1)
	addTask(b, p, 1, "u", 1, 1e9)
	c.Advance(time.Second)
	sam, err := s.Update()
	if err != nil {
		t.Fatal(err)
	}
	if len(sam.Rows) != 1 || !sam.Rows[0].Valid {
		t.Fatal("reused TaskID must not inherit the old owner's blacklisting")
	}
}

func TestTransientAttachBackoff(t *testing.T) {
	// A transiently failing attach is retried on the next refresh, then
	// with exponential backoff capped at attachBackoffMax — bounded
	// rate, but never abandoned.
	clock := &fakeClock{}
	fb := &fakeBackend{clock: clock, rates: map[int]map[string]float64{}, attachErr: map[int]error{}}
	b := &countingBackend{fakeBackend: fb}
	p := &fakeProc{}
	addTask(fb, p, 1, "u", 1, 1e9)
	fb.attachErr[1] = errors.New("transient")
	s := newTestSession(t, b, p, clock, Options{})

	if _, err := s.Update(); err != nil { // attempt 1 at t=0
		t.Fatal(err)
	}
	if b.attachCalls != 1 {
		t.Fatalf("attach calls = %d, want 1", b.attachCalls)
	}
	clock.Advance(time.Second) // first failure retries on the next refresh
	s.Update()
	if b.attachCalls != 2 {
		t.Fatalf("attach calls = %d, want 2 (retry on next refresh)", b.attachCalls)
	}
	clock.Advance(500 * time.Millisecond) // t=1.5s, retryAt=2s: inside backoff
	s.Update()
	if b.attachCalls != 2 {
		t.Fatalf("attach calls = %d, want 2 (backoff must suppress retry)", b.attachCalls)
	}
	clock.Advance(500 * time.Millisecond) // t=2s: backoff elapsed
	s.Update()
	if b.attachCalls != 3 {
		t.Fatalf("attach calls = %d, want 3 (retry after backoff)", b.attachCalls)
	}
	// Keep failing: the retry rate settles at one attempt per
	// attachBackoffMax, never giving up on the task.
	callsBefore := b.attachCalls
	for i := 0; i < 5; i++ {
		clock.Advance(attachBackoffMax + time.Second)
		s.Update()
	}
	if b.attachCalls != callsBefore+5 {
		t.Fatalf("attach calls = %d, want %d (one per capped backoff window)",
			b.attachCalls, callsBefore+5)
	}
	clock.Advance(attachBackoffMax / 2)
	s.Update()
	if b.attachCalls != callsBefore+5 {
		t.Fatalf("attach calls = %d, want %d (inside the capped window)",
			b.attachCalls, callsBefore+5)
	}
	// The restriction lifts: the long-lived task is monitored again
	// without having to exit and reappear.
	delete(fb.attachErr, 1)
	clock.Advance(attachBackoffMax)
	sam, err := s.Update()
	if err != nil {
		t.Fatal(err)
	}
	if len(sam.Rows) != 1 || !sam.Rows[0].Valid {
		t.Fatal("task must attach once the transient restriction clears")
	}
	if failedEntries(s) != 0 {
		t.Fatalf("failed entries = %d, want 0 after recovery", failedEntries(s))
	}
}

func TestBackoffStateClearedOnSuccess(t *testing.T) {
	b, p, c := fixture()
	addTask(b, p, 1, "u", 1, 1e9)
	b.attachErr[1] = errors.New("transient")
	s := newTestSession(t, b, p, c, Options{})
	s.Update()
	delete(b.attachErr, 1)
	c.Advance(time.Second)
	s.Update()
	if failedEntries(s) != 0 {
		t.Fatalf("failed entries = %d, want 0 after successful attach", failedEntries(s))
	}
}

func TestManyTasksChurn(t *testing.T) {
	// Tasks appearing and disappearing across refreshes must never leak
	// counters: every attach is balanced by a close when the task goes.
	b, p, c := fixture()
	s, err := NewSession(b, p, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 10; round++ {
		p.infos = nil
		for i := 0; i < 5; i++ {
			pid := round*10 + i + 1
			addTask(b, p, pid, "u", 1, 1e9)
		}
		if _, err := s.Update(); err != nil {
			t.Fatal(err)
		}
		c.Advance(time.Second)
	}
	p.infos = nil
	if _, err := s.Update(); err != nil {
		t.Fatal(err)
	}
	if b.closeCount != len(b.attachLog) {
		t.Fatalf("leaked counters: %d attached, %d closed", len(b.attachLog), b.closeCount)
	}
}
