// Package history records the tiptop engine's samples over time: a
// fixed-capacity ring buffer of counter/column observations per task,
// plus roll-up aggregates (per-user, per-command and machine-wide
// totals and windowed rates) maintained incrementally.
//
// The Recorder implements core.Observer and is fed synchronously from
// the sampling goroutine, so its hot path is engineered like the
// engine's: recording one refresh costs O(rows) work and — once every
// task's ring and every aggregate entry exist — zero allocations. All
// storage a refresh writes into (ring arrays, aggregate checkpoint
// rings, the touched-scratch slice) is preallocated or reused; only
// genuinely new tasks, users or commands allocate.
//
// Queries (Snapshot, History, PIDs) copy out under a read lock and may
// run concurrently with recording — this is what lets an HTTP daemon
// serve scrapes against a live sharded sampler.
package history

import (
	"sort"
	"sync"
	"time"

	"tiptop/internal/core"
	"tiptop/internal/hpm"
)

// Options tune a Recorder.
type Options struct {
	// Capacity is the number of points each task's ring retains
	// (default 600 — twenty minutes at the paper's 2 s cadence).
	Capacity int
	// Window is the horizon of the windowed rates in the aggregates
	// (default 60 s). Checkpoints are kept for the most recent 128
	// refreshes, so a window longer than 128 refresh intervals is
	// effectively capped there; WindowMIPS always divides by the span
	// actually covered, never the nominal window.
	Window time.Duration
	// MaxSeries bounds the number of task series kept, including tasks
	// that have exited (default 8192). When exceeded, the series with
	// the oldest last observation is evicted.
	MaxSeries int
}

func (o Options) withDefaults() Options {
	if o.Capacity <= 0 {
		o.Capacity = 600
	}
	if o.Window <= 0 {
		o.Window = time.Minute
	}
	if o.MaxSeries <= 0 {
		o.MaxSeries = 8192
	}
	return o
}

// Point is one recorded observation of a task. Instr, Cycles and
// Misses are the raw counter deltas of the refresh interval — what the
// expression query engine evaluates INSTRUCTIONS/CYCLES/CACHE_MISSES
// against when querying live history instead of the durable store.
type Point struct {
	TimeSeconds float64   `json:"time_s"`
	CPUPct      float64   `json:"cpu_pct"`
	IPC         float64   `json:"ipc"`
	Values      []float64 `json:"values"` // one per screen column
	Instr       uint64    `json:"instr,omitempty"`
	Cycles      uint64    `json:"cycles,omitempty"`
	Misses      uint64    `json:"misses,omitempty"`
}

// Series is the recorded history of one task.
type Series struct {
	PID     int     `json:"pid"`
	TID     int     `json:"tid"`
	User    string  `json:"user"`
	Command string  `json:"command"`
	Alive   bool    `json:"alive"`
	Points  []Point `json:"points"` // oldest first
}

// Aggregate is a roll-up over a set of tasks (one user's, one
// command's, or the whole machine's).
type Aggregate struct {
	// Live state of the most recent refresh.
	Tasks  int     `json:"tasks"`   // tasks present
	CPUPct float64 `json:"cpu_pct"` // summed OS CPU usage
	IPC    float64 `json:"ipc"`     // Σinstructions / Σcycles of the refresh

	// Cumulative counts since recording started.
	Instructions uint64 `json:"instructions_total"`
	Cycles       uint64 `json:"cycles_total"`
	CacheMisses  uint64 `json:"cache_misses_total"`

	// Windowed rates over Options.Window.
	WindowIPC  float64 `json:"window_ipc"`  // Σinstr / Σcycles in the window
	WindowMIPS float64 `json:"window_mips"` // million instructions per second
}

// TaskSnap is the latest observation of one task in a Snapshot.
type TaskSnap struct {
	PID     int     `json:"pid"`
	TID     int     `json:"tid"`
	User    string  `json:"user"`
	Command string  `json:"command"`
	State   string  `json:"state"`
	CPUPct  float64 `json:"cpu_pct"`
	IPC     float64 `json:"ipc"`
	// Coverage is the counted fraction of the last interval (1 = exact,
	// lower = a multiplexed extrapolation). Omitted when exact.
	Coverage float64   `json:"coverage,omitempty"`
	Values   []float64 `json:"values"`
}

// Snapshot is a consistent copy of the recorder's current state.
type Snapshot struct {
	TimeSeconds float64              `json:"time_s"` // clock time of the last refresh
	Refreshes   uint64               `json:"refreshes"`
	Columns     []string             `json:"columns"` // screen column names
	Machine     Aggregate            `json:"machine"`
	Users       map[string]Aggregate `json:"users"`
	Commands    map[string]Aggregate `json:"commands"`
	Tasks       []TaskSnap           `json:"tasks"` // live tasks, sorted by pid then tid
}

// aggCheckpoints is the capacity of each aggregate's checkpoint ring
// backing the windowed rates. At the default 2 s cadence it spans over
// four minutes, comfortably more than the default 60 s window.
const aggCheckpoints = 128

// aggState is the recorder's book-keeping for one aggregate key.
type aggState struct {
	epoch uint64 // refresh that last touched this aggregate
	// Per-refresh accumulation, reset lazily when a new epoch first
	// touches the entry.
	tasks           int
	cpuPct          float64
	dInstr, dCycles float64
	instr, cycles   uint64 // cumulative
	cacheMisses     uint64
	// Checkpoint ring: cumulative totals after each refresh that
	// touched this aggregate, for windowed-rate queries. Fixed arrays:
	// writing a checkpoint never allocates.
	ckTime           [aggCheckpoints]time.Duration
	ckInstr, ckCycle [aggCheckpoints]uint64
	ckHead, ckLen    int
}

func (a *aggState) touch(epoch uint64) {
	if a.epoch != epoch {
		a.epoch = epoch
		a.tasks = 0
		a.cpuPct = 0
		a.dInstr = 0
		a.dCycles = 0
	}
}

func (a *aggState) checkpoint(now time.Duration) {
	idx := (a.ckHead + a.ckLen) % aggCheckpoints
	if a.ckLen == aggCheckpoints {
		a.ckHead = (a.ckHead + 1) % aggCheckpoints
	} else {
		a.ckLen++
	}
	a.ckTime[idx] = now
	a.ckInstr[idx] = a.instr
	a.ckCycle[idx] = a.cycles
}

// window finds the oldest checkpoint still inside [now-window, now] and
// returns the instruction/cycle/time deltas up to the newest one.
func (a *aggState) window(now, window time.Duration) (dInstr, dCycles uint64, dt time.Duration) {
	if a.ckLen < 2 {
		return 0, 0, 0
	}
	newest := (a.ckHead + a.ckLen - 1) % aggCheckpoints
	oldest := newest
	for i := 1; i < a.ckLen; i++ {
		idx := (a.ckHead + a.ckLen - 1 - i) % aggCheckpoints
		if a.ckTime[idx] < now-window {
			break
		}
		oldest = idx
	}
	if oldest == newest {
		return 0, 0, 0
	}
	return a.ckInstr[newest] - a.ckInstr[oldest],
		a.ckCycle[newest] - a.ckCycle[oldest],
		a.ckTime[newest] - a.ckTime[oldest]
}

func (a *aggState) aggregate(live bool, now, window time.Duration) Aggregate {
	out := Aggregate{
		Instructions: a.instr,
		Cycles:       a.cycles,
		CacheMisses:  a.cacheMisses,
	}
	if live {
		out.Tasks = a.tasks
		out.CPUPct = a.cpuPct
		if a.dCycles > 0 {
			out.IPC = a.dInstr / a.dCycles
		}
	}
	dInstr, dCycles, dt := a.window(now, window)
	if dCycles > 0 {
		out.WindowIPC = float64(dInstr) / float64(dCycles)
	}
	if dt > 0 {
		out.WindowMIPS = float64(dInstr) / dt.Seconds() / 1e6
	}
	return out
}

// ring is the fixed-capacity time series of one task. The value matrix
// is one flat array (capacity × columns), so a push after warm-up
// writes in place and never allocates.
type ring struct {
	id        hpm.TaskID
	user      string
	comm      string
	state     string
	coverage  float64       // counted fraction of the latest interval
	start     time.Duration // TaskInfo.StartTime, the pid-reuse detector
	lastEpoch uint64
	ncols     int
	times     []time.Duration
	cpu       []float64
	ipc       []float64
	vals      []float64 // len = cap(times) * ncols, row-major
	instr     []uint64  // per-interval counter deltas, for expression queries
	cycles    []uint64
	misses    []uint64
	head, n   int
}

func (rg *ring) push(now time.Duration, cpuPct, ipc float64, values []float64, ncols int, instr, cycles, misses uint64) {
	if ncols != rg.ncols {
		// The screen's column count was learned after this ring was
		// created (a first refresh with no rows): rebuild the value
		// matrix once and restart the series.
		rg.ncols = ncols
		rg.vals = make([]float64, len(rg.times)*ncols)
		rg.head, rg.n = 0, 0
	}
	c := len(rg.times)
	idx := (rg.head + rg.n) % c
	if rg.n == c {
		rg.head = (rg.head + 1) % c
	} else {
		rg.n++
	}
	rg.times[idx] = now
	rg.cpu[idx] = cpuPct
	rg.ipc[idx] = ipc
	rg.instr[idx] = instr
	rg.cycles[idx] = cycles
	rg.misses[idx] = misses
	copy(rg.vals[idx*ncols:(idx+1)*ncols], values)
}

// Recorder accumulates history and aggregates from observed samples.
// It implements core.Observer; queries are safe from other goroutines.
type Recorder struct {
	mu        sync.RWMutex
	opt       Options
	columns   []string
	ncols     int
	epoch     uint64
	refreshes uint64
	lastTime  time.Duration
	series    map[hpm.TaskID]*ring
	users     map[string]*aggState
	commands  map[string]*aggState
	machine   aggState
	// touched collects the aggregates updated by the current refresh so
	// cumulative totals and checkpoints are folded in once per entry;
	// reused across refreshes.
	touched []*aggState
	// tee receives every observed sample after the recorder's own fold,
	// outside the recorder lock — the hook a durable store attaches by.
	tee core.Observer
}

// New creates a Recorder. Column names may be set later (SetColumns);
// recording works without them, value vectors are sized from the rows.
func New(opt Options) *Recorder {
	return &Recorder{
		opt:      opt.withDefaults(),
		ncols:    -1,
		series:   make(map[hpm.TaskID]*ring),
		users:    make(map[string]*aggState),
		commands: make(map[string]*aggState),
	}
}

// SetColumns records the screen's column names for snapshots and
// exports, and fixes the width of the per-point value vectors.
// Idempotent.
func (r *Recorder) SetColumns(names []string) {
	r.mu.Lock()
	r.columns = append([]string(nil), names...)
	if r.ncols < 0 {
		r.ncols = len(names)
	}
	tee := r.tee
	r.mu.Unlock()
	if cs, ok := tee.(columnSetter); ok {
		cs.SetColumns(names)
	}
}

// columnSetter is implemented by tee targets that label their records
// with the screen's column names (store.Store does).
type columnSetter interface{ SetColumns([]string) }

// Capacity returns the per-task ring capacity.
func (r *Recorder) Capacity() int { return r.opt.Capacity }

// Tee forwards every subsequently observed sample to o after the
// recorder's own fold — the attachment point for a durable store
// (internal/store) or any other secondary observer. The tee runs on the
// sampling goroutine but outside the recorder's lock, so a slow tee
// (a disk write) delays the next refresh, not concurrent queries. Like
// Subscribe, not safe to call concurrently with Observe; a nil o
// detaches. Samples must not be retained by the tee (the core.Observer
// contract).
func (r *Recorder) Tee(o core.Observer) {
	r.tee = o
	r.mu.RLock()
	cols := r.columns
	r.mu.RUnlock()
	if cs, ok := o.(columnSetter); ok && len(cols) > 0 {
		cs.SetColumns(cols)
	}
}

// Observe records one sample. It is the recorder's hot path: O(rows)
// and allocation-free once rings and aggregate entries exist.
func (r *Recorder) Observe(s *core.Sample) {
	r.observe(s)
	if r.tee != nil {
		r.tee.Observe(s)
	}
}

func (r *Recorder) observe(s *core.Sample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.epoch++
	r.refreshes++
	r.lastTime = s.Time
	r.touched = r.touched[:0]

	for i := range s.Rows {
		row := &s.Rows[i]
		if r.ncols < 0 {
			r.ncols = len(row.Values)
		}
		rg := r.series[row.Info.ID]
		if rg == nil {
			rg = r.admit(row.Info)
		} else if rg.start != row.Info.StartTime {
			// The OS recycled this TaskID for a new process: restart
			// the series in place instead of splicing two tasks'
			// histories under the old user/command labels.
			rg.reset(row.Info)
		}
		rg.lastEpoch = r.epoch
		rg.state = row.Info.State
		rg.coverage = row.Coverage
		ipc := row.IPC()
		instr := row.Events[hpm.EventInstructions]
		cycles := row.Events[hpm.EventCycles]
		misses := row.Events[hpm.EventCacheMisses]
		rg.push(s.Time, row.CPUPct, ipc, row.Values, r.ncols, instr, cycles, misses)
		r.fold(&r.machine, row, instr, cycles, misses)
		ua := r.users[row.Info.User]
		if ua == nil {
			ua = &aggState{}
			r.users[row.Info.User] = ua
		}
		r.fold(ua, row, instr, cycles, misses)
		ca := r.commands[row.Info.Comm]
		if ca == nil {
			ca = &aggState{}
			r.commands[row.Info.Comm] = ca
		}
		r.fold(ca, row, instr, cycles, misses)
	}

	// One windowed-rate checkpoint per aggregate the refresh touched.
	for _, a := range r.touched {
		a.checkpoint(s.Time)
	}
}

func (r *Recorder) fold(a *aggState, row *core.Row, instr, cycles, misses uint64) {
	if a.epoch != r.epoch {
		a.touch(r.epoch)
		r.touched = append(r.touched, a)
	}
	a.tasks++
	a.cpuPct += row.CPUPct
	a.dInstr += float64(instr)
	a.dCycles += float64(cycles)
	a.instr += instr
	a.cycles += cycles
	a.cacheMisses += misses
}

// admit creates the ring for a newly seen task, evicting the stalest
// series when the retention bound is hit.
func (r *Recorder) admit(info core.TaskInfo) *ring {
	if len(r.series) >= r.opt.MaxSeries {
		r.evict()
	}
	c := r.opt.Capacity
	ncols := r.ncols
	if ncols < 0 {
		ncols = 0
	}
	rg := &ring{
		id:     info.ID,
		user:   info.User,
		comm:   info.Comm,
		start:  info.StartTime,
		ncols:  ncols,
		times:  make([]time.Duration, c),
		cpu:    make([]float64, c),
		ipc:    make([]float64, c),
		vals:   make([]float64, c*ncols),
		instr:  make([]uint64, c),
		cycles: make([]uint64, c),
		misses: make([]uint64, c),
	}
	r.series[info.ID] = rg
	return rg
}

// reset re-labels a ring for a new owner of a recycled TaskID and
// drops the previous task's points (storage is kept).
func (rg *ring) reset(info core.TaskInfo) {
	rg.user = info.User
	rg.comm = info.Comm
	rg.start = info.StartTime
	rg.head, rg.n = 0, 0
}

// evict drops the series with the oldest last observation, preferring
// exited tasks (a live task is only evicted when every retained series
// is live, i.e. MaxSeries is genuinely too small for the machine).
func (r *Recorder) evict() {
	var victim hpm.TaskID
	var victimEpoch uint64
	found := false
	for id, rg := range r.series {
		if rg.lastEpoch == r.epoch {
			continue // live this refresh
		}
		if !found || rg.lastEpoch < victimEpoch {
			victim, victimEpoch, found = id, rg.lastEpoch, true
		}
	}
	if !found {
		for id, rg := range r.series {
			if !found || rg.lastEpoch < victimEpoch {
				victim, victimEpoch, found = id, rg.lastEpoch, true
			}
		}
	}
	if found {
		delete(r.series, victim)
	}
}

// Snapshot copies out the recorder's current state.
func (r *Recorder) Snapshot() *Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	snap := &Snapshot{
		TimeSeconds: r.lastTime.Seconds(),
		Refreshes:   r.refreshes,
		Columns:     append([]string(nil), r.columns...),
		Machine:     r.machine.aggregate(r.machine.epoch == r.epoch, r.lastTime, r.opt.Window),
		Users:       make(map[string]Aggregate, len(r.users)),
		Commands:    make(map[string]Aggregate, len(r.commands)),
	}
	for u, a := range r.users {
		snap.Users[u] = a.aggregate(a.epoch == r.epoch, r.lastTime, r.opt.Window)
	}
	for c, a := range r.commands {
		snap.Commands[c] = a.aggregate(a.epoch == r.epoch, r.lastTime, r.opt.Window)
	}
	for _, rg := range r.series {
		if rg.lastEpoch != r.epoch || rg.n == 0 {
			continue
		}
		last := (rg.head + rg.n - 1) % len(rg.times)
		ncols := r.ncols
		if ncols < 0 {
			ncols = 0
		}
		coverage := rg.coverage
		if coverage >= 1 {
			coverage = 0 // exact counting is elided from the JSON
		}
		snap.Tasks = append(snap.Tasks, TaskSnap{
			PID:      rg.id.PID,
			TID:      rg.id.TID,
			User:     rg.user,
			Command:  rg.comm,
			State:    rg.state,
			CPUPct:   rg.cpu[last],
			IPC:      rg.ipc[last],
			Coverage: coverage,
			Values:   append([]float64(nil), rg.vals[last*ncols:(last+1)*ncols]...),
		})
	}
	sort.Slice(snap.Tasks, func(i, j int) bool {
		a, b := snap.Tasks[i], snap.Tasks[j]
		if a.PID != b.PID {
			return a.PID < b.PID
		}
		return a.TID < b.TID
	})
	return snap
}

// History returns copies of every recorded series whose PID matches,
// sorted by TID — one entry for process-scope recording, several under
// per-thread monitoring. Nil when the PID was never observed.
func (r *Recorder) History(pid int) []Series {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []Series
	for id, rg := range r.series {
		if id.PID != pid {
			continue
		}
		out = append(out, r.copySeries(rg))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TID < out[j].TID })
	return out
}

func (r *Recorder) copySeries(rg *ring) Series {
	ncols := r.ncols
	if ncols < 0 {
		ncols = 0
	}
	s := Series{
		PID:     rg.id.PID,
		TID:     rg.id.TID,
		User:    rg.user,
		Command: rg.comm,
		Alive:   rg.lastEpoch == r.epoch,
		Points:  make([]Point, 0, rg.n),
	}
	for i := 0; i < rg.n; i++ {
		idx := (rg.head + i) % len(rg.times)
		s.Points = append(s.Points, Point{
			TimeSeconds: rg.times[idx].Seconds(),
			CPUPct:      rg.cpu[idx],
			IPC:         rg.ipc[idx],
			Values:      append([]float64(nil), rg.vals[idx*ncols:(idx+1)*ncols]...),
			Instr:       rg.instr[idx],
			Cycles:      rg.cycles[idx],
			Misses:      rg.misses[idx],
		})
	}
	return s
}

// AllSeries copies out every recorded series, sorted by PID then TID —
// the snapshot the expression query engine evaluates against when its
// backend is live history rather than the durable store.
func (r *Recorder) AllSeries() []Series {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Series, 0, len(r.series))
	for _, rg := range r.series {
		out = append(out, r.copySeries(rg))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PID != out[j].PID {
			return out[i].PID < out[j].PID
		}
		return out[i].TID < out[j].TID
	})
	return out
}

// Columns returns the screen column names in force, as set by
// SetColumns — the names a query expression can reference in addition
// to the raw counters.
func (r *Recorder) Columns() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.columns...)
}

// PIDs lists the recorded process IDs, sorted.
func (r *Recorder) PIDs() []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	seen := make(map[int]bool, len(r.series))
	for id := range r.series {
		seen[id.PID] = true
	}
	out := make([]int, 0, len(seen))
	for pid := range seen {
		out = append(out, pid)
	}
	sort.Ints(out)
	return out
}
