package history

import (
	"testing"
	"time"

	"tiptop/internal/core"
	"tiptop/internal/hpm"
)

// mkSample builds a hand-rolled engine sample. Each row spec is
// {pid, user, comm, cpuPct, instr, cycles}.
type rowSpec struct {
	pid          int
	user, comm   string
	cpuPct       float64
	instr, cycle uint64
}

func mkSample(t time.Duration, specs []rowSpec) *core.Sample {
	s := &core.Sample{Time: t}
	for _, sp := range specs {
		s.Rows = append(s.Rows, core.Row{
			Info: core.TaskInfo{
				ID:   hpm.TaskID{PID: sp.pid, TID: sp.pid},
				User: sp.user, Comm: sp.comm, State: "R",
			},
			CPUPct: sp.cpuPct,
			Values: []float64{float64(sp.instr) / float64(sp.cycle), 42},
			Events: map[string]uint64{
				hpm.EventInstructions: sp.instr,
				hpm.EventCycles:       sp.cycle,
				hpm.EventCacheMisses:  sp.instr / 100,
			},
			Valid: true,
		})
	}
	return s
}

func TestRecorderSeriesAndSnapshot(t *testing.T) {
	r := New(Options{Capacity: 8})
	r.SetColumns([]string{"ipc", "const"})
	for i := 1; i <= 3; i++ {
		r.Observe(mkSample(time.Duration(i)*time.Second, []rowSpec{
			{pid: 1, user: "alice", comm: "mcf", cpuPct: 90, instr: 2e9, cycle: 1e9},
			{pid: 2, user: "bob", comm: "astar", cpuPct: 50, instr: 1e9, cycle: 2e9},
		}))
	}

	series := r.History(1)
	if len(series) != 1 {
		t.Fatalf("series for pid 1 = %d, want 1", len(series))
	}
	s := series[0]
	if s.User != "alice" || s.Command != "mcf" || !s.Alive {
		t.Fatalf("series meta = %+v", s)
	}
	if len(s.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(s.Points))
	}
	p := s.Points[2]
	if p.TimeSeconds != 3 || p.CPUPct != 90 || p.IPC != 2 {
		t.Fatalf("last point = %+v", p)
	}
	if len(p.Values) != 2 || p.Values[1] != 42 {
		t.Fatalf("point values = %v", p.Values)
	}
	if got := r.History(99); got != nil {
		t.Fatalf("unknown pid returned %v", got)
	}
	if pids := r.PIDs(); len(pids) != 2 || pids[0] != 1 || pids[1] != 2 {
		t.Fatalf("PIDs = %v", pids)
	}

	snap := r.Snapshot()
	if snap.Refreshes != 3 || snap.TimeSeconds != 3 {
		t.Fatalf("snapshot meta = %+v", snap)
	}
	if len(snap.Tasks) != 2 || snap.Tasks[0].PID != 1 || snap.Tasks[1].PID != 2 {
		t.Fatalf("snapshot tasks = %+v", snap.Tasks)
	}
	if got := snap.Machine.Tasks; got != 2 {
		t.Fatalf("machine tasks = %d", got)
	}
	// Machine IPC of the last refresh: (2e9+1e9)/(1e9+2e9) = 1.
	if got := snap.Machine.IPC; got != 1 {
		t.Fatalf("machine IPC = %v", got)
	}
	if got := snap.Machine.Instructions; got != 9e9 {
		t.Fatalf("machine cumulative instructions = %v", got)
	}
	alice := snap.Users["alice"]
	if alice.Tasks != 1 || alice.IPC != 2 || alice.CPUPct != 90 {
		t.Fatalf("alice aggregate = %+v", alice)
	}
	mcf := snap.Commands["mcf"]
	if mcf.Instructions != 6e9 {
		t.Fatalf("mcf cumulative instructions = %v", mcf.Instructions)
	}
	if len(snap.Columns) != 2 || snap.Columns[0] != "ipc" {
		t.Fatalf("columns = %v", snap.Columns)
	}
}

func TestRingWrapsAtCapacity(t *testing.T) {
	r := New(Options{Capacity: 4})
	r.SetColumns([]string{"ipc", "const"})
	for i := 1; i <= 10; i++ {
		r.Observe(mkSample(time.Duration(i)*time.Second, []rowSpec{
			{pid: 7, user: "u", comm: "c", cpuPct: float64(i), instr: 1e9, cycle: 1e9},
		}))
	}
	s := r.History(7)[0]
	if len(s.Points) != 4 {
		t.Fatalf("points = %d, want ring capacity 4", len(s.Points))
	}
	// Oldest retained is refresh 7, newest is 10.
	if s.Points[0].TimeSeconds != 7 || s.Points[3].TimeSeconds != 10 {
		t.Fatalf("ring window = [%v, %v], want [7, 10]",
			s.Points[0].TimeSeconds, s.Points[3].TimeSeconds)
	}
	if s.Points[0].CPUPct != 7 {
		t.Fatalf("oldest point cpu = %v", s.Points[0].CPUPct)
	}
}

func TestWindowedRates(t *testing.T) {
	r := New(Options{Capacity: 16, Window: 4 * time.Second})
	r.SetColumns([]string{"ipc", "const"})
	// 1e9 cycles and 2e9 instructions per second for 10 seconds.
	for i := 1; i <= 10; i++ {
		r.Observe(mkSample(time.Duration(i)*time.Second, []rowSpec{
			{pid: 1, user: "u", comm: "c", cpuPct: 100, instr: 2e9, cycle: 1e9},
		}))
	}
	m := r.Snapshot().Machine
	if m.WindowIPC < 1.99 || m.WindowIPC > 2.01 {
		t.Fatalf("window IPC = %v, want 2", m.WindowIPC)
	}
	// 2e9 instructions per second = 2000 MIPS.
	if m.WindowMIPS < 1999 || m.WindowMIPS > 2001 {
		t.Fatalf("window MIPS = %v, want 2000", m.WindowMIPS)
	}
}

func TestDeadTasksLeaveAggregatesButKeepHistory(t *testing.T) {
	r := New(Options{Capacity: 8})
	r.SetColumns([]string{"ipc", "const"})
	r.Observe(mkSample(1*time.Second, []rowSpec{
		{pid: 1, user: "u", comm: "a", cpuPct: 10, instr: 1e9, cycle: 1e9},
		{pid: 2, user: "u", comm: "b", cpuPct: 20, instr: 1e9, cycle: 1e9},
	}))
	r.Observe(mkSample(2*time.Second, []rowSpec{
		{pid: 2, user: "u", comm: "b", cpuPct: 20, instr: 1e9, cycle: 1e9},
	}))
	snap := r.Snapshot()
	if len(snap.Tasks) != 1 || snap.Tasks[0].PID != 2 {
		t.Fatalf("live tasks = %+v", snap.Tasks)
	}
	if snap.Machine.Tasks != 1 {
		t.Fatalf("machine live tasks = %d", snap.Machine.Tasks)
	}
	// Command "a" saw no rows this refresh: live fields zero, totals kept.
	a := snap.Commands["a"]
	if a.Tasks != 0 || a.IPC != 0 {
		t.Fatalf("dead command live fields = %+v", a)
	}
	if a.Instructions != 1e9 {
		t.Fatalf("dead command totals = %v", a.Instructions)
	}
	// History of the exited task survives, marked not alive.
	s := r.History(1)
	if len(s) != 1 || s[0].Alive || len(s[0].Points) != 1 {
		t.Fatalf("exited series = %+v", s)
	}
}

func TestEvictionPrefersDeadSeries(t *testing.T) {
	r := New(Options{Capacity: 2, MaxSeries: 3})
	r.SetColumns([]string{"ipc", "const"})
	// Three tasks, then pid 1 dies, then a fourth task arrives.
	r.Observe(mkSample(1*time.Second, []rowSpec{
		{pid: 1, user: "u", comm: "a", instr: 1, cycle: 1},
		{pid: 2, user: "u", comm: "b", instr: 1, cycle: 1},
		{pid: 3, user: "u", comm: "c", instr: 1, cycle: 1},
	}))
	r.Observe(mkSample(2*time.Second, []rowSpec{
		{pid: 2, user: "u", comm: "b", instr: 1, cycle: 1},
		{pid: 3, user: "u", comm: "c", instr: 1, cycle: 1},
		{pid: 4, user: "u", comm: "d", instr: 1, cycle: 1},
	}))
	if got := r.History(1); got != nil {
		t.Fatalf("dead pid 1 must be evicted, got %+v", got)
	}
	for _, pid := range []int{2, 3, 4} {
		if got := r.History(pid); len(got) != 1 {
			t.Fatalf("live pid %d evicted", pid)
		}
	}
}

// TestPIDReuseStartsFreshSeries: when the OS recycles a TaskID for a
// new process (detected by StartTime), the recorder must not splice the
// two tasks' histories under the old labels.
func TestPIDReuseStartsFreshSeries(t *testing.T) {
	r := New(Options{Capacity: 8})
	r.SetColumns([]string{"ipc", "const"})
	old := mkSample(1*time.Second, []rowSpec{
		{pid: 5, user: "alice", comm: "postgres", cpuPct: 10, instr: 1e9, cycle: 1e9},
	})
	r.Observe(old)
	r.Observe(mkSample(2*time.Second, nil)) // pid 5 exits

	// pid 5 comes back as a different process.
	reused := mkSample(3*time.Second, []rowSpec{
		{pid: 5, user: "bob", comm: "make", cpuPct: 90, instr: 2e9, cycle: 1e9},
	})
	reused.Rows[0].Info.StartTime = 2500 * time.Millisecond
	r.Observe(reused)

	series := r.History(5)
	if len(series) != 1 {
		t.Fatalf("series = %d", len(series))
	}
	s := series[0]
	if s.User != "bob" || s.Command != "make" {
		t.Fatalf("recycled pid kept stale labels: %+v", s)
	}
	if len(s.Points) != 1 || s.Points[0].TimeSeconds != 3 {
		t.Fatalf("recycled pid kept the dead task's points: %+v", s.Points)
	}
}

// TestObserveSteadyStateAllocations is the subsystem's core performance
// contract: once rings and aggregate entries exist, recording a refresh
// allocates nothing.
func TestObserveSteadyStateAllocations(t *testing.T) {
	r := New(Options{Capacity: 64})
	r.SetColumns([]string{"ipc", "const"})
	specs := make([]rowSpec, 200)
	for i := range specs {
		specs[i] = rowSpec{
			pid:    i + 1,
			user:   []string{"alice", "bob", "carol"}[i%3],
			comm:   []string{"mcf", "astar", "gromacs", "hmmer"}[i%4],
			cpuPct: 50, instr: 1e9, cycle: 1e9,
		}
	}
	sample := mkSample(time.Second, specs)
	// Warm-up: create every ring and aggregate entry, and wrap the ring
	// at least once so the wrap path is the measured one.
	for i := 0; i < 70; i++ {
		r.Observe(sample)
	}
	allocs := testing.AllocsPerRun(100, func() { r.Observe(sample) })
	if allocs != 0 {
		t.Fatalf("steady-state Observe allocates %.1f times per refresh, want 0", allocs)
	}
}

// teeTarget records what a Recorder.Tee observer receives.
type teeTarget struct {
	samples int
	rows    int
	cols    []string
}

func (t *teeTarget) Observe(s *core.Sample)   { t.samples++; t.rows += len(s.Rows) }
func (t *teeTarget) SetColumns(cols []string) { t.cols = append([]string(nil), cols...) }

// TestTee: the tee receives every observed sample after the recorder's
// own fold, and the column names propagate regardless of whether Tee or
// SetColumns happens first.
func TestTee(t *testing.T) {
	r := New(Options{})
	tee := &teeTarget{}
	r.SetColumns([]string{"ipc", "dmis"})
	r.Tee(tee) // columns already known: pushed at attach time
	if len(tee.cols) != 2 || tee.cols[0] != "ipc" {
		t.Fatalf("columns not pushed on Tee: %v", tee.cols)
	}

	s := &core.Sample{Time: time.Second}
	s.Rows = []core.Row{{
		Info:   core.TaskInfo{ID: hpm.TaskID{PID: 1, TID: 1}, User: "u", Comm: "c"},
		Values: []float64{1, 2},
		Events: map[string]uint64{hpm.EventInstructions: 10, hpm.EventCycles: 5},
	}}
	r.Observe(s)
	r.Observe(s)
	if tee.samples != 2 || tee.rows != 2 {
		t.Fatalf("tee saw %d samples / %d rows, want 2 / 2", tee.samples, tee.rows)
	}
	// The recorder's own state must be unaffected by the tee.
	if snap := r.Snapshot(); snap.Refreshes != 2 {
		t.Fatalf("refreshes = %d", snap.Refreshes)
	}

	// Columns set after attaching forward to the tee too.
	r2 := New(Options{})
	tee2 := &teeTarget{}
	r2.Tee(tee2)
	r2.SetColumns([]string{"a"})
	if len(tee2.cols) != 1 || tee2.cols[0] != "a" {
		t.Fatalf("columns not forwarded by SetColumns: %v", tee2.cols)
	}

	// Detach: no further samples.
	r.Tee(nil)
	r.Observe(s)
	if tee.samples != 2 {
		t.Fatalf("detached tee still observed (%d samples)", tee.samples)
	}
}
