package history_test

// End-to-end allocation accounting against the real engine: recording
// must add zero steady-state allocations per refresh beyond the ring
// buffer's amortized writes. Measured by running two identically seeded
// simulated sessions — one with a subscribed Recorder, one without —
// through testing.AllocsPerRun and comparing.

import (
	"testing"
	"time"

	"tiptop/internal/core"
	"tiptop/internal/history"
	"tiptop/internal/metrics"
	"tiptop/internal/sim/machine"
	"tiptop/internal/sim/pmu"
	"tiptop/internal/sim/proc"
	"tiptop/internal/sim/sched"
	"tiptop/internal/sim/workload"
)

func manyTaskSession(tb testing.TB, tasks int) *core.Session {
	tb.Helper()
	m, ok := machine.Presets()["e5640"]
	if !ok {
		tb.Fatal("e5640 preset missing")
	}
	k, err := sched.New(m, sched.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < tasks; i++ {
		spec := workload.ManyTaskSpec(i)
		spin, err := workload.NewSpin(workload.Synthetic(spec), int64(i+1))
		if err != nil {
			tb.Fatal(err)
		}
		k.Spawn(workload.ManyTaskUser(i), spec.Name, spin, nil)
	}
	s, err := core.NewSession(pmu.New(k), proc.NewSource(k), proc.NewClock(k), core.Options{
		Screen:   metrics.DefaultScreen(),
		Interval: time.Second,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

func sessionAllocs(tb testing.TB, tasks int, record bool) float64 {
	tb.Helper()
	s := manyTaskSession(tb, tasks)
	defer s.Close()
	if record {
		rec := history.New(history.Options{Capacity: 32})
		cols := make([]string, len(s.Screen().Columns))
		for i, c := range s.Screen().Columns {
			cols[i] = c.Name
		}
		rec.SetColumns(cols)
		s.Subscribe(rec)
	}
	// Warm up: attach every counter, create every ring and aggregate,
	// and wrap the rings so the measured refreshes are pure steady state.
	for i := 0; i < 40; i++ {
		if _, err := s.Update(); err != nil {
			tb.Fatal(err)
		}
	}
	return testing.AllocsPerRun(30, func() {
		if _, err := s.Update(); err != nil {
			tb.Fatal(err)
		}
	})
}

func TestRecordingAddsNoSteadyStateAllocations(t *testing.T) {
	const tasks = 150
	baseline := sessionAllocs(t, tasks, false)
	recorded := sessionAllocs(t, tasks, true)
	// The two sessions are seeded identically; any difference is the
	// recorder's doing. Allow less than one allocation per refresh of
	// measurement noise.
	if recorded-baseline >= 1 {
		t.Fatalf("recording adds %.1f allocations per refresh (baseline %.1f, recorded %.1f), want 0",
			recorded-baseline, baseline, recorded)
	}
}

// BenchmarkUpdateRecorded / BenchmarkUpdateBaseline make the same
// comparison visible in `go test -bench . -benchmem ./internal/history/`.
func benchUpdate(b *testing.B, record bool) {
	s := manyTaskSession(b, 400)
	defer s.Close()
	if record {
		rec := history.New(history.Options{Capacity: 64})
		s.Subscribe(rec)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Update(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Update(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUpdateBaseline(b *testing.B) { benchUpdate(b, false) }
func BenchmarkUpdateRecorded(b *testing.B) { benchUpdate(b, true) }
