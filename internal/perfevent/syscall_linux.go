//go:build linux

package perfevent

import (
	"fmt"
	"runtime"
	"syscall"
	"unsafe"

	"tiptop/internal/hpm"
)

// perfEventOpenNR is the perf_event_open syscall number per architecture.
func perfEventOpenNR() (uintptr, bool) {
	switch runtime.GOARCH {
	case "amd64":
		return 298, true
	case "386":
		return 336, true
	case "arm64":
		return 241, true
	case "arm":
		return 364, true
	case "ppc64", "ppc64le":
		return 319, true
	case "riscv64":
		return 241, true
	case "s390x":
		return 331, true
	}
	return 0, false
}

// openSyscall invokes perf_event_open(attr, pid, cpu, -1, 0).
func openSyscall(a *Attr, pid, cpu int) (int, error) {
	nr, ok := perfEventOpenNR()
	if !ok {
		return -1, fmt.Errorf("perfevent: unknown syscall number on %s", runtime.GOARCH)
	}
	blob := a.Encode()
	fd, _, errno := syscall.Syscall6(nr,
		uintptr(unsafe.Pointer(&blob[0])),
		uintptr(pid), uintptr(cpu),
		^uintptr(0), // group_fd = -1
		0, 0)
	if errno != 0 {
		return -1, errno
	}
	return int(fd), nil
}

func readFD(fd int, buf []byte) (int, error) {
	return syscall.Read(fd, buf)
}

// perf_event ioctl request codes (linux/perf_event.h).
const (
	ioctlEnable  = 0x2400
	ioctlDisable = 0x2401
	ioctlReset   = 0x2403
)

func ioctlFD(fd int, req uintptr) error {
	_, _, errno := syscall.Syscall(syscall.SYS_IOCTL, uintptr(fd), req, 0)
	if errno != 0 {
		return errno
	}
	return nil
}

func closeFD(fd int) {
	_ = syscall.Close(fd)
}

// mapOpenError classifies open failures into the hpm error taxonomy.
func mapOpenError(task hpm.TaskID, err error) error {
	errno, ok := err.(syscall.Errno)
	if !ok {
		return fmt.Errorf("perfevent: open for %v: %w", task, err)
	}
	switch errno {
	case syscall.EPERM, syscall.EACCES:
		// Non-privileged users can only watch processes they own
		// (paper footnote 1).
		return fmt.Errorf("perfevent: open for %v: %v: %w", task, errno, hpm.ErrPermission)
	case syscall.ESRCH:
		return fmt.Errorf("perfevent: open for %v: %w", task, hpm.ErrNoSuchTask)
	case syscall.ENOENT, syscall.ENODEV, syscall.EOPNOTSUPP:
		return fmt.Errorf("perfevent: open for %v: %v: %w", task, errno, hpm.ErrUnsupportedEvent)
	case syscall.ENOSYS:
		return fmt.Errorf("perfevent: open for %v: %v: %w", task, errno, hpm.ErrUnavailable)
	}
	return fmt.Errorf("perfevent: open for %v: %w", task, errno)
}
