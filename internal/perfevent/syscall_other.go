//go:build !linux

package perfevent

import (
	"fmt"

	"tiptop/internal/hpm"
)

// perf_event_open exists only on Linux; on other platforms the backend
// reports itself unavailable and the tool falls back to the simulator.

func openSyscall(*Attr, int, int) (int, error) {
	return -1, fmt.Errorf("perf_event_open is Linux-only: %w", hpm.ErrUnavailable)
}

func readFD(int, []byte) (int, error) {
	return 0, fmt.Errorf("perfevent: %w", hpm.ErrUnavailable)
}

func closeFD(int) {}

const (
	ioctlEnable  = 0
	ioctlDisable = 0
	ioctlReset   = 0
)

func ioctlFD(int, uintptr) error {
	return fmt.Errorf("perfevent: %w", hpm.ErrUnavailable)
}

func mapOpenError(task hpm.TaskID, err error) error {
	return fmt.Errorf("perfevent: open for %v: %w", task, err)
}
