package perfevent

import (
	"encoding/binary"
	"errors"
	"os"
	"testing"

	"tiptop/internal/hpm"
)

func TestAttrEncodeLayout(t *testing.T) {
	a := Attr{
		Type:       hpm.PerfTypeHardware,
		Config:     hpm.HWInstructions,
		ReadFormat: readFormatTotalTimeEnabled | readFormatTotalTimeRunning,
		Flags:      flagExcludeKernel | flagExcludeHV,
	}
	blob := a.Encode()
	if len(blob) != attrSize {
		t.Fatalf("attr size = %d, want %d", len(blob), attrSize)
	}
	le := binary.LittleEndian
	if got := le.Uint32(blob[0:]); got != hpm.PerfTypeHardware {
		t.Fatalf("type = %d", got)
	}
	if got := le.Uint32(blob[4:]); got != attrSize {
		t.Fatalf("size field = %d, want %d", got, attrSize)
	}
	if got := le.Uint64(blob[8:]); got != hpm.HWInstructions {
		t.Fatalf("config = %d", got)
	}
	if got := le.Uint64(blob[32:]); got != 3 {
		t.Fatalf("read_format = %d, want 3", got)
	}
	if got := le.Uint64(blob[40:]); got != flagExcludeKernel|flagExcludeHV {
		t.Fatalf("flags = %#x", got)
	}
	// sample_period and sample_type stay zero (counting mode, §2.5).
	if le.Uint64(blob[16:]) != 0 || le.Uint64(blob[24:]) != 0 {
		t.Fatal("sampling fields must be zero in counting mode")
	}
}

func TestAttrForDescriptors(t *testing.T) {
	reg := hpm.DefaultRegistry()
	cases := map[string]struct {
		typ    uint32
		config uint64
	}{
		hpm.EventCycles:       {hpm.PerfTypeHardware, hpm.HWCPUCycles},
		hpm.EventInstructions: {hpm.PerfTypeHardware, hpm.HWInstructions},
		hpm.EventCacheMisses:  {hpm.PerfTypeHardware, hpm.HWCacheMisses},
		hpm.EventBranches:     {hpm.PerfTypeHardware, hpm.HWBranchInstructions},
		hpm.EventFPAssist:     {hpm.PerfTypeRaw, 0x1EF7},
		"L1D_READ_MISS":       {hpm.PerfTypeHWCache, 0 | 1<<16},
		"RAW:0xABCD":          {hpm.PerfTypeRaw, 0xABCD},
	}
	for spec, want := range cases {
		d, err := reg.ParseEvent(spec)
		if err != nil {
			t.Fatalf("ParseEvent(%q): %v", spec, err)
		}
		a := attrFor(d)
		if a.Type != want.typ || a.Config != want.config {
			t.Fatalf("attrFor(%v) = %+v, want type=%d config=%#x", d, a, want.typ, want.config)
		}
		if a.ReadFormat != readFormatTotalTimeEnabled|readFormatTotalTimeRunning {
			t.Fatalf("attrFor(%v) read_format = %#x", d, a.ReadFormat)
		}
	}
}

func TestDecodeReading(t *testing.T) {
	buf := make([]byte, 24)
	le := binary.LittleEndian
	le.PutUint64(buf[0:], 123456)
	le.PutUint64(buf[8:], 1000)
	le.PutUint64(buf[16:], 500)
	c, err := DecodeReading(buf)
	if err != nil {
		t.Fatal(err)
	}
	if c.Raw != 123456 || c.Enabled != 1000 || c.Running != 500 {
		t.Fatalf("count = %+v", c)
	}
	if c.Scaled() != 246912 {
		t.Fatalf("scaled = %d", c.Scaled())
	}
	if _, err := DecodeReading(buf[:23]); err == nil {
		t.Fatal("short read must fail")
	}
}

func TestSupported(t *testing.T) {
	reg := hpm.DefaultRegistry()
	b := New()
	for _, d := range reg.Events() {
		if d.Generic() && !b.Supported(d) {
			t.Errorf("generic %v must be supported", d)
		}
		if d.Kind == hpm.KindRaw && b.Supported(d) {
			t.Errorf("raw %v must be off by default", d)
		}
	}
	hwCache, err := reg.ParseEvent("LLC_READ_MISS")
	if err != nil {
		t.Fatal(err)
	}
	if !b.Supported(hwCache) {
		t.Fatal("hw-cache events must be supported by default")
	}
	braw := NewWithRaw()
	fpa, _ := reg.Lookup(hpm.EventFPAssist)
	if !braw.Supported(fpa) {
		t.Fatal("raw-enabled backend must support FP assists")
	}
	if braw.Supported(hpm.EventDesc{}) {
		t.Fatal("invalid descriptor supported")
	}
}

func TestAttachValidation(t *testing.T) {
	b := New()
	if _, err := b.Attach(hpm.TaskID{PID: 1, TID: 1}, nil); !errors.Is(err, hpm.ErrUnsupportedEvent) {
		t.Fatalf("empty events error = %v", err)
	}
	fpa, _ := hpm.DefaultRegistry().Lookup(hpm.EventFPAssist)
	if _, err := b.Attach(hpm.TaskID{PID: 1, TID: 1}, []hpm.EventDesc{fpa}); !errors.Is(err, hpm.ErrUnsupportedEvent) {
		t.Fatalf("raw event without NewWithRaw error = %v", err)
	}
}

// Live tests: exercised only where the kernel actually permits
// perf_event_open (rarely true in CI containers; the probe decides).
func TestLiveCountersIfPermitted(t *testing.T) {
	b := New()
	if err := b.Probe(); err != nil {
		t.Skipf("perf_event unavailable here: %v", err)
	}
	self := os.Getpid()
	reg := hpm.DefaultRegistry()
	cycles, _ := reg.Lookup(hpm.EventCycles)
	instr, _ := reg.Lookup(hpm.EventInstructions)
	ctr, err := b.Attach(hpm.TaskID{PID: self, TID: self},
		[]hpm.EventDesc{cycles, instr})
	if err != nil {
		t.Skipf("attach to self failed: %v", err)
	}
	defer ctr.Close()
	// Burn some cycles.
	sum := 0
	for i := 0; i < 10_000_000; i++ {
		sum += i
	}
	_ = sum
	counts, err := ctr.Read()
	if err != nil {
		t.Fatal(err)
	}
	if counts[0].Scaled() == 0 || counts[1].Scaled() == 0 {
		t.Fatalf("live counters read zero: %+v", counts)
	}
	t.Logf("live: %d cycles, %d instructions, IPC %.2f",
		counts[0].Scaled(), counts[1].Scaled(),
		float64(counts[1].Scaled())/float64(counts[0].Scaled()))
}

func TestProbeReportsUnavailable(t *testing.T) {
	b := New()
	err := b.Probe()
	if err == nil {
		t.Skip("perf_event available; nothing to assert")
	}
	if !errors.Is(err, hpm.ErrUnavailable) {
		t.Fatalf("probe failure must wrap ErrUnavailable: %v", err)
	}
}

func TestIoctlControlsIfPermitted(t *testing.T) {
	b := New()
	if err := b.Probe(); err != nil {
		t.Skipf("perf_event unavailable: %v", err)
	}
	self := os.Getpid()
	instr, _ := hpm.DefaultRegistry().Lookup(hpm.EventInstructions)
	ctr, err := b.Attach(hpm.TaskID{PID: self, TID: self}, []hpm.EventDesc{instr})
	if err != nil {
		t.Skipf("attach failed: %v", err)
	}
	defer ctr.Close()
	ctl, ok := ctr.(Controllable)
	if !ok {
		t.Fatal("perfevent counters must be Controllable")
	}
	if err := ctl.Disable(); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Reset(); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Enable(); err != nil {
		t.Fatal(err)
	}
	sum := 0
	for i := 0; i < 1_000_000; i++ {
		sum += i
	}
	_ = sum
	counts, err := ctr.Read()
	if err != nil {
		t.Fatal(err)
	}
	if counts[0].Raw == 0 {
		t.Fatal("counter must count after re-enable")
	}
}

func TestIoctlOnClosedCounter(t *testing.T) {
	c := &counter{task: hpm.TaskID{PID: 1, TID: 1}}
	c.Close()
	if err := c.Enable(); err == nil {
		t.Fatal("ioctl on closed counter must fail")
	}
}

func TestCounterCloseIdempotent(t *testing.T) {
	c := &counter{task: hpm.TaskID{PID: 1, TID: 1}}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(); err == nil {
		t.Fatal("read after close must fail")
	}
}
