// Package perfevent wraps the Linux perf_event_open(2) system call the
// paper's tool is built on (§2.3). It encodes the perf_event_attr
// structure by hand, opens one file descriptor per (task, event) exactly
// as tiptop does ("one per monitored process and per event of
// interest"), and reads counter values together with the
// TIME_ENABLED/TIME_RUNNING pair so multiplexed counts can be scaled.
//
// No privilege is required to monitor one's own processes; monitoring
// other users' tasks requires perf_event_paranoid <= some threshold or
// CAP_PERFMON, which the backend surfaces as hpm.ErrPermission. In
// containers the syscall is frequently masked entirely; Probe detects
// that and reports hpm.ErrUnavailable so callers can fall back to the
// simulator backend.
package perfevent

import (
	"encoding/binary"
	"fmt"

	"tiptop/internal/hpm"
)

// read_format bits.
const (
	readFormatTotalTimeEnabled = 1 << 0
	readFormatTotalTimeRunning = 1 << 1
)

// attr flag bits (bit offsets into the flags word).
const (
	flagDisabled      = 1 << 0
	flagInherit       = 1 << 1
	flagExcludeKernel = 1 << 5
	flagExcludeHV     = 1 << 6
)

// attrSize is PERF_ATTR_SIZE_VER5 (112 bytes), ABI-stable since Linux 4.1
// and accepted by every later kernel.
const attrSize = 112

// Attr is the subset of perf_event_attr the tool needs.
type Attr struct {
	Type   uint32
	Config uint64
	// ReadFormat selects what read(2) returns.
	ReadFormat uint64
	// Flags is the packed bitfield word (disabled, inherit, ...).
	Flags uint64
}

// Encode produces the binary perf_event_attr blob the kernel expects
// (little-endian, as on every Linux architecture Go supports).
func (a *Attr) Encode() []byte {
	buf := make([]byte, attrSize)
	le := binary.LittleEndian
	le.PutUint32(buf[0:], a.Type)
	le.PutUint32(buf[4:], attrSize)      // size
	le.PutUint64(buf[8:], a.Config)      // config
	le.PutUint64(buf[16:], 0)            // sample_period
	le.PutUint64(buf[24:], 0)            // sample_type
	le.PutUint64(buf[32:], a.ReadFormat) // read_format
	le.PutUint64(buf[40:], a.Flags)      // bitfield word
	// Remaining fields stay zero.
	return buf
}

// attrFor builds the attribute block for an event descriptor: the
// encoding is carried by the descriptor itself, so this backend never
// needs editing to count a new event (raw codes and hw-cache events
// come straight from the registry or the XML configuration). Counters
// exclude kernel and hypervisor activity (the unprivileged
// configuration) and start enabled, since the engine reads deltas
// anyway.
func attrFor(e hpm.EventDesc) Attr {
	return Attr{
		Type:       e.Type,
		Config:     e.Config,
		ReadFormat: readFormatTotalTimeEnabled | readFormatTotalTimeRunning,
		Flags:      flagExcludeKernel | flagExcludeHV,
	}
}

// DecodeReading parses the 24-byte read(2) result produced with the
// TOTAL_TIME_ENABLED|TOTAL_TIME_RUNNING read format.
func DecodeReading(buf []byte) (hpm.Count, error) {
	if len(buf) < 24 {
		return hpm.Count{}, fmt.Errorf("perfevent: short read: %d bytes", len(buf))
	}
	le := binary.LittleEndian
	return hpm.Count{
		Raw:     le.Uint64(buf[0:]),
		Enabled: le.Uint64(buf[8:]),
		Running: le.Uint64(buf[16:]),
	}, nil
}

// Backend is the perf_event implementation of hpm.Backend.
type Backend struct {
	// enableRaw permits architecture-specific raw events. Off by
	// default: raw codes are only valid on the micro-architecture they
	// were taken from.
	enableRaw bool
	// capacity is the advertised PMU register count (see Capacity). 0
	// means unknown: attach everything and let the kernel multiplex.
	capacity int
}

var _ hpm.Backend = (*Backend)(nil)

// New creates a perf_event backend supporting the generic and hw-cache
// events.
func New() *Backend {
	return &Backend{}
}

// NewWithRaw creates a backend that additionally accepts raw event
// descriptors (PERF_TYPE_RAW). The caller asserts that the codes in
// play were taken from this machine's micro-architecture manual.
func NewWithRaw() *Backend {
	return &Backend{enableRaw: true}
}

// SetCapacity declares how many hardware events the PMU can count
// simultaneously, enabling userland rotation (internal/mux) instead of
// kernel-side multiplexing. The kernel exposes no portable probe for
// this, so the limit is configuration: 0 (the default) keeps the
// classic behaviour — open every fd and scale by Enabled/Running.
func (b *Backend) SetCapacity(n int) {
	if n < 0 {
		n = 0
	}
	b.capacity = n
}

// Capacity implements hpm.Backend.
func (b *Backend) Capacity() int { return b.capacity }

// SlotCost implements hpm.Backend: software events are counted by the
// kernel, not the PMU, and never cost a counter register.
func (b *Backend) SlotCost(e hpm.EventDesc) int {
	if e.Type == hpm.PerfTypeSoftware {
		return 0
	}
	return 1
}

// Name implements hpm.Backend.
func (b *Backend) Name() string { return "perf_event" }

// Supported implements hpm.Backend: generic and hw-cache encodings are
// portable (the kernel rejects combinations the hardware lacks at open
// time, surfacing as a per-task attach failure); raw codes require the
// opt-in backend because they are only meaningful on the
// micro-architecture they were looked up for.
func (b *Backend) Supported(e hpm.EventDesc) bool {
	if !e.Valid() {
		return false
	}
	switch e.Kind {
	case hpm.KindGeneric, hpm.KindHWCache, hpm.KindSoftware:
		return true
	case hpm.KindRaw:
		return b.enableRaw
	}
	return false
}

// Probe implements hpm.Backend: it opens (and immediately closes) a
// cycles counter on the calling thread. Any failure is reported as
// hpm.ErrUnavailable with the underlying errno attached.
func (b *Backend) Probe() error {
	a := attrFor(hpm.EventDesc{Name: hpm.EventCycles, Type: hpm.PerfTypeHardware, Config: hpm.HWCPUCycles})
	fd, err := openSyscall(&a, 0, -1) // pid 0 = calling task
	if err != nil {
		return fmt.Errorf("perfevent: probe: %v: %w", err, hpm.ErrUnavailable)
	}
	closeFD(fd)
	return nil
}

// Attach implements hpm.Backend.
func (b *Backend) Attach(task hpm.TaskID, events []hpm.EventDesc) (hpm.TaskCounter, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("perfevent: no events: %w", hpm.ErrUnsupportedEvent)
	}
	c := &counter{task: task, events: events}
	for _, e := range events {
		if !b.Supported(e) {
			c.Close()
			return nil, fmt.Errorf("perfevent: %v: %w", e, hpm.ErrUnsupportedEvent)
		}
		a := attrFor(e)
		// cpu = -1: count the task on every CPU it runs on (per-task
		// counting, exactly the paper's configuration: "We set cpu to
		// -1 to monitor events per task"). Group scope targets the
		// leader with the inherit flag, so threads spawned afterwards
		// are counted too. A CPU-scope ID inverts both: pid = -1,
		// cpu = N counts everything that runs on one logical CPU
		// (system-wide mode; needs perf_event_paranoid <= 0 or
		// CAP_PERFMON).
		target, onCPU := task.TID, -1
		if task.IsGroup() {
			target = task.PID
			a.Flags |= flagInherit
		}
		if task.IsCPU() {
			target, onCPU = -1, task.CPU()
		}
		fd, err := openSyscall(&a, target, onCPU)
		if err != nil {
			c.Close()
			return nil, mapOpenError(task, err)
		}
		c.fds = append(c.fds, fd)
	}
	return c, nil
}

// counter holds one fd per attached event.
type counter struct {
	task   hpm.TaskID
	events []hpm.EventDesc
	fds    []int
	closed bool
}

var _ hpm.TaskCounter = (*counter)(nil)
var _ hpm.CountReader = (*counter)(nil)

// Task implements hpm.TaskCounter.
func (c *counter) Task() hpm.TaskID { return c.task }

// Read implements hpm.TaskCounter: a plain read(2) per descriptor.
func (c *counter) Read() ([]hpm.Count, error) {
	return c.ReadInto(nil)
}

// ReadInto implements hpm.CountReader.
func (c *counter) ReadInto(dst []hpm.Count) ([]hpm.Count, error) {
	if c.closed {
		return nil, fmt.Errorf("perfevent: read of closed counter for %v", c.task)
	}
	if cap(dst) < len(c.fds) {
		dst = make([]hpm.Count, len(c.fds))
	}
	dst = dst[:len(c.fds)]
	var buf [24]byte
	for i, fd := range c.fds {
		n, err := readFD(fd, buf[:])
		if err != nil {
			return nil, fmt.Errorf("perfevent: read %v fd %d: %w", c.events[i], fd, err)
		}
		cnt, err := DecodeReading(buf[:n])
		if err != nil {
			return nil, err
		}
		dst[i] = cnt
	}
	return dst, nil
}

// Close implements hpm.TaskCounter.
func (c *counter) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	for _, fd := range c.fds {
		closeFD(fd)
	}
	c.fds = nil
	return nil
}

// ioctlAll applies a perf ioctl to every descriptor of the counter.
func (c *counter) ioctlAll(req uintptr) error {
	if c.closed {
		return fmt.Errorf("perfevent: counter for %v is closed", c.task)
	}
	for i, fd := range c.fds {
		if err := ioctlFD(fd, req); err != nil {
			return fmt.Errorf("perfevent: ioctl %v fd %d: %w", c.events[i], fd, err)
		}
	}
	return nil
}

// Enable resumes counting on all events (PERF_EVENT_IOC_ENABLE).
func (c *counter) Enable() error { return c.ioctlAll(ioctlEnable) }

// Disable pauses counting on all events (PERF_EVENT_IOC_DISABLE).
func (c *counter) Disable() error { return c.ioctlAll(ioctlDisable) }

// Reset zeroes the raw counts (PERF_EVENT_IOC_RESET); enabled/running
// times are unaffected, per the kernel's semantics.
func (c *counter) Reset() error { return c.ioctlAll(ioctlReset) }

// Controllable is the optional interface exposing the perf ioctls; the
// perfevent counter implements it, and callers that need pause/resume
// semantics can type-assert hpm.TaskCounter to it.
type Controllable interface {
	Enable() error
	Disable() error
	Reset() error
}

var _ Controllable = (*counter)(nil)
