// Package stats provides the small statistical helpers used throughout the
// tiptop reproduction: central moments, order statistics, coefficients of
// variation, histograms and simple linear fits. All functions are pure and
// operate on float64 slices without modifying their inputs.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that cannot produce a result from an
// empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs. It returns 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Variance returns the population variance of xs (dividing by n, not n-1).
// It returns 0 for samples of fewer than two elements.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// CV returns the coefficient of variation (stddev/mean) of xs, the measure
// the paper uses for run-to-run variability (§2.5 reports 1.4 % on SPEC).
// It returns 0 when the mean is 0.
func CV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// Median returns the median of xs, interpolating between the two middle
// elements for even-length samples, as SPEC reporting rules require the
// median of three runs.
func Median(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2], nil
	}
	return (s[n/2-1] + s[n/2]) / 2, nil
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between closest ranks.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, errors.New("stats: quantile out of range [0,1]")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo], nil
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// Min returns the smallest element of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest element of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// GeoMean returns the geometric mean of xs. All elements must be positive.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("stats: geomean requires positive values")
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs))), nil
}

// Histogram is a fixed-bin histogram over [Lo, Hi). Values outside the
// range are clamped into the first or last bin so that totals are
// preserved; this mirrors how counter-derived ratios are bucketed for the
// ASCII plots.
type Histogram struct {
	Lo, Hi float64
	Counts []uint64
	total  uint64
}

// NewHistogram creates a histogram with n bins spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) (*Histogram, error) {
	if n <= 0 {
		return nil, errors.New("stats: histogram needs at least one bin")
	}
	if !(lo < hi) {
		return nil, errors.New("stats: histogram range must satisfy lo < hi")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]uint64, n)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	idx := h.binOf(x)
	h.Counts[idx]++
	h.total++
}

func (h *Histogram) binOf(x float64) int {
	n := len(h.Counts)
	if x < h.Lo {
		return 0
	}
	if x >= h.Hi {
		return n - 1
	}
	idx := int((x - h.Lo) / (h.Hi - h.Lo) * float64(n))
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() uint64 { return h.total }

// BinCenter returns the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// LinearFit returns the slope and intercept of the least-squares line
// through (xs[i], ys[i]). It requires at least two points and distinct xs.
func LinearFit(xs, ys []float64) (slope, intercept float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, errors.New("stats: mismatched lengths")
	}
	if len(xs) < 2 {
		return 0, 0, errors.New("stats: need at least two points")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if sxx == 0 {
		return 0, 0, errors.New("stats: degenerate x values")
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	return slope, intercept, nil
}

// MovingAverage returns the centered moving average of xs with the given
// window (forced odd by rounding up). Edges use a shrunken window. Used to
// smooth IPC traces before phase-boundary detection.
func MovingAverage(xs []float64, window int) []float64 {
	if window < 1 {
		window = 1
	}
	if window%2 == 0 {
		window++
	}
	half := window / 2
	out := make([]float64, len(xs))
	for i := range xs {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half + 1
		if hi > len(xs) {
			hi = len(xs)
		}
		out[i] = Mean(xs[lo:hi])
	}
	return out
}
