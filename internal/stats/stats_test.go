package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMeanBasics(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Fatalf("Mean = %v, want 4", got)
	}
}

func TestSum(t *testing.T) {
	if got := Sum([]float64{1.5, 2.5, -1}); got != 3 {
		t.Fatalf("Sum = %v, want 3", got)
	}
	if got := Sum(nil); got != 0 {
		t.Fatalf("Sum(nil) = %v, want 0", got)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEq(got, 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEq(got, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if got := Variance([]float64{42}); got != 0 {
		t.Fatalf("Variance singleton = %v, want 0", got)
	}
}

func TestCV(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	want := 2.0 / 5.0
	if got := CV(xs); !almostEq(got, want, 1e-12) {
		t.Fatalf("CV = %v, want %v", got, want)
	}
	if got := CV([]float64{0, 0}); got != 0 {
		t.Fatalf("CV of zero-mean = %v, want 0", got)
	}
}

func TestMedian(t *testing.T) {
	if _, err := Median(nil); err != ErrEmpty {
		t.Fatalf("Median(nil) err = %v, want ErrEmpty", err)
	}
	m, err := Median([]float64{3, 1, 2})
	if err != nil || m != 2 {
		t.Fatalf("Median odd = %v, %v", m, err)
	}
	m, err = Median([]float64{4, 1, 3, 2})
	if err != nil || m != 2.5 {
		t.Fatalf("Median even = %v, %v", m, err)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Median(xs); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Median mutated its input: %v", xs)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", c.q, err)
		}
		if !almostEq(got, c.want, 1e-12) {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Fatal("Quantile out of range should error")
	}
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Fatalf("Quantile(nil) err = %v, want ErrEmpty", err)
	}
	got, err := Quantile([]float64{7}, 0.9)
	if err != nil || got != 7 {
		t.Fatalf("Quantile singleton = %v, %v", got, err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	mn, err := Min(xs)
	if err != nil || mn != -1 {
		t.Fatalf("Min = %v, %v", mn, err)
	}
	mx, err := Max(xs)
	if err != nil || mx != 7 {
		t.Fatalf("Max = %v, %v", mx, err)
	}
	if _, err := Min(nil); err != ErrEmpty {
		t.Fatal("Min(nil) should error")
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Fatal("Max(nil) should error")
	}
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{1, 100})
	if err != nil || !almostEq(g, 10, 1e-9) {
		t.Fatalf("GeoMean = %v, %v", g, err)
	}
	if _, err := GeoMean([]float64{1, -1}); err == nil {
		t.Fatal("GeoMean with negative should error")
	}
	if _, err := GeoMean(nil); err != ErrEmpty {
		t.Fatal("GeoMean(nil) should error")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{-1, 0, 1.9, 2, 9.99, 10, 100} {
		h.Add(v)
	}
	if h.Total() != 7 {
		t.Fatalf("Total = %d, want 7", h.Total())
	}
	// bins: [0,2) gets -1,0,1.9 ; [2,4) gets 2 ; [8,10) gets 9.99,10,100
	if h.Counts[0] != 3 || h.Counts[1] != 1 || h.Counts[4] != 3 {
		t.Fatalf("Counts = %v", h.Counts)
	}
	if got := h.BinCenter(0); !almostEq(got, 1, 1e-12) {
		t.Fatalf("BinCenter(0) = %v, want 1", got)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Fatal("zero bins should error")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Fatal("empty range should error")
	}
}

func TestLinearFit(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	slope, intercept, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(slope, 2, 1e-12) || !almostEq(intercept, 1, 1e-12) {
		t.Fatalf("fit = %v, %v; want 2, 1", slope, intercept)
	}
	if _, _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point should error")
	}
	if _, _, err := LinearFit([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Fatal("degenerate xs should error")
	}
	if _, _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("mismatched lengths should error")
	}
}

func TestMovingAverage(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	out := MovingAverage(xs, 3)
	want := []float64{1.5, 2, 3, 4, 4.5}
	for i := range want {
		if !almostEq(out[i], want[i], 1e-12) {
			t.Fatalf("MovingAverage[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	// window 1 (and anything smaller) is identity
	out = MovingAverage(xs, 0)
	for i := range xs {
		if out[i] != xs[i] {
			t.Fatalf("identity MA failed at %d: %v", i, out[i])
		}
	}
	// even windows are widened to the next odd value
	a := MovingAverage(xs, 4)
	b := MovingAverage(xs, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("even window not widened at %d", i)
		}
	}
}

// Property: mean is bounded by min and max.
func TestPropMeanBounded(t *testing.T) {
	f := func(xs []float64) bool {
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m := Mean(clean)
		mn, _ := Min(clean)
		mx, _ := Max(clean)
		return m >= mn-1e-6 && m <= mx+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: variance is non-negative and invariant under translation.
func TestPropVarianceShiftInvariant(t *testing.T) {
	f := func(xs []float64, shift float64) bool {
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				clean = append(clean, x)
			}
		}
		if math.IsNaN(shift) || math.IsInf(shift, 0) || math.Abs(shift) > 1e6 {
			shift = 1
		}
		v1 := Variance(clean)
		shifted := make([]float64, len(clean))
		for i, x := range clean {
			shifted[i] = x + shift
		}
		v2 := Variance(shifted)
		tol := 1e-6 * (1 + math.Abs(v1))
		return v1 >= 0 && math.Abs(v1-v2) <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram preserves the total number of observations.
func TestPropHistogramTotal(t *testing.T) {
	f := func(raw []float64) bool {
		h, err := NewHistogram(-100, 100, 17)
		if err != nil {
			return false
		}
		n := 0
		for _, x := range raw {
			if math.IsNaN(x) {
				continue
			}
			h.Add(x)
			n++
		}
		var sum uint64
		for _, c := range h.Counts {
			sum += c
		}
		return h.Total() == uint64(n) && sum == uint64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
