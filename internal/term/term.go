// Package term provides the minimal terminal control the live mode
// needs: ANSI escape sequences, a diffing screen buffer, and decoding of
// the keyboard commands tiptop understands. It replaces the ncurses
// dependency of the original tool with a pure-stdlib implementation; when
// the output is not a terminal, batch mode remains fully functional,
// matching the paper's "in case the library is not available, tiptop can
// still be built, but only batch-mode is functional".
package term

import (
	"fmt"
	"io"
	"strings"
)

// ANSI escape sequences.
const (
	escClear     = "\x1b[2J"
	escHome      = "\x1b[H"
	escHideCur   = "\x1b[?25l"
	escShowCur   = "\x1b[?25h"
	escReset     = "\x1b[0m"
	escBold      = "\x1b[1m"
	escReverse   = "\x1b[7m"
	escClearLine = "\x1b[K"
)

// Screen is a simple double-buffered text screen: Draw composes the next
// frame, Flush emits only the lines that changed since the previous
// frame, avoiding full-screen redraw flicker on real terminals.
type Screen struct {
	w          io.Writer
	rows, cols int
	prev       []string
	next       []string
	started    bool
}

// NewScreen creates a screen of the given geometry writing to w.
func NewScreen(w io.Writer, rows, cols int) (*Screen, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("term: invalid geometry %dx%d", rows, cols)
	}
	return &Screen{w: w, rows: rows, cols: cols, prev: make([]string, rows), next: make([]string, rows)}, nil
}

// Size returns the screen geometry.
func (s *Screen) Size() (rows, cols int) { return s.rows, s.cols }

// SetLine stages the content of row i for the next flush. Long lines are
// truncated to the screen width (ANSI-naive: callers apply styling via
// Bold/Reverse which is width-neutral in this implementation's
// accounting, so styled lines should stay shorter than the width).
func (s *Screen) SetLine(i int, text string) {
	if i < 0 || i >= s.rows {
		return
	}
	if len(text) > s.cols {
		text = text[:s.cols]
	}
	s.next[i] = text
}

// Clear stages an empty frame.
func (s *Screen) Clear() {
	for i := range s.next {
		s.next[i] = ""
	}
}

// Flush writes the staged frame, emitting only changed lines.
func (s *Screen) Flush() error {
	var b strings.Builder
	if !s.started {
		b.WriteString(escHideCur)
		b.WriteString(escClear)
		s.started = true
		// Force full paint.
		for i := range s.prev {
			s.prev[i] = "\x00invalid"
		}
	}
	for i := 0; i < s.rows; i++ {
		if s.next[i] == s.prev[i] {
			continue
		}
		fmt.Fprintf(&b, "\x1b[%d;1H%s%s", i+1, s.next[i], escClearLine)
		s.prev[i] = s.next[i]
	}
	b.WriteString(escHome)
	_, err := io.WriteString(s.w, b.String())
	return err
}

// Close restores the cursor.
func (s *Screen) Close() error {
	if !s.started {
		return nil
	}
	_, err := io.WriteString(s.w, escShowCur+escReset+"\n")
	return err
}

// Bold wraps text in bold ANSI styling.
func Bold(text string) string { return escBold + text + escReset }

// Reverse wraps text in reverse-video styling (the header bar).
func Reverse(text string) string { return escReverse + text + escReset }

// Key is a decoded keyboard command.
type Key int

// Keyboard commands of the live mode.
const (
	KeyNone   Key = iota
	KeyQuit       // q — leave
	KeyHelp       // h — toggle help
	KeyScreen     // s — cycle screens
	KeyPID        // p — toggle pid sort
	KeyUp         // arrow up
	KeyDown       // arrow down
	KeyOther
)

// DecodeKeys converts raw terminal input bytes into commands. It handles
// the three-byte arrow sequences and returns one Key per decoded command.
func DecodeKeys(buf []byte) []Key {
	var out []Key
	for i := 0; i < len(buf); i++ {
		c := buf[i]
		switch c {
		case 'q', 'Q', 3: // q or Ctrl-C
			out = append(out, KeyQuit)
		case 'h', 'H', '?':
			out = append(out, KeyHelp)
		case 's', 'S':
			out = append(out, KeyScreen)
		case 'p', 'P':
			out = append(out, KeyPID)
		case 0x1b:
			if i+2 < len(buf) && buf[i+1] == '[' {
				switch buf[i+2] {
				case 'A':
					out = append(out, KeyUp)
				case 'B':
					out = append(out, KeyDown)
				default:
					out = append(out, KeyOther)
				}
				i += 2
				continue
			}
			out = append(out, KeyOther)
		default:
			out = append(out, KeyOther)
		}
	}
	return out
}
