package term

import (
	"strings"
	"testing"
)

func TestNewScreenValidation(t *testing.T) {
	var sb strings.Builder
	if _, err := NewScreen(&sb, 0, 80); err == nil {
		t.Fatal("zero rows accepted")
	}
	if _, err := NewScreen(&sb, 24, -1); err == nil {
		t.Fatal("negative cols accepted")
	}
	s, err := NewScreen(&sb, 24, 80)
	if err != nil {
		t.Fatal(err)
	}
	r, c := s.Size()
	if r != 24 || c != 80 {
		t.Fatalf("Size = %d,%d", r, c)
	}
}

func TestFirstFlushClearsAndPaints(t *testing.T) {
	var sb strings.Builder
	s, _ := NewScreen(&sb, 3, 20)
	s.SetLine(0, "hello")
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "\x1b[2J") {
		t.Fatal("first flush must clear the screen")
	}
	if !strings.Contains(out, "hello") {
		t.Fatal("content missing")
	}
	if !strings.Contains(out, "\x1b[?25l") {
		t.Fatal("cursor must be hidden")
	}
}

func TestFlushOnlyEmitsChangedLines(t *testing.T) {
	var sb strings.Builder
	s, _ := NewScreen(&sb, 3, 20)
	s.SetLine(0, "stable")
	s.SetLine(1, "changing-1")
	s.Flush()
	sb.Reset()
	s.SetLine(0, "stable")
	s.SetLine(1, "changing-2")
	s.Flush()
	out := sb.String()
	if strings.Contains(out, "stable") {
		t.Fatal("unchanged line must not be re-emitted")
	}
	if !strings.Contains(out, "changing-2") {
		t.Fatal("changed line must be emitted")
	}
}

func TestSetLineBounds(t *testing.T) {
	var sb strings.Builder
	s, _ := NewScreen(&sb, 2, 10)
	s.SetLine(-1, "x") // must not panic
	s.SetLine(5, "x")  // must not panic
	s.SetLine(0, "0123456789ABCDEF")
	s.Flush()
	if strings.Contains(sb.String(), "ABCDEF") {
		t.Fatal("overlong line must be truncated to screen width")
	}
}

func TestClearAndClose(t *testing.T) {
	var sb strings.Builder
	s, _ := NewScreen(&sb, 2, 10)
	if err := s.Close(); err != nil {
		t.Fatal("close before start is a no-op")
	}
	s.SetLine(0, "x")
	s.Flush()
	s.Clear()
	s.Flush()
	sb.Reset()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "\x1b[?25h") {
		t.Fatal("close must restore the cursor")
	}
}

func TestStyling(t *testing.T) {
	if Bold("x") != "\x1b[1mx\x1b[0m" {
		t.Fatalf("Bold = %q", Bold("x"))
	}
	if Reverse("x") != "\x1b[7mx\x1b[0m" {
		t.Fatalf("Reverse = %q", Reverse("x"))
	}
}

func TestDecodeKeys(t *testing.T) {
	cases := []struct {
		in   string
		want []Key
	}{
		{"q", []Key{KeyQuit}},
		{"Q", []Key{KeyQuit}},
		{"\x03", []Key{KeyQuit}},
		{"h", []Key{KeyHelp}},
		{"?", []Key{KeyHelp}},
		{"s", []Key{KeyScreen}},
		{"p", []Key{KeyPID}},
		{"\x1b[A", []Key{KeyUp}},
		{"\x1b[B", []Key{KeyDown}},
		{"\x1b[C", []Key{KeyOther}},
		{"\x1b", []Key{KeyOther}},
		{"zq", []Key{KeyOther, KeyQuit}},
		{"", nil},
		{"s\x1b[Aq", []Key{KeyScreen, KeyUp, KeyQuit}},
	}
	for _, c := range cases {
		got := DecodeKeys([]byte(c.in))
		if len(got) != len(c.want) {
			t.Errorf("DecodeKeys(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("DecodeKeys(%q)[%d] = %v, want %v", c.in, i, got[i], c.want[i])
			}
		}
	}
}
