// Package grid implements the data-center substrate of §3.4: an
// SGE-style batch system ("The scheduler is based on Sun Grid Engine")
// with priority queues, per-node slot limits, delayed submission and a
// periodic dispatcher, running jobs on one or more simulated nodes. It
// produces the workloads behind Figure 1 (a snapshot of a 16-logical-core
// node shared by three users) and Figure 10 (user2's five jobs arriving
// and depressing user1's IPC through shared-cache contention).
package grid

import (
	"fmt"
	"sort"
	"time"

	"tiptop/internal/sim/machine"
	"tiptop/internal/sim/sched"
	"tiptop/internal/sim/workload"
)

// Queue is a job class: higher priority queues dispatch first, and a
// queue may be capped to a number of slots per node (the SGE
// slots-per-queue-instance setting).
type Queue struct {
	Name     string
	Priority int
	// SlotsPerNode caps how many jobs of this queue run concurrently
	// on one node; 0 = limited only by the node's logical cores.
	SlotsPerNode int
	// MaxRuntime kills jobs exceeding their wall-clock allowance
	// (0 = unlimited). SGE queues are segregated by run time.
	MaxRuntime time.Duration
}

// JobState tracks a job through the system.
type JobState int

// Job lifecycle states.
const (
	JobPending JobState = iota
	JobRunning
	JobDone
	JobKilled
)

func (s JobState) String() string {
	switch s {
	case JobPending:
		return "pending"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	case JobKilled:
		return "killed"
	}
	return "?"
}

// JobSpec describes a submission.
type JobSpec struct {
	User  string
	Name  string
	Queue string
	// Runner is the job body. Each job owns its runner.
	Runner workload.Runner
	// SubmitAt delays eligibility until the given simulated time.
	SubmitAt time.Duration
	// Affinity optionally pins the job (taskset semantics).
	Affinity machine.AffinityMask
}

// Job is a submitted job.
type Job struct {
	ID    int
	Spec  JobSpec
	State JobState
	// Node and Task are set once running.
	Node      *Node
	Task      *sched.Task
	StartedAt time.Duration
	EndedAt   time.Duration
}

// Node is one machine of the cluster.
type Node struct {
	Name   string
	Kernel *sched.Kernel
}

// running counts live jobs on the node (total and per queue).
func (c *Cluster) running(n *Node) (total int, perQueue map[string]int) {
	perQueue = map[string]int{}
	for _, j := range c.jobs {
		if j.State == JobRunning && j.Node == n {
			total++
			perQueue[j.Spec.Queue]++
		}
	}
	return total, perQueue
}

// Cluster is the batch system: nodes, queues, and the job list.
type Cluster struct {
	nodes  []*Node
	queues map[string]*Queue
	jobs   []*Job
	nextID int
	// DispatchEvery is the scheduler pass period (default 1 s).
	DispatchEvery time.Duration
	now           time.Duration
}

// NewCluster builds a cluster over the given nodes.
func NewCluster(nodes ...*Node) (*Cluster, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("grid: need at least one node")
	}
	seen := map[string]bool{}
	for _, n := range nodes {
		if n == nil || n.Kernel == nil {
			return nil, fmt.Errorf("grid: nil node or kernel")
		}
		if seen[n.Name] {
			return nil, fmt.Errorf("grid: duplicate node %q", n.Name)
		}
		seen[n.Name] = true
	}
	return &Cluster{
		nodes:         nodes,
		queues:        map[string]*Queue{},
		nextID:        1,
		DispatchEvery: time.Second,
	}, nil
}

// AddQueue registers a queue.
func (c *Cluster) AddQueue(q Queue) error {
	if q.Name == "" {
		return fmt.Errorf("grid: queue needs a name")
	}
	if _, dup := c.queues[q.Name]; dup {
		return fmt.Errorf("grid: duplicate queue %q", q.Name)
	}
	cp := q
	c.queues[q.Name] = &cp
	return nil
}

// Queues returns the queue names, sorted by descending priority.
func (c *Cluster) Queues() []string {
	names := make([]string, 0, len(c.queues))
	for n := range c.queues {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		a, b := c.queues[names[i]], c.queues[names[j]]
		if a.Priority != b.Priority {
			return a.Priority > b.Priority
		}
		return a.Name < b.Name
	})
	return names
}

// Submit enqueues a job.
func (c *Cluster) Submit(spec JobSpec) (*Job, error) {
	if spec.Runner == nil {
		return nil, fmt.Errorf("grid: job %q has no runner", spec.Name)
	}
	if _, ok := c.queues[spec.Queue]; !ok {
		return nil, fmt.Errorf("grid: unknown queue %q", spec.Queue)
	}
	j := &Job{ID: c.nextID, Spec: spec, State: JobPending}
	c.nextID++
	c.jobs = append(c.jobs, j)
	return j, nil
}

// Jobs returns all jobs in submission order.
func (c *Cluster) Jobs() []*Job { return c.jobs }

// Nodes returns the cluster's nodes.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Now returns the cluster clock (max over node kernels' time; they
// advance in lock step).
func (c *Cluster) Now() time.Duration { return c.now }

// Advance runs the cluster forward: at every dispatch interval, pending
// jobs are placed (highest queue priority first, then submission order)
// onto the node with the most free slots, and finished or overrunning
// jobs are reaped.
func (c *Cluster) Advance(d time.Duration) {
	end := c.now + d
	for c.now < end {
		step := c.DispatchEvery
		if rem := end - c.now; rem < step {
			step = rem
		}
		c.dispatch()
		for _, n := range c.nodes {
			n.Kernel.Advance(step)
		}
		c.now += step
		c.reap()
	}
}

// dispatch starts eligible pending jobs.
func (c *Cluster) dispatch() {
	// Order: queue priority desc, then job id (submission order).
	pending := make([]*Job, 0)
	for _, j := range c.jobs {
		if j.State == JobPending && j.Spec.SubmitAt <= c.now {
			pending = append(pending, j)
		}
	}
	sort.SliceStable(pending, func(i, j int) bool {
		qa, qb := c.queues[pending[i].Spec.Queue], c.queues[pending[j].Spec.Queue]
		if qa.Priority != qb.Priority {
			return qa.Priority > qb.Priority
		}
		return pending[i].ID < pending[j].ID
	})
	for _, j := range pending {
		node := c.pickNode(j)
		if node == nil {
			continue // no free slot anywhere; stays pending
		}
		task := node.Kernel.Spawn(j.Spec.User, j.Spec.Name, j.Spec.Runner, j.Spec.Affinity)
		j.State = JobRunning
		j.Node = node
		j.Task = task
		j.StartedAt = c.now
	}
}

// pickNode selects the least-loaded node with room in the job's queue.
func (c *Cluster) pickNode(j *Job) *Node {
	q := c.queues[j.Spec.Queue]
	var best *Node
	bestFree := -1
	for _, n := range c.nodes {
		total, perQueue := c.running(n)
		capacity := n.Kernel.Machine().NumLogical()
		if total >= capacity {
			continue
		}
		if q.SlotsPerNode > 0 && perQueue[q.Name] >= q.SlotsPerNode {
			continue
		}
		if free := capacity - total; free > bestFree {
			bestFree = free
			best = n
		}
	}
	return best
}

// reap marks finished jobs and enforces queue runtime limits.
func (c *Cluster) reap() {
	for _, j := range c.jobs {
		if j.State != JobRunning {
			continue
		}
		if j.Task.State() == sched.TaskExited {
			j.State = JobDone
			j.EndedAt = c.now
			continue
		}
		q := c.queues[j.Spec.Queue]
		if q.MaxRuntime > 0 && c.now-j.StartedAt > q.MaxRuntime {
			_ = j.Node.Kernel.Kill(j.Task.ID().PID)
			j.State = JobKilled
			j.EndedAt = c.now
		}
	}
}

// DefaultQueues returns a queue set shaped like the paper's production
// SGE 6.2u5 configuration: "sixteen queues for jobs of different
// wall-clock run time, memory requirements, and urgency (ASAP vs.
// overnight)". Four runtime classes x two memory classes x two urgency
// classes; urgent queues outrank overnight ones, shorter queues outrank
// longer ones within an urgency class.
func DefaultQueues() []Queue {
	runtimes := []struct {
		name string
		max  time.Duration
	}{
		{"15m", 15 * time.Minute},
		{"2h", 2 * time.Hour},
		{"24h", 24 * time.Hour},
		{"inf", 0},
	}
	memories := []string{"std", "bigmem"}
	urgencies := []struct {
		name string
		base int
	}{
		{"asap", 100},
		{"overnight", 0},
	}
	var out []Queue
	for _, u := range urgencies {
		for ri, r := range runtimes {
			for _, m := range memories {
				out = append(out, Queue{
					Name:       u.name + "-" + r.name + "-" + m,
					Priority:   u.base + (len(runtimes) - ri),
					MaxRuntime: r.max,
				})
			}
		}
	}
	return out
}

// Utilization returns the fraction of a node's logical CPUs occupied by
// running jobs.
func (c *Cluster) Utilization(n *Node) float64 {
	total, _ := c.running(n)
	return float64(total) / float64(n.Kernel.Machine().NumLogical())
}
