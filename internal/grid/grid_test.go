package grid

import (
	"strings"
	"testing"
	"time"

	"tiptop/internal/sim/machine"
	"tiptop/internal/sim/sched"
	"tiptop/internal/sim/workload"
)

func newNode(t *testing.T, name string) *Node {
	t.Helper()
	k, err := sched.New(machine.XeonE5640x2(), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return &Node{Name: name, Kernel: k}
}

func burner(t *testing.T, name string, seconds float64, seed int64) workload.Runner {
	t.Helper()
	w := workload.Scaled(workload.Synthetic(workload.SyntheticSpec{Name: name, IPC: 1.2}), seconds/600)
	return workload.MustInstance(w, seed)
}

func newCluster(t *testing.T, nodes ...*Node) *Cluster {
	t.Helper()
	c, err := NewCluster(nodes...)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddQueue(Queue{Name: "short", Priority: 10}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddQueue(Queue{Name: "long", Priority: 1}); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(); err == nil {
		t.Fatal("empty cluster accepted")
	}
	if _, err := NewCluster(&Node{Name: "x"}); err == nil {
		t.Fatal("nil kernel accepted")
	}
	n := newNode(t, "n1")
	if _, err := NewCluster(n, n); err == nil {
		t.Fatal("duplicate node accepted")
	}
	c := newCluster(t, newNode(t, "n1"))
	if err := c.AddQueue(Queue{Name: "short"}); err == nil {
		t.Fatal("duplicate queue accepted")
	}
	if err := c.AddQueue(Queue{}); err == nil {
		t.Fatal("unnamed queue accepted")
	}
	if _, err := c.Submit(JobSpec{Name: "j", Queue: "nope", Runner: burner(t, "x", 1, 1)}); err == nil {
		t.Fatal("unknown queue accepted")
	}
	if _, err := c.Submit(JobSpec{Name: "j", Queue: "short"}); err == nil {
		t.Fatal("nil runner accepted")
	}
}

func TestJobLifecycle(t *testing.T) {
	c := newCluster(t, newNode(t, "n1"))
	j, err := c.Submit(JobSpec{User: "u", Name: "job", Queue: "short", Runner: burner(t, "job", 0.5, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if j.State != JobPending {
		t.Fatal("job must start pending")
	}
	c.Advance(3 * time.Second)
	if j.State != JobDone {
		t.Fatalf("job state = %v, want done", j.State)
	}
	if j.Task == nil || j.Node == nil {
		t.Fatal("placement not recorded")
	}
	if j.EndedAt == 0 {
		t.Fatal("end time not recorded")
	}
	if j.Task.Totals().Instructions == 0 {
		t.Fatal("job did no work")
	}
}

func TestDelayedSubmission(t *testing.T) {
	c := newCluster(t, newNode(t, "n1"))
	j, _ := c.Submit(JobSpec{User: "u", Name: "later", Queue: "short",
		Runner: burner(t, "later", 10, 1), SubmitAt: 5 * time.Second})
	c.Advance(3 * time.Second)
	if j.State != JobPending {
		t.Fatal("job must wait for SubmitAt")
	}
	c.Advance(4 * time.Second)
	if j.State != JobRunning {
		t.Fatalf("job state = %v after submit time", j.State)
	}
	if j.StartedAt < 5*time.Second {
		t.Fatalf("started at %v, before submit time", j.StartedAt)
	}
}

func TestPriorityOrdering(t *testing.T) {
	// One single-logical-CPU node: only one job can run; the
	// high-priority submission dispatches first although submitted
	// second.
	k, err := sched.New(machine.PPC970(), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// PPC970 has 2 cores; cap via queue slots instead.
	c, err := NewCluster(&Node{Name: "n1", Kernel: k})
	if err != nil {
		t.Fatal(err)
	}
	c.AddQueue(Queue{Name: "low", Priority: 1, SlotsPerNode: 1})
	c.AddQueue(Queue{Name: "high", Priority: 9, SlotsPerNode: 1})
	lo, _ := c.Submit(JobSpec{User: "u", Name: "lo", Queue: "low", Runner: burner(t, "lo", 30, 1)})
	hi, _ := c.Submit(JobSpec{User: "u", Name: "hi", Queue: "high", Runner: burner(t, "hi", 30, 2)})
	c.Advance(2 * time.Second)
	if hi.State != JobRunning {
		t.Fatalf("high-priority job = %v, want running", hi.State)
	}
	// Low queue has its own slot (different queue), so it also runs;
	// the ordering guarantee is that high dispatched no later.
	if lo.State == JobRunning && lo.StartedAt < hi.StartedAt {
		t.Fatal("low priority started before high")
	}
}

func TestSlotLimits(t *testing.T) {
	c := newCluster(t, newNode(t, "n1"))
	c.AddQueue(Queue{Name: "capped", Priority: 5, SlotsPerNode: 2})
	jobs := make([]*Job, 4)
	for i := range jobs {
		jobs[i], _ = c.Submit(JobSpec{User: "u", Name: "c", Queue: "capped",
			Runner: burner(t, "c", 60, int64(i+1))})
	}
	c.Advance(2 * time.Second)
	running := 0
	for _, j := range jobs {
		if j.State == JobRunning {
			running++
		}
	}
	if running != 2 {
		t.Fatalf("running = %d, want 2 (queue slot cap)", running)
	}
}

func TestNodeCapacityLimit(t *testing.T) {
	// 16 logical CPUs per node: the 17th job stays pending.
	c := newCluster(t, newNode(t, "n1"))
	jobs := make([]*Job, 17)
	for i := range jobs {
		jobs[i], _ = c.Submit(JobSpec{User: "u", Name: "j", Queue: "long",
			Runner: burner(t, "j", 120, int64(i+1))})
	}
	c.Advance(2 * time.Second)
	pending := 0
	for _, j := range jobs {
		if j.State == JobPending {
			pending++
		}
	}
	if pending != 1 {
		t.Fatalf("pending = %d, want 1", pending)
	}
	if got := c.Utilization(c.Nodes()[0]); got != 1.0 {
		t.Fatalf("utilization = %v, want 1.0", got)
	}
}

func TestLeastLoadedNodeChosen(t *testing.T) {
	n1, n2 := newNode(t, "n1"), newNode(t, "n2")
	c := newCluster(t, n1, n2)
	// Fill n1 with 3 jobs, then submit one more: it must go to n2...
	// but placement is least-loaded from the start, so alternate.
	var jobs []*Job
	for i := 0; i < 4; i++ {
		j, _ := c.Submit(JobSpec{User: "u", Name: "j", Queue: "long",
			Runner: burner(t, "j", 60, int64(i+1))})
		jobs = append(jobs, j)
	}
	c.Advance(2 * time.Second)
	count := map[*Node]int{}
	for _, j := range jobs {
		count[j.Node]++
	}
	if count[n1] != 2 || count[n2] != 2 {
		t.Fatalf("placement = n1:%d n2:%d, want 2/2", count[n1], count[n2])
	}
}

func TestMaxRuntimeKill(t *testing.T) {
	c := newCluster(t, newNode(t, "n1"))
	c.AddQueue(Queue{Name: "tiny", Priority: 5, MaxRuntime: 3 * time.Second})
	j, _ := c.Submit(JobSpec{User: "u", Name: "hog", Queue: "tiny",
		Runner: burner(t, "hog", 600, 1)})
	c.Advance(10 * time.Second)
	if j.State != JobKilled {
		t.Fatalf("job state = %v, want killed", j.State)
	}
	if j.Task.State() != sched.TaskExited {
		t.Fatal("underlying task must be dead")
	}
}

func TestQueuesSorted(t *testing.T) {
	c := newCluster(t, newNode(t, "n1"))
	names := c.Queues()
	if len(names) != 2 || names[0] != "short" || names[1] != "long" {
		t.Fatalf("queues = %v", names)
	}
}

func TestDefaultQueuesSixteen(t *testing.T) {
	// Paper §3.4: "It defines sixteen queues for jobs of different
	// wall-clock run time, memory requirements, and urgency."
	queues := DefaultQueues()
	if len(queues) != 16 {
		t.Fatalf("queues = %d, want 16", len(queues))
	}
	c := newCluster(t, newNode(t, "n1"))
	names := map[string]bool{}
	for _, q := range queues {
		if err := c.AddQueue(q); err != nil {
			t.Fatalf("AddQueue(%s): %v", q.Name, err)
		}
		names[q.Name] = true
	}
	if len(names) != 16 {
		t.Fatal("queue names must be distinct")
	}
	// Urgent queues outrank overnight ones.
	var urgentMin, overnightMax = 1 << 30, -1
	for _, q := range queues {
		if strings.HasPrefix(q.Name, "asap-") && q.Priority < urgentMin {
			urgentMin = q.Priority
		}
		if strings.HasPrefix(q.Name, "overnight-") && q.Priority > overnightMax {
			overnightMax = q.Priority
		}
	}
	if urgentMin <= overnightMax {
		t.Fatalf("asap queues (min %d) must outrank overnight (max %d)", urgentMin, overnightMax)
	}
	// Short queues enforce runtime limits; the inf queues do not.
	for _, q := range queues {
		if strings.Contains(q.Name, "-15m-") && q.MaxRuntime != 15*time.Minute {
			t.Fatalf("15m queue limit = %v", q.MaxRuntime)
		}
		if strings.Contains(q.Name, "-inf-") && q.MaxRuntime != 0 {
			t.Fatalf("inf queue limit = %v", q.MaxRuntime)
		}
	}
}

func TestJobStateString(t *testing.T) {
	states := []JobState{JobPending, JobRunning, JobDone, JobKilled, JobState(99)}
	for _, s := range states {
		if s.String() == "" {
			t.Fatal("empty state string")
		}
	}
}
