package query

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tiptop/internal/store"
)

func get(t *testing.T, h http.Handler, target string) (int, string) {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", target, nil))
	return w.Code, w.Body.String()
}

func TestHandlerParseErrorsAre400(t *testing.T) {
	st := seedStore(t, 1, 10)
	h := Handler(st, nil)

	// Syntax error: 400, never 500, and the offending position named.
	code, body := get(t, h, "/api/v1/query?expr="+strings.ReplaceAll("delta(INSTRUCTIONS", " ", "%20"))
	if code != http.StatusBadRequest {
		t.Fatalf("syntax error: status %d, want 400; body %s", code, body)
	}
	if !strings.Contains(body, "offset") {
		t.Fatalf("syntax error body %q does not name the offset", body)
	}

	// Unknown event name: 400 with the nearest registered names.
	code, body = get(t, h, "/api/v1/query?expr=delta(CYCLE)")
	if code != http.StatusBadRequest {
		t.Fatalf("unknown name: status %d, want 400; body %s", code, body)
	}
	if !strings.Contains(body, "did you mean") || !strings.Contains(body, "CYCLES") {
		t.Fatalf("unknown name body %q lacks a CYCLES suggestion", body)
	}

	// Bad step.
	if code, body = get(t, h, "/api/v1/query?expr=CYCLES&step=never"); code != http.StatusBadRequest {
		t.Fatalf("bad step: status %d, body %s", code, body)
	}
}

func TestHandlerExprOverStore(t *testing.T) {
	st := seedStore(t, 2, 63)
	h := Handler(st, nil)
	code, body := get(t, h, "/api/v1/query?expr=delta(INSTRUCTIONS)/delta(CYCLES)&step=1m")
	if code != http.StatusOK {
		t.Fatalf("status %d, body %s", code, body)
	}
	var res Result
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if res.StepSeconds != 60 || len(res.Series) != 3 {
		t.Fatalf("result = step %g, %d series; want 60s and 3", res.StepSeconds, len(res.Series))
	}
	for _, s := range res.Series {
		for _, p := range s.Points {
			if p.Value != 2 {
				t.Fatalf("series %q = %v, want IPC 2", s.Key, p.Value)
			}
		}
	}

	// Raw queries (no expr) keep the PR-5 contract.
	code, body = get(t, h, "/api/v1/query?pid=100")
	if code != http.StatusOK {
		t.Fatalf("raw query: status %d, body %s", code, body)
	}
	if !strings.Contains(body, "series") {
		t.Fatalf("raw query body %q is not a store response", body)
	}
}

func TestHandlerOpenMetrics(t *testing.T) {
	st := seedStore(t, 1, 63)
	h := Handler(st, nil)
	code, body := get(t, h, "/api/v1/query?expr=delta(INSTRUCTIONS)/delta(CYCLES)&step=1m&format=openmetrics")
	if code != http.StatusOK {
		t.Fatalf("status %d, body %s", code, body)
	}
	for _, want := range []string{"# TYPE tiptop_query gauge", "tiptop_query{", `key="total"`, "# EOF"} {
		if !strings.Contains(body, want) {
			t.Fatalf("openmetrics body lacks %q:\n%s", want, body)
		}
	}
	if strings.Contains(body, "NaN") || strings.Contains(body, "Inf") {
		t.Fatalf("openmetrics body carries non-finite values:\n%s", body)
	}
}

func TestHandlerLiveFallback(t *testing.T) {
	rec := seedRecorder(2, 20)
	h := Handler(nil, rec)

	// No store: raw range queries get a hint, expression queries run
	// against the live rings.
	if code, body := get(t, h, "/api/v1/query?pid=100"); code != http.StatusNotFound || !strings.Contains(body, "-store") {
		t.Fatalf("raw query without store: status %d, body %s", code, body)
	}
	code, body := get(t, h, "/api/v1/query?expr=delta(INSTRUCTIONS)/delta(CYCLES)&step=10")
	if code != http.StatusOK {
		t.Fatalf("live expr: status %d, body %s", code, body)
	}
	var res Result
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("live expr: %d series, want 3", len(res.Series))
	}
}

func TestFleetHandler(t *testing.T) {
	stores := map[string]*store.Store{
		"a:1": seedStore(t, 2, 63),
		"b:2": seedStore(t, 2, 63),
	}
	labels := func() []string { return []string{"a:1", "b:2"} }
	h := FleetHandler(stores, labels)

	// agent=* merges the fleet.
	code, body := get(t, h, "/api/v1/query?expr=delta(INSTRUCTIONS)/delta(CYCLES)&step=1m&agent=*")
	if code != http.StatusOK {
		t.Fatalf("agent=*: status %d, body %s", code, body)
	}
	var res Result
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 5 { // total + 2 tasks × 2 agents
		t.Fatalf("agent=*: %d series, want 5", len(res.Series))
	}
	if !res.Series[0].Total || res.Series[0].Points[0].Value != 2 {
		t.Fatalf("fleet total = %+v, want recomputed Σinstr/Σcycles = 2", res.Series[0])
	}

	// A named agent restricts the merge.
	code, body = get(t, h, "/api/v1/query?expr=delta(INSTRUCTIONS)&step=1m&agent=a:1")
	if code != http.StatusOK {
		t.Fatalf("agent=a:1: status %d, body %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("agent=a:1: %d series, want 3", len(res.Series))
	}

	// Unknown agents are a 400 naming the known ones.
	if code, body = get(t, h, "/api/v1/query?expr=CYCLES&step=1m&agent=nope"); code != http.StatusBadRequest || !strings.Contains(body, "a:1") {
		t.Fatalf("unknown agent: status %d, body %s", code, body)
	}
	// Merging without a step is the caller's error.
	if code, body = get(t, h, "/api/v1/query?expr=CYCLES&agent=*"); code != http.StatusBadRequest || !strings.Contains(body, "step") {
		t.Fatalf("fleet merge without step: status %d, body %s", code, body)
	}
}

func TestQueryExprClient(t *testing.T) {
	st := seedStore(t, 2, 63)
	srv := httptest.NewServer(Handler(st, nil))
	defer srv.Close()
	c, err := NewClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.QueryExpr("delta(INSTRUCTIONS)/delta(CYCLES)", Options{StepSeconds: 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 || res.Series[0].Points[0].Value != 2 {
		t.Fatalf("client result = %+v", res)
	}
	// Server-side errors surface as client errors, not decode failures.
	if _, err := c.QueryExpr("delta(CYCLE)", Options{}); err == nil || !strings.Contains(err.Error(), "CYCLES") {
		t.Fatalf("client error = %v, want the server's suggestion passed through", err)
	}
}
