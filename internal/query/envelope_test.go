package query

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"tiptop/internal/remote"
	"tiptop/internal/store"
)

// TestErrorEnvelope drives every failure path of the solo and fleet
// query handlers through one table and asserts the uniform JSON
// envelope: the right status, a parseable {"error","hint","offset"}
// body with Content-Type application/json, and — for expression
// failures — the byte offset and did-you-mean hint carried
// structurally, not just embedded in prose.
func TestErrorEnvelope(t *testing.T) {
	st := seedStore(t, 1, 10)
	solo := Handler(st, nil)
	bare := Handler(nil, nil)
	stores := map[string]*store.Store{"a:1": seedStore(t, 1, 10), "b:2": seedStore(t, 1, 10)}
	fleet := FleetHandler(stores, func() []string { return []string{"a:1", "b:2"} })
	empty := FleetHandler(nil, func() []string { return nil })

	intp := func(n int) *int { return &n }
	tests := []struct {
		name       string
		h          http.Handler
		target     string
		status     int
		wantErr    string // substring of .error
		wantHint   string // substring of .hint ("" = hint must be absent)
		wantOffset *int   // nil = offset must be absent
	}{
		{"syntax error carries offset", solo,
			"/api/v1/query?expr=" + url.QueryEscape("delta(INSTRUCTIONS"),
			http.StatusBadRequest, "expected", "", intp(18)},
		{"unknown name carries hint and offset", solo,
			"/api/v1/query?expr=" + url.QueryEscape("delta(CYCLE)"),
			http.StatusBadRequest, `unknown event or column "CYCLE"`, "did you mean CYCLES", intp(6)},
		{"bad step", solo, "/api/v1/query?expr=CYCLES&step=never",
			http.StatusBadRequest, "step", "30s, 1m, 1h", nil},
		{"negative step", solo, "/api/v1/query?expr=CYCLES&step=-10",
			http.StatusBadRequest, "step", "never negative", nil},
		{"bad from", solo, "/api/v1/query?expr=CYCLES&from=soon",
			http.StatusBadRequest, `bad from "soon"`, "", nil},
		{"inverted range", solo, "/api/v1/query?expr=CYCLES&from=100&to=50",
			http.StatusBadRequest, "ends (50s) before it starts (100s)", "want from <= to", nil},
		{"raw negative step", solo, "/api/v1/query?pid=100&step=-10",
			http.StatusBadRequest, "negative step -10", "bucket width", nil},
		{"raw inverted range", solo, "/api/v1/query?pid=100&from=100&to=50",
			http.StatusBadRequest, "ends (50s) before it starts (100s)", "want from <= to", nil},
		{"fleet raw negative step", fleet, "/api/v1/query?pid=100&agent=a:1&step=-10",
			http.StatusBadRequest, "negative step -10", "bucket width", nil},
		{"unknown format", solo, "/api/v1/query?expr=CYCLES&format=yaml",
			http.StatusBadRequest, `unknown format "yaml"`, "", nil},
		{"unknown source", solo, "/api/v1/query?expr=CYCLES&source=tape",
			http.StatusBadRequest, `unknown source "tape"`, "", nil},
		{"raw query without store", bare, "/api/v1/query?pid=100",
			http.StatusNotFound, "no durable store configured", "-store DIR", nil},
		{"live query without recorder", bare, "/api/v1/query?expr=CYCLES",
			http.StatusNotFound, "no live recorder", "source=live", nil},
		{"fleet without stores", empty, "/api/v1/query?expr=CYCLES",
			http.StatusNotFound, "no durable store configured", "-store DIR", nil},
		{"fleet raw unknown agent", fleet, "/api/v1/query?pid=100&agent=nope",
			http.StatusBadRequest, `unknown agent "nope"`, "agent=a:1|b:2", nil},
		{"fleet expr unknown agent", fleet, "/api/v1/query?expr=CYCLES&step=10&agent=nope",
			http.StatusBadRequest, `unknown agent "nope"`, "agent=a:1|b:2 or agent=*", nil},
		{"fleet merge without step", fleet, "/api/v1/query?expr=CYCLES&agent=*",
			http.StatusBadRequest, "needs an explicit step", "pass step=", nil},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			w := httptest.NewRecorder()
			tc.h.ServeHTTP(w, httptest.NewRequest("GET", tc.target, nil))
			if w.Code != tc.status {
				t.Fatalf("status %d, want %d; body %s", w.Code, tc.status, w.Body)
			}
			if ct := w.Header().Get("Content-Type"); ct != "application/json" {
				t.Fatalf("Content-Type %q, want application/json", ct)
			}
			var e remote.APIError
			if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
				t.Fatalf("body is not an envelope: %v\n%s", err, w.Body)
			}
			if !strings.Contains(e.Message, tc.wantErr) {
				t.Errorf("error %q lacks %q", e.Message, tc.wantErr)
			}
			if tc.wantHint == "" {
				if e.Hint != "" {
					t.Errorf("unexpected hint %q", e.Hint)
				}
			} else if !strings.Contains(e.Hint, tc.wantHint) {
				t.Errorf("hint %q lacks %q", e.Hint, tc.wantHint)
			}
			switch {
			case tc.wantOffset == nil && e.Offset != nil:
				t.Errorf("unexpected offset %d", *e.Offset)
			case tc.wantOffset != nil && e.Offset == nil:
				t.Errorf("offset absent, want %d", *tc.wantOffset)
			case tc.wantOffset != nil && *e.Offset != *tc.wantOffset:
				t.Errorf("offset %d, want %d", *e.Offset, *tc.wantOffset)
			}
		})
	}
}

// TestHandlerAcceptNegotiation: an Accept header asking for
// application/openmetrics-text selects the exposition format on both
// solo and fleet expression queries, and an explicit ?format= always
// wins over it.
func TestHandlerAcceptNegotiation(t *testing.T) {
	st := seedStore(t, 1, 63)
	stores := map[string]*store.Store{"a:1": seedStore(t, 1, 63)}
	cases := []struct {
		name   string
		h      http.Handler
		target string
	}{
		{"solo", Handler(st, nil), "/api/v1/query?expr=delta(CYCLES)&step=1m"},
		{"fleet", FleetHandler(stores, func() []string { return []string{"a:1"} }),
			"/api/v1/query?expr=delta(CYCLES)&step=1m&agent=*"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest("GET", tc.target, nil)
			req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
			w := httptest.NewRecorder()
			tc.h.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				t.Fatalf("status %d, body %s", w.Code, w.Body)
			}
			if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
				t.Fatalf("Content-Type %q, want openmetrics", ct)
			}
			if !strings.Contains(w.Body.String(), "# EOF") {
				t.Fatalf("body is not an exposition:\n%s", w.Body)
			}

			// The explicit parameter wins over the Accept header.
			req = httptest.NewRequest("GET", tc.target+"&format=json", nil)
			req.Header.Set("Accept", "application/openmetrics-text")
			w = httptest.NewRecorder()
			tc.h.ServeHTTP(w, req)
			if ct := w.Header().Get("Content-Type"); ct != "application/json" {
				t.Fatalf("format=json with openmetrics Accept: Content-Type %q", ct)
			}
		})
	}
}
