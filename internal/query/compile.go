// Package query is the shared expression query engine: the screen
// expression language (internal/metrics) evaluated as time series over
// any of three backends — live history rings (history.Recorder), the
// durable store's downsample tiers (store.Store), and fleet mode's
// per-agent stores merged on aligned steps. One engine, one grammar
// and one totality rule serve the interactive screens, the
// /api/v1/query?expr= endpoint and the fleet aggregator, so
// `delta(INSTRUCTIONS)/delta(CYCLES)` means exactly the same thing in
// a terminal column, a stored range query and a cluster roll-up.
package query

import (
	"fmt"

	"tiptop/internal/hpm"
	"tiptop/internal/metrics"
)

// DoS guards on compiled expressions: a query endpoint accepts
// arbitrary expressions from the network, so both the source length
// and the parsed node count are capped (an adversarial expression can
// pack many nodes into few bytes; the parser itself already bounds
// nesting depth).
const (
	MaxExprLen   = 4096
	MaxExprNodes = 512
)

// Compiled is a validated query expression, split into the parts the
// engine executes: the per-bucket expression, the optional topk rank
// count, and the optional grouping key.
type Compiled struct {
	// Source is the original expression text.
	Source string
	// Expr is the per-bucket expression (the inside of topk, when one
	// was present).
	Expr *metrics.Expr
	// K is the topk() rank count; 0 when the query keeps every series.
	K int
	// GroupBy is "", "user", "command" or "agent".
	GroupBy string
	// Pointwise is set when the expression folds *_over_time functions
	// and so needs the individual points inside each bucket.
	Pointwise bool
}

// BaseNames are the identifiers every query backend resolves: the raw
// counters persisted per record/point, plus the context variables that
// make sense over a bucket. (FREQ_HZ and NUM_CPUS are live-sampling
// context; stored records do not carry them.)
func BaseNames() []string {
	return []string{
		hpm.EventInstructions,
		hpm.EventCycles,
		hpm.EventCacheMisses,
		metrics.VarDeltaNS,
		metrics.VarCPUPct,
	}
}

// KnownNames is BaseNames plus the backend's screen column names — the
// full identifier vocabulary of one query.
func KnownNames(cols []string) []string {
	return append(BaseNames(), cols...)
}

// Compile parses and validates a query expression against the
// identifier vocabulary of the backend it will run on. Errors carry
// the offending position (metrics.SyntaxError), and unknown
// identifiers name the nearest known ones.
func Compile(src string, known []string) (*Compiled, error) {
	if len(src) == 0 {
		return nil, fmt.Errorf("query: empty expression")
	}
	if len(src) > MaxExprLen {
		return nil, fmt.Errorf("query: expression too long (%d bytes, max %d)", len(src), MaxExprLen)
	}
	e, err := metrics.Compile(src)
	if err != nil {
		return nil, err
	}
	if n := e.NodeCount(); n > MaxExprNodes {
		return nil, fmt.Errorf("query: expression too complex (%d nodes, max %d)", n, MaxExprNodes)
	}
	c := &Compiled{Source: src, Expr: e, GroupBy: e.GroupBy()}
	if k, inner, err := e.SplitTopK(); err != nil {
		return nil, err
	} else if inner != nil {
		c.K, c.Expr = k, inner
	}
	for _, id := range c.Expr.Identifiers() {
		if !knownName(id, known) {
			// Msg and Hint stay separate so the HTTP envelope can carry
			// the did-you-mean structurally; Error() renders both,
			// matching FormatUnknownName.
			return nil, &metrics.SyntaxError{
				Src: src, Pos: identPos(src, id),
				Msg:  fmt.Sprintf("unknown event or column %q", id),
				Hint: metrics.UnknownNameHint(id, known),
			}
		}
	}
	c.Pointwise = c.Expr.NeedsPointwise()
	return c, nil
}

// References returns the distinct identifiers the compiled per-bucket
// expression reads — the projection a storage backend can restrict its
// decode to. Counter and context names (BaseNames) appear alongside
// screen column names; a backend matches what it recognizes and
// ignores the rest.
func (c *Compiled) References() []string {
	return c.Expr.Identifiers()
}

func knownName(id string, known []string) bool {
	for _, k := range known {
		if k == id {
			return true
		}
	}
	return false
}

// identPos locates an identifier in the source for error reporting.
// The lexer does not record per-identifier positions, but a plain
// substring search is exact enough for a "did you mean" diagnostic.
func identPos(src, id string) int {
	for i := 0; i+len(id) <= len(src); i++ {
		if src[i:i+len(id)] == id &&
			(i == 0 || !identByte(src[i-1])) &&
			(i+len(id) == len(src) || !identByte(src[i+len(id)])) {
			return i
		}
	}
	return 0
}

func identByte(c byte) bool {
	return c == '_' || c >= '0' && c <= '9' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}
