package query

// The evaluation engine: a push-based accumulator that sources feed
// time-stamped frames of task observations into. The engine buckets
// each observation on the query step using the store's (start, end]
// convention, accumulates per-series per-bucket sums (counters) and
// means (column values, CPU), and evaluates the compiled expression
// once per bucket at Finish — so a source can stream records straight
// off a segment scan, or merge several agents' scans, without
// materialising intermediate series.
//
// Within a bucket, counter identifiers (INSTRUCTIONS, CYCLES,
// CACHE_MISSES) carry the bucket *sum* — so delta() is the bucket
// delta and ratios recompute from sums (Σinstr/Σcycles), matching the
// store's downsampling and the fleet snapshot's aggregate semantics.
// Column identifiers and CPU_PCT carry the mean over the contributing
// observations. DELTA_NS is the bucket width (step), or the source's
// refresh interval at raw resolution.

import (
	"sort"
	"time"

	"tiptop/internal/hpm"
	"tiptop/internal/metrics"
)

// Options select the range, step and output shape of one query.
type Options struct {
	// FromSeconds/ToSeconds bound the range (inclusive) on the
	// backend's clock; ToSeconds <= 0 means "to the end".
	FromSeconds float64
	ToSeconds   float64
	// StepSeconds is the bucket width; 0 evaluates at the serving
	// resolution (one bucket per record/point).
	StepSeconds float64
	// Workers sizes the store-scan worker pool: 0 uses one worker per
	// CPU, 1 forces the serial path. An execution knob, not a query
	// parameter — it never changes the result.
	Workers int
	// FullDecode disables column projection, materializing every field
	// of every scanned record — the benchmark baseline and a debugging
	// escape hatch. Projection never changes the result either: the
	// engine only reads what the expression references.
	FullDecode bool
}

// Point is one evaluated value of a query series.
type Point struct {
	TimeSeconds float64 `json:"time_s"`
	Value       float64 `json:"value"`
}

// Series is one evaluated series: a task, a group (user/command/agent)
// or the total roll-up.
type Series struct {
	// Key is the display label: "total", a group value, or
	// "[agent/]pid[:tid]".
	Key     string `json:"key"`
	PID     int    `json:"pid,omitempty"`
	TID     int    `json:"tid,omitempty"`
	User    string `json:"user,omitempty"`
	Command string `json:"command,omitempty"`
	Agent   string `json:"agent,omitempty"`
	Total   bool   `json:"total,omitempty"`
	// Mean is the series' mean value over the range — the topk
	// ranking key.
	Mean   float64 `json:"mean"`
	Points []Point `json:"points"`
}

// Result is an expression query response.
type Result struct {
	// Expr is the canonical form of the evaluated expression.
	Expr    string `json:"expr"`
	GroupBy string `json:"group_by,omitempty"`
	K       int    `json:"k,omitempty"`
	// ResolutionSeconds is the serving tier's resolution (0 = raw).
	ResolutionSeconds float64  `json:"resolution_s"`
	StepSeconds       float64  `json:"step_s,omitempty"`
	Series            []Series `json:"series"`
}

// Frame is one time-stamped batch of observations pushed into the
// engine: all tasks one backend saw at one instant.
type Frame struct {
	// Agent labels the source in fleet merges; "" solo.
	Agent string
	// TimeSeconds is the frame's time on its backend's clock.
	TimeSeconds float64
	// DTNanos is the interval the frame's deltas cover, when the
	// source knows it (a downsample tier's resolution); 0 lets the
	// engine derive it from successive frame times per agent, and a
	// negative value marks it genuinely unknown (a series' first
	// point), evaluating DELTA_NS as 0 rather than guessing.
	DTNanos float64
	Rows    []FrameRow
}

// FrameRow is one task's observation inside a frame.
type FrameRow struct {
	PID, TID      int
	User, Command string
	CPUPct        float64
	// Values are the screen column values, aligned to the engine's
	// current columns (SetColumns).
	Values []float64
	// Counter deltas over the frame's interval.
	Instr, Cycles, Misses float64
}

// seriesKey identifies one output series while accumulating.
type seriesKey struct {
	agent    string
	pid, tid int
	group    string
	total    bool
}

type bucketAcc struct {
	n                     int
	instr, cycles, misses float64
	cpu                   float64
	vals                  []float64
	dtNS                  float64
	points                []metrics.Env
}

type seriesAcc struct {
	key        seriesKey
	user, comm string
	buckets    map[float64]*bucketAcc
}

// Engine accumulates frames and evaluates the expression per bucket.
type Engine struct {
	c        *Compiled
	opt      Options
	step     time.Duration
	cols     []string
	colIdx   map[string]int
	series   map[seriesKey]*seriesAcc
	lastTime map[string]float64 // per agent, for derived frame intervals
	res      float64            // serving resolution, set by the source
}

// NewEngine builds an engine for one compiled query.
func NewEngine(c *Compiled, opt Options) *Engine {
	return &Engine{
		c:        c,
		opt:      opt,
		step:     time.Duration(opt.StepSeconds * float64(time.Second)),
		series:   make(map[seriesKey]*seriesAcc),
		lastTime: make(map[string]float64),
	}
}

// SetColumns aligns subsequent frames' Values with the named screen
// columns. Sources call it before the first frame and again whenever
// the scan crosses a screen change.
func (e *Engine) SetColumns(cols []string) {
	e.cols = cols
	e.colIdx = make(map[string]int, len(cols))
	for i, c := range cols {
		e.colIdx[c] = i
	}
}

// SetResolution records the serving tier's resolution for the result.
// The coarsest resolution wins when sources differ (a fleet merge
// across agents whose stores picked different tiers).
func (e *Engine) SetResolution(resSeconds float64) {
	if resSeconds > e.res {
		e.res = resSeconds
	}
}

// Push folds one frame into the accumulators.
func (e *Engine) Push(f *Frame) {
	if e.opt.ToSeconds > 0 && f.TimeSeconds > e.opt.ToSeconds {
		return
	}
	if f.TimeSeconds < e.opt.FromSeconds {
		e.lastTime[f.Agent] = f.TimeSeconds
		return
	}
	dtNS := f.DTNanos
	if dtNS == 0 {
		if last, ok := e.lastTime[f.Agent]; ok && f.TimeSeconds > last {
			dtNS = (f.TimeSeconds - last) * 1e9
		}
	}
	if dtNS < 0 {
		dtNS = 0
	}
	e.lastTime[f.Agent] = f.TimeSeconds
	bt := e.bucketTime(f.TimeSeconds)
	for i := range f.Rows {
		r := &f.Rows[i]
		e.fold(e.rowKey(f.Agent, r), r, bt, dtNS)
		e.fold(seriesKey{total: true}, r, bt, dtNS)
	}
}

// rowKey maps a row to its output series under the query's grouping.
func (e *Engine) rowKey(agent string, r *FrameRow) seriesKey {
	switch e.c.GroupBy {
	case "user":
		return seriesKey{group: r.User}
	case "command":
		return seriesKey{group: r.Command}
	case "agent":
		return seriesKey{group: agent}
	}
	return seriesKey{agent: agent, pid: r.PID, tid: r.TID}
}

// bucketTime maps a frame time to its bucket's end time. Buckets are
// the store's half-open (start, end] windows: a point at exactly t=30
// belongs to the bucket ending at 30, not the one starting there.
func (e *Engine) bucketTime(t float64) float64 {
	if e.step <= 0 {
		return t
	}
	d := time.Duration(t * float64(time.Second))
	idx := int64(0)
	if d > 0 {
		idx = int64((d - 1) / e.step)
	}
	return (time.Duration(idx+1) * e.step).Seconds()
}

func (e *Engine) fold(key seriesKey, r *FrameRow, bt, dtNS float64) {
	acc := e.series[key]
	if acc == nil {
		acc = &seriesAcc{key: key, buckets: make(map[float64]*bucketAcc)}
		e.series[key] = acc
	}
	acc.user, acc.comm = r.User, r.Command
	b := acc.buckets[bt]
	if b == nil {
		b = &bucketAcc{}
		acc.buckets[bt] = b
	}
	b.n++
	b.instr += r.Instr
	b.cycles += r.Cycles
	b.misses += r.Misses
	b.cpu += r.CPUPct
	b.dtNS = dtNS
	if len(b.vals) < len(r.Values) {
		grown := make([]float64, len(r.Values))
		copy(grown, b.vals)
		b.vals = grown
	}
	for i, v := range r.Values {
		b.vals[i] += v
	}
	if e.c.Pointwise {
		b.points = append(b.points, &bucketEnv{
			instr: r.Instr, cycles: r.Cycles, misses: r.Misses,
			cpu: r.CPUPct, dtNS: dtNS,
			vals: append([]float64(nil), r.Values...), cols: e.colIdx,
		})
	}
}

// Merge folds another engine's accumulated state into e, as if o's
// frames had been pushed after e's own. Sources that partition their
// input — fleet queries scanning agents concurrently into per-agent
// partials — merge the partials in a fixed order, so the result does
// not depend on scan interleaving: bucket sums append in merge order,
// and o wins the last-writer fields (series labels, bucket intervals,
// columns), exactly as its frames would have arriving last.
func (e *Engine) Merge(o *Engine) {
	if o.cols != nil {
		e.cols, e.colIdx = o.cols, o.colIdx
	}
	e.SetResolution(o.res)
	for key, oacc := range o.series {
		acc := e.series[key]
		if acc == nil {
			e.series[key] = oacc
			continue
		}
		acc.user, acc.comm = oacc.user, oacc.comm
		for bt, ob := range oacc.buckets {
			b := acc.buckets[bt]
			if b == nil {
				acc.buckets[bt] = ob
				continue
			}
			b.n += ob.n
			b.instr += ob.instr
			b.cycles += ob.cycles
			b.misses += ob.misses
			b.cpu += ob.cpu
			b.dtNS = ob.dtNS
			if len(b.vals) < len(ob.vals) {
				grown := make([]float64, len(ob.vals))
				copy(grown, b.vals)
				b.vals = grown
			}
			for i, v := range ob.vals {
				b.vals[i] += v
			}
			b.points = append(b.points, ob.points...)
		}
	}
}

// bucketEnv is the evaluation environment of one bucket (or one point
// inside a bucket): counters, context variables and column values.
type bucketEnv struct {
	instr, cycles, misses float64
	cpu                   float64
	dtNS                  float64
	vals                  []float64
	cols                  map[string]int
}

func (b *bucketEnv) Lookup(name string) (float64, bool) {
	switch name {
	case hpm.EventInstructions:
		return b.instr, true
	case hpm.EventCycles:
		return b.cycles, true
	case hpm.EventCacheMisses:
		return b.misses, true
	case metrics.VarDeltaNS:
		return b.dtNS, true
	case metrics.VarCPUPct:
		return b.cpu, true
	}
	if i, ok := b.cols[name]; ok && i < len(b.vals) {
		return b.vals[i], true
	}
	return 0, false
}

// Finish evaluates every accumulated bucket and assembles the result:
// series sorted deterministically (total first, then groups or tasks),
// topk ranking applied when the query asked for one.
func (e *Engine) Finish() (*Result, error) {
	out := &Result{
		Expr:              e.c.Expr.String(),
		GroupBy:           e.c.GroupBy,
		K:                 e.c.K,
		ResolutionSeconds: e.res,
		StepSeconds:       e.opt.StepSeconds,
	}
	stepNS := e.opt.StepSeconds * 1e9
	for _, acc := range e.series {
		times := make([]float64, 0, len(acc.buckets))
		for bt := range acc.buckets {
			times = append(times, bt)
		}
		sort.Float64s(times)
		s := Series{
			PID: acc.key.pid, TID: acc.key.tid,
			Agent: acc.key.agent, Total: acc.key.total,
			Points: make([]Point, 0, len(times)),
		}
		switch {
		case acc.key.total:
			s.Key = "total"
		case e.c.GroupBy != "":
			s.Key = acc.key.group
		default:
			s.Key = taskKey(acc.key)
			s.User, s.Command = acc.user, acc.comm
		}
		sum := 0.0
		for _, bt := range times {
			b := acc.buckets[bt]
			n := float64(b.n)
			env := &bucketEnv{
				instr: b.instr, cycles: b.cycles, misses: b.misses,
				cpu: b.cpu / n, dtNS: b.dtNS, cols: e.colIdx,
			}
			if stepNS > 0 {
				env.dtNS = stepNS
			}
			env.vals = make([]float64, len(b.vals))
			for i, v := range b.vals {
				env.vals[i] = v / n
			}
			var v float64
			var err error
			if e.c.Pointwise {
				v, err = e.c.Expr.EvalBucket(env, b.points)
			} else {
				v, err = e.c.Expr.Eval(env)
			}
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{TimeSeconds: bt, Value: v})
			sum += v
		}
		if len(s.Points) > 0 {
			s.Mean = sum / float64(len(s.Points))
		}
		out.Series = append(out.Series, s)
	}
	sortSeries(out.Series)
	if e.c.K > 0 {
		out.Series = applyTopK(out.Series, e.c.K)
	}
	return out, nil
}

func taskKey(k seriesKey) string {
	key := ""
	if k.agent != "" {
		key = k.agent + "/"
	}
	key += "pid:" + itoa(k.pid)
	if k.tid != 0 && k.tid != k.pid {
		key += ":" + itoa(k.tid)
	}
	return key
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// sortSeries orders output deterministically: the total roll-up first,
// then groups by key, then tasks by agent/pid/tid.
func sortSeries(ss []Series) {
	sort.Slice(ss, func(i, j int) bool {
		a, b := &ss[i], &ss[j]
		if a.Total != b.Total {
			return a.Total
		}
		if a.Agent != b.Agent {
			return a.Agent < b.Agent
		}
		if a.PID != b.PID {
			return a.PID < b.PID
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		return a.Key < b.Key
	})
}

// applyTopK keeps the total roll-up plus the k series with the highest
// mean, preserving the deterministic ordering within the survivors.
func applyTopK(ss []Series, k int) []Series {
	ranked := make([]int, 0, len(ss))
	for i := range ss {
		if !ss[i].Total {
			ranked = append(ranked, i)
		}
	}
	sort.SliceStable(ranked, func(a, b int) bool {
		return ss[ranked[a]].Mean > ss[ranked[b]].Mean
	})
	keep := make(map[int]bool, k)
	for i, idx := range ranked {
		if i >= k {
			break
		}
		keep[idx] = true
	}
	out := ss[:0]
	for i := range ss {
		if ss[i].Total || keep[i] {
			out = append(out, ss[i])
		}
	}
	return out
}
