package query

import (
	"math"
	"strings"
	"testing"
	"time"

	"tiptop/internal/core"
	"tiptop/internal/history"
	"tiptop/internal/hpm"
	"tiptop/internal/store"
)

// sampleAt builds one engine refresh with `tasks` synthetic tasks:
// instr = 1000·pid, cycles = 500·pid (IPC 2), misses = pid, one value
// column holding the pid. Task users alternate u0/u1.
func sampleAt(now time.Duration, tasks int) *core.Sample {
	s := &core.Sample{Time: now}
	for i := 0; i < tasks; i++ {
		pid := 100 + i
		user := "u0"
		if i%2 == 1 {
			user = "u1"
		}
		s.Rows = append(s.Rows, core.Row{
			Info: core.TaskInfo{
				ID:   hpm.TaskID{PID: pid, TID: pid},
				User: user, Comm: "job", State: "R",
			},
			CPUPct: 50,
			Values: []float64{float64(pid)},
			Events: map[string]uint64{
				hpm.EventInstructions: uint64(1000 * pid),
				hpm.EventCycles:       uint64(500 * pid),
				hpm.EventCacheMisses:  uint64(pid),
			},
			Valid: true,
		})
	}
	return s
}

func seedStore(t *testing.T, tasks, refreshes int) *store.Store {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	st.SetColumns([]string{"pidcol"})
	for i := 1; i <= refreshes; i++ {
		if err := st.AppendSample(sampleAt(time.Duration(i)*2*time.Second, tasks)); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func mustCompile(t *testing.T, src string, cols ...string) *Compiled {
	t.Helper()
	c, err := Compile(src, KnownNames(cols))
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	return c
}

func TestQueryStoreIPC(t *testing.T) {
	st := seedStore(t, 3, 60) // refreshes at 2s..120s
	c := mustCompile(t, "delta(INSTRUCTIONS) / delta(CYCLES)")
	res, err := QueryStore(st, c, Options{StepSeconds: 60})
	if err != nil {
		t.Fatal(err)
	}
	// 3 tasks + total.
	if len(res.Series) != 4 {
		t.Fatalf("got %d series, want 4", len(res.Series))
	}
	if !res.Series[0].Total || res.Series[0].Key != "total" {
		t.Fatalf("first series = %+v, want the total roll-up", res.Series[0])
	}
	for _, s := range res.Series {
		if len(s.Points) == 0 {
			t.Fatalf("series %q has no points", s.Key)
		}
		for _, p := range s.Points {
			// Synthetic counters have IPC exactly 2 everywhere, so any
			// Σinstr/Σcycles recomputation must too.
			if math.Abs(p.Value-2) > 1e-12 {
				t.Fatalf("series %q at %gs = %v, want 2", s.Key, p.TimeSeconds, p.Value)
			}
		}
	}
	if res.ResolutionSeconds != 60 {
		t.Fatalf("resolution = %g, want the 1m tier", res.ResolutionSeconds)
	}
}

func TestQueryStoreColumnsAndRate(t *testing.T) {
	st := seedStore(t, 2, 60)
	// The value column holds the pid; bucket averages preserve it.
	c := mustCompile(t, "pidcol", "pidcol")
	res, err := QueryStore(st, c, Options{StepSeconds: 60})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Series {
		if s.Total {
			continue
		}
		want := float64(s.PID)
		for _, p := range s.Points {
			if math.Abs(p.Value-want) > 1e-9 {
				t.Fatalf("series %q at %gs = %v, want %v", s.Key, p.TimeSeconds, p.Value, want)
			}
		}
	}
	// rate over a full 60s bucket: per task 30 refreshes × 1000·pid
	// instructions per 60s = 500·pid per second.
	c = mustCompile(t, "rate(INSTRUCTIONS)")
	res, err = QueryStore(st, c, Options{StepSeconds: 60})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Series {
		if s.Total || len(s.Points) < 2 {
			continue
		}
		// Interior buckets are fully covered (the last may be partial).
		p := s.Points[0]
		want := 500 * float64(s.PID)
		if math.Abs(p.Value-want) > want*0.05 {
			t.Fatalf("rate series %q at %gs = %v, want ≈%v", s.Key, p.TimeSeconds, p.Value, want)
		}
	}
}

func TestQueryGroupBy(t *testing.T) {
	// pids 100..103, users u0 (100,102) and u1 (101,103). 63 refreshes
	// reach past the 60s tier boundary so the first two 1m buckets are
	// flushed (a downsampled bucket closes only when a later sample
	// lands beyond its end).
	st := seedStore(t, 4, 63)
	c := mustCompile(t, "delta(INSTRUCTIONS) by user")
	res, err := QueryStore(st, c, Options{StepSeconds: 60})
	if err != nil {
		t.Fatal(err)
	}
	if res.GroupBy != "user" {
		t.Fatalf("GroupBy = %q", res.GroupBy)
	}
	byKey := map[string]Series{}
	for _, s := range res.Series {
		byKey[s.Key] = s
	}
	if len(byKey) != 3 { // total, u0, u1
		t.Fatalf("series keys = %v, want total/u0/u1", keys(byKey))
	}
	// Per 60s bucket each task contributes 30 refreshes × 1000·pid.
	wantU0 := 30.0 * 1000 * (100 + 102)
	wantU1 := 30.0 * 1000 * (101 + 103)
	if got := byKey["u0"].Points[0].Value; math.Abs(got-wantU0) > 1e-6 {
		t.Fatalf("u0 bucket = %v, want %v", got, wantU0)
	}
	if got := byKey["u1"].Points[0].Value; math.Abs(got-wantU1) > 1e-6 {
		t.Fatalf("u1 bucket = %v, want %v", got, wantU1)
	}
	if got := byKey["total"].Points[0].Value; math.Abs(got-(wantU0+wantU1)) > 1e-6 {
		t.Fatalf("total bucket = %v, want %v", got, wantU0+wantU1)
	}
}

func keys(m map[string]Series) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestQueryTopK(t *testing.T) {
	st := seedStore(t, 4, 63)
	c := mustCompile(t, "topk(2, delta(INSTRUCTIONS))")
	res, err := QueryStore(st, c, Options{StepSeconds: 60})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 2 {
		t.Fatalf("K = %d", res.K)
	}
	// total + the 2 highest-instruction tasks (largest pids).
	if len(res.Series) != 3 {
		t.Fatalf("got %d series, want 3", len(res.Series))
	}
	gotPIDs := map[int]bool{}
	for _, s := range res.Series {
		if !s.Total {
			gotPIDs[s.PID] = true
		}
	}
	if !gotPIDs[102] || !gotPIDs[103] {
		t.Fatalf("topk kept %v, want pids 102 and 103", gotPIDs)
	}
}

func TestQueryOverTime(t *testing.T) {
	st := seedStore(t, 1, 60)
	// The pid column is constant, so min/max/avg over any bucket agree.
	for _, src := range []string{"min_over_time(pidcol)", "max_over_time(pidcol)", "avg_over_time(pidcol)"} {
		c := mustCompile(t, src, "pidcol")
		res, err := QueryStore(st, c, Options{StepSeconds: 60})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range res.Series {
			if s.Total {
				continue
			}
			for _, p := range s.Points {
				if math.Abs(p.Value-100) > 1e-9 {
					t.Fatalf("%s series %q = %v, want 100", src, s.Key, p.Value)
				}
			}
		}
	}
}

// seedRecorder observes the same synthetic refreshes into a live
// recorder.
func seedRecorder(tasks, refreshes int) *history.Recorder {
	rec := history.New(history.Options{Capacity: 256})
	rec.SetColumns([]string{"pidcol"})
	for i := 1; i <= refreshes; i++ {
		rec.Observe(sampleAt(time.Duration(i)*2*time.Second, tasks))
	}
	return rec
}

// TestLiveMatchesStore is the cross-backend agreement check: the same
// refreshes observed into a live recorder and a durable store must
// evaluate to identical expression series.
func TestLiveMatchesStore(t *testing.T) {
	st := seedStore(t, 3, 50)
	rec := seedRecorder(3, 50)
	// Bound the window at 90s: the store's last partial 10s bucket
	// (90,100] is still pending (unflushed) while the live rings hold
	// every point, so only fully-flushed buckets are comparable.
	for _, src := range []string{
		"delta(INSTRUCTIONS) / delta(CYCLES)",
		"delta(CACHE_MISSES)",
		"pidcol",
	} {
		c := mustCompile(t, src, "pidcol")
		opt := Options{StepSeconds: 10, ToSeconds: 90}
		sres, err := QueryStore(st, c, opt)
		if err != nil {
			t.Fatal(err)
		}
		hres, err := QueryHistory(rec, c, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(sres.Series) != len(hres.Series) {
			t.Fatalf("%s: store %d series, live %d", src, len(sres.Series), len(hres.Series))
		}
		for i := range sres.Series {
			ss, hs := sres.Series[i], hres.Series[i]
			if ss.Key != hs.Key {
				t.Fatalf("%s: series %d keys differ: %q vs %q", src, i, ss.Key, hs.Key)
			}
			if len(ss.Points) != len(hs.Points) {
				t.Fatalf("%s %q: store %d points, live %d", src, ss.Key, len(ss.Points), len(hs.Points))
			}
			for j := range ss.Points {
				if math.Abs(ss.Points[j].Value-hs.Points[j].Value) > 1e-9 {
					t.Fatalf("%s %q point %d: store %v, live %v",
						src, ss.Key, j, ss.Points[j].Value, hs.Points[j].Value)
				}
			}
		}
	}
}

func TestQueryFleetMerge(t *testing.T) {
	stores := map[string]*store.Store{
		"a:1": seedStore(t, 2, 63),
		"b:2": seedStore(t, 2, 63),
	}
	c := mustCompile(t, "delta(INSTRUCTIONS)")
	res, err := QueryFleet(stores, c, Options{StepSeconds: 60})
	if err != nil {
		t.Fatal(err)
	}
	// total + 2 tasks × 2 agents.
	if len(res.Series) != 5 {
		t.Fatalf("got %d series, want 5", len(res.Series))
	}
	perAgent := 30.0 * 1000 * (100 + 101)
	if got := res.Series[0].Points[0].Value; math.Abs(got-2*perAgent) > 1e-6 {
		t.Fatalf("fleet total = %v, want %v (both agents summed)", got, 2*perAgent)
	}
	seenAgents := map[string]bool{}
	for _, s := range res.Series[1:] {
		if s.Agent == "" || !strings.HasPrefix(s.Key, s.Agent+"/") {
			t.Fatalf("per-task fleet series %+v not labelled by agent", s)
		}
		seenAgents[s.Agent] = true
	}
	if !seenAgents["a:1"] || !seenAgents["b:2"] {
		t.Fatalf("agents in series = %v", seenAgents)
	}

	// Grouping by agent rolls each store up.
	c = mustCompile(t, "delta(INSTRUCTIONS) by agent")
	res, err = QueryFleet(stores, c, Options{StepSeconds: 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("by agent: got %d series, want 3", len(res.Series))
	}

	// Merging several agents without a step is an error, not silent
	// misalignment.
	if _, err := QueryFleet(stores, c, Options{}); err == nil {
		t.Fatal("fleet merge without step unexpectedly succeeded")
	}
}

// TestDivZeroUnifiedAcrossBackends is the regression test for the
// unified division-by-zero/NaN rule: a task that retired no cycles
// yields 0 — not Inf, not NaN — identically on the live path and the
// store path.
func TestDivZeroUnifiedAcrossBackends(t *testing.T) {
	zeroSample := func(now time.Duration) *core.Sample {
		return &core.Sample{Time: now, Rows: []core.Row{{
			Info:   core.TaskInfo{ID: hpm.TaskID{PID: 7, TID: 7}, User: "u", Comm: "idle", State: "S"},
			Values: []float64{0},
			Events: map[string]uint64{
				hpm.EventInstructions: 5,
				hpm.EventCycles:       0,
				hpm.EventCacheMisses:  0,
			},
			Valid: true,
		}}}
	}
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.SetColumns([]string{"c0"})
	rec := history.New(history.Options{})
	rec.SetColumns([]string{"c0"})
	for i := 1; i <= 5; i++ {
		s := zeroSample(time.Duration(i) * time.Second)
		if err := st.AppendSample(s); err != nil {
			t.Fatal(err)
		}
		rec.Observe(zeroSample(time.Duration(i) * time.Second))
	}
	c := mustCompile(t, "delta(INSTRUCTIONS) / delta(CYCLES)", "c0")
	for name, run := range map[string]func() (*Result, error){
		"store": func() (*Result, error) { return QueryStore(st, c, Options{StepSeconds: 10}) },
		"live":  func() (*Result, error) { return QueryHistory(rec, c, Options{StepSeconds: 10}) },
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, s := range res.Series {
			for _, p := range s.Points {
				if p.Value != 0 {
					t.Fatalf("%s series %q = %v, want 0 under the unified rule", name, s.Key, p.Value)
				}
			}
		}
	}
}

func TestCompileValidation(t *testing.T) {
	known := KnownNames([]string{"ipc"})

	// Unknown identifiers are named with suggestions.
	_, err := Compile("delta(CYCLE)", known)
	if err == nil || !strings.Contains(err.Error(), "CYCLES") {
		t.Fatalf("unknown name error = %v, want a CYCLES suggestion", err)
	}
	// The error carries the identifier's position.
	if !strings.Contains(err.Error(), "offset 6") {
		t.Fatalf("unknown name error = %v, want offset 6", err)
	}

	// DoS caps.
	if _, err := Compile(strings.Repeat(" ", MaxExprLen)+"CYCLES", known); err == nil {
		t.Fatal("over-length expression accepted")
	}
	deep := "CYCLES"
	for i := 0; i < MaxExprNodes; i++ {
		deep = "abs(" + deep + ")"
	}
	if _, err := Compile(deep, known); err == nil {
		t.Fatal("over-complex expression accepted")
	}

	// topk splits and validates.
	c, err := Compile("topk(3, rate(INSTRUCTIONS)) by user", known)
	if err != nil {
		t.Fatal(err)
	}
	if c.K != 3 || c.GroupBy != "user" {
		t.Fatalf("Compiled = %+v", c)
	}
	if _, err := Compile("topk(CYCLES, INSTRUCTIONS)", known); err == nil {
		t.Fatal("non-literal topk k accepted")
	}
	if _, err := Compile("1 + topk(2, CYCLES)", known); err == nil {
		t.Fatal("nested topk accepted")
	}

	// FREQ_HZ is live-sampling context, not query vocabulary.
	if _, err := Compile("FREQ_HZ", known); err == nil {
		t.Fatal("FREQ_HZ accepted in a query expression")
	}
}
