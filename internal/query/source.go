package query

// The three backends: the durable store's tiers, live history rings,
// and fleet mode's per-agent stores merged on aligned steps. Each
// adapts its records into engine frames; the bucketing, grouping and
// evaluation semantics live in the engine alone.
//
// Store-backed queries run vectorized: the scan decodes segments on a
// worker pool and projects v2 records down to the columns the compiled
// expression references (plus CPU_PCT when referenced — IPC is always
// recomputed from counters, so the stored per-row ratio is never
// needed). Fleet queries scan agents concurrently into per-agent
// engines merged in sorted label order, so the result is independent
// of scan interleaving.

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"tiptop/internal/history"
	"tiptop/internal/metrics"
	"tiptop/internal/store"
)

// QueryStore evaluates a compiled expression over one durable store,
// streaming the records of the selected tier through the engine.
func QueryStore(st *store.Store, c *Compiled, opt Options) (*Result, error) {
	eng := NewEngine(c, opt)
	if err := scanInto(eng, st, "", c, opt); err != nil {
		return nil, err
	}
	return eng.Finish()
}

// scanInto streams one store's records into an engine, labelling the
// frames with the agent name (empty solo). The scan projects the
// decode down to what the expression references unless opt asks for a
// full decode.
func scanInto(eng *Engine, st *store.Store, agent string, c *Compiled, opt Options) error {
	so := store.ScanOptions{
		QueryOptions: store.QueryOptions{
			PID:         -1,
			FromSeconds: opt.FromSeconds,
			ToSeconds:   opt.ToSeconds,
			StepSeconds: opt.StepSeconds,
		},
		Workers: opt.Workers,
	}
	if !opt.FullDecode {
		so.Project = true
		so.Columns = c.References()
		for _, name := range so.Columns {
			if name == metrics.VarCPUPct {
				so.NeedCPUPct = true
			}
		}
	}
	frame := Frame{Agent: agent}
	res, err := st.ScanWith(so, func(rec *store.Record, cols []string) error {
		eng.SetColumns(cols)
		frame.TimeSeconds = rec.TimeSeconds
		frame.DTNanos = rec.ResSeconds * 1e9
		frame.Rows = frame.Rows[:0]
		for i := range rec.Rows {
			r := &rec.Rows[i]
			frame.Rows = append(frame.Rows, FrameRow{
				PID: r.PID, TID: r.TID,
				User: r.User, Command: r.Command,
				CPUPct: r.CPUPct, Values: r.Values,
				Instr:  float64(r.Instr),
				Cycles: float64(r.Cycles),
				Misses: float64(r.Misses),
			})
		}
		eng.Push(&frame)
		return nil
	})
	if err != nil {
		return err
	}
	eng.SetResolution(res.Seconds())
	return nil
}

// QueryHistory evaluates a compiled expression over a live recorder's
// ring buffers — the same data the interactive screens render, queried
// as series. Points arrive already holding per-interval counter
// deltas; the interval is derived from successive point times.
func QueryHistory(rec *history.Recorder, c *Compiled, opt Options) (*Result, error) {
	eng := NewEngine(c, opt)
	eng.SetColumns(rec.Columns())
	type obs struct {
		t    float64
		dtNS float64
		row  FrameRow
	}
	series := rec.AllSeries()
	total := 0
	for _, s := range series {
		total += len(s.Points)
	}
	all := make([]obs, 0, total)
	for _, s := range series {
		prev := -1.0
		for i := range s.Points {
			p := &s.Points[i]
			dtNS := -1.0 // first point: interval unknown
			if prev >= 0 && p.TimeSeconds > prev {
				dtNS = (p.TimeSeconds - prev) * 1e9
			}
			prev = p.TimeSeconds
			all = append(all, obs{t: p.TimeSeconds, dtNS: dtNS, row: FrameRow{
				PID: s.PID, TID: s.TID,
				User: s.User, Command: s.Command,
				CPUPct: p.CPUPct, Values: p.Values,
				Instr:  float64(p.Instr),
				Cycles: float64(p.Cycles),
				Misses: float64(p.Misses),
			}})
		}
	}
	// The engine derives unknown intervals from successive frame
	// times, so observations must arrive time-ordered; each carries
	// its own interval here, computed per ring above.
	sort.SliceStable(all, func(i, j int) bool { return all[i].t < all[j].t })
	// Consecutive observations sharing a timestamp and interval ride
	// one shared frame instead of a single-row frame each — the rings
	// observe every task at the same refresh instants, so this folds a
	// whole refresh into one push. The frame struct and its row slice
	// are reused across pushes (Push does not retain them); the stable
	// sort keeps fold order, and so every float sum, identical to the
	// one-row-per-frame path.
	var frame Frame
	for i := range all {
		o := &all[i]
		if len(frame.Rows) > 0 && (o.t != frame.TimeSeconds || o.dtNS != frame.DTNanos) {
			eng.Push(&frame)
			frame.Rows = frame.Rows[:0]
		}
		frame.TimeSeconds = o.t
		frame.DTNanos = o.dtNS
		frame.Rows = append(frame.Rows, o.row)
	}
	if len(frame.Rows) > 0 {
		eng.Push(&frame)
	}
	return eng.Finish()
}

// QueryFleet evaluates a compiled expression across several agents'
// stores: per-task series stay labelled by agent, grouped roll-ups
// (`by user`, `by agent`) and the total sum across the fleet on
// aligned step buckets, with ratios recomputed from the summed
// counters — the same Σinstr/Σcycles semantics as the fleet's
// /api/v1/snapshot. Merging across agents aligns bucket ends on each
// store's own monotonic clock, so a step is required when more than
// one agent is queried.
//
// Agents scan concurrently, each into its own engine; the partials
// merge in sorted label order, so serial and concurrent execution
// produce identical results.
func QueryFleet(stores map[string]*store.Store, c *Compiled, opt Options) (*Result, error) {
	if len(stores) == 0 {
		return nil, fmt.Errorf("query: no agent stores to query")
	}
	if len(stores) > 1 && opt.StepSeconds <= 0 {
		return nil, fmt.Errorf("query: merging %d agents needs an explicit step (buckets align per-agent clocks)", len(stores))
	}
	labels := make([]string, 0, len(stores))
	for label := range stores {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	// Divide the scan pool across the concurrent agent scans so a
	// fleet query uses the same total parallelism as a solo one.
	agentOpt := opt
	pool := opt.Workers
	if pool <= 0 {
		pool = runtime.GOMAXPROCS(0)
	}
	if agentOpt.Workers = pool / len(labels); agentOpt.Workers < 1 {
		agentOpt.Workers = 1
	}
	engines := make([]*Engine, len(labels))
	errs := make([]error, len(labels))
	scan := func(i int) {
		eng := NewEngine(c, agentOpt)
		errs[i] = scanInto(eng, stores[labels[i]], labels[i], c, agentOpt)
		engines[i] = eng
	}
	if opt.Workers == 1 || len(labels) == 1 {
		for i := range labels {
			scan(i)
		}
	} else {
		var wg sync.WaitGroup
		for i := range labels {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				scan(i)
			}(i)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	eng := engines[0]
	for _, o := range engines[1:] {
		eng.Merge(o)
	}
	return eng.Finish()
}
