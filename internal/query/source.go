package query

// The three backends: the durable store's tiers, live history rings,
// and fleet mode's per-agent stores merged on aligned steps. Each
// adapts its records into engine frames; the bucketing, grouping and
// evaluation semantics live in the engine alone.

import (
	"fmt"
	"sort"

	"tiptop/internal/history"
	"tiptop/internal/store"
)

// QueryStore evaluates a compiled expression over one durable store,
// streaming the records of the selected tier through the engine.
func QueryStore(st *store.Store, c *Compiled, opt Options) (*Result, error) {
	eng := NewEngine(c, opt)
	if err := scanInto(eng, st, "", opt); err != nil {
		return nil, err
	}
	return eng.Finish()
}

// scanInto streams one store's records into an engine, labelling the
// frames with the agent name (empty solo).
func scanInto(eng *Engine, st *store.Store, agent string, opt Options) error {
	q := store.QueryOptions{
		PID:         -1,
		FromSeconds: opt.FromSeconds,
		ToSeconds:   opt.ToSeconds,
		StepSeconds: opt.StepSeconds,
	}
	frame := Frame{Agent: agent}
	res, err := st.Scan(q, func(rec *store.Record, cols []string) error {
		eng.SetColumns(cols)
		frame.TimeSeconds = rec.TimeSeconds
		frame.DTNanos = rec.ResSeconds * 1e9
		frame.Rows = frame.Rows[:0]
		for i := range rec.Rows {
			r := &rec.Rows[i]
			frame.Rows = append(frame.Rows, FrameRow{
				PID: r.PID, TID: r.TID,
				User: r.User, Command: r.Command,
				CPUPct: r.CPUPct, Values: r.Values,
				Instr:  float64(r.Instr),
				Cycles: float64(r.Cycles),
				Misses: float64(r.Misses),
			})
		}
		eng.Push(&frame)
		return nil
	})
	if err != nil {
		return err
	}
	eng.SetResolution(res.Seconds())
	return nil
}

// QueryHistory evaluates a compiled expression over a live recorder's
// ring buffers — the same data the interactive screens render, queried
// as series. Points arrive already holding per-interval counter
// deltas; the interval is derived from successive point times.
func QueryHistory(rec *history.Recorder, c *Compiled, opt Options) (*Result, error) {
	eng := NewEngine(c, opt)
	eng.SetColumns(rec.Columns())
	type obs struct {
		t    float64
		dtNS float64
		row  FrameRow
	}
	var all []obs
	for _, s := range rec.AllSeries() {
		prev := -1.0
		for i := range s.Points {
			p := &s.Points[i]
			dtNS := -1.0 // first point: interval unknown
			if prev >= 0 && p.TimeSeconds > prev {
				dtNS = (p.TimeSeconds - prev) * 1e9
			}
			prev = p.TimeSeconds
			all = append(all, obs{t: p.TimeSeconds, dtNS: dtNS, row: FrameRow{
				PID: s.PID, TID: s.TID,
				User: s.User, Command: s.Command,
				CPUPct: p.CPUPct, Values: p.Values,
				Instr:  float64(p.Instr),
				Cycles: float64(p.Cycles),
				Misses: float64(p.Misses),
			}})
		}
	}
	// The engine derives unknown intervals from successive frame
	// times, so observations must arrive time-ordered; each carries
	// its own interval here, computed per ring above.
	sort.SliceStable(all, func(i, j int) bool { return all[i].t < all[j].t })
	for i := range all {
		eng.Push(&Frame{
			TimeSeconds: all[i].t,
			DTNanos:     all[i].dtNS,
			Rows:        []FrameRow{all[i].row},
		})
	}
	return eng.Finish()
}

// QueryFleet evaluates a compiled expression across several agents'
// stores, merging their scans in one engine: per-task series stay
// labelled by agent, grouped roll-ups (`by user`, `by agent`) and the
// total sum across the fleet on aligned step buckets, with ratios
// recomputed from the summed counters — the same Σinstr/Σcycles
// semantics as the fleet's /api/v1/snapshot. Merging across agents
// aligns bucket ends on each store's own monotonic clock, so a step is
// required when more than one agent is queried.
func QueryFleet(stores map[string]*store.Store, c *Compiled, opt Options) (*Result, error) {
	if len(stores) == 0 {
		return nil, fmt.Errorf("query: no agent stores to query")
	}
	if len(stores) > 1 && opt.StepSeconds <= 0 {
		return nil, fmt.Errorf("query: merging %d agents needs an explicit step (buckets align per-agent clocks)", len(stores))
	}
	labels := make([]string, 0, len(stores))
	for label := range stores {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	eng := NewEngine(c, opt)
	for _, label := range labels {
		if err := scanInto(eng, stores[label], label, opt); err != nil {
			return nil, err
		}
	}
	return eng.Finish()
}
