package query

// Equality tests for vectorized store queries: the parallel, projected
// scan path (the default) must produce the same result as the serial
// full-decode baseline, pointwise to 1e-12 relative, over stores mixing
// v1 JSON and v2 columnar segments — solo and fleet.

import (
	"math"
	"testing"
	"time"

	"tiptop/internal/store"
)

// seedMixedStore seeds a store, compacts it to v2 columnar segments,
// then appends more refreshes so fresh v1 segments follow the csegs.
func seedMixedStore(t *testing.T, tasks, refreshes int) *store.Store {
	t.Helper()
	st := seedStore(t, tasks, refreshes)
	if _, err := st.Compact(store.CompactOptions{}); err != nil {
		t.Fatal(err)
	}
	for i := refreshes + 1; i <= refreshes+refreshes/2; i++ {
		if err := st.AppendSample(sampleAt(time.Duration(i)*2*time.Second, tasks)); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func closeEnough(a, b float64) bool {
	if a == b || (math.IsNaN(a) && math.IsNaN(b)) {
		return true
	}
	tol := 1e-12 * math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol
}

func assertResultsClose(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Expr != want.Expr || got.GroupBy != want.GroupBy ||
		got.ResolutionSeconds != want.ResolutionSeconds ||
		got.StepSeconds != want.StepSeconds {
		t.Fatalf("%s: headers differ: got %+v, want %+v", label, got, want)
	}
	if len(got.Series) != len(want.Series) {
		t.Fatalf("%s: %d series, want %d", label, len(got.Series), len(want.Series))
	}
	for i := range want.Series {
		gs, ws := &got.Series[i], &want.Series[i]
		if gs.Key != ws.Key || gs.User != ws.User || gs.Agent != ws.Agent {
			t.Fatalf("%s: series %d is %q(%s/%s), want %q(%s/%s)",
				label, i, gs.Key, gs.User, gs.Agent, ws.Key, ws.User, ws.Agent)
		}
		if !closeEnough(gs.Mean, ws.Mean) {
			t.Fatalf("%s: series %q mean %v, want %v", label, gs.Key, gs.Mean, ws.Mean)
		}
		if len(gs.Points) != len(ws.Points) {
			t.Fatalf("%s: series %q has %d points, want %d",
				label, gs.Key, len(gs.Points), len(ws.Points))
		}
		for j := range ws.Points {
			gp, wp := gs.Points[j], ws.Points[j]
			if gp.TimeSeconds != wp.TimeSeconds || !closeEnough(gp.Value, wp.Value) {
				t.Fatalf("%s: series %q point %d = (%v, %v), want (%v, %v)",
					label, gs.Key, j, gp.TimeSeconds, gp.Value, wp.TimeSeconds, wp.Value)
			}
		}
	}
}

func TestQueryStoreParallelProjectedEqual(t *testing.T) {
	st := seedMixedStore(t, 4, 80) // refreshes at 2s cadence, mixed v1/v2
	exprs := []string{
		"delta(INSTRUCTIONS) / delta(CYCLES)",
		"topk(2, rate(CYCLES)) by user",
		"avg_over_time(CPU_PCT)",
		"pidcol * 2",
		"max_over_time(ratio(CACHE_MISSES, INSTRUCTIONS))",
	}
	opts := []Options{
		{StepSeconds: 60},
		{StepSeconds: 10, FromSeconds: 20, ToSeconds: 150},
		{},
	}
	for _, src := range exprs {
		c := mustCompile(t, src, "pidcol")
		for _, opt := range opts {
			serial := opt
			serial.Workers = 1
			serial.FullDecode = true
			want, err := QueryStore(st, c, serial)
			if err != nil {
				t.Fatalf("%s %+v serial: %v", src, opt, err)
			}
			got, err := QueryStore(st, c, opt)
			if err != nil {
				t.Fatalf("%s %+v parallel: %v", src, opt, err)
			}
			assertResultsClose(t, src, got, want)
			if len(want.Series) == 0 {
				t.Fatalf("%s %+v evaluated no series", src, opt)
			}
		}
	}
}

func TestQueryFleetParallelEqual(t *testing.T) {
	stores := map[string]*store.Store{
		"a:1": seedMixedStore(t, 3, 60),
		"b:2": seedMixedStore(t, 5, 60),
		"c:3": seedStore(t, 2, 40), // pure v1, never compacted
	}
	for _, src := range []string{
		"delta(INSTRUCTIONS) / delta(CYCLES)",
		"rate(CYCLES) by agent",
		"topk(3, pidcol) by user",
	} {
		c := mustCompile(t, src, "pidcol")
		opt := Options{StepSeconds: 30}
		serial := opt
		serial.Workers = 1
		serial.FullDecode = true
		want, err := QueryFleet(stores, c, serial)
		if err != nil {
			t.Fatalf("%s serial: %v", src, err)
		}
		got, err := QueryFleet(stores, c, opt)
		if err != nil {
			t.Fatalf("%s parallel: %v", src, err)
		}
		assertResultsClose(t, src, got, want)
	}
}
