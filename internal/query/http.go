package query

// The HTTP surface: /api/v1/query grows an expr= parameter. Without
// expr the endpoint keeps its PR-5 contract (raw range queries served
// by store.Handler); with expr the shared engine evaluates it over the
// durable store (or live history when no store is configured), solo or
// fleet-wide. Parse and validation failures are always HTTP 400 with
// the offending position — never 500 — and unknown identifiers name
// the nearest known ones.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"

	"tiptop/internal/history"
	"tiptop/internal/metrics"
	"tiptop/internal/remote"
	"tiptop/internal/store"
)

// Handler serves expression and raw range queries for a solo daemon:
//
//	GET ...?expr=E&from=S&to=S&step=S[&format=openmetrics]  expression query
//	GET ...?pid=N&from=S&to=S&step=S                        raw series (store.Handler)
//
// st may be nil (no -store): raw queries are rejected with a hint,
// expression queries fall back to the recorder's live rings. rec may
// be nil when only a store exists (tiptop -record archives).
func Handler(st *store.Store, rec *history.Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		expr := r.URL.Query().Get("expr")
		if expr == "" {
			if st == nil {
				remote.WriteErrorHint(w, http.StatusNotFound, "no durable store configured",
					"start tiptopd with -store DIR, or pass expr= to query live history")
				return
			}
			store.Handler(st).ServeHTTP(w, r)
			return
		}
		opt, format, live, err := parseExprQuery(r.URL.Query())
		if err != nil {
			writeParamError(w, err)
			return
		}
		format = negotiateFormat(format, r)
		if st == nil || live {
			if rec == nil {
				remote.WriteErrorHint(w, http.StatusNotFound, "no live recorder to query",
					"this daemon records neither live history nor a store; drop source=live or configure one")
				return
			}
			serveExpr(w, expr, format, KnownNames(rec.Columns()), func(c *Compiled) (*Result, error) {
				return QueryHistory(rec, c, opt)
			})
			return
		}
		serveExpr(w, expr, format, KnownNames(st.Columns()), func(c *Compiled) (*Result, error) {
			return QueryStore(st, c, opt)
		})
	})
}

// FleetHandler serves /api/v1/query for an aggregator: ?agent=label
// routes to one agent's store (raw or expression), ?agent=* (or an
// absent selector with expr=) merges every agent's store through the
// shared engine.
func FleetHandler(stores map[string]*store.Store, labels func() []string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if len(stores) == 0 {
			remote.WriteErrorHint(w, http.StatusNotFound, "no durable store configured",
				"start the aggregator with -store DIR")
			return
		}
		expr := r.URL.Query().Get("expr")
		agent := r.URL.Query().Get("agent")
		if expr == "" {
			// Raw range query: exactly one agent's store serves it.
			if agent == "" && len(stores) == 1 {
				for label := range stores {
					agent = label
				}
			}
			st, ok := stores[agent]
			if !ok {
				remote.WriteErrorHint(w, http.StatusBadRequest,
					fmt.Sprintf("unknown agent %q", agent),
					fmt.Sprintf("want agent=%s, or agent=* with expr=", strings.Join(labels(), "|")))
				return
			}
			store.Handler(st).ServeHTTP(w, r)
			return
		}
		opt, format, _, err := parseExprQuery(r.URL.Query())
		if err != nil {
			writeParamError(w, err)
			return
		}
		format = negotiateFormat(format, r)
		selected := stores
		if agent != "" && agent != "*" {
			st, ok := stores[agent]
			if !ok {
				remote.WriteErrorHint(w, http.StatusBadRequest,
					fmt.Sprintf("unknown agent %q", agent),
					fmt.Sprintf("want agent=%s or agent=*", strings.Join(labels(), "|")))
				return
			}
			selected = map[string]*store.Store{agent: st}
		}
		if len(selected) > 1 && opt.StepSeconds <= 0 {
			remote.WriteErrorHint(w, http.StatusBadRequest,
				fmt.Sprintf("merging %d agents needs an explicit step (buckets align per-agent clocks)", len(selected)),
				"pass step=, e.g. step=10")
			return
		}
		serveExpr(w, expr, format, fleetKnownNames(selected), func(c *Compiled) (*Result, error) {
			return QueryFleet(selected, c, opt)
		})
	})
}

// NamedExprs wraps a query handler so that expr=<name> references to a
// configuration's stored expressions (<expr name= expr=>) expand to
// their sources before compilation — the same names screens may use as
// column expressions.
func NamedExprs(named map[string]string, h http.Handler) http.Handler {
	if len(named) == 0 {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if src, ok := named[r.URL.Query().Get("expr")]; ok {
			q := r.URL.Query()
			q.Set("expr", src)
			r2 := r.Clone(r.Context())
			r2.URL.RawQuery = q.Encode()
			r = r2
		}
		h.ServeHTTP(w, r)
	})
}

// fleetKnownNames is the identifier vocabulary of a fleet query: the
// union of every selected agent's columns.
func fleetKnownNames(stores map[string]*store.Store) []string {
	seen := map[string]bool{}
	var cols []string
	for _, st := range stores {
		for _, c := range st.Columns() {
			if !seen[c] {
				seen[c] = true
				cols = append(cols, c)
			}
		}
	}
	sort.Strings(cols)
	return KnownNames(cols)
}

// serveExpr compiles and runs one expression query, mapping
// compilation failures to 400 (with position) and evaluation failures
// to 400 as well — an expression can only fail on what the request
// supplied, never on server state.
func serveExpr(w http.ResponseWriter, expr, format string, known []string, run func(*Compiled) (*Result, error)) {
	c, err := Compile(expr, known)
	if err != nil {
		writeExprError(w, http.StatusBadRequest, err)
		return
	}
	res, err := run(c)
	if err != nil {
		// A bad range or step surfaced by the store is still the
		// request's fault: 400 with the hint, like every other
		// validation failure — only real I/O maps to 500.
		var re *store.RangeError
		if errors.As(err, &re) {
			remote.WriteErrorHint(w, http.StatusBadRequest, re.Msg, re.Hint)
			return
		}
		status := http.StatusBadRequest
		if _, ok := err.(*metrics.SyntaxError); !ok {
			if _, ok := err.(*metrics.EvalError); !ok {
				status = http.StatusInternalServerError // I/O against the store
			}
		}
		writeExprError(w, status, err)
		return
	}
	switch format {
	case "openmetrics", "om":
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		_ = WriteOpenMetrics(w, res)
	default:
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(res)
	}
}

// parseExprQuery reads the range/step/format parameters of an
// expression query. The step accepts both bare seconds and duration
// suffixes ("30s", "1m", "1h"). source=live forces the recorder
// backend on a solo daemon that also has a store.
func parseExprQuery(v url.Values) (Options, string, bool, error) {
	var opt Options
	var err error
	if opt.FromSeconds, err = floatParam(v, "from"); err != nil {
		return opt, "", false, err
	}
	if opt.ToSeconds, err = floatParam(v, "to"); err != nil {
		return opt, "", false, err
	}
	if opt.StepSeconds, err = metrics.ParseStep(v.Get("step")); err != nil {
		return opt, "", false, &store.RangeError{
			Msg:  err.Error(),
			Hint: "steps are bare seconds or duration suffixes (30s, 1m, 1h), never negative",
		}
	}
	if opt.ToSeconds > 0 && opt.ToSeconds < opt.FromSeconds {
		return opt, "", false, &store.RangeError{
			Msg:  fmt.Sprintf("range ends (%gs) before it starts (%gs)", opt.ToSeconds, opt.FromSeconds),
			Hint: "want from <= to; omit to (or pass 0) to query to the end",
		}
	}
	format := v.Get("format")
	switch format {
	case "", "json", "openmetrics", "om":
	default:
		return opt, "", false, fmt.Errorf("unknown format %q (want json or openmetrics)", format)
	}
	live := false
	switch v.Get("source") {
	case "":
	case "live":
		live = true
	case "store":
	default:
		return opt, "", false, fmt.Errorf("unknown source %q (want live or store)", v.Get("source"))
	}
	return opt, format, live, nil
}

func floatParam(v url.Values, name string) (float64, error) {
	s := v.Get(name)
	if s == "" {
		return 0, nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", name, s)
	}
	return f, nil
}

// writeParamError writes one request-parameter failure as a 400,
// carrying a range error's hint structurally in the envelope.
func writeParamError(w http.ResponseWriter, err error) {
	var re *store.RangeError
	if errors.As(err, &re) {
		remote.WriteErrorHint(w, http.StatusBadRequest, re.Msg, re.Hint)
		return
	}
	remote.WriteError(w, http.StatusBadRequest, err.Error())
}

// negotiateFormat resolves the response format: the ?format= parameter
// (already validated) wins; with no parameter, an Accept header asking
// for application/openmetrics-text selects the exposition format.
func negotiateFormat(format string, r *http.Request) string {
	if format == "" && remote.WantsOpenMetrics(r) {
		return "openmetrics"
	}
	return format
}

// writeExprError maps an expression failure onto the API error
// envelope, carrying a syntax error's byte offset and did-you-mean
// hint structurally.
func writeExprError(w http.ResponseWriter, status int, err error) {
	e := remote.APIError{Message: err.Error()}
	if se, ok := err.(*metrics.SyntaxError); ok {
		pos := se.Pos
		e.Offset = &pos
		e.Hint = se.Hint
	}
	remote.WriteAPIError(w, status, e)
}

// WriteOpenMetrics renders an expression query result as OpenMetrics
// 1.0 text, one sample per evaluated point. The totality rule
// guarantees every value is finite, so the exposition never carries
// NaN. Ordering is deterministic (the engine sorts series; points are
// time-ordered).
func WriteOpenMetrics(w io.Writer, res *Result) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# TYPE tiptop_query gauge\n")
	fmt.Fprintf(bw, "# HELP tiptop_query %s\n", strings.ReplaceAll(res.Expr, "\n", " "))
	for i := range res.Series {
		s := &res.Series[i]
		labels := `expr=` + strconv.Quote(res.Expr) + `,key=` + strconv.Quote(s.Key)
		if s.Agent != "" {
			labels += `,agent=` + strconv.Quote(s.Agent)
		}
		if s.PID != 0 {
			labels += fmt.Sprintf(`,pid="%d"`, s.PID)
		}
		if s.User != "" {
			labels += `,user=` + strconv.Quote(s.User)
		}
		if s.Command != "" {
			labels += `,command=` + strconv.Quote(s.Command)
		}
		for j := range s.Points {
			p := &s.Points[j]
			fmt.Fprintf(bw, "tiptop_query{%s} %g %g\n", labels, p.Value, p.TimeSeconds)
		}
	}
	fmt.Fprintf(bw, "# EOF\n")
	return bw.Flush()
}

// Client consumes a daemon's /api/v1/query?expr= endpoint — the
// expression counterpart of store.Client's raw range queries, sharing
// its transport.
type Client struct {
	c *store.Client
}

// NewClient builds an expression query client for a daemon at addr
// ("host:port" or a full URL, as served by tiptopd -addr).
func NewClient(addr string) (*Client, error) {
	c, err := store.NewClient(addr)
	if err != nil {
		return nil, err
	}
	return &Client{c: c}, nil
}

// NewClientFrom wraps an existing raw query client.
func NewClientFrom(c *store.Client) *Client { return &Client{c: c} }

// QueryExpr runs one expression query. extra parameters (the
// aggregator's agent selector, source=live) can be appended by name.
func (c *Client) QueryExpr(expr string, opt Options, extra ...string) (*Result, error) {
	if len(extra)%2 != 0 {
		return nil, fmt.Errorf("query: extra parameters must come in pairs")
	}
	v := url.Values{}
	v.Set("expr", expr)
	if opt.FromSeconds != 0 {
		v.Set("from", strconv.FormatFloat(opt.FromSeconds, 'g', -1, 64))
	}
	if opt.ToSeconds != 0 {
		v.Set("to", strconv.FormatFloat(opt.ToSeconds, 'g', -1, 64))
	}
	if opt.StepSeconds != 0 {
		v.Set("step", strconv.FormatFloat(opt.StepSeconds, 'g', -1, 64))
	}
	for i := 0; i+1 < len(extra); i += 2 {
		v.Set(extra[i], extra[i+1])
	}
	body, err := c.c.Get("/api/v1/query", v)
	if err != nil {
		return nil, err
	}
	var res Result
	if err := json.Unmarshal(body, &res); err != nil {
		return nil, fmt.Errorf("query: bad response: %w", err)
	}
	return &res, nil
}
