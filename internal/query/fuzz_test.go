package query

import (
	"strings"
	"testing"
)

// FuzzCompileQuery fuzzes the query-layer compiler: whatever the input,
// Compile must return cleanly (no panic), any accepted expression must
// render to a canonical form that recompiles to the same form
// (fixpoint), and the compiled pieces must stay within the DoS caps.
func FuzzCompileQuery(f *testing.F) {
	for _, seed := range []string{
		"delta(INSTRUCTIONS) / delta(CYCLES)",
		"rate(INSTRUCTIONS) by user",
		"topk(3, rate(CYCLES)) by command",
		"avg_over_time(ipc)",
		"max_over_time(rate(CACHE_MISSES))",
		"topk(2, delta(INSTRUCTIONS) / delta(CYCLES))",
		"CYCLES by agent",
		"delta(CYCLE)",
		"topk(CYCLES, 1)",
		"1 + topk(2, CYCLES)",
		"(INSTRUCTIONS + CYCLES) % 7 ? ipc : 0",
		"sum_over_time(cpu) by user",
	} {
		f.Add(seed)
	}
	known := KnownNames([]string{"ipc", "cpu", "mem_mb"})
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Compile(src, known)
		if err != nil {
			return
		}
		if c.Expr.NodeCount() > MaxExprNodes {
			t.Fatalf("accepted expression with %d nodes: %q", c.Expr.NodeCount(), src)
		}
		// Render → recompile fixpoint on the canonical form. The
		// canonical form is the inner expression plus the topk/by
		// clauses Compile split off, so rebuild it the way a client
		// would display it.
		canon := c.Expr.String()
		c2, err := Compile(canon, known)
		if err != nil {
			t.Fatalf("canonical form %q (of %q) does not recompile: %v", canon, src, err)
		}
		if got := c2.Expr.String(); got != canon {
			t.Fatalf("render not a fixpoint: %q -> %q", canon, got)
		}
		if c2.GroupBy != c.GroupBy {
			t.Fatalf("grouping lost in round-trip of %q: %q vs %q", src, c.GroupBy, c2.GroupBy)
		}
		if strings.Contains(canon, "\n") {
			t.Fatalf("canonical form of %q contains a newline: %q", src, canon)
		}
	})
}
