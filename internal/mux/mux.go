// Package mux implements userland counter scheduling: an hpm.Backend
// decorator that lets a screen request more events than the PMU has
// counting registers. Real PMUs are small — the ARM Cortex-A7 has four
// counting registers, the RISC-V U74 two programmable ones next to its
// fixed cycle/instret CSRs — while tiptop's default screen alone wants
// six hardware events.
//
// When the requested events fit the inner backend's advertised capacity
// (hpm.Backend.Capacity), Attach passes straight through. When they do
// not, the decorator partitions the slot-costing events into rotation
// groups of at most Capacity slots, keeps zero-cost events (software
// events, fixed counters) attached continuously, and round-robins one
// group per refresh: each Read harvests the counts of the group that
// was live since the previous Read, credits every rotated event with
// the elapsed enabled time, then closes the live group and attaches the
// next one.
//
// The result is reported through the existing hpm.Count mechanism —
// Raw/Running grow only while an event's group is live, and the window
// time of idle turns is banked and credited to Enabled when the group is
// next harvested — so hpm.Count.Scaled() performs the same
// Raw*Enabled/Running extrapolation the kernel's own multiplexing
// relies on, and every layer above the backend (engine shards, history,
// store, query, wire) works unchanged. Crediting Enabled at harvest time
// rather than every refresh keeps each event's Raw, Enabled and Running
// advancing together, which makes the Scaled() totals monotonic across
// reads: crediting idle windows immediately would inflate the estimate
// between harvests and deflate it again at the next harvest, and the
// engine's clamped per-refresh deltas would rectify that oscillation
// into counts that never happened. The Running/Enabled ratio is the
// per-event coverage fraction the UI surfaces as %SMPL.
package mux

import (
	"fmt"
	"sync"

	"tiptop/internal/hpm"
)

// Backend decorates an inner backend with userland counter rotation.
type Backend struct {
	inner hpm.Backend
	// mu serializes every Attach and Close on the inner backend. The
	// engine serializes its own Attach/Close calls, but rotation makes
	// additional ones from TaskCounter.Read, which the engine runs
	// concurrently across shards — without this lock those would break
	// the inner backend's concurrency contract.
	mu sync.Mutex
}

var _ hpm.Backend = (*Backend)(nil)

// Wrap decorates inner with counter rotation. Attaches whose events fit
// the inner capacity are passed through untouched, so wrapping an
// unconstrained backend (Capacity 0) costs nothing.
func Wrap(inner hpm.Backend) *Backend { return &Backend{inner: inner} }

// Unwrap returns the decorated backend.
func (b *Backend) Unwrap() hpm.Backend { return b.inner }

// Name implements hpm.Backend; the decorator is transparent.
func (b *Backend) Name() string { return b.inner.Name() }

// Probe implements hpm.Backend.
func (b *Backend) Probe() error { return b.inner.Probe() }

// Supported implements hpm.Backend.
func (b *Backend) Supported(e hpm.EventDesc) bool { return b.inner.Supported(e) }

// Capacity implements hpm.Backend, reporting the inner backend's limit
// (the decorator itself accepts any number of events).
func (b *Backend) Capacity() int { return b.inner.Capacity() }

// SlotCost implements hpm.Backend.
func (b *Backend) SlotCost(e hpm.EventDesc) int { return b.inner.SlotCost(e) }

// Attach implements hpm.Backend. When the events fit the PMU it
// delegates; otherwise it builds a rotating counter.
func (b *Backend) Attach(task hpm.TaskID, events []hpm.EventDesc) (hpm.TaskCounter, error) {
	capacity := b.inner.Capacity()
	total := 0
	for _, e := range events {
		total += b.inner.SlotCost(e)
	}
	if capacity <= 0 || total <= capacity {
		// Fits the PMU: no rotation needed. The inner Attach (and the
		// returned counter's Close) still synchronize with rotation
		// attaches happening on Read goroutines of other counters.
		b.mu.Lock()
		inner, err := b.inner.Attach(task, events)
		b.mu.Unlock()
		if err != nil {
			return nil, err
		}
		return &passthrough{b: b, ctr: inner}, nil
	}

	// Partition: zero-cost events count continuously; slot-costing
	// events fill rotation groups of at most capacity slots, greedily
	// in request order (deterministic, and neighbouring columns rotate
	// together so ratios like IPC come from the same live window).
	c := &counter{
		b:      b,
		task:   task,
		events: events,
		acc:    make([]hpm.Count, len(events)),
	}
	var group []int
	used := 0
	for i, e := range events {
		cost := b.inner.SlotCost(e)
		if cost == 0 {
			c.free = append(c.free, i)
			continue
		}
		if used+cost > capacity && len(group) > 0 {
			c.groups = append(c.groups, group)
			group, used = nil, 0
		}
		group = append(group, i)
		used += cost
	}
	if len(group) > 0 {
		c.groups = append(c.groups, group)
	}
	c.pending = make([]uint64, len(c.groups))

	b.mu.Lock()
	defer b.mu.Unlock()
	if len(c.free) > 0 {
		fc, err := b.inner.Attach(task, c.descs(c.free))
		if err != nil {
			return nil, err
		}
		c.freeCtr = fc
	}
	if err := c.attachGroupLocked(0); err != nil {
		if c.freeCtr != nil {
			c.freeCtr.Close()
		}
		return nil, err
	}
	return c, nil
}

// passthrough wraps an unrotated inner counter so that its Close takes
// the backend mutex: the engine serializes its own Attach/Close calls,
// but rotations of *other* counters issue inner Attach/Close from Read
// goroutines, and the inner backend is promised those never overlap.
type passthrough struct {
	b   *Backend
	ctr hpm.TaskCounter
}

var _ hpm.TaskCounter = (*passthrough)(nil)
var _ hpm.CountReader = (*passthrough)(nil)

func (p *passthrough) Task() hpm.TaskID           { return p.ctr.Task() }
func (p *passthrough) Read() ([]hpm.Count, error) { return p.ctr.Read() }

func (p *passthrough) ReadInto(dst []hpm.Count) ([]hpm.Count, error) {
	if r, ok := p.ctr.(hpm.CountReader); ok {
		return r.ReadInto(dst)
	}
	return p.ctr.Read()
}

func (p *passthrough) Close() error {
	p.b.mu.Lock()
	defer p.b.mu.Unlock()
	return p.ctr.Close()
}

// liveGroup is one attached inner counter of the currently live
// rotation group with the event indices it covers. Normally the whole
// group is one inner counter; after a partial attach failure it decays
// to one counter per still-working event.
type liveGroup struct {
	ctr  hpm.TaskCounter
	idxs []int
}

// counter is the rotating TaskCounter. All mutable state is guarded by
// the backend mutex during rotation; the engine guarantees Read/Close
// of one counter are never concurrent with each other.
type counter struct {
	b      *Backend
	task   hpm.TaskID
	events []hpm.EventDesc
	free   []int   // indices of zero-cost events, attached continuously
	groups [][]int // rotation groups over slot-costing event indices

	freeCtr hpm.TaskCounter
	// freeEnabled is the free counter's last Enabled reading, used to
	// measure the refresh window when a rotation attach failed and no
	// live group can report it.
	freeEnabled uint64

	cur  int // index of the live group
	live []liveGroup
	acc  []hpm.Count // accumulated totals per event, in attach order
	// pending banks each group's schedulable-but-idle window time; it is
	// credited to the group's Enabled when the group is next harvested,
	// so Raw/Enabled/Running advance together and Scaled() stays
	// monotonic.
	pending []uint64
	closed  bool
}

var _ hpm.TaskCounter = (*counter)(nil)
var _ hpm.CountReader = (*counter)(nil)

// Task implements hpm.TaskCounter.
func (c *counter) Task() hpm.TaskID { return c.task }

func (c *counter) descs(idxs []int) []hpm.EventDesc {
	out := make([]hpm.EventDesc, len(idxs))
	for i, idx := range idxs {
		out[i] = c.events[idx]
	}
	return out
}

// attachGroupLocked attaches rotation group g, preferring one inner
// counter for the whole group and decaying to per-event counters when
// the group attach fails — a transiently failing event must not stall
// its groupmates (they keep counting; the failed event is simply
// skipped this turn and retried when its group next comes up). The
// error is only returned when not a single event of the group could be
// attached. Caller holds b.mu.
func (c *counter) attachGroupLocked(g int) error {
	idxs := c.groups[g]
	ctr, err := c.b.inner.Attach(c.task, c.descs(idxs))
	if err == nil {
		c.live = append(c.live, liveGroup{ctr: ctr, idxs: idxs})
		return nil
	}
	firstErr := err
	for _, idx := range idxs {
		ctr, err := c.b.inner.Attach(c.task, c.descs([]int{idx}))
		if err != nil {
			continue
		}
		c.live = append(c.live, liveGroup{ctr: ctr, idxs: []int{idx}})
	}
	if len(c.live) == 0 {
		return fmt.Errorf("mux: group %d of %v: %w", g, c.task, firstErr)
	}
	return nil
}

// Read implements hpm.TaskCounter.
func (c *counter) Read() ([]hpm.Count, error) {
	return c.ReadInto(nil)
}

// ReadInto implements hpm.CountReader: harvest the live group, credit
// the elapsed window to every rotated event's Enabled time, rotate to
// the next group, and report the accumulated totals. The totals are
// monotonic, so the engine's delta computation over Scaled() endpoints
// works exactly as with a real multiplexing kernel.
func (c *counter) ReadInto(dst []hpm.Count) ([]hpm.Count, error) {
	if c.closed {
		return nil, fmt.Errorf("mux: read of closed counter for %v", c.task)
	}
	c.b.mu.Lock()
	// Harvest the group that was live since the previous Read. The
	// window length is what the inner backend reports as enabled time
	// since the group's attach.
	var windowNS uint64
	for _, lg := range c.live {
		counts, err := lg.ctr.Read()
		if err == nil {
			for j, idx := range lg.idxs {
				c.acc[idx].Raw += counts[j].Raw
				c.acc[idx].Running += counts[j].Running
				if counts[j].Enabled > windowNS {
					windowNS = counts[j].Enabled
				}
			}
		}
		lg.ctr.Close()
	}
	c.live = c.live[:0]
	// Free (zero-cost) events stay attached: their cumulative reading
	// is authoritative and always exact. Their Enabled progression also
	// measures the window when no live group could (every rotation
	// attach failed last turn).
	if c.freeCtr != nil {
		counts, err := c.freeCtr.Read()
		if err == nil {
			for j, idx := range c.free {
				c.acc[idx] = counts[j]
			}
			if len(counts) > 0 {
				delta := counts[0].Enabled - c.freeEnabled
				c.freeEnabled = counts[0].Enabled
				if windowNS == 0 {
					windowNS = delta
				}
			}
		}
	}
	// Every rotated event was schedulable during the window, live or
	// not: that is what makes Scaled() extrapolate the idle groups. The
	// idle groups' window time is banked and credited when each group is
	// next harvested, so an event's Enabled/Running ratio only moves
	// when its Raw can move with it — see the package comment.
	for g := range c.groups {
		c.pending[g] += windowNS
	}
	for _, idx := range c.groups[c.cur] {
		c.acc[idx].Enabled += c.pending[c.cur]
	}
	c.pending[c.cur] = 0
	c.cur = (c.cur + 1) % len(c.groups)
	// A failure here (task died, transient EBUSY) leaves this turn
	// uncounted; the next Read simply tries the following group. The
	// engine notices dead tasks through its process snapshot.
	_ = c.attachGroupLocked(c.cur)
	c.b.mu.Unlock()

	if cap(dst) < len(c.acc) {
		dst = make([]hpm.Count, len(c.acc))
	}
	dst = dst[:len(c.acc)]
	copy(dst, c.acc)
	return dst, nil
}

// Close implements hpm.TaskCounter.
func (c *counter) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	c.b.mu.Lock()
	defer c.b.mu.Unlock()
	var err error
	for _, lg := range c.live {
		if cerr := lg.ctr.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	c.live = nil
	if c.freeCtr != nil {
		if cerr := c.freeCtr.Close(); cerr != nil && err == nil {
			err = cerr
		}
		c.freeCtr = nil
	}
	return err
}
