package mux

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tiptop/internal/hpm"
)

// fakeInner is a scriptable capacity-limited backend: every attached
// event counts exactly at a fixed per-second rate while attached, the
// way a real PMU counts a group that fits its registers.
type fakeInner struct {
	nowNS    atomic.Int64
	capacity int
	zeroCost map[string]bool // event names costing no slot

	mu          sync.Mutex
	rates       map[string]float64 // counts per second per event name
	failAttach  map[string]int     // remaining attach failures per event name
	attaches    int
	maxGroom    int // largest slot cost seen in one attach
	liveCtrs    int
	totalClosed int
}

func newFakeInner(capacity int) *fakeInner {
	return &fakeInner{
		capacity:   capacity,
		zeroCost:   map[string]bool{},
		rates:      map[string]float64{},
		failAttach: map[string]int{},
	}
}

func (f *fakeInner) advance(d time.Duration) { f.nowNS.Add(int64(d)) }

func (f *fakeInner) Name() string                   { return "fake" }
func (f *fakeInner) Probe() error                   { return nil }
func (f *fakeInner) Supported(e hpm.EventDesc) bool { return e.Valid() }
func (f *fakeInner) Capacity() int                  { return f.capacity }
func (f *fakeInner) SlotCost(e hpm.EventDesc) int {
	if f.zeroCost[e.Name] {
		return 0
	}
	return 1
}

func (f *fakeInner) Attach(task hpm.TaskID, events []hpm.EventDesc) (hpm.TaskCounter, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.attaches++
	cost := 0
	for _, e := range events {
		if !f.zeroCost[e.Name] {
			cost++
		}
		if n := f.failAttach[e.Name]; n > 0 {
			f.failAttach[e.Name] = n - 1
			return nil, fmt.Errorf("fake: attach %s: transient failure", e.Name)
		}
	}
	if cost > f.maxGroom {
		f.maxGroom = cost
	}
	if f.capacity > 0 && cost > f.capacity {
		return nil, fmt.Errorf("fake: %d slots requested, have %d", cost, f.capacity)
	}
	f.liveCtrs++
	return &fakeCtr{f: f, task: task, events: events, t0: f.nowNS.Load()}, nil
}

type fakeCtr struct {
	f      *fakeInner
	task   hpm.TaskID
	events []hpm.EventDesc
	t0     int64
	closed bool
}

func (c *fakeCtr) Task() hpm.TaskID { return c.task }

func (c *fakeCtr) Read() ([]hpm.Count, error) {
	if c.closed {
		return nil, errors.New("fake: closed")
	}
	elapsedNS := c.f.nowNS.Load() - c.t0
	sec := float64(elapsedNS) / 1e9
	c.f.mu.Lock()
	defer c.f.mu.Unlock()
	out := make([]hpm.Count, len(c.events))
	for i, e := range c.events {
		out[i] = hpm.Count{
			Raw:     uint64(c.f.rates[e.Name] * sec),
			Enabled: uint64(elapsedNS),
			Running: uint64(elapsedNS),
		}
	}
	return out, nil
}

func (c *fakeCtr) Close() error {
	if !c.closed {
		c.closed = true
		c.f.mu.Lock()
		c.f.liveCtrs--
		c.f.totalClosed++
		c.f.mu.Unlock()
	}
	return nil
}

func evts(names ...string) []hpm.EventDesc {
	out := make([]hpm.EventDesc, len(names))
	for i, n := range names {
		out[i] = hpm.EventDesc{Name: n, Type: hpm.PerfTypeRaw, Config: uint64(i + 1)}
	}
	return out
}

func task(pid int) hpm.TaskID { return hpm.TaskID{PID: pid, TID: pid} }

// refresh advances time and reads, like one engine tick.
func refresh(t *testing.T, f *fakeInner, c hpm.TaskCounter, d time.Duration) []hpm.Count {
	t.Helper()
	f.advance(d)
	counts, err := c.Read()
	if err != nil {
		t.Fatal(err)
	}
	return counts
}

func TestPassthroughWhenFits(t *testing.T) {
	f := newFakeInner(4)
	b := Wrap(f)
	events := evts("A", "B", "C", "D")
	for _, e := range events {
		f.rates[e.Name] = 1e6
	}
	c, err := b.Attach(task(1), events)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if f.attaches != 1 {
		t.Fatalf("attaches = %d, want 1 (no partitioning)", f.attaches)
	}
	counts := refresh(t, f, c, time.Second)
	for i, cnt := range counts {
		if !cnt.Exact() || cnt.Scaled() != 1e6 {
			t.Fatalf("event %d: %+v, want exact 1e6", i, cnt)
		}
	}
}

func TestUnlimitedCapacityPassesThrough(t *testing.T) {
	f := newFakeInner(0)
	b := Wrap(f)
	c, err := b.Attach(task(1), evts("A", "B", "C", "D", "E", "F", "G", "H"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if f.attaches != 1 {
		t.Fatalf("attaches = %d, want 1", f.attaches)
	}
}

func TestRotationCoversAllEventsAndExtrapolates(t *testing.T) {
	f := newFakeInner(4)
	b := Wrap(f)
	names := []string{"E0", "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11"}
	events := evts(names...)
	const rate = 3e6 // counts per second, identical for every event
	for _, n := range names {
		f.rates[n] = rate
	}
	c, err := b.Attach(task(1), events)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// 12 events over 4 slots = 3 rotation groups; run many refreshes so
	// every group gets several live windows.
	const ticks = 30
	var counts []hpm.Count
	for i := 0; i < ticks; i++ {
		counts = refresh(t, f, c, time.Second)
	}
	if f.maxGroom > 4 {
		t.Fatalf("inner backend saw a %d-slot attach, capacity 4", f.maxGroom)
	}
	totalNS := uint64(ticks * uint64(time.Second))
	truth := uint64(rate) * ticks
	// Enabled is credited when a group is harvested, so an event's total
	// lags wall time by at most one rotation period (here 3 windows),
	// and the cumulative estimate is stale by the same bound.
	const groups = 3
	lagNS := uint64(groups * uint64(time.Second))
	staleness := float64(groups) / float64(ticks)
	for i, cnt := range counts {
		if cnt.Exact() {
			t.Fatalf("event %d claims exact despite rotation", i)
		}
		if cnt.Enabled > totalNS || cnt.Enabled < totalNS-lagNS {
			t.Fatalf("event %d Enabled = %d, want within one rotation of %d", i, cnt.Enabled, totalNS)
		}
		// Each of 3 groups is live 1/3 of the time.
		cov := float64(cnt.Running) / float64(cnt.Enabled)
		if cov < 0.25 || cov > 0.42 {
			t.Fatalf("event %d coverage = %.3f, want ~1/3", i, cov)
		}
		// Extrapolation converges on the true rate, up to the staleness
		// of the event's last harvest.
		got := float64(cnt.Scaled())
		if rel := (got - float64(truth)) / float64(truth); rel < -(0.05+staleness) || rel > 0.05 {
			t.Fatalf("event %d Scaled = %.0f, truth %d (rel err %.3f)", i, got, truth, rel)
		}
	}
}

func TestZeroCostEventsStayExact(t *testing.T) {
	f := newFakeInner(2)
	f.zeroCost["CYCLES"] = true
	f.zeroCost["SW"] = true
	b := Wrap(f)
	events := evts("CYCLES", "A", "B", "C", "D", "SW")
	for _, e := range events {
		f.rates[e.Name] = 1e6
	}
	c, err := b.Attach(task(1), events)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var counts []hpm.Count
	for i := 0; i < 12; i++ {
		counts = refresh(t, f, c, time.Second)
	}
	// The zero-cost events (indices 0 and 5) never rotate: exact, full
	// coverage, true count.
	for _, idx := range []int{0, 5} {
		cnt := counts[idx]
		if !cnt.Exact() || cnt.Scaled() != 12e6 {
			t.Fatalf("zero-cost event %d: %+v, want exact 12e6", idx, cnt)
		}
	}
	// The four costed events rotate over 2 slots: inexact.
	for _, idx := range []int{1, 2, 3, 4} {
		if counts[idx].Exact() {
			t.Fatalf("costed event %d claims exact", idx)
		}
	}
}

// A transiently failing event must not stall its rotation group: the
// groupmates decay to individual attaches and keep counting, and the
// failed event recovers once the fault clears (satellite: rotation x
// attach-retry interaction).
func TestTransientFailureDoesNotStallGroup(t *testing.T) {
	f := newFakeInner(2)
	b := Wrap(f)
	events := evts("A", "B", "C", "D")
	for _, e := range events {
		f.rates[e.Name] = 1e6
	}
	c, err := b.Attach(task(1), events)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Event C fails its next few attach attempts (e.g. a transient
	// EBUSY from another tool grabbing the counter).
	f.mu.Lock()
	f.failAttach["C"] = 3
	f.mu.Unlock()
	var counts []hpm.Count
	for i := 0; i < 20; i++ {
		counts = refresh(t, f, c, time.Second)
	}
	// D (C's groupmate) kept counting through C's failures...
	d := counts[3]
	if d.Running == 0 || d.Scaled() == 0 {
		t.Fatalf("groupmate D stalled: %+v", d)
	}
	// ...and C itself recovered after the fault cleared.
	cc := counts[2]
	if cc.Running == 0 || cc.Scaled() == 0 {
		t.Fatalf("C never recovered: %+v", cc)
	}
	// C's coverage is below D's: it missed turns.
	if float64(cc.Running) >= float64(d.Running) {
		t.Fatalf("C running %d not below D running %d", cc.Running, d.Running)
	}
}

func TestInitialAttachFailurePropagates(t *testing.T) {
	f := newFakeInner(2)
	b := Wrap(f)
	events := evts("A", "B", "C", "D")
	f.failAttach["A"] = 10
	f.failAttach["B"] = 10
	if _, err := b.Attach(task(1), events); err == nil {
		t.Fatal("attach with a fully failing first group must error")
	}
	if f.liveCtrs != 0 {
		t.Fatalf("leaked %d inner counters after failed attach", f.liveCtrs)
	}
}

func TestCloseReleasesEverything(t *testing.T) {
	f := newFakeInner(2)
	f.zeroCost["Z"] = true
	b := Wrap(f)
	events := evts("Z", "A", "B", "C", "D")
	c, err := b.Attach(task(1), events)
	if err != nil {
		t.Fatal(err)
	}
	refresh(t, f, c, time.Second)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if f.liveCtrs != 0 {
		t.Fatalf("%d inner counters still live after Close", f.liveCtrs)
	}
	if _, err := c.Read(); err == nil {
		t.Fatal("read after close must error")
	}
	if err := c.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// The engine reads distinct counters from distinct shard goroutines
// while attaching/closing others; rotation must keep the inner
// backend's serialization promise. Run with -race.
func TestConcurrentReadsAcrossCounters(t *testing.T) {
	f := newFakeInner(2)
	b := Wrap(f)
	names := []string{"A", "B", "C", "D", "E", "F"}
	for _, n := range names {
		f.rates[n] = 1e6
	}
	const tasks = 8
	ctrs := make([]hpm.TaskCounter, tasks)
	for i := range ctrs {
		c, err := b.Attach(task(i+1), evts(names...))
		if err != nil {
			t.Fatal(err)
		}
		ctrs[i] = c
	}
	for tick := 0; tick < 10; tick++ {
		f.advance(100 * time.Millisecond)
		var wg sync.WaitGroup
		for i, c := range ctrs {
			wg.Add(1)
			go func(i int, c hpm.TaskCounter) {
				defer wg.Done()
				if _, err := c.Read(); err != nil {
					t.Errorf("counter %d: %v", i, err)
				}
			}(i, c)
		}
		// Concurrently attach and close an unrelated passthrough
		// counter, as the engine does when tasks come and go.
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := b.Attach(task(100+tick), evts("A", "B"))
			if err == nil {
				c.Close()
			}
		}()
		wg.Wait()
	}
	for _, c := range ctrs {
		c.Close()
	}
	if f.liveCtrs != 0 {
		t.Fatalf("%d inner counters leaked", f.liveCtrs)
	}
}
