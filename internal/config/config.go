// Package config reads and writes tiptop configuration files: an XML
// document describing global options and custom screens, mirroring the
// configurability of the original tool ("The collected events and
// displayed ratios are fully customizable"). A screen is a list of
// columns, each with a header, a printf format and a metric expression
// over counter names.
//
// Example:
//
//	<tiptop>
//	  <options delay="5" batch="true" sort="ipc" max_tasks="20" parallelism="4"/>
//	  <event name="FP_ASSIST_ALL" raw="0x1EF7" desc="micro-coded FP assists"/>
//	  <event name="L1D_MISSES" spec="L1D_READ_MISS"/>
//	  <screen name="fpstudy" desc="IPC next to FP assists">
//	    <column name="ipc"  header="IPC"   format="%5.2f" width="5"
//	            expr="ratio(INSTRUCTIONS, CYCLES)" desc="instructions per cycle"/>
//	    <column name="asst" header="%ASST" format="%6.2f" width="6"
//	            expr="per100(FP_ASSIST_ALL, INSTRUCTIONS)"/>
//	  </screen>
//	</tiptop>
//
// <event> elements define user events on top of the built-in registry
// (hpm.DefaultRegistry): raw="0x<hex>" names a model-specific code from
// the vendor's manual, spec= resolves any event specification the
// registry understands (a built-in name, RAW:0x<hex>, or a hw-cache
// event such as L1D_READ_MISS). Screen expressions reference the events
// by name; unknown identifiers are rejected at load time.
package config

import (
	"encoding/xml"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"tiptop/internal/core"
	"tiptop/internal/hpm"
	"tiptop/internal/metrics"
	"tiptop/internal/query"
	"tiptop/internal/store"
)

// File is the root XML document.
type File struct {
	XMLName xml.Name    `xml:"tiptop"`
	Options OptionsXML  `xml:"options"`
	Events  []EventXML  `xml:"event"`
	Exprs   []ExprXML   `xml:"expr"`
	Screens []ScreenXML `xml:"screen"`
}

// OptionsXML carries global tool options.
type OptionsXML struct {
	// DelaySeconds is the refresh interval in seconds (fractional
	// values allowed).
	DelaySeconds float64 `xml:"delay,attr,omitempty"`
	// Batch selects batch mode.
	Batch bool `xml:"batch,attr,omitempty"`
	// Sort names the sort key ("cpu", "pid", or a column name).
	Sort string `xml:"sort,attr,omitempty"`
	// MaxTasks truncates the display.
	MaxTasks int `xml:"max_tasks,attr,omitempty"`
	// OnlyUser restricts monitoring to one user.
	OnlyUser string `xml:"user,attr,omitempty"`
	// Parallelism is the number of sampling shards the engine
	// partitions the process table across (0 = one per CPU, 1 =
	// serial sampling).
	Parallelism int `xml:"parallelism,attr,omitempty"`
	// Format selects the batch-mode output format: "text" (the classic
	// tiptop -b blocks), "csv" or "jsonl". Empty means text.
	Format string `xml:"format,attr,omitempty"`
	// Record names a file every sample is additionally recorded to
	// (CSV, or JSONL when the name ends in .jsonl/.ndjson).
	Record string `xml:"record,attr,omitempty"`
	// History is the per-task ring capacity of the recording subsystem
	// (points retained per task; 0 = the default 600).
	History int `xml:"history,attr,omitempty"`
	// Listen is the tiptopd HTTP listen address (e.g. ":9412").
	Listen string `xml:"listen,attr,omitempty"`
	// Connect points tiptop at a remote tiptopd ("host:port" or a full
	// URL): the local UI renders what that agent samples.
	Connect string `xml:"connect,attr,omitempty"`
	// Join turns tiptopd into a fleet aggregator over the listed agents
	// (comma-separated host:port peers).
	Join string `xml:"join,attr,omitempty"`
	// Store names the directory of the durable on-disk history store
	// samples are teed into (tiptopd -store; a store -record target for
	// tiptop). Empty means no persistence.
	Store string `xml:"store,attr,omitempty"`
	// Retention is the store's age horizon as a Go duration ("72h"):
	// records older than this are retired. Empty keeps everything the
	// byte budget allows.
	Retention string `xml:"retention,attr,omitempty"`
	// Budget bounds the store's size on disk ("64MB", "1G", or plain
	// bytes). Empty selects the 64 MiB default.
	Budget string `xml:"budget,attr,omitempty"`
	// Fsync is the store's group-commit durability policy: "off", a
	// flush interval ("2s"), a record count ("1000-records"), or both
	// comma-combined ("2s,1000-records"). Empty never syncs.
	Fsync string `xml:"fsync,attr,omitempty"`
	// Compact is the period at which a daemon compacts its store into
	// the columnar record format v2, as a Go duration ("1h"). Empty
	// never compacts automatically.
	Compact string `xml:"compact,attr,omitempty"`
	// Wire selects the stream encoding a client negotiates when
	// dialing a daemon (tiptop -connect, tiptopd -join): "json" (the
	// SSE default) or "binary" (the length-prefixed binary frame,
	// falling back to SSE against older daemons).
	Wire string `xml:"wire,attr,omitempty"`
	// SystemWide monitors logical CPUs instead of tasks (perf's -a
	// mode): one row per CPU, counters opened system-wide.
	SystemWide bool `xml:"systemwide,attr,omitempty"`
	// Counters declares the PMU's simultaneous-counter capacity for
	// the real backend, enabling userland rotation beyond it (0 =
	// kernel multiplexing).
	Counters int `xml:"counters,attr,omitempty"`
}

// RetentionValue parses the store retention horizon (0 if unset).
// Validate has already rejected malformed values on loaded documents.
func (o *OptionsXML) RetentionValue() time.Duration {
	if o.Retention == "" {
		return 0
	}
	d, err := time.ParseDuration(o.Retention)
	if err != nil {
		return 0
	}
	return d
}

// BudgetValue parses the store byte budget (0 if unset). Validate has
// already rejected malformed values on loaded documents.
func (o *OptionsXML) BudgetValue() int64 {
	if o.Budget == "" {
		return 0
	}
	n, err := store.ParseBytes(o.Budget)
	if err != nil {
		return 0
	}
	return n
}

// FsyncValue parses the store durability policy (never-sync if
// unset). Validate has already rejected malformed values on loaded
// documents.
func (o *OptionsXML) FsyncValue() store.FsyncPolicy {
	p, err := store.ParseFsync(o.Fsync)
	if err != nil {
		return store.FsyncPolicy{}
	}
	return p
}

// CompactValue parses the store compaction period (0 if unset).
// Validate has already rejected malformed values on loaded documents.
func (o *OptionsXML) CompactValue() time.Duration {
	if o.Compact == "" {
		return 0
	}
	d, err := time.ParseDuration(o.Compact)
	if err != nil {
		return 0
	}
	return d
}

// Peers splits the Join list into trimmed agent addresses.
func (o *OptionsXML) Peers() []string {
	if o.Join == "" {
		return nil
	}
	parts := strings.Split(o.Join, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// Interval converts the delay to a duration (0 if unset).
func (o *OptionsXML) Interval() time.Duration {
	return time.Duration(o.DelaySeconds * float64(time.Second))
}

// EventXML is one user-defined event.
type EventXML struct {
	// Name is the identifier screen expressions reference.
	Name string `xml:"name,attr"`
	// Raw is a model-specific raw event code in hex ("0x1EF7");
	// shorthand for spec="RAW:0x1EF7".
	Raw string `xml:"raw,attr,omitempty"`
	// Spec is any event specification the registry resolves: a built-in
	// event name (aliasing), "RAW:0x<hex>", or a hw-cache event such as
	// L1D_READ_MISS. Exactly one of raw and spec must be given.
	Spec string `xml:"spec,attr,omitempty"`
	Unit string `xml:"unit,attr,omitempty"`
	Desc string `xml:"desc,attr,omitempty"`
}

// EventSpec returns the registry specification string of the event.
func (e *EventXML) EventSpec() string {
	if e.Raw != "" {
		return "RAW:" + e.Raw
	}
	return e.Spec
}

// ExprXML is one named stored expression:
//
//	<expr name="fleet_ipc" expr="delta(INSTRUCTIONS)/delta(CYCLES)"
//	      desc="cluster-wide instructions per cycle"/>
//
// The name is usable wherever an expression is: as a screen column's
// expr= attribute (it expands to the stored source), and as the expr=
// parameter of /api/v1/query on daemons started with this config.
// Stored expressions may use the full query grammar — topk(), `by`
// grouping, *_over_time() — which screen columns reject but range
// queries serve.
type ExprXML struct {
	Name string `xml:"name,attr"`
	Expr string `xml:"expr,attr"`
	Desc string `xml:"desc,attr,omitempty"`
}

// ScreenXML is one custom screen.
type ScreenXML struct {
	Name    string      `xml:"name,attr"`
	Desc    string      `xml:"desc,attr,omitempty"`
	Columns []ColumnXML `xml:"column"`
}

// ColumnXML is one column definition.
type ColumnXML struct {
	Name   string `xml:"name,attr"`
	Header string `xml:"header,attr"`
	Format string `xml:"format,attr,omitempty"`
	Width  int    `xml:"width,attr,omitempty"`
	Expr   string `xml:"expr,attr"`
	Desc   string `xml:"desc,attr,omitempty"`
}

// Parse reads and validates a configuration document, compiling every
// column expression.
func Parse(r io.Reader) (*File, error) {
	var f File
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// Validate checks structural constraints and expression syntax.
func (f *File) Validate() error {
	if f.Options.DelaySeconds < 0 {
		return fmt.Errorf("config: negative delay")
	}
	if f.Options.MaxTasks < 0 {
		return fmt.Errorf("config: negative max_tasks")
	}
	if f.Options.Parallelism < 0 {
		return fmt.Errorf("config: negative parallelism")
	}
	if f.Options.Counters < 0 {
		return fmt.Errorf("config: negative counters capacity")
	}
	switch f.Options.Format {
	case "", "text", "csv", "jsonl":
	default:
		return fmt.Errorf("config: unknown output format %q (want text, csv or jsonl)", f.Options.Format)
	}
	if f.Options.History < 0 {
		return fmt.Errorf("config: negative history capacity")
	}
	if f.Options.Join != "" && len(f.Options.Peers()) == 0 {
		return fmt.Errorf("config: join %q names no agents", f.Options.Join)
	}
	if f.Options.Retention != "" {
		d, err := time.ParseDuration(f.Options.Retention)
		if err != nil || d < 0 {
			return fmt.Errorf("config: bad store retention %q (want a Go duration such as 72h)", f.Options.Retention)
		}
	}
	if f.Options.Budget != "" {
		if _, err := store.ParseBytes(f.Options.Budget); err != nil {
			return fmt.Errorf("config: bad store budget %q (want e.g. 64MB, 1G or plain bytes)", f.Options.Budget)
		}
	}
	if f.Options.Fsync != "" {
		if _, err := store.ParseFsync(f.Options.Fsync); err != nil {
			return fmt.Errorf("config: bad store fsync %q (want off, an interval such as 2s, a record count such as 1000-records, or both comma-combined)", f.Options.Fsync)
		}
	}
	if f.Options.Compact != "" {
		d, err := time.ParseDuration(f.Options.Compact)
		if err != nil || d < 0 {
			return fmt.Errorf("config: bad store compaction period %q (want a Go duration such as 1h)", f.Options.Compact)
		}
	}
	switch f.Options.Wire {
	case "", "json", "binary":
	default:
		return fmt.Errorf("config: unknown wire format %q (want json or binary)", f.Options.Wire)
	}
	if f.Options.Connect != "" && f.Options.Join != "" {
		return fmt.Errorf("config: connect and join are mutually exclusive")
	}
	registry, err := f.BuildRegistry()
	if err != nil {
		return err
	}
	if err := f.validateExprs(registry); err != nil {
		return err
	}
	named := f.NamedExprs()
	seen := map[string]bool{}
	for _, s := range f.Screens {
		if s.Name == "" {
			return fmt.Errorf("config: screen without name")
		}
		if seen[s.Name] {
			return fmt.Errorf("config: duplicate screen %q", s.Name)
		}
		seen[s.Name] = true
		if len(s.Columns) == 0 {
			return fmt.Errorf("config: screen %q has no columns", s.Name)
		}
		cols := map[string]bool{}
		screen := &metrics.Screen{Name: s.Name}
		for _, c := range s.Columns {
			if c.Name == "" || c.Header == "" {
				return fmt.Errorf("config: screen %q: column needs name and header", s.Name)
			}
			if cols[c.Name] {
				return fmt.Errorf("config: screen %q: duplicate column %q", s.Name, c.Name)
			}
			cols[c.Name] = true
			expr, err := metrics.Compile(expandExpr(c.Expr, named))
			if err != nil {
				return fmt.Errorf("config: screen %q column %q: %w", s.Name, c.Name, err)
			}
			screen.Columns = append(screen.Columns, &metrics.Column{Name: c.Name, Expr: expr})
		}
		// Reject unknown identifiers at load time: a typo'd event name
		// must fail here, naming the column, not per-row at eval time.
		// core.ResolveScreenEvents is the same resolution NewSession
		// performs, so Load and the engine cannot drift.
		if _, err := core.ResolveScreenEvents(registry, screen); err != nil {
			return fmt.Errorf("config: %w", err)
		}
	}
	return nil
}

// validateExprs checks the document's named stored expressions: each
// needs a distinct identifier name that shadows nothing, and a source
// that compiles under the query grammar (topk, `by` grouping and the
// *_over_time folds allowed) against the vocabulary a daemon running
// this config will serve — registry events plus every screen column
// (built-in and custom).
func (f *File) validateExprs(registry *hpm.Registry) error {
	if len(f.Exprs) == 0 {
		return nil
	}
	known := query.KnownNames(nil)
	known = append(known, registry.Names()...)
	colSeen := map[string]bool{}
	addCols := func(s *metrics.Screen) {
		for _, c := range s.Columns {
			if !colSeen[c.Name] {
				colSeen[c.Name] = true
				known = append(known, c.Name)
			}
		}
	}
	for _, s := range metrics.BuiltinScreens() {
		addCols(s)
	}
	for _, sx := range f.Screens {
		for _, cx := range sx.Columns {
			if !colSeen[cx.Name] {
				colSeen[cx.Name] = true
				known = append(known, cx.Name)
			}
		}
	}
	names := map[string]bool{}
	for _, e := range f.Exprs {
		if e.Name == "" {
			return fmt.Errorf("config: expr without name")
		}
		if !hpm.ValidEventName(e.Name) && !validLowerName(e.Name) {
			return fmt.Errorf("config: expr name %q is not an identifier (want e.g. fleet_ipc)", e.Name)
		}
		if metrics.IsContextVar(e.Name) {
			return fmt.Errorf("config: expr %q shadows a context variable", e.Name)
		}
		if _, taken := registry.Lookup(e.Name); taken {
			return fmt.Errorf("config: expr %q shadows event %q", e.Name, e.Name)
		}
		if names[e.Name] {
			return fmt.Errorf("config: duplicate expr %q", e.Name)
		}
		names[e.Name] = true
		if _, err := query.Compile(e.Expr, known); err != nil {
			return fmt.Errorf("config: expr %q: %w", e.Name, err)
		}
	}
	return nil
}

// validLowerName accepts lower-case identifier names for stored
// expressions (event names are conventionally upper-case, column and
// expression names lower-case).
func validLowerName(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || i > 0 && c >= '0' && c <= '9' {
			continue
		}
		return false
	}
	return len(s) > 0
}

// NamedExprs returns the document's stored expressions as a name →
// source map — what daemons hand the query endpoint and screen
// building uses for expansion.
func (f *File) NamedExprs() map[string]string {
	if len(f.Exprs) == 0 {
		return nil
	}
	m := make(map[string]string, len(f.Exprs))
	for _, e := range f.Exprs {
		m[e.Name] = e.Expr
	}
	return m
}

// expandExpr substitutes a stored expression's source when src is
// exactly a stored expression's name (whole-attribute reference; no
// splicing inside larger expressions).
func expandExpr(src string, named map[string]string) string {
	if e, ok := named[strings.TrimSpace(src)]; ok {
		return e
	}
	return src
}

// BuildRegistry resolves the document's <event> definitions on top of
// the built-in defaults and returns the combined registry sessions
// resolve screens against.
func (f *File) BuildRegistry() (*hpm.Registry, error) {
	registry := hpm.DefaultRegistry()
	for _, e := range f.Events {
		if e.Name == "" {
			return nil, fmt.Errorf("config: event without name")
		}
		if !hpm.ValidEventName(e.Name) {
			return nil, fmt.Errorf("config: event name %q is not an identifier (want e.g. FP_ASSIST_ALL)", e.Name)
		}
		if (e.Raw == "") == (e.Spec == "") {
			return nil, fmt.Errorf("config: event %q needs exactly one of raw= and spec=", e.Name)
		}
		if err := RegisterUserEvent(registry, e.Name, e.EventSpec(), e.Unit, e.Desc); err != nil {
			return nil, fmt.Errorf("config: %w", err)
		}
	}
	return registry, nil
}

// RegisterUserEvent resolves spec against the registry and registers
// the result under name, inheriting the base descriptor's unit and
// description where the definition leaves them empty. It is the single
// builder behind user-defined events — the XML <event> path and the
// public facade's EventDef both go through it, so their validation
// (identifier syntax, context-variable shadowing, duplicate names)
// cannot diverge.
func RegisterUserEvent(registry *hpm.Registry, name, spec, unit, desc string) error {
	if metrics.IsContextVar(name) {
		return fmt.Errorf("event %q shadows a context variable", name)
	}
	base, err := registry.ParseEvent(spec)
	if err != nil {
		return fmt.Errorf("event %q: %w", name, err)
	}
	d := hpm.EventDesc{
		Name:   name,
		Kind:   base.Kind,
		Type:   base.Type,
		Config: base.Config,
		Unit:   unit,
		Desc:   desc,
	}
	if d.Unit == "" {
		d.Unit = base.Unit
	}
	if d.Desc == "" {
		d.Desc = base.Desc
	}
	return registry.Register(d)
}

// BuildScreens converts the parsed document into engine screens,
// expanding column references to named stored expressions.
func (f *File) BuildScreens() (map[string]*metrics.Screen, error) {
	named := f.NamedExprs()
	out := map[string]*metrics.Screen{}
	for _, sx := range f.Screens {
		s := &metrics.Screen{Name: sx.Name}
		for _, cx := range sx.Columns {
			expr, err := metrics.Compile(expandExpr(cx.Expr, named))
			if err != nil {
				return nil, fmt.Errorf("config: %w", err)
			}
			format := cx.Format
			if format == "" {
				format = "%8.2f"
			}
			width := cx.Width
			if width == 0 {
				width = len(cx.Header)
				if width < 6 {
					width = 6
				}
			}
			s.Columns = append(s.Columns, &metrics.Column{
				Name:   cx.Name,
				Header: cx.Header,
				Width:  width,
				Format: format,
				Expr:   expr,
				Desc:   cx.Desc,
			})
		}
		out[s.Name] = s
	}
	return out, nil
}

// Load reads and validates a configuration file from disk.
func Load(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f)
}

// Write serializes a configuration document.
func Write(w io.Writer, f *File) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(f); err != nil {
		return fmt.Errorf("config: %w", err)
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// Default returns the built-in configuration document: the paper's
// default screen plus the FP, branch, and memory screens, at a 2-second
// refresh.
func Default() *File {
	f := &File{
		Options: OptionsXML{DelaySeconds: 2},
	}
	for _, s := range []*metrics.Screen{
		metrics.DefaultScreen(), metrics.BranchScreen(),
		metrics.FPScreen(), metrics.MemoryScreen(),
		metrics.LatencyScreen(), metrics.RooflineScreen(),
		metrics.WideScreen(), metrics.SystemScreen(),
	} {
		sx := ScreenXML{Name: s.Name}
		for _, c := range s.Columns {
			sx.Columns = append(sx.Columns, ColumnXML{
				Name:   c.Name,
				Header: c.Header,
				Format: c.Format,
				Width:  c.Width,
				Expr:   c.Expr.Source(),
				Desc:   c.Desc,
			})
		}
		f.Screens = append(f.Screens, sx)
	}
	return f
}
