package config

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"tiptop/internal/hpm"
	"tiptop/internal/metrics"
)

const sampleXML = `
<tiptop>
  <options delay="5" batch="true" sort="ipc" max_tasks="20" user="alice" parallelism="4"/>
  <screen name="fpstudy" desc="IPC and assists">
    <column name="ipc" header="IPC" format="%5.2f" width="5"
            expr="ratio(INSTRUCTIONS, CYCLES)" desc="instructions per cycle"/>
    <column name="asst" header="%ASST"
            expr="per100(FP_ASSIST, INSTRUCTIONS)"/>
  </screen>
</tiptop>
`

func TestParseSample(t *testing.T) {
	f, err := Parse(strings.NewReader(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	if f.Options.Interval() != 5*time.Second {
		t.Fatalf("interval = %v", f.Options.Interval())
	}
	if !f.Options.Batch || f.Options.Sort != "ipc" || f.Options.MaxTasks != 20 {
		t.Fatalf("options = %+v", f.Options)
	}
	if f.Options.OnlyUser != "alice" {
		t.Fatalf("user = %q", f.Options.OnlyUser)
	}
	if f.Options.Parallelism != 4 {
		t.Fatalf("parallelism = %d", f.Options.Parallelism)
	}
	if len(f.Screens) != 1 || f.Screens[0].Name != "fpstudy" {
		t.Fatalf("screens = %+v", f.Screens)
	}
}

func TestBuildScreens(t *testing.T) {
	f, err := Parse(strings.NewReader(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	screens, err := f.BuildScreens()
	if err != nil {
		t.Fatal(err)
	}
	s := screens["fpstudy"]
	if s == nil {
		t.Fatal("screen missing")
	}
	if len(s.Columns) != 2 {
		t.Fatalf("columns = %d", len(s.Columns))
	}
	// Defaults: format and width filled in.
	asst := s.Column("asst")
	if asst.Format != "%8.2f" || asst.Width != 6 {
		t.Fatalf("defaults: %+v", asst)
	}
	// The expression works.
	v, err := asst.Expr.Eval(metrics.MapEnv{"FP_ASSIST": 25, "INSTRUCTIONS": 100})
	if err != nil || v != 25 {
		t.Fatalf("eval = %v, %v", v, err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"not xml at all <",
		`<tiptop><options delay="-1"/></tiptop>`,
		`<tiptop><options max_tasks="-2"/></tiptop>`,
		`<tiptop><options parallelism="-1"/></tiptop>`,
		`<tiptop><screen><column name="a" header="A" expr="1"/></screen></tiptop>`,
		`<tiptop><screen name="s"/></tiptop>`,
		`<tiptop><screen name="s"><column header="A" expr="1"/></screen></tiptop>`,
		`<tiptop><screen name="s"><column name="a" header="A" expr="1+"/></screen></tiptop>`,
		`<tiptop><screen name="s"><column name="a" header="A" expr="1"/><column name="a" header="B" expr="2"/></screen></tiptop>`,
		`<tiptop><screen name="s"><column name="a" header="A" expr="1"/></screen><screen name="s"><column name="b" header="B" expr="2"/></screen></tiptop>`,
	}
	for i, src := range bad {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("case %d should fail: %s", i, src)
		}
	}
}

func TestDefaultRoundTrip(t *testing.T) {
	f := Default()
	var sb strings.Builder
	if err := Write(&sb, f); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"<tiptop>", `name="default"`, `name="fp"`, "ratio(INSTRUCTIONS, CYCLES)"} {
		if !strings.Contains(out, want) {
			t.Errorf("serialized config missing %q", want)
		}
	}
	// Re-parse and rebuild: same screens as the built-ins.
	f2, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatalf("round-trip parse: %v\n%s", err, out)
	}
	screens, err := f2.BuildScreens()
	if err != nil {
		t.Fatal(err)
	}
	builtin := metrics.BuiltinScreens()
	if len(screens) != len(builtin) {
		t.Fatalf("screens = %d, want %d", len(screens), len(builtin))
	}
	for name, want := range builtin {
		got := screens[name]
		if got == nil {
			t.Fatalf("screen %q lost in round trip", name)
		}
		if len(got.Columns) != len(want.Columns) {
			t.Fatalf("screen %q: %d columns, want %d", name, len(got.Columns), len(want.Columns))
		}
		for i := range want.Columns {
			env := metrics.MapEnv{
				"CYCLES": 100, "INSTRUCTIONS": 150, "CACHE_MISSES": 5,
				"BRANCHES": 20, "BRANCH_MISSES": 1, "FP_ASSIST": 2,
				"FP_OPS": 30, "LOADS": 40, "L2_MISSES": 3,
				"MEM_STALL_CYCLES": 250, "CACHE_REFERENCES": 9,
				"STORES": 11, "SMPL_PCT": 75,
				"PAGE_FAULTS": 7, "CONTEXT_SWITCHES": 13, "CPU_MIGRATIONS": 2,
			}
			v1, err1 := want.Columns[i].Expr.Eval(env)
			v2, err2 := got.Columns[i].Expr.Eval(env)
			if err1 != nil || err2 != nil || v1 != v2 {
				t.Fatalf("screen %q column %q: %v/%v vs %v/%v",
					name, want.Columns[i].Name, v1, err1, v2, err2)
			}
		}
	}
}

func TestWriteInvalid(t *testing.T) {
	f := &File{Screens: []ScreenXML{{Name: ""}}}
	var sb strings.Builder
	if err := Write(&sb, f); err == nil {
		t.Fatal("invalid file must not serialize")
	}
}

// TestOptionsRoundTrip serializes a document carrying every option —
// including the recording/sink ones — and requires Write → Load to be
// the identity on it.
func TestOptionsRoundTrip(t *testing.T) {
	f := Default()
	f.Options = OptionsXML{
		DelaySeconds: 1.5,
		Batch:        true,
		Sort:         "ipc",
		MaxTasks:     20,
		OnlyUser:     "alice",
		Parallelism:  4,
		Format:       "jsonl",
		Record:       "samples.jsonl",
		History:      1200,
		Listen:       "127.0.0.1:9412",
		Join:         "host1:9412, host2:9412,host3:9412",
		Store:        "/var/lib/tiptop/store",
		Retention:    "72h",
		Budget:       "64MB",
		Fsync:        "2s,1000-records",
		Compact:      "1h",
		Wire:         "binary",
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "tiptop.xml")
	out, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := Write(out, f); err != nil {
		t.Fatal(err)
	}
	out.Close()

	f2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f.Options, f2.Options) {
		t.Fatalf("options did not round-trip:\nwrote  %+v\nloaded %+v", f.Options, f2.Options)
	}
	if f2.Options.Interval() != 1500*time.Millisecond {
		t.Fatalf("interval = %v", f2.Options.Interval())
	}
	if len(f2.Screens) != len(f.Screens) {
		t.Fatalf("screens = %d, want %d", len(f2.Screens), len(f.Screens))
	}
	for i := range f.Screens {
		if !reflect.DeepEqual(f.Screens[i], f2.Screens[i]) {
			t.Fatalf("screen %d did not round-trip:\nwrote  %+v\nloaded %+v",
				i, f.Screens[i], f2.Screens[i])
		}
	}

	if _, err := Load(filepath.Join(dir, "missing.xml")); err == nil {
		t.Fatal("missing file must fail")
	}
}

func TestNewOptionValidation(t *testing.T) {
	bad := []string{
		`<tiptop><options format="yaml"/></tiptop>`,
		`<tiptop><options history="-1"/></tiptop>`,
		`<tiptop><options join=" , "/></tiptop>`,
		`<tiptop><options connect="host1:9412" join="host2:9412"/></tiptop>`,
		`<tiptop><options fsync="sometimes"/></tiptop>`,
		`<tiptop><options fsync="-2s"/></tiptop>`,
		`<tiptop><options compact="hourly"/></tiptop>`,
		`<tiptop><options compact="-1h"/></tiptop>`,
		`<tiptop><options wire="carrier-pigeon"/></tiptop>`,
	}
	for i, src := range bad {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("case %d should fail: %s", i, src)
		}
	}
	good := `<tiptop><options format="csv" record="out.csv" history="300" listen=":9412"/></tiptop>`
	f, err := Parse(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if f.Options.Format != "csv" || f.Options.Record != "out.csv" ||
		f.Options.History != 300 || f.Options.Listen != ":9412" {
		t.Fatalf("options = %+v", f.Options)
	}
	f, err = Parse(strings.NewReader(`<tiptop><options fsync="2s,1000-records" compact="30m" wire="binary"/></tiptop>`))
	if err != nil {
		t.Fatal(err)
	}
	if p := f.Options.FsyncValue(); p.Interval != 2*time.Second || p.Records != 1000 {
		t.Fatalf("FsyncValue = %+v", p)
	}
	if d := f.Options.CompactValue(); d != 30*time.Minute {
		t.Fatalf("CompactValue = %v", d)
	}
	if f.Options.Wire != "binary" {
		t.Fatalf("wire = %q", f.Options.Wire)
	}
}

func TestPeers(t *testing.T) {
	f, err := Parse(strings.NewReader(`<tiptop><options join="host1:9412, host2:9412 ,host3:9412"/></tiptop>`))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"host1:9412", "host2:9412", "host3:9412"}
	if got := f.Options.Peers(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Peers = %v, want %v", got, want)
	}
	if (&OptionsXML{}).Peers() != nil {
		t.Fatal("empty join must yield nil peers")
	}
	f, err = Parse(strings.NewReader(`<tiptop><options connect="host:9412"/></tiptop>`))
	if err != nil {
		t.Fatal(err)
	}
	if f.Options.Connect != "host:9412" {
		t.Fatalf("connect = %q", f.Options.Connect)
	}
}

func TestEventDefinitions(t *testing.T) {
	doc := `<tiptop>
  <event name="FP_ASSIST_ALL" raw="0x1EF7" desc="micro-coded FP assists"/>
  <event name="L1D_MISSES" spec="L1D_READ_MISS" unit="lines"/>
  <event name="INSTR_ALIAS" spec="INSTRUCTIONS"/>
  <screen name="assist" desc="ipc vs assists">
    <column name="ipc" header="IPC" expr="ratio(INSTR_ALIAS, CYCLES)"/>
    <column name="asst" header="%ASST" expr="per100(FP_ASSIST_ALL, INSTRUCTIONS)"/>
    <column name="l1m" header="L1M" expr="per100(L1D_MISSES, INSTRUCTIONS)"/>
  </screen>
</tiptop>`
	f, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	reg, err := f.BuildRegistry()
	if err != nil {
		t.Fatal(err)
	}
	fpa, ok := reg.Lookup("FP_ASSIST_ALL")
	if !ok || fpa.Kind != hpm.KindRaw || fpa.Config != 0x1EF7 {
		t.Fatalf("FP_ASSIST_ALL = %+v, %v", fpa, ok)
	}
	if fpa.Desc != "micro-coded FP assists" {
		t.Fatalf("desc = %q", fpa.Desc)
	}
	l1, _ := reg.Lookup("L1D_MISSES")
	if l1.Kind != hpm.KindHWCache || l1.Unit != "lines" {
		t.Fatalf("L1D_MISSES = %+v", l1)
	}
	alias, _ := reg.Lookup("INSTR_ALIAS")
	if alias.Kind != hpm.KindGeneric || alias.Config != hpm.HWInstructions {
		t.Fatalf("INSTR_ALIAS = %+v", alias)
	}
	// Write -> Load round trip keeps the definitions.
	var sb strings.Builder
	if err := Write(&sb, f); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, sb.String())
	}
	if len(back.Events) != 3 || back.Events[0].Name != "FP_ASSIST_ALL" {
		t.Fatalf("events after round trip = %+v", back.Events)
	}
}

// TestLoadRejectsUnknownIdentifiers is the satellite regression test:
// a screen referencing an undefined identifier must fail at load time
// with an error naming the screen, the column and the identifier —
// previously the column silently evaluated to zero per row.
func TestLoadRejectsUnknownIdentifiers(t *testing.T) {
	doc := `<tiptop>
  <screen name="typo" desc="misspelled event">
    <column name="ipc" header="IPC" expr="ratio(INSTRUCTIONS, CYCELS)"/>
  </screen>
</tiptop>`
	_, err := Parse(strings.NewReader(doc))
	if err == nil {
		t.Fatal("unknown identifier accepted")
	}
	for _, want := range []string{`"typo"`, `"ipc"`, `"CYCELS"`} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not name %s", err, want)
		}
	}
	// Context variables and hw-cache names resolve without definitions.
	ok := `<tiptop>
  <screen name="fine" desc="context vars and hw-cache events">
    <column name="mips" header="MIPS" expr="INSTRUCTIONS / DELTA_NS * 1000"/>
    <column name="l1m" header="L1M" expr="per100(L1D_READ_MISS, INSTRUCTIONS)"/>
  </screen>
</tiptop>`
	if _, err := Parse(strings.NewReader(ok)); err != nil {
		t.Fatal(err)
	}
}

func TestEventValidation(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"no name", `<tiptop><event raw="0x1"/></tiptop>`, "event without name"},
		{"bad name", `<tiptop><event name="BAD-NAME" raw="0x1"/></tiptop>`, "not an identifier"},
		{"context var", `<tiptop><event name="DELTA_NS" raw="0x1"/></tiptop>`, "shadows a context variable"},
		{"raw and spec", `<tiptop><event name="X" raw="0x1" spec="CYCLES"/></tiptop>`, "exactly one of"},
		{"neither", `<tiptop><event name="X"/></tiptop>`, "exactly one of"},
		{"bad raw", `<tiptop><event name="X" raw="0xZZ"/></tiptop>`, "unknown event"},
		{"bad spec", `<tiptop><event name="X" spec="NOPE_EVENT"/></tiptop>`, "unknown event"},
		{"duplicate", `<tiptop><event name="X" raw="0x1"/><event name="X" raw="0x2"/></tiptop>`, "already registered"},
		{"shadow builtin", `<tiptop><event name="CYCLES" raw="0x1"/></tiptop>`, "already registered"},
	}
	for _, tc := range cases {
		_, err := Parse(strings.NewReader(tc.doc))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.want)
		}
	}
}

// TestExamplesConfigLoads keeps the documented example configuration
// honest: examples/custom-events.xml must parse, validate and define
// the screen the README walks through.
func TestExamplesConfigLoads(t *testing.T) {
	f, err := Load(filepath.Join("..", "..", "examples", "custom-events.xml"))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Events) == 0 {
		t.Fatal("example defines no events")
	}
	screens, err := f.BuildScreens()
	if err != nil {
		t.Fatal(err)
	}
	if screens["fpcustom"] == nil {
		t.Fatalf("example screens = %v", screens)
	}
}

// TestStoreOptions covers the durable-store attributes: parsed values
// flow through, malformed ones are rejected at load time.
func TestStoreOptions(t *testing.T) {
	f, err := Parse(strings.NewReader(
		`<tiptop><options store="data" retention="48h" budget="256KB"/></tiptop>`))
	if err != nil {
		t.Fatal(err)
	}
	if f.Options.Store != "data" {
		t.Fatalf("store = %q", f.Options.Store)
	}
	if got := f.Options.RetentionValue(); got != 48*time.Hour {
		t.Fatalf("retention = %v", got)
	}
	if got := f.Options.BudgetValue(); got != 256<<10 {
		t.Fatalf("budget = %d", got)
	}
	for _, bad := range []string{
		`<tiptop><options retention="next tuesday"/></tiptop>`,
		`<tiptop><options retention="-5s"/></tiptop>`,
		`<tiptop><options budget="12XB"/></tiptop>`,
		`<tiptop><options budget="-3MB"/></tiptop>`,
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted %s", bad)
		}
	}
}

// TestNamedExprs covers <expr> elements: validation of names and
// sources, expansion into screen columns, and the round trip.
func TestNamedExprs(t *testing.T) {
	doc := `<tiptop>
  <expr name="fleet_ipc" expr="delta(INSTRUCTIONS)/delta(CYCLES)" desc="cluster IPC"/>
  <expr name="busy_users" expr="topk(3, rate(CYCLES)) by user"/>
  <screen name="s" desc="uses a stored expr">
    <column name="ipc" header="IPC" expr="fleet_ipc"/>
  </screen>
</tiptop>`
	f, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	named := f.NamedExprs()
	if named["fleet_ipc"] != "delta(INSTRUCTIONS)/delta(CYCLES)" {
		t.Fatalf("NamedExprs = %v", named)
	}
	screens, err := f.BuildScreens()
	if err != nil {
		t.Fatal(err)
	}
	if got := screens["s"].Columns[0].Expr.Source(); got != "delta(INSTRUCTIONS)/delta(CYCLES)" {
		t.Fatalf("column expr not expanded: %q", got)
	}

	// Round trip preserves the expressions.
	var buf strings.Builder
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	f2, err := Parse(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(f2.Exprs) != 2 || f2.Exprs[1].Expr != "topk(3, rate(CYCLES)) by user" {
		t.Fatalf("round trip lost exprs: %+v", f2.Exprs)
	}

	for _, bad := range []string{
		// A series-only stored expr cannot be a screen column.
		`<tiptop><expr name="t" expr="topk(2, CYCLES)"/><screen name="s"><column name="c" header="C" expr="t"/></screen></tiptop>`,
		// Unknown identifier inside a stored expr, caught at load time.
		`<tiptop><expr name="x" expr="delta(CYCLE)"/></tiptop>`,
		// Duplicates and shadowing.
		`<tiptop><expr name="x" expr="CYCLES"/><expr name="x" expr="CYCLES"/></tiptop>`,
		`<tiptop><expr name="CYCLES" expr="CYCLES"/></tiptop>`,
		`<tiptop><expr name="DELTA_NS" expr="CYCLES"/></tiptop>`,
		`<tiptop><expr name="" expr="CYCLES"/></tiptop>`,
		`<tiptop><expr name="no spaces" expr="CYCLES"/></tiptop>`,
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted %s", bad)
		}
	}

	// Stored expressions may reference built-in screen columns (the
	// query backends serve them) and user events.
	ok := `<tiptop>
  <event name="MY_ASSISTS" raw="0x1EF7"/>
  <expr name="assist_rate" expr="rate(MY_ASSISTS)"/>
  <expr name="avg_ipc" expr="avg_over_time(ipc)"/>
</tiptop>`
	if _, err := Parse(strings.NewReader(ok)); err != nil {
		t.Fatal(err)
	}
}
