package config

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"tiptop/internal/metrics"
)

const sampleXML = `
<tiptop>
  <options delay="5" batch="true" sort="ipc" max_tasks="20" user="alice" parallelism="4"/>
  <screen name="fpstudy" desc="IPC and assists">
    <column name="ipc" header="IPC" format="%5.2f" width="5"
            expr="ratio(INSTRUCTIONS, CYCLES)" desc="instructions per cycle"/>
    <column name="asst" header="%ASST"
            expr="per100(FP_ASSIST, INSTRUCTIONS)"/>
  </screen>
</tiptop>
`

func TestParseSample(t *testing.T) {
	f, err := Parse(strings.NewReader(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	if f.Options.Interval() != 5*time.Second {
		t.Fatalf("interval = %v", f.Options.Interval())
	}
	if !f.Options.Batch || f.Options.Sort != "ipc" || f.Options.MaxTasks != 20 {
		t.Fatalf("options = %+v", f.Options)
	}
	if f.Options.OnlyUser != "alice" {
		t.Fatalf("user = %q", f.Options.OnlyUser)
	}
	if f.Options.Parallelism != 4 {
		t.Fatalf("parallelism = %d", f.Options.Parallelism)
	}
	if len(f.Screens) != 1 || f.Screens[0].Name != "fpstudy" {
		t.Fatalf("screens = %+v", f.Screens)
	}
}

func TestBuildScreens(t *testing.T) {
	f, err := Parse(strings.NewReader(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	screens, err := f.BuildScreens()
	if err != nil {
		t.Fatal(err)
	}
	s := screens["fpstudy"]
	if s == nil {
		t.Fatal("screen missing")
	}
	if len(s.Columns) != 2 {
		t.Fatalf("columns = %d", len(s.Columns))
	}
	// Defaults: format and width filled in.
	asst := s.Column("asst")
	if asst.Format != "%8.2f" || asst.Width != 6 {
		t.Fatalf("defaults: %+v", asst)
	}
	// The expression works.
	v, err := asst.Expr.Eval(metrics.MapEnv{"FP_ASSIST": 25, "INSTRUCTIONS": 100})
	if err != nil || v != 25 {
		t.Fatalf("eval = %v, %v", v, err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"not xml at all <",
		`<tiptop><options delay="-1"/></tiptop>`,
		`<tiptop><options max_tasks="-2"/></tiptop>`,
		`<tiptop><options parallelism="-1"/></tiptop>`,
		`<tiptop><screen><column name="a" header="A" expr="1"/></screen></tiptop>`,
		`<tiptop><screen name="s"/></tiptop>`,
		`<tiptop><screen name="s"><column header="A" expr="1"/></screen></tiptop>`,
		`<tiptop><screen name="s"><column name="a" header="A" expr="1+"/></screen></tiptop>`,
		`<tiptop><screen name="s"><column name="a" header="A" expr="1"/><column name="a" header="B" expr="2"/></screen></tiptop>`,
		`<tiptop><screen name="s"><column name="a" header="A" expr="1"/></screen><screen name="s"><column name="b" header="B" expr="2"/></screen></tiptop>`,
	}
	for i, src := range bad {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("case %d should fail: %s", i, src)
		}
	}
}

func TestDefaultRoundTrip(t *testing.T) {
	f := Default()
	var sb strings.Builder
	if err := Write(&sb, f); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"<tiptop>", `name="default"`, `name="fp"`, "ratio(INSTRUCTIONS, CYCLES)"} {
		if !strings.Contains(out, want) {
			t.Errorf("serialized config missing %q", want)
		}
	}
	// Re-parse and rebuild: same screens as the built-ins.
	f2, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatalf("round-trip parse: %v\n%s", err, out)
	}
	screens, err := f2.BuildScreens()
	if err != nil {
		t.Fatal(err)
	}
	builtin := metrics.BuiltinScreens()
	if len(screens) != len(builtin) {
		t.Fatalf("screens = %d, want %d", len(screens), len(builtin))
	}
	for name, want := range builtin {
		got := screens[name]
		if got == nil {
			t.Fatalf("screen %q lost in round trip", name)
		}
		if len(got.Columns) != len(want.Columns) {
			t.Fatalf("screen %q: %d columns, want %d", name, len(got.Columns), len(want.Columns))
		}
		for i := range want.Columns {
			env := metrics.MapEnv{
				"CYCLES": 100, "INSTRUCTIONS": 150, "CACHE_MISSES": 5,
				"BRANCHES": 20, "BRANCH_MISSES": 1, "FP_ASSIST": 2,
				"FP_OPS": 30, "LOADS": 40, "L2_MISSES": 3,
				"MEM_STALL_CYCLES": 250, "CACHE_REFERENCES": 9,
				"STORES": 11,
			}
			v1, err1 := want.Columns[i].Expr.Eval(env)
			v2, err2 := got.Columns[i].Expr.Eval(env)
			if err1 != nil || err2 != nil || v1 != v2 {
				t.Fatalf("screen %q column %q: %v/%v vs %v/%v",
					name, want.Columns[i].Name, v1, err1, v2, err2)
			}
		}
	}
}

func TestWriteInvalid(t *testing.T) {
	f := &File{Screens: []ScreenXML{{Name: ""}}}
	var sb strings.Builder
	if err := Write(&sb, f); err == nil {
		t.Fatal("invalid file must not serialize")
	}
}

// TestOptionsRoundTrip serializes a document carrying every option —
// including the recording/sink ones — and requires Write → Load to be
// the identity on it.
func TestOptionsRoundTrip(t *testing.T) {
	f := Default()
	f.Options = OptionsXML{
		DelaySeconds: 1.5,
		Batch:        true,
		Sort:         "ipc",
		MaxTasks:     20,
		OnlyUser:     "alice",
		Parallelism:  4,
		Format:       "jsonl",
		Record:       "samples.jsonl",
		History:      1200,
		Listen:       "127.0.0.1:9412",
		Join:         "host1:9412, host2:9412,host3:9412",
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "tiptop.xml")
	out, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := Write(out, f); err != nil {
		t.Fatal(err)
	}
	out.Close()

	f2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f.Options, f2.Options) {
		t.Fatalf("options did not round-trip:\nwrote  %+v\nloaded %+v", f.Options, f2.Options)
	}
	if f2.Options.Interval() != 1500*time.Millisecond {
		t.Fatalf("interval = %v", f2.Options.Interval())
	}
	if len(f2.Screens) != len(f.Screens) {
		t.Fatalf("screens = %d, want %d", len(f2.Screens), len(f.Screens))
	}
	for i := range f.Screens {
		if !reflect.DeepEqual(f.Screens[i], f2.Screens[i]) {
			t.Fatalf("screen %d did not round-trip:\nwrote  %+v\nloaded %+v",
				i, f.Screens[i], f2.Screens[i])
		}
	}

	if _, err := Load(filepath.Join(dir, "missing.xml")); err == nil {
		t.Fatal("missing file must fail")
	}
}

func TestNewOptionValidation(t *testing.T) {
	bad := []string{
		`<tiptop><options format="yaml"/></tiptop>`,
		`<tiptop><options history="-1"/></tiptop>`,
		`<tiptop><options join=" , "/></tiptop>`,
		`<tiptop><options connect="host1:9412" join="host2:9412"/></tiptop>`,
	}
	for i, src := range bad {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("case %d should fail: %s", i, src)
		}
	}
	good := `<tiptop><options format="csv" record="out.csv" history="300" listen=":9412"/></tiptop>`
	f, err := Parse(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if f.Options.Format != "csv" || f.Options.Record != "out.csv" ||
		f.Options.History != 300 || f.Options.Listen != ":9412" {
		t.Fatalf("options = %+v", f.Options)
	}
}

func TestPeers(t *testing.T) {
	f, err := Parse(strings.NewReader(`<tiptop><options join="host1:9412, host2:9412 ,host3:9412"/></tiptop>`))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"host1:9412", "host2:9412", "host3:9412"}
	if got := f.Options.Peers(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Peers = %v, want %v", got, want)
	}
	if (&OptionsXML{}).Peers() != nil {
		t.Fatal("empty join must yield nil peers")
	}
	f, err = Parse(strings.NewReader(`<tiptop><options connect="host:9412"/></tiptop>`))
	if err != nil {
		t.Fatal(err)
	}
	if f.Options.Connect != "host:9412" {
		t.Fatalf("connect = %q", f.Options.Connect)
	}
}
