package export

import (
	"bufio"
	"io"
	"sort"
	"strconv"

	"tiptop/internal/history"
)

// WriteOpenMetrics renders a recorder snapshot as OpenMetrics /
// Prometheus text exposition: machine-wide, per-user, per-command and
// per-task gauges and counters. Output is deterministically ordered
// (sorted label values) so scrapes diff cleanly.
func WriteOpenMetrics(w io.Writer, snap *history.Snapshot) error {
	bw := bufio.NewWriter(w)
	e := &omEncoder{w: bw}

	e.family("tiptop_refreshes_total", "counter", "Refreshes recorded since the recorder started.")
	e.sample("tiptop_refreshes_total", nil, float64(snap.Refreshes))
	e.family("tiptop_time_seconds", "gauge", "Monitor clock time of the last refresh.")
	e.sample("tiptop_time_seconds", nil, snap.TimeSeconds)
	e.family("tiptop_tasks", "gauge", "Monitored tasks in the last refresh.")
	e.sample("tiptop_tasks", nil, float64(snap.Machine.Tasks))

	e.aggFamilies("machine", [][]label{nil}, []history.Aggregate{snap.Machine})

	users := sortedKeys(snap.Users)
	sets := make([][]label, len(users))
	aggs := make([]history.Aggregate, len(users))
	for i, u := range users {
		sets[i] = []label{{"user", u}}
		aggs[i] = snap.Users[u]
	}
	e.aggFamilies("user", sets, aggs)

	cmds := sortedKeys(snap.Commands)
	sets = make([][]label, len(cmds))
	aggs = make([]history.Aggregate, len(cmds))
	for i, c := range cmds {
		sets[i] = []label{{"command", c}}
		aggs[i] = snap.Commands[c]
	}
	e.aggFamilies("command", sets, aggs)

	// Per-task gauges: the Figure 1 screen as a scrape.
	e.family("tiptop_task_cpu_pct", "gauge", "OS CPU usage of the task over the last refresh.")
	for _, t := range snap.Tasks {
		e.sample("tiptop_task_cpu_pct", taskLabels(t), t.CPUPct)
	}
	e.family("tiptop_task_ipc", "gauge", "Instructions per cycle of the task over the last refresh.")
	for _, t := range snap.Tasks {
		e.sample("tiptop_task_ipc", taskLabels(t), t.IPC)
	}
	e.family("tiptop_task_coverage", "gauge", "Counted fraction of the last refresh interval (1 = exact, lower = multiplexed extrapolation).")
	for _, t := range snap.Tasks {
		coverage := t.Coverage
		if coverage <= 0 || coverage > 1 {
			coverage = 1 // elided on the snapshot means exact counting
		}
		e.sample("tiptop_task_coverage", taskLabels(t), coverage)
	}
	if len(snap.Columns) > 0 {
		e.family("tiptop_task_metric", "gauge", "Screen column value of the task (label \"column\" names it).")
		for _, t := range snap.Tasks {
			base := taskLabels(t)
			for i, col := range snap.Columns {
				if i >= len(t.Values) {
					break
				}
				e.sample("tiptop_task_metric", append(base[:len(base):len(base)], label{"column", col}), t.Values[i])
			}
		}
	}

	if _, err := io.WriteString(bw, "# EOF\n"); err != nil {
		return err
	}
	if e.err != nil {
		return e.err
	}
	return bw.Flush()
}

type label struct{ k, v string }

func taskLabels(t history.TaskSnap) []label {
	return []label{
		{"pid", strconv.Itoa(t.PID)},
		{"tid", strconv.Itoa(t.TID)},
		{"user", t.User},
		{"command", t.Command},
	}
}

type omEncoder struct {
	w   *bufio.Writer
	err error
}

func (e *omEncoder) family(name, typ, help string) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.WriteString("# HELP " + name + " " + help + "\n# TYPE " + name + " " + typ + "\n")
}

func (e *omEncoder) sample(name string, labels []label, v float64) {
	if e.err != nil {
		return
	}
	b := make([]byte, 0, 128)
	b = append(b, name...)
	if len(labels) > 0 {
		b = append(b, '{')
		for i, l := range labels {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, l.k...)
			b = append(b, '=', '"')
			b = appendEscapedLabel(b, l.v)
			b = append(b, '"')
		}
		b = append(b, '}')
	}
	b = append(b, ' ')
	b = strconv.AppendFloat(b, v, 'g', -1, 64)
	b = append(b, '\n')
	_, e.err = e.w.Write(b)
}

// aggField is one exported Aggregate field.
type aggField struct {
	suffix, typ, help string
	get               func(history.Aggregate) float64
}

// aggFields lists the metric families an Aggregate expands into.
var aggFields = []aggField{
	{"tasks", "gauge", "Tasks in the last refresh.", func(a history.Aggregate) float64 { return float64(a.Tasks) }},
	{"cpu_pct", "gauge", "Summed OS CPU usage over the last refresh.", func(a history.Aggregate) float64 { return a.CPUPct }},
	{"ipc", "gauge", "Aggregate instructions per cycle of the last refresh.", func(a history.Aggregate) float64 { return a.IPC }},
	{"window_ipc", "gauge", "Aggregate instructions per cycle over the rate window.", func(a history.Aggregate) float64 { return a.WindowIPC }},
	{"window_mips", "gauge", "Million instructions per second over the rate window.", func(a history.Aggregate) float64 { return a.WindowMIPS }},
	{"instructions_total", "counter", "Instructions counted since recording started.", func(a history.Aggregate) float64 { return float64(a.Instructions) }},
	{"cycles_total", "counter", "Cycles counted since recording started.", func(a history.Aggregate) float64 { return float64(a.Cycles) }},
	{"cache_misses_total", "counter", "Last-level cache misses since recording started.", func(a history.Aggregate) float64 { return float64(a.CacheMisses) }},
}

// aggFamilies writes one metric family per Aggregate field for a scope
// ("machine", "user", "command"), one sample per label set (labelSets
// and aggs are parallel; a nil label set emits an unlabelled sample).
func (e *omEncoder) aggFamilies(scope string, labelSets [][]label, aggs []history.Aggregate) {
	for _, f := range aggFields {
		name := "tiptop_" + scope + "_" + f.suffix
		e.family(name, f.typ, f.help)
		for i := range aggs {
			e.sample(name, labelSets[i], f.get(aggs[i]))
		}
	}
}

// appendEscapedLabel escapes a label value per the exposition format.
func appendEscapedLabel(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b = append(b, '\\', '\\')
		case '"':
			b = append(b, '\\', '"')
		case '\n':
			b = append(b, '\\', 'n')
		default:
			b = append(b, s[i])
		}
	}
	return b
}

func sortedKeys(m map[string]history.Aggregate) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
