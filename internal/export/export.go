// Package export streams tiptop samples to other tools: pluggable
// sinks behind one Sink interface (CSV and JSONL line-oriented writers
// for the batch pipelines the paper's -b mode feeds, "in the spirit of
// UNIX filters"), plus an OpenMetrics text encoder over the recording
// subsystem's aggregates for Prometheus-style scrapers.
//
// Sinks flush after every sample, so a consumer at the end of a pipe
// (head, tail -f, jq) sees each refresh as soon as it is produced and
// a truncated pipe surfaces as an ordinary write error on the next
// sample rather than silently buffered loss.
package export

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Row is the sink-facing view of one monitored task.
type Row struct {
	PID       int       `json:"pid"`
	TID       int       `json:"tid,omitempty"`
	User      string    `json:"user"`
	Command   string    `json:"command"`
	State     string    `json:"state,omitempty"`
	CPUPct    float64   `json:"cpu_pct"`
	IPC       float64   `json:"ipc"`
	Monitored bool      `json:"monitored"`
	Values    []float64 `json:"values"`
}

// Sample is one refresh as consumed by sinks.
type Sample struct {
	TimeSeconds float64  `json:"time_s"`
	Columns     []string `json:"columns"` // metric column names, ordered as Row.Values
	Rows        []Row    `json:"rows"`
}

// Sink consumes a stream of samples. Implementations flush per sample;
// Close flushes whatever remains and releases the sink (it does not
// close the underlying writer, which the caller owns).
type Sink interface {
	Write(*Sample) error
	Close() error
}

// Formats supported by NewSink.
const (
	FormatCSV   = "csv"
	FormatJSONL = "jsonl"
)

// NewSink builds a sink by format name ("csv" or "jsonl").
func NewSink(format string, w io.Writer) (Sink, error) {
	switch format {
	case FormatCSV:
		return NewCSV(w), nil
	case FormatJSONL:
		return NewJSONL(w), nil
	}
	return nil, fmt.Errorf("export: unknown sink format %q (want csv or jsonl)", format)
}

// CSVSink writes one line per task per sample:
//
//	time_s,pid,tid,user,command,state,cpu_pct,ipc,monitored,<col>...
//
// The header is emitted before the first sample, using that sample's
// column names.
type CSVSink struct {
	w      *bufio.Writer
	wrote  bool
	fields []byte // per-line scratch
}

// NewCSV creates a CSV sink over w.
func NewCSV(w io.Writer) *CSVSink {
	return &CSVSink{w: bufio.NewWriter(w)}
}

// Write implements Sink.
func (c *CSVSink) Write(s *Sample) error {
	if !c.wrote {
		c.wrote = true
		c.fields = append(c.fields[:0], "time_s,pid,tid,user,command,state,cpu_pct,ipc,monitored"...)
		for _, col := range s.Columns {
			c.fields = append(c.fields, ',')
			c.fields = appendCSVField(c.fields, col)
		}
		c.fields = append(c.fields, '\n')
		if _, err := c.w.Write(c.fields); err != nil {
			return err
		}
	}
	for i := range s.Rows {
		r := &s.Rows[i]
		b := c.fields[:0]
		b = strconv.AppendFloat(b, s.TimeSeconds, 'g', -1, 64)
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(r.PID), 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(r.TID), 10)
		b = append(b, ',')
		b = appendCSVField(b, r.User)
		b = append(b, ',')
		b = appendCSVField(b, r.Command)
		b = append(b, ',')
		b = appendCSVField(b, r.State)
		b = append(b, ',')
		b = strconv.AppendFloat(b, r.CPUPct, 'g', -1, 64)
		b = append(b, ',')
		b = strconv.AppendFloat(b, r.IPC, 'g', -1, 64)
		b = append(b, ',')
		b = strconv.AppendBool(b, r.Monitored)
		for _, v := range r.Values {
			b = append(b, ',')
			b = strconv.AppendFloat(b, v, 'g', -1, 64)
		}
		b = append(b, '\n')
		c.fields = b
		if _, err := c.w.Write(b); err != nil {
			return err
		}
	}
	return c.w.Flush()
}

// Close implements Sink.
func (c *CSVSink) Close() error { return c.w.Flush() }

// appendCSVField quotes a string field when it contains a separator,
// quote or newline (RFC 4180).
func appendCSVField(b []byte, s string) []byte {
	needQuote := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ',', '"', '\n', '\r':
			needQuote = true
		}
	}
	if !needQuote {
		return append(b, s...)
	}
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		if s[i] == '"' {
			b = append(b, '"', '"')
		} else {
			b = append(b, s[i])
		}
	}
	return append(b, '"')
}

// JSONLSink writes one JSON object per sample per line, suitable for
// jq/streaming consumers.
type JSONLSink struct {
	w   *bufio.Writer
	enc *json.Encoder
}

// NewJSONL creates a JSONL sink over w.
func NewJSONL(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	return &JSONLSink{w: bw, enc: json.NewEncoder(bw)}
}

// Write implements Sink. Encode terminates each sample with a newline.
func (j *JSONLSink) Write(s *Sample) error {
	if err := j.enc.Encode(s); err != nil {
		return err
	}
	return j.w.Flush()
}

// Close implements Sink.
func (j *JSONLSink) Close() error { return j.w.Flush() }
