package export

import (
	"errors"
	"strconv"
	"strings"
	"testing"
	"time"

	"tiptop/internal/core"
	"tiptop/internal/history"
	"tiptop/internal/hpm"
)

func sampleFixture() *Sample {
	return &Sample{
		TimeSeconds: 2,
		Columns:     []string{"ipc", "dmis"},
		Rows: []Row{
			{
				PID: 3, TID: 3, User: "alice", Command: "mcf, \"opt\"", State: "R",
				CPUPct: 93.5, IPC: 1.25, Monitored: true, Values: []float64{1.25, 0.5},
			},
			{
				PID: 9, TID: 9, User: "bob", Command: "idle", State: "S",
				Values: []float64{0, 0},
			},
		},
	}
}

func TestCSVSink(t *testing.T) {
	var sb strings.Builder
	sink := NewCSV(&sb)
	s := sampleFixture()
	if err := sink.Write(s); err != nil {
		t.Fatal(err)
	}
	if err := sink.Write(s); err != nil { // header only once
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 5 { // header + 2 rows × 2 samples
		t.Fatalf("lines = %d:\n%s", len(lines), sb.String())
	}
	if lines[0] != "time_s,pid,tid,user,command,state,cpu_pct,ipc,monitored,ipc,dmis" {
		t.Fatalf("header = %q", lines[0])
	}
	// The command contains a comma and quotes: must be RFC-4180 quoted.
	if !strings.Contains(lines[1], `"mcf, ""opt"""`) {
		t.Fatalf("quoting broken: %q", lines[1])
	}
	if !strings.HasPrefix(lines[1], "2,3,3,alice,") {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestJSONLSink(t *testing.T) {
	var sb strings.Builder
	sink := NewJSONL(&sb)
	s := sampleFixture()
	for i := 0; i < 2; i++ {
		if err := sink.Write(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("jsonl lines = %d", len(lines))
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, `{"time_s":2,`) || !strings.Contains(line, `"pid":3`) {
			t.Fatalf("line = %q", line)
		}
	}
}

func TestNewSinkByName(t *testing.T) {
	var sb strings.Builder
	for _, f := range []string{FormatCSV, FormatJSONL} {
		if _, err := NewSink(f, &sb); err != nil {
			t.Fatalf("%s: %v", f, err)
		}
	}
	if _, err := NewSink("xml", &sb); err == nil {
		t.Fatal("unknown format accepted")
	}
}

// failWriter fails after n bytes, standing in for a broken pipe.
type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("broken pipe")
	}
	if len(p) > f.n {
		n := f.n
		f.n = 0
		return n, errors.New("broken pipe")
	}
	f.n -= len(p)
	return len(p), nil
}

func TestSinksSurfacePipeErrors(t *testing.T) {
	for _, format := range []string{FormatCSV, FormatJSONL} {
		sink, _ := NewSink(format, &failWriter{n: 10})
		s := sampleFixture()
		var err error
		for i := 0; i < 4 && err == nil; i++ {
			err = sink.Write(s)
		}
		if err == nil {
			t.Fatalf("%s: write error on a dead pipe was swallowed", format)
		}
	}
}

func recorderFixture() *history.Recorder {
	rec := history.New(history.Options{Capacity: 8})
	rec.SetColumns([]string{"ipc", "dmis"})
	for i := 1; i <= 3; i++ {
		cs := &core.Sample{Time: time.Duration(i) * time.Second}
		cs.Rows = append(cs.Rows, core.Row{
			Info: core.TaskInfo{
				ID:   hpm.TaskID{PID: 3, TID: 3},
				User: "alice", Comm: `mcf "x"`, State: "R",
			},
			CPUPct: 90,
			Values: []float64{1.5, 0.2},
			Events: map[string]uint64{
				hpm.EventInstructions: 3000,
				hpm.EventCycles:       2000,
				hpm.EventCacheMisses:  10,
			},
			Valid: true,
		})
		rec.Observe(cs)
	}
	return rec
}

func TestWriteOpenMetrics(t *testing.T) {
	var sb strings.Builder
	if err := WriteOpenMetrics(&sb, recorderFixture().Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE tiptop_tasks gauge",
		"tiptop_tasks 1",
		"tiptop_refreshes_total 3",
		"tiptop_machine_ipc 1.5",
		"tiptop_machine_instructions_total 9000",
		`tiptop_user_ipc{user="alice"} 1.5`,
		`tiptop_command_cache_misses_total{command="mcf \"x\""} 30`,
		`tiptop_task_ipc{pid="3",tid="3",user="alice",command="mcf \"x\""} 1.5`,
		`tiptop_task_metric{pid="3",tid="3",user="alice",command="mcf \"x\"",column="dmis"} 0.2`,
		"# EOF",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Every non-comment line must parse as "<series> <float>".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			t.Fatalf("malformed line %q", line)
		}
		if _, err := strconv.ParseFloat(line[sp+1:], 64); err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
	}
	// Deterministic output: a second render is byte-identical.
	var sb2 strings.Builder
	if err := WriteOpenMetrics(&sb2, recorderFixture().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Fatal("exposition is not deterministic")
	}
}
