package export

import (
	"bufio"
	"io"
	"sort"
	"strconv"

	"tiptop/internal/history"
)

// FleetMachine is one agent's contribution to a fleet exposition.
type FleetMachine struct {
	// Label identifies the machine ("host:port" of the agent).
	Label string
	// Up reports whether the agent is currently streaming.
	Up bool
	// Snapshot is the agent's recorded state.
	Snapshot *history.Snapshot
}

// WriteFleetOpenMetrics renders a merged, machine-labelled OpenMetrics
// exposition over many agents: the same families the single-machine
// exposition uses, every sample carrying a "machine" label, plus fleet
// health gauges (tiptop_fleet_agents, tiptop_agent_up). Each family is
// declared once with the samples of all machines under it, ordered by
// machine label (then user/command/task), so scrapes diff cleanly.
func WriteFleetOpenMetrics(w io.Writer, machines []FleetMachine) error {
	ms := append([]FleetMachine(nil), machines...)
	sort.Slice(ms, func(i, j int) bool { return ms[i].Label < ms[j].Label })

	bw := bufio.NewWriter(w)
	e := &omEncoder{w: bw}

	e.family("tiptop_fleet_agents", "gauge", "Agents joined into this aggregator.")
	e.sample("tiptop_fleet_agents", nil, float64(len(ms)))
	e.family("tiptop_agent_up", "gauge", "Whether the agent is currently streaming (1) or down (0).")
	for _, m := range ms {
		up := 0.0
		if m.Up {
			up = 1
		}
		e.sample("tiptop_agent_up", []label{{"machine", m.Label}}, up)
	}
	e.family("tiptop_agent_refreshes_total", "counter", "Refreshes recorded from the agent.")
	for _, m := range ms {
		e.sample("tiptop_agent_refreshes_total", []label{{"machine", m.Label}}, float64(m.Snapshot.Refreshes))
	}
	e.family("tiptop_agent_time_seconds", "gauge", "Agent monitor clock time of its last refresh.")
	for _, m := range ms {
		e.sample("tiptop_agent_time_seconds", []label{{"machine", m.Label}}, m.Snapshot.TimeSeconds)
	}

	// Machine-wide aggregates, one sample per agent.
	sets := make([][]label, len(ms))
	aggs := make([]history.Aggregate, len(ms))
	for i, m := range ms {
		sets[i] = []label{{"machine", m.Label}}
		aggs[i] = m.Snapshot.Machine
	}
	e.aggFamilies("machine", sets, aggs)

	// Per-user and per-command aggregates across the fleet.
	sets, aggs = sets[:0], aggs[:0]
	for _, m := range ms {
		for _, u := range sortedKeys(m.Snapshot.Users) {
			sets = append(sets, []label{{"machine", m.Label}, {"user", u}})
			aggs = append(aggs, m.Snapshot.Users[u])
		}
	}
	e.aggFamilies("user", sets, aggs)

	sets, aggs = sets[:0], aggs[:0]
	for _, m := range ms {
		for _, c := range sortedKeys(m.Snapshot.Commands) {
			sets = append(sets, []label{{"machine", m.Label}, {"command", c}})
			aggs = append(aggs, m.Snapshot.Commands[c])
		}
	}
	e.aggFamilies("command", sets, aggs)

	// Per-task gauges with the machine label prepended.
	e.family("tiptop_task_cpu_pct", "gauge", "OS CPU usage of the task over the last refresh.")
	for _, m := range ms {
		for _, t := range m.Snapshot.Tasks {
			e.sample("tiptop_task_cpu_pct", fleetTaskLabels(m.Label, t), t.CPUPct)
		}
	}
	e.family("tiptop_task_ipc", "gauge", "Instructions per cycle of the task over the last refresh.")
	for _, m := range ms {
		for _, t := range m.Snapshot.Tasks {
			e.sample("tiptop_task_ipc", fleetTaskLabels(m.Label, t), t.IPC)
		}
	}
	e.family("tiptop_task_metric", "gauge", "Screen column value of the task (label \"column\" names it).")
	for _, m := range ms {
		cols := m.Snapshot.Columns
		if len(cols) == 0 {
			continue
		}
		for _, t := range m.Snapshot.Tasks {
			base := fleetTaskLabels(m.Label, t)
			for i, col := range cols {
				if i >= len(t.Values) {
					break
				}
				e.sample("tiptop_task_metric", append(base[:len(base):len(base)], label{"column", col}), t.Values[i])
			}
		}
	}

	if _, err := io.WriteString(bw, "# EOF\n"); err != nil {
		return err
	}
	if e.err != nil {
		return e.err
	}
	return bw.Flush()
}

func fleetTaskLabels(machine string, t history.TaskSnap) []label {
	return []label{
		{"machine", machine},
		{"pid", strconv.Itoa(t.PID)},
		{"tid", strconv.Itoa(t.TID)},
		{"user", t.User},
		{"command", t.Command},
	}
}
