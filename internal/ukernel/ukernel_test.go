package ukernel

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"tiptop/internal/sim/cpu"
	"tiptop/internal/sim/machine"
)

func mustVM(t *testing.T, src string, m *machine.Machine) *VM {
	t.Helper()
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := NewVM(prog, m)
	if err != nil {
		t.Fatal(err)
	}
	return vm
}

func run(t *testing.T, vm *VM) {
	t.Helper()
	if _, err := vm.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if !vm.Done() {
		t.Fatal("program did not halt")
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"",
		"bogus r1, r2",
		"iadd r1",
		"iadd x1, r2, 3",
		"movi r99, 1",
		"movi r1, notanumber",
		"jne",
		"jne 123",
		"jne missing\nhalt",
		"dup: nop\ndup: nop",
		"load r1, r2",
		"fmovi f1, xyz",
		"cmp r1, f2",
		"1label: nop",
	}
	for _, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) should fail", src)
		}
	}
}

func TestAssembleLabelsAndComments(t *testing.T) {
	prog, err := Assemble(`
; leading comment
start:
  movi r1, 10 ; trailing comment
mid: loop:
  iadd r0, r0, 1
  cmp r0, r1
  jne loop
  halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Labels["start"] != 0 || prog.Labels["mid"] != 1 || prog.Labels["loop"] != 1 {
		t.Fatalf("labels = %v", prog.Labels)
	}
	if prog.Len() != 5 {
		t.Fatalf("len = %d", prog.Len())
	}
}

func TestArithmeticSemantics(t *testing.T) {
	vm := mustVM(t, `
  movi r1, 6
  movi r2, 7
  imul r3, r1, r2
  iadd r3, r3, 8
  fmovi f1, 1.5
  fmovi f2, 2.5
  fadd f3, f1, f2
  fmul f4, f3, f3
  halt
`, machine.XeonW3550())
	run(t, vm)
	if vm.Reg(3) != 50 {
		t.Fatalf("r3 = %d, want 50", vm.Reg(3))
	}
	if vm.FReg(3) != 4 || vm.FReg(4) != 16 {
		t.Fatalf("f3 = %v, f4 = %v", vm.FReg(3), vm.FReg(4))
	}
	if got := vm.Counts().FPOps; got != 2 {
		t.Fatalf("fp ops = %d", got)
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	vm := mustVM(t, `
  movi r1, 4096
  movi r2, 42
  store [r1], r2
  load r3, [r1]
  halt
`, machine.XeonW3550())
	run(t, vm)
	if vm.Reg(3) != 42 {
		t.Fatalf("r3 = %d", vm.Reg(3))
	}
	c := vm.Counts()
	if c.Loads != 1 || c.Stores != 1 {
		t.Fatalf("loads/stores = %d/%d", c.Loads, c.Stores)
	}
}

func TestBranchSemantics(t *testing.T) {
	vm := mustVM(t, `
  movi r1, 5
loop:
  iadd r0, r0, 1
  cmp r0, r1
  jlt loop
  je done
  halt
done:
  movi r9, 1
  halt
`, machine.XeonW3550())
	run(t, vm)
	if vm.Reg(9) != 1 {
		t.Fatal("je path not taken")
	}
	if vm.Reg(0) != 5 {
		t.Fatalf("r0 = %d", vm.Reg(0))
	}
}

func TestInstructionCountExact(t *testing.T) {
	for _, k := range ValidationSuite() {
		vm, err := NewVM(k.Program, machine.XeonW3550())
		if err != nil {
			t.Fatal(err)
		}
		k.Inputs.Apply(vm)
		if _, err := vm.Run(0); err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		got := vm.Counts().Instructions
		if got != k.ExpectedInstructions {
			t.Errorf("%s: executed %d instructions, analytic count %d",
				k.Name, got, k.ExpectedInstructions)
		}
	}
}

func TestFPMicroFiniteIPC(t *testing.T) {
	// Table 1: the 4-instruction loop with a 3-cycle FP dependence
	// chain retires at IPC 1.33 in both x87 and SSE modes.
	for _, mode := range []FPMode{FPModeX87, FPModeSSE} {
		prog, inputs := FPMicroKernel(mode, FPFinite, 200_000)
		vm, err := NewVM(prog, machine.XeonW3550())
		if err != nil {
			t.Fatal(err)
		}
		inputs.Apply(vm)
		if _, err := vm.Run(0); err != nil {
			t.Fatal(err)
		}
		if got := vm.IPC(); math.Abs(got-1.33) > 0.02 {
			t.Errorf("%v finite IPC = %.3f, want 1.33", mode, got)
		}
		if vm.Counts().FPAssists != 0 {
			t.Errorf("%v finite must not assist", mode)
		}
	}
}

func TestFPMicroNonFinite(t *testing.T) {
	// Table 1, non-finite operands: x87 collapses to IPC ~0.015 with
	// 25 % of instructions assisted; SSE is unaffected. Inf and NaN
	// behave identically.
	for _, vals := range []FPValues{FPInfinite, FPNaN} {
		prog, inputs := FPMicroKernel(FPModeX87, vals, 50_000)
		vm, _ := NewVM(prog, machine.XeonW3550())
		inputs.Apply(vm)
		vm.Run(0)
		if got := vm.IPC(); math.Abs(got-0.015) > 0.003 {
			t.Errorf("x87 %v IPC = %.4f, want ~0.015", vals, got)
		}
		c := vm.Counts()
		assistPct := 100 * float64(c.FPAssists) / float64(c.Instructions)
		if math.Abs(assistPct-25) > 1 {
			t.Errorf("x87 %v assist%% = %.1f, want 25", vals, assistPct)
		}

		prog, inputs = FPMicroKernel(FPModeSSE, vals, 50_000)
		vm, _ = NewVM(prog, machine.XeonW3550())
		inputs.Apply(vm)
		vm.Run(0)
		if got := vm.IPC(); math.Abs(got-1.33) > 0.02 {
			t.Errorf("SSE %v IPC = %.3f, want 1.33", vals, got)
		}
		if vm.Counts().FPAssists != 0 {
			t.Errorf("SSE %v must not assist", vals)
		}
	}
}

func TestFPMicroSlowdownFactor(t *testing.T) {
	// "The slowdown is as large as 87x (1.33/0.015)."
	ipcOf := func(vals FPValues) float64 {
		prog, inputs := FPMicroKernel(FPModeX87, vals, 50_000)
		vm, _ := NewVM(prog, machine.XeonW3550())
		inputs.Apply(vm)
		vm.Run(0)
		return vm.IPC()
	}
	slowdown := ipcOf(FPFinite) / ipcOf(FPNaN)
	if slowdown < 70 || slowdown > 100 {
		t.Fatalf("x87 non-finite slowdown = %.0fx, want ~87x", slowdown)
	}
}

func TestPPC970NoAssist(t *testing.T) {
	// Figure 3 (d): the PPC970 does not exhibit the FP-assist
	// pathology; non-finite x87-style adds run at full speed.
	prog, inputs := FPMicroKernel(FPModeX87, FPNaN, 50_000)
	vm, err := NewVM(prog, machine.PPC970())
	if err != nil {
		t.Fatal(err)
	}
	inputs.Apply(vm)
	vm.Run(0)
	if vm.Counts().FPAssists != 0 {
		t.Fatal("PPC970 must not assist")
	}
	if got := vm.IPC(); got < 1.0 {
		t.Fatalf("PPC970 non-finite IPC = %.3f, must stay high", got)
	}
}

func TestBranchPredictorMispredictions(t *testing.T) {
	// The alternating branch of the validation suite defeats a 2-bit
	// counter: expect a substantial misprediction rate on it, while
	// the loop-back branch stays nearly perfect.
	k := ValidationSuite()[3] // branchy
	vm, _ := NewVM(k.Program, machine.XeonW3550())
	k.Inputs.Apply(vm)
	vm.Run(0)
	c := vm.Counts()
	if c.Branches == 0 {
		t.Fatal("no branches counted")
	}
	missRatio := float64(c.BranchMisses) / float64(c.Branches)
	if missRatio < 0.05 || missRatio > 0.6 {
		t.Fatalf("branchy miss ratio = %.3f, want substantial but partial", missRatio)
	}
	// The pure loop kernel has near-zero mispredictions.
	k0 := ValidationSuite()[0]
	vm0, _ := NewVM(k0.Program, machine.XeonW3550())
	k0.Inputs.Apply(vm0)
	vm0.Run(0)
	c0 := vm0.Counts()
	if ratio := float64(c0.BranchMisses) / float64(c0.Branches); ratio > 0.01 {
		t.Fatalf("loop branch miss ratio = %.4f, want ~0", ratio)
	}
}

func TestMemWalkCacheMisses(t *testing.T) {
	// The strided walk touches a new 64-byte line per iteration over a
	// 20000*64 = 1.25 MB region: it must miss in the 32 KB L1 and the
	// 256 KB L2 on (almost) every touch once warm, but the counts are
	// bounded by the loads.
	k := ValidationSuite()[2]
	vm, _ := NewVM(k.Program, machine.XeonW3550())
	k.Inputs.Apply(vm)
	vm.Run(0)
	c := vm.Counts()
	if c.Loads != 20_000 {
		t.Fatalf("loads = %d", c.Loads)
	}
	if c.L1Misses != c.Loads {
		t.Fatalf("L1 misses = %d, want %d (new line every load)", c.L1Misses, c.Loads)
	}
	if c.LLCMisses == 0 || c.LLCMisses > c.Loads {
		t.Fatalf("LLC misses = %d out of %d loads", c.LLCMisses, c.Loads)
	}
}

func TestRunCyclesBudget(t *testing.T) {
	prog, inputs := FPMicroKernel(FPModeX87, FPFinite, 1_000_000)
	vm, _ := NewVM(prog, machine.XeonW3550())
	inputs.Apply(vm)
	d := vm.RunCycles(10_000)
	if d.Instructions == 0 {
		t.Fatal("budgeted run made no progress")
	}
	// 10k cycles at IPC 1.33 is ~13.3k instructions; allow the final
	// instruction to overshoot slightly.
	if d.Cycles < 10_000 || d.Cycles > 10_400 {
		t.Fatalf("cycles used = %d, budget 10000", d.Cycles)
	}
	if vm.Done() {
		t.Fatal("long kernel must not finish in 10k cycles")
	}
}

func TestRunnerAdapter(t *testing.T) {
	prog, inputs := FPMicroKernel(FPModeSSE, FPFinite, 10_000)
	r, err := NewRunner("fpmicro", prog, inputs, machine.XeonW3550())
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "fpmicro" {
		t.Fatal("name")
	}
	var total uint64
	for i := 0; i < 1000 && !r.Done(); i++ {
		d := r.Exec(cpu.Context{}, 5_000)
		total += d.Instructions
	}
	if !r.Done() {
		t.Fatal("runner did not finish")
	}
	if total != r.VM().Counts().Instructions {
		t.Fatalf("runner deltas (%d) must sum to VM total (%d)", total, r.VM().Counts().Instructions)
	}
}

func TestBranchPredictorUnit(t *testing.T) {
	bp := NewBranchPredictor(16)
	// Train taken: after two updates the prediction flips to taken.
	pc := 3
	bp.Update(pc, true)
	bp.Update(pc, true)
	if !bp.Predict(pc) {
		t.Fatal("predictor must learn taken")
	}
	bp.Update(pc, false)
	bp.Update(pc, false)
	if bp.Predict(pc) {
		t.Fatal("predictor must learn not-taken")
	}
}

// Property: instruction counts are exact for arbitrary loop trip counts —
// the backbone of the §2.4 validation.
func TestPropLoopCountExact(t *testing.T) {
	f := func(nRaw uint16) bool {
		n := int64(nRaw%5000) + 1
		prog := MustAssemble(`
loop:
  iadd r0, r0, 1
  cmp r0, r1
  jne loop
  halt
`)
		vm, err := NewVM(prog, machine.XeonW3550())
		if err != nil {
			return false
		}
		vm.SetReg(1, n)
		if _, err := vm.Run(0); err != nil {
			return false
		}
		return vm.Counts().Instructions == uint64(3*n+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDumpSourcePreserved(t *testing.T) {
	src := "  halt ; done"
	prog := MustAssemble(src)
	if !strings.Contains(prog.Source, "halt") {
		t.Fatal("source not preserved")
	}
}
