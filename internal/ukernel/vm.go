package ukernel

import (
	"fmt"
	"math"

	"tiptop/internal/sim/cache"
	"tiptop/internal/sim/cpu"
	"tiptop/internal/sim/machine"
)

// Architectural operation latencies (cycles). FP adds have the 3-cycle
// latency that makes the serial accumulation loop of Figure 5 retire one
// iteration every 3 cycles — which is exactly how the paper's measured
// IPC of 1.33 arises from a 4-instruction loop body.
const (
	latInt    = 1
	latIMul   = 3
	latFAdd   = 3
	latFMul   = 5
	latStore  = 1
	latBranch = 1
)

// memLatencies are the architectural load-to-use latencies by hit level:
// L1, L2, L3, then memory (taken from the machine description).
func memLatency(m *machine.Machine, hitLevel int) float64 {
	arch := []float64{4, 10, 40}
	if hitLevel < len(arch) && hitLevel < len(m.Caches) {
		return arch[hitLevel]
	}
	return float64(m.MemLatencyCycles)
}

// BranchPredictor is a classic table of 2-bit saturating counters indexed
// by instruction address.
type BranchPredictor struct {
	table []uint8
	mask  int
}

// NewBranchPredictor creates a predictor with the given table size
// (rounded up to a power of two).
func NewBranchPredictor(entries int) *BranchPredictor {
	n := 1
	for n < entries {
		n <<= 1
	}
	t := make([]uint8, n)
	for i := range t {
		t[i] = 1 // weakly not-taken
	}
	return &BranchPredictor{table: t, mask: n - 1}
}

// Predict returns the predicted direction for the branch at pc.
func (bp *BranchPredictor) Predict(pc int) bool {
	return bp.table[pc&bp.mask] >= 2
}

// Update trains the predictor and reports whether the prediction was
// correct.
func (bp *BranchPredictor) Update(pc int, taken bool) bool {
	idx := pc & bp.mask
	pred := bp.table[idx] >= 2
	if taken && bp.table[idx] < 3 {
		bp.table[idx]++
	}
	if !taken && bp.table[idx] > 0 {
		bp.table[idx]--
	}
	return pred == taken
}

// VM executes a Program on a simulated core of the given machine with an
// exact cache hierarchy, a branch predictor, and a dependence-aware
// timing model (a register scoreboard: an instruction issues when the
// pipeline slot and all source operands are ready; its result becomes
// ready after the op latency).
type VM struct {
	prog *Program
	m    *machine.Machine

	regs  [NumRegs]int64
	fregs [NumRegs]float64
	mem   map[uint64]int64
	flagE bool // equal
	flagL bool // less-than

	hier *cache.Hierarchy
	bp   *BranchPredictor

	pc     int
	halted bool

	clock      float64          // current issue cycle
	readyInt   [NumRegs]float64 // scoreboard: integer regs
	readyFloat [NumRegs]float64 // scoreboard: float regs
	issueGap   float64          // 1/issue width

	counts    cpu.Delta
	cycleBase float64 // counts.Cycles already accounted up to this clock
	maxInstrs uint64

	// traceAddrs records every memory address touched when tracing is
	// enabled (EnableTrace), for cross-validation against the analytic
	// stack-distance cache model.
	traceAddrs   []uint64
	traceEnabled bool
}

// EnableTrace starts recording the address stream of loads and stores.
func (vm *VM) EnableTrace() { vm.traceEnabled = true }

// Trace returns the recorded address stream.
func (vm *VM) Trace() []uint64 { return vm.traceAddrs }

// NewVM builds a VM with caches sized from the machine description.
func NewVM(prog *Program, m *machine.Machine) (*VM, error) {
	if prog == nil || prog.Len() == 0 {
		return nil, fmt.Errorf("ukernel: empty program")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	var levels []*cache.SetAssoc
	for _, cl := range m.Caches {
		c, err := cache.NewSetAssoc(cl.SizeBytes, cl.Assoc, cl.LineBytes)
		if err != nil {
			return nil, fmt.Errorf("ukernel: L%d: %w", cl.Level, err)
		}
		levels = append(levels, c)
	}
	return &VM{
		prog:     prog,
		m:        m,
		mem:      make(map[uint64]int64),
		hier:     cache.NewHierarchy(levels...),
		bp:       NewBranchPredictor(1024),
		issueGap: 1 / float64(m.IssueWidth),
	}, nil
}

// SetReg sets an integer register (program inputs).
func (vm *VM) SetReg(i int, v int64) { vm.regs[i] = v }

// SetFReg sets a float register; non-finite values are how the Table 1
// experiment injects Inf/NaN operands.
func (vm *VM) SetFReg(i int, v float64) { vm.fregs[i] = v }

// Reg reads an integer register.
func (vm *VM) Reg(i int) int64 { return vm.regs[i] }

// FReg reads a float register.
func (vm *VM) FReg(i int) float64 { return vm.fregs[i] }

// Done reports whether the program halted or ran off the end.
func (vm *VM) Done() bool { return vm.halted || vm.pc >= vm.prog.Len() }

// Counts returns the exact architectural event counts so far. This is
// the "Pin inscount" oracle: Instructions is exact by construction.
func (vm *VM) Counts() cpu.Delta {
	out := vm.counts
	out.Cycles = uint64(math.Ceil(vm.clock))
	return out
}

// IPC returns retired instructions per cycle so far.
func (vm *VM) IPC() float64 {
	c := vm.Counts()
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.Instructions) / float64(c.Cycles)
}

// Step executes one instruction.
func (vm *VM) Step() error {
	if vm.Done() {
		return fmt.Errorf("ukernel: step after halt")
	}
	in := &vm.prog.Instrs[vm.pc]
	nextPC := vm.pc + 1

	// Issue: wait for the pipeline slot.
	issue := vm.clock + vm.issueGap
	ready := func(bank *[NumRegs]float64, r int) {
		if bank[r] > issue {
			issue = bank[r]
		}
	}

	switch in.Op {
	case OpNop:
	case OpHalt:
		vm.halted = true
	case OpMovI:
		vm.regs[in.Dst] = in.Imm
		vm.readyInt[in.Dst] = issue + latInt
	case OpFMovI:
		vm.fregs[in.Dst] = in.FImm
		vm.readyFloat[in.Dst] = issue + latInt
	case OpIAdd, OpIMul:
		ready(&vm.readyInt, in.Src1)
		op2 := in.Imm
		if !in.UseImm {
			ready(&vm.readyInt, in.Src2)
			op2 = vm.regs[in.Src2]
		}
		lat := float64(latInt)
		if in.Op == OpIMul {
			lat = latIMul
			vm.regs[in.Dst] = vm.regs[in.Src1] * op2
		} else {
			vm.regs[in.Dst] = vm.regs[in.Src1] + op2
		}
		vm.readyInt[in.Dst] = issue + lat
	case OpFAdd, OpFAddX87, OpFMul:
		ready(&vm.readyFloat, in.Src1)
		ready(&vm.readyFloat, in.Src2)
		a, b := vm.fregs[in.Src1], vm.fregs[in.Src2]
		lat := float64(latFAdd)
		var res float64
		if in.Op == OpFMul {
			lat = latFMul
			res = a * b
		} else {
			res = a + b
		}
		vm.counts.FPOps++
		// x87 micro-code assist: non-finite operands or result push
		// the operation onto the assist path (paper §3.1). SSE-style
		// ops handle them at full speed, and machines without the
		// assist mechanism (PPC970) never stall.
		if in.Op == OpFAddX87 && vm.m.FPAssistPenalty > 0 && nonFinite(a, b, res) {
			vm.counts.FPAssists++
			lat += float64(vm.m.FPAssistPenalty)
		}
		vm.fregs[in.Dst] = res
		vm.readyFloat[in.Dst] = issue + lat
	case OpLoad, OpLoadF:
		ready(&vm.readyInt, in.Src1)
		addr := uint64(vm.regs[in.Src1])
		lvl := vm.access(addr)
		lat := memLatency(vm.m, lvl)
		vm.counts.Loads++
		if in.Op == OpLoad {
			vm.regs[in.Dst] = vm.mem[addr]
			vm.readyInt[in.Dst] = issue + lat
		} else {
			vm.fregs[in.Dst] = math.Float64frombits(uint64(vm.mem[addr]))
			vm.readyFloat[in.Dst] = issue + lat
		}
	case OpStore:
		ready(&vm.readyInt, in.Dst)
		ready(&vm.readyInt, in.Src1)
		addr := uint64(vm.regs[in.Dst])
		vm.access(addr)
		vm.mem[addr] = vm.regs[in.Src1]
		vm.counts.Stores++
	case OpCmp:
		ready(&vm.readyInt, in.Src1)
		op2 := in.Imm
		if !in.UseImm {
			ready(&vm.readyInt, in.Src2)
			op2 = vm.regs[in.Src2]
		}
		a := vm.regs[in.Src1]
		vm.flagE = a == op2
		vm.flagL = a < op2
	case OpJmp, OpJne, OpJe, OpJlt, OpJge:
		taken := true
		switch in.Op {
		case OpJne:
			taken = !vm.flagE
		case OpJe:
			taken = vm.flagE
		case OpJlt:
			taken = vm.flagL
		case OpJge:
			taken = !vm.flagL
		}
		vm.counts.Branches++
		correct := true
		if in.Op != OpJmp { // unconditional jumps don't mispredict
			correct = vm.bp.Update(vm.pc, taken)
		}
		if !correct {
			vm.counts.BranchMisses++
			issue += float64(vm.m.BranchMissPenalty)
		}
		if taken {
			nextPC = in.Target
		}
	default:
		return fmt.Errorf("ukernel: invalid opcode at pc %d", vm.pc)
	}

	vm.counts.Instructions++
	vm.clock = issue
	vm.pc = nextPC
	return nil
}

// access touches the cache hierarchy and books the per-level miss
// events.
func (vm *VM) access(addr uint64) int {
	if vm.traceEnabled {
		vm.traceAddrs = append(vm.traceAddrs, addr)
	}
	lvl := vm.hier.Access(addr)
	nLevels := len(vm.hier.Levels)
	if lvl >= 1 {
		vm.counts.L1Misses++
	}
	// LLC references are the accesses reaching the last level.
	if lvl >= nLevels-1 {
		vm.counts.LLCRefs++
	}
	if nLevels >= 3 && lvl >= 2 {
		vm.counts.L2Misses++
	}
	if lvl >= nLevels {
		vm.counts.LLCMisses++
		vm.counts.MemStallCycles += uint64(vm.m.MemLatencyCycles)
		if nLevels < 3 {
			vm.counts.L2Misses++
		}
	}
	return lvl
}

func nonFinite(vs ...float64) bool {
	for _, v := range vs {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			return true
		}
	}
	return false
}

// Run executes up to maxInstr instructions (0 = until halt), returning
// the number retired.
func (vm *VM) Run(maxInstr uint64) (uint64, error) {
	var n uint64
	for !vm.Done() && (maxInstr == 0 || n < maxInstr) {
		if err := vm.Step(); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// RunCycles executes until the clock advances by at least budget cycles
// (or the program halts), returning the event delta produced. This is
// the primitive behind the workload.Runner adapter.
func (vm *VM) RunCycles(budget uint64) cpu.Delta {
	startCounts := vm.Counts()
	target := vm.clock + float64(budget)
	for !vm.Done() && vm.clock < target {
		if err := vm.Step(); err != nil {
			break
		}
	}
	end := vm.Counts()
	var d cpu.Delta
	d.Instructions = end.Instructions - startCounts.Instructions
	d.Cycles = end.Cycles - startCounts.Cycles
	d.Loads = end.Loads - startCounts.Loads
	d.Stores = end.Stores - startCounts.Stores
	d.Branches = end.Branches - startCounts.Branches
	d.BranchMisses = end.BranchMisses - startCounts.BranchMisses
	d.FPOps = end.FPOps - startCounts.FPOps
	d.FPAssists = end.FPAssists - startCounts.FPAssists
	d.L1Misses = end.L1Misses - startCounts.L1Misses
	d.L2Misses = end.L2Misses - startCounts.L2Misses
	d.LLCRefs = end.LLCRefs - startCounts.LLCRefs
	d.LLCMisses = end.LLCMisses - startCounts.LLCMisses
	return d
}
