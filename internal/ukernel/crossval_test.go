package ukernel

import (
	"math"
	"testing"

	"tiptop/internal/hpm"
	"tiptop/internal/sim/cache"
	"tiptop/internal/sim/machine"
	"tiptop/internal/sim/pmu"
	"tiptop/internal/sim/sched"
)

// conformanceModels are the four machine presets of the §2.4
// cross-validation matrix: the paper's Nehalem workstation and PowerPC
// blade, plus the two counter-constrained embedded models that force
// the multiplexing path.
func conformanceModels() []struct {
	name string
	m    *machine.Machine
} {
	return []struct {
		name string
		m    *machine.Machine
	}{
		{"w3550", machine.XeonW3550()},
		{"ppc970", machine.PPC970()},
		{"a7", machine.CortexA7()},
		{"u74", machine.SiFiveU74()},
	}
}

// TestValidationSuiteAcrossModels runs every validation kernel on all
// four machine models. The retire counts are architectural — the same
// program retires the same instructions on any model — while cycles and
// branch misses are microarchitectural, so those are only checked for
// structural sanity (non-zero, bounded by the retire stream).
func TestValidationSuiteAcrossModels(t *testing.T) {
	for _, tc := range conformanceModels() {
		t.Run(tc.name, func(t *testing.T) {
			for _, k := range ValidationSuite() {
				vm, err := NewVM(k.Program, tc.m)
				if err != nil {
					t.Fatalf("%s: %v", k.Name, err)
				}
				k.Inputs.Apply(vm)
				if _, err := vm.Run(0); err != nil {
					t.Fatalf("%s: %v", k.Name, err)
				}
				c := vm.Counts()
				if c.Instructions != k.ExpectedInstructions {
					t.Errorf("%s: instructions = %d, analytic %d",
						k.Name, c.Instructions, k.ExpectedInstructions)
				}
				if c.Cycles == 0 {
					t.Errorf("%s: zero cycles", k.Name)
				}
				if c.Branches == 0 || c.Branches > c.Instructions {
					t.Errorf("%s: branches = %d retired out of %d instructions",
						k.Name, c.Branches, c.Instructions)
				}
				if c.BranchMisses > c.Branches {
					t.Errorf("%s: misses = %d > branches = %d",
						k.Name, c.BranchMisses, c.Branches)
				}
			}
		})
	}
}

// TestFPAssistSupportAcrossModels pins the architecture-specific event
// contract: FP_ASSIST exists only on the Nehalem model. The other three
// backends must refuse it as unsupported — a missing event is an error
// at attach, never a silent zero column (the PPC970 has no micro-code
// assist mechanism at all, and reporting 0 assists there would be a
// fabricated measurement).
func TestFPAssistSupportAcrossModels(t *testing.T) {
	desc, err := hpm.DefaultRegistry().ParseEvent("FP_ASSIST")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range conformanceModels() {
		k, err := sched.New(tc.m, sched.Options{})
		if err != nil {
			t.Fatal(err)
		}
		b := pmu.New(k)
		want := tc.name == "w3550"
		if got := b.Supported(desc); got != want {
			t.Errorf("%s: FP_ASSIST supported = %v, want %v", tc.name, got, want)
		}
	}
}

// TestRandomBranchMisprediction checks the §2.4 claim for the random
// direction kernel: a 2-bit predictor on an LCG-driven branch
// mispredicts close to half the time on that branch.
func TestRandomBranchMisprediction(t *testing.T) {
	var k ValidationKernel
	for _, c := range ValidationSuite() {
		if c.Name == "randbranch" {
			k = c
		}
	}
	if k.Program == nil {
		t.Fatal("randbranch kernel missing")
	}
	vm, err := NewVM(k.Program, machine.XeonW3550())
	if err != nil {
		t.Fatal(err)
	}
	k.Inputs.Apply(vm)
	if _, err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	c := vm.Counts()
	// Two branches per iteration: the random jlt and the near-perfect
	// loop-back jne. Total misprediction ratio ~ (0.5 + ~0)/2 = ~25 %.
	ratio := float64(c.BranchMisses) / float64(c.Branches)
	if ratio < 0.15 || ratio > 0.35 {
		t.Fatalf("misprediction ratio = %.3f, want ~0.25 (random branch at ~50%%)", ratio)
	}
}

// TestTraceCrossValidatesAnalyticModel ties the two cache substrates
// together: the VM's recorded address stream, fed through the
// stack-distance analyzer, must predict the VM's own fully-associative
// miss behaviour. This is the theorem (stack distance <= capacity <=>
// hit) that the phase-model simulation rests on, checked against real
// executed code rather than a synthetic trace.
func TestTraceCrossValidatesAnalyticModel(t *testing.T) {
	// A pointer-walk over 96 lines: exceeds a 64-line L1 but fits L2.
	prog := MustAssemble(`
  movi r2, 0
loop:
  load r3, [r2]
  iadd r2, r2, 64
  cmp r2, 6144
  jlt loop
  movi r2, 0
  iadd r5, r5, 1
  cmp r5, 50
  jlt loop
  halt
`)
	m := machine.XeonW3550()
	vm, err := NewVM(prog, m)
	if err != nil {
		t.Fatal(err)
	}
	vm.EnableTrace()
	if _, err := vm.Run(0); err != nil {
		t.Fatal(err)
	}
	trace := vm.Trace()
	if len(trace) == 0 {
		t.Fatal("no trace recorded")
	}
	profile := cache.StackDistance(trace, 64)
	if err := profile.Validate(); err != nil {
		t.Fatal(err)
	}
	// Replay the same trace through a fully-associative LRU cache and
	// compare with the analytic prediction at the same capacity.
	for _, lines := range []int{32, 64, 128} {
		sim, err := cache.NewSetAssoc(int64(lines*64), lines, 64)
		if err != nil {
			t.Fatal(err)
		}
		var misses int
		for _, a := range trace {
			if !sim.Access(a) {
				misses++
			}
		}
		got := float64(misses) / float64(len(trace))
		want := profile.MissRatio(float64(lines * 64))
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("capacity %d lines: exact %.6f vs analytic %.6f", lines, got, want)
		}
	}
	// The cyclic sweep of 96 lines thrashes LRU below 96 lines: the
	// profile must predict a total miss at 64 lines and near-total
	// hits at 128.
	if profile.MissRatio(64*64) < 0.95 {
		t.Fatalf("64-line cyclic sweep must thrash: miss = %v", profile.MissRatio(64*64))
	}
	if profile.MissRatio(128*64) > 0.05 {
		t.Fatalf("128 lines hold the working set: miss = %v", profile.MissRatio(128*64))
	}
}
