package ukernel

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Assemble parses the tiny assembly language into a Program. The syntax,
// one instruction per line:
//
//	; comment (also after instructions)
//	label:
//	  movi  r1, 1000
//	  fmovi f1, -1.0        ; also: inf, -inf, nan
//	  iadd  r1, r1, 1       ; third operand: register or immediate
//	  faddx f0, f1, f2      ; x87 add (assists on non-finite operands)
//	  fadd  f0, f1, f2      ; SSE add
//	  load  r2, [r3]
//	  loadf f2, [r3]
//	  store [r3], r2
//	  cmp   r1, r4          ; or immediate
//	  jne   label
//	  halt
func Assemble(src string) (*Program, error) {
	p := &Program{Labels: map[string]int{}, Source: src}
	type patch struct {
		instr int
		label string
		line  int
	}
	var patches []patch

	lines := strings.Split(src, "\n")
	for lineNo, raw := range lines {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels, possibly followed by an instruction on the same line.
		for {
			colon := strings.IndexByte(line, ':')
			if colon < 0 {
				break
			}
			label := strings.TrimSpace(line[:colon])
			if !isIdent(label) {
				return nil, fmt.Errorf("ukernel: line %d: bad label %q", lineNo+1, label)
			}
			if _, dup := p.Labels[label]; dup {
				return nil, fmt.Errorf("ukernel: line %d: duplicate label %q", lineNo+1, label)
			}
			p.Labels[label] = len(p.Instrs)
			line = strings.TrimSpace(line[colon+1:])
		}
		if line == "" {
			continue
		}
		instr, labelRef, err := parseInstr(line)
		if err != nil {
			return nil, fmt.Errorf("ukernel: line %d: %v", lineNo+1, err)
		}
		if labelRef != "" {
			patches = append(patches, patch{instr: len(p.Instrs), label: labelRef, line: lineNo + 1})
		}
		p.Instrs = append(p.Instrs, instr)
	}
	for _, pt := range patches {
		target, ok := p.Labels[pt.label]
		if !ok {
			return nil, fmt.Errorf("ukernel: line %d: undefined label %q", pt.line, pt.label)
		}
		p.Instrs[pt.instr].Target = target
	}
	if len(p.Instrs) == 0 {
		return nil, fmt.Errorf("ukernel: empty program")
	}
	return p, nil
}

// MustAssemble panics on assembly errors; for the static kernel library.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z'
		digit := r >= '0' && r <= '9'
		if !alpha && !(digit && i > 0) {
			return false
		}
	}
	return true
}

func parseInstr(line string) (Instr, string, error) {
	mnemonic := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mnemonic, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	args := splitArgs(rest)
	switch mnemonic {
	case "nop":
		return expectArgs(Instr{Op: OpNop}, args, 0)
	case "halt":
		return expectArgs(Instr{Op: OpHalt}, args, 0)
	case "jmp", "jne", "je", "jlt", "jge":
		ops := map[string]Op{"jmp": OpJmp, "jne": OpJne, "je": OpJe, "jlt": OpJlt, "jge": OpJge}
		if len(args) != 1 || !isIdent(args[0]) {
			return Instr{}, "", fmt.Errorf("%s needs one label", mnemonic)
		}
		return Instr{Op: ops[mnemonic]}, args[0], nil
	case "movi":
		if len(args) != 2 {
			return Instr{}, "", fmt.Errorf("movi needs rd, imm")
		}
		rd, err := parseReg(args[0], 'r')
		if err != nil {
			return Instr{}, "", err
		}
		imm, err := strconv.ParseInt(args[1], 0, 64)
		if err != nil {
			return Instr{}, "", fmt.Errorf("bad immediate %q", args[1])
		}
		return Instr{Op: OpMovI, Dst: rd, Imm: imm, UseImm: true}, "", nil
	case "fmovi":
		if len(args) != 2 {
			return Instr{}, "", fmt.Errorf("fmovi needs fd, fimm")
		}
		fd, err := parseReg(args[0], 'f')
		if err != nil {
			return Instr{}, "", err
		}
		v, err := parseFImm(args[1])
		if err != nil {
			return Instr{}, "", err
		}
		return Instr{Op: OpFMovI, Dst: fd, FImm: v, UseImm: true}, "", nil
	case "iadd", "imul":
		op := OpIAdd
		if mnemonic == "imul" {
			op = OpIMul
		}
		if len(args) != 3 {
			return Instr{}, "", fmt.Errorf("%s needs rd, rs, op2", mnemonic)
		}
		rd, err := parseReg(args[0], 'r')
		if err != nil {
			return Instr{}, "", err
		}
		rs, err := parseReg(args[1], 'r')
		if err != nil {
			return Instr{}, "", err
		}
		in := Instr{Op: op, Dst: rd, Src1: rs}
		if err := parseOp2(&in, args[2], 'r'); err != nil {
			return Instr{}, "", err
		}
		return in, "", nil
	case "fadd", "faddx", "fmul":
		ops := map[string]Op{"fadd": OpFAdd, "faddx": OpFAddX87, "fmul": OpFMul}
		if len(args) != 3 {
			return Instr{}, "", fmt.Errorf("%s needs fd, fs1, fs2", mnemonic)
		}
		fd, err := parseReg(args[0], 'f')
		if err != nil {
			return Instr{}, "", err
		}
		f1, err := parseReg(args[1], 'f')
		if err != nil {
			return Instr{}, "", err
		}
		f2, err := parseReg(args[2], 'f')
		if err != nil {
			return Instr{}, "", err
		}
		return Instr{Op: ops[mnemonic], Dst: fd, Src1: f1, Src2: f2}, "", nil
	case "load", "loadf":
		if len(args) != 2 {
			return Instr{}, "", fmt.Errorf("%s needs dst, [addr]", mnemonic)
		}
		bank := byte('r')
		op := OpLoad
		if mnemonic == "loadf" {
			bank, op = 'f', OpLoadF
		}
		rd, err := parseReg(args[0], bank)
		if err != nil {
			return Instr{}, "", err
		}
		ra, err := parseMem(args[1])
		if err != nil {
			return Instr{}, "", err
		}
		return Instr{Op: op, Dst: rd, Src1: ra}, "", nil
	case "store":
		if len(args) != 2 {
			return Instr{}, "", fmt.Errorf("store needs [addr], rs")
		}
		ra, err := parseMem(args[0])
		if err != nil {
			return Instr{}, "", err
		}
		rs, err := parseReg(args[1], 'r')
		if err != nil {
			return Instr{}, "", err
		}
		return Instr{Op: OpStore, Dst: ra, Src1: rs}, "", nil
	case "cmp":
		if len(args) != 2 {
			return Instr{}, "", fmt.Errorf("cmp needs rs1, op2")
		}
		rs, err := parseReg(args[0], 'r')
		if err != nil {
			return Instr{}, "", err
		}
		in := Instr{Op: OpCmp, Src1: rs}
		if err := parseOp2(&in, args[1], 'r'); err != nil {
			return Instr{}, "", err
		}
		return in, "", nil
	}
	return Instr{}, "", fmt.Errorf("unknown mnemonic %q", mnemonic)
}

func expectArgs(in Instr, args []string, n int) (Instr, string, error) {
	if len(args) != n {
		return Instr{}, "", fmt.Errorf("%v takes %d arguments", in.Op, n)
	}
	return in, "", nil
}

func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseReg(s string, bank byte) (int, error) {
	if len(s) < 2 || s[0] != bank {
		return 0, fmt.Errorf("expected %c-register, got %q", bank, s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return n, nil
}

func parseMem(s string) (int, error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, fmt.Errorf("expected [reg], got %q", s)
	}
	return parseReg(strings.TrimSpace(s[1:len(s)-1]), 'r')
}

func parseOp2(in *Instr, s string, bank byte) error {
	if len(s) > 1 && s[0] == bank {
		if r, err := parseReg(s, bank); err == nil {
			in.Src2 = r
			return nil
		}
	}
	imm, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return fmt.Errorf("operand %q is neither register nor immediate", s)
	}
	in.UseImm = true
	in.Imm = imm
	return nil
}

func parseFImm(s string) (float64, error) {
	switch strings.ToLower(s) {
	case "inf", "+inf":
		return math.Inf(1), nil
	case "-inf":
		return math.Inf(-1), nil
	case "nan":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad float immediate %q", s)
	}
	return v, nil
}
