// Package ukernel implements a small register-machine VM with an
// assembler, a scoreboarded timing model, a two-bit branch predictor and
// a set-associative cache hierarchy. It plays two roles in the
// reproduction:
//
//   - it *is* the hand-crafted micro-benchmark substrate of §2.4 and §3.1:
//     the four-instruction FP loop of Figure 5 runs on it in x87 or SSE
//     mode, with finite or non-finite operands, regenerating Table 1;
//   - its architecturally exact event counts are the independent oracle
//     standing in for Pin's inscount2 in the §2.4 validation ("The number
//     of instructions we obtain is on average within 0.06 % of Pin's
//     count").
package ukernel

import "fmt"

// Op is an instruction opcode.
type Op int

// The ISA. FAddX87 models the x87 stack adds of Figure 5's left column,
// whose non-finite operands trigger micro-code assists on Intel parts;
// FAdd models the SSE scalar adds of the right column, which never
// assist. Integer ops, loads/stores, compares and branches complete the
// mix needed by the validation kernels.
const (
	OpInvalid Op = iota
	OpMovI       // movi rd, imm        rd = imm
	OpFMovI      // fmovi fd, fimm      fd = fimm (accepts inf/nan)
	OpIAdd       // iadd rd, rs, op2    rd = rs + op2 (reg or imm)
	OpIMul       // imul rd, rs, op2
	OpFAdd       // fadd fd, fs1, fs2   SSE-style
	OpFAddX87    // faddx fd, fs1, fs2  x87-style (assist on non-finite)
	OpFMul       // fmul fd, fs1, fs2
	OpLoad       // load rd, [rs]
	OpLoadF      // loadf fd, [rs]
	OpStore      // store [rd], rs
	OpCmp        // cmp rs1, op2        sets flags
	OpJmp        // jmp label
	OpJne        // jne label
	OpJe         // je label
	OpJlt        // jlt label
	OpJge        // jge label
	OpNop        // nop
	OpHalt       // halt
)

var opNames = map[Op]string{
	OpMovI: "movi", OpFMovI: "fmovi", OpIAdd: "iadd", OpIMul: "imul",
	OpFAdd: "fadd", OpFAddX87: "faddx", OpFMul: "fmul",
	OpLoad: "load", OpLoadF: "loadf", OpStore: "store",
	OpCmp: "cmp", OpJmp: "jmp", OpJne: "jne", OpJe: "je",
	OpJlt: "jlt", OpJge: "jge", OpNop: "nop", OpHalt: "halt",
}

func (o Op) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// IsBranch reports whether the op is a control transfer.
func (o Op) IsBranch() bool {
	switch o {
	case OpJmp, OpJne, OpJe, OpJlt, OpJge:
		return true
	}
	return false
}

// IsFP reports whether the op is a floating-point arithmetic operation.
func (o Op) IsFP() bool {
	switch o {
	case OpFAdd, OpFAddX87, OpFMul:
		return true
	}
	return false
}

// NumRegs is the number of integer and float registers each.
const NumRegs = 16

// Instr is one decoded instruction.
type Instr struct {
	Op         Op
	Dst        int // destination register index (int or float bank by op)
	Src1, Src2 int
	// UseImm selects the immediate as the second operand for
	// iadd/imul/cmp.
	UseImm bool
	Imm    int64
	FImm   float64
	Target int // branch target (instruction index)
}

// Program is an assembled instruction sequence.
type Program struct {
	Instrs []Instr
	Labels map[string]int
	Source string
}

// Len returns the instruction count.
func (p *Program) Len() int { return len(p.Instrs) }
