package ukernel

import (
	"fmt"

	"tiptop/internal/sim/cpu"
	"tiptop/internal/sim/machine"
	"tiptop/internal/sim/workload"
)

// FPMode selects the instruction set of the Figure 4/5 micro-benchmark.
type FPMode int

// The two compilation modes of the paper's micro-benchmark:
// gcc -mfpmath=387 vs gcc -mfpmath=sse.
const (
	FPModeX87 FPMode = iota
	FPModeSSE
)

func (m FPMode) String() string {
	if m == FPModeX87 {
		return "x87"
	}
	return "SSE"
}

// FPValues selects the operand class.
type FPValues int

// Operand classes of Table 1. Infinite and NaN inputs behave identically
// (the paper reports them together).
const (
	FPFinite FPValues = iota
	FPInfinite
	FPNaN
)

func (v FPValues) String() string {
	switch v {
	case FPFinite:
		return "finite"
	case FPInfinite:
		return "infinite"
	default:
		return "NaN"
	}
}

// FPMicroKernel builds the paper's micro-benchmark (Figures 4 and 5): a
// loop of exactly four instructions — add, FP add, compare, conditional
// jump — accumulating z += x + y for the given number of iterations. The
// x87 variant assists on non-finite operands; the SSE variant never
// does.
func FPMicroKernel(mode FPMode, vals FPValues, iterations int64) (*Program, *VMInputs) {
	fp := "faddx"
	if mode == FPModeSSE {
		fp = "fadd"
	}
	// f0 = z, f1 = x, f2 = y; x+y is computed into the accumulator, the
	// same dependence structure as Figure 5's fadd %st, %st(1).
	src := fmt.Sprintf(`
; Figure 4 micro-benchmark, %s mode
loop:
  iadd r0, r0, 1
  %s f0, f0, f1
  cmp r0, r1
  jne loop
  halt
`, mode, fp)
	inputs := &VMInputs{
		IntRegs:   map[int]int64{0: 0, 1: iterations},
		FloatRegs: map[int]float64{},
	}
	switch vals {
	case FPFinite:
		inputs.FloatRegs[0] = 0
		inputs.FloatRegs[1] = -1.0 // x+y folded: adding a finite delta
	case FPInfinite:
		inputs.FloatRegs[0] = 0
		inputs.FloatRegs[1] = inf()
	case FPNaN:
		inputs.FloatRegs[0] = 0
		inputs.FloatRegs[1] = nan()
	}
	return MustAssemble(src), inputs
}

func inf() float64 { var z float64; return 1 / z }
func nan() float64 { var z float64; return z / z }

// VMInputs are initial register values for a kernel.
type VMInputs struct {
	IntRegs   map[int]int64
	FloatRegs map[int]float64
}

// Apply sets the inputs on a VM.
func (in *VMInputs) Apply(vm *VM) {
	for r, v := range in.IntRegs {
		vm.SetReg(r, v)
	}
	for r, v := range in.FloatRegs {
		vm.SetFReg(r, v)
	}
}

// ValidationKernel is a micro-kernel whose exact instruction count is
// known analytically — the §2.4 methodology ("we manually crafted
// micro-kernels for which we can analytically estimate the number of
// instructions by inspecting the assembly of a single basic-block
// loop").
type ValidationKernel struct {
	Name    string
	Program *Program
	Inputs  *VMInputs
	// ExpectedInstructions is the analytic retire count.
	ExpectedInstructions uint64
}

// ValidationSuite returns the micro-kernels used by the §2.4
// instruction-count validation. Counts are derived from the loop bodies:
// a k-instruction body executed n times plus setup/teardown. By
// convention every suite kernel takes its loop bound in r1 (the
// `validate` scenario relies on this to stretch kernel lifetimes
// without changing the loop bodies the analytic counts are derived
// from).
func ValidationSuite() []ValidationKernel {
	var suite []ValidationKernel

	// 1. Pure integer loop: 3-instruction body, n iterations, + halt.
	n1 := int64(100_000)
	suite = append(suite, ValidationKernel{
		Name: "intloop",
		Program: MustAssemble(`
loop:
  iadd r0, r0, 1
  cmp r0, r1
  jne loop
  halt
`),
		Inputs:               &VMInputs{IntRegs: map[int]int64{1: n1}},
		ExpectedInstructions: uint64(3*n1 + 1),
	})

	// 2. The FP micro-benchmark, finite operands: 4-instruction body.
	n2 := int64(50_000)
	prog, inputs := FPMicroKernel(FPModeX87, FPFinite, n2)
	suite = append(suite, ValidationKernel{
		Name:                 "fploop",
		Program:              prog,
		Inputs:               inputs,
		ExpectedInstructions: uint64(4*n2 + 1),
	})

	// 3. Strided memory walk: 5-instruction body touching one cache
	// line per iteration (the cache-miss calibration kernel).
	n3 := int64(20_000)
	suite = append(suite, ValidationKernel{
		Name: "memwalk",
		Program: MustAssemble(`
  movi r2, 0
loop:
  load r3, [r2]
  iadd r2, r2, 64
  iadd r0, r0, 1
  cmp r0, r1
  jne loop
  halt
`),
		Inputs:               &VMInputs{IntRegs: map[int]int64{1: n3}},
		ExpectedInstructions: uint64(5*n3 + 2),
	})

	// 4. Pseudo-random branch pattern (the paper's "random ... jumps
	// to well known locations"): the direction follows bit 4 of a
	// multiplicative LCG computed in-kernel, defeating the 2-bit
	// predictor about half the time. Body: imul,iadd,iadd(extract via
	// add trick is impossible; use imul-based mixing),cmp,jlt,[iadd],
	// cmp,jne — we count analytically below.
	nR := int64(20_000)
	suite = append(suite, ValidationKernel{
		Name: "randbranch",
		Program: MustAssemble(`
; r2 = LCG state, r3 = mixed bit
loop:
  iadd r0, r0, 1
  imul r2, r2, 1103515245
  iadd r2, r2, 12345
  imul r3, r2, 283686952306183
  cmp r3, 0
  jlt skip
  iadd r4, r4, 1
skip:
  cmp r0, r1
  jne loop
  halt
`),
		Inputs: &VMInputs{IntRegs: map[int]int64{1: nR, 2: 42}},
		// Body is 8 instructions when the branch is taken (skip path)
		// and 9 when not; the taken count is data-dependent, so the
		// analytic count is computed by a reference execution in
		// ValidationSuite callers via the VM oracle. For the static
		// expectation we replicate the LCG here.
		ExpectedInstructions: randBranchCount(nR, 42),
	})

	// 5. Periodic branch pattern: inner conditional taken every other
	// iteration; 6-instruction body (the misprediction calibration
	// kernel: a 2-bit predictor on an alternating branch).
	n4 := int64(30_000)
	suite = append(suite, ValidationKernel{
		Name: "branchy",
		Program: MustAssemble(`
loop:
  iadd r0, r0, 1
  iadd r2, r2, 1
  cmp r2, 2
  jlt skip
  movi r2, 0
skip:
  cmp r0, r1
  jne loop
  halt
`),
		Inputs: &VMInputs{IntRegs: map[int]int64{1: n4}},
		// Body: iadd,iadd,cmp,jlt,[movi],cmp,jne. The movi executes
		// when r2 reached 2, i.e. every second iteration.
		ExpectedInstructions: uint64(6*n4 + n4/2 + 1),
	})
	return suite
}

// randBranchCount replays the randbranch kernel's control flow
// analytically: per iteration 8 instructions (iadd, imul, iadd, imul,
// cmp, jlt, cmp, jne) plus one more when the mixed value is
// non-negative, plus the final halt.
func randBranchCount(n, seed int64) uint64 {
	state := seed
	var count uint64
	for i := int64(0); i < n; i++ {
		state = state*1103515245 + 12345
		mixed := state * 283686952306183
		count += 8
		if mixed >= 0 {
			count++ // the skipped-over iadd executes
		}
	}
	return count + 1 // halt
}

// Runner adapts a VM to the workload.Runner interface so micro-kernels
// can be scheduled as tasks of the simulated machine and observed by
// tiptop like any other process.
type Runner struct {
	name string
	vm   *VM
}

var _ workload.Runner = (*Runner)(nil)

// NewRunner wraps an assembled, initialized VM.
func NewRunner(name string, prog *Program, inputs *VMInputs, m *machine.Machine) (*Runner, error) {
	vm, err := NewVM(prog, m)
	if err != nil {
		return nil, err
	}
	if inputs != nil {
		inputs.Apply(vm)
	}
	return &Runner{name: name, vm: vm}, nil
}

// Name implements workload.Runner.
func (r *Runner) Name() string { return r.name }

// Done implements workload.Runner.
func (r *Runner) Done() bool { return r.vm.Done() }

// VM exposes the underlying machine for oracle reads.
func (r *Runner) VM() *VM { return r.vm }

// Exec implements workload.Runner. Micro-kernels are cache-resident and
// single-threaded, so the contention context does not alter their
// behaviour; the VM's own hierarchy and predictor govern the timing.
func (r *Runner) Exec(_ cpu.Context, budgetCycles uint64) cpu.Delta {
	return r.vm.RunCycles(budgetCycles)
}
