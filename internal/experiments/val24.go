package experiments

import (
	"fmt"
	"math"
	"time"

	"tiptop/internal/hpm"
	"tiptop/internal/metrics"
	"tiptop/internal/sim/machine"
	"tiptop/internal/ukernel"
)

// RunValidation regenerates the §2.4 validation: the instruction counts
// measured through the full tiptop path (virtual PMU -> perf-style reads
// -> engine deltas) are compared against two oracles, exactly as the
// paper compares tiptop against analytic micro-kernel counts and Pin's
// inscount2:
//
//  1. the analytic count of each hand-crafted micro-kernel, and
//  2. the VM's architecturally exact retire count (the Pin stand-in).
//
// A second pass repeats the measurement on the 4-counter Core 2 machine
// with more events than counters, quantifying the additional error
// introduced by time-multiplex scaling.
func RunValidation(cfg Config) (*Result, error) {
	cfg = cfg.normalized()
	res := newResult("val24", "Section 2.4: instruction-count validation")

	exactScreen := metrics.DefaultScreen()
	// A wide screen forcing multiplexing on machines with few counters.
	wide := &metrics.Screen{
		Name: "wide",
		Columns: []*metrics.Column{
			{Name: "ipc", Header: "IPC", Width: 6, Format: "%6.2f",
				Expr: metrics.MustCompile("ratio(INSTRUCTIONS, CYCLES)")},
			{Name: "aux", Header: "AUX", Width: 6, Format: "%6.2f",
				Expr: metrics.MustCompile("LOADS + STORES + BRANCHES + BRANCH_MISSES + CACHE_REFERENCES + CACHE_MISSES")},
		},
	}

	measure := func(m *machine.Machine, screen *metrics.Screen, k ukernel.ValidationKernel) (measured uint64, oracle uint64, err error) {
		kern := newKernel(m, cfg)
		runner, err := ukernel.NewRunner(k.Name, k.Program, k.Inputs, m)
		if err != nil {
			return 0, 0, err
		}
		kern.Spawn("user", k.Name, runner, nil)
		s, err := simSession(kern, screen, 100*time.Millisecond, "cpu", cfg.Parallelism)
		if err != nil {
			return 0, 0, err
		}
		defer s.Close()
		var instr uint64
		err = monitorUntilDone(s, kern, 1_000_000, func(_ int, sample *coreSample) {
			if row := rowByComm(sample, k.Name); row != nil && row.Valid {
				instr += row.Events[hpm.EventInstructions]
			}
		})
		if err != nil {
			return 0, 0, err
		}
		return instr, runner.VM().Counts().Instructions, nil
	}

	table := &Table{
		Title:  "Instruction counts: tiptop vs analytic vs VM oracle (exact counters)",
		Header: []string{"kernel", "analytic", "oracle", "tiptop", "error vs oracle"},
	}
	var worst float64
	for _, k := range ukernel.ValidationSuite() {
		got, oracle, err := measure(machine.XeonW3550(), exactScreen, k)
		if err != nil {
			return nil, err
		}
		if oracle != k.ExpectedInstructions {
			return nil, fmt.Errorf("val24: %s oracle %d != analytic %d", k.Name, oracle, k.ExpectedInstructions)
		}
		errPct := 100 * math.Abs(float64(got)-float64(oracle)) / float64(oracle)
		if errPct > worst {
			worst = errPct
		}
		table.Rows = append(table.Rows, []string{
			k.Name,
			fmt.Sprint(k.ExpectedInstructions),
			fmt.Sprint(oracle),
			fmt.Sprint(got),
			fmt.Sprintf("%.4f%%", errPct),
		})
		res.Metrics["err_"+k.Name] = errPct
	}
	res.Tables = append(res.Tables, table)
	res.Metrics["worst_error_pct"] = worst

	// Multiplexed pass: 8 events on the 4-counter Core 2.
	muxTable := &Table{
		Title:  "Instruction counts under counter multiplexing (8 events, 4 counters)",
		Header: []string{"kernel", "oracle", "tiptop (scaled)", "error"},
	}
	var worstMux float64
	for _, k := range ukernel.ValidationSuite() {
		got, oracle, err := measure(machine.Core2(), wide, k)
		if err != nil {
			return nil, err
		}
		errPct := 100 * math.Abs(float64(got)-float64(oracle)) / float64(oracle)
		if errPct > worstMux {
			worstMux = errPct
		}
		muxTable.Rows = append(muxTable.Rows, []string{
			k.Name, fmt.Sprint(oracle), fmt.Sprint(got), fmt.Sprintf("%.2f%%", errPct),
		})
		res.Metrics["mux_err_"+k.Name] = errPct
	}
	res.Tables = append(res.Tables, muxTable)
	res.Metrics["worst_mux_error_pct"] = worstMux

	res.notef("paper: tiptop within 0.06%% of Pin's count on average (SPEC 2006)")
	res.notef("measured: worst error vs VM oracle %.4f%% with exact counters; %.2f%% under 2x multiplexing",
		worst, worstMux)
	return res, nil
}
