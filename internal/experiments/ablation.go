package experiments

import (
	"fmt"
	"time"

	"tiptop/internal/sim/machine"
	"tiptop/internal/sim/sched"
	"tiptop/internal/sim/workload"
	"tiptop/internal/ukernel"
)

// Ablations quantify the design choices DESIGN.md calls out: which
// simulator mechanisms carry the paper's results.

// AblationContention measures the Figure 11 three-copy mcf slowdown with
// the shared-cache contention model enabled and disabled. Without it the
// co-run effect vanishes — demonstrating the fixed-point capacity model
// is the load-bearing mechanism of §3.4.
func AblationContention(cfg Config) (withSharing, withoutSharing float64, err error) {
	cfg = cfg.normalized()
	run := func(disable bool, copies int) (float64, error) {
		k, err := sched.New(machine.XeonW3550(), sched.Options{
			Quantum:             cfg.Quantum,
			DisableCacheSharing: disable,
		})
		if err != nil {
			return 0, err
		}
		var first *sched.Task
		for i := 0; i < copies; i++ {
			w := workload.Scaled(workload.MCF(), cfg.Scale)
			t := k.Spawn("u", "mcf", workload.MustInstance(w, cfg.Seed+int64(i)),
				machine.MaskOf(machine.CPUID(i)))
			if i == 0 {
				first = t
			}
		}
		k.Advance(400 * time.Duration(float64(time.Second)*cfg.Scale*50))
		tot := first.Totals()
		if tot.Cycles == 0 {
			return 0, fmt.Errorf("ablation: no cycles")
		}
		return float64(tot.Instructions) / float64(tot.Cycles), nil
	}
	measure := func(disable bool) (float64, error) {
		solo, err := run(disable, 1)
		if err != nil {
			return 0, err
		}
		three, err := run(disable, 3)
		if err != nil {
			return 0, err
		}
		return 100 * (1 - three/solo), nil
	}
	if withSharing, err = measure(false); err != nil {
		return 0, 0, err
	}
	if withoutSharing, err = measure(true); err != nil {
		return 0, 0, err
	}
	return withSharing, withoutSharing, nil
}

// AblationAssistPenalty sweeps the micro-code FP-assist penalty and
// returns the Table 1 slowdown factor at each value. The paper's 87x
// pins the penalty near 264 cycles; the sweep shows the calibration is a
// single interpretable knob, not an overfit.
func AblationAssistPenalty(penalties []int) (map[int]float64, error) {
	out := make(map[int]float64, len(penalties))
	for _, p := range penalties {
		m := machine.XeonW3550()
		m.FPAssistPenalty = p
		ipcOf := func(vals ukernel.FPValues) (float64, error) {
			prog, inputs := ukernel.FPMicroKernel(ukernel.FPModeX87, vals, 50_000)
			vm, err := ukernel.NewVM(prog, m)
			if err != nil {
				return 0, err
			}
			inputs.Apply(vm)
			if _, err := vm.Run(0); err != nil {
				return 0, err
			}
			return vm.IPC(), nil
		}
		finite, err := ipcOf(ukernel.FPFinite)
		if err != nil {
			return nil, err
		}
		slow, err := ipcOf(ukernel.FPNaN)
		if err != nil {
			return nil, err
		}
		if p == 0 {
			// No assist mechanism: no slowdown at all.
			out[p] = finite / slow
			continue
		}
		out[p] = finite / slow
	}
	return out, nil
}
