package experiments

import (
	"fmt"
	"time"

	"tiptop/internal/hpm"
	"tiptop/internal/metrics"
	"tiptop/internal/sim/machine"
	"tiptop/internal/ukernel"
)

// RunTable1 regenerates Table 1: the four-instruction FP micro-benchmark
// of Figures 4/5 in x87 and SSE modes with finite and non-finite
// operands, *measured by tiptop* — the micro-kernel runs as a task of the
// simulated Nehalem machine and the engine's FP screen reports IPC and
// the assist rate, exactly the two columns of the paper's table.
func RunTable1(cfg Config) (*Result, error) {
	cfg = cfg.normalized()
	res := newResult("tab1", "Table 1: measured behavior of the FP micro-benchmark")

	iterations := int64(2_000_000 * cfg.Scale)
	if iterations < 20_000 {
		iterations = 20_000
	}

	type cell struct{ ipc, assistPct float64 }
	measure := func(mode ukernel.FPMode, vals ukernel.FPValues) (cell, error) {
		m := machine.XeonW3550()
		k := newKernel(m, cfg)
		prog, inputs := ukernel.FPMicroKernel(mode, vals, iterations)
		runner, err := ukernel.NewRunner("fpmicro", prog, inputs, m)
		if err != nil {
			return cell{}, err
		}
		k.Spawn("user", "fpmicro", runner, nil)
		s, err := simSession(k, metrics.FPScreen(), time.Second, "cpu", cfg.Parallelism)
		if err != nil {
			return cell{}, err
		}
		defer s.Close()

		// Accumulate counter deltas over the whole run, as the paper
		// does when it quotes a single IPC per configuration.
		var cycles, instr, assists uint64
		err = monitorUntilDone(s, k, 100000, func(_ int, sample *coreSample) {
			if row := rowByComm(sample, "fpmicro"); row != nil && row.Valid {
				cycles += row.Events[hpm.EventCycles]
				instr += row.Events[hpm.EventInstructions]
				assists += row.Events[hpm.EventFPAssist]
			}
		})
		if err != nil {
			return cell{}, err
		}
		if cycles == 0 || instr == 0 {
			return cell{}, fmt.Errorf("tab1: no events measured for %v/%v", mode, vals)
		}
		return cell{
			ipc:       float64(instr) / float64(cycles),
			assistPct: 100 * float64(assists) / float64(instr),
		}, nil
	}

	table := &Table{
		Title:  "Measured behavior of the floating point micro benchmark",
		Header: []string{"mode", "operands", "IPC", "%FP assist"},
	}
	configs := []struct {
		mode ukernel.FPMode
		vals ukernel.FPValues
	}{
		{ukernel.FPModeX87, ukernel.FPFinite},
		{ukernel.FPModeX87, ukernel.FPInfinite},
		{ukernel.FPModeX87, ukernel.FPNaN},
		{ukernel.FPModeSSE, ukernel.FPFinite},
		{ukernel.FPModeSSE, ukernel.FPInfinite},
		{ukernel.FPModeSSE, ukernel.FPNaN},
	}
	cells := map[string]cell{}
	for _, c := range configs {
		got, err := measure(c.mode, c.vals)
		if err != nil {
			return nil, err
		}
		key := fmt.Sprintf("%v/%v", c.mode, c.vals)
		cells[key] = got
		table.Rows = append(table.Rows, []string{
			c.mode.String(), c.vals.String(),
			fmt.Sprintf("%.3f", got.ipc),
			fmt.Sprintf("%.1f%%", got.assistPct),
		})
		res.Metrics["ipc_"+key] = got.ipc
		res.Metrics["assist_"+key] = got.assistPct
	}
	res.Tables = append(res.Tables, table)

	slowdown := cells["x87/finite"].ipc / cells["x87/NaN"].ipc
	res.Metrics["x87_slowdown"] = slowdown
	res.notef("paper: x87 finite IPC 1.33, non-finite 0.015 (25%% assists), slowdown 87x")
	res.notef("measured: x87 finite IPC %.2f, NaN %.4f (%.0f%% assists), slowdown %.0fx",
		cells["x87/finite"].ipc, cells["x87/NaN"].ipc,
		cells["x87/NaN"].assistPct, slowdown)
	res.notef("paper: SSE IPC 1.33 in all operand classes, 0%% assists")
	res.notef("measured: SSE finite %.2f, inf %.2f, NaN %.2f, assists all 0%%",
		cells["SSE/finite"].ipc, cells["SSE/infinite"].ipc, cells["SSE/NaN"].ipc)
	return res, nil
}
