package experiments

import (
	"fmt"
	"time"

	"tiptop/internal/metrics"
	"tiptop/internal/sim/machine"
	"tiptop/internal/sim/sched"
	"tiptop/internal/sim/workload"
	"tiptop/internal/trace"
)

// RunFig11 regenerates Figure 11, the controlled §3.4 interference
// experiment on the quad-core Nehalem:
//
//	(a) IPC of 429.mcf with 1, 2, 3 copies pinned to distinct physical
//	    cores (taskset), showing up to ~30 % slowdown at 3 copies while
//	    %CPU stays above 99 %;
//	(b) last-level cache misses per 100 instructions for the same runs,
//	    rising with each extra copy;
//	(c) the machine topology, as hwloc renders it;
//	(d) two copies on the *same* physical core (logical CPUs 0 and 4):
//	    L3 misses stay similar to the separate-core case but L2 misses
//	    explode, roughly halving throughput.
func RunFig11(cfg Config) (*Result, error) {
	cfg = cfg.normalized()
	res := newResult("fig11", "Figure 11: cross-core interferences for 429.mcf")

	m := machine.XeonW3550()
	interval := 5 * time.Second

	type runOut struct {
		ipc, dmis, l2m, l3m *trace.Series
		minCPU              float64
		samples             int
	}
	// corun runs `copies` instances pinned to the given CPUs and traces
	// the first copy.
	corun := func(cpus []machine.CPUID) (runOut, error) {
		k := newKernel(m, cfg)
		var first *sched.Task
		for i, cpu := range cpus {
			w := workload.Scaled(workload.MCF(), cfg.Scale)
			task := k.Spawn("user", fmt.Sprintf("mcf.%d", i), workload.MustInstance(w, cfg.Seed+int64(i)),
				machine.MaskOf(cpu))
			if i == 0 {
				first = task
			}
		}
		s, err := simSession(k, metrics.MemoryScreen(), interval, "cpu", cfg.Parallelism)
		if err != nil {
			return runOut{}, err
		}
		defer s.Close()
		out := runOut{
			ipc:    &trace.Series{Name: fmt.Sprintf("%d run(s)", len(cpus))},
			dmis:   &trace.Series{Name: fmt.Sprintf("%d run(s)", len(cpus))},
			l2m:    &trace.Series{Name: fmt.Sprintf("L2 - %d run(s)", len(cpus))},
			l3m:    &trace.Series{Name: fmt.Sprintf("L3 - %d run(s)", len(cpus))},
			minCPU: 200,
		}
		firstComm := "mcf.0"
		err = monitorUntilDone(s, k, 100000, func(i int, sample *coreSample) {
			row := rowByComm(sample, firstComm)
			if row == nil || !row.Valid || row.IPC() == 0 {
				return
			}
			out.ipc.Add(float64(i), row.IPC())
			// MemoryScreen columns: ipc, lpi, l2m, l3m.
			out.l2m.Add(float64(i), row.Values[2])
			out.l3m.Add(float64(i), row.Values[3])
			out.dmis.Add(float64(i), row.Values[3])
			if i > 0 && first.State() == sched.TaskRunnable && row.CPUPct < out.minCPU {
				out.minCPU = row.CPUPct
			}
			out.samples = i + 1
		})
		return out, err
	}

	// (a)+(b): 1, 2, 3 copies on distinct physical cores.
	plotA := trace.NewPlot("Figure 11 (a): IPC of mcf, co-running copies on distinct cores", "sample (5s/tick)", "IPC")
	plotB := trace.NewPlot("Figure 11 (b): LLC misses per 100 instructions", "sample (5s/tick)", "misses/100instr")
	var sep []runOut
	for copies := 1; copies <= 3; copies++ {
		cpus := make([]machine.CPUID, copies)
		for i := range cpus {
			cpus[i] = machine.CPUID(i)
		}
		out, err := corun(cpus)
		if err != nil {
			return nil, err
		}
		sep = append(sep, out)
		plotA.Series = append(plotA.Series, out.ipc)
		plotB.Series = append(plotB.Series, out.dmis)
		res.Metrics[fmt.Sprintf("ipc_%druns", copies)] = out.ipc.MeanY()
		res.Metrics[fmt.Sprintf("dmis_%druns", copies)] = out.dmis.MeanY()
		res.Metrics[fmt.Sprintf("min_cpu_%druns", copies)] = out.minCPU
	}

	// (d): two copies on SMT siblings of core 0 (logical CPUs 0 and 4).
	sameCore, err := corun([]machine.CPUID{0, 4})
	if err != nil {
		return nil, err
	}
	plotD := trace.NewPlot("Figure 11 (d): L2/L3 misses per 100 instructions, same physical core", "sample (5s/tick)", "misses/100instr")
	oneL2 := sep[0].l2m
	oneL2.Name = "L2 - 1 run"
	oneL3 := sep[0].l3m
	oneL3.Name = "L3 - 1 run"
	sameL2 := sameCore.l2m
	sameL2.Name = "L2 - 2 runs same core"
	sameL3 := sameCore.l3m
	sameL3.Name = "L3 - 2 runs same core"
	plotD.Series = append(plotD.Series, oneL3, oneL2, sameL3, sameL2)

	res.Plots = append(res.Plots, plotA, plotB, plotD)

	// (c): topology art.
	res.Tables = append(res.Tables, &Table{
		Title:  "Figure 11 (c): machine topology (hwloc-style)",
		Header: []string{m.RenderTopology()},
	})

	// Headline numbers.
	slow3 := 1 - res.Metrics["ipc_3runs"]/res.Metrics["ipc_1runs"]
	res.Metrics["slowdown_3runs_pct"] = 100 * slow3
	res.Metrics["l2_1run"] = sep[0].l2m.MeanY()
	res.Metrics["l2_samecore"] = sameCore.l2m.MeanY()
	res.Metrics["l3_1run"] = sep[0].l3m.MeanY()
	res.Metrics["l3_2runs"] = sep[1].l3m.MeanY()
	res.Metrics["l3_samecore"] = sameCore.l3m.MeanY()
	res.Metrics["ipc_samecore"] = sameCore.ipc.MeanY()
	sameSlow := res.Metrics["ipc_2runs"] / res.Metrics["ipc_samecore"]
	res.Metrics["samecore_slowdown_x"] = sameSlow

	res.notef("paper: up to 30%% slowdown at 3 copies with CPU usage above 99.3%%; LLC misses/100instr rise with copies; same-core L2 misses increase dramatically causing ~2x slowdown while L3 misses stay similar")
	res.notef("measured: IPC 1/2/3 copies %.2f/%.2f/%.2f (3-copy slowdown %.0f%%); DMIS %.1f/%.1f/%.1f; same-core IPC %.2f = %.2fx vs separate cores; L2 misses %.1f -> %.1f, L3 misses %.1f same-core vs %.1f separate (similar, as the paper observes)",
		res.Metrics["ipc_1runs"], res.Metrics["ipc_2runs"], res.Metrics["ipc_3runs"],
		res.Metrics["slowdown_3runs_pct"],
		res.Metrics["dmis_1runs"], res.Metrics["dmis_2runs"], res.Metrics["dmis_3runs"],
		res.Metrics["ipc_samecore"], sameSlow,
		res.Metrics["l2_1run"], res.Metrics["l2_samecore"],
		res.Metrics["l3_samecore"], res.Metrics["l3_2runs"])
	return res, nil
}
