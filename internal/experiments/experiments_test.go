package experiments

import (
	"math"
	"strings"
	"testing"
)

func runExp(t *testing.T, id string) *Result {
	t.Helper()
	e, ok := Get(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	res, err := e.Run(DefaultConfig())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	for _, n := range res.Notes {
		t.Log(n)
	}
	return res
}

func within(t *testing.T, name string, got, lo, hi float64) {
	t.Helper()
	if math.IsNaN(got) || got < lo || got > hi {
		t.Errorf("%s = %v, want in [%v, %v]", name, got, lo, hi)
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 11 {
		t.Fatalf("experiments = %d, want 11 (every table and figure)", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := Get("nope"); ok {
		t.Fatal("phantom experiment")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:  "t",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"x", "1"}, {"yyyy", "2"}},
	}
	out := tab.Render()
	if !strings.Contains(out, "long-header") || !strings.Contains(out, "yyyy") {
		t.Fatalf("render: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
}

func TestTable1Shape(t *testing.T) {
	res := runExp(t, "tab1")
	// Paper Table 1: finite IPC 1.33 on both ISAs.
	within(t, "x87 finite IPC", res.Metrics["ipc_x87/finite"], 1.28, 1.38)
	within(t, "SSE finite IPC", res.Metrics["ipc_SSE/finite"], 1.28, 1.38)
	within(t, "SSE NaN IPC", res.Metrics["ipc_SSE/NaN"], 1.28, 1.38)
	within(t, "SSE inf IPC", res.Metrics["ipc_SSE/infinite"], 1.28, 1.38)
	// Non-finite x87: IPC ~0.015, 25 % assists, ~87x slowdown.
	within(t, "x87 NaN IPC", res.Metrics["ipc_x87/NaN"], 0.010, 0.022)
	within(t, "x87 inf IPC", res.Metrics["ipc_x87/infinite"], 0.010, 0.022)
	within(t, "x87 NaN assist%", res.Metrics["assist_x87/NaN"], 23, 27)
	within(t, "x87 slowdown", res.Metrics["x87_slowdown"], 70, 105)
	if res.Metrics["assist_SSE/NaN"] != 0 {
		t.Error("SSE must never assist")
	}
}

func TestFig3Shape(t *testing.T) {
	res := runExp(t, "fig3")
	samplesA := res.Metrics["samples_a"]
	if samplesA < 30 {
		t.Fatalf("run (a) too short: %v samples", samplesA)
	}
	// Drop location: 953 healthy of 3324 total ticks -> ~29 %.
	within(t, "drop position fraction", res.Metrics["drop_sample"]/samplesA, 0.15, 0.45)
	within(t, "IPC before drop", res.Metrics["ipc_before"], 0.85, 1.15)
	within(t, "IPC after drop", res.Metrics["ipc_after"], 0.005, 0.08)
	// Assists appear exactly at the drop (panel c).
	within(t, "assists before", res.Metrics["assist_before"], 0, 0.1)
	if res.Metrics["assist_after"] < 1 {
		t.Errorf("assists after drop = %v, want substantial", res.Metrics["assist_after"])
	}
	// Speedups: paper 2.3x total, 4.8x on the faulty part.
	within(t, "total speedup", res.Metrics["speedup_total"], 1.7, 3.0)
	within(t, "faulty-part speedup", res.Metrics["speedup_faulty"], 3.0, 7.0)
	// PPC970: no collapse, lower IPC, longer run.
	within(t, "PPC mean IPC", res.Metrics["ppc_ipc_mean"], 0.3, 0.8)
	if res.Metrics["ppc_min_over_mean"] < 0.3 {
		t.Errorf("PPC970 shows a collapse: min/mean = %v", res.Metrics["ppc_min_over_mean"])
	}
	if res.Metrics["samples_d"] <= res.Metrics["samples_b"] {
		t.Error("PPC970 run must be longer than the clipped Nehalem run")
	}
	if len(res.Plots) != 4 {
		t.Fatalf("plots = %d, want 4 panels", len(res.Plots))
	}
}

func TestFig6Shape(t *testing.T) {
	res := runExp(t, "fig6")
	for _, bench := range []string{"429.mcf", "473.astar"} {
		neh := res.Metrics["ipc_"+bench+"_Nehalem"]
		core := res.Metrics["ipc_"+bench+"_Core"]
		ppc := res.Metrics["ipc_"+bench+"_PPC970"]
		if !(neh > core && core > ppc) {
			t.Errorf("%s IPC ordering: Nehalem %.2f, Core %.2f, PPC970 %.2f", bench, neh, core, ppc)
		}
		// PPC970 takes the longest (lower frequency and IPC).
		if res.Metrics["samples_"+bench+"_PPC970"] <= res.Metrics["samples_"+bench+"_Nehalem"] {
			t.Errorf("%s: PPC970 must run longest", bench)
		}
	}
	// mcf is the memory-bound one: clearly lower IPC than astar.
	if res.Metrics["ipc_429.mcf_Nehalem"] >= res.Metrics["ipc_473.astar_Nehalem"] {
		t.Error("mcf must have lower IPC than astar on Nehalem")
	}
}

func TestFig7Shape(t *testing.T) {
	res := runExp(t, "fig7")
	// gromacs is compute-bound with high IPC; bwaves lower.
	within(t, "gromacs Nehalem IPC", res.Metrics["ipc_435.gromacs_Nehalem"], 1.5, 2.0)
	within(t, "bwaves Nehalem IPC", res.Metrics["ipc_410.bwaves_Nehalem"], 0.9, 1.4)
}

func TestFig8Shape(t *testing.T) {
	res := runExp(t, "fig8")
	// The two Intel machines execute the same binary: identical totals.
	if diff := math.Abs(res.Metrics["intel_total_rel_diff"]); diff > 0.01 {
		t.Errorf("Intel instruction totals differ by %.2f%%", diff*100)
	}
	if res.Metrics["instr_M_Nehalem"] <= 0 {
		t.Fatal("no instructions recorded")
	}
	// The PowerPC "slightly shifts" (different ISA: we model it as a
	// small constant offset through CPIScale; totals need not match).
	if res.Metrics["instr_M_PPC970"] <= 0 {
		t.Fatal("PPC970 trace missing")
	}
}

func TestFig9Shape(t *testing.T) {
	res := runExp(t, "fig9")
	// (a) hmmer: gcc higher IPC AND faster.
	if !(res.Metrics["ipc_a_hmmer_gcc"] > res.Metrics["ipc_a_hmmer_icc"]) {
		t.Error("hmmer: gcc IPC must exceed icc")
	}
	if !(res.Metrics["time_a_hmmer_gcc"] < res.Metrics["time_a_hmmer_icc"]) {
		t.Error("hmmer: gcc must finish first")
	}
	// (b) sphinx3: icc lower IPC yet faster.
	if !(res.Metrics["ipc_b_sphinx3_icc"] < res.Metrics["ipc_b_sphinx3_gcc"]) {
		t.Error("sphinx3: icc IPC must be lower")
	}
	if !(res.Metrics["time_b_sphinx3_icc"] < res.Metrics["time_b_sphinx3_gcc"]) {
		t.Error("sphinx3: icc must finish first despite lower IPC")
	}
	// (c) h264ref: inversion between phases.
	if !(res.Metrics["h264_phase1_gcc"] > res.Metrics["h264_phase1_icc"]) {
		t.Error("h264ref phase 1: gcc must lead")
	}
	if !(res.Metrics["h264_phase2_gcc"] < res.Metrics["h264_phase2_icc"]) {
		t.Error("h264ref phase 2: icc must lead (inversion)")
	}
	// (d) milc: same time (2 %), persistent IPC gap.
	tg, ti := res.Metrics["time_d_milc_gcc"], res.Metrics["time_d_milc_icc"]
	if math.Abs(tg-ti)/ti > 0.06 {
		t.Errorf("milc: run times must match: %v vs %v", tg, ti)
	}
	if !(res.Metrics["ipc_d_milc_gcc"] > res.Metrics["ipc_d_milc_icc"]*1.05) {
		t.Error("milc: gcc IPC must be consistently higher")
	}
}

func TestFig1Shape(t *testing.T) {
	res := runExp(t, "fig1")
	if res.Metrics["rows"] != 11 {
		t.Fatalf("rows = %v, want 11 processes", res.Metrics["rows"])
	}
	// IPC values near the paper's snapshot (loose: co-residency on the
	// 16-logical-core node shifts them a little).
	// The displayed IPCs sit below the solo calibration targets because
	// 11 jobs on 8 physical cores force SMT co-residency, as on the real
	// node behind the paper's snapshot.
	within(t, "process1 IPC", res.Metrics["ipc_process1"], 1.3, 2.3)
	within(t, "process4 IPC", res.Metrics["ipc_process4"], 1.6, 2.7)
	within(t, "process6 IPC", res.Metrics["ipc_process6"], 0.4, 0.95)
	// The memory-bound job is the only one with a visible miss rate.
	if res.Metrics["dmis_process6"] < 0.3 {
		t.Errorf("process6 DMIS = %v, want >= 0.3", res.Metrics["dmis_process6"])
	}
	if res.Metrics["dmis_process1"] > 0.2 {
		t.Errorf("process1 DMIS = %v, want ~0", res.Metrics["dmis_process1"])
	}
	// The interactive job shows ~43.7 % CPU; everything else ~100 %.
	within(t, "process11 %CPU", res.Metrics["cpu_process11"], 36, 52)
	within(t, "process1 %CPU", res.Metrics["cpu_process1"], 97, 101)
}

func TestFig10Shape(t *testing.T) {
	res := runExp(t, "fig10")
	// Both user1 jobs slow down noticeably during the overlap...
	within(t, "u1job1 drop %", res.Metrics["drop_pct_u1job1"], 5, 40)
	within(t, "u1job2 drop %", res.Metrics["drop_pct_u1job2"], 5, 40)
	// ...and recover afterwards.
	for _, job := range []string{"u1job1", "u1job2"} {
		before, after := res.Metrics["before_"+job], res.Metrics["after_"+job]
		if math.Abs(before-after)/before > 0.12 {
			t.Errorf("%s must recover: before %.2f, after %.2f", job, before, after)
		}
		if res.Metrics["during_"+job] >= before {
			t.Errorf("%s must dip during overlap", job)
		}
	}
	// The whole point of §3.4: CPU usage never reveals the conflict.
	if res.Metrics["min_cpu_pct"] < 99 {
		t.Errorf("min %%CPU = %v, must stay above 99", res.Metrics["min_cpu_pct"])
	}
}

func TestFig11Shape(t *testing.T) {
	res := runExp(t, "fig11")
	// (a) IPC decreases with each added copy; up to ~30 % at 3 copies.
	if !(res.Metrics["ipc_1runs"] > res.Metrics["ipc_2runs"] &&
		res.Metrics["ipc_2runs"] > res.Metrics["ipc_3runs"]) {
		t.Errorf("IPC must fall with copies: %.2f/%.2f/%.2f",
			res.Metrics["ipc_1runs"], res.Metrics["ipc_2runs"], res.Metrics["ipc_3runs"])
	}
	within(t, "3-copy slowdown %", res.Metrics["slowdown_3runs_pct"], 8, 45)
	// CPU usage stays maximal in every configuration.
	for _, k := range []string{"min_cpu_1runs", "min_cpu_2runs", "min_cpu_3runs"} {
		if res.Metrics[k] < 99 {
			t.Errorf("%s = %v, want >= 99", k, res.Metrics[k])
		}
	}
	// (b) LLC misses rise with copies.
	if !(res.Metrics["dmis_1runs"] < res.Metrics["dmis_2runs"] &&
		res.Metrics["dmis_2runs"] < res.Metrics["dmis_3runs"]) {
		t.Errorf("DMIS must rise with copies: %.2f/%.2f/%.2f",
			res.Metrics["dmis_1runs"], res.Metrics["dmis_2runs"], res.Metrics["dmis_3runs"])
	}
	// (d) same-core: L2 explodes, L3 similar, ~2x slowdown.
	if res.Metrics["l2_samecore"] < 2.5*res.Metrics["l2_1run"] {
		t.Errorf("same-core L2 misses must increase dramatically: %.1f -> %.1f",
			res.Metrics["l2_1run"], res.Metrics["l2_samecore"])
	}
	// "the number of L3 misses is similar to having the two processes
	// on different cores": same-core vs two-separate-cores, both of
	// which share the L3 between two copies.
	if r := res.Metrics["l3_samecore"] / res.Metrics["l3_2runs"]; r < 0.6 || r > 1.5 {
		t.Errorf("same-core L3 misses must match the separate-core co-run: %.1f vs %.1f",
			res.Metrics["l3_samecore"], res.Metrics["l3_2runs"])
	}
	within(t, "same-core slowdown", res.Metrics["samecore_slowdown_x"], 1.5, 2.6)
	// L2 misses "increase dramatically" (paper: ~2.5 -> 12-18 per 100).
	if res.Metrics["l2_samecore"] < 3.5*res.Metrics["l2_1run"] {
		t.Errorf("same-core L2 explosion too small: %.1f -> %.1f",
			res.Metrics["l2_1run"], res.Metrics["l2_samecore"])
	}
	// (c) topology table present.
	found := false
	for _, tab := range res.Tables {
		if strings.Contains(tab.Header[0], "Socket#0") {
			found = true
		}
	}
	if !found {
		t.Error("topology rendering missing")
	}
}

func TestValidationShape(t *testing.T) {
	res := runExp(t, "val24")
	// Paper: within 0.06 % of Pin. Our exact-counter path is lossless.
	if res.Metrics["worst_error_pct"] > 0.06 {
		t.Errorf("worst exact-counter error = %v%%, paper bound 0.06%%",
			res.Metrics["worst_error_pct"])
	}
	// Multiplexed estimates stay within a few percent.
	if res.Metrics["worst_mux_error_pct"] > 10 {
		t.Errorf("worst multiplexed error = %v%%", res.Metrics["worst_mux_error_pct"])
	}
}

func TestPerturbationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("perturbation runs the suite 11 times")
	}
	res := runExp(t, "per25")
	overhead := res.Metrics["overhead_pct"]
	noise := res.Metrics["noise_pct"]
	// The paper's conclusion: overhead within the order of the noise.
	if overhead > noise+1.5 {
		t.Errorf("overhead %.2f%% not within noise %.2f%%", overhead, noise)
	}
	if overhead < -1.5 {
		t.Errorf("monitored runs implausibly faster: %v%%", overhead)
	}
	within(t, "instrumentation factor", res.Metrics["inscount_factor"], 1.5, 1.9)
}

func TestDeterminism(t *testing.T) {
	e, _ := Get("tab1")
	r1, err := e.Run(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Run(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range r1.Metrics {
		if r2.Metrics[k] != v {
			t.Errorf("metric %s not deterministic: %v vs %v", k, v, r2.Metrics[k])
		}
	}
}

func TestSortedKeysHelper(t *testing.T) {
	m := map[string]float64{"b": 1, "a": 2, "c": 3}
	keys := sortedKeys(m)
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Fatalf("keys = %v", keys)
	}
}
