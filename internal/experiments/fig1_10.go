package experiments

import (
	"fmt"
	"time"

	"tiptop/internal/grid"
	"tiptop/internal/metrics"
	"tiptop/internal/sim/machine"
	"tiptop/internal/sim/workload"
	"tiptop/internal/trace"
	"tiptop/internal/ui"
)

// fig1Jobs is the anonymized process roster of Figure 1: eleven
// processes of three users on a 16-logical-core bi-Xeon E5640, with the
// IPC values the paper's snapshot displays. process6 is the one
// memory-bound job (DMIS 0.9); process11 runs at 43.7 % CPU.
type fig1Job struct {
	comm string
	user string
	ipc  float64
	mem  bool // memory-hungry (visible DMIS)
	duty bool // partially idle (the 43.7 % process)
}

func fig1Roster() []fig1Job {
	return []fig1Job{
		{"process1", "user1", 1.97, false, false},
		{"process2", "user3", 1.32, false, false},
		{"process3", "user1", 2.27, false, false},
		{"process4", "user1", 2.36, false, false},
		{"process5", "user3", 1.17, false, false},
		{"process6", "user2", 0.66, true, false},
		{"process7", "user1", 1.73, false, false},
		{"process8", "user1", 1.44, false, false},
		{"process9", "user1", 1.39, false, false},
		{"process10", "user1", 1.39, false, false},
		{"process11", "user1", 1.62, false, true},
	}
}

func fig1Runner(j fig1Job, seed int64) (workload.Runner, error) {
	spec := workload.SyntheticSpec{Name: j.comm, IPC: j.ipc}
	if j.mem {
		spec.MemRefsPKI = 300
		spec.HotBytes = 1 << 20
		spec.WarmBytes = 30 << 20
	}
	return workload.NewSpin(workload.Synthetic(spec), seed)
}

// RunFig1 regenerates Figure 1: a tiptop snapshot of a data-center node.
// Eleven grid jobs are dispatched onto the bi-Xeon E5640 node, the
// machine warms up, and one refresh of the default screen is rendered in
// the paper's layout (PID, USER, %CPU, Mcycle, Minst, IPC, DMIS,
// COMMAND), sorted by %CPU.
func RunFig1(cfg Config) (*Result, error) {
	cfg = cfg.normalized()
	res := newResult("fig1", "Figure 1: snapshot of processes on a data-center node")

	node := &grid.Node{Name: "node42", Kernel: newKernel(machine.XeonE5640x2(), cfg)}
	cluster, err := grid.NewCluster(node)
	if err != nil {
		return nil, err
	}
	if err := cluster.AddQueue(grid.Queue{Name: "batch", Priority: 1}); err != nil {
		return nil, err
	}
	for i, j := range fig1Roster() {
		r, err := fig1Runner(j, cfg.Seed+int64(i))
		if err != nil {
			return nil, err
		}
		spec := grid.JobSpec{User: j.user, Name: j.comm, Queue: "batch", Runner: r}
		if j.duty {
			// The 43.7 % process alternates compute and I/O; model
			// it by spawning with a duty cycle directly on the node.
			task, err := node.Kernel.SpawnDuty(j.user, j.comm, r, nil,
				437*time.Millisecond, time.Second)
			if err != nil {
				return nil, err
			}
			_ = task
			continue
		}
		if _, err := cluster.Submit(spec); err != nil {
			return nil, err
		}
	}

	// Let the dispatcher place everything and the caches warm up.
	cluster.Advance(30 * time.Second)

	s, err := simSession(node.Kernel, metrics.DefaultScreen(), 10*time.Second, "cpu", cfg.Parallelism)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	if _, err := s.Update(); err != nil { // attach pass
		return nil, err
	}
	s.AdvanceClock()
	sample, err := s.Update()
	if err != nil {
		return nil, err
	}

	table := &Table{
		Title:  "tiptop snapshot of node42 (refresh 10 s)",
		Header: []string{"PID", "USER", "%CPU", "Mcycle", "Minst", "IPC", "DMIS", "COMMAND"},
	}
	for i := range sample.Rows {
		row := &sample.Rows[i]
		table.Rows = append(table.Rows, []string{
			fmt.Sprint(row.Info.ID.PID),
			row.Info.User,
			fmt.Sprintf("%.1f", row.CPUPct),
			fmt.Sprintf("%.0f", row.Values[0]),
			fmt.Sprintf("%.0f", row.Values[1]),
			fmt.Sprintf("%.2f", row.Values[2]),
			fmt.Sprintf("%.1f", row.Values[3]),
			row.Info.Comm,
		})
		res.Metrics["ipc_"+row.Info.Comm] = row.Values[2]
		res.Metrics["cpu_"+row.Info.Comm] = row.CPUPct
		res.Metrics["dmis_"+row.Info.Comm] = row.Values[3]
	}
	res.Tables = append(res.Tables, table)
	res.Metrics["rows"] = float64(len(sample.Rows))

	// Also keep the batch rendering for the tool's output files.
	var sb renderBuffer
	br := &ui.BatchRenderer{W: &sb, Timestamps: true}
	if err := br.Render(s.Screen(), sample); err != nil {
		return nil, err
	}
	res.notef("paper: 11 processes of 3 users, IPC between 0.66 and 2.36, one job at 43.7%% CPU, DMIS 0.9 for the memory-bound job")
	res.notef("measured: %d rows; process1 IPC %.2f (paper 1.97); process6 IPC %.2f DMIS %.1f (paper 0.66/0.9); process11 %%CPU %.1f (paper 43.7)",
		len(sample.Rows), res.Metrics["ipc_process1"], res.Metrics["ipc_process6"],
		res.Metrics["dmis_process6"], res.Metrics["cpu_process11"])
	return res, nil
}

// renderBuffer is a minimal strings.Builder clone implementing io.Writer
// without importing strings in this file's hot path.
type renderBuffer struct{ buf []byte }

func (b *renderBuffer) Write(p []byte) (int, error) {
	b.buf = append(b.buf, p...)
	return len(p), nil
}

func (b *renderBuffer) String() string { return string(b.buf) }

// RunFig10 regenerates Figure 10, the §3.4 process-conflict study: user1
// has two long-running jobs; user2 submits five jobs that run for a
// while and leave. During the overlap, the IPC of user1's jobs drops by
// roughly 20 % through shared-L3 contention — while every job's %CPU
// stays pinned above 99 %.
func RunFig10(cfg Config) (*Result, error) {
	cfg = cfg.normalized()
	res := newResult("fig10", "Figure 10: load on one node of the data center")

	// Time layout, scaled. At full scale the paper's window is ~1000
	// ten-second ticks with a ~230-tick overlap.
	tick := 10 * time.Second
	warmTicks := intScale(200, cfg.Scale, 12)
	overlapTicks := intScale(230, cfg.Scale, 15)
	tailTicks := intScale(150, cfg.Scale, 10)
	totalTicks := warmTicks + overlapTicks + tailTicks

	node := &grid.Node{Name: "node7", Kernel: newKernel(machine.XeonE5640x2(), cfg)}
	cluster, err := grid.NewCluster(node)
	if err != nil {
		return nil, err
	}
	if err := cluster.AddQueue(grid.Queue{Name: "batch", Priority: 1}); err != nil {
		return nil, err
	}

	// The scheduler spreads user1's two jobs across the node's sockets
	// (one per 12 MB L3), so their pre-overlap IPC equals the solo
	// calibration: the paper's 1.3 and 1.0. MidProb 0.98 keeps their
	// contention-sensitive band at the ~20%% the paper's drop implies.
	user1Jobs := []workload.SyntheticSpec{
		{Name: "u1job1", IPC: 1.30, MemRefsPKI: 300, HotBytes: 1.5 * (1 << 20), WarmBytes: 10 << 20, MidProb: 0.98, Noise: 0.02},
		{Name: "u1job2", IPC: 1.00, MemRefsPKI: 330, HotBytes: 2 << 20, WarmBytes: 12 << 20, MidProb: 0.98, Noise: 0.02},
	}
	for i, spec := range user1Jobs {
		r, err := workload.NewSpin(workload.Synthetic(spec), cfg.Seed+int64(i))
		if err != nil {
			return nil, err
		}
		if _, err := cluster.Submit(grid.JobSpec{User: "user1", Name: spec.Name, Queue: "batch", Runner: r}); err != nil {
			return nil, err
		}
	}
	// user2's five memory-hungry jobs arrive after the warm window and
	// run for the overlap duration.
	overlapStart := time.Duration(warmTicks) * tick
	overlapLen := time.Duration(overlapTicks) * tick
	for i := 0; i < 5; i++ {
		w := workload.Synthetic(workload.SyntheticSpec{
			Name: fmt.Sprintf("u2job%d", i+1), IPC: 0.68,
			MemRefsPKI: 340, HotBytes: 2 << 20, WarmBytes: 24 << 20, Noise: 0.03,
		})
		// Size the job to last roughly the overlap window.
		instr := 0.68 * node.Kernel.Machine().FreqHz * overlapLen.Seconds()
		w = workload.Scaled(w, instr/float64(w.TotalInstructions()))
		r := workload.MustInstance(w, cfg.Seed+int64(100+i))
		if _, err := cluster.Submit(grid.JobSpec{
			User: "user2", Name: w.Name, Queue: "batch", Runner: r,
			SubmitAt: overlapStart,
		}); err != nil {
			return nil, err
		}
	}

	s, err := simSession(node.Kernel, metrics.DefaultScreen(), tick, "cpu", cfg.Parallelism)
	if err != nil {
		return nil, err
	}
	defer s.Close()

	plot := trace.NewPlot("Figure 10: IPC of the jobs on one node", "time (10s/tick)", "IPC")
	series := map[string]*trace.Series{}
	minCPU := 200.0
	for i := 0; i < totalTicks; i++ {
		cluster.Advance(tick)
		sample, err := s.Update()
		if err != nil {
			return nil, err
		}
		for r := range sample.Rows {
			row := &sample.Rows[r]
			if !row.Valid || row.IPC() == 0 {
				continue
			}
			sr := series[row.Info.Comm]
			if sr == nil {
				sr = plot.NewSeries(row.Info.Comm)
				series[row.Info.Comm] = sr
			}
			sr.Add(float64(i), row.IPC())
			// The %CPU invariant is tracked on the always-running
			// user1 jobs; a finishing u2 job legitimately shows a
			// partial final interval, exactly as top would.
			if i > 1 && row.CPUPct < minCPU && (row.Info.Comm == "u1job1" || row.Info.Comm == "u1job2") {
				minCPU = row.CPUPct
			}
		}
	}
	res.Plots = append(res.Plots, plot)

	// Quantify the conflict: user1's IPC before vs during the overlap.
	before := func(name string) float64 {
		return series[name].WindowMeanY(2, float64(warmTicks))
	}
	during := func(name string) float64 {
		return series[name].WindowMeanY(float64(warmTicks+2), float64(warmTicks+overlapTicks))
	}
	after := func(name string) float64 {
		return series[name].WindowMeanY(float64(warmTicks+overlapTicks+3), float64(totalTicks))
	}
	for _, name := range []string{"u1job1", "u1job2"} {
		b, d, a := before(name), during(name), after(name)
		res.Metrics["before_"+name] = b
		res.Metrics["during_"+name] = d
		res.Metrics["after_"+name] = a
		if b > 0 {
			res.Metrics["drop_pct_"+name] = 100 * (b - d) / b
		}
	}
	res.Metrics["min_cpu_pct"] = minCPU
	res.Metrics["u2_mean_ipc"] = series["u2job1"].MeanY()

	res.notef("paper: user1's jobs drop from 1.3 to 1.05 and 1.0 to 0.8 (~20%%) while user2's five jobs run; CPU usage stays above 99.3%% throughout")
	res.notef("measured: u1job1 %.2f -> %.2f (drop %.0f%%), u1job2 %.2f -> %.2f (drop %.0f%%), recovery to %.2f/%.2f; min %%CPU %.1f",
		res.Metrics["before_u1job1"], res.Metrics["during_u1job1"], res.Metrics["drop_pct_u1job1"],
		res.Metrics["before_u1job2"], res.Metrics["during_u1job2"], res.Metrics["drop_pct_u1job2"],
		res.Metrics["after_u1job1"], res.Metrics["after_u1job2"], minCPU)
	return res, nil
}

// intScale scales a full-size tick count, with a floor keeping the
// windows meaningful at tiny test scales.
func intScale(full int, scale float64, floor int) int {
	n := int(float64(full) * scale)
	if n < floor {
		n = floor
	}
	return n
}
