package experiments

import (
	"fmt"
	"time"

	"tiptop/internal/hpm"
	"tiptop/internal/metrics"
	"tiptop/internal/phase"
	"tiptop/internal/sim/machine"
	"tiptop/internal/sim/workload"
	"tiptop/internal/trace"
)

// phaseTrace runs one workload solo on one machine, sampled by tiptop at
// the given interval, and returns (IPC series over sample index, series
// of IPC over cumulative instructions in millions, total samples).
func phaseTrace(cfg Config, m *machine.Machine, w *workload.Workload, interval time.Duration, seed int64) (*trace.Series, *trace.Series, int, error) {
	k := newKernel(m, cfg)
	k.Spawn("user", w.Name, workload.MustInstance(workload.Scaled(w, cfg.Scale), seed), nil)
	s, err := simSession(k, metrics.DefaultScreen(), interval, "cpu", cfg.Parallelism)
	if err != nil {
		return nil, nil, 0, err
	}
	defer s.Close()
	byTime := &trace.Series{Name: w.Name}
	byInstr := &trace.Series{Name: w.Name}
	var cumInstr float64
	samples := 0
	err = monitorUntilDone(s, k, 500_000, func(i int, sample *coreSample) {
		row := rowByComm(sample, w.Name)
		if row == nil || !row.Valid {
			return
		}
		ipc := row.IPC()
		if ipc == 0 {
			return
		}
		cumInstr += float64(row.Events[hpm.EventInstructions])
		byTime.Add(float64(i), ipc)
		byInstr.Add(cumInstr/1e6, ipc)
		samples = i + 1
	})
	return byTime, byInstr, samples, err
}

// machineSet is the three platforms of Figures 6–8.
func machineSet() []*machine.Machine {
	return []*machine.Machine{machine.XeonW3550(), machine.Core2(), machine.PPC970()}
}

// runPhaseFigure drives one Figure 6/7 panel: one workload on the three
// machines.
func runPhaseFigure(cfg Config, res *Result, w *workload.Workload, interval time.Duration) error {
	plot := trace.NewPlot(fmt.Sprintf("IPC of %s", w.Name), "sample (1s/tick)", "IPC")
	for _, m := range machineSet() {
		byTime, _, samples, err := phaseTrace(cfg, m, w, interval, cfg.Seed)
		if err != nil {
			return err
		}
		byTime.Name = m.MicroArch
		plot.Series = append(plot.Series, byTime)
		key := fmt.Sprintf("%s_%s", w.Name, m.MicroArch)
		res.Metrics["ipc_"+key] = byTime.MeanY()
		res.Metrics["samples_"+key] = float64(samples)
	}
	res.Plots = append(res.Plots, plot)
	return nil
}

// RunFig6 regenerates Figure 6: IPC phase plots of 429.mcf and 473.astar
// on Nehalem, Core and PPC970 at one sample per second.
func RunFig6(cfg Config) (*Result, error) {
	cfg = cfg.normalized()
	res := newResult("fig6", "Figure 6: IPC of 429.mcf and 473.astar")
	for _, w := range []*workload.Workload{workload.MCF(), workload.Astar()} {
		if err := runPhaseFigure(cfg, res, w, time.Second); err != nil {
			return nil, err
		}
	}
	res.notef("paper: similar phase shapes across architectures, differing in IPC level and run time; PPC970 runs longest")
	res.notef("measured: mean IPC mcf %.2f/%.2f/%.2f and astar %.2f/%.2f/%.2f on Nehalem/Core/PPC970",
		res.Metrics["ipc_429.mcf_Nehalem"], res.Metrics["ipc_429.mcf_Core"], res.Metrics["ipc_429.mcf_PPC970"],
		res.Metrics["ipc_473.astar_Nehalem"], res.Metrics["ipc_473.astar_Core"], res.Metrics["ipc_473.astar_PPC970"])
	return res, nil
}

// RunFig7 regenerates Figure 7: IPC phase plots of 410.bwaves and
// 435.gromacs.
func RunFig7(cfg Config) (*Result, error) {
	cfg = cfg.normalized()
	res := newResult("fig7", "Figure 7: IPC of 410.bwaves and 435.gromacs")
	for _, w := range []*workload.Workload{workload.Bwaves(), workload.Gromacs()} {
		if err := runPhaseFigure(cfg, res, w, time.Second); err != nil {
			return nil, err
		}
	}
	res.notef("paper: gromacs shows small but noticeable variations on Nehalem; bwaves alternates solver and boundary phases")
	res.notef("measured: mean IPC bwaves %.2f and gromacs %.2f on Nehalem",
		res.Metrics["ipc_410.bwaves_Nehalem"], res.Metrics["ipc_435.gromacs_Nehalem"])
	return res, nil
}

// RunFig8 regenerates Figure 8: IPC of 473.astar as a function of the
// number of executed instructions on the three processors — the plot the
// paper proposes for picking per-platform fast-forward points in
// simulator studies.
func RunFig8(cfg Config) (*Result, error) {
	cfg = cfg.normalized()
	res := newResult("fig8", "Figure 8: IPC versus executed instructions for 473.astar")
	plot := trace.NewPlot("IPC versus executed instructions, 473.astar",
		"executed instructions (millions)", "IPC")
	w := workload.Astar()
	var totals []float64
	for _, m := range machineSet() {
		_, byInstr, _, err := phaseTrace(cfg, m, w, time.Second, cfg.Seed)
		if err != nil {
			return nil, err
		}
		byInstr.Name = m.MicroArch
		plot.Series = append(plot.Series, byInstr)
		res.Metrics["instr_M_"+m.MicroArch] = byInstr.MaxX()
		totals = append(totals, byInstr.MaxX())
	}
	res.Plots = append(res.Plots, plot)
	// Both Intel machines execute the same binary: their instruction
	// totals coincide; the PPC970 is shifted.
	rel := 0.0
	if totals[0] > 0 {
		rel = (totals[1] - totals[0]) / totals[0]
	}
	res.Metrics["intel_total_rel_diff"] = rel

	// The methodology the paper derives from this figure: pick a
	// per-platform fast-forward point (in instructions) past the
	// initialization phase, refining blind skip-1-billion conventions.
	for _, series := range plot.Series {
		xs := make([]float64, series.Len())
		ys := make([]float64, series.Len())
		for i, p := range series.Points {
			xs[i], ys[i] = p.X, p.Y
		}
		ff, err := phase.FastForward(xs, ys, 0.1)
		if err == nil {
			res.Metrics["fastforward_M_"+series.Name] = ff
		}
	}

	res.notef("paper: both Intel processors execute the same instruction stream; the PowerPC slightly shifts")
	res.notef("measured: instruction totals (M) Nehalem %.0f, Core %.0f (rel diff %.1f%%), PPC970 %.0f; suggested fast-forward points (M instr): Nehalem %.0f, Core %.0f, PPC970 %.0f",
		totals[0], totals[1], 100*rel, totals[2],
		res.Metrics["fastforward_M_Nehalem"], res.Metrics["fastforward_M_Core"], res.Metrics["fastforward_M_PPC970"])
	return res, nil
}

// RunFig9 regenerates Figure 9: the gcc-vs-icc study of §3.3. Four
// qualitative regimes, one per panel:
//
//	(a) 456.hmmer   — the higher-IPC binary is also the faster one;
//	(b) 482.sphinx3 — the lower-IPC binary is faster;
//	(c) 464.h264ref — two phases with an IPC *inversion* between the
//	                  compilers, invisible in aggregated counts;
//	(d) 433.milc    — identical run times despite a constant IPC gap.
func RunFig9(cfg Config) (*Result, error) {
	cfg = cfg.normalized()
	res := newResult("fig9", "Figure 9: IPC produced by different compilers")
	nehalem := machine.XeonW3550()

	pairs := []struct {
		panel    string
		gcc, icc *workload.Workload
	}{
		{"a_hmmer", workload.HmmerGCC(), workload.HmmerICC()},
		{"b_sphinx3", workload.Sphinx3GCC(), workload.Sphinx3ICC()},
		{"c_h264ref", workload.H264RefGCC(), workload.H264RefICC()},
		{"d_milc", workload.MilcGCC(), workload.MilcICC()},
	}
	for _, pair := range pairs {
		plot := trace.NewPlot(fmt.Sprintf("Figure 9 (%s)", pair.panel), "sample (1s/tick)", "IPC")
		for _, w := range []*workload.Workload{pair.gcc, pair.icc} {
			byTime, _, samples, err := phaseTrace(cfg, nehalem, w, time.Second, cfg.Seed)
			if err != nil {
				return nil, err
			}
			comp := "gcc"
			if w == pair.icc {
				comp = "icc"
			}
			byTime.Name = comp
			plot.Series = append(plot.Series, byTime)
			res.Metrics[fmt.Sprintf("ipc_%s_%s", pair.panel, comp)] = byTime.MeanY()
			res.Metrics[fmt.Sprintf("time_%s_%s", pair.panel, comp)] = float64(samples)
		}
		res.Plots = append(res.Plots, plot)
	}

	// The h264ref inversion: compare per-phase means of the two series.
	h264 := res.Plots[2]
	gccSeries, iccSeries := h264.Series[0], h264.Series[1]
	split := gccSeries.MaxX() * 0.18 // phase 1 is the short prefix
	res.Metrics["h264_phase1_gcc"] = gccSeries.WindowMeanY(0, split)
	res.Metrics["h264_phase1_icc"] = iccSeries.WindowMeanY(0, split)
	res.Metrics["h264_phase2_gcc"] = gccSeries.WindowMeanY(split, gccSeries.MaxX()+1)
	res.Metrics["h264_phase2_icc"] = iccSeries.WindowMeanY(split, iccSeries.MaxX()+1)

	res.notef("paper: (a) higher IPC wins; (b) lower IPC wins; (c) phase-wise IPC inversion; (d) equal times despite an IPC gap")
	res.notef("measured: hmmer gcc %.2f@%.0fs vs icc %.2f@%.0fs; sphinx3 gcc %.2f@%.0fs vs icc %.2f@%.0fs; h264 phase1 %.2f/%.2f phase2 %.2f/%.2f; milc %.2f vs %.2f at %.0f/%.0fs",
		res.Metrics["ipc_a_hmmer_gcc"], res.Metrics["time_a_hmmer_gcc"],
		res.Metrics["ipc_a_hmmer_icc"], res.Metrics["time_a_hmmer_icc"],
		res.Metrics["ipc_b_sphinx3_gcc"], res.Metrics["time_b_sphinx3_gcc"],
		res.Metrics["ipc_b_sphinx3_icc"], res.Metrics["time_b_sphinx3_icc"],
		res.Metrics["h264_phase1_gcc"], res.Metrics["h264_phase1_icc"],
		res.Metrics["h264_phase2_gcc"], res.Metrics["h264_phase2_icc"],
		res.Metrics["ipc_d_milc_gcc"], res.Metrics["ipc_d_milc_icc"],
		res.Metrics["time_d_milc_gcc"], res.Metrics["time_d_milc_icc"])
	return res, nil
}
