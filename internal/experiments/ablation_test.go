package experiments

import (
	"math"
	"testing"
)

func TestAblationContention(t *testing.T) {
	with, without, err := AblationContention(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("3-copy mcf slowdown: %.1f%% with sharing, %.1f%% without", with, without)
	if with < 8 {
		t.Errorf("with sharing, the slowdown should be substantial: %.1f%%", with)
	}
	// Without the contention model the co-run effect disappears (only
	// run-to-run noise remains).
	if math.Abs(without) > 3 {
		t.Errorf("without sharing, the slowdown should vanish: %.1f%%", without)
	}
	if with < without+5 {
		t.Errorf("the contention model must be load-bearing: %.1f%% vs %.1f%%", with, without)
	}
}

func TestAblationAssistPenalty(t *testing.T) {
	sweep, err := AblationAssistPenalty([]int{0, 64, 128, 264, 400})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("assist-penalty sweep (penalty -> slowdown): %v", sweep)
	// No mechanism: no slowdown.
	if math.Abs(sweep[0]-1) > 0.01 {
		t.Errorf("penalty 0 slowdown = %.2f, want 1", sweep[0])
	}
	// Monotone in the penalty.
	prev := 0.0
	for _, p := range []int{0, 64, 128, 264, 400} {
		if sweep[p] < prev {
			t.Errorf("slowdown must grow with penalty: %v", sweep)
		}
		prev = sweep[p]
	}
	// The calibrated 264 lands the paper's 87x.
	if sweep[264] < 80 || sweep[264] > 100 {
		t.Errorf("penalty 264 slowdown = %.0fx, want ~87x", sweep[264])
	}
	// Slowdown ~ (3 + penalty)/3: check the physics at one other point.
	want := (3.0 + 128) / 3
	if math.Abs(sweep[128]-want)/want > 0.1 {
		t.Errorf("penalty 128 slowdown = %.1f, analytic %.1f", sweep[128], want)
	}
}

func BenchmarkAblationContention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		with, without, err := AblationContention(Config{Scale: 0.01, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(with, "slowdown-with-%")
			b.ReportMetric(without, "slowdown-without-%")
		}
	}
}

func BenchmarkAblationAssistPenalty(b *testing.B) {
	var last map[int]float64
	for i := 0; i < b.N; i++ {
		sweep, err := AblationAssistPenalty([]int{128, 264})
		if err != nil {
			b.Fatal(err)
		}
		last = sweep
	}
	b.ReportMetric(last[264], "slowdown-at-264")
}
