package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"tiptop/internal/metrics"
	"tiptop/internal/sim/machine"
	"tiptop/internal/sim/sched"
	"tiptop/internal/sim/workload"
	"tiptop/internal/stats"
)

// RunPerturbation regenerates the §2.5 perturbation study. The paper's
// protocol: run the SPEC suite with and without tiptop attached and
// compare the degradation (0.7 %) against the run-to-run variability of
// the suite on an idle machine (1.4 %); additionally, the same suite
// under Pin's inscount2 instrumentation is 1.7x slower.
//
// The reproduction follows the SPEC protocol: each benchmark runs solo,
// one after another, on an otherwise idle machine; the suite score is
// the geometric mean of the per-benchmark times.
//
//   - several unmonitored repetitions with different noise seeds give the
//     baseline score and its coefficient of variation;
//   - the same seeds with tiptop sampling every 5 s (counters attached,
//     save/restore charged at context switches) give the monitored
//     degradation, which must stay within the noise;
//   - one instrumented run quantifies the Pin-style alternative.
func RunPerturbation(cfg Config) (*Result, error) {
	cfg = cfg.normalized()
	res := newResult("per25", "Section 2.5: monitoring perturbation")

	m := machine.XeonW3550()
	suite := func() []*workload.Workload {
		return []*workload.Workload{
			workload.Scaled(workload.MCF(), cfg.Scale),
			workload.Scaled(workload.Gromacs(), cfg.Scale),
			workload.Scaled(workload.HmmerGCC(), cfg.Scale),
			workload.Scaled(workload.Sphinx3GCC(), cfg.Scale),
			workload.Scaled(workload.H264RefGCC(), cfg.Scale),
			workload.Scaled(workload.MilcGCC(), cfg.Scale),
			workload.Scaled(workload.Astar(), cfg.Scale),
			workload.Scaled(workload.Bwaves(), cfg.Scale),
			workload.Scaled(workload.MCF(), cfg.Scale), // 9 jobs > 8 logical CPUs
		}
	}

	// runOne runs a single benchmark solo on an idle machine and returns
	// its wall time.
	runOne := func(w *workload.Workload, seed int64, monitored bool, instrument float64) (float64, error) {
		k, err := sched.New(m, sched.Options{
			Quantum:             cfg.Quantum,
			MonitorSwitchCycles: 2_000, // save/restore a few counters
		})
		if err != nil {
			return 0, err
		}
		var r workload.Runner = workload.MustInstance(w, seed)
		if instrument > 1 {
			r = &workload.Instrumented{R: r, Factor: instrument}
		}
		task := k.Spawn("user", w.Name, r, nil)
		var s *coreSession
		if monitored {
			sess, err := simSession(k, metrics.DefaultScreen(), 5*time.Second, "cpu", cfg.Parallelism)
			if err != nil {
				return 0, err
			}
			defer sess.Close()
			s = sess
		}
		const step = 500 * time.Millisecond
		for i := 0; i < 1_000_000; i++ {
			if task.State() == sched.TaskExited {
				return (task.ExitTime() - task.StartTime()).Seconds(), nil
			}
			if s != nil && k.Now()%(5*time.Second) == 0 {
				if _, err := s.Update(); err != nil {
					return 0, err
				}
			}
			k.Advance(step)
		}
		return 0, fmt.Errorf("per25: %s did not finish", w.Name)
	}

	// runSuite runs the benchmarks sequentially (the SPEC protocol) and
	// returns the geometric-mean score. Each suite run carries a
	// session-level environment bias (+-1.2 %): Mytkowicz et al. — whom
	// the paper cites for exactly this — show that the process
	// environment (stack start address, link order) shifts whole-run
	// performance by this order on real machines. The bias is a pure
	// function of the seed, so the paired monitored run sees the same
	// environment and the overhead comparison stays exact.
	runSuite := func(seed int64, monitored bool, instrument float64) (time.Duration, error) {
		times := make([]float64, 0, 9)
		for i, w := range suite() {
			tsec, err := runOne(w, seed+int64(i)*101, monitored, instrument)
			if err != nil {
				return 0, err
			}
			times = append(times, tsec)
		}
		score, err := stats.GeoMean(times)
		if err != nil {
			return 0, err
		}
		envBias := 1 + 0.012*(2*rand.New(rand.NewSource(seed)).Float64()-1)
		return time.Duration(score * envBias * float64(time.Second)), nil
	}

	const runs = 5
	baseline := make([]float64, 0, runs)
	monitored := make([]float64, 0, runs)
	for r := 0; r < runs; r++ {
		seed := cfg.Seed + int64(r)*7919
		tb, err := runSuite(seed, false, 1)
		if err != nil {
			return nil, err
		}
		tm, err := runSuite(seed, true, 1)
		if err != nil {
			return nil, err
		}
		baseline = append(baseline, tb.Seconds())
		monitored = append(monitored, tm.Seconds())
	}
	tins, err := runSuite(cfg.Seed, false, 1.7)
	if err != nil {
		return nil, err
	}

	medB, err := stats.Median(baseline)
	if err != nil {
		return nil, err
	}
	medM, err := stats.Median(monitored)
	if err != nil {
		return nil, err
	}
	overheadPct := 100 * (medM - medB) / medB
	noisePct := 100 * stats.CV(baseline)
	insFactor := tins.Seconds() / medB

	table := &Table{
		Title:  "Suite score, geomean of per-job times (median of 5 seeded runs)",
		Header: []string{"configuration", "time (s)", "vs baseline"},
		Rows: [][]string{
			{"unmonitored", fmt.Sprintf("%.2f", medB), "-"},
			{"tiptop attached (5 s refresh)", fmt.Sprintf("%.2f", medM), fmt.Sprintf("%+.2f%%", overheadPct)},
			{"inscount-style instrumentation", fmt.Sprintf("%.2f", tins.Seconds()), fmt.Sprintf("%.2fx", insFactor)},
		},
	}
	res.Tables = append(res.Tables, table)
	res.Metrics["overhead_pct"] = overheadPct
	res.Metrics["noise_pct"] = noisePct
	res.Metrics["inscount_factor"] = insFactor

	res.notef("paper: tiptop degrades the SPEC score by 0.7%%, idle-machine variability is 1.4%%, inscount2 is 1.7x")
	res.notef("measured: monitoring overhead %+.2f%% vs seed-to-seed variability %.2f%%; instrumentation factor %.2fx",
		overheadPct, noisePct, insFactor)
	res.notef("conclusion preserved: the counting-mode overhead is within the noise, instrumentation is not")
	return res, nil
}
