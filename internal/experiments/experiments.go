// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment builds the relevant simulated scenario,
// monitors it with the real tiptop engine (the same code path the
// command-line tool uses), and returns plots, tables, headline metrics
// and paper-vs-measured notes. cmd/tipbench renders them to files;
// bench_test.go wraps them as Go benchmarks; EXPERIMENTS.md records the
// outcomes.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"tiptop/internal/core"
	"tiptop/internal/metrics"
	"tiptop/internal/sim/machine"
	"tiptop/internal/sim/pmu"
	"tiptop/internal/sim/proc"
	"tiptop/internal/sim/sched"
	"tiptop/internal/trace"
)

// Config tunes experiment execution.
type Config struct {
	// Scale multiplies every workload's instruction counts. 1.0 is the
	// paper's full scale (hours of simulated time); tests and
	// benchmarks use small fractions — the phase *structure* is
	// preserved exactly, so every qualitative result is unaffected.
	Scale float64
	// Seed drives all simulation randomness.
	Seed int64
	// Quantum is the scheduler timeslice (default 10 ms).
	Quantum time.Duration
	// Parallelism is the engine's sampling-shard count (0 = one shard
	// per CPU, 1 = serial). Results are identical at every setting;
	// only wall-clock time changes.
	Parallelism int
}

// DefaultConfig returns the quick configuration used by tests: 2 % of
// paper scale.
func DefaultConfig() Config {
	return Config{Scale: 0.02, Seed: 1}
}

// FullConfig returns the paper-scale configuration used by cmd/tipbench
// when asked for full fidelity.
func FullConfig() Config {
	return Config{Scale: 1.0, Seed: 1}
}

func (c Config) normalized() Config {
	if c.Scale <= 0 {
		c.Scale = 0.02
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Quantum <= 0 {
		c.Quantum = 10 * time.Millisecond
	}
	return c
}

// Table is a rendered result table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Render draws the table with aligned columns.
func (t *Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Result is an experiment outcome.
type Result struct {
	ID    string
	Title string
	// Plots are the regenerated figures.
	Plots []*trace.Plot
	// Tables are the regenerated tables.
	Tables []*Table
	// Metrics are headline numbers, keyed by stable names, consumed by
	// tests and EXPERIMENTS.md.
	Metrics map[string]float64
	// Notes record paper-vs-measured comparisons, one line each.
	Notes []string
}

func newResult(id, title string) *Result {
	return &Result{ID: id, Title: title, Metrics: map[string]float64{}}
}

func (r *Result) notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Experiment is a registered table/figure driver.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) (*Result, error)
}

// All returns every experiment, in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig1", "Figure 1: snapshot of processes on a data-center node", RunFig1},
		{"tab1", "Table 1: measured behavior of the FP micro-benchmark", RunTable1},
		{"fig3", "Figure 3: IPC of the R evolutionary algorithm", RunFig3},
		{"fig6", "Figure 6: IPC of 429.mcf and 473.astar", RunFig6},
		{"fig7", "Figure 7: IPC of 410.bwaves and 435.gromacs", RunFig7},
		{"fig8", "Figure 8: IPC versus executed instructions for 473.astar", RunFig8},
		{"fig9", "Figure 9: IPC produced by different compilers", RunFig9},
		{"fig10", "Figure 10: load on one node of the data center", RunFig10},
		{"fig11", "Figure 11: cross-core interferences for 429.mcf", RunFig11},
		{"val24", "Section 2.4: instruction-count validation against the VM oracle", RunValidation},
		{"per25", "Section 2.5: monitoring perturbation", RunPerturbation},
	}
}

// Get finds an experiment by ID.
func Get(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// --- shared machinery ---

// coreSample and coreSession alias the engine types for driver callbacks.
type (
	coreSample  = core.Sample
	coreSession = core.Session
)

// simSession wires a tiptop engine onto a simulated kernel with the
// given sampling-shard count (0 = one per CPU). Exited tasks
// stay visible (like zombies with open perf descriptors) so the final
// refresh still reads the deltas of tasks that finished mid-interval.
func simSession(k *sched.Kernel, screen *metrics.Screen, interval time.Duration, sortBy string, parallelism int) (*core.Session, error) {
	src := proc.NewSource(k)
	src.IncludeExited = true
	return core.NewSession(
		pmu.New(k),
		src,
		proc.NewClock(k),
		core.Options{
			Screen:      screen,
			Interval:    interval,
			FreqHz:      k.Machine().FreqHz,
			NumCPUs:     k.Machine().NumLogical(),
			SortBy:      sortBy,
			Parallelism: parallelism,
		},
	)
}

// newKernel builds a kernel or panics (machine presets are known-valid).
func newKernel(m *machine.Machine, cfg Config) *sched.Kernel {
	k, err := sched.New(m, sched.Options{Quantum: cfg.Quantum})
	if err != nil {
		panic(err)
	}
	return k
}

// monitorUntilDone samples the session at the given interval until every
// task has exited (or maxSamples is reached), invoking cb per sample.
func monitorUntilDone(s *core.Session, k *sched.Kernel, maxSamples int, cb func(int, *core.Sample)) error {
	for i := 0; i < maxSamples; i++ {
		sample, err := s.Update()
		if err != nil {
			return err
		}
		if cb != nil {
			cb(i, sample)
		}
		alive := false
		for _, t := range k.Tasks() {
			if t.State() != sched.TaskExited {
				alive = true
				break
			}
		}
		if !alive {
			return nil
		}
		// Advance one interval of simulated time.
		s.AdvanceClock()
	}
	return nil
}

// rowByComm finds the first row whose command matches.
func rowByComm(sample *core.Sample, comm string) *core.Row {
	for i := range sample.Rows {
		if sample.Rows[i].Info.Comm == comm {
			return &sample.Rows[i]
		}
	}
	return nil
}

// sortedKeys returns map keys in sorted order for deterministic notes.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
