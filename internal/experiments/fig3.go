package experiments

import (
	"time"

	"tiptop/internal/hpm"
	"tiptop/internal/metrics"
	"tiptop/internal/phase"
	"tiptop/internal/sim/machine"
	"tiptop/internal/sim/workload"
	"tiptop/internal/stats"
	"tiptop/internal/trace"
)

// RunFig3 regenerates Figure 3, the §3.1 use case: the biologists' R
// evolutionary algorithm monitored by tiptop at one sample every five
// seconds.
//
//	(a) original algorithm on Nehalem: IPC ~1 for 953 time steps, then a
//	    collapse to ~0.03 with brief pulses;
//	(b) clipped algorithm on Nehalem: IPC stays ~1, the run is ~2.3x
//	    shorter overall (~4.8x on the faulty part alone);
//	(c) zoom on the transition with the FP_ASSIST column added: the
//	    assist rate jumps exactly when the IPC drops;
//	(d) original algorithm on PPC970: no assist pathology, flat noisy
//	    IPC at a lower level, longer total run.
func RunFig3(cfg Config) (*Result, error) {
	cfg = cfg.normalized()
	res := newResult("fig3", "Figure 3: IPC of the R evolutionary algorithm")

	interval := 5 * time.Second
	opts := workload.DefaultREvolution()

	type runOut struct {
		ipc     *trace.Series
		assist  *trace.Series
		samples int
	}
	// Scaling note: the run is shortened by reducing the *number of
	// time steps*, never the length of one step — a 5-second sample must
	// keep covering at most one iteration so the 0.03 floor and its
	// brief pulses survive at small scale, exactly as in Figure 3 (a).
	healthy := scaleCount(opts.HealthyIters, cfg.Scale, 30)
	diverged := scaleCount(opts.DivergedIters, cfg.Scale, 15)
	run := func(m *machine.Machine, clipped bool, plot *trace.Plot) (runOut, error) {
		w := workload.REvolution(workload.REvolutionOptions{
			Clipped:       clipped,
			HealthyIters:  healthy,
			DivergedIters: diverged,
		})
		k := newKernel(m, cfg)
		k.Spawn("biologist", "R", workload.MustInstance(w, cfg.Seed), nil)
		screen := metrics.FPScreen()
		if m.FPAssistPenalty == 0 {
			// The PPC970 has no FP_ASSIST event (§3.1); use the
			// default screen there, as the paper's plot does.
			screen = metrics.DefaultScreen()
		}
		s, err := simSession(k, screen, interval, "cpu", cfg.Parallelism)
		if err != nil {
			return runOut{}, err
		}
		defer s.Close()
		out := runOut{ipc: plot.NewSeries(plotName(m, clipped))}
		if m.FPAssistPenalty > 0 {
			out.assist = &trace.Series{Name: "assist/100instr"}
		}
		err = monitorUntilDone(s, k, 500_000, func(i int, sample *coreSample) {
			row := rowByComm(sample, "R")
			if row == nil || !row.Valid || row.Events[hpm.EventCycles] == 0 {
				return
			}
			out.ipc.Add(float64(i), row.IPC())
			if out.assist != nil {
				instr := row.Events[hpm.EventInstructions]
				if instr > 0 {
					out.assist.Add(float64(i),
						100*float64(row.Events[hpm.EventFPAssist])/float64(instr))
				}
			}
			out.samples = i + 1
		})
		return out, err
	}

	nehalem := machine.XeonW3550()
	plotA := trace.NewPlot("Figure 3 (a): original algorithm on Nehalem", "sample (5s/tick)", "IPC")
	a, err := run(nehalem, false, plotA)
	if err != nil {
		return nil, err
	}
	plotB := trace.NewPlot("Figure 3 (b): algorithm with clipping on Nehalem", "sample (5s/tick)", "IPC")
	b, err := run(nehalem, true, plotB)
	if err != nil {
		return nil, err
	}
	plotD := trace.NewPlot("Figure 3 (d): original algorithm on PowerPC", "sample (5s/tick)", "IPC")
	d, err := run(machine.PPC970(), false, plotD)
	if err != nil {
		return nil, err
	}

	// (c) zoom: IPC and assist rate around the transition, located by
	// the phase detector (the automated version of the paper's visual
	// observation).
	plotC := trace.NewPlot("Figure 3 (c): transition zoom (IPC vs %FP_assist)", "sample (5s/tick)", "IPC / %assist")
	healthySamples := dropIndex(a.ipc)
	lo := float64(healthySamples) * 0.85
	hi := float64(healthySamples) * 1.3
	zoomIPC := plotC.NewSeries("IPC")
	zoomAsst := plotC.NewSeries("assist/100instr")
	for _, p := range a.ipc.Points {
		if p.X >= lo && p.X <= hi {
			zoomIPC.Add(p.X, p.Y)
		}
	}
	for _, p := range a.assist.Points {
		if p.X >= lo && p.X <= hi {
			zoomAsst.Add(p.X, p.Y)
		}
	}

	res.Plots = append(res.Plots, plotA, plotB, plotC, plotD)

	// Headline metrics.
	dropAt := float64(healthySamples)
	ipcBefore := a.ipc.WindowMeanY(0, dropAt)
	ipcAfter := lowQuantileAfter(a.ipc, dropAt)
	speedupTotal := float64(a.samples) / float64(b.samples)
	faultyA := float64(a.samples) - dropAt
	faultyB := float64(b.samples) - dropAt
	speedupFaulty := faultyA / faultyB
	assistBefore := a.assist.WindowMeanY(0, dropAt)
	assistAfter := a.assist.WindowMeanY(dropAt+1, float64(a.samples))

	res.Metrics["samples_a"] = float64(a.samples)
	res.Metrics["samples_b"] = float64(b.samples)
	res.Metrics["samples_d"] = float64(d.samples)
	res.Metrics["drop_sample"] = dropAt
	res.Metrics["ipc_before"] = ipcBefore
	res.Metrics["ipc_after"] = ipcAfter
	res.Metrics["speedup_total"] = speedupTotal
	res.Metrics["speedup_faulty"] = speedupFaulty
	res.Metrics["assist_before"] = assistBefore
	res.Metrics["assist_after"] = assistAfter
	res.Metrics["ppc_ipc_mean"] = d.ipc.MeanY()
	res.Metrics["ppc_min_over_mean"] = minOverMean(d.ipc)

	res.notef("paper: IPC ~1 for 953 steps then 0.03 with brief pulses; clipping gives 2.3x total and 4.8x on the faulty part; PPC970 shows no drop")
	res.notef("measured (scale %.3g): drop at sample %.0f of %d; IPC %.2f -> %.3f; assists %.1f -> %.1f per 100 instr; speedups %.2fx total, %.2fx faulty; PPC970 mean IPC %.2f with no collapse",
		cfg.Scale, dropAt, a.samples, ipcBefore, ipcAfter, assistBefore, assistAfter,
		speedupTotal, speedupFaulty, d.ipc.MeanY())
	return res, nil
}

// scaleCount shrinks an iteration count with a floor.
func scaleCount(full int, scale float64, floor int) int {
	n := int(float64(full) * scale)
	if n < floor {
		n = floor
	}
	return n
}

func plotName(m *machine.Machine, clipped bool) string {
	name := m.MicroArch
	if clipped {
		name += " (clipped)"
	}
	return name
}

// dropIndex locates the phase transition via the phase detector.
func dropIndex(s *trace.Series) int {
	ys := make([]float64, s.Len())
	for i, p := range s.Points {
		ys[i] = p.Y
	}
	if d := phase.DropPoint(ys); d >= 0 {
		return d
	}
	return s.Len()
}

// lowQuantileAfter estimates the post-drop floor (the pulses bias a
// plain mean upward, so use the 25th percentile).
func lowQuantileAfter(s *trace.Series, dropAt float64) float64 {
	var ys []float64
	for _, p := range s.Points {
		if p.X > dropAt {
			ys = append(ys, p.Y)
		}
	}
	q, err := stats.Quantile(ys, 0.25)
	if err != nil {
		return 0
	}
	return q
}

// minOverMean returns min(Y)/mean(Y), a flatness indicator: a series
// with no collapse stays well above the ~0.03 ratio of Figure 3 (a).
func minOverMean(s *trace.Series) float64 {
	if s.Len() == 0 {
		return 0
	}
	min := s.Points[0].Y
	for _, p := range s.Points {
		if p.Y < min {
			min = p.Y
		}
	}
	m := s.MeanY()
	if m == 0 {
		return 0
	}
	return min / m
}
