package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestGroupByClause(t *testing.T) {
	e := MustCompile("rate(INSTRUCTIONS) by user")
	if e.GroupBy() != "user" {
		t.Fatalf("GroupBy = %q", e.GroupBy())
	}
	if got, want := e.String(), "rate(INSTRUCTIONS) by user"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
	// Fixpoint through the clause.
	if re := MustCompile(e.String()); re.String() != e.String() {
		t.Fatalf("by-clause rendering not a fixpoint: %q", re.String())
	}
	if MustCompile("A + B").GroupBy() != "" {
		t.Fatal("ungrouped expression reports a group key")
	}
	for _, bad := range []string{
		"A by",         // missing key
		"A by pid",     // not a group key
		"A by user B",  // trailing tokens
		"A by user by", // doubled clause
		"(A by user)",  // clause is top-level only
		"ratio(A by user, B)",
	} {
		if _, err := Compile(bad); err == nil {
			t.Errorf("Compile(%q) unexpectedly succeeded", bad)
		}
	}
	// The error for a bad group key names the alternatives.
	_, err := Compile("A by pid")
	if err == nil || !strings.Contains(err.Error(), "user") {
		t.Fatalf("bad group key error = %v, want mention of valid keys", err)
	}
}

func TestRateBuiltin(t *testing.T) {
	e := MustCompile("rate(INSTRUCTIONS)")
	env := MapEnv{"INSTRUCTIONS": 2e9, VarDeltaNS: 2e9} // 2G instr over 2s
	v, err := e.Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1e9 {
		t.Fatalf("rate = %v, want 1e9/s", v)
	}
	// Unknown or degenerate interval yields 0, not Inf.
	for _, env := range []MapEnv{
		{"INSTRUCTIONS": 5},
		{"INSTRUCTIONS": 5, VarDeltaNS: 0},
		{"INSTRUCTIONS": 5, VarDeltaNS: -1},
	} {
		if v, _ := e.Eval(env); v != 0 {
			t.Fatalf("rate with DELTA_NS=%v = %v, want 0", env[VarDeltaNS], v)
		}
	}
	// delta is the identity on interval deltas.
	if v, _ := MustCompile("delta(INSTRUCTIONS)").Eval(MapEnv{"INSTRUCTIONS": 7}); v != 7 {
		t.Fatalf("delta = %v, want 7", v)
	}
}

func TestEvalTotality(t *testing.T) {
	// The unified rule: evaluation is total, non-finite results clamp
	// to 0 on the instant path and the bucket path alike.
	cases := []string{
		"A / Z",                   // division by zero
		"A % Z",                   // modulo zero
		"1e308 * 10",              // overflow to +Inf
		"-1e308 * 10",             // overflow to -Inf
		"1e308 * 10 - 1e308 * 10", // would be Inf-Inf = NaN without the clamp
		"rate(A)",                 // no DELTA_NS bound
	}
	env := MapEnv{"A": 6, "Z": 0}
	for _, src := range cases {
		e := MustCompile(src)
		v, err := e.Eval(env)
		if err != nil {
			t.Fatalf("Eval(%q): %v", src, err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("Eval(%q) = %v, want finite", src, v)
		}
		bv, err := e.EvalBucket(env, []Env{env})
		if err != nil {
			t.Fatalf("EvalBucket(%q): %v", src, err)
		}
		if math.IsNaN(bv) || math.IsInf(bv, 0) {
			t.Errorf("EvalBucket(%q) = %v, want finite", src, bv)
		}
		if v != bv {
			t.Errorf("instant/bucket disagree for %q: %v vs %v", src, v, bv)
		}
	}
}

func TestEvalBucketOverTime(t *testing.T) {
	sum := MapEnv{"X": 60, VarDeltaNS: 3e9} // bucket totals
	points := []Env{
		MapEnv{"X": 10, VarDeltaNS: 1e9},
		MapEnv{"X": 20, VarDeltaNS: 1e9},
		MapEnv{"X": 30, VarDeltaNS: 1e9},
	}
	cases := []struct {
		src  string
		want float64
	}{
		{"avg_over_time(X)", 20},
		{"min_over_time(X)", 10},
		{"max_over_time(X)", 30},
		{"sum_over_time(X)", 60},
		{"X", 60},                      // identifiers read the bucket env
		{"rate(X)", 20},                // 60 over 3s
		{"max_over_time(rate(X))", 30}, // rate per point: 10, 20, 30
		{"avg_over_time(X) + X", 80},
		{"max_over_time(X) - min_over_time(X)", 20},
	}
	for _, tc := range cases {
		v, err := MustCompile(tc.src).EvalBucket(sum, points)
		if err != nil {
			t.Fatalf("EvalBucket(%q): %v", tc.src, err)
		}
		if math.Abs(v-tc.want) > 1e-9 {
			t.Errorf("EvalBucket(%q) = %v, want %v", tc.src, v, tc.want)
		}
	}
	// An empty bucket folds to 0, never panics.
	if v, err := MustCompile("avg_over_time(X)").EvalBucket(sum, nil); err != nil || v != 0 {
		t.Fatalf("empty bucket: v=%v err=%v", v, err)
	}
}

func TestSplitTopK(t *testing.T) {
	k, inner, err := MustCompile("topk(3, rate(CYCLES)) by user").SplitTopK()
	if err != nil {
		t.Fatal(err)
	}
	if k != 3 || inner == nil {
		t.Fatalf("k=%d inner=%v", k, inner)
	}
	if inner.String() != "rate(CYCLES) by user" {
		t.Fatalf("inner = %q", inner.String())
	}
	if inner.GroupBy() != "user" {
		t.Fatalf("inner GroupBy = %q, want the clause preserved", inner.GroupBy())
	}

	// Not a topk expression: no error, no split.
	k, inner, err = MustCompile("rate(CYCLES)").SplitTopK()
	if err != nil || k != 0 || inner != nil {
		t.Fatalf("non-topk split: k=%d inner=%v err=%v", k, inner, err)
	}

	// Malformed uses carry a position in the error.
	for _, bad := range []string{
		"topk(CYCLES, A)",     // k not a literal
		"topk(0, A)",          // k not positive
		"topk(2.5, A)",        // k not an integer
		"1 + topk(3, A)",      // not outermost
		"topk(2, topk(3, A))", // nested
	} {
		if _, _, err := MustCompile(bad).SplitTopK(); err == nil {
			t.Errorf("SplitTopK(%q) unexpectedly succeeded", bad)
		}
	}
}

func TestSeriesOnlyAndNeedsPointwise(t *testing.T) {
	if why := MustCompile("ratio(A, B)").SeriesOnly(); why != "" {
		t.Fatalf("plain column flagged series-only: %q", why)
	}
	if why := MustCompile("A by user").SeriesOnly(); why == "" {
		t.Fatal("by-clause not flagged series-only")
	}
	if why := MustCompile("topk(2, A)").SeriesOnly(); why == "" {
		t.Fatal("topk not flagged series-only")
	}
	if MustCompile("ratio(A, B)").NeedsPointwise() {
		t.Fatal("plain ratio should not need pointwise eval")
	}
	if !MustCompile("1 + avg_over_time(A)").NeedsPointwise() {
		t.Fatal("over_time should need pointwise eval")
	}
	if n := MustCompile("A + B * C").NodeCount(); n != 5 {
		t.Fatalf("NodeCount = %d, want 5", n)
	}
}

func TestSuggestNames(t *testing.T) {
	known := []string{"INSTRUCTIONS", "CYCLES", "CACHE_MISSES", "BRANCHES"}
	got := SuggestNames("INSN", known)
	// Nothing within distance for a 4-char name — limit is 2.
	if len(got) != 0 {
		t.Fatalf("SuggestNames(INSN) = %v", got)
	}
	got = SuggestNames("CYCLE", known)
	if len(got) == 0 || got[0] != "CYCLES" {
		t.Fatalf("SuggestNames(CYCLE) = %v, want CYCLES first", got)
	}
	got = SuggestNames("instructions", known)
	if len(got) == 0 || got[0] != "INSTRUCTIONS" {
		t.Fatalf("SuggestNames(instructions) = %v (case-insensitive match expected)", got)
	}
	msg := FormatUnknownName("CYCLE", known)
	if !strings.Contains(msg, "did you mean") || !strings.Contains(msg, "CYCLES") {
		t.Fatalf("FormatUnknownName = %q", msg)
	}
}

func TestParseStep(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"", 0, true},
		{"30", 30, true},
		{"30s", 30, true},
		{"1m", 60, true},
		{"1h", 3600, true},
		{"0.5m", 30, true},
		{"-5", 0, false},
		{"abc", 0, false},
		{"m", 0, false},
	}
	for _, tc := range cases {
		got, err := ParseStep(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("ParseStep(%q) err = %v, ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseStep(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
