package metrics

import (
	"math"
	"strings"
	"testing"
)

// TestParseExprTable pins the parser's behaviour on the inputs the fuzz
// target is seeded with: unary minus, division by zero, deep nesting
// and malformed input.
func TestParseExprTable(t *testing.T) {
	env := MapEnv{"A": 6, "B": 3, "Z": 0}
	evals := []struct {
		src  string
		want float64
	}{
		{"-A", -6},
		{"--A", 6},
		{"-(-(-A))", -6},
		{"-A + B", -3},
		{"-A * -B", 18},
		{"A / Z", 0},  // division by zero yields 0, not Inf
		{"A % Z", 0},  // modulo zero likewise
		{"0 / 0", 0},  // constant fold path too
		{"-A / Z", 0}, // sign does not leak through the zero guard
		{"ratio(A, Z)", 0},
		{"A / (B - 3)", 0},
		{"(((((A)))))", 6},
		{strings.Repeat("(", 50) + "A" + strings.Repeat(")", 50), 6},
		{"1 ? -A : A / Z", -6},
	}
	for _, tc := range evals {
		e, err := Compile(tc.src)
		if err != nil {
			t.Errorf("Compile(%q): %v", tc.src, err)
			continue
		}
		got, err := e.Eval(env)
		if err != nil {
			t.Errorf("Eval(%q): %v", tc.src, err)
			continue
		}
		if got != tc.want {
			t.Errorf("Eval(%q) = %v, want %v", tc.src, got, tc.want)
		}
	}

	bad := []string{
		"",
		"(",
		")",
		"A +",
		"+ * A",
		"A B",
		"ratio(A)",       // arity
		"ratio(A, B, A)", // arity
		"nosuchfn(A)",    // unknown function
		"A ? B",          // missing ':'
		"1..2",           // bad number
		"A @ B",          // bad rune
		"ratio(A, B",     // unclosed call
		"-",              // dangling unary
		"--",             // dangling chain
		strings.Repeat("(", maxExprDepth+1) + "A" + strings.Repeat(")", maxExprDepth+1),
		strings.Repeat("-", maxExprDepth+1) + "A",
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) unexpectedly succeeded", src)
		}
	}

	// Nesting inside the bound compiles (each parenthesis level costs
	// two recursion frames: parseExpr and parseUnary).
	ok := strings.Repeat("(", maxExprDepth/4) + "A" + strings.Repeat(")", maxExprDepth/4)
	if _, err := Compile(ok); err != nil {
		t.Errorf("Compile(%d-deep parens): %v", maxExprDepth/4, err)
	}
}

// FuzzParseExpr throws arbitrary input at the compiler. Invariants for
// every input that compiles:
//
//   - the canonical rendering (String) recompiles, and its own
//     rendering is a fixpoint;
//   - evaluation never panics: it produces a value or an EvalError,
//     and with the engine's guards division by zero yields 0;
//   - Identifiers never panics and only reports names that lex as
//     identifiers.
func FuzzParseExpr(f *testing.F) {
	seeds := []string{
		"ratio(INSTRUCTIONS, CYCLES)",
		"per100(CACHE_MISSES, INSTRUCTIONS)",
		"mega(CYCLES)",
		"-A + B*C / (D-1)",
		"A / 0",
		"-(-(-X))",
		"A > B ? A : clamp(B, 0, 1)",
		"1e9 % 7",
		"((((((A))))))",
		"min(max(A, B), sqrt(C))",
		"A == B",
		"bogus(",
		")(",
		"1..5",
		"rate(INSTRUCTIONS)",
		"delta(INSTRUCTIONS) / delta(CYCLES)",
		"topk(5, rate(CYCLES))",
		"avg_over_time(ratio(INSTRUCTIONS, CYCLES))",
		"max_over_time(CPU_PCT) by user",
		"sum_over_time(CACHE_MISSES) by command",
		"rate(INSTRUCTIONS) by agent",
		"topk(3, min_over_time(A + B)) by user",
		"A by bogus",
		"topk(A, B)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Compile(src)
		if err != nil {
			return
		}
		canon := e.String()
		re, err := Compile(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not recompile: %v", canon, src, err)
		}
		if again := re.String(); again != canon {
			t.Fatalf("rendering not a fixpoint: %q -> %q -> %q", src, canon, again)
		}
		env := MapEnv{}
		for _, id := range e.Identifiers() {
			if id == "" {
				t.Fatalf("empty identifier from %q", src)
			}
			env[id] = 1
		}
		v, err := e.Eval(env)
		if err != nil {
			t.Fatalf("Eval with all identifiers bound failed for %q: %v", src, err)
		}
		// Evaluation is total: zero denominators yield 0 and anything
		// non-finite is clamped at the boundary, on every path.
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("Eval(%q) = %v, want finite", src, v)
		}
		bv, err := e.EvalBucket(env, []Env{env, env})
		if err != nil {
			t.Fatalf("EvalBucket of %q failed: %v", src, err)
		}
		if math.IsNaN(bv) || math.IsInf(bv, 0) {
			t.Fatalf("EvalBucket(%q) = %v, want finite", src, bv)
		}
		// Unbound identifiers surface as EvalError, not a panic.
		if len(e.Identifiers()) > 0 {
			if _, err := e.Eval(MapEnv{}); err == nil {
				t.Fatalf("Eval of %q with empty env must fail", src)
			}
		}
		// The series helpers never panic on arbitrary compiled input.
		_ = e.NodeCount()
		_ = e.NeedsPointwise()
		_ = e.SeriesOnly()
		if k, inner, err := e.SplitTopK(); err == nil && inner != nil {
			if k < 1 {
				t.Fatalf("SplitTopK(%q) k = %d", src, k)
			}
			if _, err := Compile(inner.String()); err != nil {
				t.Fatalf("topk inner %q of %q does not recompile: %v", inner.String(), src, err)
			}
		}
	})
}
