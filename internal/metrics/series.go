package metrics

// Series-oriented evaluation: the query engine's half of the
// expression language. A screen cell evaluates an expression once
// against a single refresh interval; a range query evaluates the same
// expression per bucket, where counter identifiers carry bucket sums,
// column identifiers carry bucket averages, and the *_over_time
// functions fold their argument over the individual points inside the
// bucket. The helpers here let the engine (internal/query) interrogate
// and drive compiled expressions without re-parsing.

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// NodeCount returns the number of AST nodes in the expression — the
// complexity measure the query endpoint caps as a DoS guard alongside
// source length (an adversarial expression can pack many nodes into
// few bytes: "a(b(c(...)))").
func (e *Expr) NodeCount() int {
	n := 0
	e.root.walk(func(node) { n++ })
	return n
}

// HasCall reports whether the expression calls the named builtin
// anywhere in its tree.
func (e *Expr) HasCall(name string) bool {
	found := false
	e.root.walk(func(n node) {
		if c, ok := n.(*callNode); ok && c.name == name {
			found = true
		}
	})
	return found
}

// NeedsPointwise reports whether evaluating the expression over a
// bucket requires the individual points inside the bucket (any
// *_over_time call), or only the bucket-sum environment.
func (e *Expr) NeedsPointwise() bool {
	found := false
	e.root.walk(func(n node) {
		if c, ok := n.(*callNode); ok {
			if _, over := overTimeFolds[c.name]; over {
				found = true
			}
		}
	})
	return found
}

// SeriesOnly reports why the expression only makes sense to the
// series-oriented query engine — a `by` grouping clause or a topk()
// ranking — or "" when it is also valid as a screen column cell.
func (e *Expr) SeriesOnly() string {
	if e.groupBy != "" {
		return "'by " + e.groupBy + "' grouping"
	}
	if e.HasCall("topk") {
		return "topk() ranking"
	}
	return ""
}

// SplitTopK splits a top-level topk(k, inner) expression into its
// rank count and inner expression (which keeps any `by` clause). It
// returns (0, nil, nil) when the root is not a topk call, and an error
// when it is but k is not a positive integer literal, or when topk
// appears nested below the root (ranking has no meaning inside
// point arithmetic).
func (e *Expr) SplitTopK() (int, *Expr, error) {
	root, isTopK := e.root.(*callNode)
	if !isTopK || root.name != "topk" {
		if e.HasCall("topk") {
			return 0, nil, &SyntaxError{Src: e.src, Pos: topkPos(e.root),
				Msg: "topk() must be the outermost construct of a query expression"}
		}
		return 0, nil, nil
	}
	kn, ok := root.args[0].(*numberNode)
	if !ok || kn.val != float64(int(kn.val)) || kn.val < 1 {
		return 0, nil, &SyntaxError{Src: e.src, Pos: root.pos,
			Msg: "topk() needs a positive integer literal as its first argument"}
	}
	inner := root.args[1]
	if exprContainsTopK(inner) {
		return 0, nil, &SyntaxError{Src: e.src, Pos: topkPos(inner),
			Msg: "topk() cannot be nested"}
	}
	var b strings.Builder
	inner.render(&b)
	return int(kn.val), &Expr{src: b.String(), root: inner, groupBy: e.groupBy}, nil
}

func exprContainsTopK(n node) bool {
	found := false
	n.walk(func(m node) {
		if c, ok := m.(*callNode); ok && c.name == "topk" {
			found = true
		}
	})
	return found
}

// topkPos finds the byte offset of the first topk call under n, for
// error messages; 0 when none is recorded.
func topkPos(n node) int {
	pos := -1
	n.walk(func(m node) {
		if c, ok := m.(*callNode); ok && c.name == "topk" && pos < 0 {
			pos = c.pos
		}
	})
	if pos < 0 {
		return 0
	}
	return pos
}

// EvalBucket evaluates the expression over one query bucket: sum is
// the bucket-level environment (counter identifiers summed over the
// bucket, column values averaged, DELTA_NS set to the bucket width in
// nanoseconds), and points are the per-point environments the
// *_over_time functions fold over. points may be nil when
// NeedsPointwise is false. The total-evaluation rule of Eval applies:
// the result is always finite.
func (e *Expr) EvalBucket(sum Env, points []Env) (float64, error) {
	v, err := evalBucket(e.root, sum, points)
	if err != nil {
		return 0, err
	}
	return finite(v), nil
}

func evalBucket(n node, sum Env, points []Env) (float64, error) {
	switch n := n.(type) {
	case *numberNode, *identNode:
		return n.eval(sum)
	case *unaryNode:
		v, err := evalBucket(n.expr, sum, points)
		if err != nil {
			return 0, err
		}
		return -v, nil
	case *binaryNode:
		l, err := evalBucket(n.l, sum, points)
		if err != nil {
			return 0, err
		}
		r, err := evalBucket(n.r, sum, points)
		if err != nil {
			return 0, err
		}
		return applyBinary(n.op, l, r)
	case *condNode:
		c, err := evalBucket(n.cond, sum, points)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return evalBucket(n.then, sum, points)
		}
		return evalBucket(n.els, sum, points)
	case *callNode:
		if fold, over := overTimeFolds[n.name]; over {
			if len(points) == 0 {
				return 0, nil
			}
			acc := 0.0
			for i, pe := range points {
				// A nested *_over_time folds over just this point.
				v, err := evalBucket(n.args[0], pe, points[i:i+1])
				if err != nil {
					return 0, err
				}
				acc = fold(acc, v, i)
			}
			if n.name == "avg_over_time" {
				acc /= float64(len(points))
			}
			return finite(acc), nil
		}
		args := make([]float64, len(n.args))
		for i, a := range n.args {
			v, err := evalBucket(a, sum, points)
			if err != nil {
				return 0, err
			}
			args[i] = v
		}
		if n.fn.envImpl != nil {
			return n.fn.envImpl(sum, args), nil
		}
		return n.fn.impl(args), nil
	}
	return 0, &EvalError{Expr: "?", Msg: "internal: unknown node"}
}

// applyBinary mirrors binaryNode.eval's operator table for the bucket
// evaluator.
func applyBinary(op tokenKind, l, r float64) (float64, error) {
	switch op {
	case tokPlus:
		return l + r, nil
	case tokMinus:
		return l - r, nil
	case tokStar:
		return l * r, nil
	case tokSlash:
		if r == 0 {
			return 0, nil
		}
		return l / r, nil
	case tokPercent:
		if r == 0 {
			return 0, nil
		}
		return math.Mod(l, r), nil
	case tokEQ:
		return boolVal(l == r), nil
	case tokNE:
		return boolVal(l != r), nil
	case tokLT:
		return boolVal(l < r), nil
	case tokGT:
		return boolVal(l > r), nil
	case tokLE:
		return boolVal(l <= r), nil
	case tokGE:
		return boolVal(l >= r), nil
	}
	return 0, &EvalError{Expr: "?", Msg: "internal: unknown operator"}
}

// SuggestNames returns up to three candidates from known that are
// closest to name by edit distance — the "did you mean" list the query
// endpoint attaches to unknown-identifier errors. Only reasonably
// close names (distance ≤ half the name's length, minimum 2) qualify.
func SuggestNames(name string, known []string) []string {
	type cand struct {
		name string
		dist int
	}
	limit := len(name) / 2
	if limit < 2 {
		limit = 2
	}
	var cands []cand
	for _, k := range known {
		if d := editDistance(strings.ToUpper(name), strings.ToUpper(k)); d <= limit {
			cands = append(cands, cand{k, d})
		}
	}
	sort := func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].name < cands[j].name
	}
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && sort(j, j-1); j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	if len(cands) > 3 {
		cands = cands[:3]
	}
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.name
	}
	return out
}

// editDistance is the Levenshtein distance between a and b.
func editDistance(a, b string) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j] + 1 // deletion
			if v := cur[j-1] + 1; v < m {
				m = v // insertion
			}
			if v := prev[j-1] + cost; v < m {
				m = v // substitution
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// UnknownNameHint builds the "did you mean" suggestion for an unknown
// identifier, or "" when nothing known is close.
func UnknownNameHint(name string, known []string) string {
	if s := SuggestNames(name, known); len(s) > 0 {
		return "did you mean " + strings.Join(s, ", ") + "?"
	}
	return ""
}

// FormatUnknownName builds the standard unknown-identifier message,
// attaching nearest-name suggestions when any are close.
func FormatUnknownName(name string, known []string) string {
	msg := fmt.Sprintf("unknown event or column %q", name)
	if h := UnknownNameHint(name, known); h != "" {
		msg += " (" + h + ")"
	}
	return msg
}

// ParseStep parses a query step like "30s", "1m", "1h" or a bare
// number of seconds, shared by the HTTP handler and the query client.
func ParseStep(s string) (float64, error) {
	if s == "" {
		return 0, nil
	}
	mult := 1.0
	num := s
	switch s[len(s)-1] {
	case 's':
		num = s[:len(s)-1]
	case 'm':
		num, mult = s[:len(s)-1], 60
	case 'h':
		num, mult = s[:len(s)-1], 3600
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad step %q (use seconds or 30s/1m/1h)", s)
	}
	return v * mult, nil
}
