// Package metrics implements the small expression language used to define
// derived performance metrics from raw counter deltas. The paper's tool
// displays "ratios of interest (IPC, miss ratio, branch misprediction,
// etc.)" computed from counter values and lets the user customize the
// columns; this package provides the syntax and evaluation machinery:
//
//	IPC   = INSTRUCTIONS / CYCLES
//	DMIS  = per100(CACHE_MISSES, INSTRUCTIONS)
//	%MISP = 100 * BRANCH_MISSES / BRANCHES
//
// Identifiers resolve against an Env supplied by the sampling engine:
// event names map to the event's delta since the previous refresh, and a
// handful of context variables (DELTA_NS, FREQ_HZ, CPU_PCT) expose the
// sampling period, the nominal clock frequency, and OS CPU usage.
package metrics

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token categories.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokNumber
	tokIdent
	tokPlus
	tokMinus
	tokStar
	tokSlash
	tokPercent
	tokLParen
	tokRParen
	tokComma
	tokLT
	tokGT
	tokLE
	tokGE
	tokEQ
	tokNE
	tokQuestion
	tokColon
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of expression"
	case tokNumber:
		return "number"
	case tokIdent:
		return "identifier"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokStar:
		return "'*'"
	case tokSlash:
		return "'/'"
	case tokPercent:
		return "'%'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokLT:
		return "'<'"
	case tokGT:
		return "'>'"
	case tokLE:
		return "'<='"
	case tokGE:
		return "'>='"
	case tokEQ:
		return "'=='"
	case tokNE:
		return "'!='"
	case tokQuestion:
		return "'?'"
	case tokColon:
		return "':'"
	}
	return "unknown token"
}

// token is one lexical unit with its source position (byte offset).
type token struct {
	kind tokenKind
	text string
	pos  int
}

// SyntaxError describes a lexing or parsing failure with its position in
// the source expression.
type SyntaxError struct {
	Pos int
	Msg string
	Src string
	// Hint is an optional actionable suggestion ("did you mean
	// CYCLES?"), kept separate from Msg so the HTTP error envelope can
	// carry it structurally.
	Hint string
}

func (e *SyntaxError) Error() string {
	msg := e.Msg
	if e.Hint != "" {
		msg += " (" + e.Hint + ")"
	}
	return fmt.Sprintf("metrics: %s at offset %d in %q", msg, e.Pos, e.Src)
}

// lexer produces tokens from an expression source string.
type lexer struct {
	src string
	pos int
}

func isIdentStart(r rune) bool {
	return r == '_' || r == '%' && false || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// lex tokenizes the whole source string.
func lex(src string) ([]token, error) {
	lx := &lexer{src: src}
	var toks []token
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.kind == tokEOF {
			return toks, nil
		}
	}
}

func (lx *lexer) errf(pos int, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...), Src: lx.src}
}

func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.src) && (lx.src[lx.pos] == ' ' || lx.src[lx.pos] == '\t' ||
		lx.src[lx.pos] == '\n' || lx.src[lx.pos] == '\r') {
		lx.pos++
	}
	start := lx.pos
	if lx.pos >= len(lx.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := lx.src[lx.pos]
	switch c {
	case '+':
		lx.pos++
		return token{tokPlus, "+", start}, nil
	case '-':
		lx.pos++
		return token{tokMinus, "-", start}, nil
	case '*':
		lx.pos++
		return token{tokStar, "*", start}, nil
	case '/':
		lx.pos++
		return token{tokSlash, "/", start}, nil
	case '%':
		lx.pos++
		return token{tokPercent, "%", start}, nil
	case '(':
		lx.pos++
		return token{tokLParen, "(", start}, nil
	case ')':
		lx.pos++
		return token{tokRParen, ")", start}, nil
	case ',':
		lx.pos++
		return token{tokComma, ",", start}, nil
	case '?':
		lx.pos++
		return token{tokQuestion, "?", start}, nil
	case ':':
		lx.pos++
		return token{tokColon, ":", start}, nil
	case '<':
		lx.pos++
		if lx.pos < len(lx.src) && lx.src[lx.pos] == '=' {
			lx.pos++
			return token{tokLE, "<=", start}, nil
		}
		return token{tokLT, "<", start}, nil
	case '>':
		lx.pos++
		if lx.pos < len(lx.src) && lx.src[lx.pos] == '=' {
			lx.pos++
			return token{tokGE, ">=", start}, nil
		}
		return token{tokGT, ">", start}, nil
	case '=':
		if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '=' {
			lx.pos += 2
			return token{tokEQ, "==", start}, nil
		}
		return token{}, lx.errf(start, "unexpected '='; did you mean '=='")
	case '!':
		if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '=' {
			lx.pos += 2
			return token{tokNE, "!=", start}, nil
		}
		return token{}, lx.errf(start, "unexpected '!'; did you mean '!='")
	}
	if c >= '0' && c <= '9' || c == '.' {
		return lx.lexNumber()
	}
	r := rune(c)
	if isIdentStart(r) {
		return lx.lexIdent()
	}
	return token{}, lx.errf(start, "unexpected character %q", c)
}

func (lx *lexer) lexNumber() (token, error) {
	start := lx.pos
	seenDot, seenExp := false, false
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c >= '0' && c <= '9':
			lx.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			lx.pos++
		case (c == 'e' || c == 'E') && !seenExp && lx.pos > start:
			seenExp = true
			lx.pos++
			if lx.pos < len(lx.src) && (lx.src[lx.pos] == '+' || lx.src[lx.pos] == '-') {
				lx.pos++
			}
		default:
			goto done
		}
	}
done:
	text := lx.src[start:lx.pos]
	if text == "." {
		return token{}, lx.errf(start, "malformed number")
	}
	if strings.HasSuffix(text, "e") || strings.HasSuffix(text, "E") ||
		strings.HasSuffix(text, "+") || strings.HasSuffix(text, "-") {
		return token{}, lx.errf(start, "malformed exponent in number %q", text)
	}
	return token{tokNumber, text, start}, nil
}

func (lx *lexer) lexIdent() (token, error) {
	start := lx.pos
	for lx.pos < len(lx.src) && isIdentPart(rune(lx.src[lx.pos])) {
		lx.pos++
	}
	return token{tokIdent, lx.src[start:lx.pos], start}, nil
}
