package metrics

import (
	"fmt"
	"strconv"
	"strings"
)

// node is an AST node of a parsed expression.
type node interface {
	// eval computes the node's value in the given environment.
	eval(env Env) (float64, error)
	// walk invokes f on this node and all descendants.
	walk(f func(node))
	// render reconstructs a canonical source form.
	render(b *strings.Builder)
}

type numberNode struct{ val float64 }

type identNode struct{ name string }

type unaryNode struct {
	op   tokenKind // tokMinus
	expr node
}

type binaryNode struct {
	op   tokenKind
	l, r node
}

type condNode struct {
	cond, then, els node
}

type callNode struct {
	name string
	fn   *builtin
	args []node
	pos  int // byte offset of the call in the source, for semantic errors
}

// Expr is a compiled, immutable metric expression.
type Expr struct {
	src  string
	root node
	// groupBy is the optional `by user|command|agent` grouping clause:
	// a series-level roll-up key that only the query engine acts on.
	groupBy string
}

// Source returns the original expression text.
func (e *Expr) Source() string { return e.src }

// String returns a canonical rendering of the parsed expression.
func (e *Expr) String() string {
	var b strings.Builder
	e.root.render(&b)
	if e.groupBy != "" {
		b.WriteString(" by ")
		b.WriteString(e.groupBy)
	}
	return b.String()
}

// GroupBy returns the grouping key of a `... by user|command|agent`
// expression, or "" for ungrouped expressions.
func (e *Expr) GroupBy() string { return e.groupBy }

// Identifiers returns the distinct identifiers referenced by the
// expression, in first-appearance order. The sampling engine uses this to
// decide which counters must be attached for a screen's columns.
func (e *Expr) Identifiers() []string {
	seen := make(map[string]bool)
	var out []string
	e.root.walk(func(n node) {
		if id, ok := n.(*identNode); ok && !seen[id.name] {
			seen[id.name] = true
			out = append(out, id.name)
		}
	})
	return out
}

// GroupKeys are the identifiers allowed after the `by` keyword: the
// roll-up dimensions the query engine can group series on.
var GroupKeys = []string{"agent", "command", "user"}

func validGroupKey(k string) bool {
	for _, g := range GroupKeys {
		if g == k {
			return true
		}
	}
	return false
}

// Compile parses src into an executable expression. The grammar is the
// screen-column expression language plus an optional trailing grouping
// clause (`expr by user`), which only the series-oriented query engine
// acts on — column compilation rejects grouped expressions via
// SeriesOnly.
func Compile(src string) (*Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	root, err := p.parseExpr(0)
	if err != nil {
		return nil, err
	}
	groupBy := ""
	if t := p.peek(); t.kind == tokIdent && t.text == "by" {
		p.advance()
		key := p.peek()
		if key.kind != tokIdent || !validGroupKey(key.text) {
			return nil, p.errf(key.pos, "expected grouping key after 'by' (one of %s), got %s",
				strings.Join(GroupKeys, ", "), key.kind)
		}
		p.advance()
		groupBy = key.text
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf(p.peek().pos, "unexpected %s after expression", p.peek().kind)
	}
	return &Expr{src: src, root: root, groupBy: groupBy}, nil
}

// MustCompile is Compile that panics on error, for statically known
// expressions (the built-in screens).
func MustCompile(src string) *Expr {
	e, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return e
}

// maxExprDepth bounds expression nesting. The parser recurses on
// parenthesised groups, unary operators and call arguments; without a
// bound, adversarial input ("((((…" from a config file or fuzzer)
// exhausts the goroutine stack instead of returning an error.
const maxExprDepth = 200

// parser is a Pratt (precedence-climbing) parser over the token stream.
type parser struct {
	src   string
	toks  []token
	pos   int
	depth int
}

// enter tracks recursion depth; every call must be paired with leave.
func (p *parser) enter(pos int) error {
	p.depth++
	if p.depth > maxExprDepth {
		return p.errf(pos, "expression nests deeper than %d levels", maxExprDepth)
	}
	return nil
}

func (p *parser) leave() { p.depth-- }

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errf(pos int, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...), Src: p.src}
}

// Binding powers. Higher binds tighter. The conditional operator is
// right-associative with the lowest power; comparison operators are
// non-chaining in practice but parse left-associatively.
func infixPower(k tokenKind) (int, bool) {
	switch k {
	case tokQuestion:
		return 1, true
	case tokEQ, tokNE, tokLT, tokGT, tokLE, tokGE:
		return 2, true
	case tokPlus, tokMinus:
		return 3, true
	case tokStar, tokSlash, tokPercent:
		return 4, true
	}
	return 0, false
}

func (p *parser) parseExpr(minPower int) (node, error) {
	if err := p.enter(p.peek().pos); err != nil {
		return nil, err
	}
	defer p.leave()
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.peek()
		power, ok := infixPower(op.kind)
		if !ok || power < minPower {
			return left, nil
		}
		p.advance()
		if op.kind == tokQuestion {
			then, err := p.parseExpr(0)
			if err != nil {
				return nil, err
			}
			if p.peek().kind != tokColon {
				return nil, p.errf(p.peek().pos, "expected ':' in conditional, got %s", p.peek().kind)
			}
			p.advance()
			els, err := p.parseExpr(power) // right associative
			if err != nil {
				return nil, err
			}
			left = &condNode{cond: left, then: then, els: els}
			continue
		}
		right, err := p.parseExpr(power + 1)
		if err != nil {
			return nil, err
		}
		left = &binaryNode{op: op.kind, l: left, r: right}
	}
}

func (p *parser) parseUnary() (node, error) {
	if err := p.enter(p.peek().pos); err != nil {
		return nil, err
	}
	defer p.leave()
	switch t := p.peek(); t.kind {
	case tokMinus:
		p.advance()
		expr, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &unaryNode{op: tokMinus, expr: expr}, nil
	case tokPlus:
		p.advance()
		return p.parseUnary()
	default:
		return p.parsePrimary()
	}
}

func (p *parser) parsePrimary() (node, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.advance()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf(t.pos, "bad number %q: %v", t.text, err)
		}
		return &numberNode{val: v}, nil
	case tokIdent:
		p.advance()
		if p.peek().kind == tokLParen {
			return p.parseCall(t)
		}
		return &identNode{name: t.text}, nil
	case tokLParen:
		p.advance()
		inner, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if p.peek().kind != tokRParen {
			return nil, p.errf(p.peek().pos, "expected ')', got %s", p.peek().kind)
		}
		p.advance()
		return inner, nil
	default:
		return nil, p.errf(t.pos, "expected operand, got %s", t.kind)
	}
}

func (p *parser) parseCall(name token) (node, error) {
	fn, ok := builtins[name.text]
	if !ok {
		return nil, p.errf(name.pos, "unknown function %q", name.text)
	}
	p.advance() // consume '('
	var args []node
	if p.peek().kind != tokRParen {
		for {
			arg, err := p.parseExpr(0)
			if err != nil {
				return nil, err
			}
			args = append(args, arg)
			if p.peek().kind == tokComma {
				p.advance()
				continue
			}
			break
		}
	}
	if p.peek().kind != tokRParen {
		return nil, p.errf(p.peek().pos, "expected ')' closing call to %s, got %s", name.text, p.peek().kind)
	}
	p.advance()
	if len(args) != fn.arity {
		return nil, p.errf(name.pos, "%s expects %d argument(s), got %d", name.text, fn.arity, len(args))
	}
	return &callNode{name: name.text, fn: fn, args: args, pos: name.pos}, nil
}

// --- rendering ---

func (n *numberNode) render(b *strings.Builder) {
	b.WriteString(strconv.FormatFloat(n.val, 'g', -1, 64))
}
func (n *identNode) render(b *strings.Builder) { b.WriteString(n.name) }
func (n *unaryNode) render(b *strings.Builder) {
	b.WriteString("(-")
	n.expr.render(b)
	b.WriteByte(')')
}
func (n *binaryNode) render(b *strings.Builder) {
	b.WriteByte('(')
	n.l.render(b)
	switch n.op {
	case tokPlus:
		b.WriteString(" + ")
	case tokMinus:
		b.WriteString(" - ")
	case tokStar:
		b.WriteString(" * ")
	case tokSlash:
		b.WriteString(" / ")
	case tokPercent:
		b.WriteString(" % ")
	case tokEQ:
		b.WriteString(" == ")
	case tokNE:
		b.WriteString(" != ")
	case tokLT:
		b.WriteString(" < ")
	case tokGT:
		b.WriteString(" > ")
	case tokLE:
		b.WriteString(" <= ")
	case tokGE:
		b.WriteString(" >= ")
	}
	n.r.render(b)
	b.WriteByte(')')
}
func (n *condNode) render(b *strings.Builder) {
	b.WriteByte('(')
	n.cond.render(b)
	b.WriteString(" ? ")
	n.then.render(b)
	b.WriteString(" : ")
	n.els.render(b)
	b.WriteByte(')')
}
func (n *callNode) render(b *strings.Builder) {
	b.WriteString(n.name)
	b.WriteByte('(')
	for i, a := range n.args {
		if i > 0 {
			b.WriteString(", ")
		}
		a.render(b)
	}
	b.WriteByte(')')
}

// --- walking ---

func (n *numberNode) walk(f func(node)) { f(n) }
func (n *identNode) walk(f func(node))  { f(n) }
func (n *unaryNode) walk(f func(node))  { f(n); n.expr.walk(f) }
func (n *binaryNode) walk(f func(node)) { f(n); n.l.walk(f); n.r.walk(f) }
func (n *condNode) walk(f func(node))   { f(n); n.cond.walk(f); n.then.walk(f); n.els.walk(f) }
func (n *callNode) walk(f func(node)) {
	f(n)
	for _, a := range n.args {
		a.walk(f)
	}
}
