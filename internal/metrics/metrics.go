package metrics

import (
	"fmt"
	"sort"
)

// Context variable names provided by the sampling engine in addition to
// event deltas.
const (
	VarDeltaNS = "DELTA_NS" // nanoseconds since previous refresh
	VarFreqHz  = "FREQ_HZ"  // nominal core clock of the machine
	VarCPUPct  = "CPU_PCT"  // OS-reported %CPU over the interval
	VarNumCPU  = "NUM_CPUS" // logical CPUs on the machine
	// VarSamplePct is the counter coverage of the refresh, percent: 100
	// when every event counted the whole interval, lower when the PMU
	// was oversubscribed and counts are Enabled/Running extrapolations
	// (kernel multiplexing or internal/mux rotation).
	VarSamplePct = "SMPL_PCT"
)

// Column describes one displayed metric column: a header, a printf format
// for the cell, a fixed width, and the expression that computes the value
// from the current sample.
type Column struct {
	Name   string // internal name, unique within a screen
	Header string // column heading
	Width  int    // minimum cell width
	Format string // fmt verb for the value, e.g. "%5.2f"
	Expr   *Expr  // value expression
	Desc   string // one-line description for help output
}

// Cell formats a value for display in this column.
func (c *Column) Cell(v float64) string {
	s := fmt.Sprintf(c.Format, v)
	if len(s) < c.Width {
		s = fmt.Sprintf("%*s", c.Width, s)
	}
	return s
}

// Identifiers returns the identifiers the column's expression
// references minus the engine-provided context variables — the names
// that must resolve to counter events in the session's registry. The
// engine (and config.Load) reject screens whose identifiers do not
// resolve, so a typo fails at load time rather than per-row at eval
// time.
func (c *Column) Identifiers() []string {
	var out []string
	for _, id := range c.Expr.Identifiers() {
		if !IsContextVar(id) {
			out = append(out, id)
		}
	}
	return out
}

// IsContextVar reports whether name is one of the variables the
// sampling engine provides alongside the counter deltas.
func IsContextVar(name string) bool {
	switch name {
	case VarDeltaNS, VarFreqHz, VarCPUPct, VarNumCPU, VarSamplePct:
		return true
	}
	return false
}

// Screen is a named set of columns, mirroring tiptop's configurable
// screens. The default screen reproduces Figure 1 of the paper.
type Screen struct {
	Name    string
	Columns []*Column
}

// Identifiers returns the union of non-context identifiers referenced
// by all columns, in first-use order — the names the session resolves
// to counter events.
func (s *Screen) Identifiers() []string {
	seen := make(map[string]bool)
	var out []string
	for _, col := range s.Columns {
		for _, id := range col.Identifiers() {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	return out
}

// Column returns the column with the given name, or nil.
func (s *Screen) Column(name string) *Column {
	for _, c := range s.Columns {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// DefaultScreen returns the paper's Figure 1 screen: million cycles,
// million instructions, IPC, and last-level cache misses per hundred
// instructions.
func DefaultScreen() *Screen {
	return &Screen{
		Name: "default",
		Columns: []*Column{
			{
				Name: "mcycle", Header: "Mcycle", Width: 8, Format: "%8.0f",
				Expr: MustCompile("mega(CYCLES)"),
				Desc: "execution cycles since last refresh, in millions",
			},
			{
				Name: "minst", Header: "Minst", Width: 8, Format: "%8.0f",
				Expr: MustCompile("mega(INSTRUCTIONS)"),
				Desc: "instructions retired since last refresh, in millions",
			},
			{
				Name: "ipc", Header: "IPC", Width: 5, Format: "%5.2f",
				Expr: MustCompile("ratio(INSTRUCTIONS, CYCLES)"),
				Desc: "executed instructions per cycle",
			},
			{
				Name: "dmis", Header: "DMIS", Width: 5, Format: "%5.1f",
				Expr: MustCompile("per100(CACHE_MISSES, INSTRUCTIONS)"),
				Desc: "last-level cache misses per hundred instructions",
			},
		},
	}
}

// BranchScreen returns a screen focused on control flow.
func BranchScreen() *Screen {
	return &Screen{
		Name: "branch",
		Columns: []*Column{
			{
				Name: "ipc", Header: "IPC", Width: 5, Format: "%5.2f",
				Expr: MustCompile("ratio(INSTRUCTIONS, CYCLES)"),
				Desc: "executed instructions per cycle",
			},
			{
				Name: "bpi", Header: "BPI", Width: 5, Format: "%5.2f",
				Expr: MustCompile("ratio(BRANCHES, INSTRUCTIONS)"),
				Desc: "branches per instruction (instruction-mix metric, paper §2.6)",
			},
			{
				Name: "misp", Header: "%MISP", Width: 6, Format: "%6.2f",
				Expr: MustCompile("per100(BRANCH_MISSES, BRANCHES)"),
				Desc: "branch misprediction ratio, percent",
			},
		},
	}
}

// FPScreen returns the screen used in the §3.1 investigation: IPC next to
// micro-coded FP assists per hundred instructions ("We added a new column
// to tiptop in order to trace simultaneously IPC and FP assist events").
func FPScreen() *Screen {
	return &Screen{
		Name: "fp",
		Columns: []*Column{
			{
				Name: "ipc", Header: "IPC", Width: 5, Format: "%5.2f",
				Expr: MustCompile("ratio(INSTRUCTIONS, CYCLES)"),
				Desc: "executed instructions per cycle",
			},
			{
				Name: "assist", Header: "%ASST", Width: 6, Format: "%6.2f",
				Expr: MustCompile("per100(FP_ASSIST, INSTRUCTIONS)"),
				Desc: "FP operations needing micro-code assist, per hundred instructions",
			},
			{
				Name: "fpi", Header: "FPI", Width: 5, Format: "%5.2f",
				Expr: MustCompile("ratio(FP_OPS, INSTRUCTIONS)"),
				Desc: "floating-point operations per instruction (paper §2.6)",
			},
		},
	}
}

// MemoryScreen returns a screen for the memory subsystem, used by the
// §3.4 interference study (L2 and L3 misses per hundred instructions).
func MemoryScreen() *Screen {
	return &Screen{
		Name: "mem",
		Columns: []*Column{
			{
				Name: "ipc", Header: "IPC", Width: 5, Format: "%5.2f",
				Expr: MustCompile("ratio(INSTRUCTIONS, CYCLES)"),
				Desc: "executed instructions per cycle",
			},
			{
				Name: "lpi", Header: "LPI", Width: 5, Format: "%5.2f",
				Expr: MustCompile("ratio(LOADS, INSTRUCTIONS)"),
				Desc: "loads per instruction (paper §2.6)",
			},
			{
				Name: "l2m", Header: "L2M", Width: 6, Format: "%6.2f",
				Expr: MustCompile("per100(L2_MISSES, INSTRUCTIONS)"),
				Desc: "L2 cache misses per hundred instructions",
			},
			{
				Name: "l3m", Header: "L3M", Width: 6, Format: "%6.2f",
				Expr: MustCompile("per100(CACHE_MISSES, INSTRUCTIONS)"),
				Desc: "last-level cache misses per hundred instructions",
			},
		},
	}
}

// LatencyScreen implements the paper's stated future work (§3.4):
// "recent processors have counters for the latency of memory accesses.
// We plan to use them in the future to detect similar situations." It
// shows the average exposed DRAM latency per LLC miss and the fraction
// of cycles stalled on memory — rising latency under constant miss
// counts is the signature of DRAM-level contention (Moscibroda & Mutlu).
func LatencyScreen() *Screen {
	return &Screen{
		Name: "lat",
		Columns: []*Column{
			{
				Name: "ipc", Header: "IPC", Width: 5, Format: "%5.2f",
				Expr: MustCompile("ratio(INSTRUCTIONS, CYCLES)"),
				Desc: "executed instructions per cycle",
			},
			{
				Name: "l3m", Header: "L3M", Width: 6, Format: "%6.2f",
				Expr: MustCompile("per100(CACHE_MISSES, INSTRUCTIONS)"),
				Desc: "last-level cache misses per hundred instructions",
			},
			{
				Name: "lat", Header: "LAT", Width: 6, Format: "%6.1f",
				Expr: MustCompile("ratio(MEM_STALL_CYCLES, CACHE_MISSES)"),
				Desc: "average exposed memory latency per LLC miss, cycles",
			},
			{
				Name: "stall", Header: "%STL", Width: 5, Format: "%5.1f",
				Expr: MustCompile("per100(MEM_STALL_CYCLES, CYCLES)"),
				Desc: "fraction of cycles stalled on memory, percent",
			},
		},
	}
}

// RooflineScreen returns the §2.6 characterization metrics: FPC and LPC
// (Diamond et al.'s CPU- and memory-subsystem indicators) plus the
// instruction-mix ratios FPI/LPI/BPI the paper recommends for selecting
// the most appropriate processor in a binary-compatible family via the
// Roofline methodology.
func RooflineScreen() *Screen {
	return &Screen{
		Name: "roofline",
		Columns: []*Column{
			{
				Name: "fpc", Header: "FPC", Width: 5, Format: "%5.2f",
				Expr: MustCompile("ratio(FP_OPS, CYCLES)"),
				Desc: "floating-point operations per cycle (CPU subsystem)",
			},
			{
				Name: "lpc", Header: "LPC", Width: 5, Format: "%5.2f",
				Expr: MustCompile("ratio(LOADS, CYCLES)"),
				Desc: "loads per cycle (memory subsystem)",
			},
			{
				Name: "fpi", Header: "FPI", Width: 5, Format: "%5.2f",
				Expr: MustCompile("ratio(FP_OPS, INSTRUCTIONS)"),
				Desc: "floating-point operations per instruction",
			},
			{
				Name: "lpi", Header: "LPI", Width: 5, Format: "%5.2f",
				Expr: MustCompile("ratio(LOADS, INSTRUCTIONS)"),
				Desc: "loads per instruction",
			},
			{
				Name: "bpi", Header: "BPI", Width: 5, Format: "%5.2f",
				Expr: MustCompile("ratio(BRANCHES, INSTRUCTIONS)"),
				Desc: "branches per instruction",
			},
		},
	}
}

// WideScreen returns a deliberately oversubscribed screen: twelve
// hardware events at once, far beyond any real PMU's register count
// (the Cortex-A7 has four). It only renders meaningfully above a
// multiplexing backend — kernel-side scaling or internal/mux rotation —
// and carries the %SMPL column so the coverage behind the
// extrapolation stays visible.
func WideScreen() *Screen {
	return &Screen{
		Name: "wide",
		Columns: []*Column{
			{
				Name: "mcycle", Header: "Mcycle", Width: 8, Format: "%8.0f",
				Expr: MustCompile("mega(CYCLES)"),
				Desc: "execution cycles since last refresh, in millions",
			},
			{
				Name: "minst", Header: "Minst", Width: 8, Format: "%8.0f",
				Expr: MustCompile("mega(INSTRUCTIONS)"),
				Desc: "instructions retired since last refresh, in millions",
			},
			{
				Name: "ipc", Header: "IPC", Width: 5, Format: "%5.2f",
				Expr: MustCompile("ratio(INSTRUCTIONS, CYCLES)"),
				Desc: "executed instructions per cycle",
			},
			{
				Name: "ref", Header: "REF", Width: 6, Format: "%6.2f",
				Expr: MustCompile("per100(CACHE_REFERENCES, INSTRUCTIONS)"),
				Desc: "last-level cache references per hundred instructions",
			},
			{
				Name: "dmis", Header: "DMIS", Width: 5, Format: "%5.1f",
				Expr: MustCompile("per100(CACHE_MISSES, INSTRUCTIONS)"),
				Desc: "last-level cache misses per hundred instructions",
			},
			{
				Name: "l2m", Header: "L2M", Width: 6, Format: "%6.2f",
				Expr: MustCompile("per100(L2_MISSES, INSTRUCTIONS)"),
				Desc: "L2 cache misses per hundred instructions",
			},
			{
				Name: "misp", Header: "%MISP", Width: 6, Format: "%6.2f",
				Expr: MustCompile("per100(BRANCH_MISSES, BRANCHES)"),
				Desc: "branch misprediction ratio, percent",
			},
			{
				Name: "lpi", Header: "LPI", Width: 5, Format: "%5.2f",
				Expr: MustCompile("ratio(LOADS, INSTRUCTIONS)"),
				Desc: "loads per instruction",
			},
			{
				Name: "spi", Header: "SPI", Width: 5, Format: "%5.2f",
				Expr: MustCompile("ratio(STORES, INSTRUCTIONS)"),
				Desc: "stores per instruction",
			},
			{
				Name: "fpi", Header: "FPI", Width: 5, Format: "%5.2f",
				Expr: MustCompile("ratio(FP_OPS, INSTRUCTIONS)"),
				Desc: "floating-point operations per instruction",
			},
			{
				Name: "pgflt", Header: "PGFLT", Width: 6, Format: "%6.0f",
				Expr: MustCompile("PAGE_FAULTS"),
				Desc: "page faults taken since last refresh (software event, occupies no counter)",
			},
			{
				Name: "stall", Header: "%STL", Width: 5, Format: "%5.1f",
				Expr: MustCompile("per100(MEM_STALL_CYCLES, CYCLES)"),
				Desc: "fraction of cycles stalled on memory, percent",
			},
			{
				Name: "smpl", Header: "%SMPL", Width: 6, Format: "%6.1f",
				Expr: MustCompile("SMPL_PCT"),
				Desc: "counter coverage: fraction of the interval the events were actually counted, percent",
			},
		},
	}
}

// SystemScreen returns the screen for system-wide (per-CPU) monitoring:
// cycles and instructions next to the kernel software events — page
// faults, context switches, CPU migrations. Two hardware events plus
// three zero-cost software events fit even a two-register PMU without
// rotation.
func SystemScreen() *Screen {
	return &Screen{
		Name: "system",
		Columns: []*Column{
			{
				Name: "mcycle", Header: "Mcycle", Width: 8, Format: "%8.0f",
				Expr: MustCompile("mega(CYCLES)"),
				Desc: "execution cycles since last refresh, in millions",
			},
			{
				Name: "minst", Header: "Minst", Width: 8, Format: "%8.0f",
				Expr: MustCompile("mega(INSTRUCTIONS)"),
				Desc: "instructions retired since last refresh, in millions",
			},
			{
				Name: "ipc", Header: "IPC", Width: 5, Format: "%5.2f",
				Expr: MustCompile("ratio(INSTRUCTIONS, CYCLES)"),
				Desc: "executed instructions per cycle",
			},
			{
				Name: "pgflt", Header: "PGFLT", Width: 7, Format: "%7.0f",
				Expr: MustCompile("PAGE_FAULTS"),
				Desc: "page faults since last refresh (software event)",
			},
			{
				Name: "csw", Header: "CSW", Width: 7, Format: "%7.0f",
				Expr: MustCompile("CONTEXT_SWITCHES"),
				Desc: "context switches since last refresh (software event)",
			},
			{
				Name: "migr", Header: "MIGR", Width: 5, Format: "%5.0f",
				Expr: MustCompile("CPU_MIGRATIONS"),
				Desc: "cross-CPU task migrations since last refresh (software event)",
			},
		},
	}
}

// BuiltinScreens returns all predefined screens keyed by name.
func BuiltinScreens() map[string]*Screen {
	out := map[string]*Screen{}
	for _, s := range []*Screen{DefaultScreen(), BranchScreen(), FPScreen(), MemoryScreen(), LatencyScreen(), RooflineScreen(), WideScreen(), SystemScreen()} {
		out[s.Name] = s
	}
	return out
}

// ScreenNames returns the builtin screen names, sorted — the iteration
// order commands must use so listings are deterministic run to run.
func ScreenNames() []string {
	names := make([]string, 0, len(BuiltinScreens()))
	for name := range BuiltinScreens() {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
