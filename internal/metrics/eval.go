package metrics

import (
	"fmt"
	"math"
)

// Env resolves identifiers during evaluation. The engine provides an Env
// mapping event names to counter deltas for the current refresh interval
// plus context variables such as DELTA_NS.
type Env interface {
	// Lookup returns the value of the named variable and whether it is
	// defined.
	Lookup(name string) (float64, bool)
}

// MapEnv is an Env backed by a plain map, convenient for tests and for
// one-shot evaluations.
type MapEnv map[string]float64

// Lookup implements Env.
func (m MapEnv) Lookup(name string) (float64, bool) {
	v, ok := m[name]
	return v, ok
}

// EvalError describes an evaluation failure (undefined identifier).
type EvalError struct {
	Expr string
	Msg  string
}

func (e *EvalError) Error() string {
	return fmt.Sprintf("metrics: %s evaluating %q", e.Msg, e.Expr)
}

// Eval computes the expression in env. Division by zero yields 0 rather
// than an error or Inf: a task that retired no instructions during an
// interval simply shows an empty/zero ratio in the table, exactly as a
// freshly attached counter pair would in the original tool.
func (e *Expr) Eval(env Env) (float64, error) {
	return e.root.eval(env)
}

func (n *numberNode) eval(Env) (float64, error) { return n.val, nil }

func (n *identNode) eval(env Env) (float64, error) {
	v, ok := env.Lookup(n.name)
	if !ok {
		return 0, &EvalError{Expr: n.name, Msg: "undefined identifier " + n.name}
	}
	return v, nil
}

func (n *unaryNode) eval(env Env) (float64, error) {
	v, err := n.expr.eval(env)
	if err != nil {
		return 0, err
	}
	return -v, nil
}

func (n *binaryNode) eval(env Env) (float64, error) {
	l, err := n.l.eval(env)
	if err != nil {
		return 0, err
	}
	r, err := n.r.eval(env)
	if err != nil {
		return 0, err
	}
	switch n.op {
	case tokPlus:
		return l + r, nil
	case tokMinus:
		return l - r, nil
	case tokStar:
		return l * r, nil
	case tokSlash:
		if r == 0 {
			return 0, nil
		}
		return l / r, nil
	case tokPercent:
		if r == 0 {
			return 0, nil
		}
		return math.Mod(l, r), nil
	case tokEQ:
		return boolVal(l == r), nil
	case tokNE:
		return boolVal(l != r), nil
	case tokLT:
		return boolVal(l < r), nil
	case tokGT:
		return boolVal(l > r), nil
	case tokLE:
		return boolVal(l <= r), nil
	case tokGE:
		return boolVal(l >= r), nil
	}
	return 0, &EvalError{Expr: "?", Msg: "internal: unknown operator"}
}

func (n *condNode) eval(env Env) (float64, error) {
	c, err := n.cond.eval(env)
	if err != nil {
		return 0, err
	}
	if c != 0 {
		return n.then.eval(env)
	}
	return n.els.eval(env)
}

func (n *callNode) eval(env Env) (float64, error) {
	args := make([]float64, len(n.args))
	for i, a := range n.args {
		v, err := a.eval(env)
		if err != nil {
			return 0, err
		}
		args[i] = v
	}
	return n.fn.impl(args), nil
}

func boolVal(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// builtin is a pure function callable from expressions.
type builtin struct {
	arity int
	impl  func(args []float64) float64
	doc   string
}

// builtins is the function table. All functions are total: they return 0
// instead of NaN/Inf on degenerate inputs, keeping table cells printable.
var builtins = map[string]*builtin{
	"ratio": {2, func(a []float64) float64 {
		if a[1] == 0 {
			return 0
		}
		return a[0] / a[1]
	}, "ratio(a,b) = a/b, 0 when b==0"},
	"per100": {2, func(a []float64) float64 {
		if a[1] == 0 {
			return 0
		}
		return 100 * a[0] / a[1]
	}, "per100(a,b) = occurrences of a per hundred b (e.g. misses per 100 instructions)"},
	"per1000": {2, func(a []float64) float64 {
		if a[1] == 0 {
			return 0
		}
		return 1000 * a[0] / a[1]
	}, "per1000(a,b) = occurrences of a per thousand b"},
	"min": {2, func(a []float64) float64 { return math.Min(a[0], a[1]) },
		"min(a,b)"},
	"max": {2, func(a []float64) float64 { return math.Max(a[0], a[1]) },
		"max(a,b)"},
	"abs": {1, func(a []float64) float64 { return math.Abs(a[0]) },
		"abs(a)"},
	"sqrt": {1, func(a []float64) float64 {
		if a[0] < 0 {
			return 0
		}
		return math.Sqrt(a[0])
	}, "sqrt(a), 0 for negative input"},
	"log2": {1, func(a []float64) float64 {
		if a[0] <= 0 {
			return 0
		}
		return math.Log2(a[0])
	}, "log2(a), 0 for non-positive input"},
	"clamp": {3, func(a []float64) float64 {
		v := a[0]
		if v < a[1] {
			v = a[1]
		}
		if v > a[2] {
			v = a[2]
		}
		return v
	}, "clamp(x,lo,hi)"},
	"mega": {1, func(a []float64) float64 { return a[0] / 1e6 },
		"mega(a) = a/1e6 (counts in millions, as the Mcycle/Minst columns)"},
	"giga": {1, func(a []float64) float64 { return a[0] / 1e9 },
		"giga(a) = a/1e9"},
}

// Builtins returns the names and one-line docs of all expression
// functions, for --help output.
func Builtins() map[string]string {
	out := make(map[string]string, len(builtins))
	for name, b := range builtins {
		out[name] = b.doc
	}
	return out
}
