package metrics

import (
	"fmt"
	"math"
)

// Env resolves identifiers during evaluation. The engine provides an Env
// mapping event names to counter deltas for the current refresh interval
// plus context variables such as DELTA_NS.
type Env interface {
	// Lookup returns the value of the named variable and whether it is
	// defined.
	Lookup(name string) (float64, bool)
}

// MapEnv is an Env backed by a plain map, convenient for tests and for
// one-shot evaluations.
type MapEnv map[string]float64

// Lookup implements Env.
func (m MapEnv) Lookup(name string) (float64, bool) {
	v, ok := m[name]
	return v, ok
}

// EvalError describes an evaluation failure (undefined identifier).
type EvalError struct {
	Expr string
	Msg  string
}

func (e *EvalError) Error() string {
	return fmt.Sprintf("metrics: %s evaluating %q", e.Msg, e.Expr)
}

// Eval computes the expression in env. Evaluation is total: division
// and modulo by zero yield 0 rather than an error or Inf (a task that
// retired no instructions during an interval simply shows an
// empty/zero ratio in the table, exactly as a freshly attached counter
// pair would in the original tool), and any non-finite result that
// still arises (overflow to ±Inf, NaN from Inf-Inf) is clamped to 0 at
// the evaluation boundary. The same rule holds on every path — live
// screen cells, store-backed range queries and fleet merges — so an
// expression renders identically wherever it runs and OpenMetrics
// output never carries NaN.
func (e *Expr) Eval(env Env) (float64, error) {
	v, err := e.root.eval(env)
	if err != nil {
		return 0, err
	}
	return finite(v), nil
}

// finite implements the total-evaluation rule: non-finite values
// become 0 at the evaluation boundary.
func finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

func (n *numberNode) eval(Env) (float64, error) { return n.val, nil }

func (n *identNode) eval(env Env) (float64, error) {
	v, ok := env.Lookup(n.name)
	if !ok {
		return 0, &EvalError{Expr: n.name, Msg: "undefined identifier " + n.name}
	}
	return v, nil
}

func (n *unaryNode) eval(env Env) (float64, error) {
	v, err := n.expr.eval(env)
	if err != nil {
		return 0, err
	}
	return -v, nil
}

func (n *binaryNode) eval(env Env) (float64, error) {
	l, err := n.l.eval(env)
	if err != nil {
		return 0, err
	}
	r, err := n.r.eval(env)
	if err != nil {
		return 0, err
	}
	switch n.op {
	case tokPlus:
		return l + r, nil
	case tokMinus:
		return l - r, nil
	case tokStar:
		return l * r, nil
	case tokSlash:
		if r == 0 {
			return 0, nil
		}
		return l / r, nil
	case tokPercent:
		if r == 0 {
			return 0, nil
		}
		return math.Mod(l, r), nil
	case tokEQ:
		return boolVal(l == r), nil
	case tokNE:
		return boolVal(l != r), nil
	case tokLT:
		return boolVal(l < r), nil
	case tokGT:
		return boolVal(l > r), nil
	case tokLE:
		return boolVal(l <= r), nil
	case tokGE:
		return boolVal(l >= r), nil
	}
	return 0, &EvalError{Expr: "?", Msg: "internal: unknown operator"}
}

func (n *condNode) eval(env Env) (float64, error) {
	// Both branches evaluate eagerly: evaluation is total and
	// side-effect-free, so the only observable difference is that an
	// unbound identifier errors even when its branch is not taken —
	// `0 ? A : 0` must not silently mask a missing name.
	c, err := n.cond.eval(env)
	if err != nil {
		return 0, err
	}
	tv, err := n.then.eval(env)
	if err != nil {
		return 0, err
	}
	ev, err := n.els.eval(env)
	if err != nil {
		return 0, err
	}
	if c != 0 {
		return tv, nil
	}
	return ev, nil
}

func (n *callNode) eval(env Env) (float64, error) {
	args := make([]float64, len(n.args))
	for i, a := range n.args {
		v, err := a.eval(env)
		if err != nil {
			return 0, err
		}
		args[i] = v
	}
	if n.fn.envImpl != nil {
		return n.fn.envImpl(env, args), nil
	}
	return n.fn.impl(args), nil
}

func boolVal(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// builtin is a function callable from expressions. Most are pure
// (impl); a few read context variables from the environment (envImpl,
// used instead of impl when set) or carry series-level meaning the
// bucket evaluator intercepts (the *_over_time family, topk).
type builtin struct {
	arity   int
	impl    func(args []float64) float64
	envImpl func(env Env, args []float64) float64
	doc     string
}

// overTimeFolds maps the *_over_time functions to their point-fold.
// Over a bucket the argument is evaluated at every point and folded;
// in an instant context (a live screen cell, where the bucket is the
// single refresh interval) the fold of one point is the point itself,
// so the instant impl is the identity.
var overTimeFolds = map[string]func(acc, v float64, n int) float64{
	"avg_over_time": func(acc, v float64, n int) float64 { return acc + v },
	"sum_over_time": func(acc, v float64, n int) float64 { return acc + v },
	"min_over_time": func(acc, v float64, n int) float64 {
		if n == 0 || v < acc {
			return v
		}
		return acc
	},
	"max_over_time": func(acc, v float64, n int) float64 {
		if n == 0 || v > acc {
			return v
		}
		return acc
	},
}

// builtins is the function table. All functions are total: they return 0
// instead of NaN/Inf on degenerate inputs, keeping table cells printable.
var builtins = map[string]*builtin{
	"ratio": {arity: 2, impl: func(a []float64) float64 {
		if a[1] == 0 {
			return 0
		}
		return a[0] / a[1]
	}, doc: "ratio(a,b) = a/b, 0 when b==0"},
	"per100": {arity: 2, impl: func(a []float64) float64 {
		if a[1] == 0 {
			return 0
		}
		return 100 * a[0] / a[1]
	}, doc: "per100(a,b) = occurrences of a per hundred b (e.g. misses per 100 instructions)"},
	"per1000": {arity: 2, impl: func(a []float64) float64 {
		if a[1] == 0 {
			return 0
		}
		return 1000 * a[0] / a[1]
	}, doc: "per1000(a,b) = occurrences of a per thousand b"},
	"min": {arity: 2, impl: func(a []float64) float64 { return math.Min(a[0], a[1]) },
		doc: "min(a,b)"},
	"max": {arity: 2, impl: func(a []float64) float64 { return math.Max(a[0], a[1]) },
		doc: "max(a,b)"},
	"abs": {arity: 1, impl: func(a []float64) float64 { return math.Abs(a[0]) },
		doc: "abs(a)"},
	"sqrt": {arity: 1, impl: func(a []float64) float64 {
		if a[0] < 0 {
			return 0
		}
		return math.Sqrt(a[0])
	}, doc: "sqrt(a), 0 for negative input"},
	"log2": {arity: 1, impl: func(a []float64) float64 {
		if a[0] <= 0 {
			return 0
		}
		return math.Log2(a[0])
	}, doc: "log2(a), 0 for non-positive input"},
	"clamp": {arity: 3, impl: func(a []float64) float64 {
		v := a[0]
		if v < a[1] {
			v = a[1]
		}
		if v > a[2] {
			v = a[2]
		}
		return v
	}, doc: "clamp(x,lo,hi)"},
	"mega": {arity: 1, impl: func(a []float64) float64 { return a[0] / 1e6 },
		doc: "mega(a) = a/1e6 (counts in millions, as the Mcycle/Minst columns)"},
	"giga": {arity: 1, impl: func(a []float64) float64 { return a[0] / 1e9 },
		doc: "giga(a) = a/1e9"},

	// Series-oriented functions shared with the query engine. Their
	// instant forms are chosen so a live screen cell and a one-point
	// query bucket agree exactly.
	"delta": {arity: 1, impl: func(a []float64) float64 { return a[0] },
		doc: "delta(e) = change of counter e over the interval (identifiers already are interval deltas, so this is the identity — kept for .tiptoprc compatibility)"},
	"rate": {arity: 1, envImpl: func(env Env, a []float64) float64 {
		dt, ok := env.Lookup(VarDeltaNS)
		if !ok || dt <= 0 {
			return 0
		}
		return a[0] * 1e9 / dt
	}, doc: "rate(e) = delta(e) per second of wall clock (delta * 1e9 / DELTA_NS), 0 when the interval is unknown"},
	"avg_over_time": {arity: 1, impl: func(a []float64) float64 { return a[0] },
		doc: "avg_over_time(e) = mean of e over the points inside the query bucket"},
	"min_over_time": {arity: 1, impl: func(a []float64) float64 { return a[0] },
		doc: "min_over_time(e) = minimum of e over the points inside the query bucket"},
	"max_over_time": {arity: 1, impl: func(a []float64) float64 { return a[0] },
		doc: "max_over_time(e) = maximum of e over the points inside the query bucket"},
	"sum_over_time": {arity: 1, impl: func(a []float64) float64 { return a[0] },
		doc: "sum_over_time(e) = sum of e over the points inside the query bucket"},
	"topk": {arity: 2, impl: func(a []float64) float64 { return a[1] },
		doc: "topk(k, e) = the k series with the highest mean e (query engine only; must be the outermost construct)"},
}

// Builtins returns the names and one-line docs of all expression
// functions, for --help output.
func Builtins() map[string]string {
	out := make(map[string]string, len(builtins))
	for name, b := range builtins {
		out[name] = b.doc
	}
	return out
}
