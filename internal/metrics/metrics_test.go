package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func mustEval(t *testing.T, src string, env Env) float64 {
	t.Helper()
	e, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	v, err := e.Eval(env)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	env := MapEnv{}
	cases := []struct {
		src  string
		want float64
	}{
		{"1+2", 3},
		{"2*3+4", 10},
		{"2+3*4", 14},
		{"(2+3)*4", 20},
		{"10/4", 2.5},
		{"10/0", 0}, // guarded division
		{"7%3", 1},
		{"7%0", 0}, // guarded modulo
		{"-3+5", 2},
		{"--3", 3},
		{"+5", 5},
		{"2*-3", -6},
		{"1e3", 1000},
		{"1.5e-2", 0.015},
		{"2e2+1", 201},
		{".5*4", 2},
	}
	for _, c := range cases {
		if got := mustEval(t, c.src, env); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestComparisonAndConditional(t *testing.T) {
	env := MapEnv{"X": 5}
	cases := []struct {
		src  string
		want float64
	}{
		{"X > 3", 1},
		{"X < 3", 0},
		{"X >= 5", 1},
		{"X <= 4", 0},
		{"X == 5", 1},
		{"X != 5", 0},
		{"X > 3 ? 10 : 20", 10},
		{"X < 3 ? 10 : 20", 20},
		{"X > 3 ? X > 4 ? 1 : 2 : 3", 1}, // nested right-assoc
		{"1 ? 2 : 0 ? 3 : 4", 2},
	}
	for _, c := range cases {
		if got := mustEval(t, c.src, env); got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestIdentifiers(t *testing.T) {
	env := MapEnv{"CYCLES": 200, "INSTRUCTIONS": 400}
	if got := mustEval(t, "INSTRUCTIONS / CYCLES", env); got != 2 {
		t.Fatalf("IPC = %v, want 2", got)
	}
	e := MustCompile("per100(CACHE_MISSES, INSTRUCTIONS) + CYCLES*0 + DELTA_NS*0")
	ids := e.Identifiers()
	want := []string{"CACHE_MISSES", "INSTRUCTIONS", "CYCLES", "DELTA_NS"}
	if len(ids) != len(want) {
		t.Fatalf("Identifiers = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("Identifiers[%d] = %q, want %q", i, ids[i], want[i])
		}
	}
}

func TestUndefinedIdentifier(t *testing.T) {
	e := MustCompile("FOO + 1")
	_, err := e.Eval(MapEnv{})
	if err == nil {
		t.Fatal("expected error for undefined identifier")
	}
	var ee *EvalError
	if !asEvalError(err, &ee) {
		t.Fatalf("error type = %T", err)
	}
	if !strings.Contains(err.Error(), "FOO") {
		t.Fatalf("error should name the identifier: %v", err)
	}
}

func asEvalError(err error, target **EvalError) bool {
	if e, ok := err.(*EvalError); ok {
		*target = e
		return true
	}
	return false
}

func TestBuiltinFunctions(t *testing.T) {
	env := MapEnv{"A": 3, "B": 12}
	cases := []struct {
		src  string
		want float64
	}{
		{"ratio(A, B)", 0.25},
		{"ratio(A, 0)", 0},
		{"per100(A, B)", 25},
		{"per100(A, 0)", 0},
		{"per1000(A, B)", 250},
		{"min(A, B)", 3},
		{"max(A, B)", 12},
		{"abs(-4)", 4},
		{"sqrt(16)", 4},
		{"sqrt(-1)", 0},
		{"log2(8)", 3},
		{"log2(0)", 0},
		{"clamp(5, 0, 3)", 3},
		{"clamp(-5, 0, 3)", 0},
		{"clamp(2, 0, 3)", 2},
		{"mega(3e6)", 3},
		{"giga(2e9)", 2},
	}
	for _, c := range cases {
		if got := mustEval(t, c.src, env); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestSyntaxErrors(t *testing.T) {
	bad := []string{
		"", "1+", "(1", "1)", "foo(1)", "ratio(1)", "ratio(1,2,3)",
		"min(", "1 ? 2", "1 ? 2 :", "@", "=", "!", "1..2", ".", "1e",
		"1e+", "2 3", "a b",
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
}

func TestSyntaxErrorPosition(t *testing.T) {
	_, err := Compile("1 + @")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type = %T", err)
	}
	if se.Pos != 4 {
		t.Fatalf("Pos = %d, want 4", se.Pos)
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompile of bad source must panic")
		}
	}()
	MustCompile("1 +")
}

func TestCanonicalRendering(t *testing.T) {
	e := MustCompile("1+2*3")
	if got := e.String(); got != "(1 + (2 * 3))" {
		t.Fatalf("String = %q", got)
	}
	if e.Source() != "1+2*3" {
		t.Fatalf("Source = %q", e.Source())
	}
	// Rendered form must re-parse to an equivalent expression.
	e2, err := Compile(e.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	v1, _ := e.Eval(MapEnv{})
	v2, _ := e2.Eval(MapEnv{})
	if v1 != v2 {
		t.Fatalf("reparse changed value: %v vs %v", v1, v2)
	}
}

// Property: rendering then re-parsing preserves the value for random
// arithmetic expressions built from a tiny generator.
func TestPropRenderRoundTrip(t *testing.T) {
	ops := []string{"+", "-", "*", "/"}
	f := func(a, b, c uint8, opIdx1, opIdx2 uint8) bool {
		src := ""
		src += itoa(int(a)%100) + ops[int(opIdx1)%4] + itoa(int(b)%100) + ops[int(opIdx2)%4] + itoa(int(c)%99+1)
		e1, err := Compile(src)
		if err != nil {
			return false
		}
		e2, err := Compile(e1.String())
		if err != nil {
			return false
		}
		v1, err1 := e1.Eval(MapEnv{})
		v2, err2 := e2.Eval(MapEnv{})
		if err1 != nil || err2 != nil {
			return false
		}
		if math.IsNaN(v1) {
			return math.IsNaN(v2)
		}
		return math.Abs(v1-v2) <= 1e-9*(1+math.Abs(v1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// Property: precedence — a+b*c equals a+(b*c) for arbitrary values.
func TestPropPrecedence(t *testing.T) {
	f := func(a, b, c int16) bool {
		env := MapEnv{"A": float64(a), "B": float64(b), "C": float64(c)}
		v1 := mustEvalQuiet("A+B*C", env)
		v2 := mustEvalQuiet("A+(B*C)", env)
		v3 := mustEvalQuiet("(A+B)*C", env)
		if v1 != v2 {
			return false
		}
		// If they happen to coincide that's fine; only check the
		// common case where grouping matters.
		if float64(a) != 0 && float64(c) != 1 && v1 == v3 && float64(a)+float64(b)*float64(c) != (float64(a)+float64(b))*float64(c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func mustEvalQuiet(src string, env Env) float64 {
	e, err := Compile(src)
	if err != nil {
		return math.NaN()
	}
	v, err := e.Eval(env)
	if err != nil {
		return math.NaN()
	}
	return v
}

func TestColumnCellFormatting(t *testing.T) {
	col := &Column{
		Name: "ipc", Header: "IPC", Width: 7, Format: "%5.2f",
		Expr: MustCompile("ratio(INSTRUCTIONS, CYCLES)"),
	}
	cell := col.Cell(1.975)
	if cell != "   1.98" {
		t.Fatalf("Cell = %q", cell)
	}
}

func TestColumnIdentifiers(t *testing.T) {
	col := &Column{
		Name: "dmis", Header: "DMIS", Width: 5, Format: "%5.1f",
		Expr: MustCompile("per100(CACHE_MISSES, INSTRUCTIONS) + DELTA_NS*0"),
	}
	ids := col.Identifiers()
	if len(ids) != 2 || ids[0] != "CACHE_MISSES" || ids[1] != "INSTRUCTIONS" {
		t.Fatalf("Identifiers = %v", ids)
	}
	if !IsContextVar("DELTA_NS") || IsContextVar("CACHE_MISSES") {
		t.Fatal("IsContextVar misclassifies")
	}
}

func TestDefaultScreenMatchesFigure1(t *testing.T) {
	s := DefaultScreen()
	headers := []string{"Mcycle", "Minst", "IPC", "DMIS"}
	if len(s.Columns) != len(headers) {
		t.Fatalf("columns = %d", len(s.Columns))
	}
	for i, h := range headers {
		if s.Columns[i].Header != h {
			t.Fatalf("column %d header = %q, want %q", i, s.Columns[i].Header, h)
		}
	}
	// Figure 1 row: 26456 Mcycle, 52125 Minst -> IPC 1.97
	env := MapEnv{"CYCLES": 26456e6, "INSTRUCTIONS": 52125e6, "CACHE_MISSES": 0}
	ipc, err := s.Column("ipc").Expr.Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ipc-1.97) > 0.005 {
		t.Fatalf("IPC = %v, want 1.97", ipc)
	}
	mc, _ := s.Column("mcycle").Expr.Eval(env)
	if mc != 26456 {
		t.Fatalf("Mcycle = %v", mc)
	}
}

func TestScreenIdentifiersUnion(t *testing.T) {
	s := DefaultScreen()
	ids := s.Identifiers()
	want := []string{"CYCLES", "INSTRUCTIONS", "CACHE_MISSES"}
	if len(ids) != len(want) {
		t.Fatalf("Identifiers = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("Identifiers[%d] = %v, want %v", i, ids[i], want[i])
		}
	}
}

func TestScreenColumnLookup(t *testing.T) {
	s := DefaultScreen()
	if s.Column("ipc") == nil {
		t.Fatal("ipc column missing")
	}
	if s.Column("nope") != nil {
		t.Fatal("unexpected column")
	}
}

func TestBuiltinScreens(t *testing.T) {
	all := BuiltinScreens()
	for _, name := range []string{"default", "branch", "fp", "mem", "lat"} {
		s, ok := all[name]
		if !ok {
			t.Fatalf("screen %q missing", name)
		}
		if len(s.Columns) == 0 {
			t.Fatalf("screen %q has no columns", name)
		}
		for _, c := range s.Columns {
			if c.Expr == nil {
				t.Fatalf("screen %q column %q has nil expr", name, c.Name)
			}
		}
	}
}

func TestBuiltinsDoc(t *testing.T) {
	docs := Builtins()
	if len(docs) == 0 {
		t.Fatal("no builtins documented")
	}
	for name, doc := range docs {
		if doc == "" {
			t.Fatalf("builtin %q lacks doc", name)
		}
	}
}

func TestLatencyScreenFutureWork(t *testing.T) {
	// §3.4 future work: average memory latency per LLC miss. 5000
	// stall cycles over 100 misses -> 50 cycles average; 5000 of
	// 100000 cycles -> 5% stalled.
	s := LatencyScreen()
	env := MapEnv{
		"MEM_STALL_CYCLES": 5000, "CACHE_MISSES": 100,
		"CYCLES": 100000, "INSTRUCTIONS": 120000,
	}
	lat, err := s.Column("lat").Expr.Eval(env)
	if err != nil || lat != 50 {
		t.Fatalf("LAT = %v, %v; want 50", lat, err)
	}
	stall, err := s.Column("stall").Expr.Eval(env)
	if err != nil || stall != 5 {
		t.Fatalf("%%STL = %v, %v; want 5", stall, err)
	}
	found := false
	for _, id := range s.Identifiers() {
		if id == "MEM_STALL_CYCLES" {
			found = true
		}
	}
	if !found {
		t.Fatal("latency screen must request MEM_STALL_CYCLES")
	}
}

func TestFPScreenAssistColumn(t *testing.T) {
	s := FPScreen()
	// Table 1: x87 with non-finite operands -> 25% of instructions are
	// assisted (1 fadd per 4-instruction loop body).
	env := MapEnv{"FP_ASSIST": 25, "INSTRUCTIONS": 100, "CYCLES": 6667, "FP_OPS": 25}
	got, err := s.Column("assist").Expr.Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	if got != 25 {
		t.Fatalf("%%ASST = %v, want 25", got)
	}
}
