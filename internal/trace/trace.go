// Package trace records time series of per-task metrics (the data behind
// every figure in the paper) and renders them as CSV for external
// plotting, as gnuplot scripts, and as self-contained ASCII plots for
// terminal inspection.
package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Point is one sample of one series.
type Point struct {
	X float64
	Y float64
}

// Series is a named sequence of points (one curve of a figure).
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.Points = append(s.Points, Point{X: x, Y: y})
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Points) }

// MeanY returns the average Y value, 0 when empty.
func (s *Series) MeanY() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s.Points {
		sum += p.Y
	}
	return sum / float64(len(s.Points))
}

// WindowMeanY averages Y over points whose X lies in [lo, hi).
func (s *Series) WindowMeanY(lo, hi float64) float64 {
	var sum float64
	var n int
	for _, p := range s.Points {
		if p.X >= lo && p.X < hi {
			sum += p.Y
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MaxX returns the largest X, 0 when empty.
func (s *Series) MaxX() float64 {
	var m float64
	for _, p := range s.Points {
		if p.X > m {
			m = p.X
		}
	}
	return m
}

// Plot is a collection of series plus axis labels — one paper figure.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewPlot creates an empty plot.
func NewPlot(title, xlabel, ylabel string) *Plot {
	return &Plot{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// NewSeries adds and returns a fresh series.
func (p *Plot) NewSeries(name string) *Series {
	s := &Series{Name: name}
	p.Series = append(p.Series, s)
	return s
}

// Get returns the series with the given name, or nil.
func (p *Plot) Get(name string) *Series {
	for _, s := range p.Series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// WriteCSV emits the plot as a wide CSV: the union of X values in the
// first column, one column per series. Missing values are left empty.
func (p *Plot) WriteCSV(w io.Writer) error {
	xsSet := map[float64]bool{}
	for _, s := range p.Series {
		for _, pt := range s.Points {
			xsSet[pt.X] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	// Index series by X for sparse lookup.
	cols := make([]map[float64]float64, len(p.Series))
	for i, s := range p.Series {
		cols[i] = make(map[float64]float64, len(s.Points))
		for _, pt := range s.Points {
			cols[i][pt.X] = pt.Y
		}
	}
	var b strings.Builder
	b.WriteString(csvEscape(p.XLabel))
	for _, s := range p.Series {
		b.WriteByte(',')
		b.WriteString(csvEscape(s.Name))
	}
	b.WriteByte('\n')
	for _, x := range xs {
		fmt.Fprintf(&b, "%g", x)
		for i := range p.Series {
			b.WriteByte(',')
			if y, ok := cols[i][x]; ok {
				fmt.Fprintf(&b, "%g", y)
			}
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// WriteGnuplot emits a gnuplot script that plots the CSV written by
// WriteCSV from the given data file name.
func (p *Plot) WriteGnuplot(w io.Writer, dataFile string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "set title %q\nset xlabel %q\nset ylabel %q\n",
		p.Title, p.XLabel, p.YLabel)
	b.WriteString("set datafile separator ','\nset key outside\nset grid\n")
	b.WriteString("plot ")
	for i, s := range p.Series {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%q using 1:%d with lines title %q", dataFile, i+2, s.Name)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// markers distinguish series in ASCII plots.
var markers = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// RenderASCII draws the plot into a width x height character grid with
// simple axes — enough to eyeball every figure's shape in a terminal or
// a test log.
func (p *Plot) RenderASCII(width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	var any bool
	for _, s := range p.Series {
		for _, pt := range s.Points {
			any = true
			minX, maxX = math.Min(minX, pt.X), math.Max(maxX, pt.X)
			minY, maxY = math.Min(minY, pt.Y), math.Max(maxY, pt.Y)
		}
	}
	if !any {
		return p.Title + ": (no data)\n"
	}
	if minY > 0 {
		minY = 0 // anchor at zero like the paper's IPC plots
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range p.Series {
		mark := markers[si%len(markers)]
		for _, pt := range s.Points {
			col := int((pt.X - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((pt.Y-minY)/(maxY-minY)*float64(height-1))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = mark
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", p.Title)
	for i, line := range grid {
		yVal := maxY - (maxY-minY)*float64(i)/float64(height-1)
		fmt.Fprintf(&b, "%8.2f |%s\n", yVal, string(line))
	}
	fmt.Fprintf(&b, "%8s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%8s  %-*g%*g\n", "", width/2, minX, width-width/2, maxX)
	legend := make([]string, 0, len(p.Series))
	for si, s := range p.Series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	fmt.Fprintf(&b, "%8s  x: %s, y: %s | %s\n", "", p.XLabel, p.YLabel, strings.Join(legend, ", "))
	return b.String()
}

// Recorder accumulates per-key series over time, keyed by (task, metric)
// labels, turning engine samples into figures.
type Recorder struct {
	plot *Plot
	// XUnit scales the recorded X value (e.g. seconds per tick).
	XUnit time.Duration
}

// NewRecorder creates a recorder whose X axis is time in units of xunit
// (the paper uses 1, 5, or 10 seconds per tick).
func NewRecorder(title, ylabel string, xunit time.Duration) *Recorder {
	xl := fmt.Sprintf("time (%s/tick)", xunit)
	return &Recorder{plot: NewPlot(title, xl, ylabel), XUnit: xunit}
}

// Record appends a value for the named series at time t.
func (r *Recorder) Record(series string, t time.Duration, y float64) {
	s := r.plot.Get(series)
	if s == nil {
		s = r.plot.NewSeries(series)
	}
	s.Add(float64(t)/float64(r.XUnit), y)
}

// Plot returns the assembled figure.
func (r *Recorder) Plot() *Plot { return r.plot }
