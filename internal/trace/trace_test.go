package trace

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSeriesBasics(t *testing.T) {
	var s Series
	if s.MeanY() != 0 || s.MaxX() != 0 || s.Len() != 0 {
		t.Fatal("empty series accessors")
	}
	s.Add(0, 1)
	s.Add(1, 3)
	if s.Len() != 2 {
		t.Fatal("Len")
	}
	if s.MeanY() != 2 {
		t.Fatalf("MeanY = %v", s.MeanY())
	}
	if s.MaxX() != 1 {
		t.Fatalf("MaxX = %v", s.MaxX())
	}
}

func TestWindowMeanY(t *testing.T) {
	var s Series
	for i := 0; i < 10; i++ {
		s.Add(float64(i), float64(i))
	}
	if got := s.WindowMeanY(2, 5); got != 3 {
		t.Fatalf("WindowMeanY = %v, want 3", got)
	}
	if got := s.WindowMeanY(100, 200); got != 0 {
		t.Fatalf("empty window = %v", got)
	}
}

func TestPlotSeriesManagement(t *testing.T) {
	p := NewPlot("t", "x", "y")
	a := p.NewSeries("a")
	if p.Get("a") != a {
		t.Fatal("Get must find the series")
	}
	if p.Get("b") != nil {
		t.Fatal("phantom series")
	}
}

func TestWriteCSV(t *testing.T) {
	p := NewPlot("fig", "time", "IPC")
	a := p.NewSeries("gcc")
	b := p.NewSeries("icc")
	a.Add(0, 2.0)
	a.Add(1, 2.1)
	b.Add(1, 1.7)
	var sb strings.Builder
	if err := p.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "time,gcc,icc\n0,2,\n1,2.1,1.7\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestCSVEscaping(t *testing.T) {
	p := NewPlot("fig", "x", "y")
	s := p.NewSeries(`weird,"name"`)
	s.Add(0, 1)
	var sb strings.Builder
	if err := p.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"weird,""name"""`) {
		t.Fatalf("escaping failed: %q", sb.String())
	}
}

func TestWriteGnuplot(t *testing.T) {
	p := NewPlot("fig 9", "time", "IPC")
	p.NewSeries("gcc").Add(0, 1)
	p.NewSeries("icc").Add(0, 2)
	var sb strings.Builder
	if err := p.WriteGnuplot(&sb, "fig9.csv"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`set title "fig 9"`, `using 1:2`, `using 1:3`, `"gcc"`, `"icc"`} {
		if !strings.Contains(out, want) {
			t.Errorf("gnuplot missing %q in %q", want, out)
		}
	}
}

func TestRenderASCII(t *testing.T) {
	p := NewPlot("ipc", "time", "IPC")
	s := p.NewSeries("run")
	for i := 0; i < 50; i++ {
		s.Add(float64(i), 1+0.5*math.Sin(float64(i)/5))
	}
	out := p.RenderASCII(60, 10)
	if !strings.Contains(out, "ipc") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "*") {
		t.Fatal("markers missing")
	}
	if !strings.Contains(out, "x: time, y: IPC") {
		t.Fatal("axis legend missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + height rows + axis + xlabels + legend
	if len(lines) != 1+10+3 {
		t.Fatalf("line count = %d", len(lines))
	}
}

func TestRenderASCIIEmptyAndDegenerate(t *testing.T) {
	p := NewPlot("empty", "x", "y")
	if !strings.Contains(p.RenderASCII(40, 8), "(no data)") {
		t.Fatal("empty plot must say so")
	}
	// A single point must not divide by zero.
	p2 := NewPlot("point", "x", "y")
	p2.NewSeries("s").Add(5, 5)
	out := p2.RenderASCII(10, 3) // also exercises min clamps
	if out == "" {
		t.Fatal("degenerate plot must render")
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder("Figure 3 (a)", "IPC", 5*time.Second)
	r.Record("ipc", 0, 1.0)
	r.Record("ipc", 10*time.Second, 1.1)
	r.Record("assist", 10*time.Second, 3)
	p := r.Plot()
	if len(p.Series) != 2 {
		t.Fatalf("series = %d", len(p.Series))
	}
	s := p.Get("ipc")
	if s.Points[1].X != 2 {
		t.Fatalf("x scaling: got %v ticks, want 2 (10s / 5s-per-tick)", s.Points[1].X)
	}
	if !strings.Contains(p.XLabel, "5s/tick") {
		t.Fatalf("xlabel = %q", p.XLabel)
	}
}

// Property: CSV round-trip preserves the number of data rows (distinct X
// values across all series).
func TestPropCSVRows(t *testing.T) {
	f := func(xsRaw []uint16) bool {
		p := NewPlot("t", "x", "y")
		s := p.NewSeries("s")
		seen := map[float64]bool{}
		for _, x := range xsRaw {
			xv := float64(x % 100)
			if !seen[xv] {
				seen[xv] = true
				s.Add(xv, 1)
			}
		}
		var sb strings.Builder
		if p.WriteCSV(&sb) != nil {
			return false
		}
		lines := strings.Count(sb.String(), "\n")
		return lines == 1+len(seen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
