package store

// Record format v2: the columnar layout compaction rewrites sealed
// segments into. The framing (length/CRC header, torn-tail clipping)
// is unchanged; only the payload differs. Version sniffing is by first
// payload byte — '{' (0x7b) opens a v1 JSON document, 0x02 a v2 binary
// frame, and anything else in 0x02..0x1f is a newer binary version this
// build rejects loudly, mirroring the JSON "v" field contract.
//
// A v2 segment holds two payload kinds:
//
//	0x02 0x00  dictionary: uvarint count, then length-prefixed strings.
//	           Cumulative — entries append to the segment's table; user,
//	           command and column names in data frames are indices into
//	           it, so a name repeated across thousands of records is
//	           stored once per segment.
//	0x02 0x01  data: one record, column-major. Header (uvarint time and
//	           resolution in ms, a flags byte, optional column-name
//	           indices), then per-field arrays over the rows: PIDs
//	           zigzag-delta encoded, TIDs as zigzag(tid-pid), string
//	           fields as dictionary indices, counters as uvarints, and
//	           floats XOR'd against the previous row (binenc.AppendFloat)
//	           so they round-trip bit-exactly — the compaction golden
//	           test diffs Query output pre/post rewrite byte-for-byte.
//
// Dictionary frames are not records: scans skip them when counting and
// when tracking first/last times, and queries fold them into the
// decoder state even when they precede the queried range.

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"tiptop/internal/binenc"
)

const (
	// recordVersionJSON stamps the JSON payloads the live append path
	// writes; RecordVersion (2) is the ceiling readers accept.
	recordVersionJSON = 1
	recordVersionV2   = 2

	v2KindDict = 0x00
	v2KindData = 0x01

	v2FlagCols = 0x01
)

// Frame kinds as classified by framePrefix.
const (
	frameKindRecord = iota
	frameKindMeta
)

// framePrefix classifies a frame payload and extracts its version and
// (for records) its time without a full decode — the v2 counterpart of
// recordPrefix, dispatching on the first payload byte.
func framePrefix(p []byte) (t time.Duration, v int, kind int, ok bool) {
	if len(p) == 0 {
		return 0, 0, 0, false
	}
	if p[0] == '{' {
		t, v, jok := recordPrefix(p)
		return t, v, frameKindRecord, jok
	}
	if p[0] < 0x02 || p[0] >= 0x20 {
		return 0, 0, 0, false
	}
	v = int(p[0])
	if v != recordVersionV2 {
		// A newer binary version: classify as a record so the caller's
		// version gate rejects it loudly instead of clipping it silently.
		return 0, v, frameKindRecord, true
	}
	if len(p) < 2 {
		return 0, 0, 0, false
	}
	switch p[1] {
	case v2KindDict:
		return 0, v, frameKindMeta, true
	case v2KindData:
		ms, n := binary.Uvarint(p[2:])
		if n <= 0 {
			return 0, 0, 0, false
		}
		// The same float path recordPrefix takes for v1, so a record
		// carries one timestamp regardless of which format holds it.
		secs := float64(ms) / 1000
		return time.Duration(secs * float64(time.Second)), v, frameKindRecord, true
	}
	return 0, 0, 0, false
}

// v2Dict interns the strings of one compaction output segment.
type v2Dict struct {
	index map[string]uint64
	strs  []string
}

func newV2Dict() *v2Dict {
	return &v2Dict{index: make(map[string]uint64)}
}

func (d *v2Dict) intern(s string) uint64 {
	if i, ok := d.index[s]; ok {
		return i
	}
	i := uint64(len(d.strs))
	d.index[s] = i
	d.strs = append(d.strs, s)
	return i
}

// appendDictFrame renders the table as one dictionary payload.
func (d *v2Dict) appendDictFrame(buf []byte) []byte {
	buf = append(buf, recordVersionV2, v2KindDict)
	buf = binenc.AppendUvarint(buf, uint64(len(d.strs)))
	for _, s := range d.strs {
		buf = binenc.AppendString(buf, s)
	}
	return buf
}

// appendV2Data encodes one record as a v2 data payload. Every string it
// references must already be interned in d (compaction's first pass).
func appendV2Data(buf []byte, rec *Record, d *v2Dict) []byte {
	buf = append(buf, recordVersionV2, v2KindData)
	buf = binenc.AppendUvarint(buf, uint64(math.Round(rec.TimeSeconds*1000)))
	buf = binenc.AppendUvarint(buf, uint64(math.Round(rec.ResSeconds*1000)))
	var flags byte
	if len(rec.Cols) > 0 {
		flags |= v2FlagCols
	}
	buf = append(buf, flags)
	if flags&v2FlagCols != 0 {
		buf = binenc.AppendUvarint(buf, uint64(len(rec.Cols)))
		for _, c := range rec.Cols {
			buf = binenc.AppendUvarint(buf, d.intern(c))
		}
	}
	rows := rec.Rows
	buf = binenc.AppendUvarint(buf, uint64(len(rows)))
	prevPID := int64(0)
	for i := range rows {
		pid := int64(rows[i].PID)
		buf = binenc.AppendVarint(buf, pid-prevPID)
		prevPID = pid
	}
	for i := range rows {
		buf = binenc.AppendVarint(buf, int64(rows[i].TID)-int64(rows[i].PID))
	}
	for i := range rows {
		buf = binenc.AppendUvarint(buf, d.intern(rows[i].User))
	}
	for i := range rows {
		buf = binenc.AppendUvarint(buf, d.intern(rows[i].Command))
	}
	prev := 0.0
	for i := range rows {
		buf = binenc.AppendFloat(buf, prev, rows[i].CPUPct)
		prev = rows[i].CPUPct
	}
	prev = 0.0
	for i := range rows {
		buf = binenc.AppendFloat(buf, prev, rows[i].IPC)
		prev = rows[i].IPC
	}
	maxVals := 0
	for i := range rows {
		buf = binenc.AppendUvarint(buf, uint64(len(rows[i].Values)))
		if len(rows[i].Values) > maxVals {
			maxVals = len(rows[i].Values)
		}
	}
	// Values column-major, each column XOR'd down the rows that have it.
	for j := 0; j < maxVals; j++ {
		prev = 0.0
		for i := range rows {
			if j < len(rows[i].Values) {
				buf = binenc.AppendFloat(buf, prev, rows[i].Values[j])
				prev = rows[i].Values[j]
			}
		}
	}
	for i := range rows {
		buf = binenc.AppendUvarint(buf, rows[i].Instr)
	}
	for i := range rows {
		buf = binenc.AppendUvarint(buf, rows[i].Cycles)
	}
	for i := range rows {
		buf = binenc.AppendUvarint(buf, rows[i].Misses)
	}
	buf = binenc.AppendUvarint(buf, uint64(rec.Machine.Tasks))
	buf = binenc.AppendFloat(buf, 0, rec.Machine.CPUPct)
	buf = binenc.AppendUvarint(buf, rec.Machine.Instr)
	buf = binenc.AppendUvarint(buf, rec.Machine.Cycles)
	buf = binenc.AppendUvarint(buf, rec.Machine.Misses)
	return buf
}

// decodeV2Dict appends a dictionary payload's entries to dict.
func decodeV2Dict(p []byte, dict []string) ([]string, error) {
	r := binenc.NewReader(p[2:])
	n := r.Uvarint()
	if n > uint64(len(p)) {
		return nil, fmt.Errorf("store: corrupt v2 dictionary (%d entries in %d bytes)", n, len(p))
	}
	for i := uint64(0); i < n; i++ {
		dict = append(dict, r.String())
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("store: corrupt v2 dictionary: %w", err)
	}
	return dict, nil
}

// projection restricts a v2 record decode to the value columns a query
// references, plus the fixed CPU/IPC row fields when asked for.
// Columns are matched by the names in force at each record, so the keep
// set follows screen changes mid-scan; until a segment has named its
// columns the projection decodes every value column — a projected scan
// never drops data it cannot prove is unreferenced.
type projection struct {
	names    map[string]bool
	cpu, ipc bool
	// cols is an owned copy of the column names the keep set reflects
	// (decoded Cols live in reused scratch, so they cannot be retained).
	cols  []string
	known bool
	keep  []bool
}

func newProjection(columns []string, cpu, ipc bool) *projection {
	p := &projection{names: make(map[string]bool, len(columns)), cpu: cpu, ipc: ipc}
	for _, c := range columns {
		p.names[c] = true
	}
	return p
}

// reset forgets the columns in force — the state is per segment file,
// like the dictionary.
func (p *projection) reset() {
	p.known = false
	p.cols = p.cols[:0]
	p.keep = p.keep[:0]
}

// update recomputes the keep set for the columns now in force.
func (p *projection) update(cols []string) {
	if len(cols) == 0 {
		return
	}
	if p.known && sameCols(p.cols, cols) {
		return
	}
	p.known = true
	p.cols = append(p.cols[:0], cols...)
	p.keep = p.keep[:0]
	for _, c := range cols {
		p.keep = append(p.keep, p.names[c])
	}
}

// keepCol reports whether value column j must be decoded. Columns
// beyond the known names cannot be referenced by name, so they skip.
func (p *projection) keepCol(j int) bool {
	if !p.known {
		return true
	}
	return j < len(p.keep) && p.keep[j]
}

// decodeV2Record decodes one v2 data payload against the segment's
// dictionary. It mirrors appendV2Data exactly; trailing bytes are an
// error, not ignored.
func decodeV2Record(p []byte, dict []string) (*Record, error) {
	rec := &Record{}
	if err := decodeV2RecordInto(rec, p, dict, nil); err != nil {
		return nil, err
	}
	return rec, nil
}

// decodeV2RecordInto decodes one v2 data payload into rec, reusing its
// row, value and column buffers — the zero-steady-state-allocation
// decode the scan workers run. Strings are shared with the segment
// dictionary, never re-allocated. A nil proj decodes every field
// (decodeV2Record's behavior); otherwise unreferenced value columns and
// unrequested CPU/IPC fields are stepped over via their control bytes
// and their slots left zero, keeping Values index-aligned with the
// columns in force.
func decodeV2RecordInto(rec *Record, p []byte, dict []string, proj *projection) error {
	r := binenc.NewReader(p[2:])
	rec.V = recordVersionV2
	rec.TimeSeconds = float64(r.Uvarint()) / 1000
	rec.ResSeconds = 0
	if resMs := r.Uvarint(); resMs > 0 {
		rec.ResSeconds = float64(resMs) / 1000
	}
	flags := r.Byte()
	rec.Cols = rec.Cols[:0]
	if flags&v2FlagCols != 0 {
		n := r.Uvarint()
		if n > uint64(len(p)) {
			return fmt.Errorf("store: corrupt v2 record (cols)")
		}
		for i := uint64(0); i < n; i++ {
			idx := r.Uvarint()
			if err := r.Err(); err != nil {
				return err
			}
			if idx >= uint64(len(dict)) {
				return fmt.Errorf("store: v2 record references dictionary entry %d of %d", idx, len(dict))
			}
			rec.Cols = append(rec.Cols, dict[idx])
		}
		if proj != nil {
			// The record's own values are laid out under its new columns.
			proj.update(rec.Cols)
		}
	}
	nrows := r.Uvarint()
	if nrows > uint64(len(p)) {
		return fmt.Errorf("store: corrupt v2 record (%d rows in %d bytes)", nrows, len(p))
	}
	if uint64(cap(rec.Rows)) < nrows {
		// Grow keeping the old rows' Values capacity alive in the copied
		// prefix.
		grown := make([]RecordRow, nrows)
		copy(grown, rec.Rows[:cap(rec.Rows)])
		rec.Rows = grown
	}
	rows := rec.Rows[:nrows]
	rec.Rows = rows
	prevPID := int64(0)
	for i := range rows {
		prevPID += r.Varint()
		rows[i].PID = int(prevPID)
	}
	for i := range rows {
		rows[i].TID = int(int64(rows[i].PID) + r.Varint())
	}
	for i := range rows {
		idx := r.Uvarint()
		if err := r.Err(); err != nil {
			return err
		}
		if idx >= uint64(len(dict)) {
			return fmt.Errorf("store: v2 record references dictionary entry %d of %d", idx, len(dict))
		}
		rows[i].User = dict[idx]
	}
	for i := range rows {
		idx := r.Uvarint()
		if err := r.Err(); err != nil {
			return err
		}
		if idx >= uint64(len(dict)) {
			return fmt.Errorf("store: v2 record references dictionary entry %d of %d", idx, len(dict))
		}
		rows[i].Command = dict[idx]
	}
	if proj != nil && !proj.cpu {
		for i := range rows {
			rows[i].CPUPct = 0
		}
		r.SkipFloats(len(rows))
	} else {
		prev := 0.0
		for i := range rows {
			rows[i].CPUPct = r.Float(prev)
			prev = rows[i].CPUPct
		}
	}
	if proj != nil && !proj.ipc {
		for i := range rows {
			rows[i].IPC = 0
		}
		r.SkipFloats(len(rows))
	} else {
		prev := 0.0
		for i := range rows {
			rows[i].IPC = r.Float(prev)
			prev = rows[i].IPC
		}
	}
	maxVals, total := 0, uint64(0)
	for i := range rows {
		n := r.Uvarint()
		total += n
		if total > uint64(len(p)) {
			return fmt.Errorf("store: corrupt v2 record (values)")
		}
		v := rows[i].Values
		if cap(v) < int(n) {
			// Non-nil even when empty, matching encoding/json's decode
			// of the v1 "values":[] field.
			v = make([]float64, n)
		} else {
			v = v[:n]
			for k := range v {
				v[k] = 0
			}
		}
		rows[i].Values = v
		if int(n) > maxVals {
			maxVals = int(n)
		}
	}
	for j := 0; j < maxVals; j++ {
		if proj != nil && !proj.keepCol(j) {
			chain := 0
			for i := range rows {
				if j < len(rows[i].Values) {
					chain++
				}
			}
			r.SkipFloats(chain)
			continue
		}
		prev := 0.0
		for i := range rows {
			if j < len(rows[i].Values) {
				rows[i].Values[j] = r.Float(prev)
				prev = rows[i].Values[j]
			}
		}
	}
	for i := range rows {
		rows[i].Instr = r.Uvarint()
	}
	for i := range rows {
		rows[i].Cycles = r.Uvarint()
	}
	for i := range rows {
		rows[i].Misses = r.Uvarint()
	}
	rec.Machine.Tasks = int(r.Uvarint())
	rec.Machine.CPUPct = r.Float(0)
	rec.Machine.Instr = r.Uvarint()
	rec.Machine.Cycles = r.Uvarint()
	rec.Machine.Misses = r.Uvarint()
	if err := r.Err(); err != nil {
		return fmt.Errorf("store: corrupt v2 record: %w", err)
	}
	if r.Len() != 0 {
		return fmt.Errorf("store: v2 record has %d trailing bytes", r.Len())
	}
	return nil
}

// v2PeekCols extracts just the column names of a v2 data payload (nil
// when the frame carries none) so pre-range records can keep the column
// tracking honest without decoding their rows.
func v2PeekCols(p []byte, dict []string) ([]string, error) {
	r := binenc.NewReader(p[2:])
	r.Uvarint() // time
	r.Uvarint() // res
	flags := r.Byte()
	if r.Err() != nil || flags&v2FlagCols == 0 {
		return nil, r.Err()
	}
	n := r.Uvarint()
	if n > uint64(len(p)) {
		return nil, fmt.Errorf("store: corrupt v2 record (cols)")
	}
	cols := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		idx := r.Uvarint()
		if r.Err() != nil {
			break
		}
		if idx >= uint64(len(dict)) {
			return nil, fmt.Errorf("store: v2 record references dictionary entry %d of %d", idx, len(dict))
		}
		cols = append(cols, dict[idx])
	}
	return cols, r.Err()
}

// frameDecoder decodes a segment's frames in order, carrying the
// dictionary state dictionary frames establish. One decoder per file —
// dictionaries never span segments.
type frameDecoder struct {
	dict []string
}

// decode turns one frame payload into a record. rec is nil (with no
// error) for meta frames, which only update decoder state.
func (d *frameDecoder) decode(payload []byte) (*Record, error) {
	_, v, kind, ok := framePrefix(payload)
	if !ok {
		return nil, fmt.Errorf("store: unparseable record payload")
	}
	if v > RecordVersion {
		return nil, fmt.Errorf("store: record version %d not supported (this build reads <= %d)", v, RecordVersion)
	}
	if kind == frameKindMeta {
		dict, err := decodeV2Dict(payload, d.dict)
		if err != nil {
			return nil, err
		}
		d.dict = dict
		return nil, nil
	}
	if payload[0] == '{' {
		return DecodeRecord(payload)
	}
	return decodeV2Record(payload, d.dict)
}
