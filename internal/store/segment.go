package store

// Segment files: the append-only unit of storage and retention. Every
// record is framed as [uint32 length][uint32 crc32][payload], both
// little-endian; the scan in openSegment is the store's only recovery
// mechanism — a frame whose length is implausible, whose payload is
// short, or whose checksum mismatches marks the end of the valid
// prefix, and everything after it is clipped.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"
)

const (
	segmentExt = ".seg"
	// compactedExt marks a segment the compactor produced: a merged,
	// columnar (record v2) rewrite of the sequence range its name
	// carries. compactingExt is the same file before it is published —
	// recovery deletes those (the originals are still intact).
	compactedExt  = ".cseg"
	compactingExt = ".cmpct"
	// frameHeader is the per-record framing overhead.
	frameHeader = 8
	// maxRecordBytes bounds a single record's payload; anything larger
	// in a frame header is treated as corruption, not a huge record.
	maxRecordBytes = 64 << 20
)

// segment is one on-disk segment file. The writer appends through f
// (nil once sealed); size, n and the record-time bounds are maintained
// in memory and rebuilt by scanning on open. A compacted segment spans
// the sequence range [seq, seqEnd] of the segments it replaced; plain
// segments have seqEnd == seq.
type segment struct {
	path   string
	seq    int64
	seqEnd int64
	f      *os.File
	size   int64
	n      int64
	first  time.Duration
	last   time.Duration
}

// segmentPath names a segment file: "<tier>-<seq>.seg", zero-padded so
// lexical order is chain order.
func segmentPath(dir, tier string, seq int64) string {
	return filepath.Join(dir, fmt.Sprintf("%s-%010d%s", tier, seq, segmentExt))
}

// compactedPath names a compacted segment: "<tier>-<a>-<b>.cseg". The
// name carries the replaced range so recovery can finish an interrupted
// compaction (a published .cseg supersedes every segment it covers).
func compactedPath(dir, tier string, a, b int64, ext string) string {
	return filepath.Join(dir, fmt.Sprintf("%s-%010d-%010d%s", tier, a, b, ext))
}

// createSegment starts an empty active segment.
func createSegment(dir, tier string, seq int64) (*segment, error) {
	path := segmentPath(dir, tier, seq)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &segment{path: path, seq: seq, seqEnd: seq, f: f}, nil
}

// sync flushes the segment's file to stable storage (group-commit
// fsync); a no-op once sealed.
func (sg *segment) sync() error {
	if sg.f == nil {
		return nil
	}
	if err := sg.f.Sync(); err != nil {
		return fmt.Errorf("store: fsync %s: %w", filepath.Base(sg.path), err)
	}
	return nil
}

// append writes one framed record. The frame slice already carries the
// length/checksum header (encoder.frame).
func (sg *segment) append(frame []byte) error {
	if sg.f == nil {
		return fmt.Errorf("store: segment %s is sealed", filepath.Base(sg.path))
	}
	if _, err := sg.f.Write(frame); err != nil {
		return fmt.Errorf("store: append %s: %w", filepath.Base(sg.path), err)
	}
	sg.size += int64(len(frame))
	sg.n++
	return nil
}

// seal closes the writer; the file stays queryable.
func (sg *segment) seal() error {
	if sg.f == nil {
		return nil
	}
	err := sg.f.Close()
	sg.f = nil
	if err != nil {
		return fmt.Errorf("store: seal %s: %w", filepath.Base(sg.path), err)
	}
	return nil
}

// openSegment scans an existing segment, validating every frame and
// clipping a torn or corrupt tail: logically always (size/n/first/last
// reflect only the valid prefix), physically when writable is set (the
// newest segment of a tier, which reopens for appending).
func openSegment(path string, seq, seqEnd int64, writable bool) (*segment, error) {
	sg := &segment{path: path, seq: seq, seqEnd: seqEnd}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	valid, n, first, last, scanErr := scanFrames(bufio.NewReaderSize(f, 1<<16))
	closeErr := f.Close()
	if scanErr != nil {
		return nil, scanErr
	}
	if closeErr != nil {
		return nil, fmt.Errorf("store: %w", closeErr)
	}
	sg.size, sg.n, sg.first, sg.last = valid, n, first, last
	if fi, err := os.Stat(path); err == nil && fi.Size() > valid && writable {
		// Crash mid-append: clip the torn tail so the chain is clean.
		if err := os.Truncate(path, valid); err != nil {
			return nil, fmt.Errorf("store: clip %s: %w", filepath.Base(path), err)
		}
	}
	if writable {
		w, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		sg.f = w
	}
	return sg, nil
}

// scanFrames walks the segment from the start, returning the byte
// length of the valid prefix, the record count, and the first/last
// record times. It stops (without error) at the first invalid frame.
// Frames are version-sniffed individually (v1 JSON and v2 columnar mix
// freely); v2 dictionary frames join the valid prefix but are not
// records, so they never count or move the time bounds.
func scanFrames(r io.Reader) (valid, n int64, first, last time.Duration, err error) {
	br := newFrameReader(r)
	for {
		payload, ok, rerr := br.next()
		if rerr != nil {
			return 0, 0, 0, 0, rerr
		}
		if !ok {
			return br.valid, n, first, last, nil
		}
		t, v, kind, ok := framePrefix(payload)
		if !ok {
			// Structurally sound frame with an unparseable payload:
			// treat as corruption, clip here.
			return br.valid, n, first, last, nil
		}
		if v > RecordVersion {
			return 0, 0, 0, 0, fmt.Errorf("store: record version %d not supported (this build reads <= %d)", v, RecordVersion)
		}
		br.accept()
		if kind == frameKindMeta {
			continue
		}
		if n == 0 {
			first = t
		}
		last = t
		n++
	}
}

// frameReader iterates frames over a reader, tracking the end offset of
// the last accepted frame.
type frameReader struct {
	r     io.Reader
	buf   []byte
	off   int64 // offset after the frame just returned by next
	valid int64 // offset after the last accepted frame
	hdr   [frameHeader]byte
}

func newFrameReader(r io.Reader) *frameReader { return &frameReader{r: r} }

// next returns the next frame's payload, or ok=false at a clean EOF or
// the first invalid frame (short header, implausible length, short
// payload, checksum mismatch).
func (fr *frameReader) next() (payload []byte, ok bool, err error) {
	if _, rerr := io.ReadFull(fr.r, fr.hdr[:]); rerr != nil {
		if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("store: read: %w", rerr)
	}
	length := binary.LittleEndian.Uint32(fr.hdr[0:4])
	sum := binary.LittleEndian.Uint32(fr.hdr[4:8])
	if length == 0 || length > maxRecordBytes {
		return nil, false, nil
	}
	if cap(fr.buf) < int(length) {
		fr.buf = make([]byte, length)
	}
	fr.buf = fr.buf[:length]
	if _, rerr := io.ReadFull(fr.r, fr.buf); rerr != nil {
		if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("store: read: %w", rerr)
	}
	if crc32.Checksum(fr.buf, crcTable) != sum {
		return nil, false, nil
	}
	fr.off = fr.valid + frameHeader + int64(length)
	return fr.buf, true, nil
}

// accept commits the frame last returned by next into the valid prefix.
func (fr *frameReader) accept() { fr.valid = fr.off }

// recordPrefix parses the fixed leading fields of a record payload —
// `{"v":<int>,"time_s":<float>` — without a full JSON decode, which
// keeps recovery scans cheap (the bench recovers a million records).
func recordPrefix(p []byte) (t time.Duration, v int, ok bool) {
	const vKey = `{"v":`
	if len(p) < len(vKey) || string(p[:len(vKey)]) != vKey {
		return 0, 0, false
	}
	i := len(vKey)
	start := i
	for i < len(p) && p[i] >= '0' && p[i] <= '9' {
		v = v*10 + int(p[i]-'0')
		i++
	}
	if i == start {
		return 0, 0, false
	}
	const tKey = `,"time_s":`
	if len(p) < i+len(tKey) || string(p[i:i+len(tKey)]) != tKey {
		return 0, 0, false
	}
	i += len(tKey)
	j := i
	for j < len(p) && p[j] != ',' && p[j] != '}' {
		j++
	}
	secs, err := parseFloat(p[i:j])
	if err != nil {
		return 0, 0, false
	}
	return time.Duration(secs * float64(time.Second)), v, true
}
