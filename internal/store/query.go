package store

// Range queries. A query names a time range on the store's monotonic
// clock, an optional PID, and a step; the step selects the downsample
// tier (the coarsest whose resolution fits the step) and, when coarser
// than the tier itself, re-buckets the scanned points on the fly. The
// scan walks segment files directly — queries hold the store lock only
// long enough to snapshot the segment list, so they run concurrently
// with appends.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"tiptop/internal/hpm"
)

// QueryOptions select a time range of recorded history.
type QueryOptions struct {
	// PID restricts the result to one process's tasks; negative means
	// every task.
	PID int
	// FromSeconds and ToSeconds bound the range (inclusive) on the
	// store clock. ToSeconds <= 0 means "to the end".
	FromSeconds float64
	ToSeconds   float64
	// StepSeconds selects the resolution: the coarsest tier whose
	// resolution is <= step serves the query (0 or anything below 10
	// reads raw refreshes), and a step coarser than the tier averages
	// scanned points into step-wide buckets.
	StepSeconds float64
}

// Point is one point of a queried series, mirroring history.Point.
type Point struct {
	TimeSeconds float64   `json:"time_s"`
	CPUPct      float64   `json:"cpu_pct"`
	IPC         float64   `json:"ipc"`
	Values      []float64 `json:"values,omitempty"`
}

// Series is one task's points inside the queried range.
type Series struct {
	PID     int     `json:"pid"`
	TID     int     `json:"tid,omitempty"`
	User    string  `json:"user"`
	Command string  `json:"command"`
	Points  []Point `json:"points"`
}

// Result is a range-query response.
type Result struct {
	// PID echoes the query's filter, -1 for "all tasks".
	PID int `json:"pid"`
	// ResolutionSeconds is the resolution of the tier that served the
	// query: 0 (raw refreshes), 10 or 60.
	ResolutionSeconds float64 `json:"resolution_s"`
	// StepSeconds echoes the effective step (0 when serving tier
	// points as-is).
	StepSeconds float64  `json:"step_s,omitempty"`
	Columns     []string `json:"columns,omitempty"`
	// Machine is the machine-wide roll-up over the same range.
	Machine []Point  `json:"machine,omitempty"`
	Series  []Series `json:"series"`
}

// queryView is the segment list snapshot a scan walks after the store
// lock is released: paths plus the byte length valid at snapshot time
// (the active segment keeps growing underneath).
type queryView struct {
	files []queryFile
	res   time.Duration
	cols  []string
}

type queryFile struct {
	path  string
	valid int64
	first time.Duration
	last  time.Duration
}

// TierFor returns the resolution of the downsample tier a query step
// selects: the coarsest tier whose resolution is <= step (0, the raw
// tier, for steps under 10s). Pure on the step, so callers can size
// their buckets before scanning.
func TierFor(step time.Duration) time.Duration {
	for i := len(Resolutions) - 1; i > 0; i-- {
		if step >= Resolutions[i] {
			return Resolutions[i]
		}
	}
	return Resolutions[0]
}

// Scan streams every record of a time range through fn in time order,
// serving from the tier the query's step selects — the shared iterator
// both Query and the expression engine (internal/query) ride on. fn
// receives each decoded record inside the range together with the
// column names in force at that record's time (each segment's first
// record carries the columns; a range can start after the carrying
// record). Scan does not filter rows by PID — consumers that care
// filter per row. It returns the serving tier's resolution.
//
// Scan decodes segments on a worker pool (see ScanWith): the record
// passed to fn is reused scratch, valid only for the duration of the
// call — fn must copy anything it keeps. Invalid ranges (to before
// from, a negative step) fail with a *RangeError.
func (st *Store) Scan(q QueryOptions, fn func(rec *Record, cols []string) error) (time.Duration, error) {
	return st.ScanWith(ScanOptions{QueryOptions: q}, fn)
}

// Query scans the selected tier and returns every matching series,
// sorted by PID then TID, plus the machine roll-up.
func (st *Store) Query(q QueryOptions) (*Result, error) {
	step := time.Duration(q.StepSeconds * float64(time.Second))
	res := TierFor(step)
	out := &Result{PID: q.PID, ResolutionSeconds: res.Seconds()}
	if q.PID < 0 {
		out.PID = -1
	}
	rebucket := step > res && step > 0
	if rebucket {
		out.StepSeconds = step.Seconds()
	}
	agg := newSeriesSet(rebucket, step)
	_, err := st.Scan(q, func(rec *Record, cols []string) error {
		out.Columns = cols
		agg.addMachine(rec.TimeSeconds, &rec.Machine)
		for i := range rec.Rows {
			r := &rec.Rows[i]
			if q.PID >= 0 && r.PID != q.PID {
				continue
			}
			agg.addRow(rec.TimeSeconds, r)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if out.Columns == nil {
		// Empty range: label with the store's current columns, as a
		// scan with records would have.
		st.mu.Lock()
		out.Columns = append([]string(nil), st.cols...)
		st.mu.Unlock()
	}
	agg.finish(out)
	return out, nil
}

// snapshotTier picks the tier for the step and snapshots its segment
// chain under the lock.
func (st *Store) snapshotTier(step time.Duration) (*queryView, time.Duration, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.tiers == nil {
		return nil, 0, fmt.Errorf("store: closed")
	}
	ti := 0
	for i, r := range Resolutions {
		if r == TierFor(step) {
			ti = i
		}
	}
	t := st.tiers[ti]
	view := &queryView{res: t.res, cols: append([]string(nil), st.cols...)}
	add := func(sg *segment) {
		if sg == nil || sg.n == 0 {
			return
		}
		view.files = append(view.files, queryFile{
			path: sg.path, valid: sg.size, first: sg.first, last: sg.last,
		})
	}
	for _, sg := range t.sealed {
		add(sg)
	}
	add(t.active)
	return view, t.res, nil
}

// colsKey marks a record payload carrying column names. The bare
// quotes cannot occur inside a JSON string value (they would be
// escaped), so a substring match never false-positives on task names.
var colsKey = []byte(`,"cols":[`)

// scanQueryFile walks one segment's valid prefix, streaming the
// records inside the range through fn. Frames are version-sniffed
// individually (a recovered tail segment can hold v1 JSON appended
// after a v2 rewrite). Records before the range are normally skipped
// undecoded, but v2 dictionary frames always fold into the decoder
// state, and records carrying column names (each segment's first
// record, and any screen change) surface them so *cols tracks the
// columns in force where the range starts — not an older screen's.
func scanQueryFile(f queryFile, from, to time.Duration, cols *[]string, fn func(rec *Record, cols []string) error) error {
	fh, err := os.Open(f.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil // retired by retention between snapshot and scan
		}
		return fmt.Errorf("store: %w", err)
	}
	defer fh.Close()
	fr := newFrameReader(bufio.NewReaderSize(io.LimitReader(fh, f.valid), 1<<16))
	var fd frameDecoder
	for {
		payload, ok, err := fr.next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		fr.accept()
		t, v, kind, pok := framePrefix(payload)
		if !pok {
			return nil
		}
		if v > RecordVersion {
			return fmt.Errorf("store: record version %d not supported (this build reads <= %d)", v, RecordVersion)
		}
		if kind == frameKindMeta {
			if _, err := fd.decode(payload); err != nil {
				return err
			}
			continue
		}
		if t > to {
			return nil // records are time-ordered; nothing further matches
		}
		if t < from {
			if payload[0] == '{' {
				if bytes.Contains(payload, colsKey) {
					if rec, derr := DecodeRecord(payload); derr == nil && len(rec.Cols) > 0 {
						*cols = rec.Cols
					}
				}
			} else if c, derr := v2PeekCols(payload, fd.dict); derr == nil && len(c) > 0 {
				*cols = c
			}
			continue
		}
		rec, err := fd.decode(payload)
		if err != nil {
			return err
		}
		if len(rec.Cols) > 0 {
			*cols = rec.Cols
		}
		if err := fn(rec, *cols); err != nil {
			return err
		}
	}
}

// seriesSet assembles query output, optionally re-bucketing to a step
// coarser than the serving tier.
type seriesSet struct {
	rebucket bool
	step     time.Duration
	tasks    map[hpm.TaskID]*seriesAcc
	machine  seriesAcc
}

type seriesAcc struct {
	pid, tid   int
	user, comm string
	points     []Point
	// step-bucket accumulation
	bucket int64
	n      int
	cpu    float64
	ipc    float64
	instr  uint64
	cycles uint64
	vals   []float64
}

func newSeriesSet(rebucket bool, step time.Duration) *seriesSet {
	ss := &seriesSet{rebucket: rebucket, step: step, tasks: make(map[hpm.TaskID]*seriesAcc)}
	ss.machine.bucket = -1
	return ss
}

func (ss *seriesSet) addRow(timeSec float64, r *RecordRow) {
	id := hpm.TaskID{PID: r.PID, TID: r.TID}
	acc := ss.tasks[id]
	if acc == nil {
		acc = &seriesAcc{pid: r.PID, tid: r.TID, bucket: -1}
		ss.tasks[id] = acc
	}
	acc.user, acc.comm = r.User, r.Command
	ss.add(acc, timeSec, r.CPUPct, r.IPC, r.Values, r.Instr, r.Cycles)
}

func (ss *seriesSet) addMachine(timeSec float64, m *RecordAgg) {
	ss.add(&ss.machine, timeSec, m.CPUPct, ratio(m.Instr, m.Cycles), nil, m.Instr, m.Cycles)
}

// add appends one observation to a series, directly or via its step
// bucket.
func (ss *seriesSet) add(acc *seriesAcc, timeSec, cpu, ipc float64, values []float64, instr, cycles uint64) {
	if !ss.rebucket {
		acc.points = append(acc.points, Point{
			TimeSeconds: timeSec, CPUPct: cpu, IPC: ipc,
			Values: append([]float64(nil), values...),
		})
		return
	}
	// Points are stamped at their window's end, so step buckets are the
	// half-open (start, end] windows: a point at exactly t=30 belongs to
	// the bucket ending at 30, not the one starting there.
	d := time.Duration(timeSec * float64(time.Second))
	idx := int64(0)
	if d > 0 {
		idx = int64((d - 1) / ss.step)
	}
	if acc.bucket >= 0 && idx != acc.bucket {
		acc.flush(ss.step)
	}
	acc.bucket = idx
	acc.n++
	acc.cpu += cpu
	acc.ipc += ipc
	acc.instr += instr
	acc.cycles += cycles
	if len(acc.vals) < len(values) {
		grown := make([]float64, len(values))
		copy(grown, acc.vals)
		acc.vals = grown
	}
	for i, v := range values {
		acc.vals[i] += v
	}
}

// flush emits the current step bucket as one averaged point.
func (acc *seriesAcc) flush(step time.Duration) {
	if acc.n == 0 {
		return
	}
	n := float64(acc.n)
	p := Point{
		TimeSeconds: (time.Duration(acc.bucket+1) * step).Seconds(),
		CPUPct:      acc.cpu / n,
		IPC:         acc.ipc / n,
	}
	if acc.cycles > 0 {
		p.IPC = float64(acc.instr) / float64(acc.cycles)
	}
	if len(acc.vals) > 0 {
		p.Values = make([]float64, len(acc.vals))
		for i, v := range acc.vals {
			p.Values[i] = v / n
		}
	}
	acc.points = append(acc.points, p)
	acc.n = 0
	acc.cpu, acc.ipc = 0, 0
	acc.instr, acc.cycles = 0, 0
	for i := range acc.vals {
		acc.vals[i] = 0
	}
	acc.vals = acc.vals[:0]
}

// finish flushes pending buckets and writes the sorted series list.
func (ss *seriesSet) finish(out *Result) {
	if ss.rebucket {
		ss.machine.flush(ss.step)
		for _, acc := range ss.tasks {
			acc.flush(ss.step)
		}
	}
	out.Machine = ss.machine.points
	out.Series = make([]Series, 0, len(ss.tasks))
	for _, acc := range ss.tasks {
		out.Series = append(out.Series, Series{
			PID: acc.pid, TID: acc.tid, User: acc.user, Command: acc.comm,
			Points: acc.points,
		})
	}
	sort.Slice(out.Series, func(i, j int) bool {
		a, b := &out.Series[i], &out.Series[j]
		if a.PID != b.PID {
			return a.PID < b.PID
		}
		return a.TID < b.TID
	})
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
