package store

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// FsyncPolicy is the store's group-commit durability policy: how much
// recorded history a kernel crash (power loss, panic) may take with it.
// The zero policy never syncs — appends land in the page cache and the
// kernel flushes on its own schedule, exactly the pre-policy behaviour.
//
// With a policy set, dirty active segments are flushed in one batch
// once either bound is reached, so the cost of fsync is amortized over
// the group ("group commit") while the loss window stays bounded.
type FsyncPolicy struct {
	// Interval flushes once this much wall-clock time has passed since
	// the last flush (checked on append; an idle store has nothing to
	// lose).
	Interval time.Duration
	// Records flushes after this many appended records across all tiers.
	Records int64
}

// enabled reports whether any bound is set.
func (p FsyncPolicy) enabled() bool { return p.Interval > 0 || p.Records > 0 }

// String renders the policy in the syntax ParseFsync accepts.
func (p FsyncPolicy) String() string {
	switch {
	case p.Interval > 0 && p.Records > 0:
		return fmt.Sprintf("%s,%d-records", p.Interval, p.Records)
	case p.Interval > 0:
		return p.Interval.String()
	case p.Records > 0:
		return fmt.Sprintf("%d-records", p.Records)
	}
	return "off"
}

// ParseFsync parses the -fsync flag / XML fsync= attribute: "off" (or
// empty) for no syncing, a duration ("2s", "500ms") for a wall-clock
// group-commit window, or a record count ("100" or "100-records") to
// flush every N appends. A comma combines both bounds ("2s,1000-records"
// flushes at whichever comes first).
func ParseFsync(s string) (FsyncPolicy, error) {
	var p FsyncPolicy
	t := strings.TrimSpace(s)
	if t == "" || strings.EqualFold(t, "off") || strings.EqualFold(t, "none") {
		return p, nil
	}
	for _, part := range strings.Split(t, ",") {
		part = strings.TrimSpace(part)
		num := strings.TrimSuffix(strings.TrimSuffix(part, "-records"), "-record")
		if n, err := strconv.ParseInt(num, 10, 64); err == nil {
			if n <= 0 {
				return FsyncPolicy{}, fmt.Errorf("store: fsync record count must be positive in %q", s)
			}
			if p.Records != 0 {
				return FsyncPolicy{}, fmt.Errorf("store: duplicate fsync record bound in %q", s)
			}
			p.Records = n
			continue
		}
		d, err := time.ParseDuration(part)
		if err != nil || d <= 0 {
			return FsyncPolicy{}, fmt.Errorf("store: bad fsync policy %q (want off, an interval like 2s, or N-records)", s)
		}
		if p.Interval != 0 {
			return FsyncPolicy{}, fmt.Errorf("store: duplicate fsync interval in %q", s)
		}
		p.Interval = d
	}
	return p, nil
}
