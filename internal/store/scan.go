package store

// The scan engine behind Scan and ScanWith: a projected, parallel walk
// over the selected tier's segment snapshot. Workers claim whole
// segment files (segments never overlap in time, so file order is time
// order), decode them concurrently into per-worker scratch, and an
// ordered merger on the calling goroutine replays the decoded records
// file by file — the consumer sees exactly the sequence the serial
// scan produced, record for record, column change for column change.
//
// The determinism contract: for the same snapshot, ScanWith emits the
// same records with the same column annotations regardless of worker
// count or projection (projected scans differ only in the fields they
// leave zero). Errors are reported in file order, after every record
// that precedes the failure has been delivered.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ScanOptions extend a range query with execution controls: how many
// workers decode and which fields they materialize.
type ScanOptions struct {
	QueryOptions
	// Workers sizes the decode pool: 0 uses one worker per CPU
	// (GOMAXPROCS), 1 forces the serial path. Parallelism never exceeds
	// the number of segment files in range.
	Workers int
	// Project restricts v2 decodes to the Columns named below; v1 JSON
	// frames transparently fall back to a full decode. Unprojected
	// fields are left zero, with Values index-aligned to the columns in
	// force.
	Project bool
	// Columns are the referenced value-column names when projecting.
	Columns []string
	// NeedCPUPct / NeedIPC keep the fixed per-row CPU and IPC fields in
	// a projected decode.
	NeedCPUPct bool
	NeedIPC    bool
}

// RangeError reports an invalid query range or step — a request error
// (HTTP handlers map it to 400 with the hint), not a store failure.
type RangeError struct {
	Msg  string
	Hint string
}

func (e *RangeError) Error() string { return e.Msg }

// ScanWith is Scan with execution controls. The *Record passed to fn
// is scratch reused across calls — fn must copy anything it keeps
// (including Cols, Rows and Values); the cols slice is owned by the
// scan and stable across calls.
func (st *Store) ScanWith(opts ScanOptions, fn func(rec *Record, cols []string) error) (time.Duration, error) {
	from := time.Duration(opts.FromSeconds * float64(time.Second))
	to := time.Duration(opts.ToSeconds * float64(time.Second))
	if opts.ToSeconds <= 0 {
		to = 1<<63 - 1
	}
	if to < from {
		return 0, &RangeError{
			Msg:  fmt.Sprintf("store: query range ends (%gs) before it starts (%gs)", opts.ToSeconds, opts.FromSeconds),
			Hint: "want from <= to; omit to (or pass 0) to query to the end",
		}
	}
	step := time.Duration(opts.StepSeconds * float64(time.Second))
	if step < 0 {
		return 0, &RangeError{
			Msg:  fmt.Sprintf("store: negative query step %gs", opts.StepSeconds),
			Hint: "the step is a bucket width in seconds; omit it (or pass 0) for the serving tier's native resolution",
		}
	}
	view, res, err := st.snapshotTier(step)
	if err != nil {
		return 0, err
	}
	files := make([]queryFile, 0, len(view.files))
	for _, f := range view.files {
		if f.last < from || f.first > to {
			continue
		}
		files = append(files, f)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(files) {
		workers = len(files)
	}
	var proj *projection
	if opts.Project {
		proj = newProjection(opts.Columns, opts.NeedCPUPct, opts.NeedIPC)
	}
	if workers <= 1 {
		if proj == nil {
			// The original serial loop: fresh records, full decode — the
			// reference the parallel path is tested against, and the
			// benchmark baseline.
			cols := view.cols
			for _, f := range files {
				if err := scanQueryFile(f, from, to, &cols, fn); err != nil {
					return 0, err
				}
			}
			return res, nil
		}
		return res, scanSerialProjected(files, view.cols, from, to, proj, fn)
	}
	mk := func() *projection { return nil }
	if opts.Project {
		mk = func() *projection { return newProjection(opts.Columns, opts.NeedCPUPct, opts.NeedIPC) }
	}
	return res, scanParallel(files, view.cols, from, to, workers, mk, fn)
}

// scanSerialProjected is the one-worker projected path: a single
// scratch record reused across every file.
func scanSerialProjected(files []queryFile, startCols []string, from, to time.Duration, proj *projection, fn func(rec *Record, cols []string) error) error {
	sc := segScanner{proj: proj}
	scratch := &Record{}
	cols := startCols
	for _, f := range files {
		err := sc.scanFile(f, from, to,
			func() *Record { return scratch },
			func(rec *Record, fileCols []string) error {
				if fileCols != nil {
					cols = fileCols
				}
				return fn(rec, cols)
			})
		if err != nil {
			return err
		}
	}
	return nil
}

// segScanner walks segment files one at a time, carrying reusable
// decoder state (the per-file dictionary and projection) and a read
// buffer — frames are 8-byte headers plus small payloads, so reading
// them straight off the file descriptor costs two syscalls each.
type segScanner struct {
	proj *projection // nil = full decode
	dict []string
	br   *bufio.Reader
}

// scanFile streams one segment's in-range records. next supplies the
// record each v2 frame decodes into (the caller's scratch policy; v1
// frames always decode fresh). emit receives each record together with
// the columns the file has established so far — nil until the file
// names them, meaning "inherited from earlier files"; non-nil slices
// are owned by the scan, never aliased to scratch.
func (s *segScanner) scanFile(f queryFile, from, to time.Duration, next func() *Record, emit func(rec *Record, fileCols []string) error) error {
	s.dict = s.dict[:0]
	if s.proj != nil {
		s.proj.reset()
	}
	fh, err := os.Open(f.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil // retired by retention or compaction between snapshot and scan
		}
		return fmt.Errorf("store: %w", err)
	}
	defer fh.Close()
	if s.br == nil {
		s.br = bufio.NewReaderSize(nil, 1<<16)
	}
	s.br.Reset(io.LimitReader(fh, f.valid))
	fr := newFrameReader(s.br)
	var fileCols []string
	for {
		payload, ok, err := fr.next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		fr.accept()
		t, v, kind, pok := framePrefix(payload)
		if !pok {
			return nil
		}
		if v > RecordVersion {
			return fmt.Errorf("store: record version %d not supported (this build reads <= %d)", v, RecordVersion)
		}
		if kind == frameKindMeta {
			dict, err := decodeV2Dict(payload, s.dict)
			if err != nil {
				return err
			}
			s.dict = dict
			continue
		}
		if t > to {
			return nil // records are time-ordered; nothing further matches
		}
		if t < from {
			if payload[0] == '{' {
				if bytes.Contains(payload, colsKey) {
					if rec, derr := DecodeRecord(payload); derr == nil && len(rec.Cols) > 0 {
						fileCols = rec.Cols
					}
				}
			} else if c, derr := v2PeekCols(payload, s.dict); derr == nil && len(c) > 0 {
				fileCols = c
			}
			if s.proj != nil {
				s.proj.update(fileCols)
			}
			continue
		}
		var rec *Record
		if payload[0] == '{' {
			rec, err = DecodeRecord(payload)
			if err != nil {
				return err
			}
		} else {
			rec = next()
			if err := decodeV2RecordInto(rec, payload, s.dict, s.proj); err != nil {
				return err
			}
		}
		if len(rec.Cols) > 0 {
			fileCols = append([]string(nil), rec.Cols...)
			if s.proj != nil {
				s.proj.update(fileCols)
			}
		}
		if err := emit(rec, fileCols); err != nil {
			return err
		}
	}
}

// scanBatchSize is how many records ride one channel send from a
// worker to the merger — large enough to amortize the handoff, small
// enough to keep the pipeline moving.
const scanBatchSize = 64

type scanItem struct {
	rec *Record
	// cols is the file's column state at this record; nil inherits from
	// earlier files.
	cols []string
}

type scanBatch struct {
	items []scanItem
}

// errScanAborted signals a worker that the merger has stopped reading;
// it never escapes to a caller.
var errScanAborted = fmt.Errorf("store: scan aborted")

// scanParallel fans the file list out to a worker pool and merges the
// decoded streams back in file (= time) order on the calling
// goroutine. Scratch records and batches recycle through free lists,
// so a steady-state scan allocates O(workers), not O(records).
func scanParallel(files []queryFile, startCols []string, from, to time.Duration, workers int, mk func() *projection, fn func(rec *Record, cols []string) error) error {
	outs := make([]chan *scanBatch, len(files))
	for i := range outs {
		outs[i] = make(chan *scanBatch, 2)
	}
	errs := make([]error, len(files))
	done := make(chan struct{})
	var stop sync.Once
	abort := func() { stop.Do(func() { close(done) }) }
	free := make(chan *Record, workers*scanBatchSize*4)
	batchFree := make(chan *scanBatch, workers*4)
	var nextFile int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := segScanner{proj: mk()}
			for {
				i := int(atomic.AddInt64(&nextFile, 1)) - 1
				if i >= len(files) {
					return
				}
				errs[i] = runScanFile(&sc, files[i], from, to, outs[i], free, batchFree, done)
				close(outs[i])
				select {
				case <-done:
					return
				default:
				}
			}
		}()
	}
	defer func() {
		abort()
		wg.Wait()
	}()
	cols := startCols
	for i := range files {
		for b := range outs[i] {
			for _, it := range b.items {
				if it.cols != nil {
					cols = it.cols
				}
				if err := fn(it.rec, cols); err != nil {
					return err
				}
				select {
				case free <- it.rec:
				default:
				}
			}
			b.items = b.items[:0]
			select {
			case batchFree <- b:
			default:
			}
		}
		if errs[i] != nil {
			return errs[i]
		}
	}
	return nil
}

// runScanFile scans one file into out, batching records and recycling
// scratch through the free lists. The error it returns is the file's
// own scan failure; an aborted merge returns nil (nobody is listening).
// Records decoded before a failure are still flushed — the merger
// delivers them before surfacing the error, exactly like the serial
// scan.
func runScanFile(sc *segScanner, f queryFile, from, to time.Duration, out chan<- *scanBatch, free chan *Record, batchFree chan *scanBatch, done <-chan struct{}) error {
	getBatch := func() *scanBatch {
		select {
		case b := <-batchFree:
			return b
		default:
			return &scanBatch{items: make([]scanItem, 0, scanBatchSize)}
		}
	}
	batch := getBatch()
	flush := func() error {
		if len(batch.items) == 0 {
			return nil
		}
		select {
		case out <- batch:
			batch = getBatch()
			return nil
		case <-done:
			return errScanAborted
		}
	}
	err := sc.scanFile(f, from, to,
		func() *Record {
			select {
			case r := <-free:
				return r
			default:
				return &Record{}
			}
		},
		func(rec *Record, fileCols []string) error {
			batch.items = append(batch.items, scanItem{rec: rec, cols: fileCols})
			if len(batch.items) >= scanBatchSize {
				return flush()
			}
			return nil
		})
	if err == errScanAborted {
		return nil
	}
	if ferr := flush(); ferr == nil && err == nil {
		return nil
	}
	return err
}
