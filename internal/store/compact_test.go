package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"tiptop/internal/core"
	"tiptop/internal/hpm"
)

// variedSample builds a refresh whose floats are full-precision walk
// values — compression-honest data, unlike sampleAt's constants, so
// ratio assertions mean something.
func variedSample(now time.Duration, tasks int, seed *uint64) *core.Sample {
	next := func() float64 {
		*seed = *seed*6364136223846793005 + 1442695040888963407
		return float64(*seed>>11) / float64(1<<53)
	}
	s := &core.Sample{Time: now}
	for i := 0; i < tasks; i++ {
		pid := 100 + i
		s.Rows = append(s.Rows, core.Row{
			Info: core.TaskInfo{
				ID:   hpm.TaskID{PID: pid, TID: pid},
				User: "user" + string(rune('a'+i%3)), Comm: "job-" + string(rune('a'+i%5)), State: "R",
			},
			CPUPct: 100 * next(),
			Values: []float64{1000 * next(), next()},
			Events: map[string]uint64{
				hpm.EventInstructions: uint64(1e6 * next()),
				hpm.EventCycles:       uint64(1e6 * next()),
				hpm.EventCacheMisses:  uint64(1e3 * next()),
			},
			Valid: true,
		})
	}
	return s
}

func fillVaried(t *testing.T, st *Store, start, interval time.Duration, n, tasks int, seed *uint64) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := st.AppendSample(variedSample(start+time.Duration(i)*interval, tasks, seed)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

// snapshotQueries runs a spread of queries (all tiers, filters, ranges)
// and returns their marshaled results — the byte-identity oracle.
func snapshotQueries(t *testing.T, st *Store) [][]byte {
	t.Helper()
	var out [][]byte
	for _, q := range []QueryOptions{
		{PID: -1},
		{PID: 102},
		{PID: -1, StepSeconds: 10},
		{PID: -1, StepSeconds: 60},
		{PID: -1, FromSeconds: 100, ToSeconds: 300},
		{PID: -1, StepSeconds: 30}, // re-bucketed from the 10s tier
	} {
		res, err := st.Query(q)
		if err != nil {
			t.Fatalf("query %+v: %v", q, err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b)
	}
	return out
}

func countFiles(t *testing.T, dir, pattern string) int {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(dir, pattern))
	if err != nil {
		t.Fatal(err)
	}
	return len(m)
}

// TestCompactGoldenQueryIdentical is the golden test: compaction must
// shrink sealed segments >= 3x while leaving every query's marshaled
// result byte-for-byte identical — before and after, and again after a
// close/reopen that recovers the compacted chain from disk.
func TestCompactGoldenQueryIdentical(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, Options{SegmentBytes: 8 << 10})
	st.SetColumns([]string{"branch-miss", "llc-load"})
	seed := uint64(42)
	n := 400
	if testing.Short() {
		n = 120
	}
	fillVaried(t, st, 500*time.Millisecond, 1500*time.Millisecond, n, 8, &seed)
	pre := snapshotQueries(t, st)
	records := st.Records()

	res, err := st.Compact(CompactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tiers) == 0 {
		t.Fatal("nothing compacted")
	}
	var before, after int64
	for _, tc := range res.Tiers {
		before += tc.BytesBefore
		after += tc.BytesAfter
		if tc.Records == 0 {
			t.Fatalf("tier %s compacted zero records", tc.Tier)
		}
	}
	if after*3 > before {
		t.Fatalf("compaction ratio %.2fx, want >= 3x (%d -> %d bytes)",
			float64(before)/float64(after), before, after)
	}
	if got := st.Records(); got != records {
		t.Fatalf("record count changed: %d -> %d", records, got)
	}
	for i, b := range snapshotQueries(t, st) {
		if !bytes.Equal(b, pre[i]) {
			t.Fatalf("query %d differs after compaction:\npre:  %s\npost: %s", i, pre[i], b)
		}
	}

	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st = mustOpen(t, dir, Options{SegmentBytes: 8 << 10})
	if got := st.Records(); got != records {
		t.Fatalf("record count after reopen: %d, want %d", got, records)
	}
	for i, b := range snapshotQueries(t, st) {
		if !bytes.Equal(b, pre[i]) {
			t.Fatalf("query %d differs after reopen", i)
		}
	}
	// The store stays appendable: compacted tails are sealed, so the
	// next append starts a fresh segment past the compacted range.
	fillVaried(t, st, 0, time.Second, 5, 8, &seed)
	if got := st.Records(); got <= records {
		t.Fatalf("appends after compaction not recorded (%d <= %d)", got, records)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMixedVersionTwin drives two identical append sequences, compacts
// one store mid-way (its directory then mixes v2 columnar and v1 JSON
// segments), and requires every query to match the all-v1 twin.
func TestMixedVersionTwin(t *testing.T) {
	opt := Options{SegmentBytes: 4 << 10}
	mixed := mustOpen(t, t.TempDir(), opt)
	plain := mustOpen(t, t.TempDir(), opt)
	mixed.SetColumns([]string{"c"})
	plain.SetColumns([]string{"c"})
	seedA, seedB := uint64(7), uint64(7)
	fillVaried(t, mixed, time.Second, time.Second, 150, 4, &seedA)
	fillVaried(t, plain, time.Second, time.Second, 150, 4, &seedB)
	if _, err := mixed.Compact(CompactOptions{}); err != nil {
		t.Fatal(err)
	}
	fillVaried(t, mixed, 151*time.Second, time.Second, 150, 4, &seedA)
	fillVaried(t, plain, 151*time.Second, time.Second, 150, 4, &seedB)
	if countFiles(t, mixed.Dir(), "*.cseg") == 0 || countFiles(t, mixed.Dir(), "*.seg") == 0 {
		t.Fatal("directory does not actually mix v1 and v2 segments")
	}
	want := snapshotQueries(t, plain)
	for i, b := range snapshotQueries(t, mixed) {
		if !bytes.Equal(b, want[i]) {
			t.Fatalf("query %d: mixed-version store differs from all-v1 twin:\nv1:    %s\nmixed: %s", i, want[i], b)
		}
	}
	if err := mixed.Close(); err != nil {
		t.Fatal(err)
	}
	// Recovery over the mixed directory must reach the same answers.
	mixed = mustOpen(t, mixed.Dir(), opt)
	for i, b := range snapshotQueries(t, mixed) {
		if !bytes.Equal(b, want[i]) {
			t.Fatalf("query %d differs after mixed-version recovery", i)
		}
	}
	mixed.Close()
	plain.Close()
}

// writeRawFrame appends one CRC-framed payload to a segment file.
func writeRawFrame(t *testing.T, path string, payload []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	if _, err := f.Write(append(hdr[:], payload...)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFutureVersionsRejectedLoudly: a frame from the future — binary
// v3 or JSON {"v":3} — must fail Open with a version error, not be
// clipped silently as corruption.
func TestFutureVersionsRejectedLoudly(t *testing.T) {
	for name, payload := range map[string][]byte{
		"binary-v3": {0x03, 0x01, 0x80, 0x08},
		"json-v3":   []byte(`{"v":3,"time_s":1,"rows":[],"machine":{}}`),
	} {
		dir := t.TempDir()
		writeRawFrame(t, filepath.Join(dir, "raw-0000000001.seg"), payload)
		_, err := Open(dir, Options{})
		if err == nil || !strings.Contains(err.Error(), "version 3") {
			t.Fatalf("%s: Open = %v, want loud version-3 rejection", name, err)
		}
	}
}

// TestCompactCrashRecovery replays the two interruptible windows of the
// publish protocol: an unpublished .cmpct must be discarded, and a
// published .cseg must supersede the input segments a crash left behind.
func TestCompactCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	opt := Options{SegmentBytes: 4 << 10}
	st := mustOpen(t, dir, opt)
	st.SetColumns([]string{"c"})
	seed := uint64(3)
	fillVaried(t, st, time.Second, time.Second, 200, 4, &seed)

	// Stash the sealed raw segments so we can resurrect them later.
	rawSegs, err := filepath.Glob(filepath.Join(dir, "raw-*.seg"))
	if err != nil || len(rawSegs) < 2 {
		t.Fatalf("want several raw segments, have %v (%v)", rawSegs, err)
	}
	// The highest-sequence segment is the active one — no compaction
	// output covers it, so recovery rightly keeps it.
	tail := rawSegs[len(rawSegs)-1]
	stash := make(map[string][]byte)
	for _, p := range rawSegs {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		stash[p] = b
	}
	if _, err := st.Compact(CompactOptions{}); err != nil {
		t.Fatal(err)
	}
	want := snapshotQueries(t, st)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash window 4: inputs resurrected next to the published .cseg,
	// plus a half-written .cmpct from an unpublished rewrite.
	for p, b := range stash {
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	bogus := filepath.Join(dir, "raw-0000000099.cmpct")
	if err := os.WriteFile(bogus, []byte("torn garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	st = mustOpen(t, dir, opt)
	for i, b := range snapshotQueries(t, st) {
		if !bytes.Equal(b, want[i]) {
			t.Fatalf("query %d differs after crash recovery", i)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(bogus); !os.IsNotExist(err) {
		t.Fatal("unpublished .cmpct survived recovery")
	}
	for p := range stash {
		if p == tail {
			continue
		}
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("superseded input %s survived recovery", filepath.Base(p))
		}
	}
}

// TestCompactTombstones: series that exited long before the newest
// record lose their rows; live series and the machine roll-up persist.
func TestCompactTombstones(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, Options{SegmentBytes: 2 << 10, NoDownsample: true})
	// Task 100 and 200 both live until t=60; 200 exits, 100 runs on to
	// t=600.
	both := func(now time.Duration) *core.Sample {
		s := sampleAt(now, 1)
		s.Rows = append(s.Rows, core.Row{
			Info:   core.TaskInfo{ID: hpm.TaskID{PID: 200, TID: 200}, User: "u", Comm: "gone", State: "R"},
			CPUPct: 10, Values: []float64{1},
			Events: map[string]uint64{hpm.EventInstructions: 10, hpm.EventCycles: 5},
			Valid:  true,
		})
		return s
	}
	for i := 1; i <= 60; i++ {
		if err := st.AppendSample(both(time.Duration(i) * time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 61; i <= 600; i++ {
		if err := st.AppendSample(sampleAt(time.Duration(i)*time.Second, 1)); err != nil {
			t.Fatal(err)
		}
	}
	records := st.Records()
	preMachine, err := st.Query(QueryOptions{PID: -1, FromSeconds: 1, ToSeconds: 60})
	if err != nil {
		t.Fatal(err)
	}

	res, err := st.Compact(CompactOptions{TombstoneAge: 120 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	var tomb, dropped int
	for _, tc := range res.Tiers {
		tomb += tc.TombstonedSeries
		dropped += int(tc.DroppedRows)
	}
	if tomb != 1 || dropped == 0 {
		t.Fatalf("tombstoned %d series / %d rows, want 1 series and > 0 rows", tomb, dropped)
	}
	if got := st.Records(); got != records {
		t.Fatalf("tombstoning changed the record count: %d -> %d", records, got)
	}
	post, err := st.Query(QueryOptions{PID: -1, FromSeconds: 1, ToSeconds: 60})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range post.Series {
		if s.PID == 200 {
			t.Fatal("exited series survived tombstoning")
		}
	}
	if len(post.Series) == 0 {
		t.Fatal("live series was dropped")
	}
	// The machine roll-up is an aggregate of what happened, not of what
	// is retained: it must be untouched.
	a, _ := json.Marshal(preMachine.Machine)
	b, _ := json.Marshal(post.Machine)
	if !bytes.Equal(a, b) {
		t.Fatalf("machine roll-up changed:\npre:  %s\npost: %s", a, b)
	}
	st.Close()
}

// TestCompactRemerges: a second pass folds newly sealed segments into
// the existing compacted one, keeping the chain short across restarts.
func TestCompactRemerges(t *testing.T) {
	dir := t.TempDir()
	opt := Options{SegmentBytes: 64 << 10, NoDownsample: true}
	st := mustOpen(t, dir, opt)
	seed := uint64(9)
	fillVaried(t, st, time.Second, time.Second, 100, 3, &seed)
	if _, err := st.Compact(CompactOptions{}); err != nil {
		t.Fatal(err)
	}
	// No-op second pass: one compacted segment and nothing else sealed.
	res, err := st.Compact(CompactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tiers) != 0 {
		t.Fatalf("idle compaction rewrote %v", res.Tiers)
	}
	// Restart fragmentation: reopen (seals the tail), twice.
	for i := 0; i < 2; i++ {
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		st = mustOpen(t, dir, opt)
		fillVaried(t, st, 0, time.Second, 50, 3, &seed)
	}
	pre := snapshotQueries(t, st)
	if _, err := st.Compact(CompactOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := countFiles(t, dir, "raw-*.cseg"); got != 1 {
		t.Fatalf("re-merge left %d compacted segments, want 1", got)
	}
	for i, b := range snapshotQueries(t, st) {
		if !bytes.Equal(b, pre[i]) {
			t.Fatalf("query %d differs after re-merge", i)
		}
	}
	st.Close()
}

// TestCompactConcurrentAppends: appends (and the queries they serve)
// proceed while a rewrite is in flight.
func TestCompactConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, Options{SegmentBytes: 4 << 10})
	seed := uint64(11)
	fillVaried(t, st, time.Second, time.Second, 200, 4, &seed)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s2 := uint64(12)
		for i := 0; i < 100; i++ {
			_ = st.AppendSample(variedSample(time.Duration(201+i)*time.Second, 4, &s2))
		}
	}()
	if _, err := st.Compact(CompactOptions{}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	res, err := st.Query(QueryOptions{PID: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Machine) != 300 {
		t.Fatalf("store holds %d raw records, want 300", len(res.Machine))
	}
	st.Close()
}

func TestParseFsync(t *testing.T) {
	cases := []struct {
		in   string
		want FsyncPolicy
		err  bool
	}{
		{in: "", want: FsyncPolicy{}},
		{in: "off", want: FsyncPolicy{}},
		{in: "2s", want: FsyncPolicy{Interval: 2 * time.Second}},
		{in: "500ms", want: FsyncPolicy{Interval: 500 * time.Millisecond}},
		{in: "100", want: FsyncPolicy{Records: 100}},
		{in: "100-records", want: FsyncPolicy{Records: 100}},
		{in: "1-record", want: FsyncPolicy{Records: 1}},
		{in: "2s,1000-records", want: FsyncPolicy{Interval: 2 * time.Second, Records: 1000}},
		{in: "0", err: true},
		{in: "-5", err: true},
		{in: "soon", err: true},
		{in: "2s,3s", err: true},
	}
	for _, c := range cases {
		got, err := ParseFsync(c.in)
		if c.err {
			if err == nil {
				t.Fatalf("ParseFsync(%q) accepted", c.in)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Fatalf("ParseFsync(%q) = %+v, %v; want %+v", c.in, got, err, c.want)
		}
	}
	if s := (FsyncPolicy{Interval: 2 * time.Second, Records: 1000}).String(); s != "2s,1000-records" {
		t.Fatalf("String() = %q", s)
	}
}

// TestFsyncPolicyAppends drives both policy shapes through appends,
// rotations and reopen — the data path must be unchanged.
func TestFsyncPolicyAppends(t *testing.T) {
	for name, p := range map[string]FsyncPolicy{
		"every-record": {Records: 1},
		"interval":     {Interval: time.Nanosecond},
		"both":         {Interval: time.Millisecond, Records: 10},
	} {
		dir := t.TempDir()
		st := mustOpen(t, dir, Options{SegmentBytes: 2 << 10, Fsync: p})
		fill(t, st, time.Second, time.Second, 100, 2)
		if err := st.Err(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := st.Close(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		st = mustOpen(t, dir, Options{})
		res, err := st.Query(QueryOptions{PID: -1})
		if err != nil || len(res.Machine) != 100 {
			t.Fatalf("%s: recovered %d records (%v), want 100", name, len(res.Machine), err)
		}
		st.Close()
	}
}
