package store

// Coverage-guided fuzzing of the frame payload readers — the one place
// the store parses bytes it did not just write (recovery and compacted
// segments survive crashes, partial writes and disk corruption). The
// contract under fuzz: decode may reject a payload with an error, but
// it must never panic, never over-read past the payload, and never
// allocate storage proportional to a length field a corrupt frame
// merely claims (every count is bounds-checked against the payload
// size before use).

import (
	"testing"
)

// fuzzSeedRecord is a representative record touching every encoded
// field shape: column names, delta-coded PIDs, a thread row, XOR'd
// float chains, ragged value rows and the machine roll-up.
func fuzzSeedRecord() *Record {
	return &Record{
		V:           RecordVersion,
		TimeSeconds: 12.345,
		ResSeconds:  10,
		Cols:        []string{"IPC", "CYCLES", "%MISS"},
		Rows: []RecordRow{
			{PID: 100, TID: 100, User: "root", Command: "tiptop",
				CPUPct: 51.5, IPC: 1.25, Values: []float64{1.25, 3.1e9, 0.02},
				Instr: 1000, Cycles: 800, Misses: 3},
			{PID: 100, TID: 101, User: "root", Command: "tiptop",
				CPUPct: 12.5, IPC: 0.75, Values: []float64{0.75},
				Instr: 600, Cycles: 800, Misses: 1},
			{PID: 204, TID: 204, User: "user", Command: "mcf",
				CPUPct: 99.9, IPC: 0.31, Values: nil,
				Instr: 310, Cycles: 1000, Misses: 42},
		},
		Machine: RecordAgg{Tasks: 3, CPUPct: 163.9, Instr: 1910, Cycles: 2600, Misses: 46},
	}
}

// FuzzDecodeFrame drives the v2 frame decoder (and the v1 JSON path it
// dispatches to) with corrupt, truncated and mutated payloads. Each
// input is decoded twice — against an empty dictionary and against a
// pre-seeded one — so both the index-out-of-range rejection and the
// in-range dictionary paths stay covered, and the cheap prefix readers
// (framePrefix, v2PeekCols) see the same bytes the full decode does.
func FuzzDecodeFrame(f *testing.F) {
	rec := fuzzSeedRecord()
	dict := newV2Dict()
	for _, r := range rec.Rows {
		dict.intern(r.User)
		dict.intern(r.Command)
	}
	for _, c := range rec.Cols {
		dict.intern(c)
	}
	dictFrame := dict.appendDictFrame(nil)
	dataFrame := appendV2Data(nil, rec, dict)

	f.Add([]byte(`{"v":1,"time_s":1.5,"rows":[{"pid":1,"user":"u","command":"c",` +
		`"cpu_pct":50,"ipc":1,"values":[1],"instr":10,"cycles":10,"misses":0}],` +
		`"machine":{"tasks":1,"cpu_pct":50,"instr":10,"cycles":10,"misses":0}}`))
	f.Add(dictFrame)
	f.Add(dataFrame)
	// Truncations and header mutations seed the interesting failure
	// modes directly; the engine mutates from there.
	f.Add(dataFrame[:len(dataFrame)/2])
	f.Add(dataFrame[:2])
	f.Add(dictFrame[:3])
	f.Add([]byte{recordVersionV2})
	f.Add([]byte{recordVersionV2, v2KindData})
	f.Add([]byte{recordVersionV2, 0x7f})
	f.Add([]byte{0x03, v2KindData, 0x00}) // future binary version
	f.Add([]byte("{"))
	f.Add([]byte{})

	seeded := append([]string(nil), dict.strs...)
	f.Fuzz(func(t *testing.T, payload []byte) {
		// A fresh decoder: every dictionary reference is out of range.
		fresh := &frameDecoder{}
		if rec, err := fresh.decode(payload); err != nil && rec != nil {
			t.Fatalf("decode returned both a record and an error: %v", err)
		}
		// A decoder mid-segment, dictionary already established.
		warm := &frameDecoder{dict: seeded}
		if rec, err := warm.decode(payload); err == nil && rec != nil {
			if len(rec.Rows) > len(payload) {
				t.Fatalf("decoded %d rows from a %d-byte payload", len(rec.Rows), len(payload))
			}
		}
		framePrefix(payload)
		if len(payload) >= 2 && payload[0] == recordVersionV2 && payload[1] == v2KindData {
			rec, err := decodeV2Record(payload, seeded)
			if err != nil {
				// The cheap peek may accept a payload the full decode
				// rejects (it only reads the header prefix).
				return
			}
			// The reverse — peek erroring, or disagreeing about the
			// column list, where the full decode succeeded — would mean
			// the two readers disagree about the header layout.
			cols, err := v2PeekCols(payload, seeded)
			if err != nil {
				t.Fatalf("decodeV2Record accepted a payload v2PeekCols rejects: %v", err)
			}
			if len(cols) != len(rec.Cols) {
				t.Fatalf("v2PeekCols saw %d columns, decodeV2Record %d", len(cols), len(rec.Cols))
			}
		}
	})
}
