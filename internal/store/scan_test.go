package store

// Tests for the parallel, projected scan path: the worker pool must
// reproduce the serial scan record-for-record (including column-change
// annotations) over stores mixing v1 JSON and v2 columnar segments;
// projection must zero exactly the unreferenced fields and nothing
// else; invalid ranges must fail with typed errors; and scans must be
// race-free against concurrent appends and compaction.

import (
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// scannedRec is one deep-copied, normalized scan emission (empty
// slices normalized to nil so fresh-decode and reused-scratch paths
// compare equal).
type scannedRec struct {
	Rec  Record
	Cols string
}

func copyScan(rec *Record, cols []string) scannedRec {
	out := scannedRec{Cols: strings.Join(cols, ",")}
	out.Rec = *rec
	out.Rec.Cols = nil
	if len(rec.Cols) > 0 {
		out.Rec.Cols = append([]string(nil), rec.Cols...)
	}
	out.Rec.Rows = nil
	for i := range rec.Rows {
		r := rec.Rows[i]
		r.Values = append([]float64(nil), rec.Rows[i].Values...)
		out.Rec.Rows = append(out.Rec.Rows, r)
	}
	return out
}

func collectScan(t *testing.T, st *Store, opts ScanOptions) []scannedRec {
	t.Helper()
	var out []scannedRec
	if _, err := st.ScanWith(opts, func(rec *Record, cols []string) error {
		out = append(out, copyScan(rec, cols))
		return nil
	}); err != nil {
		t.Fatalf("ScanWith(%+v): %v", opts, err)
	}
	return out
}

// mixedStore builds a store whose sealed segments span both formats:
// varied appends, a compaction pass (v2 rewrite), then more appends
// (fresh v1 segments) under changed columns.
func mixedStore(t *testing.T) *Store {
	t.Helper()
	st := mustOpen(t, t.TempDir(), Options{SegmentBytes: 8 << 10})
	st.SetColumns([]string{"branch-miss", "llc-load"})
	seed := uint64(7)
	n := 240
	if testing.Short() {
		n = 80
	}
	fillVaried(t, st, 500*time.Millisecond, 1500*time.Millisecond, n, 6, &seed)
	if _, err := st.Compact(CompactOptions{}); err != nil {
		t.Fatal(err)
	}
	fillVaried(t, st, time.Duration(n)*1500*time.Millisecond+500*time.Millisecond,
		1500*time.Millisecond, n/2, 6, &seed)
	return st
}

func TestScanParallelMatchesSerial(t *testing.T) {
	st := mixedStore(t)
	for _, q := range []QueryOptions{
		{PID: -1},
		{PID: -1, StepSeconds: 10},
		{PID: -1, StepSeconds: 60},
		{PID: -1, FromSeconds: 100, ToSeconds: 300},
		{PID: -1, FromSeconds: 77.7},
	} {
		serial := collectScan(t, st, ScanOptions{QueryOptions: q, Workers: 1})
		if len(serial) == 0 {
			t.Fatalf("query %+v scanned nothing", q)
		}
		for _, workers := range []int{2, 4, 16} {
			par := collectScan(t, st, ScanOptions{QueryOptions: q, Workers: workers})
			if !reflect.DeepEqual(serial, par) {
				t.Fatalf("query %+v: %d-worker scan differs from serial (%d vs %d records)",
					q, workers, len(par), len(serial))
			}
		}
	}
}

// TestScanProjectedMatchesFull: every record of a projected scan must
// equal its full-decode counterpart with exactly the unreferenced
// fields zeroed — or, for v1 JSON frames (which fall back to a full
// decode), the full record unchanged. Both oracles are computed from
// the full stream using the columns in force at each record.
func TestScanProjectedMatchesFull(t *testing.T) {
	st := mixedStore(t)
	q := QueryOptions{PID: -1, StepSeconds: 10}
	keepName := "llc-load"
	for _, workers := range []int{1, 4} {
		full := collectScan(t, st, ScanOptions{QueryOptions: q, Workers: workers})
		proj := collectScan(t, st, ScanOptions{
			QueryOptions: q, Workers: workers,
			Project: true, Columns: []string{keepName, "INSTRUCTIONS"}, NeedCPUPct: false,
		})
		if len(proj) != len(full) {
			t.Fatalf("%d-worker projected scan has %d records, full has %d",
				workers, len(proj), len(full))
		}
		zeroed := 0
		for i, s := range full {
			if reflect.DeepEqual(s, proj[i]) {
				continue // v1 frame: full-decode fallback
			}
			cols := strings.Split(s.Cols, ",")
			want := copyScan(&s.Rec, cols)
			for j := range want.Rec.Rows {
				r := &want.Rec.Rows[j]
				r.CPUPct, r.IPC = 0, 0
				for k := range r.Values {
					if k >= len(cols) || cols[k] != keepName {
						r.Values[k] = 0
					}
				}
			}
			if !reflect.DeepEqual(want, proj[i]) {
				t.Fatalf("%d-worker projected record %d matches neither the full decode nor the zeroed projection", workers, i)
			}
			zeroed++
		}
		if zeroed == 0 {
			t.Fatal("no record took the projected v2 decode path")
		}
		// The projection must have kept something real.
		kept := false
		for _, s := range proj {
			cols := strings.Split(s.Cols, ",")
			for _, r := range s.Rec.Rows {
				for k, v := range r.Values {
					if k < len(cols) && cols[k] == keepName && v != 0 {
						kept = true
					}
				}
			}
		}
		if !kept {
			t.Fatal("projected scan kept no values for the referenced column")
		}
	}
}

func TestScanRangeErrors(t *testing.T) {
	st := mustOpen(t, t.TempDir(), Options{})
	cases := []QueryOptions{
		{PID: -1, StepSeconds: -10},
		{PID: -1, FromSeconds: 100, ToSeconds: 50},
	}
	for _, q := range cases {
		_, err := st.Scan(q, func(*Record, []string) error { return nil })
		var re *RangeError
		if !errors.As(err, &re) {
			t.Fatalf("Scan(%+v) = %v, want *RangeError", q, err)
		}
		if re.Hint == "" {
			t.Fatalf("RangeError for %+v carries no hint", q)
		}
		if _, err := st.Query(q); !errors.As(err, &re) {
			t.Fatalf("Query(%+v) = %v, want *RangeError", q, err)
		}
	}
}

// TestScanConcurrentAppendCompact drives parallel queries against a
// store under concurrent appends and compaction — the -race exercise
// for the scan pool (segments retire mid-scan, the active segment
// grows underneath the snapshot).
func TestScanConcurrentAppendCompact(t *testing.T) {
	st := mustOpen(t, t.TempDir(), Options{SegmentBytes: 4 << 10})
	st.SetColumns([]string{"c0", "c1"})
	seed := uint64(3)
	fillVaried(t, st, 500*time.Millisecond, 500*time.Millisecond, 120, 4, &seed)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		aseed := uint64(17)
		now := 200 * time.Second
		for i := 0; i < 400; i++ {
			now += 500 * time.Millisecond
			if err := st.AppendSample(variedSample(now, 4, &aseed)); err != nil {
				t.Errorf("append: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if _, err := st.Compact(CompactOptions{}); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
		}
	}()
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := st.Query(QueryOptions{PID: -1, StepSeconds: 10}); err != nil {
					t.Errorf("query: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
