package store

// Tiered downsampling: every raw refresh folds into a 10-second
// accumulator; each completed 10-second bucket is written as a record
// of the 10s tier and folds into the 1-minute accumulator, and so on
// down Resolutions. Buckets are half-open (k·res, (k+1)·res] windows of
// the store's monotonic record clock, and a bucket's record is stamped
// with the window's end time (so a record's data always lies at or
// before its timestamp, and a record stamped exactly on a boundary
// folds into the coarser bucket ending there).
//
// Within a bucket, CPU%, IPC and column values average and the raw
// counters (instructions, cycles, misses) sum; a coarser tier averages
// the finer tier's averages (buckets a task was absent from do not
// dilute it). IPC is recomputed from the summed counters whenever they
// are present, so a bucket's IPC is Σinstr/Σcycles, not a mean of
// ratios.
//
// The accumulator reuses all storage across buckets: folding a task
// that already has an entry allocates nothing, keeping the append hot
// path flat. Partial buckets are lost on Close/crash — the raw tier
// still holds their data.

import (
	"sort"
	"time"

	"tiptop/internal/hpm"
)

// dsTask accumulates one task's contribution to the current bucket.
type dsTask struct {
	id         hpm.TaskID
	user, comm string
	n          int // finer-tier records folded this bucket
	lastBucket int64
	cpuSum     float64
	ipcSum     float64
	valSums    []float64
	avg        []float64 // scratch the flushed row's Values point into
	instr      uint64
	cycles     uint64
	misses     uint64
}

// dsRow is one averaged task row of a flushed bucket.
type dsRow struct {
	id         hpm.TaskID
	user, comm string
	cpuPct     float64
	ipc        float64
	values     []float64
	instr      uint64
	cycles     uint64
	misses     uint64
}

// bucket is a completed downsample window ready to be written.
type bucket struct {
	end  time.Duration
	rows []dsRow
}

// accumulator folds finer-tier records into fixed-width buckets.
type accumulator struct {
	res    time.Duration
	cur    int64 // current bucket index, -1 before the first fold
	tasks  map[hpm.TaskID]*dsTask
	funnel bucket // reused flush scratch
}

func newAccumulator(res time.Duration) *accumulator {
	return &accumulator{res: res, cur: -1, tasks: make(map[hpm.TaskID]*dsTask)}
}

// advance moves the accumulator to the bucket containing now. When that
// closes the current bucket and it holds data, the completed bucket is
// returned for flushing (valid until the next advance).
//
// Buckets are the half-open (k·res, (k+1)·res] windows — the same
// convention the query-side re-bucketing uses. The closed upper end
// matters for tier chaining: a finer-tier record stamped exactly on a
// boundary (10s records always are) carries data from *before* that
// instant and must fold into the bucket ending there, not the one
// starting there.
func (a *accumulator) advance(now time.Duration) *bucket {
	idx := int64(0)
	if now > 0 {
		idx = int64((now - 1) / a.res)
	}
	if a.cur < 0 {
		a.cur = idx
		return nil
	}
	if idx == a.cur {
		return nil
	}
	out := a.close()
	a.cur = idx
	if len(out.rows) == 0 {
		return nil
	}
	return out
}

// close drains the current bucket into the reused flush scratch,
// resetting per-bucket sums and evicting tasks gone for over a bucket.
func (a *accumulator) close() *bucket {
	a.funnel.end = time.Duration(a.cur+1) * a.res
	a.funnel.rows = a.funnel.rows[:0]
	for id, t := range a.tasks {
		if t.n == 0 {
			if a.cur-t.lastBucket > 1 {
				delete(a.tasks, id)
			}
			continue
		}
		n := float64(t.n)
		if cap(t.avg) < len(t.valSums) {
			t.avg = make([]float64, len(t.valSums))
		}
		t.avg = t.avg[:len(t.valSums)]
		for i, s := range t.valSums {
			t.avg[i] = s / n
		}
		ipc := t.ipcSum / n
		if t.cycles > 0 {
			ipc = float64(t.instr) / float64(t.cycles)
		}
		a.funnel.rows = append(a.funnel.rows, dsRow{
			id: id, user: t.user, comm: t.comm,
			cpuPct: t.cpuSum / n, ipc: ipc, values: t.avg,
			instr: t.instr, cycles: t.cycles, misses: t.misses,
		})
		t.n = 0
		t.cpuSum, t.ipcSum = 0, 0
		t.instr, t.cycles, t.misses = 0, 0, 0
		// Zero before truncating: a later re-extension within capacity
		// must expose zeros, not last bucket's sums.
		for i := range t.valSums {
			t.valSums[i] = 0
		}
		t.valSums = t.valSums[:0]
	}
	rows := a.funnel.rows
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].id.PID != rows[j].id.PID {
			return rows[i].id.PID < rows[j].id.PID
		}
		return rows[i].id.TID < rows[j].id.TID
	})
	return &a.funnel
}

// fold adds one finer-tier task row to the current bucket.
func (a *accumulator) fold(id hpm.TaskID, user, comm string, cpuPct, ipc float64,
	values []float64, instr, cycles, misses uint64) {
	t := a.tasks[id]
	if t == nil {
		t = &dsTask{id: id}
		a.tasks[id] = t
	}
	t.user, t.comm = user, comm
	t.lastBucket = a.cur
	t.n++
	t.cpuSum += cpuPct
	t.ipcSum += ipc
	t.instr += instr
	t.cycles += cycles
	t.misses += misses
	if len(t.valSums) < len(values) {
		if cap(t.valSums) < len(values) {
			grown := make([]float64, len(values))
			copy(grown, t.valSums)
			t.valSums = grown
		} else {
			t.valSums = t.valSums[:len(values)]
		}
	}
	for i, v := range values {
		t.valSums[i] += v
	}
}
